package repro_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro"
	"repro/client"
)

// solverPair starts one engine twice over: in process (NewLocal) and
// behind an httptest daemon driven through the client SDK. Both use the
// same sizing so their planners decide identically.
func solverPair(t *testing.T) (local, remote repro.Solver) {
	t.Helper()
	cfg := repro.LocalConfig{Workers: 2, WorkerBudget: 1}
	l := repro.NewLocal(cfg)
	t.Cleanup(func() { l.Close() })

	svc := repro.NewService(cfg)
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return l, client.New(srv.URL)
}

// normalizeResult strips the in-process-only detail (full CG stats) that
// deliberately does not cross the wire, plus the session-local job id, so
// local and remote results can be compared field for field.
func normalizeResult(r repro.JobResult) repro.JobResult {
	r.JobID = ""
	r.CGStats = nil
	for i := range r.Cases {
		r.Cases[i].CGStats = nil
	}
	return r
}

// TestSolverParityLocalVsClient is the acceptance test for the one-solver
// contract: the same Request produces the same JobResult — iterations,
// backend, plan, interval, coefficients, per-case outcomes and solutions
// bit for bit — through the in-process solver and the HTTP client SDK.
func TestSolverParityLocalVsClient(t *testing.T) {
	local, remote := solverPair(t)

	problem, err := repro.NewPlateProblem(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	general := laplaceProblem(t, 40)

	cases := []struct {
		name string
		req  repro.Request
	}{
		{"plate scalar least-squares", repro.Request{
			Plate:  &repro.PlateSpec{Rows: 10, Cols: 10},
			Solver: repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-7},
		}},
		{"plate traction batch", repro.Request{
			Plate:  &repro.PlateSpec{Rows: 8, Cols: 8, Tractions: []float64{1, 2.5, -1, 1e-9}},
			Solver: repro.SolverSpec{M: 2, Coeffs: "chebyshev", Tol: 1e-8},
		}},
		{"forced csr backend", repro.Request{
			Plate:  &repro.PlateSpec{Rows: 10, Cols: 10},
			Solver: repro.SolverSpec{M: 2, Backend: "csr", Tol: 1e-7},
		}},
		{"prebuilt plate problem", repro.Request{
			Problem: problem,
			Solver:  repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-7},
		}},
		{"prebuilt general problem", repro.Request{
			Problem: general,
			Solver:  repro.SolverSpec{M: 2, Splitting: "jacobi", RelResidualTol: 1e-10},
		}},
		{"iteration-limited batch with per-case errors", repro.Request{
			Plate:        &repro.PlateSpec{Rows: 16, Cols: 16, Tractions: []float64{1, 1e-9}},
			Solver:       repro.SolverSpec{M: 0, Tol: 1e-12, MaxIter: 4},
			OmitSolution: true,
		}},
	}

	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lres, lerr := local.Solve(ctx, tc.req)
			rres, rerr := remote.Solve(ctx, tc.req)
			if (lerr == nil) != (rerr == nil) {
				t.Fatalf("error parity broken: local %v, remote %v", lerr, rerr)
			}
			if lerr != nil && lerr.Error() != rerr.Error() {
				t.Fatalf("error text differs:\nlocal:  %v\nremote: %v", lerr, rerr)
			}
			ln, rn := normalizeResult(lres), normalizeResult(rres)
			if !reflect.DeepEqual(ln, rn) {
				t.Fatalf("results differ:\nlocal:  %+v\nremote: %+v", ln, rn)
			}

			// The offline plan agrees across the boundary too, and with the
			// plan the solve actually executed.
			lplan, err := local.Plan(ctx, tc.req)
			if err != nil {
				t.Fatal(err)
			}
			rplan, err := remote.Plan(ctx, tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(lplan, rplan) {
				t.Fatalf("plans differ: local %+v, remote %+v", lplan, rplan)
			}
			if ln.Plan == nil || !reflect.DeepEqual(*ln.Plan, lplan) {
				t.Fatalf("executed plan %+v != offline plan %+v", ln.Plan, lplan)
			}
		})
	}

	// Both sessions report engine-shaped stats.
	lst, err := local.Stats()
	if err != nil {
		t.Fatal(err)
	}
	rst, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if lst.JobsDone == 0 || rst.JobsDone == 0 {
		t.Fatalf("stats missing jobs: local %d, remote %d", lst.JobsDone, rst.JobsDone)
	}
}

// laplaceProblem builds a 1-D Laplacian through the public MatrixBuilder.
func laplaceProblem(t *testing.T, n int) *repro.Problem {
	t.Helper()
	b := repro.NewMatrixBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
			b.Add(i-1, i, -1)
		}
	}
	f := make([]float64, n)
	f[n/2] = 1
	p, err := b.Problem(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSolverValidationParity: malformed requests fail the same way through
// both implementations (engine validation locally, a 400 with the same
// message remotely).
func TestSolverValidationParity(t *testing.T) {
	local, remote := solverPair(t)
	bad := []repro.Request{
		{}, // no problem at all
		{Plate: &repro.PlateSpec{Rows: 1, Cols: 5}},
		{Plate: &repro.PlateSpec{Rows: 4, Cols: 4}, Solver: repro.SolverSpec{Backend: "ellpack"}},
		{System: &repro.SystemSpec{N: 2, I: []int{5}, J: []int{0}, V: []float64{1}, F: make([]float64, 2)}},
	}
	ctx := context.Background()
	for i, req := range bad {
		_, lerr := local.Solve(ctx, req)
		_, rerr := remote.Solve(ctx, req)
		if lerr == nil || rerr == nil {
			t.Fatalf("bad request %d accepted: local %v, remote %v", i, lerr, rerr)
		}
		if lerr.Error() != rerr.Error() {
			t.Fatalf("bad request %d error text differs:\nlocal:  %v\nremote: %v", i, lerr, rerr)
		}
		if client.StatusCode(rerr) != 400 {
			t.Fatalf("bad request %d: remote status %d, want 400", i, client.StatusCode(rerr))
		}
	}
}

// hardEasyRequest is the streaming fixture: one hard load case plus easy
// near-zero ones that converge almost immediately, so per-case results
// must surface long before the job finishes.
func hardEasyRequest(easy int) repro.Request {
	tr := make([]float64, 1+easy)
	tr[0] = 1
	for i := 1; i < len(tr); i++ {
		tr[i] = 1e-9
	}
	return repro.Request{
		Plate:        &repro.PlateSpec{Rows: 40, Cols: 40, Tractions: tr},
		Solver:       repro.SolverSpec{M: 0, Tol: 1e-9},
		OmitSolution: true,
	}
}

// TestSolveStreamParity drives the same batch through both solvers'
// streaming APIs: every case arrives exactly once, cases precede the
// terminal done event, and the easy columns surface before the job ends.
func TestSolveStreamParity(t *testing.T) {
	local, remote := solverPair(t)
	const easy = 4
	req := hardEasyRequest(easy)

	for _, s := range []struct {
		name   string
		solver repro.Solver
	}{{"local", local}, {"remote", remote}} {
		t.Run(s.name, func(t *testing.T) {
			var events []repro.CaseEvent
			var done *repro.JobView
			err := s.solver.SolveStream(context.Background(), req, func(ev repro.CaseEvent) {
				if ev.Done != nil {
					done = ev.Done
					return
				}
				events = append(events, ev)
			})
			if err != nil {
				t.Fatal(err)
			}
			if done == nil {
				t.Fatal("no terminal done event")
			}
			if done.State != repro.JobDone {
				t.Fatalf("done state %s", done.State)
			}
			if len(events) != 1+easy {
				t.Fatalf("streamed %d case events, want %d", len(events), 1+easy)
			}
			seen := map[int]bool{}
			for _, ev := range events {
				if seen[ev.Case] {
					t.Fatalf("case %d delivered twice", ev.Case)
				}
				seen[ev.Case] = true
			}
			if events[0].Case == 0 {
				t.Fatal("hard case streamed first — easy columns did not surface early")
			}
			if done.Result == nil || len(done.Result.Cases) != 1+easy {
				t.Fatalf("done view missing cases: %+v", done)
			}
		})
	}
}

// TestClientStreamCancelMidStream: canceling the context mid-stream
// returns ctx.Err() and cancels the remote job — the daemon must record a
// failed, canceled job rather than solving it to completion.
func TestClientStreamCancelMidStream(t *testing.T) {
	cfg := repro.LocalConfig{Workers: 1, WorkerBudget: 1}
	svc := repro.NewService(cfg)
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := client.New(srv.URL)

	// One very hard case (large plate, near-machine tolerance: thousands of
	// plain-CG iterations) plus easies that converge almost immediately:
	// cancel as soon as the first easy case streams, while the hard column
	// is still far from converged.
	req := repro.Request{
		Plate:        &repro.PlateSpec{Rows: 60, Cols: 60, Tractions: []float64{1, 1e-9, 1e-9, 1e-9}},
		Solver:       repro.SolverSpec{M: 0, Tol: 1e-14},
		OmitSolution: true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawCase bool
	err := cl.SolveStream(ctx, req, func(ev repro.CaseEvent) {
		if ev.Result != nil && !sawCase {
			sawCase = true
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled stream returned %v, want context.Canceled", err)
	}
	if !sawCase {
		t.Fatal("no case event arrived before cancellation")
	}

	// The remote job must terminate as failed (canceled), not keep running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.JobsFailed >= 1 && st.Running == 0 {
			break
		}
		if st.JobsDone >= 1 {
			t.Fatal("canceled job ran to completion")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job leaked after cancel: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLocalWarmCachePath is the in-process acceptance test: a second
// identical solve of the same *Problem hits the session cache (skipping
// assembly and interval estimation), and the cache-hit stats prove it.
func TestLocalWarmCachePath(t *testing.T) {
	p, err := repro.NewPlateProblem(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	req := repro.Request{Problem: p, Solver: repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-7}}

	l := repro.NewLocal(repro.LocalConfig{Workers: 1})
	defer l.Close()
	ctx := context.Background()
	first, err := l.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := l.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := l.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if second.Iterations != first.Iterations ||
		second.IntervalLo != first.IntervalLo || second.IntervalHi != first.IntervalHi {
		t.Fatal("warm solve diverged from the cold solve")
	}

	// A fresh session has a cold cache, but the *Problem's own memo still
	// skips re-estimation: the interval (and hence the method) is
	// identical, pinned before the engine ever sees the request.
	l2 := repro.NewLocal(repro.LocalConfig{Workers: 1})
	defer l2.Close()
	third, err := l2.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if third.IntervalLo != first.IntervalLo || third.IntervalHi != first.IntervalHi {
		t.Fatal("problem memo did not carry the interval across sessions")
	}
}

// TestSolveWrapperMatchesSession: the package-level Solve convenience
// wrapper and an explicit session produce identical numbers for the same
// problem and configuration.
func TestSolveWrapperMatchesSession(t *testing.T) {
	p, err := repro.NewPlateProblem(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Solve(p, repro.Config{M: 3, Coeffs: repro.LeastSquaresCoeffs, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}

	l := repro.NewLocal(repro.LocalConfig{Workers: 1, WorkerBudget: 1})
	defer l.Close()
	jr, err := l.Solve(context.Background(), repro.Request{
		Problem: p,
		Solver:  repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if jr.Iterations != res.Stats.Iterations {
		t.Fatalf("session took %d iterations, wrapper %d", jr.Iterations, res.Stats.Iterations)
	}
	if !reflect.DeepEqual(jr.U, res.U) {
		t.Fatal("session and wrapper solutions differ")
	}
	if jr.IntervalLo != res.Interval.Lo || jr.IntervalHi != res.Interval.Hi {
		t.Fatal("session and wrapper intervals differ")
	}
}
