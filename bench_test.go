// Benchmark harness: one benchmark per paper table/figure plus ablations
// of the design decisions DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Wall-clock numbers measure this machine, not the 1983 hardware; the
// simulated seconds and iteration counts reported via b.ReportMetric are
// the reproduction targets.
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fem"
	"repro/internal/femachine"
	"repro/internal/kernel"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/splitting"
	"repro/internal/vec"
	"repro/internal/vectorsim"
)

// --- Table 1: parametrized coefficient computation --------------------

func BenchmarkTable1Coefficients(b *testing.B) {
	for _, m := range []int{2, 3, 4, 8} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := poly.LeastSquares(m, 0.01, 1.02); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 2: CYBER 203 sweep -----------------------------------------

func BenchmarkTable2CyberSweep(b *testing.B) {
	specs := []experiments.MSpec{{M: 0}, {M: 1}, {M: 2}, {M: 2, Param: true}, {M: 4, Param: true}, {M: 6, Param: true}}
	for _, a := range []int{10, 20} {
		for _, s := range specs {
			b.Run(fmt.Sprintf("a=%d/m=%s", a, s.Label()), func(b *testing.B) {
				var iters int
				var secs float64
				for i := 0; i < b.N; i++ {
					run, err := vectorsim.SimulatePlate(vectorsim.Cyber203(), a, a, s.M, s.Param, 1e-6)
					if err != nil {
						b.Fatal(err)
					}
					iters, secs = run.Iterations, run.Seconds
				}
				b.ReportMetric(float64(iters), "iterations")
				b.ReportMetric(secs, "simulated-s")
			})
		}
	}
}

// --- Table 3: Finite Element Machine ------------------------------------

func BenchmarkTable3FEMachine(b *testing.B) {
	plate, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range []struct {
		p     int
		m     int
		strat mesh.Strategy
	}{
		{1, 0, mesh.RowStrips}, {2, 0, mesh.RowStrips}, {5, 0, mesh.ColStrips},
		{1, 2, mesh.RowStrips}, {2, 2, mesh.RowStrips}, {5, 2, mesh.ColStrips},
	} {
		b.Run(fmt.Sprintf("P=%d/m=%d", spec.p, spec.m), func(b *testing.B) {
			cfg := femachine.Config{
				P: spec.p, Strategy: spec.strat, M: spec.m,
				Tol: 1e-6, MaxIter: 100000, Time: femachine.DefaultTimeModel(),
			}
			if spec.m > 0 {
				cfg.Alphas = poly.Ones(spec.m).Coeffs
			}
			var res femachine.Result
			for i := 0; i < b.N; i++ {
				mach, err := femachine.New(plate, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = mach.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Iterations), "iterations")
			b.ReportMetric(res.SimTime, "simulated-s")
		})
	}
}

// --- §2.1 condition study ------------------------------------------------

func BenchmarkConditionEstimate(b *testing.B) {
	sys, _, err := core.PlateSystem(12, 12, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(sys, core.Config{M: 2, RelResidualTol: 1e-10, MaxIter: 10000})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := repro.EstimateCondition(repro.Result(res)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures: renderers ----------------------------------------------------

func BenchmarkFigureRenderers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AllFigures(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver benchmarks (real wall clock) --------------------------------

func BenchmarkSolvePlate(b *testing.B) {
	for _, size := range []int{16, 32} {
		sys, _, err := core.PlateSystem(size, size, fem.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []struct {
			label string
			c     core.Config
		}{
			{"cg", core.Config{M: 0}},
			{"ssor-m1", core.Config{M: 1}},
			{"ssor-m4-ls", core.Config{M: 4, Coeffs: core.LeastSquaresCoeffs}},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", sys.K.Rows, cfg.label), func(b *testing.B) {
				c := cfg.c
				c.Tol = 1e-6
				c.MaxIter = 100000
				var iters int
				for i := 0; i < b.N; i++ {
					res, err := core.Solve(sys, c)
					if err != nil {
						b.Fatal(err)
					}
					iters = res.Stats.Iterations
				}
				b.ReportMetric(float64(iters), "iterations")
			})
		}
	}
}

// --- Ablation: Conrad–Wallach fused sweeps vs naive m-step ---------------

func BenchmarkAblationConradWallach(b *testing.B) {
	sys, _, err := core.PlateSystem(24, 24, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	mc, err := splitting.NewSixColorSSOR(sys.K, sys.GroupStart)
	if err != nil {
		b.Fatal(err)
	}
	alphas := poly.Ones(4).Coeffs
	rhat := make([]float64, sys.K.Rows)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mc.ApplyMStep(rhat, sys.F, alphas)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vec.Zero(rhat)
			for s := 1; s <= 4; s++ {
				mc.Step(rhat, sys.F, alphas[4-s])
			}
		}
	})
}

// --- Ablation: SpMV formats (CSR vs DIA vs parallel CSR) -----------------

func BenchmarkAblationSpMV(b *testing.B) {
	sys, _, err := core.PlateSystem(40, 40, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	k := sys.K
	dia := sparse.MustDIAFromCSR(k)
	x := make([]float64, k.Rows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, k.Rows)
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.MulVecTo(y, x)
		}
	})
	b.Run("dia", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dia.MulVecTo(y, x)
		}
	})
	b.Run("csr-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.ParMulVecTo(y, x, 0)
		}
	})
}

// --- Ablation: multicolor vs natural ordering SSOR PCG -------------------

func BenchmarkAblationOrdering(b *testing.B) {
	sys, _, err := core.PlateSystem(20, 20, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		label string
		c     core.Config
	}{
		{"multicolor", core.Config{M: 2, Splitting: core.SSORMulticolor}},
		{"natural", core.Config{M: 2, Splitting: core.SSORNatural}},
	} {
		b.Run(cfg.label, func(b *testing.B) {
			c := cfg.c
			c.Tol = 1e-6
			c.MaxIter = 100000
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(sys, c)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Stats.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// --- Ablation: sum/max circuit vs software ring reduction ----------------

func BenchmarkAblationReduction(b *testing.B) {
	plate, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, software := range []bool{false, true} {
		label := "tree"
		if software {
			label = "ring"
		}
		b.Run(label, func(b *testing.B) {
			tm := femachine.DefaultTimeModel()
			tm.SoftwareReduce = software
			var sim float64
			for i := 0; i < b.N; i++ {
				mach, err := femachine.New(plate, femachine.Config{
					P: 5, Strategy: mesh.ColStrips, M: 0,
					Tol: 1e-6, MaxIter: 100000, Time: tm,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := mach.Run()
				if err != nil {
					b.Fatal(err)
				}
				sim = res.SimTime
			}
			b.ReportMetric(sim, "simulated-s")
		})
	}
}

// --- Ablation: preconditioner application cost vs m ----------------------

func BenchmarkPrecondApply(b *testing.B) {
	sys, _, err := core.PlateSystem(24, 24, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	mc, err := splitting.NewSixColorSSOR(sys.K, sys.GroupStart)
	if err != nil {
		b.Fatal(err)
	}
	z := make([]float64, sys.K.Rows)
	for _, m := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			p, err := precond.NewMStep(mc, poly.Ones(m))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				p.Apply(z, sys.F)
			}
		})
	}
}

// --- Baseline: CG on general SPD systems (Poisson substrate) -------------

func BenchmarkPoissonCG(b *testing.B) {
	k := model.Poisson2D(40, 40)
	f := make([]float64, k.Rows)
	f[k.Rows/2] = 1
	j, err := splitting.NewJacobi(k)
	if err != nil {
		b.Fatal(err)
	}
	p3, err := precond.NewMStep(j, poly.Ones(3))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cg.Solve(k, f, nil, cg.Options{RelResidualTol: 1e-8, MaxIter: 10000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("neumann-m3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cg.Solve(k, f, p3, cg.Options{RelResidualTol: 1e-8, MaxIter: 10000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Service: solves/sec at increasing concurrency ------------------------

// --- Batched multi-RHS block solves -----------------------------------

// BenchmarkBatchedSolve compares s sequential SolveInto runs against one
// block solve of the same s right-hand sides on a cached plate (system and
// preconditioner prebuilt, workspaces warm — the solver service's steady
// state). The block solve shares one SpMM and one block preconditioner
// sweep per iteration across the batch; the acceptance target is ≥1.3×
// throughput at s=8 (compare the rhs/s metrics).
func BenchmarkBatchedSolve(b *testing.B) {
	sys, _, err := core.PlateSystem(100, 100, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{M: 3, Splitting: core.SSORMulticolor, Coeffs: core.LeastSquaresCoeffs}
	pc, _, _, err := core.BuildPreconditioner(sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	opt := cg.Options{Tol: 1e-7, MaxIter: 5000}
	n := sys.K.Rows
	for _, s := range []int{2, 8} {
		f := vec.NewMulti(n, s)
		for j := 0; j < s; j++ {
			scale := float64(j+1) / 4
			for i, v := range sys.F {
				f.Col(j)[i] = scale * v
			}
		}
		b.Run(fmt.Sprintf("sequential/s=%d", s), func(b *testing.B) {
			ws := cg.NewWorkspace(n)
			u := make([]float64, n)
			var iters int
			for i := 0; i < b.N; i++ {
				iters = 0
				for j := 0; j < s; j++ {
					st, err := cg.SolveInto(u, sys.K, f.Col(j), pc, opt, ws)
					if err != nil {
						b.Fatal(err)
					}
					iters += st.Iterations
				}
			}
			b.ReportMetric(float64(iters), "col-iters")
			b.ReportMetric(float64(s)*float64(b.N)/b.Elapsed().Seconds(), "rhs/s")
		})
		b.Run(fmt.Sprintf("block/s=%d", s), func(b *testing.B) {
			bws := cg.NewBlockWorkspace(n, s)
			u := vec.NewMulti(n, s)
			var spmms int
			for i := 0; i < b.N; i++ {
				st, err := cg.SolveBlockInto(u, sys.K, f, pc, opt, bws)
				if err != nil {
					b.Fatal(err)
				}
				spmms = st.SpMMs
			}
			b.ReportMetric(float64(spmms), "spmms")
			b.ReportMetric(float64(s)*float64(b.N)/b.Elapsed().Seconds(), "rhs/s")
		})
	}
}

// BenchmarkTiledBlockSolve compares an untiled s=32 block solve against the
// planner's tiled execution of the same batch on the cached 100×100 plate
// (system and preconditioner prebuilt, workspace warm). Untiled, the four
// CG scratch multivectors plus iterate and RHS hold 32 columns of n≈19800
// — a ~30 MB working set re-streamed every iteration; the default planner
// budget tiles it into 8-column solves (~7.6 MB) executed sequentially,
// trading extra matrix traversals (one SpMM per tile iteration instead of
// one per batch iteration) for multivector cache residency. Compare the
// rhs/s metrics.
func BenchmarkTiledBlockSolve(b *testing.B) {
	sys, _, err := core.PlateSystem(100, 100, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{M: 3, Splitting: core.SSORMulticolor, Coeffs: core.LeastSquaresCoeffs}
	pc, _, _, err := core.BuildPreconditioner(sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	opt := cg.Options{Tol: 1e-7, MaxIter: 5000}
	n := sys.K.Rows
	const s = 32
	f := vec.NewMulti(n, s)
	for j := 0; j < s; j++ {
		scale := float64(j+1) / 4
		for i, v := range sys.F {
			f.Col(j)[i] = scale * v
		}
	}
	pl := plan.Planner{}.Plan(plan.Inputs{K: sys.K, Policy: plan.BackendCSR, RHS: s, M: cfg.M})
	b.Run("untiled/s=32", func(b *testing.B) {
		bws := cg.NewBlockWorkspace(n, s)
		u := vec.NewMulti(n, s)
		for i := 0; i < b.N; i++ {
			if _, err := cg.SolveBlockInto(u, sys.K, f, pc, opt, bws); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(s)*float64(b.N)/b.Elapsed().Seconds(), "rhs/s")
	})
	b.Run(fmt.Sprintf("planner-tiled/s=32/tiles=%d", len(pl.Tiles)), func(b *testing.B) {
		width := len(pl.Tiles[0])
		bws := cg.NewBlockWorkspace(n, width)
		u := vec.NewMulti(n, width)
		for i := 0; i < b.N; i++ {
			for _, tileCols := range pl.Tiles {
				cols := make([][]float64, len(tileCols))
				for t, c := range tileCols {
					cols[t] = f.Col(c)
				}
				ut := u.Prefix(len(tileCols))
				if _, err := cg.SolveBlockInto(ut, sys.K, vec.MultiFromCols(cols), pc, opt, bws); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(s)*float64(b.N)/b.Elapsed().Seconds(), "rhs/s")
	})
}

// BenchmarkSpMM measures the matrix–multivector kernels against s repeated
// SpMVs over the paper's plate matrix in CSR and DIA storage.
func BenchmarkSpMM(b *testing.B) {
	sys, _, err := core.PlateSystem(40, 40, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	k := sys.K
	dia := sparse.MustDIAFromCSR(k)
	n := k.Rows
	const s = 8
	x := vec.NewMulti(n, s)
	for i := range x.Data {
		x.Data[i] = float64(i%13) - 6
	}
	dst := vec.NewMulti(n, s)
	b.Run("csr/spmv-x8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < s; j++ {
				k.MulVecTo(dst.Col(j), x.Col(j))
			}
		}
	})
	b.Run("csr/spmm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.MulMatTo(dst, x)
		}
	})
	b.Run("dia/spmv-x8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < s; j++ {
				dia.MulVecTo(dst.Col(j), x.Col(j))
			}
		}
	})
	b.Run("dia/spmm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dia.MulMatTo(dst, x)
		}
	})
}

// BenchmarkKernelSpMM is the layout ablation behind the interleaved panel
// path: the same 8-column SpMM over the cached 100×100 plate matrix, run
// column-contiguous (MulMatTo) and row-interleaved (MulMatITo) under both
// kernel sets. In the interleaved layout one gathered row index feeds all
// eight columns from one cache line; the interleaved/accelerated variant is
// the one the planner schedules for wide tiles.
func BenchmarkKernelSpMM(b *testing.B) {
	sys, _, err := core.PlateSystem(100, 100, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	k := sys.K
	n := k.Rows
	const s = 8
	x := vec.NewMulti(n, s)
	for i := range x.Data {
		x.Data[i] = float64(i%13) - 6
	}
	dst := vec.NewMulti(n, s)
	ix := x.Interleaved()
	idst := vec.NewIMulti(n, s)
	dia := sparse.MustDIAFromCSR(k)
	for _, set := range []struct {
		name string
		impl *kernel.Impl
	}{{"portable", kernel.Portable()}, {"active", kernel.Active()}} {
		b.Run("csr/column/s=8/"+set.name, func(b *testing.B) {
			// MulMatTo dispatches through the global active set; pin it so
			// both rows of the ablation are honest.
			if set.name == "portable" && kernel.Active().Name != "portable" {
				b.Skip("column path always runs the startup-selected set")
			}
			for i := 0; i < b.N; i++ {
				k.MulMatTo(dst, x)
			}
			b.ReportMetric(float64(k.NNZ())*s*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop-pairs/s")
		})
		b.Run("csr/interleaved/s=8/"+set.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.MulMatITo(idst, ix, set.impl)
			}
			b.ReportMetric(float64(k.NNZ())*s*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop-pairs/s")
		})
		b.Run("dia/interleaved/s=8/"+set.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dia.MulMatITo(idst, ix, set.impl)
			}
		})
	}
}

// BenchmarkSpMVBackends measures the CSR-vs-DIA matvec gap on the two
// structure regimes the Auto backend policy distinguishes: the banded
// multicolor plate (a fixed ~47-diagonal family at every size, DIA fill
// ≈ 0.25) and the 5-point Poisson stencil (5 dense diagonals, fill ≈ 1 —
// the ideal vector-triad regime). Reported per backend for the scalar
// SpMV and the 8-column SpMM.
func BenchmarkSpMVBackends(b *testing.B) {
	sys, _, err := core.PlateSystem(40, 40, fem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		k    *sparse.CSR
	}{
		{"plate40", sys.K},
		{"poisson100", model.Poisson2D(100, 100)},
	} {
		dia, err := sparse.NewDIAFromCSR(tc.k)
		if err != nil {
			b.Fatal(err)
		}
		n := tc.k.Rows
		nd, _ := tc.k.DiagStats()
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		y := make([]float64, n)
		const s = 8
		xm := vec.NewMulti(n, s)
		for i := range xm.Data {
			xm.Data[i] = float64(i%13) - 6
		}
		dst := vec.NewMulti(n, s)
		for _, run := range []struct {
			name string
			fn   func()
		}{
			{"csr/spmv", func() { tc.k.MulVecTo(y, x) }},
			{"dia/spmv", func() { dia.MulVecTo(y, x) }},
			{"csr/spmm8", func() { tc.k.MulMatTo(dst, xm) }},
			{"dia/spmm8", func() { dia.MulMatTo(dst, xm) }},
		} {
			b.Run(tc.name+"/"+run.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run.fn()
				}
				b.ReportMetric(float64(nd), "diags")
				b.ReportMetric(tc.k.DIAFillRatio(), "fill")
			})
		}
	}
}

func BenchmarkServiceThroughput(b *testing.B) {
	req := repro.SolveRequest{
		Plate:        &repro.PlateSpec{Rows: 20, Cols: 20},
		Solver:       repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-6},
		OmitSolution: true,
	}
	concurrencies := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		concurrencies = append(concurrencies, g)
	}
	for _, jobs := range concurrencies {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			svc := repro.NewService(repro.ServiceConfig{Workers: jobs, QueueDepth: 4 * jobs})
			defer svc.Close()
			// Populate the cache so the benchmark measures served solves,
			// not one-time assembly.
			if _, err := svc.Solve(context.Background(), req); err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < jobs; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if _, err := svc.Solve(context.Background(), req); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			total := float64(jobs) * float64(b.N)
			b.ReportMetric(total/time.Since(start).Seconds(), "solves/s")
		})
	}
}

// BenchmarkLocalSolverThroughput is the in-process counterpart of
// BenchmarkServiceThroughput: the same warm-cache serving loop through
// repro.NewLocal — no HTTP, no daemon — proving embedders reach the same
// amortized throughput (assembly, structure probe and interval estimation
// all paid once, outside the timed loop).
func BenchmarkLocalSolverThroughput(b *testing.B) {
	problem, err := repro.NewPlateProblem(20, 20)
	if err != nil {
		b.Fatal(err)
	}
	req := repro.Request{
		Problem:      problem,
		Solver:       repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-6},
		OmitSolution: true,
	}
	concurrencies := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		concurrencies = append(concurrencies, g)
	}
	for _, jobs := range concurrencies {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			l := repro.NewLocal(repro.LocalConfig{Workers: jobs, QueueDepth: 4 * jobs})
			defer l.Close()
			// Populate the session cache so the benchmark measures served
			// solves, not one-time setup.
			if _, err := l.Solve(context.Background(), req); err != nil {
				b.Fatal(err)
			}
			if st, _ := l.Stats(); st.CacheMisses != 1 {
				b.Fatalf("expected one cold miss, got %d", st.CacheMisses)
			}
			start := time.Now()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < jobs; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if _, err := l.Solve(context.Background(), req); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if st, _ := l.Stats(); st.CacheMisses != 1 {
				b.Fatalf("timed loop missed the cache %d times", st.CacheMisses-1)
			}
			total := float64(jobs) * float64(b.N)
			b.ReportMetric(total/time.Since(start).Seconds(), "solves/s")
		})
	}
}

// BenchmarkAdaptivePlan measures what the self-tuning planner buys on a
// warm-cached 100×100 plate batch whose requested m = 1 is deliberately
// suboptimal (the paper's point: the best m is machine-dependent, so a
// static request pins the wrong one). The static row executes the request
// as written (tuning off); the adaptive row warms the tuner past its
// observation gate before the timed loop, so the measured rhs/s is the
// steady state of the plan the feedback loop converged to — compare the
// rhs/s metrics, and the m it settled on is in the reported metric.
func BenchmarkAdaptivePlan(b *testing.B) {
	tractions := make([]float64, 8)
	for i := range tractions {
		tractions[i] = float64(i + 1)
	}
	mkReq := func(tuning string) repro.Request {
		return repro.Request{
			Plate:        &repro.PlateSpec{Rows: 100, Cols: 100, Tractions: tractions},
			Solver:       repro.SolverSpec{M: 1, Coeffs: "least-squares", Tol: 1e-5, Tuning: tuning},
			OmitSolution: true,
		}
	}
	rhs := float64(len(tractions))
	b.Run("static/m=1", func(b *testing.B) {
		l := repro.NewLocal(repro.LocalConfig{Workers: 1})
		defer l.Close()
		req := mkReq("off")
		if _, err := l.Solve(context.Background(), req); err != nil {
			b.Fatal(err) // cold solve pays assembly + interval estimation
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Solve(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(rhs*float64(b.N)/b.Elapsed().Seconds(), "rhs/s")
		b.ReportMetric(1, "executed-m")
	})
	b.Run("adaptive", func(b *testing.B) {
		l := repro.NewLocal(repro.LocalConfig{Workers: 1})
		defer l.Close()
		req := mkReq("adapt")
		// Warm-up: past the observation gate plus room for the selector to
		// explore the neighborhood and settle. Untimed by design — the
		// benchmark measures the converged steady state, matching the
		// static row's warm-cache footing.
		var settled repro.JobResult
		for i := 0; i < 14; i++ {
			res, err := l.Solve(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			settled = res
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := l.Solve(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			settled = res
		}
		b.StopTimer()
		b.ReportMetric(rhs*float64(b.N)/b.Elapsed().Seconds(), "rhs/s")
		if settled.Plan != nil {
			b.ReportMetric(float64(settled.Plan.M), "executed-m")
		}
	})
}

// BenchmarkDecomposedSolve measures the decomposed backend on a warm-cached
// large plate, pinned to one subdomain versus one subdomain per core. The
// cache entry (and each subdomain count's memoized decomposition) is
// populated before the timed loop, so the ratio of the two sub-benchmarks
// is the parallel speedup of the solve itself — the number the CI bench
// artifact tracks across machines.
func BenchmarkDecomposedSolve(b *testing.B) {
	procs := []int{1}
	if g := runtime.NumCPU(); g > 1 {
		procs = append(procs, g)
	}
	l := repro.NewLocal(repro.LocalConfig{Workers: 1})
	defer l.Close()
	for _, p := range procs {
		req := repro.Request{
			Plate:        &repro.PlateSpec{Rows: 200, Cols: 200},
			Solver:       repro.SolverSpec{M: 2, Tol: 1e-4, Backend: "decomposed", Subdomains: p},
			OmitSolution: true,
		}
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			// One cold solve pays assembly, planning and decomposition.
			v, err := l.Solve(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if v.Backend != "decomposed" || v.Plan.Subdomains != p {
				b.Fatalf("plan %+v, want decomposed at P=%d", v.Plan, p)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Solve(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetThroughput measures the consistent-hash fleet router
// serving a warm working set through 1 node vs 3: requests for six
// distinct problems fan out by cache key, so each node holds only its
// share of the set and every repeat lands warm. The assertion after the
// timed loop proves the affinity claim — fleet-wide misses stay at the
// number of distinct problems no matter how many solves ran.
func BenchmarkFleetThroughput(b *testing.B) {
	var reqs []repro.Request
	for sz := 16; sz < 22; sz++ {
		reqs = append(reqs, repro.Request{
			Plate:        &repro.PlateSpec{Rows: sz, Cols: sz},
			Solver:       repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-6},
			OmitSolution: true,
		})
	}
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			_, _, cl := startFleetSolver(b, n)
			defer cl.Close()
			ctx := context.Background()
			// Cold pass: populate each owner's cache outside the timed loop.
			for _, req := range reqs {
				if _, err := cl.Solve(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
			const clients = 4
			start := time.Now()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						if _, err := cl.Solve(ctx, reqs[(g+i)%len(reqs)]); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			b.StopTimer()
			st, err := cl.Stats()
			if err != nil {
				b.Fatal(err)
			}
			if st.CacheMisses != int64(len(reqs)) {
				b.Fatalf("fleet saw %d cold misses for %d problems: affinity broken", st.CacheMisses, len(reqs))
			}
			total := float64(clients) * float64(b.N)
			b.ReportMetric(total/time.Since(start).Seconds(), "solves/s")
		})
	}
}
