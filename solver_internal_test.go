package repro

import (
	"testing"

	"repro/internal/core"
)

// TestProblemSetupMemoization pins the *Problem-level memo: the structure
// probe is computed once (stable pointer), and the spectral interval is
// estimated once per (splitting, ω, seed) and replayed bit-identically —
// including into the engine request, where it arrives pre-pinned so cache
// misses skip the power method.
func TestProblemSetupMemoization(t *testing.T) {
	p, err := NewPlateProblem(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.probeRef() != p.probeRef() {
		t.Fatal("structure probe recomputed on second use")
	}
	if p.probeRef().NNZ == 0 {
		t.Fatal("probe empty")
	}

	cfg := core.Config{M: 3, Coeffs: core.LeastSquaresCoeffs}
	first, err := p.intervalFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.intervalFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("memoized interval changed: %+v vs %+v", first, again)
	}
	// Tolerances and coefficient criteria share the memo entry; a different
	// seed does not.
	other := cfg
	other.Coeffs = core.ChebyshevCoeffs
	other.Tol = 1e-3
	if iv, err := p.intervalFor(other); err != nil || iv != first {
		t.Fatalf("coeff/tol change split the memo: %+v (%v)", iv, err)
	}
	if len(p.ivMemo) != 1 {
		t.Fatalf("memo holds %d entries, want 1", len(p.ivMemo))
	}
	seeded := cfg
	seeded.Seed = 7
	if _, err := p.intervalFor(seeded); err != nil {
		t.Fatal(err)
	}
	if len(p.ivMemo) != 2 {
		t.Fatalf("seed change did not get its own memo entry: %d", len(p.ivMemo))
	}

	// The engine request carries the memoized interval pre-pinned.
	req := Request{Problem: p, Solver: SolverSpec{M: 3, Coeffs: "least-squares"}}
	ereq, err := req.engineRequest()
	if err != nil {
		t.Fatal(err)
	}
	if ereq.Prebuilt == nil || ereq.Prebuilt.Config == nil || ereq.Prebuilt.Config.Interval == nil {
		t.Fatal("engine request missing the pinned interval")
	}
	if *ereq.Prebuilt.Config.Interval != first {
		t.Fatal("pinned interval differs from the memo")
	}
	if ereq.Prebuilt.Probe != p.probeRef() {
		t.Fatal("engine request does not share the memoized probe")
	}
	if ereq.Prebuilt.Key != p.id {
		t.Fatal("engine request not keyed by problem identity")
	}

	// Unparametrized solves never trigger estimation.
	ones := Request{Problem: p, Solver: SolverSpec{M: 2}}
	oreq, err := ones.engineRequest()
	if err != nil {
		t.Fatal(err)
	}
	if oreq.Prebuilt.Config.Interval != nil {
		t.Fatal("unparametrized request pinned an interval")
	}
}
