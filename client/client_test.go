package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/client"
)

func simpleReq() repro.Request {
	return repro.Request{
		Plate:  &repro.PlateSpec{Rows: 8, Cols: 8},
		Solver: repro.SolverSpec{M: 2, Tol: 1e-7},
	}
}

func writeView(w http.ResponseWriter, status int, v repro.JobView) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// TestRetryTransient: gateway-class failures are retried with backoff and
// the call ultimately succeeds without the caller noticing.
func TestRetryTransient(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"engine: job queue full"}`)
			return
		}
		writeView(w, http.StatusOK, repro.JobView{
			ID: "j-000001", State: repro.JobDone,
			Result: &repro.JobResult{Iterations: 7},
		})
	}))
	defer srv.Close()

	cl := client.New(srv.URL, client.WithRetry(3, time.Millisecond))
	res, err := cl.Solve(context.Background(), simpleReq())
	if err != nil {
		t.Fatalf("solve after transient failures: %v", err)
	}
	if res.Iterations != 7 {
		t.Fatalf("result %+v did not come from the final attempt", res)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestNoRetryOnRejection: a 400 is a deterministic verdict — exactly one
// attempt, error text preserved.
func TestNoRetryOnRejection(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"engine: plate needs rows, cols >= 2, got 1×5"}`)
	}))
	defer srv.Close()

	cl := client.New(srv.URL, client.WithRetry(5, time.Millisecond))
	_, err := cl.Solve(context.Background(), simpleReq())
	if client.StatusCode(err) != http.StatusBadRequest {
		t.Fatalf("err %v (status %d), want 400", err, client.StatusCode(err))
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (4xx must not retry)", got)
	}
}

// TestPerAttemptTimeout: WithTimeout bounds each attempt; a hung server
// costs attempts × timeout, not forever.
func TestPerAttemptTimeout(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release
	}))
	defer srv.Close()
	defer close(release) // unblock handlers before srv.Close waits on them

	cl := client.New(srv.URL, client.WithTimeout(30*time.Millisecond), client.WithRetry(2, time.Millisecond))
	start := time.Now()
	_, err := cl.Solve(context.Background(), simpleReq())
	if err == nil {
		t.Fatal("hung server produced no error")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timed-out call took %v", el)
	}
}

// sseJob is a scripted job endpoint: each GET attach runs the next script
// entry, which writes SSE frames and returns (an abrupt end unless it
// wrote a done frame).
type sseJob struct {
	submits  atomic.Int32
	attaches atomic.Int32
	ids      []string                                        // job ID per submit
	script   func(attach int, r *http.Request, w *sseWriter) // per-attach behavior
}

type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (s *sseWriter) caseEvent(seq, idx int) {
	data, _ := json.Marshal(repro.CaseEvent{Seq: seq, Case: idx, Result: &repro.CaseResult{Iterations: seq}})
	fmt.Fprintf(s.w, "id: %d\nevent: case\ndata: %s\n\n", seq, data)
	s.f.Flush()
}

func (s *sseWriter) done(id string, lastSeq int) {
	data, _ := json.Marshal(repro.JobView{ID: id, State: repro.JobDone, Result: &repro.JobResult{JobID: id}})
	fmt.Fprintf(s.w, "id: %d\nevent: done\ndata: %s\n\n", lastSeq+1, data)
	s.f.Flush()
}

func (j *sseJob) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		n := int(j.submits.Add(1))
		if n > len(j.ids) {
			n = len(j.ids)
		}
		writeView(w, http.StatusAccepted, repro.JobView{ID: j.ids[n-1], State: repro.JobQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		attach := int(j.attaches.Add(1))
		w.Header().Set("Content-Type", "text/event-stream")
		j.script(attach, r, &sseWriter{w: w, f: w.(http.Flusher)})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeView(w, http.StatusOK, repro.JobView{ID: r.PathValue("id")})
	})
	return mux
}

// collect runs SolveStream and partitions the delivery.
func collect(t *testing.T, cl *client.Client) (cases []repro.CaseEvent, dones int, err error) {
	t.Helper()
	err = cl.SolveStream(context.Background(), simpleReq(), func(ev repro.CaseEvent) {
		if ev.Done != nil {
			dones++
			return
		}
		cases = append(cases, ev)
	})
	return cases, dones, err
}

// TestStreamResumeLastEventID: a severed stream reattaches carrying the
// last seen event ID, and the server-side skip means no duplicates reach
// the caller.
func TestStreamResumeLastEventID(t *testing.T) {
	var resumeHeader atomic.Value
	job := &sseJob{ids: []string{"j-000001"}}
	job.script = func(attach int, r *http.Request, w *sseWriter) {
		switch attach {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				panic("first attach must not carry Last-Event-ID")
			}
			w.caseEvent(1, 1)
			// return without done: the client sees a severed stream
		default:
			resumeHeader.Store(r.Header.Get("Last-Event-ID"))
			w.caseEvent(2, 0)
			w.done("j-000001", 2)
		}
	}
	srv := httptest.NewServer(job.handler())
	defer srv.Close()

	cl := client.New(srv.URL, client.WithRetry(3, time.Millisecond))
	cases, dones, err := collect(t, cl)
	if err != nil {
		t.Fatalf("resumed stream failed: %v", err)
	}
	if got := resumeHeader.Load(); got != "1" {
		t.Fatalf("reattach sent Last-Event-ID %v, want \"1\"", got)
	}
	if len(cases) != 2 || dones != 1 {
		t.Fatalf("delivered %d cases, %d dones; want 2 and 1", len(cases), dones)
	}
	if job.submits.Load() != 1 {
		t.Fatalf("%d submissions; resume must reattach, not resubmit", job.submits.Load())
	}
	if job.attaches.Load() != 2 {
		t.Fatalf("%d attaches, want 2", job.attaches.Load())
	}
}

// TestStreamResubmitOnLostJob: when the job vanishes (the node holding it
// died), the client resubmits and dedupes the new job's replay by case
// index — the caller still sees each case exactly once.
func TestStreamResubmitOnLostJob(t *testing.T) {
	var secondJobResume atomic.Value
	job := &sseJob{ids: []string{"n1-j-000001", "n2-j-000001"}}
	job.script = func(attach int, r *http.Request, w *sseWriter) {
		switch attach {
		case 1: // first job: one case, then severed
			w.caseEvent(1, 1)
		case 2: // reattach: the node died; job unknown
			w.w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w.w, `{"error":"unknown job n1-j-000001"}`)
		default: // fresh job on the survivor: replays everything
			secondJobResume.Store(r.Header.Get("Last-Event-ID"))
			w.caseEvent(1, 1) // the case the caller already has
			w.caseEvent(2, 0)
			w.done("n2-j-000001", 2)
		}
	}
	srv := httptest.NewServer(job.handler())
	defer srv.Close()

	cl := client.New(srv.URL, client.WithRetry(3, time.Millisecond))
	cases, dones, err := collect(t, cl)
	if err != nil {
		t.Fatalf("stream failed despite resubmit path: %v", err)
	}
	if job.submits.Load() != 2 {
		t.Fatalf("%d submissions, want 2 (lost job must resubmit)", job.submits.Load())
	}
	if got := secondJobResume.Load(); got != "" {
		t.Fatalf("fresh job attach carried Last-Event-ID %q; sequence numbers do not span jobs", got)
	}
	if dones != 1 {
		t.Fatalf("%d done events, want exactly 1", dones)
	}
	if len(cases) != 2 {
		t.Fatalf("delivered %d cases, want 2 (replayed case must dedupe)", len(cases))
	}
	seen := map[int]int{}
	for _, ev := range cases {
		seen[ev.Case]++
	}
	if seen[0] != 1 || seen[1] != 1 {
		t.Fatalf("per-case delivery %v, want exactly once each", seen)
	}
}
