// Package client is the Go SDK for a running solverd: an HTTP
// implementation of the repro.Solver contract speaking the daemon's /v1
// API end to end — synchronous solves, asynchronous submission with SSE
// streaming of per-case results, offline execution planning, job
// cancellation via context, and operational statistics.
//
// A Client and a repro.NewLocal session are behaviorally interchangeable:
// the daemon runs the same engine the local solver embeds, so one Request
// produces the same JobResult through either (modulo timing and the
// in-process-only CGStats detail).
//
//	cl := client.New("http://solverd:8080")
//	res, err := cl.Solve(ctx, repro.Request{
//	    Plate:  &repro.PlateSpec{Rows: 100, Cols: 100},
//	    Solver: repro.SolverSpec{M: 3, Coeffs: "least-squares"},
//	})
//
// Prebuilt *Problem requests are serialized back to the declarative spec
// that reconstructs them (see repro.Request.Wire); the setup amortization
// then happens server-side in the daemon's cache.
//
// # Resilience
//
// Solves are pure computations, so the client treats every call as
// idempotent: transport errors and gateway-class statuses (502/503/504)
// are retried with exponential backoff and jitter (WithRetry), and
// non-streaming calls carry a default per-attempt deadline (WithTimeout).
// SolveStream survives a severed connection: it reattaches to the same
// job with the standard Last-Event-ID header so the server skips what was
// already delivered, and if the job itself is gone (a fleet node died
// mid-batch), it resubmits the request and dedupes replayed cases by case
// index — the caller still sees every case exactly once and one Done.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
)

// DefaultTimeout bounds each attempt of a non-streaming call when the
// client was constructed without WithTimeout. Streaming attachments are
// exempt: a batch legitimately converges for longer than any fixed bound.
const DefaultTimeout = 2 * time.Minute

const (
	defaultAttempts  = 3
	defaultRetryBase = 100 * time.Millisecond
	maxRetryBackoff  = 2 * time.Second
)

// Client drives a remote solver service over its /v1 HTTP API. It
// implements repro.Solver. A zero Client is not usable; construct with
// New. Client is safe for concurrent use.
type Client struct {
	base      string
	hc        *http.Client
	timeout   time.Duration // per-attempt bound on non-streaming calls; <=0 means none
	attempts  int           // total tries per idempotent call (1 = no retry)
	retryBase time.Duration // first backoff; doubles per retry, jittered
}

var _ repro.Solver = (*Client)(nil)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (pooling, TLS, tracing). The
// client must not enforce an overall request timeout — streams and long
// solves are expected to outlive any fixed deadline; the SDK bounds
// non-streaming calls itself (WithTimeout).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout bounds each attempt of a non-streaming call (solve, plan,
// stats, trace, cancel) at d; d <= 0 removes the bound. The default is
// DefaultTimeout. Streaming attachments are never subject to it — cancel
// SolveStream through its context instead.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetry sets the retry budget: attempts is the total number of tries
// per call (minimum 1, i.e. no retries) and base the first backoff delay,
// doubled per retry with jitter and capped at 2s. Only connection errors,
// per-attempt timeouts, and gateway-class statuses (502/503/504) are
// retried; API rejections (4xx) never are. The default is 3 attempts from
// a 100ms base.
func WithRetry(attempts int, base time.Duration) Option {
	return func(c *Client) {
		if attempts < 1 {
			attempts = 1
		}
		c.attempts = attempts
		if base > 0 {
			c.retryBase = base
		}
	}
}

// New returns a client for the solver daemon at baseURL (e.g.
// "http://localhost:8080"). The URL is not dialed until the first call.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:      strings.TrimRight(baseURL, "/"),
		hc:        &http.Client{},
		timeout:   DefaultTimeout,
		attempts:  defaultAttempts,
		retryBase: defaultRetryBase,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError is a non-2xx response, carrying the service's error message
// verbatim (which matches the error text the local solver returns for the
// same failure).
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// StatusCode returns the HTTP status of an error returned by this package,
// or 0 when the error is not an API response.
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	return 0
}

// retryableStatus reports whether an HTTP status signals a transient
// condition worth retrying: the gateway-class trio a fleet router or an
// overloaded/draining node returns. Everything else in 4xx/5xx is a
// deterministic verdict on the request.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff returns the delay before retry number retry (0-based): an
// exponentially growing base with uniform jitter in [d/2, d), capped so a
// long outage doesn't stretch waits unboundedly.
func (c *Client) backoff(retry int) time.Duration {
	d := c.retryBase << retry
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	return d/2 + rand.N(d/2+1)
}

// sleepRetry waits out the backoff before the retry'th retry, or returns
// early with ctx's error.
func (c *Client) sleepRetry(ctx context.Context, retry int) error {
	t := time.NewTimer(c.backoff(retry))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attemptCtx derives the per-attempt context for a non-streaming call.
func (c *Client) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return context.WithCancel(ctx)
}

// doJSON performs one idempotent API call — bounded per attempt by the
// client timeout, retried with backoff on connection errors and
// gateway-class statuses — and decodes a 2xx JSON response into out.
// Non-2xx responses come back as *apiError.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		payload = b
	}
	var lastErr error
	for try := 0; try < c.attempts; try++ {
		if try > 0 {
			if err := c.sleepRetry(ctx, try-1); err != nil {
				return err
			}
		}
		err := func() error {
			actx, cancel := c.attemptCtx(ctx)
			defer cancel()
			var rd io.Reader
			if payload != nil {
				rd = bytes.NewReader(payload)
			}
			req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
			if err != nil {
				return err
			}
			if payload != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			return decodeResponse(resp, out)
		}()
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller's context ended; the per-attempt timeout is the
			// only deadline worth retrying past.
			return err
		}
		if sc := StatusCode(err); sc != 0 && !retryableStatus(sc) {
			return err
		}
	}
	return lastErr
}

// asyncRequest is the POST /v1/solve body for asynchronous submission.
type asyncRequest struct {
	repro.Request
	Async bool `json:"async"`
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		return responseError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

func responseError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &apiError{status: resp.StatusCode, msg: e.Error}
	}
	return &apiError{status: resp.StatusCode, msg: fmt.Sprintf("client: server returned status %d", resp.StatusCode)}
}

// Solve implements repro.Solver: it runs req synchronously on the daemon.
// Canceling ctx severs the request, which makes the daemon cancel the
// job (the synchronous submitter is its only holder). A job-level failure
// is returned as a non-nil error alongside any partial result. Solves
// longer than the client timeout need WithTimeout raised (or disabled) —
// each attempt is bounded, and a timed-out sync solve is retried like any
// other severed connection because solving is idempotent.
func (c *Client) Solve(ctx context.Context, req repro.Request) (repro.JobResult, error) {
	wire, err := req.Wire()
	if err != nil {
		return repro.JobResult{}, err
	}
	var v repro.JobView
	if err := c.doJSON(ctx, http.MethodPost, "/v1/solve", wire, &v); err != nil {
		return repro.JobResult{}, err
	}
	var res repro.JobResult
	if v.Result != nil {
		res = *v.Result
	}
	if v.State == repro.JobFailed {
		return res, errors.New(v.Error)
	}
	return res, nil
}

// Plan implements repro.Solver via POST /v1/plan: the execution plan the
// daemon would run req with, without solving.
func (c *Client) Plan(ctx context.Context, req repro.Request) (repro.PlanInfo, error) {
	wire, err := req.Wire()
	if err != nil {
		return repro.PlanInfo{}, err
	}
	var info repro.PlanInfo
	if err := c.doJSON(ctx, http.MethodPost, "/v1/plan", wire, &info); err != nil {
		return repro.PlanInfo{}, err
	}
	return info, nil
}

// Stats implements repro.Solver via GET /v1/stats.
func (c *Client) Stats() (repro.ServiceStats, error) {
	var st repro.ServiceStats
	if err := c.doJSON(context.Background(), http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return repro.ServiceStats{}, err
	}
	return st, nil
}

// Health fetches GET /v1/healthz: the node's readiness verdict. It does
// not retry — a health probe wants the current answer, not an eventual
// one — but a draining node's 503 still decodes into h with ok=false.
func (c *Client) Health(ctx context.Context) (h repro.Health, ok bool, err error) {
	actx, cancel := c.attemptCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.base+"/v1/healthz", nil)
	if err != nil {
		return h, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return h, false, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, false, fmt.Errorf("client: decode health: %w", err)
	}
	return h, resp.StatusCode == http.StatusOK, nil
}

// Trace implements repro.Solver via GET /v1/jobs/{id}/trace: the job's
// stage timeline and sampled convergence curve, during and after the
// solve (for as long as the daemon retains the job in history).
func (c *Client) Trace(ctx context.Context, jobID string) (repro.TraceInfo, error) {
	var ti repro.TraceInfo
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+jobID+"/trace", nil, &ti); err != nil {
		return repro.TraceInfo{}, err
	}
	return ti, nil
}

// Cancel aborts a job by ID (DELETE /v1/jobs/{id}); callers normally
// cancel through SolveStream's context instead.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Close implements repro.Solver. The daemon owns the session state; Close
// only releases the client's idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// SolveStream implements repro.Solver: it submits req asynchronously,
// attaches to the job's SSE stream, and invokes on for every per-case
// completion as it converges, then once more with the terminal Done event.
// Canceling ctx cancels the remote job (DELETE /v1/jobs/{id}) and returns
// ctx.Err().
//
// The stream is resilient within the client's retry budget: a severed
// connection reattaches to the same job carrying Last-Event-ID (the
// server replays only what this client missed), and a lost job — a fleet
// node died taking its in-memory state with it — is resubmitted from
// scratch, with already-delivered cases deduped by case index so on still
// observes each case exactly once.
func (c *Client) SolveStream(ctx context.Context, req repro.Request, on func(repro.CaseEvent)) error {
	wire, err := req.Wire()
	if err != nil {
		return err
	}

	// seen dedupes case delivery across resubmissions: a re-run job solves
	// (and streams) every case again, but the caller already has some.
	// lastSeq tracks the server's per-job event sequence for reattaches;
	// it resets with each new job, whose numbering restarts at 1.
	seen := make(map[int]bool)
	lastSeq := 0
	forward := func(ev repro.CaseEvent) {
		if ev.Seq > lastSeq {
			lastSeq = ev.Seq
		}
		if ev.Done == nil && ev.Case >= 0 {
			if seen[ev.Case] {
				return
			}
			seen[ev.Case] = true
		}
		on(ev)
	}

	submit := func() (string, error) {
		var accepted repro.JobView
		if err := c.doJSON(ctx, http.MethodPost, "/v1/solve", asyncRequest{Request: wire, Async: true}, &accepted); err != nil {
			return "", err
		}
		if accepted.ID == "" {
			return "", errors.New("client: async submission returned no job id")
		}
		return accepted.ID, nil
	}

	jobID, err := submit()
	if err != nil {
		return err
	}

	resubmits := c.attempts // budget for re-running the job elsewhere
	failures := 0           // consecutive failed attaches on the current job
	for {
		done, err := c.attachStream(ctx, jobID, lastSeq, forward)
		if err == nil {
			if done.State == repro.JobFailed {
				return errors.New(done.Error)
			}
			return nil
		}
		if ctx.Err() != nil {
			// Caller cancellation: the abandoned remote job has no other
			// holder, so cancel it before reporting.
			c.cancelDetached(jobID)
			return ctx.Err()
		}
		if sc := StatusCode(err); sc == http.StatusNotFound {
			// The job is gone — the node holding it died, or history
			// evicted it. The solve is pure: run it again as a fresh job
			// and let forward dedupe whatever the caller already saw.
			resubmits--
			if resubmits < 0 {
				return err
			}
			lastSeq = 0
			failures = 0
			jobID, err = submit()
			if err != nil {
				return err
			}
			continue
		} else if sc != 0 && !retryableStatus(sc) {
			// A deterministic API rejection; retrying cannot change it.
			c.cancelDetached(jobID)
			return err
		}
		// Transient: severed connection, gateway error, or mid-stream EOF.
		// Back off and reattach to the same job with Last-Event-ID.
		failures++
		if failures >= c.attempts {
			return err
		}
		if err := c.sleepRetry(ctx, failures-1); err != nil {
			c.cancelDetached(jobID)
			return err
		}
	}
}

// attachStream opens one SSE attachment to jobID and pumps its events
// through on until the done frame (whose JobView it returns) or a
// transport failure. lastSeq > 0 is presented as Last-Event-ID so the
// server skips events already delivered on a previous attachment. The
// attachment itself is never subject to the client timeout.
func (c *Client) attachStream(ctx context.Context, jobID string, lastSeq int, on func(repro.CaseEvent)) (repro.JobView, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return repro.JobView{}, err
	}
	hreq.Header.Set("Accept", "text/event-stream")
	if lastSeq > 0 {
		hreq.Header.Set("Last-Event-ID", strconv.Itoa(lastSeq))
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return repro.JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return repro.JobView{}, responseError(resp)
	}
	return readStream(resp.Body, on)
}

// cancelDetached cancels a job the caller has abandoned, on a fresh
// short-lived context (the caller's is typically already canceled).
func (c *Client) cancelDetached(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c.Cancel(ctx, id) //nolint:errcheck // best-effort: the job may already be done
}

// readStream consumes an SSE body, invoking on per case event and once
// with the terminal Done event, whose JobView it returns. Lines are read
// with an unbounded reader: a data frame carrying a large solution vector
// can run to many megabytes, far past any fixed scanner token limit.
func readStream(body io.Reader, on func(repro.CaseEvent)) (repro.JobView, error) {
	var (
		event string
		data  []byte
	)
	r := bufio.NewReader(body)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF && line == "" {
				return repro.JobView{}, errors.New("client: stream ended without a done event")
			}
			if err != io.EOF {
				return repro.JobView{}, err
			}
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append([]byte(nil), strings.TrimPrefix(line, "data: ")...)
		case line == "" && event != "":
			switch event {
			case "case":
				var ev repro.CaseEvent
				if err := json.Unmarshal(data, &ev); err != nil {
					return repro.JobView{}, fmt.Errorf("client: bad case event: %w", err)
				}
				on(ev)
			case "done":
				var v repro.JobView
				if err := json.Unmarshal(data, &v); err != nil {
					return repro.JobView{}, fmt.Errorf("client: bad done event: %w", err)
				}
				on(repro.CaseEvent{Case: -1, Done: &v})
				return v, nil
			}
			event, data = "", nil
		}
	}
}
