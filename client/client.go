// Package client is the Go SDK for a running solverd: an HTTP
// implementation of the repro.Solver contract speaking the daemon's /v1
// API end to end — synchronous solves, asynchronous submission with SSE
// streaming of per-case results, offline execution planning, job
// cancellation via context, and operational statistics.
//
// A Client and a repro.NewLocal session are behaviorally interchangeable:
// the daemon runs the same engine the local solver embeds, so one Request
// produces the same JobResult through either (modulo timing and the
// in-process-only CGStats detail).
//
//	cl := client.New("http://solverd:8080")
//	res, err := cl.Solve(ctx, repro.Request{
//	    Plate:  &repro.PlateSpec{Rows: 100, Cols: 100},
//	    Solver: repro.SolverSpec{M: 3, Coeffs: "least-squares"},
//	})
//
// Prebuilt *Problem requests are serialized back to the declarative spec
// that reconstructs them (see repro.Request.Wire); the setup amortization
// then happens server-side in the daemon's cache.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro"
)

// Client drives a remote solver service over its /v1 HTTP API. It
// implements repro.Solver. A zero Client is not usable; construct with
// New. Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

var _ repro.Solver = (*Client)(nil)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (pooling, TLS, tracing). The
// client must not enforce an overall request timeout — streams and long
// solves are expected to outlive any fixed deadline; bound individual
// calls with contexts instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the solver daemon at baseURL (e.g.
// "http://localhost:8080"). The URL is not dialed until the first call.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError is a non-2xx response, carrying the service's error message
// verbatim (which matches the error text the local solver returns for the
// same failure).
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// StatusCode returns the HTTP status of an error returned by this package,
// or 0 when the error is not an API response.
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	return 0
}

// asyncRequest is the POST /v1/solve body for asynchronous submission.
type asyncRequest struct {
	repro.Request
	Async bool `json:"async"`
}

// postJSON POSTs body and decodes a 2xx JSON response into out; non-2xx
// responses come back as *apiError.
func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode/100 != 2 {
		return responseError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

func responseError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &apiError{status: resp.StatusCode, msg: e.Error}
	}
	return &apiError{status: resp.StatusCode, msg: fmt.Sprintf("client: server returned status %d", resp.StatusCode)}
}

// Solve implements repro.Solver: it runs req synchronously on the daemon.
// Canceling ctx severs the request, which makes the daemon cancel the
// job (the synchronous submitter is its only holder). A job-level failure
// is returned as a non-nil error alongside any partial result.
func (c *Client) Solve(ctx context.Context, req repro.Request) (repro.JobResult, error) {
	wire, err := req.Wire()
	if err != nil {
		return repro.JobResult{}, err
	}
	var v repro.JobView
	if err := c.postJSON(ctx, "/v1/solve", wire, &v); err != nil {
		return repro.JobResult{}, err
	}
	var res repro.JobResult
	if v.Result != nil {
		res = *v.Result
	}
	if v.State == repro.JobFailed {
		return res, errors.New(v.Error)
	}
	return res, nil
}

// Plan implements repro.Solver via POST /v1/plan: the execution plan the
// daemon would run req with, without solving.
func (c *Client) Plan(ctx context.Context, req repro.Request) (repro.PlanInfo, error) {
	wire, err := req.Wire()
	if err != nil {
		return repro.PlanInfo{}, err
	}
	var info repro.PlanInfo
	if err := c.postJSON(ctx, "/v1/plan", wire, &info); err != nil {
		return repro.PlanInfo{}, err
	}
	return info, nil
}

// Stats implements repro.Solver via GET /v1/stats.
func (c *Client) Stats() (repro.ServiceStats, error) {
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return repro.ServiceStats{}, err
	}
	defer resp.Body.Close()
	var st repro.ServiceStats
	if err := decodeResponse(resp, &st); err != nil {
		return repro.ServiceStats{}, err
	}
	return st, nil
}

// Trace implements repro.Solver via GET /v1/jobs/{id}/trace: the job's
// stage timeline and sampled convergence curve, during and after the
// solve (for as long as the daemon retains the job in history).
func (c *Client) Trace(ctx context.Context, jobID string) (repro.TraceInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+jobID+"/trace", nil)
	if err != nil {
		return repro.TraceInfo{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return repro.TraceInfo{}, err
	}
	defer resp.Body.Close()
	var ti repro.TraceInfo
	if err := decodeResponse(resp, &ti); err != nil {
		return repro.TraceInfo{}, err
	}
	return ti, nil
}

// Cancel aborts a job by ID (DELETE /v1/jobs/{id}); callers normally
// cancel through SolveStream's context instead.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, nil)
}

// Close implements repro.Solver. The daemon owns the session state; Close
// only releases the client's idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// SolveStream implements repro.Solver: it submits req asynchronously,
// attaches to the job's SSE stream, and invokes on for every per-case
// completion as it converges, then once more with the terminal Done event.
// Canceling ctx cancels the remote job (DELETE /v1/jobs/{id}) and returns
// ctx.Err().
func (c *Client) SolveStream(ctx context.Context, req repro.Request, on func(repro.CaseEvent)) error {
	wire, err := req.Wire()
	if err != nil {
		return err
	}
	var accepted repro.JobView
	if err := c.postJSON(ctx, "/v1/solve", asyncRequest{Request: wire, Async: true}, &accepted); err != nil {
		return err
	}
	if accepted.ID == "" {
		return errors.New("client: async submission returned no job id")
	}

	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+accepted.ID, nil)
	if err != nil {
		c.cancelDetached(accepted.ID)
		return err
	}
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		c.cancelDetached(accepted.ID)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		err := responseError(resp)
		c.cancelDetached(accepted.ID)
		return err
	}

	done, err := readStream(resp.Body, on)
	if err != nil {
		// A severed stream: distinguish caller cancellation (cancel the
		// abandoned remote job) from a transport failure (the job may have
		// other watchers; leave it to finish).
		if ctx.Err() != nil {
			c.cancelDetached(accepted.ID)
			return ctx.Err()
		}
		return err
	}
	if done.State == repro.JobFailed {
		return errors.New(done.Error)
	}
	return nil
}

// cancelDetached cancels a job the caller has abandoned, on a fresh
// short-lived context (the caller's is typically already canceled).
func (c *Client) cancelDetached(id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c.Cancel(ctx, id) //nolint:errcheck // best-effort: the job may already be done
}

// readStream consumes an SSE body, invoking on per case event and once
// with the terminal Done event, whose JobView it returns. Lines are read
// with an unbounded reader: a data frame carrying a large solution vector
// can run to many megabytes, far past any fixed scanner token limit.
func readStream(body io.Reader, on func(repro.CaseEvent)) (repro.JobView, error) {
	var (
		event string
		data  []byte
	)
	r := bufio.NewReader(body)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF && line == "" {
				return repro.JobView{}, errors.New("client: stream ended without a done event")
			}
			if err != io.EOF {
				return repro.JobView{}, err
			}
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append([]byte(nil), strings.TrimPrefix(line, "data: ")...)
		case line == "" && event != "":
			switch event {
			case "case":
				var ev repro.CaseEvent
				if err := json.Unmarshal(data, &ev); err != nil {
					return repro.JobView{}, fmt.Errorf("client: bad case event: %w", err)
				}
				on(ev)
			case "done":
				var v repro.JobView
				if err := json.Unmarshal(data, &v); err != nil {
					return repro.JobView{}, fmt.Errorf("client: bad done event: %w", err)
				}
				on(repro.CaseEvent{Case: -1, Done: &v})
				return v, nil
			}
			event, data = "", nil
		}
	}
}
