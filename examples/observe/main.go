// Observability example: serve the solver over HTTP, run a batched solve
// through the SDK while streaming per-case results, then pull the job's
// stage-timeline trace and the Prometheus metrics the daemon exposes —
// and render the traced convergence curve as ASCII.
//
// This is the full telemetry loop a deployment gets for free:
//
//	GET /metrics              — Prometheus text exposition
//	GET /v1/jobs/{id}/trace   — per-job stage timeline + convergence samples
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strings"

	"repro"
	"repro/client"
)

func main() {
	// An in-process daemon: the same handler cmd/solverd serves.
	svc := repro.NewService(repro.ServiceConfig{Workers: 2})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln) //nolint:errcheck // closed with the listener at exit
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// A batched request: one 30×30 plate, six traction load cases solved
	// as one job against one assembled matrix.
	req := repro.Request{
		Plate: &repro.PlateSpec{
			Rows: 30, Cols: 30,
			Tractions: []float64{1, 0.5, 2, -1, 0.25, 4},
		},
		Solver:       repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-8},
		OmitSolution: true,
	}

	cl := client.New(base)
	defer cl.Close()

	// Stream the solve; the terminal event carries the job id the trace
	// and metrics endpoints key on.
	var jobID string
	err = cl.SolveStream(context.Background(), req, func(ev repro.CaseEvent) {
		if ev.Done != nil {
			jobID = ev.Done.ID
			fmt.Printf("job %s: %s, %d cases\n", ev.Done.ID, ev.Done.State, ev.Done.CasesDone)
			return
		}
		fmt.Printf("  case %d converged in %d iterations\n", ev.Case, ev.Result.Iterations)
	})
	if err != nil {
		log.Fatal(err)
	}

	// The trace replays after completion: every pipeline stage with its
	// wall time and the worker that ran it.
	ti, err := cl.Trace(context.Background(), jobID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstage timeline (%.1f ms total):\n", ti.TotalSeconds*1e3)
	for _, sp := range ti.Spans {
		extra := ""
		if sp.Iterations > 0 {
			extra = fmt.Sprintf("  %d iterations", sp.Iterations)
		}
		fmt.Printf("  %-18s %8.3f ms  worker %2d%s\n",
			sp.Name, sp.DurationSeconds*1e3, sp.Worker, extra)
	}

	// The traced convergence samples reconstruct each case's curve; render
	// the hard case (full traction) as log10(‖u_diff‖∞) bars.
	fmt.Println("\nconvergence, case 0 (log10 udiff, one row per sampled iteration):")
	for _, s := range ti.Convergence {
		if s.Case != 0 || s.UDiff <= 0 {
			continue
		}
		mag := -math.Log10(s.UDiff) // 1e-3 → 3 — deeper is better
		bar := strings.Repeat("#", int(math.Max(1, math.Min(mag*4, 60))))
		fmt.Printf("  iter %3d  %-60s %.1e\n", s.Iter, bar, s.UDiff)
	}
	if ti.ConvergenceStride > 1 {
		fmt.Printf("  (samples decimated to every %d-th iteration)\n", ti.ConvergenceStride)
	}

	// Finally, the scrape endpoint every Prometheus can consume; show the
	// solver's own families.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("\nselected /metrics:")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, prefix := range []string{
			"repro_jobs_total", "repro_solves_total",
			"repro_cache_hits_total", "repro_cache_misses_total",
			"repro_tiles_executed_total", "repro_cg_iterations_total",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Println("  " + line)
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
