// Example embed: the in-process solver session. One repro.NewLocal
// session serves repeated solves of one assembled problem the way the
// solverd daemon would — the first request pays for assembly reuse,
// structure probing and spectral-interval estimation; every later request
// hits the session cache and only iterates — and streams a batch's
// per-case results as the columns converge, all without running a daemon.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	solver := repro.NewLocal(repro.LocalConfig{Workers: 2})
	defer solver.Close()
	ctx := context.Background()

	// Assemble once; the *Problem memoizes its structure probe and
	// spectral interval, and the session caches the prepared problem.
	problem, err := repro.NewPlateProblem(60, 60)
	if err != nil {
		log.Fatal(err)
	}
	req := repro.Request{
		Problem: problem,
		Solver:  repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-7},
	}

	// The plan is available before solving anything.
	plan, err := solver.Plan(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: backend=%s workers=%d m=%d\n", plan.Backend, plan.Workers, plan.M)

	// Cold solve: builds the preconditioner (the interval estimate is
	// already memoized on the problem). Warm solves reuse everything.
	for i := 0; i < 3; i++ {
		start := time.Now()
		res, err := solver.Solve(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		st, _ := solver.Stats()
		fmt.Printf("solve %d: %3d iterations in %7.1fms  (cache hits/misses %d/%d)\n",
			i+1, res.Iterations, float64(time.Since(start).Microseconds())/1000, st.CacheHits, st.CacheMisses)
	}

	// Batched load cases stream per-case results the moment each column
	// of the shared block solve converges.
	batch := repro.Request{
		Problem:      problem,
		Fs:           scaledLoads(problem, 1, 0.5, -2, 1e-6),
		Solver:       repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-7},
		OmitSolution: true,
	}
	err = solver.SolveStream(ctx, batch, func(ev repro.CaseEvent) {
		if ev.Done != nil {
			fmt.Printf("batch done: %d/%d cases converged\n", ev.Done.CasesDone, ev.Done.CasesTotal)
			return
		}
		fmt.Printf("  case %d converged after %d iterations\n", ev.Case, ev.Result.Iterations)
	})
	if err != nil {
		log.Fatal(err)
	}

	st, _ := solver.Stats()
	fmt.Printf("session: %d jobs, cache hit rate %.0f%%\n", st.JobsDone, 100*st.CacheHitRate)
}

// scaledLoads returns the problem's assembled load rescaled per case.
func scaledLoads(p *repro.Problem, scales ...float64) [][]float64 {
	base := p.F()
	fs := make([][]float64, len(scales))
	for j, s := range scales {
		fs[j] = make([]float64, len(base))
		for i, v := range base {
			fs[j][i] = s * v
		}
	}
	return fs
}
