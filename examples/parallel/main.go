// Parallel execution on the simulated Finite Element Machine: solve the
// paper's 60-equation plate on 1, 2 and 5 processors and report iteration
// counts (identical across machines sizes), simulated times, speedups and
// where the parallel overhead goes — reproducing the paper's §4
// observations in miniature.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	problem, err := repro.NewPlateProblem(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Finite Element Machine demo: %d equations\n\n", problem.N())

	for _, m := range []int{0, 2} {
		fmt.Printf("m = %d:\n", m)
		var t1 float64
		for _, p := range []int{1, 2, 5} {
			strat := repro.RowStrips
			if p == 5 {
				strat = repro.ColStrips // one free column per processor (Figure 5)
			}
			cfg := repro.FEMachineConfig{
				P: p, Strategy: strat, M: m,
				Tol: 1e-6, MaxIter: 100000,
				Time: repro.DefaultFEMachineTime(),
			}
			if m > 0 {
				cfg.Alphas = []float64{1, 1}[:m] // unparametrized
			}
			res, err := repro.RunOnFEMachine(problem, cfg)
			if err != nil {
				log.Fatalf("P=%d: %v", p, err)
			}
			if p == 1 {
				t1 = res.SimTime
			}
			fmt.Printf("  P=%d: %3d iterations, %.4fs, speedup %.2f  "+
				"(precond comm %.4fs, halo comm %.4fs, reductions %.4fs)\n",
				p, res.Iterations, res.SimTime, t1/res.SimTime,
				res.PrecondCommTime, res.HaloCommTime, res.ReduceWaitTime)
		}
	}
	fmt.Println("\nnote: iteration counts are independent of the processor count;")
	fmt.Println("speedups sit below ideal and fall as m grows because the")
	fmt.Println("preconditioner's border exchanges dominate the overhead (§4 obs. 3).")
}
