// Plane stress workload: sweep the preconditioner step count m on a larger
// plate, reproducing the paper's core trade-off — more preconditioner steps
// mean fewer (inner-product-bearing) CG iterations at a higher per-
// iteration cost — and print the displacement field summary.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const size = 32
	problem, err := repro.NewPlateProblem(size, size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plane stress plate: %d×%d nodes, %d unknowns\n\n", size, size, problem.N())

	fmt.Printf("%-4s %-14s %10s %14s %12s\n", "m", "coeffs", "iterations", "inner products", "κ(M⁻¹K)")
	type spec struct {
		m      int
		coeffs repro.Config
		label  string
	}
	for _, s := range []struct {
		m     int
		kind  string
		label string
	}{
		{0, "", "-"},
		{1, "ones", "ones"},
		{2, "ones", "ones"},
		{2, "ls", "least-squares"},
		{4, "ls", "least-squares"},
		{6, "ls", "least-squares"},
		{6, "cheb", "chebyshev"},
	} {
		cfg := repro.Config{M: s.m, Tol: 1e-6, MaxIter: 50000}
		switch s.kind {
		case "ls":
			cfg.Coeffs = repro.LeastSquaresCoeffs
		case "cheb":
			cfg.Coeffs = repro.ChebyshevCoeffs
		}
		res, err := repro.Solve(problem, cfg)
		if err != nil {
			log.Fatalf("m=%d: %v", s.m, err)
		}
		_, _, kappa, err := repro.EstimateCondition(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-14s %10d %14d %12.1f\n",
			s.m, s.label, res.Stats.Iterations, res.Stats.InnerProducts, kappa)
	}

	// Displacement summary from the best run.
	res, err := repro.Solve(problem, repro.Config{M: 4, Coeffs: repro.LeastSquaresCoeffs, Tol: 1e-8, MaxIter: 50000})
	if err != nil {
		log.Fatal(err)
	}
	_, u, _, err := problem.NodeDisplacements(res)
	if err != nil {
		log.Fatal(err)
	}
	var maxU float64
	for _, ui := range u {
		if ui > maxU {
			maxU = ui
		}
	}
	fmt.Printf("\nmax x-displacement under unit edge traction: %.5f\n", maxU)
}
