// Self-tuning example: run the same batched problem repeatedly and watch
// the planner close the loop — the cold plan is the static cost-model
// decision; every warm solve feeds its realized rhs/s back into the
// tuner; past the observation gate the planner starts executing the best
// measured candidate and the plan explains itself with the evidence it
// used (the paper's point, live: the best m is measured, not assumed).
//
// Turn the loop off with Tuning: "off" for bit-identical static plans,
// or "observe" to collect the evidence without changing execution.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	sv := repro.NewLocal(repro.LocalConfig{Workers: 2})
	defer sv.Close()
	ctx := context.Background()

	// One small plate, eight load cases, a deliberately low m = 1: on most
	// machines a few more preconditioner steps per iteration pay for
	// themselves, so the tuner has something real to find.
	req := repro.Request{
		Plate: &repro.PlateSpec{
			Rows: 20, Cols: 20,
			Tractions: []float64{1, 2, 3, 4, 5, 6, 7, 8},
		},
		Solver:       repro.SolverSpec{M: 1, Coeffs: "least-squares", Tol: 1e-7, Tuning: "adapt"},
		OmitSolution: true,
	}

	// Cold: the plan is purely static — no evidence exists yet.
	cold, err := sv.Plan(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold plan: backend=%s m=%d workers=%d tiles=%v source=%s\n\n",
		cold.Backend, cold.M, cold.Workers, cold.Tiles, cold.Source)

	// The closed loop: every solve executes whatever the tuner picks and
	// feeds the measured throughput back in. Print each time the executed
	// plan changes shape.
	lastM, lastSrc := cold.M, cold.Source
	fmt.Println("solving the same batch 25 times:")
	for i := 0; i < 25; i++ {
		res, err := sv.Solve(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		p := res.Plan
		if p != nil && (p.M != lastM || p.Source != lastSrc) {
			fmt.Printf("  solve %2d: plan moved to m=%d (source=%s)\n", i, p.M, p.Source)
			lastM, lastSrc = p.M, p.Source
		}
	}

	// Warm: the plan now carries the candidate table it decided from.
	warm, err := sv.Plan(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwarm plan: m=%d source=%s (%d candidates considered)\n",
		warm.M, warm.Source, len(warm.Candidates))
	fmt.Println("\n  m  tile  workers  interleave  obs  measured rhs/s  predicted rhs/s  chosen")
	for _, c := range warm.Candidates {
		chosen := ""
		if c.Chosen {
			chosen = "  <--"
		}
		fmt.Printf("  %d  %4d  %7d  %10v  %3d  %14.1f  %15.1f%s\n",
			c.M, c.TileWidth, c.Workers, c.Interleave, c.Observations,
			c.MeasuredRHSPerSec, c.PredictedRHSPerSec, chosen)
	}
}
