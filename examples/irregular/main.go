// Irregular regions — the paper's §5 open problem: "applying the method to
// irregular regions since the grid must be colored". This example colors an
// L-shaped plate and a plate with a hole using a greedy graph colorer,
// builds the general multicolor ordering, and runs the m-step SSOR PCG
// method on the result via the internal packages the library is built
// from.
package main

import (
	"fmt"
	"log"

	"repro/internal/cg"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/splitting"
)

func solveShape(name string, d mesh.Domain) {
	p, err := fem.NewDomainProblem(d, mesh.LeftEdgeClamped, fem.Material{})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%s: %d active cells, %d equations, %d node colors (greedy)\n",
		name, d.NumActiveCells(), p.N(), p.NumColors)

	mc, err := splitting.NewSixColorSSOR(p.KColored, p.GroupStart)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	rhs := p.ColoredRHS()
	solve := func(m int, param bool) int {
		var pc precond.Preconditioner = precond.Identity{}
		if m > 0 {
			a := poly.Ones(m)
			if param {
				iv, err := eigen.EstimateInterval(mc, 0.02, 1)
				if err != nil {
					log.Fatal(err)
				}
				a, err = poly.LeastSquares(m, iv.Lo, iv.Hi)
				if err != nil {
					log.Fatal(err)
				}
			}
			pc, err = precond.NewMStep(mc, a)
			if err != nil {
				log.Fatal(err)
			}
		}
		_, st, err := cg.Solve(p.KColored, rhs, pc, cg.Options{Tol: 1e-6, MaxIter: 100000})
		if err != nil {
			log.Fatalf("%s m=%d: %v", name, m, err)
		}
		return st.Iterations
	}
	fmt.Printf("  CG: %d iterations   1-step SSOR: %d   4-step LS: %d\n",
		solve(0, false), solve(1, false), solve(4, true))

	// The same irregular problem distributed across the Finite Element
	// Machine: greedy-colored sweeps with border exchanges per color pair.
	var t1 float64
	for _, procs := range []int{1, 2, 4} {
		strat := mesh.RowStrips
		if procs == 4 {
			strat = mesh.ColStrips
		}
		cfg := femachine.Config{
			P: procs, Strategy: strat, M: 2, Alphas: poly.Ones(2).Coeffs,
			Tol: 1e-6, MaxIter: 100000, Time: femachine.DefaultTimeModel(),
		}
		mach, err := femachine.NewDomainMachine(p, mesh.LeftEdgeClamped, cfg)
		if err != nil {
			log.Fatalf("%s P=%d: %v", name, procs, err)
		}
		res, err := mach.Run()
		if err != nil {
			log.Fatalf("%s P=%d: %v", name, procs, err)
		}
		if procs == 1 {
			t1 = res.SimTime
		}
		fmt.Printf("  machine P=%d: %d iterations, %.4fs, speedup %.2f\n",
			procs, res.Iterations, res.SimTime, t1/res.SimTime)
	}
	fmt.Println()
}

func main() {
	solveShape("L-shaped plate", mesh.LShapedDomain(mesh.NewGrid(17, 17)))
	solveShape("plate with hole", mesh.DomainWithHole(mesh.NewGrid(17, 17), 0.4))
}
