// Batch: solve many load cases against one stiffness matrix with a single
// block solve — the classic FEM workload (one plate, many loads) and the
// multi-right-hand-side form of the paper's amortize-overhead-over-longer-
// vector-operations argument. Every block iteration performs one
// matrix–multivector product and one block preconditioner sweep shared by
// all still-unconverged load cases.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	problem, err := repro.NewPlateProblem(30, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled plate: %d unknowns\n", problem.N())

	// Eight load cases: the assembled traction load at different scales
	// plus two point-load variants.
	base := problem.F()
	fs := make([][]float64, 8)
	for j := range fs {
		fs[j] = make([]float64, len(base))
		scale := float64(j+1) / 4
		for i, v := range base {
			fs[j][i] = scale * v
		}
	}
	fs[6][len(base)/2] += 5 // a mid-plate point load
	fs[7][len(base)/3] -= 3

	cfg := repro.Config{M: 3, Coeffs: repro.LeastSquaresCoeffs, Tol: 1e-7}

	// Sequential reference: one full solve per load case (each rebuilds
	// the preconditioner, as s separate requests would).
	seqStart := time.Now()
	for j := range fs {
		if _, err := repro.SolveBatch(problem, fs[j:j+1], cfg); err != nil {
			log.Fatal(err)
		}
	}
	seq := time.Since(seqStart)

	blockStart := time.Now()
	results, err := repro.SolveBatch(problem, fs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	block := time.Since(blockStart)

	fmt.Printf("sequential: %d solves in %v\n", len(fs), seq.Round(time.Millisecond))
	fmt.Printf("block:      %d load cases in %v (%.1fx, %s)\n",
		len(fs), block.Round(time.Millisecond), float64(seq)/float64(block), results[0].Precond)
	for j, res := range results {
		fmt.Printf("  case %d: %3d iterations, final rel.res %.2e\n",
			j, res.Stats.Iterations, res.Stats.FinalRelRes)
	}
}
