// Service example: run the solver as an in-process service, fan requests
// at it concurrently, and watch the problem/preconditioner cache amortize
// setup — the second wave of identical solves skips plate assembly and
// spectral-interval estimation entirely.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

func main() {
	svc := repro.NewService(repro.ServiceConfig{Workers: 4})
	defer svc.Close()

	req := repro.SolveRequest{
		Plate:        &repro.PlateSpec{Rows: 30, Cols: 30},
		Solver:       repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-6},
		OmitSolution: true,
	}

	// Cold solve: assembles the plate, builds the splitting, estimates the
	// spectral interval, computes the least-squares coefficients.
	t0 := time.Now()
	v, err := svc.Solve(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold solve:  %-6s %3d iterations  cache_hit=%-5v  %v\n",
		v.State, v.Result.Iterations, v.CacheHit, time.Since(t0).Round(time.Millisecond))

	// Warm wave: 16 concurrent identical solves, all served from the cache.
	t0 = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Solve(context.Background(), req); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("warm wave:   16 solves in %v\n", time.Since(t0).Round(time.Millisecond))

	// A general system rides the same queue; a key opts it into the cache.
	gen := repro.SolveRequest{
		System: &repro.SystemSpec{
			N:   3,
			I:   []int{0, 1, 2, 0, 1, 1, 2},
			J:   []int{0, 1, 2, 1, 0, 2, 1},
			V:   []float64{4, 4, 4, -1, -1, -1, -1},
			F:   []float64{1, 0, 0},
			Key: "tridiag3",
		},
		Solver: repro.SolverSpec{M: 2, Splitting: "jacobi", RelResidualTol: 1e-12},
	}
	v, err = svc.Solve(context.Background(), gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("general:     %-6s u = %.4f\n", v.State, v.Result.U)

	// Requests pick their matvec storage: "dia" forces the paper's
	// diagonal (CYBER-style) layout, "csr" row storage, and the default
	// "auto" probes the matrix — on the banded plate it selects DIA. The
	// cache entry keeps the DIA conversion next to the CSR, so repeated
	// backend-opted solves never re-convert.
	diaReq := req
	diaReq.Solver.Backend = "dia"
	v, err = svc.Solve(context.Background(), diaReq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dia backend: %-6s %3d iterations  backend=%s\n",
		v.State, v.Result.Iterations, v.Result.Backend)

	st := svc.Stats()
	fmt.Printf("stats:       %d done, cache %d/%d hit/miss (rate %.2f), p50 %s, p99 %s, backends csr=%d dia=%d\n",
		st.JobsDone, st.CacheHits, st.CacheMisses, st.CacheHitRate,
		time.Duration(float64(time.Second)*st.LatencyP50).Round(time.Microsecond),
		time.Duration(float64(time.Second)*st.LatencyP99).Round(time.Microsecond),
		st.SolvesCSR, st.SolvesDIA)
}
