// Domain-decomposed solve: run the Finite Element Machine for real. The
// planner is asked for its verdict first, then the same request is pinned
// to the "decomposed" backend — the plate is partitioned into row strips,
// each owned by a goroutine processor that runs the multicolor SSOR m-step
// sweep on its own rows, exchanges true border values with its neighbors,
// and combines inner products up a reduction tree. Afterwards the job's
// trace is replayed to show where each subdomain spent its time.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	l := repro.NewLocal(repro.LocalConfig{Workers: 1})
	defer l.Close()

	// Four goroutine processors: real parallelism on a multicore host, and
	// still a faithful exchange/reduce schedule on a single core.
	const p = 4
	req := repro.Request{
		Plate:  &repro.PlateSpec{Rows: 40, Cols: 40},
		Solver: repro.SolverSpec{M: 2, Tol: 1e-6, Backend: "decomposed", Subdomains: p},
	}

	// What would the planner do on its own? Without the pin it keeps small
	// plates on one cache-resident matrix; the explicit backend overrides.
	ctx := context.Background()
	auto := req
	auto.Solver.Backend = ""
	auto.Solver.Subdomains = 0
	pi, err := l.Plan(ctx, auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto plan:   backend=%s (plate fits one matrix)\n", pi.Backend)
	pi, err = l.Plan(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned plan: backend=%s subdomains=%d\n\n", pi.Backend, pi.Subdomains)

	res, err := l.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iterations (‖Δu‖∞ = %.2e) across %d subdomains\n\n",
		res.Iterations, res.FinalUDiff, res.Plan.Subdomains)

	// The trace records one closed span per subdomain and stage: time in
	// border exchanges, in local sweeps, and waiting on tree reductions.
	ti, err := l.Trace(ctx, res.JobID)
	if err != nil {
		log.Fatal(err)
	}
	stage := map[int]map[string]float64{}
	for _, sp := range ti.Spans {
		switch sp.Name {
		case "halo_exchange", "local_sweep", "reduce":
			r, _ := sp.Attrs["subdomain"].(int)
			if stage[r] == nil {
				stage[r] = map[string]float64{}
			}
			stage[r][sp.Name] += sp.DurationSeconds
		case "decompose":
			fmt.Printf("decompose: %v subdomains, halo fraction %v\n",
				sp.Attrs["subdomains"], sp.Attrs["halo_fraction"])
		}
	}
	fmt.Printf("\n%-10s %14s %14s %14s\n", "subdomain", "sweep (ms)", "halo (ms)", "reduce (ms)")
	for r := 0; r < res.Plan.Subdomains; r++ {
		s := stage[r]
		fmt.Printf("%-10d %14.3f %14.3f %14.3f\n",
			r, 1e3*s["local_sweep"], 1e3*s["halo_exchange"], 1e3*s["reduce"])
	}
}
