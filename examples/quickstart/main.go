// Quickstart: assemble the paper's plane-stress plate problem and solve it
// with the 4-step parametrized multicolor SSOR preconditioned conjugate
// gradient method.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 20×20-node unit square plate, clamped on the left edge and pulled
	// on the right: 760 unknowns.
	problem, err := repro.NewPlateProblem(20, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled plate: %d unknowns\n", problem.N())

	// Plain conjugate gradient for reference.
	cgRes, err := repro.Solve(problem, repro.Config{M: 0, Tol: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG:                       %4d iterations\n", cgRes.Stats.Iterations)

	// The paper's method: m steps of the 6-color SSOR splitting with
	// least-squares parametrized coefficients.
	res, err := repro.Solve(problem, repro.Config{
		M:      4,
		Coeffs: repro.LeastSquaresCoeffs,
		Tol:    1e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-step parametrized SSOR: %4d iterations (%s)\n",
		res.Stats.Iterations, res.Precond)
	// The backend is auto-selected from the matrix structure: the colored
	// plate occupies a fixed family of diagonals, so the matvec runs in
	// the paper's diagonal (CYBER-style) storage.
	fmt.Printf("matvec backend:           %s (auto-selected)\n", res.Backend)
	fmt.Printf("coefficients α over [%.3f, %.3f]: %.4v\n",
		res.Interval.Lo, res.Interval.Hi, res.Alphas.Coeffs)

	// Displacement at the plate's loaded corner.
	nodes, u, v, err := problem.NodeDisplacements(res)
	if err != nil {
		log.Fatal(err)
	}
	last := len(nodes) - 1
	fmt.Printf("corner node displacement: u = %.5f, v = %.5f\n", u[last], v[last])
}
