// Streaming example: submit one batched job with one hard and several easy
// load cases, then watch per-case results arrive over SSE as each column of
// the block solve converges — the easy cases are usable long before the
// hard one finishes. Also shows POST /v1/plan: the execution plan (backend,
// batch tiles, workers) the service resolves for the request, which the
// finished job's result echoes exactly.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro"
)

func main() {
	svc := repro.NewService(repro.ServiceConfig{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// One full-traction load case plus five near-zero ones: under the
	// paper's absolute ‖u^{k+1}−u^k‖_∞ test the tiny cases converge in a
	// couple of iterations while case 0 grinds on.
	req := map[string]any{
		"plate":         map[string]any{"rows": 40, "cols": 40, "tractions": []float64{1, 1e-9, 1e-9, 1e-9, 1e-9, 1e-9}},
		"solver":        map[string]any{"m": 0, "tol": 1e-9},
		"omit_solution": true,
	}

	// Ask the planner first: no solve (and no preconditioner work) happens.
	var plan struct {
		Backend string  `json:"backend"`
		Tiles   [][]int `json:"tiles"`
		Workers int     `json:"workers"`
		M       int     `json:"m"`
	}
	post(srv.URL+"/v1/plan", req, &plan)
	fmt.Printf("plan: backend=%s tiles=%d workers=%d m=%d\n", plan.Backend, len(plan.Tiles), plan.Workers, plan.M)

	// Submit asynchronously, then attach to the job's event stream.
	reqAsync := map[string]any{"async": true}
	for k, v := range req {
		reqAsync[k] = v
	}
	var job struct {
		ID string `json:"id"`
	}
	post(srv.URL+"/v1/solve", reqAsync, &job)

	hreq, err := http.NewRequest("GET", srv.URL+"/v1/jobs/"+job.ID, nil)
	if err != nil {
		log.Fatal(err)
	}
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	// Minimal SSE consumption: "event:" names the frame, "data:" carries
	// the JSON payload.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "case" {
				var ev struct {
					Case   int `json:"case"`
					Result struct {
						Converged  bool `json:"converged"`
						Iterations int  `json:"iterations"`
					} `json:"result"`
				}
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("case %d done: converged=%v after %d iterations\n", ev.Case, ev.Result.Converged, ev.Result.Iterations)
			} else {
				var done struct {
					State  string `json:"state"`
					Result struct {
						Converged bool `json:"converged"`
						Plan      struct {
							Backend string `json:"backend"`
						} `json:"plan"`
					} `json:"result"`
				}
				if err := json.Unmarshal([]byte(data), &done); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("job %s: converged=%v backend=%s (matches the plan above)\n",
					done.State, done.Result.Converged, done.Result.Plan.Backend)
				return
			}
		}
	}
	log.Fatal("stream ended without a done event")
}

func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
