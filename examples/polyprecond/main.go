// Polynomial preconditioner comparison: the truncated Neumann series
// (Jacobi splitting, Dubois–Greenbaum–Rodrigue), natural-ordering SSOR and
// the paper's multicolor SSOR, each unparametrized and parametrized, on a
// general SPD system built through the public matrix builder (a 2-D
// Poisson operator).
package main

import (
	"fmt"
	"log"

	"repro"
)

func buildPoisson(nx, ny int) (*repro.Problem, error) {
	n := nx * ny
	b := repro.NewMatrixBuilder(n)
	idx := func(i, j int) int { return i*nx + j }
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			row := idx(i, j)
			b.Add(row, row, 4)
			if j > 0 {
				b.Add(row, idx(i, j-1), -1)
			}
			if j < nx-1 {
				b.Add(row, idx(i, j+1), -1)
			}
			if i > 0 {
				b.Add(row, idx(i-1, j), -1)
			}
			if i < ny-1 {
				b.Add(row, idx(i+1, j), -1)
			}
		}
	}
	f := make([]float64, n)
	f[idx(ny/2, nx/2)] = 1
	return b.Problem(f)
}

func main() {
	problem, err := buildPoisson(40, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D Poisson, %d unknowns\n\n", problem.N())
	fmt.Printf("%-30s %10s %14s\n", "preconditioner", "iterations", "κ estimate")

	run := func(cfg repro.Config, label string) {
		cfg.RelResidualTol = 1e-10
		cfg.MaxIter = 50000
		res, err := repro.Solve(problem, cfg)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		_, _, kappa, err := repro.EstimateCondition(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %10d %14.1f\n", label, res.Stats.Iterations, kappa)
	}

	run(repro.Config{M: 0}, "none (plain CG)")
	// Odd step counts only for the unparametrized Neumann series: the
	// Jacobi-preconditioned Poisson spectrum approaches 2, where even-m
	// q(λ) = 1-(1-λ)^m vanishes.
	run(repro.Config{M: 1, Splitting: repro.JacobiSplitting}, "1-step Jacobi (Neumann)")
	run(repro.Config{M: 3, Splitting: repro.JacobiSplitting}, "3-step Jacobi (Neumann)")
	run(repro.Config{M: 3, Splitting: repro.JacobiSplitting, Coeffs: repro.ChebyshevCoeffs}, "3-step Jacobi (chebyshev)")
	run(repro.Config{M: 1, Splitting: repro.SSORNatural}, "1-step SSOR natural")
	run(repro.Config{M: 3, Splitting: repro.SSORNatural, Coeffs: repro.LeastSquaresCoeffs}, "3-step SSOR natural (LS)")

	// The multicolor variant needs the colored plate system.
	plate, err := repro.NewPlateProblem(28, 28)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplane-stress plate, %d unknowns (multicolor ordering)\n\n", plate.N())
	fmt.Printf("%-30s %10s %14s\n", "preconditioner", "iterations", "κ estimate")
	runPlate := func(cfg repro.Config, label string) {
		cfg.RelResidualTol = 1e-10
		cfg.MaxIter = 50000
		res, err := repro.Solve(plate, cfg)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		_, _, kappa, err := repro.EstimateCondition(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %10d %14.1f\n", label, res.Stats.Iterations, kappa)
	}
	runPlate(repro.Config{M: 0}, "none (plain CG)")
	runPlate(repro.Config{M: 1}, "1-step multicolor SSOR")
	runPlate(repro.Config{M: 4}, "4-step multicolor SSOR (ones)")
	runPlate(repro.Config{M: 4, Coeffs: repro.LeastSquaresCoeffs}, "4-step multicolor SSOR (LS)")
	runPlate(repro.Config{M: 4, Coeffs: repro.ChebyshevCoeffs}, "4-step multicolor SSOR (cheb)")
}
