// Fleet example: three in-process solverd nodes behind the consistent-hash
// router, driven through the Go SDK. Six distinct problems solved three
// times each produce exactly six fleet-wide cache misses — every repeat
// landed on the node whose cache owns the problem, so each node's hit
// rate matches what a single warm node would show.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro"
	"repro/client"
	"repro/internal/fleet"
	"repro/internal/service"
)

// serveNode runs one solver node on a loopback listener and returns its
// fleet membership entry.
func serveNode(name string) (fleet.Member, func()) {
	svc := service.New(service.Config{NodeID: name, Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, svc.Handler())
	stop := func() { ln.Close(); svc.Close() }
	return fleet.Member{Name: name, URL: "http://" + ln.Addr().String()}, stop
}

func main() {
	// Three nodes, each with its own problem/preconditioner cache.
	var members []fleet.Member
	for _, name := range []string{"n1", "n2", "n3"} {
		m, stop := serveNode(name)
		defer stop()
		members = append(members, m)
	}

	// The router consistent-hashes each request's problem cache key, so a
	// given problem always lands on the same node — its cache owner.
	router, err := fleet.New(fleet.Config{Members: members})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, router.Handler())

	// The SDK speaks to the fleet exactly as it would to one solverd.
	cl := client.New("http://" + ln.Addr().String())
	defer cl.Close()

	ctx := context.Background()
	const repeats = 3
	sizes := []int{13, 15, 18, 20, 22, 26, 30, 32}
	for r := 0; r < repeats; r++ {
		for _, sz := range sizes {
			req := repro.Request{
				Plate:        &repro.PlateSpec{Rows: sz, Cols: sz},
				Solver:       repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-6},
				OmitSolution: true,
			}
			v, err := cl.Solve(ctx, req)
			if err != nil {
				log.Fatal(err)
			}
			if r == 0 {
				fmt.Printf("cold %2d×%-2d -> %s (%d iterations)\n", sz, sz, v.JobID, v.Iterations)
			}
		}
	}

	// Per-node hit rates: each node misses once per problem it owns and
	// serves every repeat warm — single-node cache behavior, fleet-wide.
	st := router.Stats(ctx)
	fmt.Printf("\nfleet: %d jobs, cache %d/%d hit/miss (rate %.2f)\n",
		st.JobsDone, st.CacheHits, st.CacheMisses, st.CacheHitRate)
	for _, ns := range st.Nodes {
		if ns.Stats == nil {
			fmt.Printf("  %s unreachable: %s\n", ns.Name, ns.Error)
			continue
		}
		fmt.Printf("  %s: %2d jobs, %d distinct problems owned, hit rate %.2f\n",
			ns.Name, ns.Stats.JobsDone, ns.Stats.CacheMisses, ns.Stats.CacheHitRate)
	}
	h := router.Health()
	fmt.Printf("health: %s (%d/%d nodes up)\n", h.Status, h.Healthy, h.Members)
}
