package repro_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/internal/fleet"
	"repro/internal/service"
)

// fleetNode is one in-process solverd participating in a fleet test.
type fleetNode struct {
	name string
	svc  *service.Service
	srv  *httptest.Server
}

// kill simulates the node's process dying: sever every connection, stop
// the listener, abort whatever its engine was running.
func (n *fleetNode) kill() {
	n.srv.CloseClientConnections()
	n.srv.Close()
	n.svc.Abort()
}

// startFleetSolver assembles the third repro.Solver implementation: n
// solverd nodes behind a consistent-hash router, driven through the Go
// SDK pointed at the router.
func startFleetSolver(t testing.TB, n int) (*fleet.Router, []*fleetNode, *client.Client) {
	t.Helper()
	var members []fleet.Member
	var nodes []*fleetNode
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("n%d", i)
		svc := service.New(service.Config{NodeID: name, Workers: 2, WorkerBudget: 1})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close)
		t.Cleanup(func() { svc.Close() })
		nodes = append(nodes, &fleetNode{name: name, svc: svc, srv: srv})
		members = append(members, fleet.Member{Name: name, URL: srv.URL})
	}
	router, err := fleet.New(fleet.Config{
		Members:       members,
		CheckInterval: -1,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	rsrv := httptest.NewServer(router.Handler())
	t.Cleanup(rsrv.Close)
	return router, nodes, client.New(rsrv.URL, client.WithRetry(4, 20*time.Millisecond))
}

// fleetOwnerOf resolves which node a request routes to, via the same
// exported key derivation the router applies to wire bodies.
func fleetOwnerOf(t testing.TB, router *fleet.Router, req repro.Request) string {
	t.Helper()
	wire, err := req.Wire()
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	return router.Owner(fleet.RoutingKey(body))
}

// TestFleetStreamParity runs the streaming conformance shape through the
// fleet router: every case exactly once, easy columns early, one terminal
// done — the same contract the local and single-node solvers satisfy.
func TestFleetStreamParity(t *testing.T) {
	_, _, cl := startFleetSolver(t, 3)
	defer cl.Close()
	const easy = 4
	req := hardEasyRequest(easy)

	var events []repro.CaseEvent
	var done *repro.JobView
	err := cl.SolveStream(context.Background(), req, func(ev repro.CaseEvent) {
		if ev.Done != nil {
			done = ev.Done
			return
		}
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if done == nil || done.State != repro.JobDone {
		t.Fatalf("terminal view %+v", done)
	}
	if len(events) != 1+easy {
		t.Fatalf("streamed %d case events, want %d", len(events), 1+easy)
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if seen[ev.Case] {
			t.Fatalf("case %d delivered twice", ev.Case)
		}
		seen[ev.Case] = true
	}
	if events[0].Case == 0 {
		t.Fatal("hard case streamed first — easy columns did not surface early")
	}
}

// TestFleetKillNodeMidBatch is the resilience acceptance test: the node
// streaming a batch dies after the first case arrives, and the batch still
// completes — the SDK reattaches, learns the job is gone (404 through the
// re-sharded router), resubmits, and dedupes the surviving node's replay
// so the caller sees every case exactly once and one done event.
func TestFleetKillNodeMidBatch(t *testing.T) {
	router, nodes, cl := startFleetSolver(t, 3)
	defer cl.Close()

	// One very hard case (near-machine tolerance: thousands of plain-CG
	// iterations) plus easies that stream within milliseconds: the kill
	// lands while the hard column is far from converged.
	const easy = 4
	req := repro.Request{
		Plate:        &repro.PlateSpec{Rows: 60, Cols: 60, Tractions: []float64{1, 1e-9, 1e-9, 1e-9, 1e-9}},
		Solver:       repro.SolverSpec{M: 0, Tol: 1e-12},
		OmitSolution: true,
	}

	owner := fleetOwnerOf(t, router, req)
	var victim *fleetNode
	for _, n := range nodes {
		if n.name == owner {
			victim = n
		}
	}
	if victim == nil {
		t.Fatalf("owner %q is not a fleet node", owner)
	}

	var events []repro.CaseEvent
	var done *repro.JobView
	killed := false
	err := cl.SolveStream(context.Background(), req, func(ev repro.CaseEvent) {
		if ev.Done != nil {
			done = ev.Done
			return
		}
		events = append(events, ev)
		if !killed {
			killed = true
			victim.kill()
		}
	})
	if err != nil {
		t.Fatalf("batch failed after node death: %v", err)
	}
	if done == nil || done.State != repro.JobDone {
		t.Fatalf("terminal view %+v", done)
	}
	if len(events) != 1+easy {
		t.Fatalf("delivered %d case events, want %d (dedupe across resubmit broken?)", len(events), 1+easy)
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if seen[ev.Case] {
			t.Fatalf("case %d delivered twice across the resubmit", ev.Case)
		}
		seen[ev.Case] = true
	}

	// The router noticed the death along the way: the victim is out of the
	// ring and the fleet is still serving.
	h := router.Health()
	if h.Healthy != 2 || h.Status != "ok" {
		t.Fatalf("fleet health after node death: %+v", h)
	}
	for _, nh := range h.Nodes {
		if nh.Name == victim.name && nh.Up {
			t.Fatalf("victim %s still marked up", victim.name)
		}
	}

	// The done view came from a survivor: its job ID is not the victim's.
	if done.ID == "" || owner == "" {
		t.Fatalf("missing ids: done %q owner %q", done.ID, owner)
	}
	if got := done.ID[:len(victim.name)+1]; got == victim.name+"-" {
		t.Fatalf("done view %s still attributed to the dead node", done.ID)
	}
}
