// Package repro is a production-quality Go reproduction of
//
//	Loyce Adams, "An M-Step Preconditioned Conjugate Gradient Method for
//	Parallel Computation", NASA CR-172150 / ICASE 83-23 (ICPP 1983).
//
// The library implements the paper's m-step preconditioned conjugate
// gradient method — preconditioners built from m parametrized steps of a
// stationary iterative method (Jacobi, natural SSOR, or the 6-color
// multicolor SSOR of the paper's plane-stress test problem) — together
// with everything needed to regenerate the paper's evaluation: the
// plane-stress finite element assembly, least-squares and Chebyshev
// polynomial coefficients, spectral interval estimation, a CYBER 203/205
// vector machine cost simulator (Table 2) and a concurrent Finite Element
// Machine simulator (Table 3). The machine also runs for real: the
// "decomposed" backend partitions a plate into subdomains, each owned by a
// dedicated goroutine processor exchanging true border values and
// combining inner products up a reduction tree — auto-selected for plates
// too large for one cache-resident matrix, or pinned via
// Config.Subdomains / the solver spec's "subdomains" field.
//
// Quick start:
//
//	p, _ := repro.NewPlateProblem(20, 20)
//	res, _ := repro.Solve(p, repro.Config{
//	    M:      4,
//	    Coeffs: repro.LeastSquaresCoeffs,
//	    Tol:    1e-6,
//	})
//	fmt.Println(res.Stats.Iterations, "iterations")
//
// The solver's fused inner loops (SpMM, block dot/axpy, the multicolor
// sweep) dispatch through internal/kernel: CPU feature detection selects
// an accelerated implementation set at startup, wide batch tiles run on a
// row-interleaved panel layout, and REPRO_KERNEL=portable (or
// Config.Kernel) forces the portable reference set — bit-identical
// results either way, so the knob only changes speed.
//
// Beyond one-shot solves, the Solver interface is a session that
// amortizes setup across requests and streams per-case results: NewLocal
// embeds the solver engine in process, the client package drives a
// remote solverd daemon through the identical contract, and
// cmd/solverfleet serves the same API over a cluster of solverd nodes —
// internal/fleet consistent-hashes each request by its problem cache key
// so repeats always land on the node whose cache owns the problem, and
// the client SDK's retry/backoff and Last-Event-ID stream resume make a
// node dying mid-batch invisible to callers.
//
// The execution planner is self-tuning: every warm solve feeds its
// realized throughput back into a per-problem tuner, and once enough
// observations accumulate the engine executes the best measured (or
// cost-model-predicted) candidate from a bounded neighborhood around the
// static plan — m, tile width, workers, interleave — with the decision's
// full candidate table attached to Solver.Plan, POST /v1/plan and
// JobResult.Plan. The solver spec's "tuning" field selects the policy:
// "adapt" (default), "observe" (collect evidence, execute statically),
// or "off" (the static plan bit-for-bit, for reproducibility).
//
// The session is observable end to end: every job records a stage
// timeline (queue wait, cache checkout, assembly, preconditioner build,
// planning, per-tile solves) plus a sampled per-iteration convergence
// curve, served by Solver.Trace and GET /v1/jobs/{id}/trace; the engine
// exposes its counters and latency/iteration histograms in Prometheus
// text format on GET /metrics; and solverd adds structured logs and an
// optional pprof/expvar debug listener. The telemetry tap is
// allocation-free on the solve path.
//
// See README.md and the examples/ directory (examples/quickstart,
// examples/embed, examples/batch, examples/stream, examples/service,
// examples/observe, examples/decomposed, examples/tune, examples/fleet)
// for the full tour.
package repro
