// Package fleet turns a set of independent solverd nodes into one solver:
// a consistent-hash router that proxies the full /v1 API, routing every
// request by the same cache key the engine's problem cache uses. Repeated
// solves of one problem always land on the node whose cache holds that
// problem's warm entry, so N nodes give N disjoint warm caches instead of
// N cold ones — the fleet-level analogue of the paper amortizing
// preconditioner setup across many cheap steps.
//
// The router derives the routing key from the wire request alone
// (engine.Request.CacheKey needs no assembly and no cache), health-checks
// members through their /v1/healthz readiness endpoint, re-shards the ring
// when membership changes (consistent hashing moves only the dead node's
// keys), aggregates /v1/stats and /metrics across the fleet with per-node
// labels, and records its routing decisions in an obs registry
// (repro_fleet_routes_total{node}, rebalance counters, per-node health
// gauges).
//
// A fleet fronted by this router is the third interchangeable
// implementation of the repro.Solver contract: point the Go SDK at the
// router and Solve/SolveStream/Plan/Stats behave as they do against one
// node, including SSE streaming (proxied with flush-through) and recovery
// from a node dying mid-batch (the SDK resubmits; the re-sharded ring
// lands the job on a surviving node).
package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Member names one solverd node. Name must equal the node's configured
// node id (solverd -node-id): job IDs are prefixed with it, and the router
// routes job lookups back to the issuing node by that prefix.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config configures a Router.
type Config struct {
	// Members is the fleet roster (at least one; names unique).
	Members []Member
	// VNodes is the consistent-hash virtual-node count per member
	// (0 = DefaultVNodes).
	VNodes int
	// CheckInterval is the background health-check period (0 = 2s;
	// negative disables the background checker — probes then happen only
	// via CheckNow and proxy-failure mark-downs).
	CheckInterval time.Duration
	// ProbeTimeout bounds one health probe (0 = 2s).
	ProbeTimeout time.Duration
	// Client is the proxy transport. It must not enforce an overall
	// request timeout (streams pass through). Nil uses a fresh
	// http.Client.
	Client *http.Client
	// Logger receives routing and membership events (nil = slog default).
	Logger *slog.Logger
}

// member is a roster entry plus its live health state (guarded by
// Router.mu) and its per-node instruments.
type member struct {
	name string
	url  string // normalized: no trailing slash

	up      bool
	lastErr string

	routes    *obs.Counter
	proxyErrs *obs.Counter
}

// Router is the fleet front door: an http.Handler proxying the /v1 API
// across the member nodes. Construct with New; always Close (it owns a
// background health checker).
type Router struct {
	hc      *http.Client
	logger  *slog.Logger
	vnodes  int
	probeTO time.Duration
	start   time.Time
	reg     *obs.Registry

	mu      sync.Mutex
	members []*member // roster order
	byName  map[string]*member
	ring    *Ring // over healthy members only
	rr      int   // round-robin cursor for keyless requests

	rebalances *obs.Counter

	stop     chan struct{}
	stopOnce sync.Once
	checker  sync.WaitGroup
}

// New validates the roster and returns a running router. Members start
// presumed healthy; the first health pass (background, or CheckNow)
// corrects that, and a failed proxy marks a node down immediately.
func New(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("fleet: no members configured")
	}
	r := &Router{
		hc:      cfg.Client,
		logger:  cfg.Logger,
		vnodes:  cfg.VNodes,
		probeTO: cfg.ProbeTimeout,
		start:   time.Now(),
		reg:     obs.NewRegistry(),
		byName:  make(map[string]*member, len(cfg.Members)),
	}
	if r.hc == nil {
		r.hc = &http.Client{}
	}
	if r.logger == nil {
		r.logger = slog.Default()
	}
	if r.probeTO <= 0 {
		r.probeTO = 2 * time.Second
	}
	for _, m := range cfg.Members {
		if m.Name == "" {
			return nil, fmt.Errorf("fleet: member with empty name (URL %q)", m.URL)
		}
		if strings.Contains(m.Name, "-j-") {
			// Job IDs are "<name>-j-<seq>"; a name containing the separator
			// would make prefix routing ambiguous.
			return nil, fmt.Errorf("fleet: member name %q must not contain %q", m.Name, "-j-")
		}
		if _, dup := r.byName[m.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate member name %q", m.Name)
		}
		u, err := url.Parse(m.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: member %s has invalid URL %q", m.Name, m.URL)
		}
		mm := &member{
			name: m.Name,
			url:  strings.TrimRight(m.URL, "/"),
			up:   true,
			routes: r.reg.LabeledCounter("repro_fleet_routes_total",
				"Requests routed to each fleet node.", obs.Label{Key: "node", Value: m.Name}),
			proxyErrs: r.reg.LabeledCounter("repro_fleet_proxy_errors_total",
				"Proxy attempts that failed to reach the node.", obs.Label{Key: "node", Value: m.Name}),
		}
		r.members = append(r.members, mm)
		r.byName[m.Name] = mm
		r.reg.GaugeFunc("repro_fleet_node_up",
			"Per-node health: 1 when the node passed its last check.",
			func() float64 {
				r.mu.Lock()
				defer r.mu.Unlock()
				if mm.up {
					return 1
				}
				return 0
			}, obs.Label{Key: "node", Value: m.Name})
	}
	r.rebalances = r.reg.Counter("repro_fleet_rebalances_total",
		"Ring rebuilds triggered by membership/health changes.")
	r.reg.GaugeFunc("repro_fleet_members", "Configured fleet size.",
		func() float64 { return float64(len(r.members)) })
	r.reg.GaugeFunc("repro_fleet_healthy_members", "Members currently considered healthy.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			n := 0
			for _, m := range r.members {
				if m.up {
					n++
				}
			}
			return float64(n)
		})
	r.reg.GaugeFunc("repro_fleet_uptime_seconds", "Router uptime.",
		func() float64 { return time.Since(r.start).Seconds() })

	r.mu.Lock()
	r.rebuildRingLocked()
	r.mu.Unlock()

	interval := cfg.CheckInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	r.stop = make(chan struct{})
	if interval > 0 {
		r.checker.Add(1)
		go r.checkLoop(interval)
	}
	return r, nil
}

// Close stops the background health checker. It does not touch the member
// nodes.
func (r *Router) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	r.checker.Wait()
	return nil
}

// Members returns the configured roster.
func (r *Router) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, len(r.members))
	for i, m := range r.members {
		out[i] = Member{Name: m.name, URL: m.url}
	}
	return out
}

// Owner returns the healthy member a routing key currently maps to ("" for
// an uncacheable key, which round-robins instead). Exported for tests and
// examples asserting cache affinity.
func (r *Router) Owner(key string) string {
	if key == "" {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Owner(key)
}

// rebuildRingLocked recomputes the consistent-hash ring over the currently
// healthy members. Callers hold r.mu.
func (r *Router) rebuildRingLocked() {
	names := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m.up {
			names = append(names, m.name)
		}
	}
	r.ring = NewRing(names, r.vnodes)
}

// markDown records a proxy failure against m: the node drops out of the
// ring immediately (no waiting for the next health tick) so the retry and
// every subsequent request reroute to survivors.
func (r *Router) markDown(m *member, cause error) {
	m.proxyErrs.Inc()
	r.mu.Lock()
	changed := m.up
	if changed {
		m.up = false
		m.lastErr = cause.Error()
		r.rebuildRingLocked()
	}
	r.mu.Unlock()
	if changed {
		r.rebalances.Inc()
		r.logger.Warn("fleet member down", "node", m.name, "cause", cause.Error())
	}
}

// checkLoop is the background health checker.
func (r *Router) checkLoop(interval time.Duration) {
	defer r.checker.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.CheckNow(context.Background())
		}
	}
}

// CheckNow probes every member's /v1/healthz once, in parallel, and
// re-shards the ring if any verdict changed. A node is healthy only on
// HTTP 200 — a draining node's 503 takes it out of rotation while it
// finishes its queue. Exported so tests and operators can force a
// deterministic membership refresh.
func (r *Router) CheckNow(ctx context.Context) {
	r.mu.Lock()
	members := append([]*member(nil), r.members...)
	r.mu.Unlock()

	up := make([]bool, len(members))
	errs := make([]string, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func() {
			defer wg.Done()
			up[i], errs[i] = r.probe(ctx, m)
		}()
	}
	wg.Wait()

	r.mu.Lock()
	changed := false
	for i, m := range members {
		if m.up != up[i] {
			changed = true
		}
		m.up = up[i]
		m.lastErr = errs[i]
	}
	if changed {
		r.rebuildRingLocked()
	}
	healthy := r.ring.Len()
	r.mu.Unlock()
	if changed {
		r.rebalances.Inc()
		r.logger.Info("fleet membership changed", "healthy", healthy, "members", len(members))
	}
}

// probe performs one readiness check against m.
func (r *Router) probe(ctx context.Context, m *member) (up bool, errText string) {
	ctx, cancel := context.WithTimeout(ctx, r.probeTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/healthz", nil)
	if err != nil {
		return false, err.Error()
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Sprintf("healthz returned status %d", resp.StatusCode)
	}
	return true, ""
}

// healthyCandidates returns the proxy order for a request: the key's owner
// and its clockwise successors for cacheable requests, the round-robin
// rotation of healthy members for keyless ones.
func (r *Router) healthyCandidates(key string) []*member {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	if key != "" {
		names = r.ring.Owners(key, r.ring.Len())
	} else {
		names = r.ring.Members()
		if n := len(names); n > 0 {
			r.rr++
			rot := r.rr % n
			names = append(names[rot:], names[:rot]...)
		}
	}
	out := make([]*member, 0, len(names))
	for _, n := range names {
		out = append(out, r.byName[n])
	}
	return out
}
