package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/internal/fleet"
	"repro/internal/service"
)

// testNode is one in-process solverd: an engine service behind an httptest
// listener, named so the router can route job IDs back to it.
type testNode struct {
	name string
	svc  *service.Service
	srv  *httptest.Server
}

// kill severs every open connection and stops the listener — the closest
// an httptest server gets to the node's process dying.
func (n *testNode) kill() {
	n.srv.CloseClientConnections()
	n.srv.Close()
}

// startFleet brings up n nodes and a router over them. The background
// health checker is disabled so tests control membership transitions
// (proxy-failure mark-downs and explicit CheckNow) deterministically.
func startFleet(t *testing.T, n int) (*fleet.Router, *httptest.Server, []*testNode) {
	t.Helper()
	var members []fleet.Member
	var nodes []*testNode
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("n%d", i)
		svc := service.New(service.Config{NodeID: name, Workers: 2, WorkerBudget: 1})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(srv.Close) // idempotent; safe after kill
		t.Cleanup(func() { svc.Close() })
		nodes = append(nodes, &testNode{name: name, svc: svc, srv: srv})
		members = append(members, fleet.Member{Name: name, URL: srv.URL})
	}
	router, err := fleet.New(fleet.Config{
		Members:       members,
		CheckInterval: -1,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	rsrv := httptest.NewServer(router.Handler())
	t.Cleanup(rsrv.Close)
	return router, rsrv, nodes
}

// routingKeyOf computes the router's key for a request, through the same
// exported derivation the router uses on the wire body.
func routingKeyOf(t *testing.T, req repro.Request) string {
	t.Helper()
	wire, err := req.Wire()
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	return fleet.RoutingKey(body)
}

func plateReq(rows int) repro.Request {
	return repro.Request{
		Plate:  &repro.PlateSpec{Rows: rows, Cols: rows},
		Solver: repro.SolverSpec{M: 2, Coeffs: "least-squares", Tol: 1e-7},
	}
}

// TestFleetCacheAffinity is the tentpole acceptance test: K distinct
// problems solved R times each through the router produce exactly K
// fleet-wide cache misses and K×(R−1) hits — the same warm-cache behavior
// a single node gives, meaning every repeat landed on the node whose cache
// owned the problem.
func TestFleetCacheAffinity(t *testing.T) {
	router, rsrv, nodes := startFleet(t, 3)
	cl := client.New(rsrv.URL)
	defer cl.Close()

	const repeats = 3
	sizes := []int{8, 9, 10, 11, 12, 13}
	ctx := context.Background()
	for r := 0; r < repeats; r++ {
		for _, sz := range sizes {
			if _, err := cl.Solve(ctx, plateReq(sz)); err != nil {
				t.Fatalf("solve %d×%d (round %d): %v", sz, sz, r, err)
			}
		}
	}

	// The SDK's Stats decodes the fleet aggregate unchanged.
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	wantMisses := int64(len(sizes))
	wantHits := int64(len(sizes) * (repeats - 1))
	if st.CacheMisses != wantMisses || st.CacheHits != wantHits {
		t.Fatalf("fleet cache hits/misses = %d/%d, want %d/%d (affinity broken: repeats landed on cold nodes)",
			st.CacheHits, st.CacheMisses, wantHits, wantMisses)
	}
	if st.JobsDone != int64(len(sizes)*repeats) {
		t.Fatalf("fleet jobs done = %d, want %d", st.JobsDone, len(sizes)*repeats)
	}

	// Per-node: every node that saw a problem saw it warm after round one —
	// each node's misses equal its share of distinct problems.
	keysByNode := map[string]int{}
	for _, sz := range sizes {
		keysByNode[router.Owner(routingKeyOf(t, plateReq(sz)))]++
	}
	if len(keysByNode) < 2 {
		t.Fatalf("all %d problems routed to one node; want a spread", len(sizes))
	}
	fstats := router.Stats(ctx)
	for _, ns := range fstats.Nodes {
		if ns.Stats == nil {
			t.Fatalf("node %s unreachable in stats: %s", ns.Name, ns.Error)
		}
		owned := int64(keysByNode[ns.Name])
		if ns.Stats.CacheMisses != owned {
			t.Fatalf("node %s: %d misses, want %d (its share of distinct problems)", ns.Name, ns.Stats.CacheMisses, owned)
		}
		if ns.Stats.CacheHits != owned*int64(repeats-1) {
			t.Fatalf("node %s: %d hits, want %d", ns.Name, ns.Stats.CacheHits, owned*(repeats-1))
		}
	}
	_ = nodes
}

// TestFleetJobRouting: job-scoped routes follow the job ID's node prefix
// through the router — status, trace, and the canonical 404 for unknown
// jobs.
func TestFleetJobRouting(t *testing.T) {
	_, rsrv, _ := startFleet(t, 3)
	cl := client.New(rsrv.URL)
	defer cl.Close()
	ctx := context.Background()

	res, err := cl.Solve(ctx, plateReq(10))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.JobID, "-j-") {
		t.Fatalf("job ID %q is not node-prefixed", res.JobID)
	}
	ti, err := cl.Trace(ctx, res.JobID)
	if err != nil {
		t.Fatalf("trace through router: %v", err)
	}
	if ti.JobID != res.JobID || len(ti.Spans) == 0 {
		t.Fatalf("trace %+v does not describe job %s", ti, res.JobID)
	}

	// Unknown prefix scatters and yields the canonical single-node 404.
	_, err = cl.Trace(ctx, "zz-j-000099")
	if client.StatusCode(err) != http.StatusNotFound {
		t.Fatalf("unknown job returned %v (status %d), want 404", err, client.StatusCode(err))
	}
	if got, want := err.Error(), "unknown job zz-j-000099"; got != want {
		t.Fatalf("404 text %q, want %q", got, want)
	}
}

// TestFleetValidationParity: a malformed request through the router keeps
// the node's authoritative error text and 400 status (the router must not
// pre-judge bodies it cannot parse).
func TestFleetValidationParity(t *testing.T) {
	_, rsrv, _ := startFleet(t, 2)
	cl := client.New(rsrv.URL)
	defer cl.Close()

	local := repro.NewLocal(repro.LocalConfig{Workers: 1})
	defer local.Close()

	bad := repro.Request{Plate: &repro.PlateSpec{Rows: 1, Cols: 5}}
	ctx := context.Background()
	_, lerr := local.Solve(ctx, bad)
	_, rerr := cl.Solve(ctx, bad)
	if lerr == nil || rerr == nil {
		t.Fatalf("bad request accepted: local %v, fleet %v", lerr, rerr)
	}
	if lerr.Error() != rerr.Error() {
		t.Fatalf("error text differs:\nlocal: %v\nfleet: %v", lerr, rerr)
	}
	if client.StatusCode(rerr) != http.StatusBadRequest {
		t.Fatalf("fleet status %d, want 400", client.StatusCode(rerr))
	}
}

// TestFleetMetricsMerge: the router exposition carries its own routing
// counters plus every node's metrics relabeled with node="...", each
// family header appearing exactly once.
func TestFleetMetricsMerge(t *testing.T) {
	_, rsrv, _ := startFleet(t, 2)
	cl := client.New(rsrv.URL)
	defer cl.Close()
	if _, err := cl.Solve(context.Background(), plateReq(8)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(rsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)

	if !strings.Contains(text, `repro_fleet_routes_total{node="n1"}`) ||
		!strings.Contains(text, `repro_fleet_routes_total{node="n2"}`) {
		t.Fatalf("router metrics missing per-node route counters:\n%s", text)
	}
	for _, node := range []string{"n1", "n2"} {
		if !strings.Contains(text, fmt.Sprintf(`repro_jobs_total{node=%q,state="done"}`, node)) {
			t.Fatalf("merged exposition missing node %s engine metrics:\n%s", node, text)
		}
	}
	if n := strings.Count(text, "# TYPE repro_jobs_total "); n != 1 {
		t.Fatalf("family header repeated %d times, want once", n)
	}
	// Histogram sample relabeling keeps the le label intact.
	if !strings.Contains(text, `repro_queue_wait_seconds_bucket{node="n1",le=`) {
		t.Fatalf("histogram buckets not relabeled:\n%s", text)
	}
}

// TestFleetHealthAndResharding: a dead node is discovered by CheckNow,
// leaves the ring (moving only its keys), and the fleet healthz verdict
// tracks it.
func TestFleetHealthAndResharding(t *testing.T) {
	router, rsrv, nodes := startFleet(t, 3)
	cl := client.New(rsrv.URL)
	defer cl.Close()

	before := map[string]string{}
	for sz := 8; sz < 20; sz++ {
		key := routingKeyOf(t, plateReq(sz))
		before[key] = router.Owner(key)
	}

	nodes[1].kill()
	router.CheckNow(context.Background())

	h := router.Health()
	if h.Healthy != 2 || h.Status != "ok" {
		t.Fatalf("after killing one of three nodes: %+v", h)
	}
	for _, nh := range h.Nodes {
		if (nh.Name == nodes[1].name) == nh.Up {
			t.Fatalf("node %s up=%v after kill of %s", nh.Name, nh.Up, nodes[1].name)
		}
	}

	// Only the dead node's keys moved.
	for key, owner := range before {
		now := router.Owner(key)
		if owner == nodes[1].name {
			if now == nodes[1].name || now == "" {
				t.Fatalf("key %q still owned by dead node", key)
			}
		} else if now != owner {
			t.Fatalf("key %q moved %s→%s though its owner survived", key, owner, now)
		}
	}

	// Solves still succeed, including ones whose owner died.
	ctx := context.Background()
	for sz := 8; sz < 20; sz++ {
		if _, err := cl.Solve(ctx, plateReq(sz)); err != nil {
			t.Fatalf("solve %d after node death: %v", sz, err)
		}
	}

	// All nodes dead → healthz 503 and a gateway error for solves.
	nodes[0].kill()
	nodes[2].kill()
	router.CheckNow(ctx)
	resp, err := http.Get(rsrv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no live nodes returned %d, want 503", resp.StatusCode)
	}
	fast := client.New(rsrv.URL, client.WithRetry(1, time.Millisecond))
	defer fast.Close()
	if _, err := fast.Solve(ctx, plateReq(8)); client.StatusCode(err) != http.StatusBadGateway {
		t.Fatalf("solve with no live nodes returned %v, want 502", err)
	}
}
