package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when Config.VNodes is
// zero. More points smooth the key distribution (each member owns many
// small arcs instead of one big one) at O(members × vnodes) memory.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over member names. Each member
// is hashed onto the ring at vnodes points; a key belongs to the member
// owning the first point at or clockwise after the key's hash. Two
// properties make it the fleet's routing structure:
//
//   - Deterministic: the ring is a pure function of (members, vnodes), so
//     every router instance — and every test — computes identical
//     ownership. No seeds, no insertion-order dependence.
//   - Minimal re-keying: removing a member deletes only that member's
//     points, so exactly the keys it owned move (to their next clockwise
//     owner); every other key's successor point is untouched. Adding a
//     member steals only the arcs its new points land in. A naive
//     hash-mod-N router would reshuffle nearly everything and flush every
//     node's warm cache on each membership change.
//
// Membership changes build a new Ring rather than mutating; lookups on an
// immutable ring need no locks.
type Ring struct {
	members []string // sorted, deduplicated
	points  []ringPoint
}

type ringPoint struct {
	hash  uint64
	owner string
}

// hashKey is 64-bit FNV-1a run through a 64-bit avalanche finalizer:
// cheap, dependency-free, and stable across processes and architectures
// (unlike maphash, which is seeded). Raw FNV-1a clusters badly on the
// short, highly similar strings this ring hashes ("n1#0", "n1#1", …);
// the finalizer (the murmur3 fmix64 constants) spreads single-bit input
// differences over the whole word, which is what the balance guarantee
// rests on.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// NewRing builds the ring for the given member names with vnodes points
// per member (vnodes <= 0 selects DefaultVNodes). Duplicate names collapse
// to one membership.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hashKey(m + "#" + strconv.Itoa(i)), m})
		}
	}
	// Tie-break equal hashes by owner name so the order — and therefore
	// ownership — never depends on construction order.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].owner < r.points[b].owner
	})
	return r
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.successor(key)].owner
}

// Owners returns up to n distinct members in clockwise order starting at
// key's owner: the failover order when the owner is unreachable, chosen so
// every router agrees on the second choice too.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.successor(key); len(out) < n && i < len(r.points); i++ {
		owner := r.points[(start+i)%len(r.points)].owner
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// successor returns the index of the first point at or clockwise after
// key's hash.
func (r *Ring) successor(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
