package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/engine"
)

// maxBodyBytes mirrors the node-side request cap.
const maxBodyBytes = 64 << 20

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the fleet's HTTP API — the same /v1 surface a single
// solverd serves, so the Go SDK (and repro.Solver conformance) work
// unchanged against a router:
//
//	POST   /v1/solve           routed by the request's problem cache key
//	POST   /v1/plan            routed by the same key (plans read the cache)
//	GET    /v1/jobs/{id}       routed by the job-id node prefix; SSE and
//	                           ?watch=1 streams proxy with flush-through
//	GET    /v1/jobs/{id}/trace routed by the job-id node prefix
//	DELETE /v1/jobs/{id}       routed by the job-id node prefix
//	GET    /v1/stats           aggregated across the fleet, per-node detail
//	GET    /v1/healthz         router readiness (200 while any node is up)
//	GET    /metrics            merged exposition, node="..." labels added
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", r.handleKeyed)
	mux.HandleFunc("POST /v1/plan", r.handleKeyed)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", r.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleJob)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /v1/healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

// RoutingKey derives the consistent-hash routing key from a raw /v1/solve
// or /v1/plan body: the engine's own problem cache key, computed from the
// wire request without assembling anything. "" means uncacheable — any
// node serves it equally well, so the router round-robins it. The decode
// here is deliberately lenient (unknown fields, malformed JSON): the node
// the request lands on performs the authoritative validation, keeping
// error text identical to a single-node deployment.
func RoutingKey(body []byte) string {
	var req engine.Request
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	return req.CacheKey()
}

// nodeOfJob extracts the node name a job ID is prefixed with
// ("n1-j-000042" → "n1"), or "" for an unprefixed ID.
func nodeOfJob(id string) string {
	if i := strings.LastIndex(id, "-j-"); i > 0 {
		return id[:i]
	}
	return ""
}

// handleKeyed proxies /v1/solve and /v1/plan: derive the cache key, walk
// the key's owner and its ring successors (or the round-robin rotation for
// keyless requests), and forward to the first reachable node. A node that
// cannot be reached is marked down on the spot — the ring re-shards and
// the same loop retries the next owner.
func (r *Router) handleKeyed(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read request body: " + err.Error()})
		return
	}
	key := RoutingKey(body)
	for _, m := range r.healthyCandidates(key) {
		resp, err := r.send(req, m, body)
		if err != nil {
			if req.Context().Err() != nil {
				return // caller gone; nothing to answer
			}
			r.markDown(m, err)
			continue
		}
		m.routes.Inc()
		r.logger.Debug("fleet route", "path", req.URL.Path, "key", key, "node", m.name)
		relayResponse(w, resp)
		return
	}
	writeJSON(w, http.StatusBadGateway, errorResponse{Error: "fleet: no reachable node"})
}

// handleJob proxies the job-scoped routes. A prefixed job ID names its
// issuing node outright; the router goes straight there. If that node is
// gone, so is the job (node state is in-memory): respond 404 so the SDK's
// resubmit path takes over. IDs without a known prefix scatter across the
// healthy members — first node that recognizes the job wins.
func (r *Router) handleJob(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	notFound := func() {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
	}

	if name := nodeOfJob(id); name != "" {
		r.mu.Lock()
		m, known := r.byName[name]
		var up bool
		if known {
			up = m.up
		}
		r.mu.Unlock()
		if known {
			if !up {
				notFound()
				return
			}
			resp, err := r.send(req, m, nil)
			if err != nil {
				if req.Context().Err() != nil {
					return
				}
				r.markDown(m, err)
				notFound()
				return
			}
			m.routes.Inc()
			relayResponse(w, resp)
			return
		}
	}

	// Unknown prefix: scatter. Every miss is a 404 from a live node; only
	// a non-404 response (found, or a real error verdict) is relayed.
	candidates := r.healthyCandidates("")
	reached := false
	for _, m := range candidates {
		resp, err := r.send(req, m, nil)
		if err != nil {
			if req.Context().Err() != nil {
				return
			}
			r.markDown(m, err)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			reached = true
			continue
		}
		m.routes.Inc()
		relayResponse(w, resp)
		return
	}
	if reached {
		notFound()
		return
	}
	writeJSON(w, http.StatusBadGateway, errorResponse{Error: "fleet: no reachable node"})
}

// send forwards req to m and returns the node's response (body unread).
// body is the buffered request body, nil for bodyless methods. The
// outbound request shares the inbound context, so a disconnecting caller
// severs the proxied call too (which is how synchronous-solve cancellation
// propagates through the router).
func (r *Router) send(req *http.Request, m *member, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, m.url+req.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "Accept", "Last-Event-ID", "X-Request-Id"} {
		if v := req.Header.Get(h); v != "" {
			out.Header.Set(h, v)
		}
	}
	return r.hc.Do(out)
}

// relayResponse copies a node response to the caller, flushing after every
// chunk so proxied SSE/ndjson streams stay live.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// FleetHealth is the router's GET /v1/healthz payload.
type FleetHealth struct {
	// Status is "ok" while at least one member is healthy, else "down".
	Status  string       `json:"status"`
	Members int          `json:"members"`
	Healthy int          `json:"healthy"`
	Nodes   []NodeHealth `json:"nodes"`
	// UptimeSeconds is the router's own uptime.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// NodeHealth is one member's verdict within FleetHealth.
type NodeHealth struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Up    bool   `json:"up"`
	Error string `json:"error,omitempty"`
}

// Health reports the router's current view of the fleet without probing.
func (r *Router) Health() FleetHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := FleetHealth{
		Status:        "down",
		Members:       len(r.members),
		UptimeSeconds: time.Since(r.start).Seconds(),
	}
	for _, m := range r.members {
		nh := NodeHealth{Name: m.name, URL: m.url, Up: m.up}
		if !m.up {
			nh.Error = m.lastErr
		} else {
			h.Healthy++
		}
		h.Nodes = append(h.Nodes, nh)
	}
	if h.Healthy > 0 {
		h.Status = "ok"
	}
	return h
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := r.Health()
	code := http.StatusOK
	if h.Healthy == 0 {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
