package fleet

import (
	"fmt"
	"testing"
)

// testKeys generates deterministic keys shaped like real routing keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("plate/%dx%d/E=1,nu=0.3,t=1/q=1|ssor-multicolor/m=%d/ones/omega=1", 8+i%40, 8+(i/40)%40, i%5)
	}
	return keys
}

// TestRingDeterminism: ownership is a pure function of the member set —
// construction order must not matter, and rebuilding must not move keys.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3", "n4", "n5"}, 0)
	b := NewRing([]string{"n4", "n2", "n5", "n1", "n3"}, 0)
	c := NewRing([]string{"n1", "n2", "n3", "n4", "n5"}, 0)
	for _, key := range testKeys(2000) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner depends on construction order (%s vs %s)", key, a.Owner(key), b.Owner(key))
		}
		if a.Owner(key) != c.Owner(key) {
			t.Fatalf("key %q: rebuild moved the key (%s vs %s)", key, a.Owner(key), c.Owner(key))
		}
	}
}

// TestRingBalance: with the default virtual-node count, no member's share
// of a large key population strays far from fair. The bound is loose
// enough for hash variance but tight enough that a broken vnode scheme
// (one arc per member) fails it.
func TestRingBalance(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5"}
	r := NewRing(members, 0)
	keys := testKeys(20000)
	counts := make(map[string]int)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		share := float64(counts[m]) / fair
		if share < 0.7 || share > 1.3 {
			t.Errorf("member %s owns %.2f× the fair share (%d of %d keys)", m, share, counts[m], len(keys))
		}
	}
}

// TestRingMinimalRekeying: removing one member moves exactly the keys it
// owned — every other key keeps its owner (the warm-cache-preservation
// property the fleet router depends on). Adding a member moves keys only
// onto the new member.
func TestRingMinimalRekeying(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4", "n5", "n6"}
	before := NewRing(members, 0)
	keys := testKeys(10000)
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		owners[k] = before.Owner(k)
	}

	const removed = "n3"
	var without []string
	for _, m := range members {
		if m != removed {
			without = append(without, m)
		}
	}
	after := NewRing(without, 0)
	moved, ownedByRemoved := 0, 0
	for _, k := range keys {
		if owners[k] == removed {
			ownedByRemoved++
		}
		if after.Owner(k) != owners[k] {
			moved++
			if owners[k] != removed {
				t.Fatalf("key %q moved from surviving member %s to %s", k, owners[k], after.Owner(k))
			}
		}
	}
	if moved != ownedByRemoved {
		t.Fatalf("%d keys moved, but the removed member owned %d", moved, ownedByRemoved)
	}
	// ~K/N of the keys move, bounded by the balance guarantee.
	if limit := int(1.3 * float64(len(keys)) / float64(len(members))); moved > limit {
		t.Fatalf("%d keys moved on one removal, want <= %d (~K/N)", moved, limit)
	}

	// Adding a member steals keys only for itself.
	grown := NewRing(append(append([]string(nil), members...), "n7"), 0)
	for _, k := range keys {
		if o := grown.Owner(k); o != owners[k] && o != "n7" {
			t.Fatalf("key %q moved from %s to %s when only n7 joined", k, owners[k], o)
		}
	}
}

// TestRingOwners: the failover order starts at the owner, lists distinct
// members, and is capped by membership.
func TestRingOwners(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	for _, key := range testKeys(100) {
		owners := r.Owners(key, 5)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 5) = %v, want 3 distinct members", key, owners)
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %s, want the owner %s", key, owners[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %s: %v", key, o, owners)
			}
			seen[o] = true
		}
	}
}

// TestRingEmpty: an empty ring owns nothing rather than panicking.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if o := r.Owner("anything"); o != "" {
		t.Fatalf("empty ring returned owner %q", o)
	}
	if os := r.Owners("anything", 3); os != nil {
		t.Fatalf("empty ring returned owners %v", os)
	}
}
