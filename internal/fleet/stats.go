package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
)

// Stats is the fleet's GET /v1/stats payload: the single-node Stats shape
// with fleet-wide values (so the Go SDK's Stats() decodes it unchanged
// when pointed at a router), plus the per-node breakdown. Counters sum
// across nodes; the cache hit rate is recomputed from the summed hits and
// misses; latency quantiles take the per-node maximum (the conservative
// fleet answer: no node is slower than what is reported); uptime is the
// router's own.
type Stats struct {
	engine.Stats
	FleetMembers int         `json:"fleet_members"`
	FleetHealthy int         `json:"fleet_healthy"`
	Nodes        []NodeStats `json:"nodes"`
}

// NodeStats is one member's contribution to the fleet Stats.
type NodeStats struct {
	Name  string        `json:"name"`
	URL   string        `json:"url"`
	Up    bool          `json:"up"`
	Error string        `json:"error,omitempty"`
	Stats *engine.Stats `json:"stats,omitempty"`
}

// Stats fans GET /v1/stats out to every member and aggregates.
func (r *Router) Stats(ctx context.Context) Stats {
	r.mu.Lock()
	members := append([]*member(nil), r.members...)
	r.mu.Unlock()

	nodes := make([]NodeStats, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nodes[i] = NodeStats{Name: m.name, URL: m.url}
			st, err := r.fetchStats(ctx, m)
			if err != nil {
				nodes[i].Error = err.Error()
				return
			}
			nodes[i].Up = true
			nodes[i].Stats = st
		}()
	}
	wg.Wait()

	agg := Stats{FleetMembers: len(members), Nodes: nodes}
	agg.UptimeSeconds = time.Since(r.start).Seconds()
	maxf := func(dst *float64, v float64) {
		if v > *dst {
			*dst = v
		}
	}
	for _, n := range nodes {
		if n.Stats == nil {
			continue
		}
		agg.FleetHealthy++
		st := n.Stats
		agg.Workers += st.Workers
		agg.WorkerBudget += st.WorkerBudget
		agg.QueueDepth += st.QueueDepth
		agg.QueueCap += st.QueueCap
		agg.Running += st.Running
		agg.JobsDone += st.JobsDone
		agg.JobsFailed += st.JobsFailed
		agg.CacheHits += st.CacheHits
		agg.CacheMisses += st.CacheMisses
		agg.CacheEntries += st.CacheEntries
		agg.TotalIterations += st.TotalIterations
		agg.SolvesCSR += st.SolvesCSR
		agg.SolvesDIA += st.SolvesDIA
		agg.SolvesDecomposed += st.SolvesDecomposed
		agg.TilesExecuted += st.TilesExecuted
		agg.PlanFeedback += st.PlanFeedback
		agg.StreamSubscribers += st.StreamSubscribers
		maxf(&agg.LatencyP50, st.LatencyP50)
		maxf(&agg.LatencyP99, st.LatencyP99)
		maxf(&agg.LatencyP50CSR, st.LatencyP50CSR)
		maxf(&agg.LatencyP99CSR, st.LatencyP99CSR)
		maxf(&agg.LatencyP50DIA, st.LatencyP50DIA)
		maxf(&agg.LatencyP99DIA, st.LatencyP99DIA)
		maxf(&agg.LatencyP50Decomposed, st.LatencyP50Decomposed)
		maxf(&agg.LatencyP99Decomposed, st.LatencyP99Decomposed)
	}
	if total := agg.CacheHits + agg.CacheMisses; total > 0 {
		agg.CacheHitRate = float64(agg.CacheHits) / float64(total)
	}
	return agg
}

// fetchStats retrieves one member's /v1/stats under the probe timeout.
func (r *Router) fetchStats(ctx context.Context, m *member) (*engine.Stats, error) {
	ctx, cancel := context.WithTimeout(ctx, r.probeTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats returned status %d", resp.StatusCode)
	}
	var st engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats(req.Context()))
}

// handleMetrics serves the fleet exposition: the router's own repro_fleet_*
// registry followed by every member's /metrics relabeled with a
// node="<name>" label, merged so each metric family's HELP/TYPE header
// appears exactly once across the fleet.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	members := append([]*member(nil), r.members...)
	r.mu.Unlock()

	texts := make([]string, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func() {
			defer wg.Done()
			texts[i], _ = r.fetchMetrics(req.Context(), m)
		}()
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.reg.WriteProm(w)

	merged := newExpositionMerge()
	for i, m := range members {
		if texts[i] != "" {
			merged.addNode(m.name, texts[i])
		}
	}
	merged.write(w)
}

// fetchMetrics retrieves one member's raw /metrics text.
func (r *Router) fetchMetrics(ctx context.Context, m *member) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, r.probeTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics returned status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	return string(b), err
}

// expositionMerge regroups several nodes' Prometheus text expositions into
// one: sample lines gain a node label, and the HELP/TYPE header of each
// family (shared by every node — they all run the same engine) is emitted
// once.
type expositionMerge struct {
	order   []string            // family first-seen order
	headers map[string][]string // family → HELP/TYPE lines
	samples map[string][]string // family → relabeled sample lines
}

func newExpositionMerge() *expositionMerge {
	return &expositionMerge{
		headers: make(map[string][]string),
		samples: make(map[string][]string),
	}
}

// addNode folds one node's exposition text in. Samples belong to the most
// recently declared family, which is how the text format orders lines; a
// sample arriving before any header (malformed, but harmless) is grouped
// under its own metric name.
func (em *expositionMerge) addNode(node, text string) {
	current := ""
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE "):
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			name := fields[2]
			if name != current {
				current = name
				if _, seen := em.headers[name]; !seen {
					em.headers[name] = nil
					em.order = append(em.order, name)
				}
			}
			if len(em.headers[current]) < 2 && !contains(em.headers[current], line) {
				em.headers[current] = append(em.headers[current], line)
			}
		case strings.HasPrefix(line, "#"):
		default:
			fam := current
			if fam == "" {
				fam = sampleName(line)
				if _, seen := em.headers[fam]; !seen {
					em.headers[fam] = nil
					em.order = append(em.order, fam)
				}
			}
			em.samples[fam] = append(em.samples[fam], relabelSample(line, node))
		}
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// sampleName extracts the metric name from a sample line.
func sampleName(line string) string {
	if i := strings.IndexAny(line, "{ "); i > 0 {
		return line[:i]
	}
	return line
}

// relabelSample injects node="<node>" as the first label of a sample line,
// handling both labeled (`name{a="b"} 1`) and bare (`name 1`) forms —
// including histogram _bucket/_sum/_count lines, whose labels sit on the
// suffixed name.
func relabelSample(line, node string) string {
	nodeLabel := fmt.Sprintf("node=%q", node)
	if i := strings.IndexAny(line, "{ "); i > 0 {
		if line[i] == '{' {
			if strings.HasPrefix(line[i:], "{}") {
				return line[:i] + "{" + nodeLabel + "}" + line[i+2:]
			}
			return line[:i] + "{" + nodeLabel + "," + line[i+1:]
		}
		return line[:i] + "{" + nodeLabel + "}" + line[i:]
	}
	return line
}

// write renders the merged exposition, families sorted by name for a
// stable output.
func (em *expositionMerge) write(w io.Writer) {
	names := append([]string(nil), em.order...)
	sort.Strings(names)
	for _, name := range names {
		for _, h := range em.headers[name] {
			fmt.Fprintln(w, h)
		}
		for _, s := range em.samples[name] {
			fmt.Fprintln(w, s)
		}
	}
}
