package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

func TestPoisson2DStructure(t *testing.T) {
	k := Poisson2D(4, 3)
	if k.Rows != 12 || k.Cols != 12 {
		t.Fatalf("dims %d×%d", k.Rows, k.Cols)
	}
	if !k.IsSymmetric(1e-15) {
		t.Fatal("not symmetric")
	}
	// Interior row: 4 on the diagonal, four -1 neighbors.
	row := 1*4 + 1 // node (1,1)
	if k.At(row, row) != 4 {
		t.Fatalf("diag = %v", k.At(row, row))
	}
	nnz := k.RowPtr[row+1] - k.RowPtr[row]
	if nnz != 5 {
		t.Fatalf("interior row nnz = %d", nnz)
	}
	// Corner row: 4 and two neighbors.
	if got := k.RowPtr[1] - k.RowPtr[0]; got != 3 {
		t.Fatalf("corner row nnz = %d", got)
	}
}

func TestPoisson2DSPD(t *testing.T) {
	k := Poisson2D(5, 5)
	n := k.Rows
	d := la.NewMatrix(n, n)
	for i, row := range k.Dense() {
		copy(d.Data[i*n:(i+1)*n], row)
	}
	if _, err := la.Cholesky(d); err != nil {
		t.Fatalf("Poisson not SPD: %v", err)
	}
}

func TestLaplacian1DEigenvalues(t *testing.T) {
	// Spectral check via quadratic form with a known eigenvector:
	// v_k(i) = sin(kπ(i+1)/(n+1)), λ_k = 2−2cos(kπ/(n+1)).
	n := 12
	k := Laplacian1D(n)
	for _, mode := range []int{1, n / 2, n} {
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Sin(float64(mode) * math.Pi * float64(i+1) / float64(n+1))
		}
		kv := k.MulVec(v)
		want := 2 - 2*math.Cos(float64(mode)*math.Pi/float64(n+1))
		for i := range v {
			if math.Abs(kv[i]-want*v[i]) > 1e-12 {
				t.Fatalf("mode %d not an eigenvector", mode)
			}
		}
	}
}

func TestRandomSPDIsSPDAndSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		k := RandomSPD(rng, n, 3)
		if !k.IsSymmetric(1e-12) {
			return false
		}
		// Diagonal dominance ⇒ positive quadratic forms on probes.
		for trial := 0; trial < 4; trial++ {
			x := RandomVec(rng, n)
			kx := k.MulVec(x)
			var q float64
			for i := range x {
				q += x[i] * kx[i]
			}
			if q <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSPDDeterministicPerSeed(t *testing.T) {
	a := RandomSPD(rand.New(rand.NewSource(7)), 15, 4)
	b := RandomSPD(rand.New(rand.NewSource(7)), 15, 4)
	if a.NNZ() != b.NNZ() {
		t.Fatal("nondeterministic structure")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			t.Fatal("nondeterministic values")
		}
	}
}

func TestRandomVecLengthAndSpread(t *testing.T) {
	v := RandomVec(rand.New(rand.NewSource(1)), 1000)
	if len(v) != 1000 {
		t.Fatal("length")
	}
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= 1000
	if math.Abs(mean) > 0.2 {
		t.Fatalf("suspicious mean %g for standard normals", mean)
	}
}
