// Package model provides auxiliary model problems used by tests, examples
// and ablation benchmarks: the 2-D Poisson 5-point operator (the classical
// setting for Jacobi/Neumann-series preconditioners of Dubois, Greenbaum
// and Rodrigue), a 1-D Laplacian, and random diagonally dominant SPD
// matrices for property-based testing. The paper's own plane-stress test
// problem lives in internal/fem.
package model

import (
	"math/rand"

	"repro/internal/sparse"
)

// Poisson2D returns the nx×ny 5-point Laplacian (Dirichlet boundary,
// h-scaled out): 4 on the diagonal, −1 to each grid neighbor. The matrix is
// SPD with eigenvalues in (0, 8).
func Poisson2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	c := sparse.NewCOO(n, n)
	idx := func(i, j int) int { return i*nx + j }
	for i := 0; i < ny; i++ {
		for j := 0; j < nx; j++ {
			row := idx(i, j)
			c.Add(row, row, 4)
			if j > 0 {
				c.Add(row, idx(i, j-1), -1)
			}
			if j < nx-1 {
				c.Add(row, idx(i, j+1), -1)
			}
			if i > 0 {
				c.Add(row, idx(i-1, j), -1)
			}
			if i < ny-1 {
				c.Add(row, idx(i+1, j), -1)
			}
		}
	}
	return c.ToCSR()
}

// Laplacian1D returns the n×n tridiagonal second-difference matrix
// tridiag(−1, 2, −1), SPD with eigenvalues 2−2cos(kπ/(n+1)).
func Laplacian1D(n int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

// RandomSPD returns an n×n random sparse symmetric matrix made strictly
// diagonally dominant (hence SPD), with roughly `perRow` off-diagonal
// entries per row. Deterministic for a given rng.
func RandomSPD(rng *rand.Rand, n, perRow int) *sparse.CSR {
	c := sparse.NewCOO(n, n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < perRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.NormFloat64()
			// Symmetric insertion; duplicates sum, keeping symmetry.
			c.Add(i, j, v)
			c.Add(j, i, v)
			av := v
			if av < 0 {
				av = -av
			}
			rowAbs[i] += av
			rowAbs[j] += av
		}
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return c.ToCSR()
}

// RandomVec returns a length-n standard normal vector.
func RandomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
