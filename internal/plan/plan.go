// Package plan turns one solve's shape — matrix structure, batch width,
// worker and cache budgets — into an explicit execution Plan. It is the
// single place the per-request decisions the service and core used to make
// inline (matvec backend, kernel fan-out, batch tiling) are taken, the
// software analogue of the paper's central argument: match the algorithm's
// layout to the machine before running it, not while running it.
//
// The package sits below internal/core: it sees only the sparse matrix
// structure (via Probe) and budgets, never the solver configuration types.
// core re-exports the Backend enum as a type alias, so existing callers of
// core.Backend are unaffected by the move.
package plan

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sparse"
)

// Backend selects the matrix storage the CG matvec path runs on. The
// preconditioner always keeps the CSR form (the SSOR sweeps need row
// structure); the backend only decides how K itself is applied.
type Backend int

const (
	// BackendAuto (the zero value) probes the matrix structure and picks
	// the backend itself; see Probe.Choose.
	BackendAuto Backend = iota
	// BackendCSR forces compressed-sparse-row storage.
	BackendCSR
	// BackendDIA forces diagonal (Madsen–Rodrigue–Karush) storage, the
	// paper's CYBER 203/205 layout. Requires a square matrix.
	BackendDIA
	// BackendDecomposed runs the solve on the domain-decomposed parallel
	// path — the paper's Finite Element Machine for real: the mesh is
	// partitioned into subdomains, each owned by a dedicated goroutine
	// processor with halo exchange and tree-reduced inner products.
	// Requires a mesh-backed (plate) problem.
	BackendDecomposed
)

func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendCSR:
		return "csr"
	case BackendDIA:
		return "dia"
	case BackendDecomposed:
		return "decomposed"
	}
	return "?"
}

// ParseBackend resolves a backend name ("", "auto", "csr", "dia",
// "decomposed"); the empty string means Auto.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "auto":
		return BackendAuto, nil
	case "csr":
		return BackendCSR, nil
	case "dia":
		return BackendDIA, nil
	case "decomposed":
		return BackendDecomposed, nil
	}
	return 0, fmt.Errorf("plan: unknown backend %q (want auto, csr, dia or decomposed)", name)
}

// Auto-selection thresholds. Diagonal storage performs numDiags·n
// multiply-adds where CSR performs NNZ, so its padding overhead is the
// reciprocal of the DIA fill ratio NNZ/(numDiags·n); in exchange every
// operand is a long contiguous diagonal — the regular access pattern the
// paper's CYBER layout is built on. DIA pays off when the matrix occupies
// a bounded, size-independent family of diagonals (banded multicolor
// systems, eq. 3.2 of the paper: the 6-color plate stays at ~47 diagonals
// at every size, simple 5-point stencils at 5), and loses badly on
// scattered fill, where the diagonal count grows with n and the fill
// ratio collapses.
const (
	// autoMaxDiags bounds the stored-diagonal count Auto accepts: above
	// it, even a moderate fill ratio means streaming many mostly-padding
	// vectors.
	autoMaxDiags = 128
	// autoMinFill is the lowest DIA fill ratio Auto accepts — at most
	// 1/autoMinFill padded flops per CSR flop. The colored plate sits
	// near 0.25, dense-diagonal stencils near 1, scattered fill near 0.
	autoMinFill = 1.0 / 6
)

// Probe is the structure scan of one matrix: everything the planner needs
// to know about K, decoupled from the matrix itself so cache layers can
// memoize it (the matrix is immutable per cache entry, so the O(nnz)
// pattern scan runs once, not once per request).
type Probe struct {
	// Rows, Cols are the matrix dimensions.
	Rows, Cols int
	// NNZ is the stored-entry count.
	NNZ int
	// MaxRowNNZ is the widest row (a lower bound on the diagonal count).
	MaxRowNNZ int
	// NumDiags is the number of occupied diagonals.
	NumDiags int
	// Fill is the DIA fill ratio NNZ/(NumDiags·Rows), 0 when NumDiags is 0.
	Fill float64
}

// NewProbe scans k's structure. One pass over the pattern (O(nnz)); callers
// that solve the same matrix repeatedly should keep the result.
func NewProbe(k *sparse.CSR) Probe {
	p := Probe{Rows: k.Rows, Cols: k.Cols, NNZ: k.NNZ(), MaxRowNNZ: k.MaxRowNNZ()}
	if p.Rows == p.Cols && p.NNZ > 0 {
		nd, _ := k.DiagStats()
		p.NumDiags = nd
		if nd > 0 {
			p.Fill = float64(p.NNZ) / (float64(nd) * float64(p.Rows))
		}
	}
	return p
}

// Choose resolves a backend policy against the probed structure: CSR and
// DIA pass through, and Auto picks DIA exactly when diagonal storage is in
// the banded regime it wins in — few distinct diagonals and a bounded
// padding overhead — and CSR otherwise.
func (p Probe) Choose(policy Backend) Backend {
	switch policy {
	case BackendCSR, BackendDIA:
		return policy
	}
	if p.Rows != p.Cols || p.NNZ == 0 {
		return BackendCSR
	}
	// Every row's entries sit on distinct diagonals, so MaxRowNNZ lower-
	// bounds the diagonal count — a cheap early out.
	if p.MaxRowNNZ > autoMaxDiags {
		return BackendCSR
	}
	if p.NumDiags == 0 || p.NumDiags > autoMaxDiags {
		return BackendCSR
	}
	if p.Fill < autoMinFill {
		return BackendCSR
	}
	return BackendDIA
}

// Planner defaults. The tile budget bounds the block solve's per-iteration
// multivector working set (the four CG scratch blocks plus the iterate and
// right-hand side — six n-vectors per column at 8 bytes each); sequential
// tiles each re-stream the matrix, so the budget trades matrix-traversal
// amortization against multivector cache residency.
const (
	// DefaultBudgetBytes is the default tile cache budget: a conservative
	// share of a contemporary L3 slice.
	DefaultBudgetBytes = 8 << 20
	// DefaultMaxTile caps a tile's width even when the budget would allow
	// more — beyond it the SpMM row-scan fusion has already amortized the
	// matrix traversal and wider tiles only grow the working set.
	DefaultMaxTile = 32
	// DefaultMinTile keeps tiles from dropping below the SpMM fusion
	// width: a narrower tile wastes the block machinery, so huge systems
	// run 8-wide tiles and eat the cache misses.
	DefaultMinTile = 8
	// bytesPerColumn is the block solve's resident vectors per batch
	// column: r, r̂, p, Kp scratch plus u and f, 8 bytes per element.
	bytesPerColumn = 6 * 8

	// DefaultWideBlockThreshold is the tile width at which the block solve
	// switches to the row-interleaved panel layout: narrow blocks (s = 1
	// scalar solves above all) keep the column-contiguous layout, whose
	// per-column zero-copy slices cost nothing, while wide tiles convert at
	// the tile boundary so each gathered matrix row feeds every column from
	// one cache line.
	DefaultWideBlockThreshold = 4

	// DefaultDecompMinBytes is the single-matrix footprint (CSR values +
	// column indices + the solve's n-vectors) above which Auto prefers the
	// decomposed backend for mesh-backed problems. Seeded from the
	// vectorsim cost model's crossover: once K alone overflows the tile
	// cache budget several times over (6× DefaultBudgetBytes), every CG
	// iteration streams the whole matrix from memory, while P subdomains
	// of footprint/P each can stay cache-resident and the halo traffic
	// they add is a surface term (O(√(n/P)) per subdomain per iteration)
	// against the volume term they save.
	DefaultDecompMinBytes = 48 << 20
	// bytesPerNNZ approximates a CSR entry's footprint: an 8-byte value
	// plus a column index.
	bytesPerNNZ = 16
)

// Planner turns solve inputs into execution plans. The zero value uses the
// defaults above; it is pure (no internal state), so equal Inputs always
// produce equal Plans — a cache hit re-planning a warm request decides
// exactly what the cold request decided.
type Planner struct {
	// BudgetBytes bounds the multivector working set of one tile
	// (default DefaultBudgetBytes).
	BudgetBytes int
	// MaxTile caps columns per tile (default DefaultMaxTile).
	MaxTile int
	// MinTile floors the tile width for huge systems (default
	// DefaultMinTile).
	MinTile int
	// DecompMinBytes is the matrix footprint above which Auto switches a
	// mesh-backed problem to the decomposed backend (default
	// DefaultDecompMinBytes).
	DecompMinBytes int
	// WideBlockThreshold is the smallest tile width planned onto the
	// row-interleaved panel layout (default DefaultWideBlockThreshold);
	// negative disables interleaving entirely.
	WideBlockThreshold int
}

// DecompInputs describes the mesh behind a solve — present only when the
// problem is mesh-backed (a plate), which is what the decomposed backend
// needs to partition. Nil Decomp means the backend is unavailable.
type DecompInputs struct {
	// Rows is the mesh's node-row count (row-strip partitions need
	// Rows ≥ P).
	Rows int
	// FreeNodes is the number of unconstrained nodes (each processor must
	// own at least one).
	FreeNodes int
	// Requested pins the subdomain count (0 = planner's choice).
	Requested int
	// MaxProcs bounds the subdomain count (the session's worker budget).
	MaxProcs int
}

// Inputs describes one solve to the planner.
type Inputs struct {
	// K is the assembled matrix; probed when Probe is nil. Callers with a
	// memoized Probe (the service cache) may leave K nil.
	K *sparse.CSR
	// Probe, when non-nil, is the memoized structure scan of K.
	Probe *Probe
	// Policy is the requested backend (Auto probes the structure).
	Policy Backend
	// RHS is the batch width s (right-hand sides solved together).
	RHS int
	// M is the preconditioner step count (recorded in the plan).
	M int
	// Workers is the kernel goroutine budget available to the solve.
	Workers int
	// Kernel is the kernel-set policy for the solve: "" or "auto" for the
	// startup-selected set, "portable" to force the reference set
	// (kernel.Select resolves it).
	Kernel string
	// Decomp, when non-nil, describes the mesh behind the problem and
	// enables the decomposed backend (Auto considers it; forcing
	// BackendDecomposed without it plans a single subdomain and fails
	// downstream where the mesh is truly required).
	Decomp *DecompInputs
}

// Plan is the resolved execution decision for one solve: which storage the
// matvec path runs on, how the batch is split into column tiles, the kernel
// fan-out each tile runs with, and the preconditioner step count.
type Plan struct {
	// Backend is the resolved matvec storage (never Auto).
	Backend Backend
	// Tiles partitions the RHS column indices 0..s-1 into contiguous
	// groups executed as sequential block solves. Always at least one
	// tile; a batch at or under the tile width is a single tile.
	Tiles [][]int
	// Workers is the kernel goroutine fan-out per tile (≥ 1; 1 when the
	// system is too small for the parallel kernels to engage).
	Workers int
	// M is the preconditioner step count the solve runs with.
	M int
	// Subdomains is the processor count of a decomposed plan (0 for the
	// single-matrix backends): the mesh is partitioned this many ways and
	// each subdomain gets a dedicated goroutine.
	Subdomains int
	// Interleave reports that the tiles run on the row-interleaved panel
	// layout (every tile is at least WideBlockThreshold columns wide and
	// the backend serves interleaved panels).
	Interleave bool
	// Kernel names the kernel set the solve's fused loops run through
	// ("portable", "avx2", "neon") — the resolved form of Inputs.Kernel.
	Kernel string
}

// TileWidths reports the size of each tile (a compact summary for logs and
// stats).
func (p Plan) TileWidths() []int {
	w := make([]int, len(p.Tiles))
	for i, t := range p.Tiles {
		w[i] = len(t)
	}
	return w
}

// Attrs flattens the plan into span attributes: the evidence trail a job
// trace records about the planner's decision, so offline analysis (and the
// future self-tuning planner) can correlate every decision with the
// measured outcome it produced.
func (p Plan) Attrs() map[string]any {
	a := map[string]any{
		"backend":     p.Backend.String(),
		"tiles":       len(p.Tiles),
		"tile_widths": p.TileWidths(),
		"workers":     p.Workers,
		"m":           p.M,
		"kernel":      p.Kernel,
		"interleave":  p.Interleave,
	}
	if p.Subdomains > 0 {
		a["subdomains"] = p.Subdomains
	}
	return a
}

// Attrs flattens the probe into span attributes — the structural evidence
// the planner decided from.
func (p Probe) Attrs() map[string]any {
	return map[string]any{
		"rows":        p.Rows,
		"nnz":         p.NNZ,
		"max_row_nnz": p.MaxRowNNZ,
		"num_diags":   p.NumDiags,
		"fill":        p.Fill,
	}
}

// minParallelRows mirrors vec's serial-fallback threshold: below it the
// parallel kernels run serially regardless of budget, so the plan records
// an effective fan-out of 1.
const minParallelRows = 4096

// Plan resolves in into an execution plan. It never fails: missing probes
// are computed from K, and a nil K with a forced policy plans structure-
// blind (tiling then assumes nothing about n and uses MaxTile).
func (pl Planner) Plan(in Inputs) Plan {
	budget := pl.BudgetBytes
	if budget <= 0 {
		budget = DefaultBudgetBytes
	}
	maxTile := pl.MaxTile
	if maxTile <= 0 {
		maxTile = DefaultMaxTile
	}
	minTile := pl.MinTile
	if minTile <= 0 {
		minTile = DefaultMinTile
	}
	if minTile > maxTile {
		minTile = maxTile
	}

	probe := in.Probe
	if probe == nil && in.K != nil {
		p := NewProbe(in.K)
		probe = &p
	}

	var backend Backend
	switch {
	case in.Policy != BackendAuto:
		backend = in.Policy
	case probe != nil:
		backend = probe.Choose(BackendAuto)
		if in.Decomp != nil && pl.decompWins(probe, in.Decomp) {
			backend = BackendDecomposed
		}
	default:
		backend = BackendCSR
	}

	subdomains := 0
	if backend == BackendDecomposed {
		subdomains = subdomainCount(in.Decomp)
	}

	rows := 0
	if probe != nil {
		rows = probe.Rows
	}

	s := in.RHS
	if s < 1 {
		s = 1
	}

	// Tile width: how many columns of six resident n-vectors fit the
	// budget, clamped to [minTile, maxTile]. Unknown n plans optimistically
	// at maxTile.
	width := maxTile
	if rows > 0 {
		width = budget / (rows * bytesPerColumn)
		if width > maxTile {
			width = maxTile
		}
		if width < minTile {
			width = minTile
		}
	}

	workers := in.Workers
	if workers < 1 {
		workers = 1
	}
	if rows > 0 && rows < minParallelRows {
		// The vec kernels fall back to serial below this size; record the
		// fan-out the solve will actually use.
		workers = 1
	}

	if backend == BackendDecomposed {
		// The subdomain goroutines are the parallelism: kernel fan-out per
		// case is 1 and the batch runs as one untiled case sequence (each
		// case occupies all P processors). Local sweeps dispatch through the
		// startup-selected kernel set.
		return Plan{
			Backend:    backend,
			Tiles:      tile(s, s),
			Workers:    1,
			M:          in.M,
			Subdomains: subdomains,
			Kernel:     kernel.Active().Name,
		}
	}

	tiles := tile(s, width)
	wide := pl.WideBlockThreshold
	if wide == 0 {
		wide = DefaultWideBlockThreshold
	}
	// Balanced tiling keeps widths within one of each other, so the last
	// tile is the narrowest; interleave only when every tile clears the
	// threshold (s = 1 scalar solves never do).
	interleave := wide > 0 && len(tiles[len(tiles)-1]) >= wide

	// Only the interleaved panel path threads a per-solve kernel policy;
	// every other path dispatches through the process-wide startup set
	// (kernel.Active), so the plan records the set that will actually run.
	kernelName := kernel.Active().Name
	if interleave {
		kernelName = kernel.Select(in.Kernel).Name
	}

	return Plan{
		Backend:    backend,
		Tiles:      tiles,
		Workers:    workers,
		M:          in.M,
		Interleave: interleave,
		Kernel:     kernelName,
	}
}

// decompWins is Auto's rule for preferring the decomposed backend: the
// single-matrix solve's footprint (CSR entries plus the six resident
// n-vectors) exceeds the decomposition threshold and the mesh actually
// yields at least two subdomains.
func (pl Planner) decompWins(probe *Probe, dc *DecompInputs) bool {
	minBytes := pl.DecompMinBytes
	if minBytes <= 0 {
		minBytes = DefaultDecompMinBytes
	}
	footprint := probe.NNZ*bytesPerNNZ + probe.Rows*bytesPerColumn
	return footprint > minBytes && subdomainCount(dc) >= 2
}

// subdomainCount resolves a decomposed plan's processor count: the
// requested pin, else the session's worker budget, clamped to what the
// mesh can feed (row strips need a node row per processor, and every
// processor must own a free node).
func subdomainCount(dc *DecompInputs) int {
	if dc == nil {
		return 1
	}
	p := dc.Requested
	if p <= 0 {
		p = dc.MaxProcs
	}
	if dc.Rows > 0 && p > dc.Rows {
		p = dc.Rows
	}
	if dc.FreeNodes > 0 && p > dc.FreeNodes {
		p = dc.FreeNodes
	}
	if p < 1 {
		p = 1
	}
	return p
}

// tile partitions 0..s-1 into ⌈s/width⌉ contiguous, balanced groups (sizes
// differ by at most one — splitting 33 columns 32+1 would run the last tile
// as a degenerate near-scalar solve; 17+16 keeps both tiles block-shaped).
func tile(s, width int) [][]int {
	if width < 1 {
		width = 1
	}
	nt := (s + width - 1) / width
	tiles := make([][]int, nt)
	base, rem := s/nt, s%nt
	next := 0
	for i := range tiles {
		size := base
		if i < rem {
			size++
		}
		t := make([]int, size)
		for j := range t {
			t[j] = next
			next++
		}
		tiles[i] = t
	}
	return tiles
}
