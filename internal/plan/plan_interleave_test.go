package plan

import (
	"testing"

	"repro/internal/kernel"
)

// TestPlanInterleave pins the wide-block layout decision: interleave exactly
// when every tile clears the threshold (balanced tiling makes the last tile
// the narrowest), s = 1 never interleaves, negative threshold disables.
func TestPlanInterleave(t *testing.T) {
	const rows, width = 1000, 16
	probe := &Probe{Rows: rows, Cols: rows, NNZ: 5 * rows, MaxRowNNZ: 5, NumDiags: 5, Fill: 1}
	for _, tc := range []struct {
		name      string
		threshold int
		s         int
		want      bool
	}{
		{"scalar solve stays columnar", 0, 1, false},
		{"narrow block under default threshold", 0, 3, false},
		{"at default threshold", 0, 4, true},
		{"full tile", 0, 16, true},
		{"split 9+8 keeps both wide", 0, 17, true},
		{"custom threshold excludes", 10, 9, false},
		{"custom threshold includes", 10, 16, true},
		{"negative threshold disables", -1, 32, false},
	} {
		pl := pinned(rows, width)
		pl.WideBlockThreshold = tc.threshold
		p := pl.Plan(Inputs{Probe: probe, RHS: tc.s})
		if p.Interleave != tc.want {
			t.Errorf("%s (threshold=%d s=%d): Interleave=%v want %v",
				tc.name, tc.threshold, tc.s, p.Interleave, tc.want)
		}
	}
}

// TestPlanKernel pins what the plan reports as the running kernel set: the
// per-solve policy only reaches the interleaved panel path, so portable shows
// up exactly when the plan interleaves; every other path runs the startup set.
func TestPlanKernel(t *testing.T) {
	const rows, width = 1000, 16
	probe := &Probe{Rows: rows, Cols: rows, NNZ: 5 * rows, MaxRowNNZ: 5, NumDiags: 5, Fill: 1}
	active := kernel.Active().Name
	pl := pinned(rows, width)

	if p := pl.Plan(Inputs{Probe: probe, RHS: 8, Kernel: "portable"}); !p.Interleave || p.Kernel != "portable" {
		t.Errorf("wide block with portable policy: Interleave=%v Kernel=%q", p.Interleave, p.Kernel)
	}
	if p := pl.Plan(Inputs{Probe: probe, RHS: 8}); p.Kernel != active {
		t.Errorf("wide block auto policy: Kernel=%q want %q", p.Kernel, active)
	}
	// A scalar solve never takes the interleaved path, so even a portable
	// policy runs — and must report — the startup set.
	if p := pl.Plan(Inputs{Probe: probe, RHS: 1, Kernel: "portable"}); p.Interleave || p.Kernel != active {
		t.Errorf("scalar solve: Interleave=%v Kernel=%q want false/%q", p.Interleave, p.Kernel, active)
	}
	// Decomposed plans run local sweeps through the startup set.
	dc := &DecompInputs{Rows: rows, FreeNodes: rows, Requested: 4}
	if p := pl.Plan(Inputs{Probe: probe, RHS: 4, Policy: BackendDecomposed, Decomp: dc, Kernel: "portable"}); p.Kernel != active {
		t.Errorf("decomposed plan: Kernel=%q want %q", p.Kernel, active)
	}
}

// TestPlanAttrsKernel: the decision trail must carry the layout and kernel
// choices.
func TestPlanAttrsKernel(t *testing.T) {
	probe := &Probe{Rows: 1000, Cols: 1000, NNZ: 5000, MaxRowNNZ: 5, NumDiags: 5, Fill: 1}
	p := pinned(1000, 16).Plan(Inputs{Probe: probe, RHS: 8})
	a := p.Attrs()
	if a["interleave"] != true {
		t.Errorf("attrs interleave = %v", a["interleave"])
	}
	if a["kernel"] != kernel.Active().Name {
		t.Errorf("attrs kernel = %v", a["kernel"])
	}
}
