package plan

import (
	"reflect"
	"testing"

	"repro/internal/sparse"
)

// pinned returns a planner whose tile width resolves to exactly `width`
// for a `rows`-dimensional system: budget = width·rows·bytesPerColumn.
func pinned(rows, width int) Planner {
	return Planner{BudgetBytes: width * rows * bytesPerColumn, MaxTile: 64, MinTile: 1}
}

func checkTiles(t *testing.T, tiles [][]int, s, maxWidth int) {
	t.Helper()
	if len(tiles) == 0 {
		t.Fatalf("no tiles for s=%d", s)
	}
	next := 0
	minSz, maxSz := s+1, 0
	for i, tile := range tiles {
		if len(tile) == 0 {
			t.Fatalf("tile %d empty", i)
		}
		if len(tile) > maxWidth {
			t.Fatalf("tile %d has %d columns, budget allows %d", i, len(tile), maxWidth)
		}
		minSz = min(minSz, len(tile))
		maxSz = max(maxSz, len(tile))
		for _, c := range tile {
			if c != next {
				t.Fatalf("tile %d: column %d out of order (want %d) — tiles must cover 0..s-1 contiguously", i, c, next)
			}
			next++
		}
	}
	if next != s {
		t.Fatalf("tiles cover %d columns, want %d", next, s)
	}
	if maxSz-minSz > 1 {
		t.Fatalf("unbalanced tiles: sizes range %d..%d (want within 1)", minSz, maxSz)
	}
}

func TestTileBoundaries(t *testing.T) {
	const rows, width = 1000, 16
	pl := pinned(rows, width)
	probe := &Probe{Rows: rows, Cols: rows, NNZ: 5 * rows, MaxRowNNZ: 5, NumDiags: 5, Fill: 1}
	for _, tc := range []struct {
		s         int
		wantTiles int
	}{
		{1, 1},   // a scalar solve is one single-column tile
		{8, 1},   // at/under the width: never split
		{16, 1},  // exactly the width: one full tile
		{17, 2},  // just over: split 9+8, not 16+1
		{63, 4},  // 16+16+16+15
		{129, 9}, // ⌈129/16⌉ = 9 balanced tiles
	} {
		p := pl.Plan(Inputs{Probe: probe, RHS: tc.s, M: 3, Workers: 2})
		if len(p.Tiles) != tc.wantTiles {
			t.Errorf("s=%d: got %d tiles (widths %v), want %d", tc.s, len(p.Tiles), p.TileWidths(), tc.wantTiles)
		}
		checkTiles(t, p.Tiles, tc.s, width)
		if p.M != 3 {
			t.Errorf("s=%d: plan dropped M: got %d", tc.s, p.M)
		}
	}
}

func TestTileWidthClamps(t *testing.T) {
	probe := &Probe{Rows: 1 << 20, Cols: 1 << 20, NNZ: 5 << 20, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	// A huge system would compute a sub-1 width; MinTile floors it.
	p := Planner{}.Plan(Inputs{Probe: probe, RHS: 64})
	checkTiles(t, p.Tiles, 64, DefaultMinTile)
	// A tiny system would compute an enormous width; MaxTile caps it.
	small := &Probe{Rows: 10, Cols: 10, NNZ: 30, NumDiags: 3, MaxRowNNZ: 3, Fill: 1}
	p = Planner{}.Plan(Inputs{Probe: small, RHS: 200})
	for _, tile := range p.Tiles {
		if len(tile) > DefaultMaxTile {
			t.Fatalf("tile width %d exceeds MaxTile %d", len(tile), DefaultMaxTile)
		}
	}
	checkTiles(t, p.Tiles, 200, DefaultMaxTile)
}

// TestPlanStability pins the cache-hit contract: planning the same inputs
// twice — the warm-path replan of a cached problem — yields identical
// plans, including tile boundaries and backend.
func TestPlanStability(t *testing.T) {
	k := banded(500)
	probe := NewProbe(k)
	pl := Planner{}
	in := Inputs{Probe: &probe, Policy: BackendAuto, RHS: 63, M: 4, Workers: 3}
	first := pl.Plan(in)
	for i := 0; i < 5; i++ {
		if got := pl.Plan(in); !reflect.DeepEqual(got, first) {
			t.Fatalf("plan %d differs from first:\n got %+v\nwant %+v", i, got, first)
		}
	}
	// The memoized-probe path and the direct-K path must also agree.
	if got := pl.Plan(Inputs{K: k, Policy: BackendAuto, RHS: 63, M: 4, Workers: 3}); !reflect.DeepEqual(got, first) {
		t.Fatalf("probe-path and K-path plans differ:\n got %+v\nwant %+v", got, first)
	}
}

func TestPlanWorkers(t *testing.T) {
	big := &Probe{Rows: 1 << 16, Cols: 1 << 16, NNZ: 5 << 16, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	if got := (Planner{}).Plan(Inputs{Probe: big, RHS: 1, Workers: 4}).Workers; got != 4 {
		t.Errorf("large system: workers = %d, want 4", got)
	}
	small := &Probe{Rows: 100, Cols: 100, NNZ: 300, NumDiags: 3, MaxRowNNZ: 3, Fill: 1}
	if got := (Planner{}).Plan(Inputs{Probe: small, RHS: 1, Workers: 4}).Workers; got != 1 {
		t.Errorf("sub-parallel system: workers = %d, want 1 (serial fallback)", got)
	}
	if got := (Planner{}).Plan(Inputs{Probe: big, RHS: 1, Workers: 0}).Workers; got != 1 {
		t.Errorf("zero budget: workers = %d, want 1", got)
	}
}

func TestPlanBackendResolution(t *testing.T) {
	k := banded(300)
	probe := NewProbe(k)
	if got := (Planner{}).Plan(Inputs{Probe: &probe, Policy: BackendCSR}).Backend; got != BackendCSR {
		t.Errorf("forced CSR resolved to %v", got)
	}
	if got := (Planner{}).Plan(Inputs{Probe: &probe, Policy: BackendDIA}).Backend; got != BackendDIA {
		t.Errorf("forced DIA resolved to %v", got)
	}
	if got := (Planner{}).Plan(Inputs{Probe: &probe, Policy: BackendAuto}).Backend; got != BackendDIA {
		t.Errorf("auto on a banded system resolved to %v, want dia", got)
	}
	// Structure-blind (no K, no probe): auto falls back to CSR, tiling
	// still covers the batch.
	p := (Planner{}).Plan(Inputs{Policy: BackendAuto, RHS: 40})
	if p.Backend != BackendCSR {
		t.Errorf("blind auto resolved to %v, want csr", p.Backend)
	}
	checkTiles(t, p.Tiles, 40, DefaultMaxTile)
}

func TestNewProbe(t *testing.T) {
	k := banded(200)
	p := NewProbe(k)
	if p.Rows != 200 || p.Cols != 200 {
		t.Fatalf("probe dims %dx%d", p.Rows, p.Cols)
	}
	nd, _ := k.DiagStats()
	if p.NumDiags != nd {
		t.Errorf("probe diags %d, want %d", p.NumDiags, nd)
	}
	if p.NNZ != k.NNZ() || p.MaxRowNNZ != k.MaxRowNNZ() {
		t.Errorf("probe nnz/maxrow %d/%d, want %d/%d", p.NNZ, p.MaxRowNNZ, k.NNZ(), k.MaxRowNNZ())
	}
	wantFill := float64(k.NNZ()) / (float64(nd) * 200)
	if p.Fill != wantFill {
		t.Errorf("probe fill %g, want %g", p.Fill, wantFill)
	}
}

// banded builds a tridiagonal SPD system — 3 dense diagonals, the regime
// Auto picks DIA for.
func banded(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -1)
		}
	}
	return coo.ToCSR()
}
