package plan

import (
	"reflect"
	"testing"

	"repro/internal/sparse"
)

// pinned returns a planner whose tile width resolves to exactly `width`
// for a `rows`-dimensional system: budget = width·rows·bytesPerColumn.
func pinned(rows, width int) Planner {
	return Planner{BudgetBytes: width * rows * bytesPerColumn, MaxTile: 64, MinTile: 1}
}

func checkTiles(t *testing.T, tiles [][]int, s, maxWidth int) {
	t.Helper()
	if len(tiles) == 0 {
		t.Fatalf("no tiles for s=%d", s)
	}
	next := 0
	minSz, maxSz := s+1, 0
	for i, tile := range tiles {
		if len(tile) == 0 {
			t.Fatalf("tile %d empty", i)
		}
		if len(tile) > maxWidth {
			t.Fatalf("tile %d has %d columns, budget allows %d", i, len(tile), maxWidth)
		}
		minSz = min(minSz, len(tile))
		maxSz = max(maxSz, len(tile))
		for _, c := range tile {
			if c != next {
				t.Fatalf("tile %d: column %d out of order (want %d) — tiles must cover 0..s-1 contiguously", i, c, next)
			}
			next++
		}
	}
	if next != s {
		t.Fatalf("tiles cover %d columns, want %d", next, s)
	}
	if maxSz-minSz > 1 {
		t.Fatalf("unbalanced tiles: sizes range %d..%d (want within 1)", minSz, maxSz)
	}
}

func TestTileBoundaries(t *testing.T) {
	const rows, width = 1000, 16
	pl := pinned(rows, width)
	probe := &Probe{Rows: rows, Cols: rows, NNZ: 5 * rows, MaxRowNNZ: 5, NumDiags: 5, Fill: 1}
	for _, tc := range []struct {
		s         int
		wantTiles int
	}{
		{1, 1},   // a scalar solve is one single-column tile
		{8, 1},   // at/under the width: never split
		{16, 1},  // exactly the width: one full tile
		{17, 2},  // just over: split 9+8, not 16+1
		{63, 4},  // 16+16+16+15
		{129, 9}, // ⌈129/16⌉ = 9 balanced tiles
	} {
		p := pl.Plan(Inputs{Probe: probe, RHS: tc.s, M: 3, Workers: 2})
		if len(p.Tiles) != tc.wantTiles {
			t.Errorf("s=%d: got %d tiles (widths %v), want %d", tc.s, len(p.Tiles), p.TileWidths(), tc.wantTiles)
		}
		checkTiles(t, p.Tiles, tc.s, width)
		if p.M != 3 {
			t.Errorf("s=%d: plan dropped M: got %d", tc.s, p.M)
		}
	}
}

func TestTileWidthClamps(t *testing.T) {
	probe := &Probe{Rows: 1 << 20, Cols: 1 << 20, NNZ: 5 << 20, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	// A huge system would compute a sub-1 width; MinTile floors it.
	p := Planner{}.Plan(Inputs{Probe: probe, RHS: 64})
	checkTiles(t, p.Tiles, 64, DefaultMinTile)
	// A tiny system would compute an enormous width; MaxTile caps it.
	small := &Probe{Rows: 10, Cols: 10, NNZ: 30, NumDiags: 3, MaxRowNNZ: 3, Fill: 1}
	p = Planner{}.Plan(Inputs{Probe: small, RHS: 200})
	for _, tile := range p.Tiles {
		if len(tile) > DefaultMaxTile {
			t.Fatalf("tile width %d exceeds MaxTile %d", len(tile), DefaultMaxTile)
		}
	}
	checkTiles(t, p.Tiles, 200, DefaultMaxTile)
}

// TestPlanStability pins the cache-hit contract: planning the same inputs
// twice — the warm-path replan of a cached problem — yields identical
// plans, including tile boundaries and backend.
func TestPlanStability(t *testing.T) {
	k := banded(500)
	probe := NewProbe(k)
	pl := Planner{}
	in := Inputs{Probe: &probe, Policy: BackendAuto, RHS: 63, M: 4, Workers: 3}
	first := pl.Plan(in)
	for i := 0; i < 5; i++ {
		if got := pl.Plan(in); !reflect.DeepEqual(got, first) {
			t.Fatalf("plan %d differs from first:\n got %+v\nwant %+v", i, got, first)
		}
	}
	// The memoized-probe path and the direct-K path must also agree.
	if got := pl.Plan(Inputs{K: k, Policy: BackendAuto, RHS: 63, M: 4, Workers: 3}); !reflect.DeepEqual(got, first) {
		t.Fatalf("probe-path and K-path plans differ:\n got %+v\nwant %+v", got, first)
	}
}

func TestPlanWorkers(t *testing.T) {
	big := &Probe{Rows: 1 << 16, Cols: 1 << 16, NNZ: 5 << 16, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	if got := (Planner{}).Plan(Inputs{Probe: big, RHS: 1, Workers: 4}).Workers; got != 4 {
		t.Errorf("large system: workers = %d, want 4", got)
	}
	small := &Probe{Rows: 100, Cols: 100, NNZ: 300, NumDiags: 3, MaxRowNNZ: 3, Fill: 1}
	if got := (Planner{}).Plan(Inputs{Probe: small, RHS: 1, Workers: 4}).Workers; got != 1 {
		t.Errorf("sub-parallel system: workers = %d, want 1 (serial fallback)", got)
	}
	if got := (Planner{}).Plan(Inputs{Probe: big, RHS: 1, Workers: 0}).Workers; got != 1 {
		t.Errorf("zero budget: workers = %d, want 1", got)
	}
}

func TestPlanBackendResolution(t *testing.T) {
	k := banded(300)
	probe := NewProbe(k)
	if got := (Planner{}).Plan(Inputs{Probe: &probe, Policy: BackendCSR}).Backend; got != BackendCSR {
		t.Errorf("forced CSR resolved to %v", got)
	}
	if got := (Planner{}).Plan(Inputs{Probe: &probe, Policy: BackendDIA}).Backend; got != BackendDIA {
		t.Errorf("forced DIA resolved to %v", got)
	}
	if got := (Planner{}).Plan(Inputs{Probe: &probe, Policy: BackendAuto}).Backend; got != BackendDIA {
		t.Errorf("auto on a banded system resolved to %v, want dia", got)
	}
	// Structure-blind (no K, no probe): auto falls back to CSR, tiling
	// still covers the batch.
	p := (Planner{}).Plan(Inputs{Policy: BackendAuto, RHS: 40})
	if p.Backend != BackendCSR {
		t.Errorf("blind auto resolved to %v, want csr", p.Backend)
	}
	checkTiles(t, p.Tiles, 40, DefaultMaxTile)
}

func TestNewProbe(t *testing.T) {
	k := banded(200)
	p := NewProbe(k)
	if p.Rows != 200 || p.Cols != 200 {
		t.Fatalf("probe dims %dx%d", p.Rows, p.Cols)
	}
	nd, _ := k.DiagStats()
	if p.NumDiags != nd {
		t.Errorf("probe diags %d, want %d", p.NumDiags, nd)
	}
	if p.NNZ != k.NNZ() || p.MaxRowNNZ != k.MaxRowNNZ() {
		t.Errorf("probe nnz/maxrow %d/%d, want %d/%d", p.NNZ, p.MaxRowNNZ, k.NNZ(), k.MaxRowNNZ())
	}
	wantFill := float64(k.NNZ()) / (float64(nd) * 200)
	if p.Fill != wantFill {
		t.Errorf("probe fill %g, want %g", p.Fill, wantFill)
	}
}

// banded builds a tridiagonal SPD system — 3 dense diagonals, the regime
// Auto picks DIA for.
func banded(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -1)
		}
	}
	return coo.ToCSR()
}

func TestParseBackendDecomposed(t *testing.T) {
	b, err := ParseBackend("decomposed")
	if err != nil || b != BackendDecomposed {
		t.Fatalf("ParseBackend(decomposed) = %v, %v", b, err)
	}
	if b.String() != "decomposed" {
		t.Fatalf("String() = %q", b.String())
	}
	if _, err := ParseBackend("ellpack"); err == nil {
		t.Fatal("want error for unknown backend")
	}
}

func TestPlanDecomposedAuto(t *testing.T) {
	// A probe whose footprint clears the decomposition threshold: Auto with
	// mesh facts available must pick the decomposed backend.
	big := &Probe{Rows: 1 << 21, Cols: 1 << 21, NNZ: 40 << 20, MaxRowNNZ: 18, NumDiags: 47, Fill: 0.25}
	dc := &DecompInputs{Rows: 1024, FreeNodes: 1 << 20, MaxProcs: 8}
	p := (Planner{}).Plan(Inputs{Probe: big, Policy: BackendAuto, RHS: 3, Decomp: dc, Workers: 8})
	if p.Backend != BackendDecomposed {
		t.Fatalf("auto on a huge plate resolved to %v, want decomposed", p.Backend)
	}
	if p.Subdomains != 8 {
		t.Errorf("subdomains = %d, want MaxProcs 8", p.Subdomains)
	}
	if p.Workers != 1 {
		t.Errorf("decomposed plan workers = %d, want 1 (subdomains are the parallelism)", p.Workers)
	}
	checkTiles(t, p.Tiles, 3, 3) // one untiled case sequence
	if got := p.Attrs()["subdomains"]; got != 8 {
		t.Errorf("attrs subdomains = %v", got)
	}

	// Same probe without mesh facts: the decomposed backend is unavailable.
	if got := (Planner{}).Plan(Inputs{Probe: big, Policy: BackendAuto}).Backend; got == BackendDecomposed {
		t.Error("auto picked decomposed without DecompInputs")
	}
	// Small matrix with mesh facts: single-matrix still wins.
	small := &Probe{Rows: 800, Cols: 800, NNZ: 14000, MaxRowNNZ: 18, NumDiags: 47, Fill: 0.37}
	if got := (Planner{}).Plan(Inputs{Probe: small, Policy: BackendAuto, Decomp: dc}).Backend; got == BackendDecomposed {
		t.Error("auto picked decomposed below the footprint threshold")
	}
	// A lowered threshold flips the small case.
	lowered := Planner{DecompMinBytes: 1}
	if got := lowered.Plan(Inputs{Probe: small, Policy: BackendAuto, Decomp: dc}).Backend; got != BackendDecomposed {
		t.Errorf("lowered threshold resolved to %v, want decomposed", got)
	}
}

func TestPlanDecomposedForcedAndClamped(t *testing.T) {
	probe := &Probe{Rows: 288, Cols: 288, NNZ: 5000, MaxRowNNZ: 18, NumDiags: 47, Fill: 0.37}
	// Forcing the backend works at any size; the requested pin wins over
	// MaxProcs.
	p := (Planner{}).Plan(Inputs{Probe: probe, Policy: BackendDecomposed,
		Decomp: &DecompInputs{Rows: 13, FreeNodes: 144, Requested: 4, MaxProcs: 16}})
	if p.Backend != BackendDecomposed || p.Subdomains != 4 {
		t.Fatalf("forced plan = %v/%d, want decomposed/4", p.Backend, p.Subdomains)
	}
	// The subdomain count clamps to what the mesh can feed: node rows and
	// free nodes both bound P.
	p = (Planner{}).Plan(Inputs{Probe: probe, Policy: BackendDecomposed,
		Decomp: &DecompInputs{Rows: 3, FreeNodes: 144, Requested: 64}})
	if p.Subdomains != 3 {
		t.Errorf("row clamp: subdomains = %d, want 3", p.Subdomains)
	}
	p = (Planner{}).Plan(Inputs{Probe: probe, Policy: BackendDecomposed,
		Decomp: &DecompInputs{Rows: 100, FreeNodes: 2, Requested: 64}})
	if p.Subdomains != 2 {
		t.Errorf("free-node clamp: subdomains = %d, want 2", p.Subdomains)
	}
	// Forced without mesh facts plans a single subdomain (the engine then
	// fails with the real reason).
	p = (Planner{}).Plan(Inputs{Probe: probe, Policy: BackendDecomposed})
	if p.Subdomains != 1 {
		t.Errorf("meshless forced plan: subdomains = %d, want 1", p.Subdomains)
	}
}
