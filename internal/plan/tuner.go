package plan

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/kernel"
)

// TuningMode is the planner's feedback policy: what a session does with the
// realized throughput of executed plans.
type TuningMode int

const (
	// TuningAdapt (the default) records realized throughput per executed
	// plan and re-plans warm problems from the measurements: the selector
	// prefers measured winners and explores neighboring plans, the paper's
	// machine-dependent-m result closed into a live loop.
	TuningAdapt TuningMode = iota
	// TuningObserve records measurements and reports them as plan evidence
	// but always executes the static plan.
	TuningObserve
	// TuningOff disables the loop entirely: plans are the planner's static
	// structure decision, bit-for-bit, with no observation store.
	TuningOff
)

func (m TuningMode) String() string {
	switch m {
	case TuningAdapt:
		return "adapt"
	case TuningObserve:
		return "observe"
	case TuningOff:
		return "off"
	}
	return "?"
}

// ParseTuning resolves a tuning policy name; the empty string means Adapt.
func ParseTuning(name string) (TuningMode, error) {
	switch name {
	case "", "adapt":
		return TuningAdapt, nil
	case "observe":
		return TuningObserve, nil
	case "off":
		return TuningOff, nil
	}
	return 0, fmt.Errorf("plan: unknown tuning policy %q (want off, observe or adapt)", name)
}

// Signature is the identity of a plan for the observation store: two solves
// whose plans share a signature are assumed to realize the same throughput
// on this machine. Tile identity is the widest tile's width — tiling is
// balanced, so the width determines the partition for a given batch size.
type Signature struct {
	Backend    Backend
	TileWidth  int
	Workers    int
	M          int
	Interleave bool
	Kernel     string
}

// Signature reduces the plan to its observation-store identity.
func (p Plan) Signature() Signature {
	w := 0
	if len(p.Tiles) > 0 {
		w = len(p.Tiles[0])
	}
	return Signature{
		Backend:    p.Backend,
		TileWidth:  w,
		Workers:    p.Workers,
		M:          p.M,
		Interleave: p.Interleave,
		Kernel:     p.Kernel,
	}
}

// less orders signatures deterministically (tie-breaks in selection must
// not depend on map iteration order).
func (s Signature) less(o Signature) bool {
	if s.Backend != o.Backend {
		return s.Backend < o.Backend
	}
	if s.TileWidth != o.TileWidth {
		return s.TileWidth < o.TileWidth
	}
	if s.Workers != o.Workers {
		return s.Workers < o.Workers
	}
	if s.M != o.M {
		return s.M < o.M
	}
	if s.Interleave != o.Interleave {
		return !s.Interleave
	}
	return s.Kernel < o.Kernel
}

// Observation is one executed plan's realized performance: right-hand
// sides retired per second of execute time, and the execute seconds per
// block iteration (the per-iteration cost the m in m-step trades against).
type Observation struct {
	RHSPerSec   float64
	IterSeconds float64
}

// PriorFunc predicts the relative throughput of an unmeasured candidate:
// it returns cand's expected speed as a multiple of ref's measured speed
// (1 = no opinion). The engine derives it from the vectorsim cost model,
// eq. (4.1): T_m = Setup + N·(A + m·B).
type PriorFunc func(ref, cand Signature) float64

// Candidate is one plan the selector considered, with its evidence: the
// measured throughput estimate when the signature has executed before, the
// cost-model prediction otherwise, and the exploration-adjusted score the
// selection ranked it by.
type Candidate struct {
	Plan         Plan
	Signature    Signature
	Measured     float64 // mean measured rhs/s (0 when unmeasured)
	Observations int
	IterSeconds  float64 // mean execute seconds per block iteration
	Prior        float64 // cost-model predicted rhs/s (0 when measured or no prior)
	Score        float64
	Chosen       bool
}

// Decision explains one plan choice: how it was made and every candidate
// considered with its evidence. A zero Decision (no candidates) means the
// static plan ran unexamined — a cold problem, or tuning off.
type Decision struct {
	// Source is "static" (the planner's structure heuristic, unexamined or
	// deliberately kept), "measured" (a candidate chosen on observed
	// throughput) or "predicted" (an unmeasured candidate promoted by the
	// cost-model prior / exploration bonus).
	Source     string
	Candidates []Candidate
}

// Tuner defaults.
const (
	// DefaultMinObservations is how many executed solves a problem needs
	// before the selector starts considering alternatives: below it plans
	// stay static, so short-lived sessions (and tests) see exactly the
	// static planner.
	DefaultMinObservations = 5
	// DefaultExplore scales the UCB exploration bonus, in units of the
	// best measured throughput.
	DefaultExplore = 0.25
	// DefaultMaxProblems bounds the distinct problems (cache keys) the
	// store tracks.
	DefaultMaxProblems = 256
	// DefaultMaxSignatures bounds the plan signatures tracked per problem.
	DefaultMaxSignatures = 32
	// maxCandidates caps the plans one decision examines.
	maxCandidates = 12
)

// Tuner is the measurement side of the self-tuning planner: a bounded
// per-problem observation store keyed by plan signature, folding each
// executed solve's realized rhs/s into an online estimate, plus the
// selector that re-plans warm problems from the estimates. The zero value
// uses the defaults above and is ready to use; all methods are safe for
// concurrent use.
//
// Selection is UCB-style over the neighborhood of the static plan and the
// best measured plan (M±1, halved/doubled tile widths, halved/doubled
// worker counts, interleave toggled): each candidate scores its measured
// mean throughput — or the cost-model prior, anchored to the best measured
// signature, when unmeasured — plus an exploration bonus that shrinks as
// the candidate accumulates observations. The arithmetic is deliberately
// clock- and randomness-free: equal stores produce equal decisions.
type Tuner struct {
	// MinObservations gates selection (default DefaultMinObservations).
	MinObservations int
	// Explore scales the exploration bonus (default DefaultExplore);
	// negative disables exploration (pure greedy over measured means).
	Explore float64
	// MaxProblems bounds tracked problems (default DefaultMaxProblems).
	MaxProblems int
	// MaxSignatures bounds tracked signatures per problem (default
	// DefaultMaxSignatures); observations for further signatures are
	// dropped.
	MaxSignatures int

	mu       sync.Mutex
	problems map[string]*problemStats
	touch    int64
}

type problemStats struct {
	total    int
	lastUsed int64
	sigs     map[Signature]*sigStat
}

type sigStat struct {
	n           int
	mean        float64 // running mean rhs/s
	iterSeconds float64 // running mean seconds per block iteration
}

func (t *Tuner) minObs() int {
	if t.MinObservations > 0 {
		return t.MinObservations
	}
	return DefaultMinObservations
}

func (t *Tuner) explore() float64 {
	switch {
	case t.Explore < 0:
		return 0
	case t.Explore == 0:
		return DefaultExplore
	}
	return t.Explore
}

func (t *Tuner) maxProblems() int {
	if t.MaxProblems > 0 {
		return t.MaxProblems
	}
	return DefaultMaxProblems
}

func (t *Tuner) maxSignatures() int {
	if t.MaxSignatures > 0 {
		return t.MaxSignatures
	}
	return DefaultMaxSignatures
}

// Observe folds one executed plan's realized performance into the store.
// Non-positive keys-less problems (key "") and non-finite or negative
// throughputs are ignored; a zero RHSPerSec is accepted as the deliberate
// "this plan cannot run here" mark for infeasible candidates.
func (t *Tuner) Observe(key string, sig Signature, obs Observation) {
	if key == "" || math.IsNaN(obs.RHSPerSec) || math.IsInf(obs.RHSPerSec, 0) || obs.RHSPerSec < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.problems == nil {
		t.problems = make(map[string]*problemStats)
	}
	p := t.problems[key]
	if p == nil {
		if len(t.problems) >= t.maxProblems() {
			t.evictColdest()
		}
		p = &problemStats{sigs: make(map[Signature]*sigStat)}
		t.problems[key] = p
	}
	t.touch++
	p.lastUsed = t.touch
	st := p.sigs[sig]
	if st == nil {
		if len(p.sigs) >= t.maxSignatures() {
			return // bounded store: drop observations beyond the cap
		}
		st = &sigStat{}
		p.sigs[sig] = st
	}
	p.total++
	st.n++
	st.mean += (obs.RHSPerSec - st.mean) / float64(st.n)
	st.iterSeconds += (obs.IterSeconds - st.iterSeconds) / float64(st.n)
}

// evictColdest drops the least-recently-used problem; caller holds t.mu.
func (t *Tuner) evictColdest() {
	var coldKey string
	var coldUsed int64 = math.MaxInt64
	for k, p := range t.problems {
		if p.lastUsed < coldUsed {
			coldKey, coldUsed = k, p.lastUsed
		}
	}
	if coldKey != "" {
		delete(t.problems, coldKey)
	}
}

// Observations reports how many executed solves the store has folded in
// for the problem (0 for unknown keys).
func (t *Tuner) Observations(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p := t.problems[key]; p != nil {
		return p.total
	}
	return 0
}

// Decide chooses the plan a warm problem should run: base is the planner's
// static decision for in (pl is the planner that produced it, needed to
// regenerate consistent candidate plans). Until the problem has
// MinObservations executed solves — or when the base plan is decomposed,
// whose execution shape the mesh partition owns — the static plan returns
// untouched with an empty Decision. Past the gate every candidate is
// scored; with adapt true the winner's plan is returned, otherwise the
// static plan is (observe mode: evidence without adaptation). prior, when
// non-nil, supplies the cost-model throughput ratio for unmeasured
// candidates (it is per-problem, so it is an argument rather than tuner
// state). Decide never mutates the store, so offline planning
// (POST /v1/plan) can call it freely.
func (t *Tuner) Decide(key string, pl Planner, in Inputs, base Plan, prior PriorFunc, adapt bool) (Plan, Decision) {
	if key == "" || base.Backend == BackendDecomposed || len(base.Tiles) == 0 {
		return base, Decision{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.problems[key]
	if p == nil || p.total < t.minObs() {
		return base, Decision{}
	}

	// Anchor: the best measured signature, the unit every prior and
	// exploration bonus is expressed in.
	var anchorSig Signature
	anchor := 0.0
	found := false
	for sig, st := range p.sigs {
		if st.n == 0 {
			continue
		}
		if !found || st.mean > anchor || (st.mean == anchor && sig.less(anchorSig)) {
			anchorSig, anchor, found = sig, st.mean, true
		}
	}
	if !found || anchor <= 0 {
		return base, Decision{}
	}

	cands := t.candidates(pl, in, base, anchorSig)
	total := float64(p.total)
	explore := t.explore()
	best := 0
	for i := range cands {
		c := &cands[i]
		value := 0.0
		n := 0
		if st := p.sigs[c.Signature]; st != nil && st.n > 0 {
			c.Measured, c.Observations, c.IterSeconds = st.mean, st.n, st.iterSeconds
			value, n = st.mean, st.n
		} else {
			ratio := 1.0
			if prior != nil {
				ratio = clampRatio(prior(anchorSig, c.Signature))
			}
			c.Prior = anchor * ratio
			value = c.Prior
		}
		c.Score = value + explore*anchor*math.Sqrt(math.Log(total+1)/float64(n+1))
		if c.Score > cands[best].Score {
			best = i
		}
	}

	d := Decision{Source: "static", Candidates: cands}
	if !adapt {
		cands[0].Chosen = true // the static plan is what will run
		return base, d
	}
	cands[best].Chosen = true
	switch {
	case best == 0 && cands[0].Observations == 0:
		d.Source = "static"
	case cands[best].Observations > 0:
		d.Source = "measured"
	default:
		d.Source = "predicted"
	}
	return cands[best].Plan, d
}

// clampRatio bounds a prior's opinion: the cost model ranks neighbors, it
// does not get to declare a candidate 100× faster than the evidence.
func clampRatio(r float64) float64 {
	if math.IsNaN(r) || r <= 0 {
		return 1
	}
	return math.Min(math.Max(r, 0.1), 10)
}

// candidates builds the deterministic candidate list: the static base plan
// first, then the neighborhoods of the base and of the incumbent best
// measured plan, deduplicated by signature. Caller holds t.mu.
func (t *Tuner) candidates(pl Planner, in Inputs, base Plan, anchorSig Signature) []Candidate {
	seen := map[Signature]bool{base.Signature(): true}
	out := []Candidate{{Plan: base, Signature: base.Signature()}}
	add := func(p Plan, ok bool) {
		if !ok || len(out) >= maxCandidates {
			return
		}
		sig := p.Signature()
		if seen[sig] {
			return
		}
		seen[sig] = true
		out = append(out, Candidate{Plan: p, Signature: sig})
	}
	expand := func(from Plan) {
		add(pl.withM(from, from.M+1))
		add(pl.withM(from, from.M-1))
		add(pl.retiled(in, from, 2*tileWidth(from)))
		add(pl.retiled(in, from, tileWidth(from)/2))
		add(pl.withWorkers(in, from, from.Workers*2))
		add(pl.withWorkers(in, from, from.Workers/2))
		add(pl.withInterleave(in, from, !from.Interleave))
	}
	expand(base)
	// Walk the neighborhood of the incumbent too, so adaptation can climb
	// more than one step away from the static plan (m 1 → 2 → 3 …).
	if inc, ok := pl.fromSignature(in, base, anchorSig); ok {
		add(inc, true)
		expand(inc)
	}
	return out
}

// tileWidth is the plan's widest tile (its signature width).
func tileWidth(p Plan) int {
	if len(p.Tiles) == 0 {
		return 0
	}
	return len(p.Tiles[0])
}

// batchSize is the plan's total column count.
func batchSize(p Plan) int {
	s := 0
	for _, t := range p.Tiles {
		s += len(t)
	}
	return s
}

// wideThreshold is the planner's effective interleave threshold.
func (pl Planner) wideThreshold() int {
	if pl.WideBlockThreshold == 0 {
		return DefaultWideBlockThreshold
	}
	return pl.WideBlockThreshold
}

// kernelFor resolves the kernel set a candidate runs through, mirroring
// Plan: only the interleaved panel path threads the per-solve policy.
func kernelFor(interleave bool, policy string) string {
	if interleave {
		return kernel.Select(policy).Name
	}
	return kernel.Active().Name
}

// withM proposes base with m preconditioner steps (invalid m: no plan).
func (pl Planner) withM(base Plan, m int) (Plan, bool) {
	if m < 0 || m == base.M {
		return Plan{}, false
	}
	out := base
	out.M = m
	return out, true
}

// retiled proposes base re-partitioned at the given tile width, with the
// interleave legality and kernel resolution the static planner applies.
func (pl Planner) retiled(in Inputs, base Plan, width int) (Plan, bool) {
	s := batchSize(base)
	if s <= 1 || width < 1 || width > s || width == tileWidth(base) {
		return Plan{}, false
	}
	out := base
	out.Tiles = tile(s, width)
	wide := pl.wideThreshold()
	out.Interleave = wide > 0 && len(out.Tiles[len(out.Tiles)-1]) >= wide
	out.Kernel = kernelFor(out.Interleave, in.Kernel)
	if tileWidth(out) == tileWidth(base) && out.Interleave == base.Interleave {
		return Plan{}, false
	}
	return out, true
}

// withWorkers proposes base at a different kernel fan-out, bounded by the
// session's worker budget. Systems below the parallel-kernel threshold run
// serially regardless, so no variant is proposed for them.
func (pl Planner) withWorkers(in Inputs, base Plan, w int) (Plan, bool) {
	budget := in.Workers
	if budget < 1 {
		budget = 1
	}
	if in.Probe != nil && in.Probe.Rows > 0 && in.Probe.Rows < minParallelRows {
		return Plan{}, false
	}
	if w < 1 || w > budget || w == base.Workers {
		return Plan{}, false
	}
	out := base
	out.Workers = w
	return out, true
}

// withInterleave proposes base with the panel layout toggled. Turning it
// on needs every tile at least two columns wide (a one-column panel is the
// scalar path) and the planner's threshold not negative (negative disables
// interleaving entirely, a pin the tuner honors).
func (pl Planner) withInterleave(in Inputs, base Plan, on bool) (Plan, bool) {
	if on == base.Interleave || len(base.Tiles) == 0 {
		return Plan{}, false
	}
	if on && (pl.wideThreshold() <= 0 || len(base.Tiles[len(base.Tiles)-1]) < 2) {
		return Plan{}, false
	}
	out := base
	out.Interleave = on
	out.Kernel = kernelFor(on, in.Kernel)
	return out, true
}

// fromSignature reconstructs the plan a signature describes by applying
// its fields to the static base (the inverse of the candidate modifiers).
// It reports false when the signature is not reachable from base — a
// different backend, or a shape the current inputs cannot express — so a
// stale store entry can never smuggle in an inconsistent plan.
func (pl Planner) fromSignature(in Inputs, base Plan, sig Signature) (Plan, bool) {
	if sig.Backend != base.Backend {
		return Plan{}, false
	}
	out := base
	if sig.M != out.M {
		var ok bool
		if out, ok = pl.withM(out, sig.M); !ok {
			return Plan{}, false
		}
	}
	if sig.TileWidth != tileWidth(out) {
		var ok bool
		if out, ok = pl.retiled(in, out, sig.TileWidth); !ok {
			return Plan{}, false
		}
	}
	if sig.Workers != out.Workers {
		var ok bool
		if out, ok = pl.withWorkers(in, out, sig.Workers); !ok {
			return Plan{}, false
		}
	}
	if sig.Interleave != out.Interleave {
		var ok bool
		if out, ok = pl.withInterleave(in, out, sig.Interleave); !ok {
			return Plan{}, false
		}
	}
	if out.Signature() != sig {
		return Plan{}, false
	}
	return out, true
}
