package plan

import (
	"fmt"
	"reflect"
	"testing"
)

func TestParseTuning(t *testing.T) {
	for name, want := range map[string]TuningMode{
		"": TuningAdapt, "adapt": TuningAdapt,
		"observe": TuningObserve, "off": TuningOff,
	} {
		got, err := ParseTuning(name)
		if err != nil || got != want {
			t.Errorf("ParseTuning(%q) = %v, %v; want %v", name, got, err, want)
		}
		if got.String() != name && name != "" {
			t.Errorf("String() round-trip: %q != %q", got.String(), name)
		}
	}
	if _, err := ParseTuning("aggressive"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPlanSignature(t *testing.T) {
	probe := &Probe{Rows: 1000, Cols: 1000, NNZ: 5000, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	p := pinned(1000, 8).Plan(Inputs{Probe: probe, RHS: 20, M: 3, Workers: 2})
	sig := p.Signature()
	// Tiling is balanced, so the signature width is the widest tile's.
	if sig.TileWidth != len(p.Tiles[0]) || sig.M != 3 || sig.Workers != p.Workers || sig.Backend != p.Backend {
		t.Fatalf("signature %+v does not describe plan %+v", sig, p)
	}
}

// tunerInputs is the boundary-case table the static planner's tests pin:
// scalar solves, exact-width batches, clamped widths, serial fallbacks.
// The tuner must return each static plan byte-for-byte when the problem is
// below the observation gate (and, trivially, when tuning is off — the
// engine never calls Decide then).
func tunerInputs() (Planner, []Inputs) {
	big := &Probe{Rows: 1000, Cols: 1000, NNZ: 5000, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	small := &Probe{Rows: 100, Cols: 100, NNZ: 300, NumDiags: 3, MaxRowNNZ: 3, Fill: 1}
	pl := pinned(1000, 16)
	return pl, []Inputs{
		{Probe: big, RHS: 1, M: 3, Workers: 2},   // scalar solve
		{Probe: big, RHS: 16, M: 3, Workers: 2},  // exactly one tile
		{Probe: big, RHS: 17, M: 3, Workers: 2},  // just over: 9+8 split
		{Probe: big, RHS: 129, M: 0, Workers: 4}, // many tiles, plain CG
		{Probe: small, RHS: 8, M: 1, Workers: 4}, // sub-parallel system
		{Probe: big, RHS: 63, M: 4, Workers: 3, Policy: BackendCSR},
	}
}

func TestDecideBelowGateIsStatic(t *testing.T) {
	tu := &Tuner{}
	pl, table := tunerInputs()
	for i, in := range table {
		key := fmt.Sprintf("problem-%d", i)
		base := pl.Plan(in)
		// Fewer observations than the gate: static plan, no evidence.
		for j := 0; j < DefaultMinObservations-1; j++ {
			tu.Observe(key, base.Signature(), Observation{RHSPerSec: 100})
		}
		for _, adapt := range []bool{false, true} {
			got, d := tu.Decide(key, pl, in, base, nil, adapt)
			if !reflect.DeepEqual(got, base) {
				t.Errorf("input %d adapt=%v: below-gate plan differs:\n got %+v\nwant %+v", i, adapt, got, base)
			}
			if len(d.Candidates) != 0 || d.Source != "" {
				t.Errorf("input %d: below-gate decision not empty: %+v", i, d)
			}
		}
	}
}

func TestDecideDecomposedUntouched(t *testing.T) {
	tu := &Tuner{}
	base := Plan{Backend: BackendDecomposed, Subdomains: 4, M: 3}
	for i := 0; i < 3*DefaultMinObservations; i++ {
		tu.Observe("k", base.Signature(), Observation{RHSPerSec: 10})
	}
	got, d := tu.Decide("k", Planner{}, Inputs{}, base, nil, true)
	if !reflect.DeepEqual(got, base) || len(d.Candidates) != 0 {
		t.Fatalf("decomposed plan was tuned: %+v / %+v", got, d)
	}
}

func TestDecideObserveModeKeepsStatic(t *testing.T) {
	tu := &Tuner{}
	pl, table := tunerInputs()
	in := table[2]
	base := pl.Plan(in)
	for i := 0; i < 2*DefaultMinObservations; i++ {
		tu.Observe("k", base.Signature(), Observation{RHSPerSec: 100})
	}
	got, d := tu.Decide("k", pl, in, base, nil, false)
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("observe mode changed the plan:\n got %+v\nwant %+v", got, base)
	}
	if len(d.Candidates) == 0 || !d.Candidates[0].Chosen || d.Source != "static" {
		t.Fatalf("observe mode evidence wrong: %+v", d)
	}
}

// syntheticSpeed is the fake machine the convergence test runs on: m = 3 is
// the best reachable step count (the paper's machine-dependent optimum),
// every non-M variation is mediocre. No clocks — throughput is a pure
// function of the executed signature, so the whole loop is deterministic.
func syntheticSpeed(base Signature, sig Signature) float64 {
	other := sig
	other.M = base.M
	if other != base { // tile/worker/interleave variation
		return 60
	}
	switch sig.M {
	case 1:
		return 100
	case 2:
		return 140
	case 3:
		return 180
	case 4:
		return 120
	}
	return 50
}

// runTuningLoop simulates n solve rounds: each round executes whatever plan
// Decide picks and feeds the synthetic throughput back in. It returns the
// sequence of executed step counts.
func runTuningLoop(tu *Tuner, pl Planner, in Inputs, base Plan, n int) []int {
	ms := make([]int, 0, n)
	for i := 0; i < n; i++ {
		p, _ := tu.Decide("k", pl, in, base, nil, true)
		sig := p.Signature()
		tu.Observe("k", sig, Observation{RHSPerSec: syntheticSpeed(base.Signature(), sig), IterSeconds: 0.01})
		ms = append(ms, sig.M)
	}
	return ms
}

// TestTunerConvergesToBestCandidate drives the closed loop on a synthetic
// machine where the static m = 1 is suboptimal: the tuner must climb the
// neighborhood (m 1 → 2 → 3), settle on the best of the seeded candidates,
// and report the winner as a measured decision.
func TestTunerConvergesToBestCandidate(t *testing.T) {
	probe := &Probe{Rows: 1000, Cols: 1000, NNZ: 5000, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	pl := pinned(1000, 8)
	in := Inputs{Probe: probe, RHS: 16, M: 1, Workers: 2}
	base := pl.Plan(in)
	tu := &Tuner{}

	runTuningLoop(tu, pl, in, base, 80)

	final, d := tu.Decide("k", pl, in, base, nil, true)
	if got := final.Signature().M; got != 3 {
		t.Fatalf("converged to m = %d, want 3 (decision %+v)", got, d)
	}
	if d.Source != "measured" {
		t.Fatalf("converged decision source = %q, want measured", d.Source)
	}
	var chosen *Candidate
	for i := range d.Candidates {
		if d.Candidates[i].Chosen {
			chosen = &d.Candidates[i]
		}
	}
	if chosen == nil || chosen.Measured < 170 || chosen.Observations == 0 {
		t.Fatalf("winner's evidence missing: %+v", chosen)
	}
	// The winner's plan must stay structurally consistent with the inputs.
	checkTiles(t, final.Tiles, 16, 8)
}

// TestTunerDeterministic pins the clock- and randomness-free contract: two
// tuners fed the identical sequence make the identical decisions.
func TestTunerDeterministic(t *testing.T) {
	probe := &Probe{Rows: 1000, Cols: 1000, NNZ: 5000, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	pl := pinned(1000, 8)
	in := Inputs{Probe: probe, RHS: 16, M: 1, Workers: 2}
	base := pl.Plan(in)
	a := runTuningLoop(&Tuner{}, pl, in, base, 40)
	b := runTuningLoop(&Tuner{}, pl, in, base, 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical loops diverged:\n%v\n%v", a, b)
	}
}

// TestTunerPriorSteersUnmeasured checks the cost-model hook: with a prior
// that predicts m+1 always faster, the first adaptive decision past the
// gate must promote an unmeasured higher-m candidate as "predicted".
func TestTunerPriorSteersUnmeasured(t *testing.T) {
	probe := &Probe{Rows: 1000, Cols: 1000, NNZ: 5000, NumDiags: 5, MaxRowNNZ: 5, Fill: 1}
	pl := pinned(1000, 8)
	in := Inputs{Probe: probe, RHS: 16, M: 1, Workers: 2}
	base := pl.Plan(in)
	tu := &Tuner{Explore: -1} // pure greedy: the prior alone must promote
	for i := 0; i < DefaultMinObservations; i++ {
		tu.Observe("k", base.Signature(), Observation{RHSPerSec: 100})
	}
	prior := func(ref, cand Signature) float64 {
		if cand.M > ref.M {
			return 2
		}
		return 0.5
	}
	got, d := tu.Decide("k", pl, in, base, prior, true)
	if got.Signature().M != base.M+1 {
		t.Fatalf("prior ignored: chose m = %d (decision %+v)", got.Signature().M, d)
	}
	if d.Source != "predicted" {
		t.Fatalf("decision source = %q, want predicted", d.Source)
	}
}

func TestObserveBounds(t *testing.T) {
	tu := &Tuner{MaxProblems: 2, MaxSignatures: 2}
	sig := Signature{Backend: BackendCSR, TileWidth: 8, Workers: 1, M: 1}
	// Rejected observations never create state.
	tu.Observe("", sig, Observation{RHSPerSec: 1})
	tu.Observe("k", sig, Observation{RHSPerSec: -1})
	if n := tu.Observations("k"); n != 0 {
		t.Fatalf("invalid observations stored: %d", n)
	}
	// Per-problem signature cap: the third distinct signature is dropped.
	for m := 1; m <= 3; m++ {
		s := sig
		s.M = m
		tu.Observe("k", s, Observation{RHSPerSec: float64(m)})
	}
	if n := tu.Observations("k"); n != 2 {
		t.Fatalf("signature cap leaked: %d observations", n)
	}
	// Problem cap: the coldest problem is evicted, the hot ones survive.
	tu.Observe("k2", sig, Observation{RHSPerSec: 1})
	tu.Observe("k3", sig, Observation{RHSPerSec: 1})
	if tu.Observations("k") != 0 {
		t.Fatal("LRU eviction kept the coldest problem")
	}
	if tu.Observations("k3") == 0 {
		t.Fatal("newest problem evicted")
	}
}
