// Package femachine simulates the NASA Finite Element Machine of the
// paper's §3.2: an array of processors with distributed memory, dedicated
// nearest-neighbor links, a sum/max hardware circuit performing global
// reductions in O(log₂P) time, and a signal flag network for convergence
// tests.
//
// The simulation is genuinely parallel: each processor is a goroutine, the
// local links are Go channels, and every message carries a simulated
// timestamp. Each processor maintains a local simulated clock charged per
// floating-point operation and per message; a receive advances the clock to
// max(local, arrival). The machine's reported time is the maximum final
// clock — exactly how speedup was measured on the real hardware.
package femachine

import "fmt"

// TimeModel carries the hardware cost parameters (seconds).
type TimeModel struct {
	// Flop is the time per floating point operation. The FEM's processors
	// were microprocessor-class (~1 µs per flop).
	Flop float64
	// MsgStartup is the per-message software initiation cost on a local
	// link.
	MsgStartup float64
	// Word is the per-64-bit-word transmission time on a local link.
	Word float64
	// TreeStage is the sum/max circuit's per-stage cost; a P-processor
	// reduction costs ceil(log₂P) stages.
	TreeStage float64
	// FlagSync is the signal-flag-network synchronize-and-test cost.
	FlagSync float64
	// SoftwareReduce, when true, replaces the sum/max circuit with an
	// O(P) software ring — the configuration Jordan [1979] identified as
	// "potentially detrimental" and the reason the circuit was built.
	SoftwareReduce bool
}

// DefaultTimeModel returns parameters representative of the early-1980s
// hardware: microsecond flops, ten-microsecond message startups.
func DefaultTimeModel() TimeModel {
	return TimeModel{
		Flop:       1e-6,
		MsgStartup: 10e-6,
		Word:       1e-6,
		TreeStage:  5e-6,
		FlagSync:   5e-6,
	}
}

// Validate rejects non-physical models.
func (t TimeModel) Validate() error {
	if t.Flop <= 0 || t.MsgStartup < 0 || t.Word < 0 || t.TreeStage < 0 || t.FlagSync < 0 {
		return fmt.Errorf("femachine: invalid time model %+v", t)
	}
	return nil
}

// reduceCost returns the latency of one global reduction over p processors
// beyond the arrival of the last operand.
func (t TimeModel) reduceCost(p int) float64 {
	if p <= 1 {
		return 0
	}
	if t.SoftwareReduce {
		return float64(p-1) * (t.MsgStartup + t.Word)
	}
	stages := 0
	for n := p - 1; n > 0; n >>= 1 {
		stages++
	}
	return float64(stages) * t.TreeStage
}
