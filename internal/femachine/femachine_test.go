package femachine

import (
	"math"
	"testing"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/splitting"
)

// paperPlate is the 60-equation test problem of Table 3.
func paperPlate(t *testing.T) *fem.Plate {
	t.Helper()
	p, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// serialSolve runs the reference solver with the same configuration.
func serialSolve(t *testing.T, plate *fem.Plate, m int, tol float64) ([]float64, cg.Stats) {
	t.Helper()
	sys := core.System{K: plate.KColored, F: plate.ColoredRHS(), GroupStart: plate.Ordering.GroupStart[:]}
	var p precond.Preconditioner = precond.Identity{}
	if m > 0 {
		mc, err := splitting.NewSixColorSSOR(sys.K, sys.GroupStart)
		if err != nil {
			t.Fatal(err)
		}
		p, err = precond.NewMStep(mc, poly.Ones(m))
		if err != nil {
			t.Fatal(err)
		}
	}
	u, st, err := cg.Solve(sys.K, sys.F, p, cg.Options{Tol: tol, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	return u, st
}

func runMachine(t *testing.T, plate *fem.Plate, procs, m int, strat mesh.Strategy, tol float64) Result {
	t.Helper()
	cfg := Config{
		P: procs, Strategy: strat, M: m,
		Tol: tol, MaxIter: 10000, Time: DefaultTimeModel(),
	}
	if m > 0 {
		cfg.Alphas = poly.Ones(m).Coeffs
	}
	mach, err := New(plate, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleProcessorMatchesSerialExactly(t *testing.T) {
	plate := paperPlate(t)
	for _, m := range []int{0, 1, 3} {
		serialU, serialStats := serialSolve(t, plate, m, 1e-6)
		res := runMachine(t, plate, 1, m, mesh.RowStrips, 1e-6)
		if res.Iterations != serialStats.Iterations {
			t.Fatalf("m=%d: machine %d iterations, serial %d", m, res.Iterations, serialStats.Iterations)
		}
		// Row sums are bitwise-identical to serial, but the machine's inner
		// products accumulate in natural-node order rather than colored
		// order, so iterates drift at rounding level over the run.
		for i := range serialU {
			if d := math.Abs(res.U[i] - serialU[i]); d > 5e-7 {
				t.Fatalf("m=%d: solution deviates at %d by %g", m, i, d)
			}
		}
	}
}

func TestMultiProcessorMatchesSerialSolution(t *testing.T) {
	plate := paperPlate(t)
	for _, m := range []int{0, 1, 2, 4} {
		serialU, serialStats := serialSolve(t, plate, m, 1e-6)
		for _, pc := range []struct {
			p     int
			strat mesh.Strategy
		}{{2, mesh.RowStrips}, {5, mesh.ColStrips}} {
			res := runMachine(t, plate, pc.p, m, pc.strat, 1e-6)
			if !res.Converged {
				t.Fatalf("m=%d P=%d: not converged", m, pc.p)
			}
			if di := res.Iterations - serialStats.Iterations; di > 1 || di < -1 {
				t.Fatalf("m=%d P=%d: %d iterations vs serial %d", m, pc.p, res.Iterations, serialStats.Iterations)
			}
			for i := range serialU {
				if d := math.Abs(res.U[i] - serialU[i]); d > 5e-7 {
					t.Fatalf("m=%d P=%d: solution deviates at %d by %g", m, pc.p, i, d)
				}
			}
		}
	}
}

func TestIterationCountIndependentOfProcessorCount(t *testing.T) {
	// Table 3: the same iteration column for 1, 2 and 5 processors.
	plate := paperPlate(t)
	for _, m := range []int{0, 1, 2, 3} {
		i1 := runMachine(t, plate, 1, m, mesh.RowStrips, 1e-6).Iterations
		i2 := runMachine(t, plate, 2, m, mesh.RowStrips, 1e-6).Iterations
		i5 := runMachine(t, plate, 5, m, mesh.ColStrips, 1e-6).Iterations
		if i1 != i2 || i1 != i5 {
			t.Fatalf("m=%d: iterations differ across P: %d/%d/%d", m, i1, i2, i5)
		}
	}
}

func TestSpeedupsBelowIdealAndPositive(t *testing.T) {
	plate := paperPlate(t)
	for _, m := range []int{0, 2} {
		t1 := runMachine(t, plate, 1, m, mesh.RowStrips, 1e-6).SimTime
		t2 := runMachine(t, plate, 2, m, mesh.RowStrips, 1e-6).SimTime
		t5 := runMachine(t, plate, 5, m, mesh.ColStrips, 1e-6).SimTime
		s2, s5 := t1/t2, t1/t5
		if s2 <= 1 || s2 > 2 {
			t.Fatalf("m=%d: 2-processor speedup %g outside (1, 2]", m, s2)
		}
		if s5 <= 1 || s5 > 5 {
			t.Fatalf("m=%d: 5-processor speedup %g outside (1, 5]", m, s5)
		}
		if s5 <= s2 {
			t.Fatalf("m=%d: 5-proc speedup %g not above 2-proc %g", m, s5, s2)
		}
	}
}

func TestPrecondCommDominatesOverhead(t *testing.T) {
	// Paper observation (3): with preconditioning, the preconditioner's
	// border exchanges — not the inner products — dominate the parallel
	// overhead on small P.
	plate := paperPlate(t)
	res := runMachine(t, plate, 2, 3, mesh.RowStrips, 1e-6)
	if res.PrecondCommTime <= res.ReduceWaitTime {
		t.Fatalf("precond comm %g not above reduction wait %g",
			res.PrecondCommTime, res.ReduceWaitTime)
	}
	if res.PrecondExchanges == 0 || res.HaloExchanges == 0 || res.Reductions == 0 {
		t.Fatalf("missing counters: %+v", res)
	}
}

func TestCGSpeedupExceedsPCGSpeedup(t *testing.T) {
	// Paper observation (3), other half: CG (m=0) has less overhead than
	// PCG, so its speedup is higher.
	plate := paperPlate(t)
	speedup := func(m int) float64 {
		t1 := runMachine(t, plate, 1, m, mesh.RowStrips, 1e-6).SimTime
		t2 := runMachine(t, plate, 2, m, mesh.RowStrips, 1e-6).SimTime
		return t1 / t2
	}
	if s0, s3 := speedup(0), speedup(3); s0 <= s3 {
		t.Fatalf("CG speedup %g not above 3-step PCG speedup %g", s0, s3)
	}
}

func TestHardwareTreeBeatsSoftwareRing(t *testing.T) {
	// Jordan's motivation for the sum/max circuit: on the same workload,
	// the O(log P) tree beats the O(P) software reduction.
	plate := paperPlate(t)
	run := func(software bool) float64 {
		tm := DefaultTimeModel()
		tm.SoftwareReduce = software
		cfg := Config{P: 5, Strategy: mesh.ColStrips, M: 0, Tol: 1e-6, MaxIter: 10000, Time: tm}
		mach, err := New(plate, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mach.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	tree, ring := run(false), run(true)
	if tree >= ring {
		t.Fatalf("tree %g not faster than ring %g", tree, ring)
	}
}

func TestParametrizedCoefficientsOnMachine(t *testing.T) {
	// The machine accepts arbitrary α (Algorithm 3's a_{m-s} multipliers);
	// results must match the serial parametrized solver.
	plate := paperPlate(t)
	sys := core.System{K: plate.KColored, F: plate.ColoredRHS(), GroupStart: plate.Ordering.GroupStart[:]}
	serialRes, err := core.Solve(sys, core.Config{
		M: 3, Coeffs: core.LeastSquaresCoeffs, Tol: 1e-6, MaxIter: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		P: 5, Strategy: mesh.ColStrips, M: 3,
		Alphas: serialRes.Alphas.Coeffs,
		Tol:    1e-6, MaxIter: 10000, Time: DefaultTimeModel(),
	}
	mach, err := New(plate, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if di := res.Iterations - serialRes.Stats.Iterations; di > 1 || di < -1 {
		t.Fatalf("iterations %d vs serial %d", res.Iterations, serialRes.Stats.Iterations)
	}
	for i := range res.U {
		if d := math.Abs(res.U[i] - serialRes.U[i]); d > 1e-7 {
			t.Fatalf("solution deviates at %d by %g", i, d)
		}
	}
}

func TestMachineDeterministic(t *testing.T) {
	plate := paperPlate(t)
	first := runMachine(t, plate, 5, 2, mesh.ColStrips, 1e-6)
	for trial := 0; trial < 3; trial++ {
		again := runMachine(t, plate, 5, 2, mesh.ColStrips, 1e-6)
		if again.Iterations != first.Iterations || again.SimTime != first.SimTime {
			t.Fatalf("nondeterministic run: %+v vs %+v", again, first)
		}
		for i := range first.U {
			if again.U[i] != first.U[i] {
				t.Fatalf("nondeterministic solution at %d", i)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	plate := paperPlate(t)
	if _, err := New(plate, Config{P: 2, M: 2, Tol: 1e-6, Time: DefaultTimeModel()}); err == nil {
		t.Fatal("missing alphas accepted")
	}
	if _, err := New(plate, Config{P: 2, M: 0, Tol: 0, Time: DefaultTimeModel()}); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, err := New(plate, Config{P: 2, M: 0, Tol: 1e-6, Time: TimeModel{}}); err == nil {
		t.Fatal("invalid time model accepted")
	}
	if _, err := New(plate, Config{P: 99, M: 0, Tol: 1e-6, Time: DefaultTimeModel()}); err == nil {
		t.Fatal("oversized P accepted")
	}
}

func TestTimeModelReduceCost(t *testing.T) {
	tm := DefaultTimeModel()
	if tm.reduceCost(1) != 0 {
		t.Fatal("P=1 reduction should be free")
	}
	// Tree: ceil(log2 P) stages.
	if got, want := tm.reduceCost(2), tm.TreeStage; got != want {
		t.Fatalf("P=2 tree cost %g, want %g", got, want)
	}
	if got, want := tm.reduceCost(5), 3*tm.TreeStage; got != want {
		t.Fatalf("P=5 tree cost %g, want %g", got, want)
	}
	tm.SoftwareReduce = true
	if got, want := tm.reduceCost(5), 4*(tm.MsgStartup+tm.Word); got != want {
		t.Fatalf("P=5 ring cost %g, want %g", got, want)
	}
}
