package femachine

import (
	"errors"
	"math"
)

// ErrMaxIterations reports a machine run that hit the iteration cap.
var ErrMaxIterations = errors.New("femachine: maximum iterations reached without convergence")

// charge advances the local clock by n floating-point operations.
func (lp *proc) charge(flops int) {
	dt := float64(flops) * lp.m.cfg.Time.Flop
	lp.clock += dt
	lp.computeTime += dt
}

// exchange sends and receives the border values of the given node colors
// for the combined vector v (own+halo layout). Both components of every
// listed node travel in one record per neighbor, the packaging §3.2
// recommends. commTime/count record the category (preconditioner vs halo).
func (lp *proc) exchange(v []float64, colors []int, commTime *float64, count *int) {
	sub := lp.sub
	if len(sub.Neighbors) == 0 {
		return
	}
	tm := lp.m.cfg.Time
	// Send to every neighbor first (links are buffered and the payload
	// rings are sized from the real border width, so this cannot
	// deadlock), then drain the receives.
	for ni, q := range sub.Neighbors {
		idx := lp.sendIdx[ni]
		lp.sendIdx[ni] = idx ^ 1
		vals := lp.sendBufs[ni][idx][:0]
		snd := sub.SendNodes[q]
		for _, c := range colors {
			for _, li := range snd[c] {
				vals = append(vals, v[2*li], v[2*li+1])
			}
		}
		lp.sendBufs[ni][idx] = vals
		lp.clock += tm.MsgStartup
		*commTime += tm.MsgStartup
		arrival := lp.clock + float64(len(vals))*tm.Word
		lp.m.links.Send(sub.Rank, q, message{vals: vals, arrival: arrival})
	}
	for _, q := range sub.Neighbors {
		msg := lp.m.links.Recv(q, sub.Rank)
		if msg.arrival > lp.clock {
			*commTime += msg.arrival - lp.clock
			lp.clock = msg.arrival
		}
		i := 0
		rcv := sub.RecvNodes[q]
		for _, c := range colors {
			for _, li := range rcv[c] {
				v[2*li] = msg.vals[i]
				v[2*li+1] = msg.vals[i+1]
				i += 2
			}
		}
	}
	*count += len(sub.Neighbors)
}

// allReduce performs a global reduction, charging the synchronization wait.
func (lp *proc) allReduce(val float64, op reduceOp) float64 {
	res, rclock := lp.m.red.allReduce(lp.sub.Rank, val, lp.clock, op)
	if rclock > lp.clock {
		lp.reduceWaitTime += rclock - lp.clock
		lp.clock = rclock
	}
	lp.reductions++
	return res
}

// dotOwn is the local part of an inner product over own dofs.
func (lp *proc) dotOwn(a, b []float64) float64 {
	n := 2 * lp.sub.NOwn
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	lp.charge(2 * n)
	return s
}

// rowSum accumulates Σ Vals[k]·x[Cols[k]] over the half-open entry range
// [lo, hi) of the subdomain's flat row storage.
func (lp *proc) rowSum(lo, hi int32, x []float64) float64 {
	cols := lp.sub.Cols
	vals := lp.sub.Vals
	var s float64
	for k := lo; k < hi; k++ {
		s += vals[k] * x[cols[k]]
	}
	return s
}

// localKp computes kp = K·p over own rows (p must have fresh halo values).
// The diagonal is stored inside the row, so the sum runs in exactly the
// serial CSR column order.
func (lp *proc) localKp() {
	ng := lp.sub.NumGroups
	stride := ng + 1
	flops := 0
	for flat := 0; flat < 2*lp.sub.NOwn; flat++ {
		seg := lp.sub.Seg[flat*stride:]
		lp.kp[flat] = lp.rowSum(seg[0], seg[ng], lp.pvec)
		flops += 2 * int(seg[ng]-seg[0])
	}
	lp.charge(flops)
}

// solveGroup runs one color-group solve of Algorithm 3: for each own
// unknown of group g, combine the fresh one-sided sum, the Conrad–Wallach
// cache, and α·r, and divide by the diagonal. forward selects which side is
// fresh; cache controls whether the fresh sum is saved; solve=false elides
// the dead backward color-1 solves of non-final steps (the sum is still
// computed for the cache).
func (lp *proc) solveGroup(g int, alpha float64, forward, cache, solve bool) {
	color := g / 2
	comp := g % 2
	ng := lp.sub.NumGroups
	stride := ng + 1
	flops := 0
	for _, li := range lp.sub.ColorOwn[color] {
		flat := 2*li + comp
		seg := lp.sub.Seg[flat*stride:]
		var x float64
		if forward {
			x = -lp.rowSum(seg[0], seg[g], lp.rhat)
			flops += 2 * int(seg[g]-seg[0])
		} else {
			x = -lp.rowSum(seg[g+1], seg[ng], lp.rhat)
			flops += 2 * int(seg[ng]-seg[g+1])
		}
		if solve {
			lp.rhat[flat] = (x + lp.ycache[flat] + alpha*lp.r[flat]) / lp.sub.Diag[flat]
			flops += 4
		}
		if cache {
			lp.ycache[flat] = x
		}
	}
	lp.charge(flops)
}

// msweep applies the m-step 6-color SSOR preconditioner (Algorithm 3):
// rhat = M_m⁻¹·r, exchanging border colors exactly when the next group
// solve needs them.
func (lp *proc) msweep() {
	cfg := lp.m.cfg
	m := cfg.M
	for i := range lp.rhat {
		lp.rhat[i] = 0
	}
	for i := range lp.ycache {
		lp.ycache[i] = 0
	}
	nc := lp.m.dec.NumColors
	lastGroup := 2*nc - 1
	for s := 1; s <= m; s++ {
		alpha := cfg.Alphas[m-s]
		// Forward half-sweep: groups ascending, exchanging each node
		// color's pair right after its v-component solve. The last group's
		// cache must remain zero: its upper sum is empty and its backward
		// re-solve is skipped.
		for c := 0; c < nc; c++ {
			lp.solveGroup(2*c, alpha, true, true, true)
			lp.solveGroup(2*c+1, alpha, true, 2*c+1 < lastGroup, true)
			lp.exchange(lp.rhat, lp.m.dec.ColorSet(c), &lp.precondCommTime, &lp.precondExchanges)
		}
		// Backward half-sweep: skip the last group (identical re-solve);
		// for each color from the top, solve its v- then u-group and
		// exchange the color pair right after the u-group solve — except
		// color 0, whose u-solve is dead until the final step and whose
		// pair travels with the next forward sweep.
		for c := nc - 1; c >= 1; c-- {
			if 2*c+1 != lastGroup {
				lp.solveGroup(2*c+1, alpha, false, true, true)
			}
			lp.solveGroup(2*c, alpha, false, true, true)
			lp.exchange(lp.rhat, lp.m.dec.ColorSet(c), &lp.precondCommTime, &lp.precondExchanges)
		}
		if lastGroup != 1 {
			lp.solveGroup(1, alpha, false, true, true)
		}
		lp.solveGroup(0, alpha, false, true, s == m)
	}
}

// solve is the per-processor PCG driver (Algorithm 1 on the machine).
func (lp *proc) solve() error {
	cfg := lp.m.cfg
	n := 2 * lp.sub.NOwn

	// r⁰ = f − K·u⁰ with u⁰ = 0. The real machine still performs the
	// product; charge it for timing fidelity.
	lp.exchange(lp.pvec, lp.m.dec.AllColors, &lp.haloCommTime, &lp.haloExchanges)
	lp.localKp()
	for i := 0; i < n; i++ {
		lp.r[i] = lp.sub.F[i] - lp.kp[i]
	}
	lp.charge(n)

	lp.applyPrecond()
	for i := 0; i < n; i++ {
		lp.pvec[i] = lp.rhat[i]
	}
	lp.charge(n)

	rho := lp.allReduce(lp.dotOwn(lp.rhat, lp.r), opSum)
	if rho == 0 {
		lp.converged = true
		return nil
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		lp.exchange(lp.pvec, lp.m.dec.AllColors, &lp.haloCommTime, &lp.haloExchanges)
		lp.localKp()
		pkp := lp.allReduce(lp.dotOwn(lp.pvec, lp.kp), opSum)
		if pkp <= 0 {
			return errors.New("femachine: matrix not positive definite on machine")
		}
		alpha := rho / pkp

		var pmax float64
		for i := 0; i < n; i++ {
			lp.u[i] += alpha * lp.pvec[i]
			if a := math.Abs(lp.pvec[i]); a > pmax {
				pmax = a
			}
		}
		lp.charge(3 * n)
		lp.iterations++

		// Convergence via the signal flag network: every processor
		// contributes its local ‖Δu‖_∞; all flags raised ⇔ global max
		// below tolerance.
		udiff := lp.allReduce(math.Abs(alpha)*pmax, opFlagMax)

		for i := 0; i < n; i++ {
			lp.r[i] -= alpha * lp.kp[i]
		}
		lp.charge(2 * n)

		if udiff < cfg.Tol {
			lp.converged = true
			return nil
		}

		lp.applyPrecond()
		rhoNext := lp.allReduce(lp.dotOwn(lp.rhat, lp.r), opSum)
		if rhoNext < 0 {
			return errors.New("femachine: preconditioner not positive definite on machine")
		}
		if rhoNext == 0 {
			lp.converged = true
			return nil
		}
		beta := rhoNext / rho
		rho = rhoNext
		for i := 0; i < n; i++ {
			lp.pvec[i] = lp.rhat[i] + beta*lp.pvec[i]
		}
		lp.charge(2 * n)
	}
	return ErrMaxIterations
}

// applyPrecond sets rhat = M⁻¹·r (identity copy when M = 0).
func (lp *proc) applyPrecond() {
	if lp.m.cfg.M == 0 {
		n := 2 * lp.sub.NOwn
		copy(lp.rhat[:n], lp.r)
		lp.charge(n)
		return
	}
	lp.msweep()
}
