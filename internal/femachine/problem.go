package femachine

import (
	"repro/internal/decomp"
	"repro/internal/fem"
	"repro/internal/mesh"
)

// ColoredProblem is the machine's view of a problem: a multicolor-ordered
// SPD system plus the node-level facts needed to distribute it. It is the
// same type the real decomposed solver consumes (decomp.Problem) — the
// simulator and the execution path can never drift apart structurally.
type ColoredProblem = decomp.Problem

// PlateProblem adapts the paper's rectangular plate.
func PlateProblem(plate *fem.Plate) ColoredProblem {
	return decomp.PlateProblem(plate)
}

// DomainColoredProblem adapts an irregular-region problem. The partition
// treats inactive nodes as constrained; the greedy coloring drives the
// color pairs exchanged during the sweeps.
func DomainColoredProblem(p *fem.DomainProblem, constrained mesh.Constraint) (ColoredProblem, error) {
	if constrained == nil {
		constrained = mesh.LeftEdgeClamped
	}
	colorOf := make(map[int]int, len(p.Free))
	for k, id := range p.Free {
		// Recover each free node's color from the ordering: its u-unknown
		// lives in group 2·color.
		_ = k
		colorOf[id] = -1
	}
	inv := p.Ordering.Perm.Inverse()
	groupOf := func(coloredIdx int) int {
		for g := 0; g+1 < len(p.GroupStart); g++ {
			if coloredIdx < p.GroupStart[g+1] {
				return g
			}
		}
		return -1
	}
	for k, id := range p.Free {
		colorOf[id] = groupOf(inv[2*k]) / 2
	}
	g := p.Domain.Grid
	active := make(map[int]bool, len(p.Free))
	for _, id := range p.Domain.ActiveNodes() {
		active[id] = true
	}
	cp := ColoredProblem{
		Grid:       g,
		KColored:   p.KColored,
		RHS:        p.ColoredRHS(),
		GroupStart: p.GroupStart,
		NumColors:  p.NumColors,
		Free:       p.Free,
		ColorOf: func(node int) int {
			c, ok := colorOf[node]
			if !ok {
				return -1
			}
			return c
		},
		ColoredIndex: func(freeIdx, comp int) int { return inv[2*freeIdx+comp] },
		Constrained: func(i, j int) bool {
			return constrained(i, j) || !active[g.NodeID(i, j)]
		},
	}
	return cp, cp.Validate()
}
