package femachine

import (
	"fmt"

	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/sparse"
)

// ColoredProblem is the machine's view of a problem: a multicolor-ordered
// SPD system plus the node-level facts needed to distribute it. Both the
// paper's rectangular plate and the §5 irregular-region extension adapt to
// it.
type ColoredProblem struct {
	Grid       mesh.Grid
	KColored   *sparse.CSR
	RHS        []float64
	GroupStart []int
	NumColors  int
	// Free lists the natural ids of free nodes in natural order; free node
	// k owns reduced dofs 2k and 2k+1.
	Free []int
	// ColorOf returns the node color of a natural node id.
	ColorOf func(node int) int
	// ColoredIndex maps (free-list position, component) to the colored
	// unknown index.
	ColoredIndex func(freeIdx, comp int) int
	// Constrained marks nodes excluded from the unknown set (for irregular
	// regions this includes inactive nodes).
	Constrained mesh.Constraint
}

// PlateProblem adapts the paper's rectangular plate.
func PlateProblem(plate *fem.Plate) ColoredProblem {
	o := plate.Ordering
	inv := o.Perm.Inverse()
	return ColoredProblem{
		Grid:       plate.Grid,
		KColored:   plate.KColored,
		RHS:        plate.ColoredRHS(),
		GroupStart: o.GroupStart[:],
		NumColors:  mesh.NumColors,
		Free:       plate.Free,
		ColorOf:    func(node int) int { return int(plate.Grid.ColorOfID(node)) },
		ColoredIndex: func(freeIdx, comp int) int {
			return inv[2*freeIdx+comp]
		},
		Constrained: plate.Constrained,
	}
}

// DomainColoredProblem adapts an irregular-region problem. The partition
// treats inactive nodes as constrained; the greedy coloring drives the
// color pairs exchanged during the sweeps.
func DomainColoredProblem(p *fem.DomainProblem, constrained mesh.Constraint) (ColoredProblem, error) {
	if constrained == nil {
		constrained = mesh.LeftEdgeClamped
	}
	colorOf := make(map[int]int, len(p.Free))
	for k, id := range p.Free {
		// Recover each free node's color from the ordering: its u-unknown
		// lives in group 2·color.
		_ = k
		colorOf[id] = -1
	}
	inv := p.Ordering.Perm.Inverse()
	groupOf := func(coloredIdx int) int {
		for g := 0; g+1 < len(p.GroupStart); g++ {
			if coloredIdx < p.GroupStart[g+1] {
				return g
			}
		}
		return -1
	}
	for k, id := range p.Free {
		colorOf[id] = groupOf(inv[2*k]) / 2
	}
	g := p.Domain.Grid
	active := make(map[int]bool, len(p.Free))
	for _, id := range p.Domain.ActiveNodes() {
		active[id] = true
	}
	cp := ColoredProblem{
		Grid:       g,
		KColored:   p.KColored,
		RHS:        p.ColoredRHS(),
		GroupStart: p.GroupStart,
		NumColors:  p.NumColors,
		Free:       p.Free,
		ColorOf: func(node int) int {
			c, ok := colorOf[node]
			if !ok {
				return -1
			}
			return c
		},
		ColoredIndex: func(freeIdx, comp int) int { return inv[2*freeIdx+comp] },
		Constrained: func(i, j int) bool {
			return constrained(i, j) || !active[g.NodeID(i, j)]
		},
	}
	return cp, cp.validate()
}

func (cp ColoredProblem) validate() error {
	if cp.NumColors < 1 {
		return fmt.Errorf("femachine: problem has %d colors", cp.NumColors)
	}
	if len(cp.GroupStart) != 2*cp.NumColors+1 {
		return fmt.Errorf("femachine: %d group boundaries for %d colors", len(cp.GroupStart), cp.NumColors)
	}
	if cp.KColored.Rows != 2*len(cp.Free) {
		return fmt.Errorf("femachine: system dim %d != 2×%d free nodes", cp.KColored.Rows, len(cp.Free))
	}
	return nil
}
