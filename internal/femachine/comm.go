package femachine

import "sync"

// message is one border-exchange record: the packaged values of one or two
// unknown colors for the border nodes shared with one neighbor, stamped
// with its simulated arrival time. The channel fabric itself is the shared
// decomp.Links[message]; only the simulated-clock reducer lives here.
type message struct {
	vals    []float64
	arrival float64
}

// reducer is the sum/max circuit and the signal flag network: an all-reduce
// rendezvous across all P processors. Operands are combined in rank order
// so the result is deterministic; the result is stamped
// max(arrival clocks) + circuit latency.
type reducer struct {
	p  int
	tm TimeModel

	mu     sync.Mutex
	cond   *sync.Cond
	gen    int
	count  int
	vals   []float64
	clocks []float64
	result float64
	rclock float64
}

func newReducer(p int, tm TimeModel) *reducer {
	r := &reducer{p: p, tm: tm, vals: make([]float64, p), clocks: make([]float64, p)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// reduceOp identifies which combining hardware is used.
type reduceOp int

const (
	opSum     reduceOp = iota // sum/max circuit, sum mode
	opMax                     // sum/max circuit, max mode
	opFlagMax                 // signal flag network (modeled as a max + test)
)

// allReduce blocks until every processor has contributed, then returns the
// combined value and the synchronized result clock.
func (r *reducer) allReduce(rank int, val, clock float64, op reduceOp) (float64, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	gen := r.gen
	r.vals[rank] = val
	r.clocks[rank] = clock
	r.count++
	if r.count == r.p {
		// Last arrival combines deterministically in rank order.
		acc := r.vals[0]
		tmax := r.clocks[0]
		for i := 1; i < r.p; i++ {
			switch op {
			case opSum:
				acc += r.vals[i]
			case opMax, opFlagMax:
				if r.vals[i] > acc {
					acc = r.vals[i]
				}
			}
			if r.clocks[i] > tmax {
				tmax = r.clocks[i]
			}
		}
		latency := r.tm.reduceCost(r.p)
		if op == opFlagMax {
			latency = r.tm.FlagSync
		}
		r.result = acc
		r.rclock = tmax + latency
		r.count = 0
		r.gen++
		r.cond.Broadcast()
		return r.result, r.rclock
	}
	for gen == r.gen {
		r.cond.Wait()
	}
	return r.result, r.rclock
}
