package femachine

import (
	"math"
	"testing"

	"repro/internal/cg"
	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/splitting"
)

// The §5 extension, completed in parallel: an L-shaped plate colored by the
// greedy colorer, distributed across the machine, must reproduce the serial
// solution with iteration counts independent of P.
func TestDomainMachineMatchesSerial(t *testing.T) {
	d := mesh.LShapedDomain(mesh.NewGrid(9, 9))
	dp, err := fem.NewDomainProblem(d, mesh.LeftEdgeClamped, fem.Material{})
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference.
	serial := func(m int) ([]float64, int) {
		var p precond.Preconditioner = precond.Identity{}
		if m > 0 {
			mc, err := splitting.NewSixColorSSOR(dp.KColored, dp.GroupStart)
			if err != nil {
				t.Fatal(err)
			}
			p, err = precond.NewMStep(mc, poly.Ones(m))
			if err != nil {
				t.Fatal(err)
			}
		}
		u, st, err := cg.Solve(dp.KColored, dp.ColoredRHS(), p, cg.Options{Tol: 1e-6, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		return u, st.Iterations
	}
	for _, m := range []int{0, 1, 2} {
		serialU, serialIters := serial(m)
		for _, procs := range []int{1, 2, 4} {
			strat := mesh.RowStrips
			if procs == 4 {
				strat = mesh.ColStrips
			}
			cfg := Config{
				P: procs, Strategy: strat, M: m,
				Tol: 1e-6, MaxIter: 100000, Time: DefaultTimeModel(),
			}
			if m > 0 {
				cfg.Alphas = poly.Ones(m).Coeffs
			}
			mach, err := NewDomainMachine(dp, mesh.LeftEdgeClamped, cfg)
			if err != nil {
				t.Fatalf("m=%d P=%d: %v", m, procs, err)
			}
			res, err := mach.Run()
			if err != nil {
				t.Fatalf("m=%d P=%d: %v", m, procs, err)
			}
			if di := res.Iterations - serialIters; di > 1 || di < -1 {
				t.Fatalf("m=%d P=%d: %d iterations vs serial %d", m, procs, res.Iterations, serialIters)
			}
			for i := range serialU {
				if dv := math.Abs(res.U[i] - serialU[i]); dv > 2e-6 {
					t.Fatalf("m=%d P=%d: solution deviates at %d by %g", m, procs, i, dv)
				}
			}
		}
	}
}

func TestDomainMachineHoleProblem(t *testing.T) {
	d := mesh.DomainWithHole(mesh.NewGrid(11, 11), 0.4)
	dp, err := fem.NewDomainProblem(d, mesh.LeftEdgeClamped, fem.Material{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		P: 2, Strategy: mesh.RowStrips, M: 2,
		Alphas: poly.Ones(2).Coeffs,
		Tol:    1e-6, MaxIter: 100000, Time: DefaultTimeModel(),
	}
	mach, err := NewDomainMachine(dp, mesh.LeftEdgeClamped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("hole problem did not converge on the machine")
	}
	// Speedup exists over single processor.
	cfg1 := cfg
	cfg1.P = 1
	mach1, err := NewDomainMachine(dp, mesh.LeftEdgeClamped, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := mach1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime >= res1.SimTime {
		t.Fatalf("no speedup: P=2 %g vs P=1 %g", res.SimTime, res1.SimTime)
	}
	if res.Iterations != res1.Iterations {
		t.Fatalf("iterations differ: %d vs %d", res.Iterations, res1.Iterations)
	}
}
