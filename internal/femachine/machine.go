package femachine

import (
	"fmt"
	"sync"

	"repro/internal/decomp"
	"repro/internal/fem"
	"repro/internal/mesh"
)

// Config selects a machine run.
type Config struct {
	P        int
	Strategy mesh.Strategy
	// M is the preconditioner step count (0 = plain CG); Alphas must have
	// length M when M > 0 (use poly.Ones(m).Coeffs for the unparametrized
	// method).
	M       int
	Alphas  []float64
	Tol     float64 // paper's ‖Δu‖_∞ threshold
	MaxIter int
	Time    TimeModel
}

// Result reports a machine run.
type Result struct {
	U          []float64 // solution in the global multicolor ordering
	Iterations int
	Converged  bool
	// SimTime is the maximum final processor clock — wall time on the
	// machine.
	SimTime float64
	// Breakdown (summed over processors):
	ComputeTime     float64 // flop charges
	PrecondCommTime float64 // border exchanges inside the preconditioner
	HaloCommTime    float64 // p-vector border exchanges in CG proper
	ReduceWaitTime  float64 // inner-product and flag synchronizations
	// Message/reduction counters.
	PrecondExchanges int
	HaloExchanges    int
	Reductions       int
}

// Machine is a configured Finite Element Machine ready to solve one
// multicolor-ordered problem. Its per-processor layout (rows, borders,
// halos, neighbor links) is the shared decomp.Decomposition — the same
// structure the real decomposed backend executes — with the simulated
// TimeModel clock layered on as an observer.
type Machine struct {
	cfg   Config
	dec   *decomp.Decomposition
	procs []*proc
	links *decomp.Links[message]
	red   *reducer
}

// New builds the machine for the paper's plate problem.
func New(plate *fem.Plate, cfg Config) (*Machine, error) {
	return NewMachine(PlateProblem(plate), cfg)
}

// NewDomainMachine builds the machine for an irregular-region problem —
// the parallel completion of the paper's §5 future work.
func NewDomainMachine(p *fem.DomainProblem, constrained mesh.Constraint, cfg Config) (*Machine, error) {
	cp, err := DomainColoredProblem(p, constrained)
	if err != nil {
		return nil, err
	}
	return NewMachine(cp, cfg)
}

// NewMachine builds the machine for any multicolor-ordered problem: it
// partitions the free nodes, extracts each processor's rows of the colored
// system, and wires the neighbor links.
func NewMachine(prob ColoredProblem, cfg Config) (*Machine, error) {
	if err := cfg.Time.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tol <= 0 {
		return nil, fmt.Errorf("femachine: Tol must be positive")
	}
	n := prob.KColored.Rows
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 10 * n
	}
	if cfg.M < 0 || (cfg.M > 0 && len(cfg.Alphas) != cfg.M) {
		return nil, fmt.Errorf("femachine: need len(Alphas) == M, got %d vs %d", len(cfg.Alphas), cfg.M)
	}
	dec, err := decomp.New(prob, cfg.P, cfg.Strategy)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg: cfg, dec: dec,
		red: newReducer(cfg.P, cfg.Time),
		// Link buffers are provisioned for the exchange schedule's
		// in-flight bound, with payload rings sized per neighbor from the
		// partition's actual border width (Subdomain.MaxSendWords) — see
		// newProc — so large borders cannot deadlock an exchange.
		links: decomp.NewLinks[message](dec, decomp.LinkDepth),
	}
	for p := 0; p < cfg.P; p++ {
		m.procs = append(m.procs, newProc(m, dec.Subs[p]))
	}
	return m, nil
}

// Run executes the machine: one goroutine per processor. It gathers the
// distributed solution back into the global multicolor ordering.
func (m *Machine) Run() (Result, error) {
	var wg sync.WaitGroup
	errs := make([]error, m.cfg.P)
	for p := 0; p < m.cfg.P; p++ {
		wg.Add(1)
		go func(lp *proc) {
			defer wg.Done()
			errs[lp.sub.Rank] = lp.solve()
		}(m.procs[p])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{U: make([]float64, m.dec.Prob.KColored.Rows)}
	for _, lp := range m.procs {
		for i, gidx := range lp.sub.ColoredIdx {
			res.U[gidx] = lp.u[i]
		}
		if lp.clock > res.SimTime {
			res.SimTime = lp.clock
		}
		res.ComputeTime += lp.computeTime
		res.PrecondCommTime += lp.precondCommTime
		res.HaloCommTime += lp.haloCommTime
		res.ReduceWaitTime += lp.reduceWaitTime
		res.PrecondExchanges += lp.precondExchanges
		res.HaloExchanges += lp.haloExchanges
		res.Reductions += lp.reductions
	}
	res.Iterations = m.procs[0].iterations
	res.Converged = m.procs[0].converged
	return res, nil
}

// proc is one simulated processor: a shared immutable subdomain layout
// plus this run's vectors, clock and counters.
type proc struct {
	m   *Machine
	sub *decomp.Subdomain

	// run state
	u, r, kp   []float64 // own dofs
	rhat, pvec []float64 // own + halo dofs
	ycache     []float64 // Conrad–Wallach cache, own dofs

	// Double-buffered send payloads per neighbor, sized from the
	// partition's border width: the receiver copies a message out before
	// its sender can cycle back to the same slot, so two slots suffice
	// and exchanges never allocate.
	sendBufs [][2][]float64
	sendIdx  []int

	clock      float64
	iterations int
	converged  bool

	computeTime      float64
	precondCommTime  float64
	haloCommTime     float64
	reduceWaitTime   float64
	precondExchanges int
	haloExchanges    int
	reductions       int
}

func newProc(m *Machine, sub *decomp.Subdomain) *proc {
	nd := 2 * sub.NOwn
	lp := &proc{
		m: m, sub: sub,
		u: make([]float64, nd), r: make([]float64, nd), kp: make([]float64, nd),
		rhat: make([]float64, 2*sub.NAll), pvec: make([]float64, 2*sub.NAll),
		ycache:   make([]float64, nd),
		sendBufs: make([][2][]float64, len(sub.Neighbors)),
		sendIdx:  make([]int, len(sub.Neighbors)),
	}
	for ni, q := range sub.Neighbors {
		words := sub.MaxSendWords[q]
		lp.sendBufs[ni] = [2][]float64{
			make([]float64, 0, words),
			make([]float64, 0, words),
		}
	}
	return lp
}
