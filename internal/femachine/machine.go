package femachine

import (
	"fmt"
	"sync"

	"repro/internal/fem"
	"repro/internal/mesh"
)

// Config selects a machine run.
type Config struct {
	P        int
	Strategy mesh.Strategy
	// M is the preconditioner step count (0 = plain CG); Alphas must have
	// length M when M > 0 (use poly.Ones(m).Coeffs for the unparametrized
	// method).
	M       int
	Alphas  []float64
	Tol     float64 // paper's ‖Δu‖_∞ threshold
	MaxIter int
	Time    TimeModel
}

// Result reports a machine run.
type Result struct {
	U          []float64 // solution in the global multicolor ordering
	Iterations int
	Converged  bool
	// SimTime is the maximum final processor clock — wall time on the
	// machine.
	SimTime float64
	// Breakdown (summed over processors):
	ComputeTime     float64 // flop charges
	PrecondCommTime float64 // border exchanges inside the preconditioner
	HaloCommTime    float64 // p-vector border exchanges in CG proper
	ReduceWaitTime  float64 // inner-product and flag synchronizations
	// Message/reduction counters.
	PrecondExchanges int
	HaloExchanges    int
	Reductions       int
}

// Machine is a configured Finite Element Machine ready to solve one
// multicolor-ordered problem.
type Machine struct {
	cfg   Config
	prob  ColoredProblem
	part  *mesh.Partition
	procs []*proc
	links *links
	red   *reducer

	numColors int
	numGroups int
	allColors []int
	// colored-index lookup tables shared by every processor build
	nodeOfColored  []int
	compOfColored  []int
	groupOfColored []int
	freePos        map[int]int
}

// New builds the machine for the paper's plate problem.
func New(plate *fem.Plate, cfg Config) (*Machine, error) {
	return NewMachine(PlateProblem(plate), cfg)
}

// NewDomainMachine builds the machine for an irregular-region problem —
// the parallel completion of the paper's §5 future work.
func NewDomainMachine(p *fem.DomainProblem, constrained mesh.Constraint, cfg Config) (*Machine, error) {
	cp, err := DomainColoredProblem(p, constrained)
	if err != nil {
		return nil, err
	}
	return NewMachine(cp, cfg)
}

// NewMachine builds the machine for any multicolor-ordered problem: it
// partitions the free nodes, extracts each processor's rows of the colored
// system, and wires the neighbor links.
func NewMachine(prob ColoredProblem, cfg Config) (*Machine, error) {
	if err := cfg.Time.Validate(); err != nil {
		return nil, err
	}
	if err := prob.validate(); err != nil {
		return nil, err
	}
	if cfg.Tol <= 0 {
		return nil, fmt.Errorf("femachine: Tol must be positive")
	}
	n := prob.KColored.Rows
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 10 * n
	}
	if cfg.M < 0 || (cfg.M > 0 && len(cfg.Alphas) != cfg.M) {
		return nil, fmt.Errorf("femachine: need len(Alphas) == M, got %d vs %d", len(cfg.Alphas), cfg.M)
	}
	part, err := mesh.NewPartition(prob.Grid, prob.Constrained, cfg.P, cfg.Strategy)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg: cfg, prob: prob, part: part,
		red:       newReducer(cfg.P, cfg.Time),
		numColors: prob.NumColors,
		numGroups: 2 * prob.NumColors,
	}
	for c := 0; c < m.numColors; c++ {
		m.allColors = append(m.allColors, c)
	}
	// Colored-index lookup tables.
	m.nodeOfColored = make([]int, n)
	m.compOfColored = make([]int, n)
	m.groupOfColored = make([]int, n)
	m.freePos = make(map[int]int, len(prob.Free))
	for k, id := range prob.Free {
		m.freePos[id] = k
		for comp := 0; comp < 2; comp++ {
			ci := prob.ColoredIndex(k, comp)
			m.nodeOfColored[ci] = id
			m.compOfColored[ci] = comp
		}
	}
	for g := 0; g < m.numGroups; g++ {
		for i := prob.GroupStart[g]; i < prob.GroupStart[g+1]; i++ {
			m.groupOfColored[i] = g
		}
	}

	var pairs [][2]int
	for p := 0; p < cfg.P; p++ {
		for _, q := range part.NeighborProcs(p) {
			pairs = append(pairs, [2]int{p, q})
		}
	}
	m.links = newLinks(pairs)
	for p := 0; p < cfg.P; p++ {
		lp, err := buildProc(m, p)
		if err != nil {
			return nil, err
		}
		m.procs = append(m.procs, lp)
	}
	return m, nil
}

// Run executes the machine: one goroutine per processor. It gathers the
// distributed solution back into the global multicolor ordering.
func (m *Machine) Run() (Result, error) {
	var wg sync.WaitGroup
	errs := make([]error, m.cfg.P)
	for p := 0; p < m.cfg.P; p++ {
		wg.Add(1)
		go func(lp *proc) {
			defer wg.Done()
			errs[lp.rank] = lp.solve()
		}(m.procs[p])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{U: make([]float64, m.prob.KColored.Rows)}
	for _, lp := range m.procs {
		for i, gidx := range lp.coloredIdx {
			res.U[gidx] = lp.u[i]
		}
		if lp.clock > res.SimTime {
			res.SimTime = lp.clock
		}
		res.ComputeTime += lp.computeTime
		res.PrecondCommTime += lp.precondCommTime
		res.HaloCommTime += lp.haloCommTime
		res.ReduceWaitTime += lp.reduceWaitTime
		res.PrecondExchanges += lp.precondExchanges
		res.HaloExchanges += lp.haloExchanges
		res.Reductions += lp.reductions
	}
	res.Iterations = m.procs[0].iterations
	res.Converged = m.procs[0].converged
	return res, nil
}

// proc is one processor's static data and run state.
type proc struct {
	m    *Machine
	rank int

	ownNodes  []int // natural node ids, ascending
	haloNodes []int
	liOf      map[int]int // natural node id -> local node index (own then halo)
	nOwn      int
	nAll      int

	// Row data for own dofs (flat index 2*localNode+comp), with entries
	// sorted by the global colored order and segmented by unknown group
	// (rowSeg[flat] has numGroups+1 boundaries).
	rowCols [][]int32 // local flat column indices (may point into halo)
	rowVals [][]float64
	rowSeg  [][]int32
	diag    []float64
	f       []float64

	colorOwn [][]int // own local node indices per node color

	neighbors []int
	sendNodes map[int][][]int // per neighbor, per color: own local node indices to send
	recvNodes map[int][][]int // per neighbor, per color: halo local node indices to fill

	coloredIdx []int // own flat dof -> global colored index

	// run state
	u, r, kp   []float64 // own dofs
	rhat, pvec []float64 // own + halo dofs
	ycache     []float64 // Conrad–Wallach cache, own dofs
	clock      float64
	iterations int
	converged  bool

	computeTime      float64
	precondCommTime  float64
	haloCommTime     float64
	reduceWaitTime   float64
	precondExchanges int
	haloExchanges    int
	reductions       int
}

// buildProc extracts processor p's slice of the global colored system.
func buildProc(m *Machine, p int) (*proc, error) {
	prob, part := m.prob, m.part
	lp := &proc{m: m, rank: p}
	lp.ownNodes = part.Nodes[p]
	lp.haloNodes = part.HaloNodes(p)
	lp.nOwn = len(lp.ownNodes)
	lp.nAll = lp.nOwn + len(lp.haloNodes)
	lp.liOf = make(map[int]int, lp.nAll)
	for i, id := range lp.ownNodes {
		lp.liOf[id] = i
	}
	for i, id := range lp.haloNodes {
		lp.liOf[id] = lp.nOwn + i
	}
	lp.colorOwn = make([][]int, m.numColors)
	for i, id := range lp.ownNodes {
		c := prob.ColorOf(id)
		if c < 0 || c >= m.numColors {
			return nil, fmt.Errorf("femachine: node %d has color %d outside [0,%d)", id, c, m.numColors)
		}
		lp.colorOwn[c] = append(lp.colorOwn[c], i)
	}

	kc := prob.KColored
	nd := 2 * lp.nOwn
	lp.rowCols = make([][]int32, nd)
	lp.rowVals = make([][]float64, nd)
	lp.rowSeg = make([][]int32, nd)
	lp.diag = make([]float64, nd)
	lp.f = make([]float64, nd)
	lp.coloredIdx = make([]int, nd)

	for li, id := range lp.ownNodes {
		freeK, ok := m.freePos[id]
		if !ok {
			return nil, fmt.Errorf("femachine: constrained node %d assigned to processor %d", id, p)
		}
		for comp := 0; comp < 2; comp++ {
			row := prob.ColoredIndex(freeK, comp)
			flat := 2*li + comp
			lp.coloredIdx[flat] = row
			lp.f[flat] = prob.RHS[row]
			seg := make([]int32, m.numGroups+1)
			curGroup := 0
			for k := kc.RowPtr[row]; k < kc.RowPtr[row+1]; k++ {
				col := kc.ColIdx[k]
				if col == row {
					lp.diag[flat] = kc.Val[k]
					// The diagonal also stays in the row (inside its own
					// group's segment) so K·p sums in exactly the serial
					// column order; the sweeps' one-sided sums never touch
					// the within-group segment.
				}
				g := m.groupOfColored[col]
				for curGroup < g {
					curGroup++
					seg[curGroup] = int32(len(lp.rowCols[flat]))
				}
				colNode := m.nodeOfColored[col]
				colComp := m.compOfColored[col]
				colLi, ok := lp.liOf[colNode]
				if !ok {
					return nil, fmt.Errorf("femachine: proc %d row for node %d references node %d outside own+halo", p, id, colNode)
				}
				lp.rowCols[flat] = append(lp.rowCols[flat], int32(2*colLi+colComp))
				lp.rowVals[flat] = append(lp.rowVals[flat], kc.Val[k])
			}
			for curGroup < m.numGroups {
				curGroup++
				seg[curGroup] = int32(len(lp.rowCols[flat]))
			}
			lp.rowSeg[flat] = seg
			if lp.diag[flat] <= 0 {
				return nil, fmt.Errorf("femachine: non-positive diagonal at proc %d dof %d", p, flat)
			}
		}
	}

	lp.neighbors = part.NeighborProcs(p)
	lp.sendNodes = make(map[int][][]int, len(lp.neighbors))
	lp.recvNodes = make(map[int][][]int, len(lp.neighbors))
	for _, q := range lp.neighbors {
		snd := make([][]int, m.numColors)
		rcv := make([][]int, m.numColors)
		for _, id := range part.BorderNodes(p, q) {
			c := prob.ColorOf(id)
			snd[c] = append(snd[c], lp.liOf[id])
		}
		for _, id := range part.BorderNodes(q, p) {
			c := prob.ColorOf(id)
			rcv[c] = append(rcv[c], lp.liOf[id])
		}
		lp.sendNodes[q] = snd
		lp.recvNodes[q] = rcv
	}

	lp.u = make([]float64, nd)
	lp.r = make([]float64, nd)
	lp.kp = make([]float64, nd)
	lp.rhat = make([]float64, 2*lp.nAll)
	lp.pvec = make([]float64, 2*lp.nAll)
	lp.ycache = make([]float64, nd)
	return lp, nil
}
