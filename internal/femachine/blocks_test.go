package femachine

import (
	"math"
	"testing"

	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/poly"
)

// Blocks-partitioned machines (Figure 3's rectangular assignments) must
// reproduce the serial solution on larger plates.
func TestBlocksPartitionMatchesSerial(t *testing.T) {
	plate, err := fem.NewPlate(12, 13, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{0, 2} {
		serialU, serialStats := serialSolve(t, plate, m, 1e-6)
		for _, p := range []int{4, 6, 9} {
			cfg := Config{
				P: p, Strategy: mesh.Blocks, M: m,
				Tol: 1e-6, MaxIter: 100000, Time: DefaultTimeModel(),
			}
			if m > 0 {
				cfg.Alphas = poly.Ones(m).Coeffs
			}
			mach, err := New(plate, cfg)
			if err != nil {
				t.Fatalf("P=%d: %v", p, err)
			}
			res, err := mach.Run()
			if err != nil {
				t.Fatalf("P=%d: %v", p, err)
			}
			if di := res.Iterations - serialStats.Iterations; di > 1 || di < -1 {
				t.Fatalf("m=%d P=%d: %d iterations vs serial %d", m, p, res.Iterations, serialStats.Iterations)
			}
			for i := range serialU {
				if d := math.Abs(res.U[i] - serialU[i]); d > 1e-6 {
					t.Fatalf("m=%d P=%d: solution deviates at %d by %g", m, p, i, d)
				}
			}
		}
	}
}

func TestBlocksSpeedupScalesWithP(t *testing.T) {
	plate, err := fem.NewPlate(12, 13, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	simTime := func(p int, strat mesh.Strategy) float64 {
		cfg := Config{P: p, Strategy: strat, M: 0, Tol: 1e-6, MaxIter: 100000, Time: DefaultTimeModel()}
		mach, err := New(plate, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mach.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	t1 := simTime(1, mesh.RowStrips)
	t4 := simTime(4, mesh.Blocks)
	t9 := simTime(9, mesh.Blocks)
	if s4 := t1 / t4; s4 <= 2 || s4 > 4 {
		t.Fatalf("4-block speedup %g outside (2, 4]", s4)
	}
	if s9 := t1 / t9; s9 <= t1/t4 || s9 > 9 {
		t.Fatalf("9-block speedup %g not above 4-block or above ideal", s9)
	}
}

func TestMaxIterErrorSurfaces(t *testing.T) {
	plate, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{P: 2, Strategy: mesh.RowStrips, M: 0, Tol: 1e-14, MaxIter: 2, Time: DefaultTimeModel()}
	mach, err := New(plate, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err == nil {
		t.Fatal("expected max-iteration error")
	}
}
