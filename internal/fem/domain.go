package fem

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/sparse"
)

// DomainProblem is the plane-stress problem assembled over an irregular
// region — the paper's §5 future-work case. The node coloring comes from
// the greedy graph colorer rather than the structured (i+j) mod 3 rule, so
// the number of unknown groups is 2 × (colors found).
type DomainProblem struct {
	Domain    mesh.Domain
	Mat       Material
	Free      []int // natural ids of free active nodes
	NumColors int

	K          *sparse.CSR // reduced stiffness, natural reduced ordering
	F          []float64
	Ordering   *mesh.GeneralOrdering
	KColored   *sparse.CSR
	GroupStart []int
}

// N returns the number of unknowns.
func (p *DomainProblem) N() int { return 2 * len(p.Free) }

// NewDomainProblem assembles plane stress over the domain's triangles with
// a unit x-direction body force (lumped per element), clamping the nodes
// selected by constrained. The node coloring is computed greedily on the
// triangle-sharing graph and validated.
func NewDomainProblem(d mesh.Domain, constrained mesh.Constraint, mat Material) (*DomainProblem, error) {
	if mat == (Material{}) {
		mat = DefaultMaterial
	}
	if err := mat.Validate(); err != nil {
		return nil, err
	}
	if constrained == nil {
		constrained = mesh.LeftEdgeClamped
	}
	g := d.Grid

	// Color the active-node graph.
	activeNodes, adj := d.Adjacency()
	colors, numColors := mesh.GreedyColoring(adj)
	if err := mesh.VerifyGraphColoring(adj, colors); err != nil {
		return nil, err
	}
	colorOfNode := make(map[int]int, len(activeNodes))
	for k, id := range activeNodes {
		colorOfNode[id] = colors[k]
	}

	p := &DomainProblem{Domain: d, Mat: mat, NumColors: numColors}
	freePos := map[int]int{}
	for _, id := range activeNodes {
		i, j := g.NodeRC(id)
		if constrained(i, j) {
			continue
		}
		freePos[id] = len(p.Free)
		p.Free = append(p.Free, id)
	}
	if len(p.Free) == 0 {
		return nil, fmt.Errorf("fem: every active node is constrained")
	}
	dof := func(id, comp int) int {
		k, ok := freePos[id]
		if !ok {
			return -1
		}
		return 2*k + comp
	}

	n := p.N()
	coo := sparse.NewCOO(n, n)
	p.F = make([]float64, n)
	for _, tr := range d.Triangles() {
		var x, y [3]float64
		for k, id := range tr {
			i, j := g.NodeRC(id)
			x[k], y[k] = g.XY(i, j)
		}
		ke, err := CSTStiffness(mat, x, y)
		if err != nil {
			return nil, err
		}
		area := ((x[1]-x[0])*(y[2]-y[0]) - (x[2]-x[0])*(y[1]-y[0])) / 2
		var dofs [6]int
		for k, id := range tr {
			dofs[2*k] = dof(id, 0)
			dofs[2*k+1] = dof(id, 1)
			// Lumped unit x-body-force: t·area/3 per vertex.
			if du := dofs[2*k]; du >= 0 {
				p.F[du] += mat.T * area / 3
			}
		}
		for a := 0; a < 6; a++ {
			if dofs[a] < 0 {
				continue
			}
			for b := 0; b < 6; b++ {
				if dofs[b] < 0 {
					continue
				}
				coo.Add(dofs[a], dofs[b], ke.At(a, b))
			}
		}
	}
	p.K = coo.ToCSR()

	ord, err := mesh.NewGeneralOrdering(len(p.Free), func(freeIdx int) int {
		return colorOfNode[p.Free[freeIdx]]
	}, numColors)
	if err != nil {
		return nil, err
	}
	p.Ordering = ord
	p.KColored = sparse.PermuteSym(p.K, ord.Perm)
	p.GroupStart = ord.GroupStart
	return p, nil
}

// ColoredRHS returns the load vector in the multicolor ordering.
func (p *DomainProblem) ColoredRHS() []float64 { return p.Ordering.Perm.ApplyVec(p.F) }

// UncolorSolution maps a colored solution back to the natural reduced
// ordering.
func (p *DomainProblem) UncolorSolution(x []float64) []float64 {
	return p.Ordering.Perm.UnapplyVec(x)
}
