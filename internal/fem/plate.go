package fem

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/sparse"
)

// Plate is the assembled, constrained plane-stress test problem.
//
// The reduced system K·u = F is in "natural" reduced ordering: free node k
// (the k-th entry of Free) owns unknowns 2k (u-displacement) and 2k+1
// (v-displacement). Ordering carries the 6-color permutation; KColored is
// the permuted matrix with the block structure of eq. (3.1).
type Plate struct {
	Grid        mesh.Grid
	Mat         Material
	Constrained mesh.Constraint
	Free        []int // natural ids of free nodes
	freePos     map[int]int

	K        *sparse.CSR // reduced stiffness, natural reduced ordering
	F        []float64   // reduced load vector
	Ordering *mesh.MulticolorOrdering
	KColored *sparse.CSR // Pᵀ K P under the 6-color ordering
}

// N returns the number of unknowns 2·len(Free).
func (p *Plate) N() int { return 2 * len(p.Free) }

// FreeIndex returns the free-list position of a natural node id, or -1 if
// the node is constrained.
func (p *Plate) FreeIndex(node int) int {
	if k, ok := p.freePos[node]; ok {
		return k
	}
	return -1
}

// DOF returns the reduced unknown index of component comp (0=u, 1=v) at the
// given natural node id, or -1 when constrained.
func (p *Plate) DOF(node, comp int) int {
	k := p.FreeIndex(node)
	if k < 0 {
		return -1
	}
	return 2*k + comp
}

// Options configure plate construction.
type Options struct {
	Mat         Material
	Constrained mesh.Constraint // default: left edge clamped
	// Traction is the uniform x-direction edge load applied to the right
	// edge (consistent nodal lumping). Default 1.
	Traction float64
}

// NewPlate assembles the rows×cols plate. It panics only for programming
// errors; physically invalid input returns an error.
func NewPlate(rows, cols int, opt Options) (*Plate, error) {
	if opt.Mat == (Material{}) {
		opt.Mat = DefaultMaterial
	}
	if err := opt.Mat.Validate(); err != nil {
		return nil, err
	}
	if opt.Constrained == nil {
		opt.Constrained = mesh.LeftEdgeClamped
	}
	if opt.Traction == 0 {
		opt.Traction = 1
	}
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("fem: plate needs at least 2×2 nodes, got %d×%d", rows, cols)
	}
	g := mesh.NewGrid(rows, cols)
	p := &Plate{Grid: g, Mat: opt.Mat, Constrained: opt.Constrained}
	p.Free = g.FreeNodes(opt.Constrained)
	if len(p.Free) == 0 {
		return nil, fmt.Errorf("fem: every node is constrained")
	}
	p.freePos = make(map[int]int, len(p.Free))
	for k, id := range p.Free {
		p.freePos[id] = k
	}

	n := p.N()
	coo := sparse.NewCOO(n, n)
	for _, tr := range g.Triangles() {
		var x, y [3]float64
		for k, id := range tr {
			i, j := g.NodeRC(id)
			x[k], y[k] = g.XY(i, j)
		}
		ke, err := CSTStiffness(opt.Mat, x, y)
		if err != nil {
			return nil, err
		}
		// Scatter into the reduced system, skipping constrained dofs
		// (homogeneous Dirichlet: their columns contribute nothing).
		var dof [6]int
		for k, id := range tr {
			dof[2*k] = p.DOF(id, 0)
			dof[2*k+1] = p.DOF(id, 1)
		}
		for a := 0; a < 6; a++ {
			if dof[a] < 0 {
				continue
			}
			for b := 0; b < 6; b++ {
				if dof[b] < 0 {
					continue
				}
				coo.Add(dof[a], dof[b], ke.At(a, b))
			}
		}
	}
	p.K = coo.ToCSR()

	// Consistent nodal load: uniform x-traction on the right edge. Each
	// vertical edge segment of length h contributes t·traction·h/2 to the
	// u-unknown of both end nodes.
	p.F = make([]float64, n)
	h := 1.0 / float64(rows-1)
	for i := 0; i < rows-1; i++ {
		for _, node := range []int{g.NodeID(i, cols-1), g.NodeID(i+1, cols-1)} {
			if d := p.DOF(node, 0); d >= 0 {
				p.F[d] += opt.Mat.T * opt.Traction * h / 2
			}
		}
	}

	p.Ordering = g.NewMulticolorOrdering(p.Free)
	p.KColored = sparse.PermuteSym(p.K, p.Ordering.Perm)
	return p, nil
}

// ColoredRHS returns the load vector permuted into the 6-color ordering.
func (p *Plate) ColoredRHS() []float64 { return p.Ordering.Perm.ApplyVec(p.F) }

// UncolorSolution maps a solution of the colored system back to the natural
// reduced ordering.
func (p *Plate) UncolorSolution(x []float64) []float64 {
	return p.Ordering.Perm.UnapplyVec(x)
}

// StencilOffsets returns the set of (di, dj, comp-pair) offsets with
// nonzero coupling for an interior node — the paper's Figure 2 stencil.
// The returned map keys are [3]int{di, dj, comp} where comp encodes the
// 2×2 u/v coupling block position (0..3).
func (p *Plate) StencilOffsets() map[[3]int]bool {
	g := p.Grid
	// Pick an interior free node away from all boundaries.
	var center int = -1
	for _, id := range p.Free {
		i, j := g.NodeRC(id)
		if i > 0 && i < g.Rows-1 && j > 1 && j < g.Cols-1 {
			if p.FreeIndex(id) >= 0 {
				center = id
				break
			}
		}
	}
	out := map[[3]int]bool{}
	if center < 0 {
		return out
	}
	ci, cj := g.NodeRC(center)
	for a := 0; a < 2; a++ {
		row := p.DOF(center, a)
		for k := p.K.RowPtr[row]; k < p.K.RowPtr[row+1]; k++ {
			col := p.K.ColIdx[k]
			nodeK := col / 2
			b := col % 2
			nid := p.Free[nodeK]
			ni, nj := g.NodeRC(nid)
			out[[3]int{ni - ci, nj - cj, 2*a + b}] = true
		}
	}
	return out
}
