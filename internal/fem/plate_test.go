package fem

import (
	"math"
	"testing"

	"repro/internal/la"
	"repro/internal/mesh"
)

func mustPlate(t *testing.T, rows, cols int) *Plate {
	t.Helper()
	p, err := NewPlate(rows, cols, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlateDimensionsMatchPaper(t *testing.T) {
	// The paper's FEM test problem: 6 rows, 6 columns of nodes, left edge
	// clamped → 60 equations. "2ab" with a=6 rows, b=5 unconstrained cols.
	p := mustPlate(t, 6, 6)
	if p.N() != 60 {
		t.Fatalf("N = %d, want 60", p.N())
	}
}

func TestPlateSymmetricSPD(t *testing.T) {
	p := mustPlate(t, 5, 5)
	if !p.K.IsSymmetric(1e-10) {
		t.Fatal("K not symmetric")
	}
	// SPD via dense Cholesky on this small case.
	n := p.N()
	dense := la.NewMatrix(n, n)
	for i, row := range p.K.Dense() {
		copy(dense.Data[i*n:(i+1)*n], row)
	}
	if _, err := la.Cholesky(dense); err != nil {
		t.Fatalf("K not SPD: %v", err)
	}
}

func TestPlateMaxRowNNZIs14(t *testing.T) {
	// Figure 2: each equation couples to at most 7 nodes × 2 components.
	p := mustPlate(t, 8, 9)
	if got := p.K.MaxRowNNZ(); got > 14 {
		t.Fatalf("max row nnz = %d, exceeds the paper's 14", got)
	}
	// With the right-triangle mesh and isotropic material a few u/v
	// cross-couplings cancel exactly, so interior rows carry 12 stored
	// entries; 14 is the paper's storage reservation ("at most 14").
	if got := p.K.MaxRowNNZ(); got < 12 {
		t.Fatalf("max row nnz = %d, want >= 12 for an interior node", got)
	}
}

func TestPlateStencilMatchesFigure2(t *testing.T) {
	p := mustPlate(t, 8, 9)
	st := p.StencilOffsets()
	// Node offsets must be exactly the 7 of Figure 2.
	nodes := map[[2]int]bool{}
	for k := range st {
		nodes[[2]int{k[0], k[1]}] = true
	}
	want := [][2]int{{0, 0}, {0, 1}, {0, -1}, {1, 0}, {-1, 0}, {1, 1}, {-1, -1}}
	if len(nodes) != len(want) {
		t.Fatalf("stencil has %d node offsets, want %d: %v", len(nodes), len(want), nodes)
	}
	for _, w := range want {
		if !nodes[w] {
			t.Fatalf("stencil missing offset %v", w)
		}
	}
}

func TestPlateColoredBlockStructure(t *testing.T) {
	// Eq. (3.1): with the 6-color ordering, the diagonal blocks D_cc are
	// diagonal matrices, and the same-color u/v blocks (B12, B34, B56) are
	// diagonal too.
	p := mustPlate(t, 6, 6)
	o := p.Ordering
	kc := p.KColored
	groupOf := func(idx int) (mesh.UnknownGroup, int) {
		g := o.GroupOfNew(idx)
		return g, idx - o.GroupStart[g]
	}
	for i := 0; i < kc.Rows; i++ {
		gi, oi := groupOf(i)
		for k := kc.RowPtr[i]; k < kc.RowPtr[i+1]; k++ {
			j := kc.ColIdx[k]
			gj, oj := groupOf(j)
			if gi == gj && i != j {
				t.Fatalf("D_%v not diagonal: entry (%d,%d)", gi, i, j)
			}
			// Same color, different component (u-v coupling at a node):
			// the block must be diagonal.
			if gi/2 == gj/2 && gi != gj && oi != oj {
				t.Fatalf("B block %v-%v not diagonal: offsets %d vs %d", gi, gj, oi, oj)
			}
		}
	}
}

func TestPlateLoadOnRightEdgeOnly(t *testing.T) {
	p := mustPlate(t, 6, 6)
	for k, id := range p.Free {
		_, j := p.Grid.NodeRC(id)
		fu, fv := p.F[2*k], p.F[2*k+1]
		if j == p.Grid.Cols-1 {
			if fu <= 0 {
				t.Fatalf("right edge node %d has no x-load", id)
			}
		} else if fu != 0 {
			t.Fatalf("interior node %d loaded: %g", id, fu)
		}
		if fv != 0 {
			t.Fatalf("node %d has y-load %g", id, fv)
		}
	}
	// Total load equals traction × edge length × thickness = 1·1·1.
	var sum float64
	for _, f := range p.F {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("total load %g, want 1", sum)
	}
}

func TestColoredSystemConsistent(t *testing.T) {
	// The colored system is an exact symmetric permutation: solving either
	// must describe the same physics. Verify K_c·(Px) = P·(Kx).
	p := mustPlate(t, 5, 7)
	x := make([]float64, p.N())
	for i := range x {
		x[i] = math.Sin(float64(3*i + 1))
	}
	lhs := p.KColored.MulVec(p.Ordering.Perm.ApplyVec(x))
	rhs := p.Ordering.Perm.ApplyVec(p.K.MulVec(x))
	for i := range lhs {
		if math.Abs(lhs[i]-rhs[i]) > 1e-12 {
			t.Fatalf("colored system inconsistent at %d", i)
		}
	}
	// Round trip of the RHS.
	back := p.UncolorSolution(p.ColoredRHS())
	for i := range back {
		if back[i] != p.F[i] {
			t.Fatal("ColoredRHS/UncolorSolution round trip failed")
		}
	}
}

func TestPlateDOFMapping(t *testing.T) {
	p := mustPlate(t, 4, 4)
	// Constrained nodes have no dof.
	if p.DOF(p.Grid.NodeID(0, 0), 0) != -1 {
		t.Fatal("constrained node has dof")
	}
	if p.FreeIndex(p.Grid.NodeID(1, 0)) != -1 {
		t.Fatal("constrained node has free index")
	}
	// Free nodes map consistently.
	for k, id := range p.Free {
		if p.DOF(id, 0) != 2*k || p.DOF(id, 1) != 2*k+1 {
			t.Fatalf("dof mapping broken for node %d", id)
		}
	}
}

func TestPlateErrors(t *testing.T) {
	if _, err := NewPlate(1, 5, Options{}); err == nil {
		t.Fatal("1-row plate accepted")
	}
	if _, err := NewPlate(4, 4, Options{Mat: Material{E: -1, Nu: 0.3, T: 1}}); err == nil {
		t.Fatal("bad material accepted")
	}
	all := func(i, j int) bool { return true }
	if _, err := NewPlate(4, 4, Options{Constrained: all}); err == nil {
		t.Fatal("fully constrained plate accepted")
	}
}

func TestPlateCustomConstraint(t *testing.T) {
	// Clamp the bottom edge instead.
	bottom := func(i, j int) bool { return i == 0 }
	p, err := NewPlate(5, 4, Options{Constrained: bottom})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2*4*4 {
		t.Fatalf("N = %d, want 32", p.N())
	}
	if !p.K.IsSymmetric(1e-10) {
		t.Fatal("K not symmetric under custom constraint")
	}
}
