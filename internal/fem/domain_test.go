package fem

import (
	"math"
	"testing"

	"repro/internal/mesh"
)

func lshape(t *testing.T, size int) *DomainProblem {
	t.Helper()
	d := mesh.LShapedDomain(mesh.NewGrid(size, size))
	p, err := NewDomainProblem(d, mesh.LeftEdgeClamped, Material{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDomainProblemSymmetricWithValidColoring(t *testing.T) {
	p := lshape(t, 7)
	if !p.K.IsSymmetric(1e-10) {
		t.Fatal("K not symmetric")
	}
	if p.NumColors < 3 {
		t.Fatalf("coloring used %d colors, need >= 3", p.NumColors)
	}
	if len(p.GroupStart) != 2*p.NumColors+1 {
		t.Fatalf("group starts %d for %d colors", len(p.GroupStart), p.NumColors)
	}
	if p.GroupStart[len(p.GroupStart)-1] != p.N() {
		t.Fatal("groups do not cover the system")
	}
}

func TestDomainColoredDecoupled(t *testing.T) {
	// The whole point of the coloring: within a group, the colored matrix
	// must be diagonal (checked by the multicolor splitting constructor in
	// solver paths; verified directly here).
	p := lshape(t, 8)
	kc := p.KColored
	groupOf := func(idx int) int {
		for g := 0; g+1 < len(p.GroupStart); g++ {
			if idx < p.GroupStart[g+1] {
				return g
			}
		}
		return -1
	}
	for i := 0; i < kc.Rows; i++ {
		gi := groupOf(i)
		for k := kc.RowPtr[i]; k < kc.RowPtr[i+1]; k++ {
			j := kc.ColIdx[k]
			if i != j && groupOf(j) == gi {
				t.Fatalf("within-group coupling (%d,%d) in group %d", i, j, gi)
			}
		}
	}
}

func TestDomainLoadPositiveTotalsArea(t *testing.T) {
	// Lumped unit x-body-force: total load = t × active area (free share).
	p := lshape(t, 7)
	var total float64
	for i := 0; i < p.N(); i += 2 {
		total += p.F[i]
	}
	// Total over ALL nodes (including constrained) would equal the active
	// area; free nodes receive most of it.
	g := p.Domain.Grid
	cellArea := 1.0 / (float64(g.Rows-1) * float64(g.Cols-1))
	area := float64(p.Domain.NumActiveCells()) * cellArea
	if total <= 0 || total > area {
		t.Fatalf("total load %g outside (0, %g]", total, area)
	}
	// v-components unloaded.
	for i := 1; i < p.N(); i += 2 {
		if p.F[i] != 0 {
			t.Fatal("y-load present")
		}
	}
}

func TestDomainRoundTrips(t *testing.T) {
	p := lshape(t, 6)
	rhs := p.ColoredRHS()
	back := p.UncolorSolution(rhs)
	for i := range back {
		if back[i] != p.F[i] {
			t.Fatal("color round trip failed")
		}
	}
}

func TestDomainProblemErrors(t *testing.T) {
	d := mesh.LShapedDomain(mesh.NewGrid(5, 5))
	if _, err := NewDomainProblem(d, mesh.NoConstraint, Material{E: -1, Nu: 0.3, T: 1}); err == nil {
		t.Fatal("bad material accepted")
	}
	all := func(i, j int) bool { return true }
	if _, err := NewDomainProblem(d, all, Material{}); err == nil {
		t.Fatal("fully constrained domain accepted")
	}
}

func TestDomainHoleProblem(t *testing.T) {
	d := mesh.DomainWithHole(mesh.NewGrid(9, 9), 0.5)
	p, err := NewDomainProblem(d, mesh.LeftEdgeClamped, Material{})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() == 0 || !p.K.IsSymmetric(1e-10) {
		t.Fatal("hole problem malformed")
	}
	// Nodes strictly inside the hole are absent.
	g := d.Grid
	for _, id := range p.Free {
		i, j := g.NodeRC(id)
		if i == 4 && j == 4 {
			// The exact center node survives only if some adjacent cell is
			// active; with a 0.5 hole on 8×8 cells it should not.
			t.Fatalf("hole-center node %d (%d,%d) is free", id, i, j)
		}
	}
	_ = math.Pi // keep math import if assertions change
}
