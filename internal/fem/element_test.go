package fem

import (
	"math"
	"testing"
)

func TestMaterialValidate(t *testing.T) {
	if err := DefaultMaterial.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Material{
		{E: 0, Nu: 0.3, T: 1},
		{E: 1, Nu: 0.5, T: 1},
		{E: 1, Nu: -1, T: 1},
		{E: 1, Nu: 0.3, T: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("material %+v accepted", m)
		}
	}
}

func TestDMatrixSymmetricPD(t *testing.T) {
	d := DefaultMaterial.DMatrix()
	if !d.IsSymmetric(1e-15) {
		t.Fatal("D not symmetric")
	}
	for i := 0; i < 3; i++ {
		if d.At(i, i) <= 0 {
			t.Fatalf("D diagonal %d not positive", i)
		}
	}
}

func TestCSTStiffnessSymmetricPSD(t *testing.T) {
	ke, err := CSTStiffness(DefaultMaterial, [3]float64{0, 1, 0}, [3]float64{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ke.IsSymmetric(1e-12) {
		t.Fatal("Ke not symmetric")
	}
	// Positive semidefinite: xᵀKe x >= 0 for a few vectors.
	for _, x := range [][]float64{
		{1, 0, 0, 0, 0, 0},
		{1, 1, -1, 0.5, 2, -3},
		{0, 1, 0, 1, 0, 1},
	} {
		kx := ke.MulVec(x)
		var q float64
		for i := range x {
			q += x[i] * kx[i]
		}
		if q < -1e-12 {
			t.Fatalf("xᵀKe x = %g < 0", q)
		}
	}
}

func TestCSTRigidBodyModes(t *testing.T) {
	// Ke annihilates the three rigid-body modes: x-translation,
	// y-translation, and infinitesimal rotation (u = -y, v = x).
	x := [3]float64{0.2, 1.1, 0.3}
	y := [3]float64{0.1, 0.2, 0.9}
	ke, err := CSTStiffness(DefaultMaterial, x, y)
	if err != nil {
		t.Fatal(err)
	}
	modes := [][]float64{
		{1, 0, 1, 0, 1, 0},
		{0, 1, 0, 1, 0, 1},
		{-y[0], x[0], -y[1], x[1], -y[2], x[2]},
	}
	for mi, mode := range modes {
		out := ke.MulVec(mode)
		for i, v := range out {
			if math.Abs(v) > 1e-12 {
				t.Fatalf("rigid mode %d not annihilated: Ke·m[%d] = %g", mi, i, v)
			}
		}
	}
}

func TestCSTDegenerateTriangleRejected(t *testing.T) {
	// Collinear vertices.
	if _, err := CSTStiffness(DefaultMaterial, [3]float64{0, 1, 2}, [3]float64{0, 0, 0}); err == nil {
		t.Fatal("degenerate triangle accepted")
	}
	// Clockwise orientation (negative area).
	if _, err := CSTStiffness(DefaultMaterial, [3]float64{0, 0, 1}, [3]float64{0, 1, 0}); err == nil {
		t.Fatal("clockwise triangle accepted")
	}
}

func TestCSTScalesWithThicknessAndE(t *testing.T) {
	x := [3]float64{0, 1, 0}
	y := [3]float64{0, 0, 1}
	base, _ := CSTStiffness(Material{E: 1, Nu: 0.3, T: 1}, x, y)
	thick, _ := CSTStiffness(Material{E: 1, Nu: 0.3, T: 2}, x, y)
	stiff, _ := CSTStiffness(Material{E: 3, Nu: 0.3, T: 1}, x, y)
	for i := range base.Data {
		if math.Abs(thick.Data[i]-2*base.Data[i]) > 1e-14 {
			t.Fatal("Ke not linear in thickness")
		}
		if math.Abs(stiff.Data[i]-3*base.Data[i]) > 1e-14 {
			t.Fatal("Ke not linear in E")
		}
	}
}
