// Package fem assembles the paper's test problem: plane stress on a
// rectangular plate discretized with linear (constant-strain) triangular
// elements, clamped on one edge and loaded on another. The resulting
// stiffness matrix is symmetric positive definite, dimension 2·(free
// nodes), with at most 14 nonzeros per row (the Figure 2 stencil), and
// decouples into the 6-color block form of eq. (3.1) under the multicolor
// ordering.
package fem

import (
	"fmt"

	"repro/internal/la"
)

// Material is a linear-elastic plane-stress material.
type Material struct {
	E  float64 // Young's modulus
	Nu float64 // Poisson's ratio
	T  float64 // plate thickness
}

// DefaultMaterial is the normalized material used by the experiments:
// the paper's results depend only on the matrix structure and conditioning,
// not on physical units.
var DefaultMaterial = Material{E: 1, Nu: 0.3, T: 1}

// Validate checks physical admissibility (E, T > 0; −1 < ν < 0.5 for plane
// stress positive definiteness).
func (m Material) Validate() error {
	if m.E <= 0 {
		return fmt.Errorf("fem: Young's modulus must be positive, got %g", m.E)
	}
	if m.T <= 0 {
		return fmt.Errorf("fem: thickness must be positive, got %g", m.T)
	}
	if m.Nu <= -1 || m.Nu >= 0.5 {
		return fmt.Errorf("fem: Poisson ratio must lie in (-1, 0.5), got %g", m.Nu)
	}
	return nil
}

// DMatrix returns the 3×3 plane-stress constitutive matrix
// D = E/(1−ν²)·[[1,ν,0],[ν,1,0],[0,0,(1−ν)/2]].
func (m Material) DMatrix() *la.Matrix {
	c := m.E / (1 - m.Nu*m.Nu)
	d := la.NewMatrix(3, 3)
	d.Set(0, 0, c)
	d.Set(0, 1, c*m.Nu)
	d.Set(1, 0, c*m.Nu)
	d.Set(1, 1, c)
	d.Set(2, 2, c*(1-m.Nu)/2)
	return d
}

// CSTStiffness returns the 6×6 element stiffness matrix of a constant
// strain triangle with vertices (x[k], y[k]), k = 0..2 in counterclockwise
// order, in dof order (u0, v0, u1, v1, u2, v2):
//
//	Ke = t · A · Bᵀ D B
//
// where B is the 3×6 strain-displacement matrix and A the triangle area.
func CSTStiffness(m Material, x, y [3]float64) (*la.Matrix, error) {
	twoA := (x[1]-x[0])*(y[2]-y[0]) - (x[2]-x[0])*(y[1]-y[0])
	if twoA <= 0 {
		return nil, fmt.Errorf("fem: triangle area %g not positive (vertices clockwise or degenerate)", twoA/2)
	}
	area := twoA / 2
	// b_k = y_{k+1} − y_{k+2}, c_k = x_{k+2} − x_{k+1} (cyclic).
	var b, c [3]float64
	for k := 0; k < 3; k++ {
		b[k] = y[(k+1)%3] - y[(k+2)%3]
		c[k] = x[(k+2)%3] - x[(k+1)%3]
	}
	bm := la.NewMatrix(3, 6)
	for k := 0; k < 3; k++ {
		bm.Set(0, 2*k, b[k]/twoA)
		bm.Set(1, 2*k+1, c[k]/twoA)
		bm.Set(2, 2*k, c[k]/twoA)
		bm.Set(2, 2*k+1, b[k]/twoA)
	}
	ke := bm.T().Mul(m.DMatrix()).Mul(bm)
	for i := range ke.Data {
		ke.Data[i] *= m.T * area
	}
	return ke, nil
}
