// Package vectorsim models the CYBER 203/205 vector machines the paper
// evaluates on (§3.1): memory-to-memory pipelines whose operations cost a
// startup plus a per-element stream time, and whose inner-product
// instruction pays an additional partial-sum phase that "does not vectorize
// well" — the cost the m-step preconditioner exists to avoid.
//
// The simulator is a discrete cost model, not a cycle-accurate emulator: it
// runs the actual solver (identical numerics to internal/core) and charges
// simulated seconds per vector operation from the matrix structure, exactly
// the cost decomposition T_m = N_m(A + mB) the paper uses in eq. (4.1).
package vectorsim

import "fmt"

// Model is the vector machine timing model. All times are seconds.
type Model struct {
	Name string
	// Tau is the per-element streaming time of a vector operation.
	Tau float64
	// Sigma is the vector instruction startup. The paper's stated
	// efficiencies (90% at length 1000, 50% at 100, 10% at 10) pin
	// Sigma = 100·Tau.
	Sigma float64
	// IPSumPenalty is the fixed extra cost of the inner product's
	// partial-sum accumulation phase, which runs at scalar speed.
	IPSumPenalty float64
	// Scalar is the cost of one scalar operation (loop control, the
	// convergence-test comparison, coefficient arithmetic).
	Scalar float64
}

// Cyber203 is the model used for Table 2: a 40 ns stream rate with the
// paper's 100·τ startup and an inner-product summation phase ≈ 20 startups.
func Cyber203() Model {
	tau := 40e-9
	return Model{
		Name:         "CYBER 203",
		Tau:          tau,
		Sigma:        100 * tau,
		IPSumPenalty: 2000 * tau,
		Scalar:       10 * tau,
	}
}

// Cyber205 is the follow-on machine: twice the stream rate, same relative
// startup behaviour.
func Cyber205() Model {
	tau := 20e-9
	return Model{
		Name:         "CYBER 205",
		Tau:          tau,
		Sigma:        100 * tau,
		IPSumPenalty: 2000 * tau,
		Scalar:       10 * tau,
	}
}

// Validate rejects non-physical models.
func (m Model) Validate() error {
	if m.Tau <= 0 || m.Sigma < 0 || m.IPSumPenalty < 0 || m.Scalar < 0 {
		return fmt.Errorf("vectorsim: invalid model %+v", m)
	}
	return nil
}

// VecOp returns the cost of one vector operation (add, multiply, linked
// triad, vector absolute value, masked store) on n elements.
func (m Model) VecOp(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.Sigma + float64(n)*m.Tau
}

// InnerProduct returns the cost of an n-element inner product: the
// elementwise multiply streams like a vector op, then the partial sums pay
// the fixed scalar-speed penalty.
func (m Model) InnerProduct(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.Sigma + float64(n)*m.Tau + m.IPSumPenalty
}

// Efficiency returns achieved/asymptotic throughput for length-n vector
// ops: n·τ/(σ + n·τ). With σ = 100τ this reproduces the paper's quoted
// ~90% at n=1000, 50% at n=100 and ~10% at n=10.
func (m Model) Efficiency(n int) float64 {
	if n <= 0 {
		return 0
	}
	w := float64(n) * m.Tau
	return w / (m.Sigma + w)
}
