package vectorsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
)

// Run is one simulated CYBER solve of the paper's plate problem.
type Run struct {
	Rows, Cols int
	M          int  // preconditioner steps (0 = plain CG)
	Param      bool // parametrized coefficients (least squares)?
	Iterations int  // N_m
	Seconds    float64
	VectorLen  int // per-color padded vector length v
	Cost       CostBreakdown
	Precond    string
}

// Label renders the paper's row label: "0", "3", "4P", ...
func (r Run) Label() string {
	if r.M == 0 {
		return "0"
	}
	if r.Param {
		return fmt.Sprintf("%dP", r.M)
	}
	return fmt.Sprintf("%d", r.M)
}

// SimulatePlate runs the m-step multicolor SSOR PCG on an rows×cols plate
// under the machine model, returning iterations and simulated seconds. The
// numerics are the real solver (identical iterates to internal/core); only
// the clock is modeled. tol is the paper's ‖Δu‖_∞ stopping threshold.
func SimulatePlate(model Model, rows, cols, m int, param bool, tol float64) (Run, error) {
	return SimulatePlateWithInterval(model, rows, cols, m, param, tol, nil)
}

// SimulatePlateWithInterval is SimulatePlate with a precomputed spectral
// interval for the parametrized coefficients, letting sweeps over m (Table
// 2's columns) amortize the power-method estimation.
func SimulatePlateWithInterval(model Model, rows, cols, m int, param bool, tol float64, iv *eigen.Interval) (Run, error) {
	sys, _, err := core.PlateSystem(rows, cols, fem.Options{})
	if err != nil {
		return Run{}, err
	}
	cfg := core.Config{M: m, Splitting: core.SSORMulticolor, Tol: tol, MaxIter: 100000, Interval: iv}
	if param {
		if m < 2 {
			return Run{}, fmt.Errorf("vectorsim: parametrization needs m >= 2 (m=1 is a scalar multiple)")
		}
		cfg.Coeffs = core.LeastSquaresCoeffs
	}
	res, err := core.Solve(sys, cfg)
	if err != nil {
		return Run{}, fmt.Errorf("vectorsim: solve (m=%d, param=%v): %w", m, param, err)
	}
	// The paper stores constrained nodes too: per-color padded length
	// v = ⌈rows·cols/3⌉ node values per color group.
	pad := (rows*cols + 2) / 3
	cost, err := Analyze(model, sys.K, sys.GroupStart, pad)
	if err != nil {
		return Run{}, err
	}
	return Run{
		Rows: rows, Cols: cols, M: m, Param: param,
		Iterations: res.Stats.Iterations,
		Seconds:    cost.Time(res.Stats.Iterations, m),
		VectorLen:  pad,
		Cost:       cost,
		Precond:    res.Precond,
	}, nil
}
