package vectorsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fem"
)

func TestEfficiencyMatchesPaperQuotes(t *testing.T) {
	m := Cyber203()
	// "For vectors of length 1000 around 90% efficiency is obtained, but
	// this drops to approximately 50% or less for vectors of length 100
	// and 10% for vectors of length 10."
	if e := m.Efficiency(1000); math.Abs(e-0.909) > 0.01 {
		t.Fatalf("eff(1000) = %v", e)
	}
	if e := m.Efficiency(100); math.Abs(e-0.5) > 0.01 {
		t.Fatalf("eff(100) = %v", e)
	}
	if e := m.Efficiency(10); math.Abs(e-0.0909) > 0.01 {
		t.Fatalf("eff(10) = %v", e)
	}
	if m.Efficiency(0) != 0 {
		t.Fatal("eff(0) should be 0")
	}
}

func TestModelValidate(t *testing.T) {
	if err := Cyber203().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Cyber205().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Model{Tau: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative tau accepted")
	}
}

func TestInnerProductSlowerThanVecOp(t *testing.T) {
	m := Cyber203()
	for _, n := range []int{100, 1000, 10000} {
		if m.InnerProduct(n) <= m.VecOp(n) {
			t.Fatalf("n=%d: inner product not slower than vector op", n)
		}
	}
}

func TestCyber205FasterThan203(t *testing.T) {
	for _, n := range []int{100, 1000} {
		if Cyber205().VecOp(n) >= Cyber203().VecOp(n) {
			t.Fatal("205 not faster than 203")
		}
	}
}

func TestAnalyzeBreakdownSane(t *testing.T) {
	sys, _, err := core.PlateSystem(12, 12, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cost, err := Analyze(Cyber203(), sys.K, sys.GroupStart, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost.A <= 0 || cost.B <= 0 || cost.Setup <= 0 {
		t.Fatalf("non-positive costs: %+v", cost)
	}
	if cost.InnerProductShare <= 0 || cost.InnerProductShare >= 1 {
		t.Fatalf("inner product share %v out of (0,1)", cost.InnerProductShare)
	}
	// Time formula: linear in iterations and in m.
	t1 := cost.Time(10, 2)
	t2 := cost.Time(20, 2)
	if math.Abs((t2-cost.Setup)-2*(t1-cost.Setup)) > 1e-12 {
		t.Fatal("Time not linear in iterations")
	}
}

func TestBOverADecreasesWithProblemSize(t *testing.T) {
	// The lever behind Table 2's "optimal m grows with vector length":
	// startup-dominated short color vectors make B relatively expensive on
	// small problems; on long vectors the fixed inner-product penalty in A
	// no longer dominates but B's many short ops amortize faster.
	model := Cyber203()
	ratio := func(a int) float64 {
		sys, _, err := core.PlateSystem(a, a, fem.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pad := (a*a + 2) / 3
		cost, err := Analyze(model, sys.K, sys.GroupStart, pad)
		if err != nil {
			t.Fatal(err)
		}
		return cost.B / cost.A
	}
	small, large := ratio(10), ratio(40)
	if large >= small {
		t.Fatalf("B/A did not decrease with size: %v (a=10) vs %v (a=40)", small, large)
	}
}

func TestSimulatePlateBasic(t *testing.T) {
	run, err := SimulatePlate(Cyber203(), 10, 10, 2, true, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if run.Iterations <= 0 || run.Seconds <= 0 {
		t.Fatalf("degenerate run %+v", run)
	}
	if run.VectorLen != (100+2)/3 {
		t.Fatalf("vector length %d, want %d", run.VectorLen, (100+2)/3)
	}
	if run.Label() != "2P" {
		t.Fatalf("label %q", run.Label())
	}
}

func TestRunLabels(t *testing.T) {
	if (Run{M: 0}).Label() != "0" {
		t.Fatal("m=0 label")
	}
	if (Run{M: 3}).Label() != "3" {
		t.Fatal("m=3 label")
	}
	if (Run{M: 4, Param: true}).Label() != "4P" {
		t.Fatal("4P label")
	}
}

func TestSimulateRejectsParamM1(t *testing.T) {
	if _, err := SimulatePlate(Cyber203(), 8, 8, 1, true, 1e-6); err == nil {
		t.Fatal("parametrized m=1 accepted")
	}
}

func TestPreconditioningReducesIterationsOnCyber(t *testing.T) {
	cg0, err := SimulatePlate(Cyber203(), 12, 12, 0, false, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	pcg1, err := SimulatePlate(Cyber203(), 12, 12, 1, false, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if pcg1.Iterations >= cg0.Iterations {
		t.Fatalf("1-step PCG (%d) not fewer iterations than CG (%d)", pcg1.Iterations, cg0.Iterations)
	}
}

// The paper's Table 2 observation (1): the parametrized preconditioner
// beats the unparametrized one in execution time too.
func TestParametrizedFasterOnCyber(t *testing.T) {
	for _, m := range []int{3, 4} {
		plain, err := SimulatePlate(Cyber203(), 14, 14, m, false, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		param, err := SimulatePlate(Cyber203(), 14, 14, m, true, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if param.Seconds > plain.Seconds {
			t.Fatalf("m=%d: parametrized %.4gs slower than plain %.4gs", m, param.Seconds, plain.Seconds)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	sys, _, err := core.PlateSystem(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(Model{Tau: -1}, sys.K, sys.GroupStart, 0); err == nil {
		t.Fatal("bad model accepted")
	}
	if _, err := Analyze(Cyber203(), sys.K, []int{0, 1}, 0); err == nil {
		t.Fatal("bad group boundaries accepted")
	}
}
