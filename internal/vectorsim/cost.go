package vectorsim

import (
	"errors"
	"fmt"

	"repro/internal/sparse"
)

// ErrDegenerate reports a system the cost analysis cannot describe: no
// matrix, no rows, or no stored entries. Callers that use Analyze as a
// planning prior (the engine's self-tuning planner calls it on every cold
// plan) test for it with errors.Is and fall back to measurement-only
// selection instead of trusting a zero CostBreakdown.
var ErrDegenerate = errors.New("vectorsim: degenerate system")

// CostBreakdown decomposes one solve into the paper's eq. (4.1) quantities:
// T_m = Setup + N_m · (A + m·B).
type CostBreakdown struct {
	// Setup covers r⁰ = f − K·u⁰ and the initial preconditioner solve /
	// direction copy.
	Setup float64
	// A is the cost of one outer CG iteration excluding the
	// preconditioner: the K·p product, the three vector updates, the
	// convergence test, and the two inner products.
	A float64
	// B is the cost of one step of the m-step multicolor SSOR
	// preconditioner (one forward + one backward Conrad–Wallach
	// half-sweep pair).
	B float64
	// InnerProductShare is the fraction of A spent in inner products —
	// the bottleneck the paper's method attacks.
	InnerProductShare float64
	// MaxVectorLength is the per-color vector length v the paper tabulates.
	MaxVectorLength int
}

// storageByDiagonals captures what the CYBER implementation stores: the
// global diagonals of the colored matrix (for K·p, Madsen–Rodrigue–Karush)
// and, per color-block, the diagonal count (for the preconditioner sweeps).
type storageByDiagonals struct {
	spmvLengths []int   // vector length of each K·p triad
	lowerDiags  [][]int // per color c: diag counts of blocks B_cj, j < c
	upperDiags  [][]int // per color c: diag counts of blocks B_cj, j > c
	groupLens   []int
}

// analyzeStorage derives the diagonal structure of a multicolor-ordered
// matrix with group boundaries start.
func analyzeStorage(k *sparse.CSR, start []int) (*storageByDiagonals, error) {
	if k.Rows != k.Cols {
		return nil, fmt.Errorf("vectorsim: matrix must be square")
	}
	if len(start) < 2 || start[0] != 0 || start[len(start)-1] != k.Rows {
		return nil, fmt.Errorf("vectorsim: group boundaries %v do not cover [0,%d]", start, k.Rows)
	}
	ng := len(start) - 1
	st := &storageByDiagonals{
		spmvLengths: sparse.MustDIAFromCSR(k).OpLengths(),
		lowerDiags:  make([][]int, ng),
		upperDiags:  make([][]int, ng),
		groupLens:   make([]int, ng),
	}
	groupOf := func(idx int) int {
		for c := 0; c < ng; c++ {
			if idx < start[c+1] {
				return c
			}
		}
		return ng - 1
	}
	// Distinct within-block offsets per ordered block (c, j).
	blockOffsets := make(map[[2]int]map[int]bool)
	for i := 0; i < k.Rows; i++ {
		ci := groupOf(i)
		for p := k.RowPtr[i]; p < k.RowPtr[i+1]; p++ {
			j := k.ColIdx[p]
			cj := groupOf(j)
			if cj == ci {
				continue // diagonal block: handled as the divide
			}
			key := [2]int{ci, cj}
			if blockOffsets[key] == nil {
				blockOffsets[key] = map[int]bool{}
			}
			blockOffsets[key][(j-start[cj])-(i-start[ci])] = true
		}
	}
	for c := 0; c < ng; c++ {
		st.groupLens[c] = start[c+1] - start[c]
		for j := 0; j < ng; j++ {
			if j == c {
				continue
			}
			n := len(blockOffsets[[2]int{c, j}])
			if n == 0 {
				continue
			}
			if j < c {
				st.lowerDiags[c] = append(st.lowerDiags[c], n)
			} else {
				st.upperDiags[c] = append(st.upperDiags[c], n)
			}
		}
	}
	return st, nil
}

// Analyze computes the cost breakdown for the m-step multicolor SSOR PCG
// on a colored system under the given machine model. padLen, when positive,
// overrides the per-color vector length with the paper's padded storage
// length v = ⌈a²/3⌉ (constrained nodes are stored and masked by the control
// vector, so the pipelines stream the padded length).
func Analyze(model Model, k *sparse.CSR, start []int, padLen int) (CostBreakdown, error) {
	if err := model.Validate(); err != nil {
		return CostBreakdown{}, err
	}
	switch {
	case k == nil:
		return CostBreakdown{}, fmt.Errorf("%w: nil matrix", ErrDegenerate)
	case k.Rows == 0 || k.Cols == 0:
		return CostBreakdown{}, fmt.Errorf("%w: empty %d×%d matrix", ErrDegenerate, k.Rows, k.Cols)
	case k.NNZ() == 0:
		return CostBreakdown{}, fmt.Errorf("%w: matrix has no stored entries", ErrDegenerate)
	}
	st, err := analyzeStorage(k, start)
	if err != nil {
		return CostBreakdown{}, err
	}
	colorLen := func(c int) int {
		if padLen > 0 {
			return padLen
		}
		return st.groupLens[c]
	}
	fullLen := 0
	for c := range st.groupLens {
		fullLen += colorLen(c)
	}

	// K·p by diagonals: one linked triad per stored diagonal. When padding
	// is requested, scale each stored-diagonal length by the padding ratio.
	var spmv float64
	ratio := 1.0
	if padLen > 0 && k.Rows > 0 {
		ratio = float64(fullLen) / float64(k.Rows)
	}
	for _, l := range st.spmvLengths {
		spmv += model.VecOp(int(float64(l) * ratio))
	}

	// Outer iteration A: K·p, α denominator and ρ inner products, u and r
	// triads, direction update triad, convergence test (vector subtract,
	// vector abs/max reduce modeled as a vector op + scalar compare).
	ips := 2 * model.InnerProduct(fullLen)
	triads := 3 * model.VecOp(fullLen)
	conv := 2*model.VecOp(fullLen) + model.Scalar
	a := spmv + ips + triads + conv

	// Preconditioner step B: forward half-sweep touches each color's lower
	// blocks (one triad per stored block diagonal), then a triad for
	// y + α·r and a vector divide by D_c; the backward half-sweep mirrors
	// with upper blocks, skipping the last color's re-solve.
	var b float64
	ng := len(st.groupLens)
	for c := 0; c < ng; c++ {
		lc := colorLen(c)
		for _, nd := range st.lowerDiags[c] {
			b += float64(nd) * model.VecOp(lc)
		}
		b += 2 * model.VecOp(lc) // add y + α·r, divide by D_c
	}
	for c := ng - 2; c >= 0; c-- {
		lc := colorLen(c)
		for _, nd := range st.upperDiags[c] {
			b += float64(nd) * model.VecOp(lc)
		}
		b += 2 * model.VecOp(lc)
	}

	setup := spmv + model.VecOp(fullLen) + model.InnerProduct(fullLen) + model.VecOp(fullLen)

	maxLen := 0
	for c := range st.groupLens {
		if l := colorLen(c); l > maxLen {
			maxLen = l
		}
	}
	return CostBreakdown{
		Setup:             setup,
		A:                 a,
		B:                 b,
		InnerProductShare: ips / a,
		MaxVectorLength:   maxLen,
	}, nil
}

// Time evaluates the paper's eq. (4.1): T = Setup + N·(A + m·B).
func (c CostBreakdown) Time(iters, m int) float64 {
	return c.Setup + float64(iters)*(c.A+float64(m)*c.B)
}
