package vectorsim

import (
	"errors"
	"testing"

	"repro/internal/sparse"
)

// Analyze backs the engine's self-tuning prior, which probes it on every
// warm problem: degenerate systems must answer with a typed error the
// caller can test for, never a zero CostBreakdown mistaken for "free".
func TestAnalyzeDegenerateSystems(t *testing.T) {
	cases := []struct {
		name  string
		k     *sparse.CSR
		start []int
	}{
		{"nil matrix", nil, []int{0}},
		{"empty matrix", sparse.NewCOO(0, 0).ToCSR(), []int{0, 0}},
		{"no stored entries", sparse.NewCOO(4, 4).ToCSR(), []int{0, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Analyze(Cyber203(), tc.k, tc.start, 0)
			if err == nil {
				t.Fatal("degenerate system accepted")
			}
			if !errors.Is(err, ErrDegenerate) {
				t.Fatalf("error %v is not ErrDegenerate", err)
			}
		})
	}
}

// A malformed group cover is a caller bug, not a degenerate system: it must
// stay a distinct error so ErrDegenerate keeps meaning "nothing to model".
func TestAnalyzeBadGroupsNotDegenerate(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 2)
	c.Add(1, 1, 2)
	_, err := Analyze(Cyber203(), c.ToCSR(), []int{0, 1}, 0)
	if err == nil {
		t.Fatal("bad group cover accepted")
	}
	if errors.Is(err, ErrDegenerate) {
		t.Fatalf("group-cover error %v wrongly wrapped as ErrDegenerate", err)
	}
}
