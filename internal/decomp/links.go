package decomp

// LinkDepth is the channel capacity per directed link that the real
// solver's exchange schedule needs. Every exchange is send-all-then-
// recv-all and a rank posts exchange k+1 only after draining exchange k,
// so before message j can enter a link, its receiver must have consumed
// message j−2: at most two messages are ever in flight per directed link.
// Capacity 4 doubles that bound for slack. Payload width is *not* bounded
// by the channel — senders provision ring buffers from the partition's
// actual border width (Subdomain.MaxSendWords), so arbitrarily large
// borders cannot deadlock an exchange.
const LinkDepth = 4

// Links is the static channel fabric: one buffered channel per directed
// neighbor pair, mirroring the machine's dedicated local links. The
// element type is generic so the simulator can ship clock-stamped
// messages while the real solver ships bare value slices.
type Links[T any] struct {
	ch map[[2]int]chan T
}

// NewLinks wires a channel of the given depth for every directed neighbor
// pair in the decomposition.
func NewLinks[T any](d *Decomposition, depth int) *Links[T] {
	l := &Links[T]{ch: make(map[[2]int]chan T)}
	for p := 0; p < d.P; p++ {
		for _, q := range d.Subs[p].Neighbors {
			l.ch[[2]int{p, q}] = make(chan T, depth)
		}
	}
	return l
}

// Send enqueues a message on the from→to link.
func (l *Links[T]) Send(from, to int, v T) { l.ch[[2]int{from, to}] <- v }

// Recv dequeues the next message from the from→to link.
func (l *Links[T]) Recv(from, to int) T { return <-l.ch[[2]int{from, to}] }
