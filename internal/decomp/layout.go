package decomp

import (
	"fmt"

	"repro/internal/mesh"
)

// Subdomain is one processor's static slice of the global colored system:
// its owned nodes, the halo it reads, its rows of K in a flat segmented
// layout, and the per-neighbor send/receive schedules. A Subdomain is
// immutable after New — solver run state (vectors, link buffers) lives with
// whichever solver wraps it, so one cached Decomposition can serve
// concurrent solves.
type Subdomain struct {
	Rank int

	OwnNodes  []int // natural node ids, ascending
	HaloNodes []int
	// LocalIndex maps a natural node id to its local node index (own nodes
	// first, then halo).
	LocalIndex map[int]int
	NOwn       int
	NAll       int
	NumGroups  int

	// Row data for own dofs (flat index 2·localNode+comp), stored as one
	// flat CSR-like block with entries in the global colored order and
	// segmented by unknown group: row flat's entries for group g occupy
	// [Seg[flat·(NumGroups+1)+g], Seg[flat·(NumGroups+1)+g+1]). The diagonal
	// stays inside its own group's segment so K·p sums in exactly the
	// serial column order; the sweeps' one-sided sums never touch the
	// within-group segment.
	Cols []int32 // local flat column indices (may point into halo)
	Vals []float64
	Seg  []int32
	Diag []float64
	F    []float64

	// ColorOwn lists own local node indices per node color; ColorInterior/
	// ColorBorder split each list (preserving order) by whether any of the
	// node's two rows reference a halo column. Interior rows can be solved
	// while a border exchange is still in flight — that is what makes the
	// overlap in Solve exact rather than approximate.
	ColorOwn      [][]int
	ColorInterior [][]int
	ColorBorder   [][]int
	// Interior/Border are the same split over all own local nodes,
	// ascending, used by the matrix-vector product.
	Interior []int
	Border   []int

	Neighbors []int
	// SendNodes/RecvNodes list, per neighbor and per color, the own local
	// node indices to send and the halo local node indices to fill. Both
	// components of every listed node travel in one record per neighbor,
	// the packaging §3.2 recommends.
	SendNodes map[int][][]int
	RecvNodes map[int][][]int
	// MaxSendWords is the widest possible message to each neighbor (an
	// all-colors exchange, two words per border node) — the size real link
	// buffers must be provisioned for.
	MaxSendWords map[int]int

	ColoredIdx []int // own flat dof -> global colored index
}

// RowSeg returns row flat's NumGroups+1 group boundaries (absolute offsets
// into Cols/Vals).
func (sd *Subdomain) RowSeg(flat int) []int32 {
	s := flat * (sd.NumGroups + 1)
	return sd.Seg[s : s+sd.NumGroups+1]
}

// Decomposition is the full per-processor layout of one colored problem
// over one mesh partition. It is immutable after New and safe to share:
// both the femachine simulator and the real decomposed solver build their
// run state around the same Decomposition.
type Decomposition struct {
	Prob Problem
	Part *mesh.Partition
	P    int

	NumColors int
	NumGroups int
	AllColors []int
	Subs      []*Subdomain

	// colorSets[c] is the one-color slice {c}, preallocated so the sweeps'
	// per-color exchanges allocate nothing.
	colorSets [][]int
}

// New partitions the problem's free nodes across p processors with the
// given strategy and extracts every processor's rows, border schedules and
// neighbor links.
func New(prob Problem, p int, strat mesh.Strategy) (*Decomposition, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	part, err := mesh.NewPartition(prob.Grid, prob.Constrained, p, strat)
	if err != nil {
		return nil, err
	}
	n := prob.KColored.Rows
	d := &Decomposition{
		Prob: prob, Part: part, P: p,
		NumColors: prob.NumColors,
		NumGroups: 2 * prob.NumColors,
	}
	d.AllColors = make([]int, d.NumColors)
	d.colorSets = make([][]int, d.NumColors)
	for c := 0; c < d.NumColors; c++ {
		d.AllColors[c] = c
		d.colorSets[c] = []int{c}
	}

	// Colored-index lookup tables shared by every subdomain build.
	nodeOfColored := make([]int, n)
	compOfColored := make([]int, n)
	groupOfColored := make([]int, n)
	freePos := make(map[int]int, len(prob.Free))
	for k, id := range prob.Free {
		freePos[id] = k
		for comp := 0; comp < 2; comp++ {
			ci := prob.ColoredIndex(k, comp)
			nodeOfColored[ci] = id
			compOfColored[ci] = comp
		}
	}
	for g := 0; g < d.NumGroups; g++ {
		for i := prob.GroupStart[g]; i < prob.GroupStart[g+1]; i++ {
			groupOfColored[i] = g
		}
	}

	for rank := 0; rank < p; rank++ {
		sd, err := d.buildSub(rank, nodeOfColored, compOfColored, groupOfColored, freePos)
		if err != nil {
			return nil, err
		}
		d.Subs = append(d.Subs, sd)
	}
	return d, nil
}

// buildSub extracts processor rank's slice of the global colored system.
func (d *Decomposition) buildSub(rank int, nodeOfColored, compOfColored, groupOfColored []int, freePos map[int]int) (*Subdomain, error) {
	prob, part := d.Prob, d.Part
	sd := &Subdomain{Rank: rank, NumGroups: d.NumGroups}
	sd.OwnNodes = part.Nodes[rank]
	sd.HaloNodes = part.HaloNodes(rank)
	sd.NOwn = len(sd.OwnNodes)
	sd.NAll = sd.NOwn + len(sd.HaloNodes)
	sd.LocalIndex = make(map[int]int, sd.NAll)
	for i, id := range sd.OwnNodes {
		sd.LocalIndex[id] = i
	}
	for i, id := range sd.HaloNodes {
		sd.LocalIndex[id] = sd.NOwn + i
	}
	sd.ColorOwn = make([][]int, d.NumColors)
	for i, id := range sd.OwnNodes {
		c := prob.ColorOf(id)
		if c < 0 || c >= d.NumColors {
			return nil, fmt.Errorf("decomp: node %d has color %d outside [0,%d)", id, c, d.NumColors)
		}
		sd.ColorOwn[c] = append(sd.ColorOwn[c], i)
	}

	kc := prob.KColored
	nd := 2 * sd.NOwn
	ng := d.NumGroups
	stride := ng + 1
	sd.Seg = make([]int32, nd*stride)
	sd.Diag = make([]float64, nd)
	sd.F = make([]float64, nd)
	sd.ColoredIdx = make([]int, nd)

	for li, id := range sd.OwnNodes {
		freeK, ok := freePos[id]
		if !ok {
			return nil, fmt.Errorf("decomp: constrained node %d assigned to processor %d", id, rank)
		}
		for comp := 0; comp < 2; comp++ {
			row := prob.ColoredIndex(freeK, comp)
			flat := 2*li + comp
			sd.ColoredIdx[flat] = row
			sd.F[flat] = prob.RHS[row]
			seg := sd.Seg[flat*stride : (flat+1)*stride]
			seg[0] = int32(len(sd.Cols))
			curGroup := 0
			for k := kc.RowPtr[row]; k < kc.RowPtr[row+1]; k++ {
				col := kc.ColIdx[k]
				if col == row {
					sd.Diag[flat] = kc.Val[k]
				}
				g := groupOfColored[col]
				for curGroup < g {
					curGroup++
					seg[curGroup] = int32(len(sd.Cols))
				}
				colNode := nodeOfColored[col]
				colComp := compOfColored[col]
				colLi, ok := sd.LocalIndex[colNode]
				if !ok {
					return nil, fmt.Errorf("decomp: proc %d row for node %d references node %d outside own+halo", rank, id, colNode)
				}
				sd.Cols = append(sd.Cols, int32(2*colLi+colComp))
				sd.Vals = append(sd.Vals, kc.Val[k])
			}
			for curGroup < ng {
				curGroup++
				seg[curGroup] = int32(len(sd.Cols))
			}
			if sd.Diag[flat] <= 0 {
				return nil, fmt.Errorf("decomp: non-positive diagonal at proc %d dof %d", rank, flat)
			}
		}
	}

	// Interior/border split: a node is interior iff neither of its rows
	// references a column at or beyond the own-dof range. Derived from the
	// extracted rows themselves, so it stays correct for any stencil.
	haloTouched := make([]bool, sd.NOwn)
	for li := 0; li < sd.NOwn; li++ {
		for comp := 0; comp < 2; comp++ {
			flat := 2*li + comp
			seg := sd.Seg[flat*stride:]
			for k := seg[0]; k < seg[ng]; k++ {
				if int(sd.Cols[k]) >= nd {
					haloTouched[li] = true
				}
			}
		}
	}
	for li := 0; li < sd.NOwn; li++ {
		if haloTouched[li] {
			sd.Border = append(sd.Border, li)
		} else {
			sd.Interior = append(sd.Interior, li)
		}
	}
	sd.ColorInterior = make([][]int, d.NumColors)
	sd.ColorBorder = make([][]int, d.NumColors)
	for c := 0; c < d.NumColors; c++ {
		for _, li := range sd.ColorOwn[c] {
			if haloTouched[li] {
				sd.ColorBorder[c] = append(sd.ColorBorder[c], li)
			} else {
				sd.ColorInterior[c] = append(sd.ColorInterior[c], li)
			}
		}
	}

	sd.Neighbors = part.NeighborProcs(rank)
	sd.SendNodes = make(map[int][][]int, len(sd.Neighbors))
	sd.RecvNodes = make(map[int][][]int, len(sd.Neighbors))
	sd.MaxSendWords = make(map[int]int, len(sd.Neighbors))
	for _, q := range sd.Neighbors {
		snd := make([][]int, d.NumColors)
		rcv := make([][]int, d.NumColors)
		words := 0
		for _, id := range part.BorderNodes(rank, q) {
			c := prob.ColorOf(id)
			snd[c] = append(snd[c], sd.LocalIndex[id])
			words += 2
		}
		for _, id := range part.BorderNodes(q, rank) {
			c := prob.ColorOf(id)
			rcv[c] = append(rcv[c], sd.LocalIndex[id])
		}
		sd.SendNodes[q] = snd
		sd.RecvNodes[q] = rcv
		sd.MaxSendWords[q] = words
	}
	return sd, nil
}

// HaloFraction reports the ratio of halo (replicated) nodes to owned nodes
// summed over all subdomains — a planner attribute: high fractions mean the
// decomposition trades more communication for smaller working sets.
func (d *Decomposition) HaloFraction() float64 {
	var own, halo int
	for _, sd := range d.Subs {
		own += len(sd.OwnNodes)
		halo += len(sd.HaloNodes)
	}
	if own == 0 {
		return 0
	}
	return float64(halo) / float64(own)
}

// ColorSet returns the preallocated one-color slice {c}.
func (d *Decomposition) ColorSet(c int) []int { return d.colorSets[c] }
