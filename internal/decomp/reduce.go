package decomp

// reduceOp selects the combining rule of the tree all-reduce.
type reduceOp int

const (
	opSum reduceOp = iota
	opMax
)

// treeReducer is a deterministic binomial-tree all-reduce over P ranks,
// the real replacement for the paper machine's sum/max circuit: rank r's
// children are 2r+1 and 2r+2; values combine own→left→right at every
// node, so the floating-point result is identical on every rank and
// independent of goroutine scheduling. Each call moves one [2]float64,
// letting a scalar reduction carry a cancellation flag in its second lane
// so control flow stays uniform across ranks.
type treeReducer struct {
	p    int
	up   []chan [2]float64 // up[r]: child r -> parent
	down []chan [2]float64 // down[r]: parent -> child r
}

func newTreeReducer(p int) *treeReducer {
	r := &treeReducer{p: p, up: make([]chan [2]float64, p), down: make([]chan [2]float64, p)}
	for i := 0; i < p; i++ {
		r.up[i] = make(chan [2]float64, 1)
		r.down[i] = make(chan [2]float64, 1)
	}
	return r
}

func combine(acc, v [2]float64, op reduceOp) [2]float64 {
	switch op {
	case opSum:
		acc[0] += v[0]
	case opMax:
		if v[0] > acc[0] {
			acc[0] = v[0]
		}
	}
	// Lane 1 is always a max — it carries flags (cancellation) that any
	// rank may raise.
	if v[1] > acc[1] {
		acc[1] = v[1]
	}
	return acc
}

// allReduce blocks until the whole tree has contributed and returns the
// combined value, identical on every rank.
func (r *treeReducer) allReduce(rank int, v [2]float64, op reduceOp) [2]float64 {
	acc := v
	if l := 2*rank + 1; l < r.p {
		acc = combine(acc, <-r.up[l], op)
	}
	if rt := 2*rank + 2; rt < r.p {
		acc = combine(acc, <-r.up[rt], op)
	}
	if rank == 0 {
		if l := 2*rank + 1; l < r.p {
			r.down[l] <- acc
		}
		if rt := 2*rank + 2; rt < r.p {
			r.down[rt] <- acc
		}
		return acc
	}
	r.up[rank] <- acc
	res := <-r.down[rank]
	if l := 2*rank + 1; l < r.p {
		r.down[l] <- res
	}
	if rt := 2*rank + 2; rt < r.p {
		r.down[rt] <- res
	}
	return res
}
