// Package decomp is the domain-decomposition layer extracted from the
// Finite Element Machine simulator: the per-processor data layout (owned
// nodes, border/halo sets, neighbor links over mesh.Partition), a generic
// buffered link fabric, a deterministic tree all-reduce, and a real —
// unsimulated — parallel m-step PCG solver whose halo exchange moves
// actual residual and search-direction border values between subdomain
// goroutines.
//
// The package serves two consumers. internal/femachine wraps the same
// Decomposition in its simulated-clock processors (the TimeModel stays an
// observer of the identical layout), and internal/engine runs
// Decomposition.Solve directly as the planner's "decomposed" backend for
// systems too large for one cache-resident matrix. Extracting the layout
// once guarantees the simulation and the execution path can never drift:
// they partition, exchange and reduce over the very same structures.
package decomp

import (
	"fmt"

	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/sparse"
)

// Problem is the decomposition's view of a problem: a multicolor-ordered
// SPD system plus the node-level facts needed to distribute it. Both the
// paper's rectangular plate and the §5 irregular-region extension adapt to
// it (femachine.ColoredProblem is an alias of this type).
type Problem struct {
	Grid       mesh.Grid
	KColored   *sparse.CSR
	RHS        []float64
	GroupStart []int
	NumColors  int
	// Free lists the natural ids of free nodes in natural order; free node
	// k owns reduced dofs 2k and 2k+1.
	Free []int
	// ColorOf returns the node color of a natural node id.
	ColorOf func(node int) int
	// ColoredIndex maps (free-list position, component) to the colored
	// unknown index.
	ColoredIndex func(freeIdx, comp int) int
	// Constrained marks nodes excluded from the unknown set (for irregular
	// regions this includes inactive nodes).
	Constrained mesh.Constraint
}

// PlateProblem adapts the paper's rectangular plate.
func PlateProblem(plate *fem.Plate) Problem {
	o := plate.Ordering
	inv := o.Perm.Inverse()
	return Problem{
		Grid:       plate.Grid,
		KColored:   plate.KColored,
		RHS:        plate.ColoredRHS(),
		GroupStart: o.GroupStart[:],
		NumColors:  mesh.NumColors,
		Free:       plate.Free,
		ColorOf:    func(node int) int { return int(plate.Grid.ColorOfID(node)) },
		ColoredIndex: func(freeIdx, comp int) int {
			return inv[2*freeIdx+comp]
		},
		Constrained: plate.Constrained,
	}
}

// Validate checks the problem's structural consistency.
func (p Problem) Validate() error {
	if p.NumColors < 1 {
		return fmt.Errorf("decomp: problem has %d colors", p.NumColors)
	}
	if len(p.GroupStart) != 2*p.NumColors+1 {
		return fmt.Errorf("decomp: %d group boundaries for %d colors", len(p.GroupStart), p.NumColors)
	}
	if p.KColored.Rows != 2*len(p.Free) {
		return fmt.Errorf("decomp: system dim %d != 2×%d free nodes", p.KColored.Rows, len(p.Free))
	}
	return nil
}
