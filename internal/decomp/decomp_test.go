package decomp_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/cg"
	"repro/internal/decomp"
	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/splitting"
)

func makePlate(t *testing.T, rows, cols int) *fem.Plate {
	t.Helper()
	p, err := fem.NewPlate(rows, cols, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// serialSolve runs the single-matrix reference path.
func serialSolve(t *testing.T, plate *fem.Plate, m int, tol float64) ([]float64, cg.Stats) {
	t.Helper()
	k := plate.KColored
	var p precond.Preconditioner = precond.Identity{}
	if m > 0 {
		mc, err := splitting.NewSixColorSSOR(k, plate.Ordering.GroupStart[:])
		if err != nil {
			t.Fatal(err)
		}
		p, err = precond.NewMStep(mc, poly.Ones(m))
		if err != nil {
			t.Fatal(err)
		}
	}
	u, st, err := cg.Solve(k, plate.ColoredRHS(), p, cg.Options{Tol: tol, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	return u, st
}

func decomposedSolve(t *testing.T, plate *fem.Plate, p, m int, strat mesh.Strategy, tol float64) ([]float64, decomp.Stats) {
	t.Helper()
	d, err := decomp.New(decomp.PlateProblem(plate), p, strat)
	if err != nil {
		t.Fatal(err)
	}
	opt := decomp.Options{M: m, Tol: tol, MaxIter: 10000}
	if m > 0 {
		opt.Alphas = poly.Ones(m).Coeffs
	}
	u, st, err := d.Solve(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	return u, st
}

// TestDecomposedMatchesSerial is the agreement property of the ISSUE: the
// decomposed backend solves the same plates to the same answer as the
// single-matrix path, across plate sizes, processor counts, partition
// strategies and preconditioner depths. Runs under -race in CI.
func TestDecomposedMatchesSerial(t *testing.T) {
	plates := []struct{ rows, cols int }{{6, 6}, {13, 9}, {20, 20}}
	for _, sz := range plates {
		plate := makePlate(t, sz.rows, sz.cols)
		for _, m := range []int{0, 2} {
			serialU, serialStats := serialSolve(t, plate, m, 1e-6)
			var scale float64
			for _, v := range serialU {
				if a := math.Abs(v); a > scale {
					scale = a
				}
			}
			for _, strat := range []mesh.Strategy{mesh.RowStrips, mesh.ColStrips} {
				for _, p := range []int{1, 2, 3, 4} {
					u, st := decomposedSolve(t, plate, p, m, strat, 1e-6)
					if !st.Converged {
						t.Fatalf("%dx%d m=%d P=%d %v: not converged", sz.rows, sz.cols, m, p, strat)
					}
					if di := st.Iterations - serialStats.Iterations; di > 1 || di < -1 {
						t.Fatalf("%dx%d m=%d P=%d %v: %d iterations vs serial %d",
							sz.rows, sz.cols, m, p, strat, st.Iterations, serialStats.Iterations)
					}
					for i := range serialU {
						if d := math.Abs(u[i] - serialU[i]); d > 1e-5*scale+1e-9 {
							t.Fatalf("%dx%d m=%d P=%d %v: solution deviates at %d by %g",
								sz.rows, sz.cols, m, p, strat, i, d)
						}
					}
				}
			}
		}
	}
}

// TestDecomposedBlocksStrategy covers the third partition strategy on a
// plate that tiles cleanly.
func TestDecomposedBlocksStrategy(t *testing.T) {
	plate := makePlate(t, 12, 13) // 12 rows x 12 free columns
	serialU, _ := serialSolve(t, plate, 3, 1e-6)
	u, st := decomposedSolve(t, plate, 4, 3, mesh.Blocks, 1e-6)
	if !st.Converged {
		t.Fatal("not converged")
	}
	for i := range serialU {
		if d := math.Abs(u[i] - serialU[i]); d > 1e-6 {
			t.Fatalf("solution deviates at %d by %g", i, d)
		}
	}
}

// TestDecomposedDeterministic: the tree reduction combines in fixed rank
// order, so repeated runs are bitwise identical despite goroutine
// scheduling.
func TestDecomposedDeterministic(t *testing.T) {
	plate := makePlate(t, 10, 10)
	d, err := decomp.New(decomp.PlateProblem(plate), 4, mesh.RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	opt := decomp.Options{M: 2, Alphas: poly.Ones(2).Coeffs, Tol: 1e-6, MaxIter: 10000}
	u0, st0, err := d.Solve(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		u, st, err := d.Solve(nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		if st.Iterations != st0.Iterations {
			t.Fatalf("run %d: %d iterations vs %d", run, st.Iterations, st0.Iterations)
		}
		for i := range u0 {
			if u[i] != u0[i] {
				t.Fatalf("run %d: nondeterministic at %d: %g vs %g", run, i, u[i], u0[i])
			}
		}
	}
}

// TestDecompositionSharedAcrossConcurrentSolves: the Decomposition is
// immutable after New, so one cached instance may serve concurrent solves
// (the engine relies on this). Run under -race.
func TestDecompositionSharedAcrossConcurrentSolves(t *testing.T) {
	plate := makePlate(t, 10, 10)
	d, err := decomp.New(decomp.PlateProblem(plate), 3, mesh.RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	opt := decomp.Options{M: 1, Alphas: poly.Ones(1).Coeffs, Tol: 1e-6, MaxIter: 10000}
	ref, _, err := d.Solve(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			u, _, err := d.Solve(nil, opt)
			if err != nil {
				errc <- err
				return
			}
			for i := range ref {
				if u[i] != ref[i] {
					t.Errorf("concurrent solve diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestSolveOptionValidation(t *testing.T) {
	plate := makePlate(t, 6, 6)
	d, err := decomp.New(decomp.PlateProblem(plate), 2, mesh.RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Solve(nil, decomp.Options{M: 2, Tol: 1e-6}); err == nil {
		t.Fatal("want error for M=2 without Alphas")
	}
	if _, _, err := d.Solve(nil, decomp.Options{}); err == nil {
		t.Fatal("want error with no stopping test")
	}
	if _, _, err := d.Solve(make([]float64, 3), decomp.Options{Tol: 1e-6}); err == nil {
		t.Fatal("want error for wrong rhs length")
	}
}

func TestSolveCancellation(t *testing.T) {
	plate := makePlate(t, 20, 20)
	d, err := decomp.New(decomp.PlateProblem(plate), 4, mesh.RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = d.Solve(nil, decomp.Options{Tol: 1e-12, MaxIter: 10000, Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestHaloFraction: strip partitions of a plate replicate one row/column
// band per internal boundary; the fraction must be positive for P>1 and
// zero for P=1.
func TestHaloFraction(t *testing.T) {
	plate := makePlate(t, 16, 16)
	d1, err := decomp.New(decomp.PlateProblem(plate), 1, mesh.RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	if f := d1.HaloFraction(); f != 0 {
		t.Fatalf("P=1 halo fraction %g, want 0", f)
	}
	d4, err := decomp.New(decomp.PlateProblem(plate), 4, mesh.RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	if f := d4.HaloFraction(); f <= 0 || f > 1 {
		t.Fatalf("P=4 halo fraction %g out of range", f)
	}
	// Per-subdomain timing lands in Stats.Subs.
	_, st, err := d4.Solve(nil, decomp.Options{Tol: 1e-6, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Subs) != 4 {
		t.Fatalf("want 4 SubStats, got %d", len(st.Subs))
	}
	for _, ss := range st.Subs {
		if ss.Exchanges == 0 || ss.Reductions == 0 {
			t.Fatalf("rank %d: no exchanges/reductions recorded", ss.Rank)
		}
	}
}
