package decomp_test

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/poly"
)

// TestDecomposedSpeedupTracksSimulation measures the real decomposed solver
// at P ∈ {1, 2, 4, 8} on a plate large enough for the interior work to
// dominate the borders, asserting (a) every processor count reproduces the
// serial solution and (b) the measured speedup at the largest P stays within
// a factor of the Finite Element Machine simulation's prediction for the
// same partition. The factor is generous (3×) because the simulation charges
// ideal hardware — no scheduler, no memory hierarchy — while the measurement
// shares cores with the host; the point is that the paper's predicted
// scaling trend is real, not that the clock model is calibrated.
func TestDecomposedSpeedupTracksSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	ncpu := runtime.NumCPU()
	if ncpu < 4 {
		t.Skipf("need at least 4 CPUs to measure scaling, have %d", ncpu)
	}

	const (
		rows, cols = 140, 140
		m          = 2
		tol        = 1e-5
	)
	plate := makePlate(t, rows, cols)
	alphas := poly.Ones(m).Coeffs

	serialU, _ := serialSolve(t, plate, m, tol)
	var scale float64
	for _, v := range serialU {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}

	var procs []int
	for _, p := range []int{1, 2, 4, 8} {
		if p <= ncpu {
			procs = append(procs, p)
		}
	}

	elapsed := map[int]float64{}
	for _, p := range procs {
		d, err := decomp.New(decomp.PlateProblem(plate), p, mesh.RowStrips)
		if err != nil {
			t.Fatal(err)
		}
		opt := decomp.Options{M: m, Alphas: alphas, Tol: tol, MaxIter: 10000}
		best := math.Inf(1)
		var u []float64
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			var st decomp.Stats
			u, st, err = d.Solve(nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Converged {
				t.Fatalf("P=%d did not converge", p)
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		elapsed[p] = best
		for i := range u {
			if diff := math.Abs(u[i] - serialU[i]); diff > 1e-4*scale+1e-9 {
				t.Fatalf("P=%d deviates from the serial solution at %d by %g", p, i, diff)
			}
		}
		t.Logf("P=%d: %.3fs (speedup %.2f×)", p, best, elapsed[1]/best)
	}

	// The simulation's prediction for the same plate and partition.
	pmax := procs[len(procs)-1]
	simTime := func(p int) float64 {
		mach, err := femachine.New(plate, femachine.Config{
			P: p, Strategy: mesh.RowStrips, M: m, Alphas: alphas,
			Tol: tol, MaxIter: 10000, Time: femachine.DefaultTimeModel(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mach.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	predicted := simTime(1) / simTime(pmax)
	measured := elapsed[1] / elapsed[pmax]
	t.Logf("P=%d speedup: measured %.2f×, simulated %.2f×", pmax, measured, predicted)
	if measured < predicted/3 {
		t.Errorf("P=%d speedup %.2f× is more than 3× below the simulation's %.2f×",
			pmax, measured, predicted)
	}
}
