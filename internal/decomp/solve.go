package decomp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/kernel"
)

// Solver errors. All ranks reduce the same quantities, so every rank takes
// the same branch and returns the same error — the fabric can never
// deadlock on divergent control flow.
var (
	ErrMaxIterations     = errors.New("decomp: maximum iterations reached without convergence")
	ErrNotPositiveDef    = errors.New("decomp: matrix not positive definite")
	ErrPrecondIndefinite = errors.New("decomp: preconditioner not positive definite")
)

// Options configures a decomposed solve.
type Options struct {
	// M is the preconditioner step count (0 = plain CG); Alphas must have
	// length M when M > 0.
	M      int
	Alphas []float64
	// Tol is the paper's ‖Δu‖_∞ threshold; RelResidualTol tests
	// ‖r‖₂/‖f‖₂. At least one must be positive.
	Tol            float64
	RelResidualTol float64
	MaxIter        int // 0 = 10·n
	// Ctx, when set, is polled each iteration; cancellation propagates to
	// every rank through the reduction's flag lane.
	Ctx context.Context
	// OnIteration, when set, fires on rank 0 once per CG iteration.
	OnIteration func(iter int, udiff, relres float64)
}

// SubStats is one subdomain's measured wall-time breakdown.
type SubStats struct {
	Rank          int
	HaloSeconds   float64 // packing, link sends and drains
	SweepSeconds  float64 // local kernels: row sums, group solves, vector ops
	ReduceSeconds float64 // all-reduce rendezvous (includes wait)
	Exchanges     int     // messages sent
	Reductions    int
}

// Stats reports a decomposed solve.
type Stats struct {
	Iterations    int
	Converged     bool
	FinalUDiff    float64
	FinalRelRes   float64
	MatVecs       int
	PrecondApps   int
	InnerProducts int
	Subdomains    int
	Subs          []SubStats
}

// Solve runs the m-step preconditioned CG of Algorithm 1 for real: one
// goroutine per subdomain, halo exchanges moving actual border values over
// the link fabric, inner products via the tree reducer. f is the right-hand
// side in the global colored ordering (nil = the problem's own RHS); the
// returned solution uses the same ordering.
//
// Interior rows never reference halo columns, so every matrix-vector
// product and every sweep group solves its interior while the border
// exchange is in flight and its border rows after the drain — communication
// hides behind computation without changing any arithmetic ordering within
// a group (group solves are order-independent: same-color nodes are never
// stencil-adjacent).
func (d *Decomposition) Solve(f []float64, opt Options) ([]float64, Stats, error) {
	n := d.Prob.KColored.Rows
	if f == nil {
		f = d.Prob.RHS
	}
	if len(f) != n {
		return nil, Stats{}, fmt.Errorf("decomp: rhs length %d != system dim %d", len(f), n)
	}
	if opt.M < 0 || (opt.M > 0 && len(opt.Alphas) != opt.M) {
		return nil, Stats{}, fmt.Errorf("decomp: need len(Alphas) == M, got %d vs %d", len(opt.Alphas), opt.M)
	}
	if opt.Tol <= 0 && opt.RelResidualTol <= 0 {
		return nil, Stats{}, fmt.Errorf("decomp: no stopping test enabled (Tol and RelResidualTol both unset)")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}

	links := NewLinks[[]float64](d, LinkDepth)
	red := newTreeReducer(d.P)
	workers := make([]*worker, d.P)
	for p := 0; p < d.P; p++ {
		workers[p] = newWorker(d, d.Subs[p], links, red, opt, f)
	}

	var wg sync.WaitGroup
	errs := make([]error, d.P)
	for p := 0; p < d.P; p++ {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			errs[w.sd.Rank] = w.run()
		}(workers[p])
	}
	wg.Wait()

	u := make([]float64, n)
	st := Stats{Subdomains: d.P, Subs: make([]SubStats, d.P)}
	for p, w := range workers {
		for i, gidx := range w.sd.ColoredIdx {
			u[gidx] = w.u[i]
		}
		st.Subs[p] = w.stats
	}
	w0 := workers[0]
	st.Iterations = w0.iterations
	st.Converged = w0.converged
	st.FinalUDiff = w0.finalUDiff
	st.FinalRelRes = w0.finalRelRes
	st.MatVecs = w0.matVecs
	st.PrecondApps = w0.precondApps
	st.InnerProducts = w0.innerProducts
	for _, err := range errs {
		if err != nil {
			return u, st, err
		}
	}
	return u, st, nil
}

// worker is one subdomain's run state for a single solve. Everything here
// is private to the owning goroutine; the shared Decomposition is never
// written.
type worker struct {
	d     *Decomposition
	sd    *Subdomain
	links *Links[[]float64]
	red   *treeReducer
	opt   Options
	kern  *kernel.Impl // dispatch table for the local dot/gather kernels

	u, r, kp   []float64 // own dofs
	rhat, pvec []float64 // own + halo dofs
	ycache     []float64 // Conrad–Wallach cache, own dofs
	f          []float64 // own dofs

	// Per-neighbor double-buffered send payloads, sized from the
	// partition's actual border width (MaxSendWords): the receiver copies
	// a buffer out before its sender can reuse it (the ≤2-in-flight bound
	// documented at LinkDepth), so two slots suffice and the hot path
	// never allocates.
	sendBufs [][2][]float64
	sendIdx  []int

	// At most one exchange is outstanding at a time: post() records the
	// destination vector and colors, drain() completes the scatter.
	pendingVec    []float64
	pendingColors []int
	hasPending    bool

	stats         SubStats
	iterations    int
	converged     bool
	finalUDiff    float64
	finalRelRes   float64
	matVecs       int
	precondApps   int
	innerProducts int
}

func newWorker(d *Decomposition, sd *Subdomain, links *Links[[]float64], red *treeReducer, opt Options, f []float64) *worker {
	nd := 2 * sd.NOwn
	w := &worker{
		d: d, sd: sd, links: links, red: red, opt: opt,
		kern: kernel.Active(),
		u:    make([]float64, nd), r: make([]float64, nd), kp: make([]float64, nd),
		rhat: make([]float64, 2*sd.NAll), pvec: make([]float64, 2*sd.NAll),
		ycache:   make([]float64, nd),
		f:        make([]float64, nd),
		sendBufs: make([][2][]float64, len(sd.Neighbors)),
		sendIdx:  make([]int, len(sd.Neighbors)),
	}
	w.stats.Rank = sd.Rank
	for flat, gidx := range sd.ColoredIdx {
		w.f[flat] = f[gidx]
	}
	for ni, q := range sd.Neighbors {
		words := sd.MaxSendWords[q]
		w.sendBufs[ni] = [2][]float64{
			make([]float64, 0, words),
			make([]float64, 0, words),
		}
	}
	return w
}

// post packs the border values of the given node colors from v and sends
// one record per neighbor; the matching drain scatters the replies into
// v's halo. Send-all-then-recv-all over buffered links cannot deadlock.
func (w *worker) post(v []float64, colors []int) {
	if len(w.sd.Neighbors) > 0 {
		t0 := time.Now()
		for ni, q := range w.sd.Neighbors {
			idx := w.sendIdx[ni]
			w.sendIdx[ni] = idx ^ 1
			buf := w.sendBufs[ni][idx][:0]
			snd := w.sd.SendNodes[q]
			for _, c := range colors {
				for _, li := range snd[c] {
					buf = append(buf, v[2*li], v[2*li+1])
				}
			}
			w.sendBufs[ni][idx] = buf
			w.links.Send(w.sd.Rank, q, buf)
			w.stats.Exchanges++
		}
		w.stats.HaloSeconds += time.Since(t0).Seconds()
		w.hasPending = true
		w.pendingVec = v
		w.pendingColors = colors
	}
}

// drain completes the outstanding post: receive one record per neighbor
// and scatter it into the pending vector's halo entries. No-op when
// nothing is pending (P=1 or isolated subdomain).
func (w *worker) drain() {
	if !w.hasPending {
		return
	}
	w.hasPending = false
	t0 := time.Now()
	v, colors := w.pendingVec, w.pendingColors
	for _, q := range w.sd.Neighbors {
		vals := w.links.Recv(q, w.sd.Rank)
		i := 0
		rcv := w.sd.RecvNodes[q]
		for _, c := range colors {
			for _, li := range rcv[c] {
				v[2*li] = vals[i]
				v[2*li+1] = vals[i+1]
				i += 2
			}
		}
	}
	w.stats.HaloSeconds += time.Since(t0).Seconds()
}

// reduce is a timed all-reduce.
func (w *worker) reduce(v [2]float64, op reduceOp) [2]float64 {
	t0 := time.Now()
	out := w.red.allReduce(w.sd.Rank, v, op)
	w.stats.ReduceSeconds += time.Since(t0).Seconds()
	w.stats.Reductions++
	return out
}

// dot is the worker's local inner product, routed through the kernel
// dispatch table (same accumulation order as the portable loop).
func (w *worker) dot(a, b []float64) float64 {
	return w.kern.Dot(a, b)
}

// rowSum accumulates Σ Vals[k]·x[Cols[k]] over the half-open entry range
// [lo, hi).
func (w *worker) rowSum(lo, hi int32, x []float64) float64 {
	return w.kern.GatherDot32(w.sd.Vals[lo:hi], w.sd.Cols[lo:hi], x)
}

// kpNodes computes kp = K·p rows for both components of the listed local
// nodes. The diagonal is stored inside the row, so the sum runs in exactly
// the serial CSR column order.
func (w *worker) kpNodes(nodes []int) {
	ng := w.sd.NumGroups
	stride := ng + 1
	for _, li := range nodes {
		for comp := 0; comp < 2; comp++ {
			flat := 2*li + comp
			seg := w.sd.Seg[flat*stride:]
			w.kp[flat] = w.rowSum(seg[0], seg[ng], w.pvec)
		}
	}
}

// solveGroup runs one color-group solve of Algorithm 3 over the listed
// local nodes (the interior or border part of the group's color): combine
// the fresh one-sided sum, the Conrad–Wallach cache, and α·r, and divide
// by the diagonal. Group solves are order-independent — same-color nodes
// are never stencil-adjacent — so splitting a group into interior/border
// sub-passes changes no arithmetic.
func (w *worker) solveGroup(nodes []int, g int, alpha float64, forward, cache, solve bool) {
	comp := g % 2
	ng := w.sd.NumGroups
	stride := ng + 1
	for _, li := range nodes {
		flat := 2*li + comp
		seg := w.sd.Seg[flat*stride:]
		var x float64
		if forward {
			x = -w.rowSum(seg[0], seg[g], w.rhat)
		} else {
			x = -w.rowSum(seg[g+1], seg[ng], w.rhat)
		}
		if solve {
			w.rhat[flat] = (x + w.ycache[flat] + alpha*w.r[flat]) / w.sd.Diag[flat]
		}
		if cache {
			w.ycache[flat] = x
		}
	}
}

// msweep applies the m-step multicolor SSOR preconditioner (Algorithm 3)
// with interior/border overlap: each color's interior groups solve while
// the previous color's border exchange is still in flight; the drain lands
// exactly before the border groups need the fresh halo.
//
// Dependency argument for the reordering: a group's interior solves read
// no halo at all, own values of *other* colors (complete — their groups
// finished in a previous color pass), and the same node's other component
// (solved immediately before, in order). Border solves run only after the
// drain. The one ordering hazard is the final color-0 section, where group
// 0 reads own group-1 values of border nodes — so there group 1 completes
// (interior, drain, border) before group 0 starts.
func (w *worker) msweep() {
	m := w.opt.M
	sd := w.sd
	for i := range w.rhat {
		w.rhat[i] = 0
	}
	for i := range w.ycache {
		w.ycache[i] = 0
	}
	nc := w.d.NumColors
	lastGroup := 2*nc - 1
	for s := 1; s <= m; s++ {
		alpha := w.opt.Alphas[m-s]
		// Forward half-sweep: groups ascending; color c's solves need halo
		// colors < c, delivered by draining the previous color's post.
		for c := 0; c < nc; c++ {
			w.solveGroup(sd.ColorInterior[c], 2*c, alpha, true, true, true)
			w.solveGroup(sd.ColorInterior[c], 2*c+1, alpha, true, 2*c+1 < lastGroup, true)
			w.drain()
			w.solveGroup(sd.ColorBorder[c], 2*c, alpha, true, true, true)
			w.solveGroup(sd.ColorBorder[c], 2*c+1, alpha, true, 2*c+1 < lastGroup, true)
			w.post(w.rhat, w.d.colorSets[c])
		}
		// Backward half-sweep: skip the last group (identical re-solve);
		// color 0's u-solve is dead until the final step and its pair
		// travels with the next forward sweep.
		for c := nc - 1; c >= 1; c-- {
			if 2*c+1 != lastGroup {
				w.solveGroup(sd.ColorInterior[c], 2*c+1, alpha, false, true, true)
			}
			w.solveGroup(sd.ColorInterior[c], 2*c, alpha, false, true, true)
			w.drain()
			if 2*c+1 != lastGroup {
				w.solveGroup(sd.ColorBorder[c], 2*c+1, alpha, false, true, true)
			}
			w.solveGroup(sd.ColorBorder[c], 2*c, alpha, false, true, true)
			w.post(w.rhat, w.d.colorSets[c])
		}
		if lastGroup != 1 {
			// Group 1 must complete before group 0 reads it (group 0's
			// upper sum includes own border nodes' group-1 values).
			w.solveGroup(sd.ColorInterior[0], 1, alpha, false, true, true)
			w.drain()
			w.solveGroup(sd.ColorBorder[0], 1, alpha, false, true, true)
			w.solveGroup(sd.ColorInterior[0], 0, alpha, false, true, s == m)
			w.solveGroup(sd.ColorBorder[0], 0, alpha, false, true, s == m)
		} else {
			// One color: the forward sweep posted color 0 and the backward
			// loop never ran; group 0's upper sum reads group-1 halo values.
			w.solveGroup(sd.ColorInterior[0], 0, alpha, false, true, s == m)
			w.drain()
			w.solveGroup(sd.ColorBorder[0], 0, alpha, false, true, s == m)
		}
	}
}

// applyPrecond sets rhat = M⁻¹·r (identity copy when M = 0).
func (w *worker) applyPrecond() {
	if w.opt.M == 0 {
		copy(w.rhat[:2*w.sd.NOwn], w.r)
		return
	}
	w.msweep()
	w.precondApps++
}

// run is the per-rank PCG driver, mirroring cg.SolveInto's iteration
// structure (same stopping tests, same breakdown checks) so decomposed
// results are comparable with the single-matrix path.
func (w *worker) run() error {
	opt := w.opt
	n := 2 * w.sd.NOwn

	// r⁰ = f with u⁰ = 0 (no initial product, matching cg.SolveInto).
	copy(w.r, w.f)

	sf := w.dot(w.f, w.f)
	normF := math.Sqrt(w.reduce([2]float64{sf, 0}, opSum)[0])
	if normF == 0 {
		normF = 1
	}
	w.innerProducts++

	w.applyPrecond()
	copy(w.pvec[:n], w.rhat[:n])
	rho := w.reduce([2]float64{w.dot(w.rhat[:n], w.r), 0}, opSum)[0]
	w.innerProducts++
	if rho == 0 {
		w.converged = true
		return nil
	}

	for iter := 0; iter < opt.MaxIter; iter++ {
		it0 := time.Now()
		h0, r0 := w.stats.HaloSeconds, w.stats.ReduceSeconds

		// K·p with overlap: interior rows while border values are in
		// flight, border rows after the drain.
		w.post(w.pvec, w.d.AllColors)
		w.kpNodes(w.sd.Interior)
		w.drain()
		w.kpNodes(w.sd.Border)
		w.matVecs++
		pkpLocal := w.dot(w.pvec[:n], w.kp)

		pkp := w.reduce([2]float64{pkpLocal, 0}, opSum)[0]
		w.innerProducts++
		if pkp <= 0 {
			w.accountSweep(it0, h0, r0)
			return ErrNotPositiveDef
		}
		alpha := rho / pkp

		var pmax float64
		for i := 0; i < n; i++ {
			w.u[i] += alpha * w.pvec[i]
			if a := math.Abs(w.pvec[i]); a > pmax {
				pmax = a
			}
		}
		w.iterations = iter + 1

		// ‖Δu‖_∞ and the cancellation flag share one max-reduce — the real
		// machine's signal-flag network folded into the tree.
		var cancel float64
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			cancel = 1
		}
		ud := w.reduce([2]float64{math.Abs(alpha) * pmax, cancel}, opMax)
		if ud[1] > 0 {
			w.accountSweep(it0, h0, r0)
			if opt.Ctx != nil && opt.Ctx.Err() != nil {
				return opt.Ctx.Err()
			}
			return context.Canceled
		}
		udiff := ud[0]
		w.finalUDiff = udiff

		for i := 0; i < n; i++ {
			w.r[i] -= alpha * w.kp[i]
		}
		sr := w.dot(w.r, w.r)
		relres := math.Sqrt(w.reduce([2]float64{sr, 0}, opSum)[0]) / normF
		w.innerProducts++
		w.finalRelRes = relres

		if w.sd.Rank == 0 && opt.OnIteration != nil {
			opt.OnIteration(iter+1, udiff, relres)
		}
		if (opt.Tol > 0 && udiff < opt.Tol) || (opt.RelResidualTol > 0 && relres < opt.RelResidualTol) {
			w.converged = true
			w.accountSweep(it0, h0, r0)
			return nil
		}

		w.applyPrecond()
		rhoNext := w.reduce([2]float64{w.dot(w.rhat[:n], w.r), 0}, opSum)[0]
		w.innerProducts++
		if rhoNext < 0 {
			w.accountSweep(it0, h0, r0)
			return ErrPrecondIndefinite
		}
		if rhoNext == 0 {
			w.converged = true
			w.accountSweep(it0, h0, r0)
			return nil
		}
		beta := rhoNext / rho
		rho = rhoNext
		for i := 0; i < n; i++ {
			w.pvec[i] = w.rhat[i] + beta*w.pvec[i]
		}
		w.accountSweep(it0, h0, r0)
	}
	return ErrMaxIterations
}

// accountSweep attributes one iteration's wall time minus its halo and
// reduce shares to local kernel work.
func (w *worker) accountSweep(it0 time.Time, halo0, reduce0 float64) {
	s := time.Since(it0).Seconds() - (w.stats.HaloSeconds - halo0) - (w.stats.ReduceSeconds - reduce0)
	if s > 0 {
		w.stats.SweepSeconds += s
	}
}
