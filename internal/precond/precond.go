// Package precond assembles the paper's preconditioners: the identity
// (plain CG), and the m-step preconditioner M_m⁻¹ = (Σ αᵢGⁱ)P⁻¹ built from
// any splitting (§2), in unparametrized (αᵢ = 1) and parametrized
// (least-squares or Chebyshev) form. The truncated Neumann series
// preconditioner of Dubois, Greenbaum and Rodrigue is the Jacobi-splitting
// special case.
package precond

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/poly"
	"repro/internal/splitting"
	"repro/internal/vec"
)

// Preconditioner applies z = M⁻¹·r.
type Preconditioner interface {
	// Apply computes z = M⁻¹·r. z must not alias r.
	Apply(z, r []float64)
	// Name identifies the preconditioner in reports.
	Name() string
	// Steps returns m, the number of inner stationary steps per
	// application (0 for the identity).
	Steps() int
}

// BlockApplier is the multi-right-hand-side fast path: preconditioners
// that can serve a whole column block in one sweep implement it. Column j
// of the result must equal Apply on column j exactly, so block CG matches
// single-vector CG bit for bit.
type BlockApplier interface {
	// ApplyBlock computes z_j = M⁻¹·r_j for every column. z must not
	// alias r.
	ApplyBlock(z, r *vec.Multi)
}

// ApplyBlock computes z = M⁻¹·r column-block-wise: the preconditioner's
// fused block path when it has one, otherwise a per-column Apply loop (the
// column-contiguous Multi layout makes each column a zero-copy slice, so
// the fallback costs nothing beyond the s separate sweeps).
func ApplyBlock(p Preconditioner, z, r *vec.Multi) {
	if ba, ok := p.(BlockApplier); ok {
		ba.ApplyBlock(z, r)
		return
	}
	for j := 0; j < z.S; j++ {
		p.Apply(z.Col(j), r.Col(j))
	}
}

// InterleavedApplier is the row-interleaved-panel fast path: preconditioners
// that can serve a whole panel in one fused sweep implement it. Column j of
// the result must equal Apply on column j exactly — the BlockApplier
// contract carried over to the interleaved layout.
type InterleavedApplier interface {
	// CanApplyInterleaved reports whether the fused interleaved path is
	// available for this preconditioner's configuration. Callers (the block
	// CG solver) decide their block layout from this up front; there is no
	// per-apply fallback.
	CanApplyInterleaved() bool
	// ApplyInterleaved computes z_j = M⁻¹·r_j for every live column of the
	// panels; impl selects the kernel set (nil means the startup-selected
	// one). z must not alias r; z and r must share one stride.
	ApplyInterleaved(z, r *vec.IMulti, impl *kernel.Impl)
}

// CanApplyInterleaved reports whether p can serve interleaved panels
// directly — the layout probe behind the solvers' wide-block fast path.
func CanApplyInterleaved(p Preconditioner) bool {
	ia, ok := p.(InterleavedApplier)
	return ok && ia.CanApplyInterleaved()
}

// ApplyInterleaved computes z = M⁻¹·r over interleaved panels. The caller
// must have checked CanApplyInterleaved.
func ApplyInterleaved(p Preconditioner, z, r *vec.IMulti, impl *kernel.Impl) {
	p.(InterleavedApplier).ApplyInterleaved(z, r, impl)
}

// Identity is the trivial preconditioner M = I: plain conjugate gradient.
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// ApplyBlock copies r into z.
func (Identity) ApplyBlock(z, r *vec.Multi) { copy(z.Data, r.Data) }

// CanApplyInterleaved reports true: a copy works on any layout.
func (Identity) CanApplyInterleaved() bool { return true }

// ApplyInterleaved copies r into z.
func (Identity) ApplyInterleaved(z, r *vec.IMulti, _ *kernel.Impl) { copy(z.Data, r.Data) }

// Name identifies the preconditioner.
func (Identity) Name() string { return "none" }

// Steps returns 0.
func (Identity) Steps() int { return 0 }

// MStep is the m-step preconditioner over a splitting. When the splitting
// implements splitting.MStepApplier (the multicolor SSOR does, via the
// fused Conrad–Wallach sweeps of Algorithm 2) the fast path is used;
// otherwise m parametrized stationary steps are taken.
type MStep struct {
	Split           splitting.Splitting
	Alphas          poly.Alphas
	fast            splitting.MStepApplier
	fastBlock       splitting.MStepBlockApplier
	fastInterleaved splitting.MStepInterleavedApplier
}

// NewMStep builds the m-step preconditioner; m = Alphas.M() must be ≥ 1.
func NewMStep(sp splitting.Splitting, a poly.Alphas) (*MStep, error) {
	if a.M() < 1 {
		return nil, fmt.Errorf("precond: m-step preconditioner needs m >= 1, got %d", a.M())
	}
	m := &MStep{Split: sp, Alphas: a}
	if fa, ok := sp.(splitting.MStepApplier); ok {
		m.fast = fa
	}
	if fb, ok := sp.(splitting.MStepBlockApplier); ok {
		m.fastBlock = fb
	}
	if fi, ok := sp.(splitting.MStepInterleavedApplier); ok {
		m.fastInterleaved = fi
	}
	return m, nil
}

// Apply computes z = M_m⁻¹·r.
func (m *MStep) Apply(z, r []float64) {
	if m.fast != nil {
		m.fast.ApplyMStep(z, r, m.Alphas.Coeffs)
		return
	}
	for i := range z {
		z[i] = 0
	}
	mm := m.Alphas.M()
	for s := 1; s <= mm; s++ {
		m.Split.Step(z, r, m.Alphas.Coeffs[mm-s])
	}
}

// ApplyBlock computes z_j = M_m⁻¹·r_j for every column: one fused m-step
// block sweep when the splitting supports it, otherwise m steps per column.
func (m *MStep) ApplyBlock(z, r *vec.Multi) {
	if m.fastBlock != nil {
		m.fastBlock.ApplyMStepBlock(z, r, m.Alphas.Coeffs)
		return
	}
	for j := 0; j < z.S; j++ {
		m.Apply(z.Col(j), r.Col(j))
	}
}

// CanApplyInterleaved reports whether the splitting has a fused interleaved
// sweep for its configuration (the multicolor SSOR does at ω = 1).
func (m *MStep) CanApplyInterleaved() bool {
	return m.fastInterleaved != nil && m.fastInterleaved.CanApplyMStepInterleaved()
}

// ApplyInterleaved computes z_j = M_m⁻¹·r_j over interleaved panels through
// the splitting's fused sweep. The caller must have checked
// CanApplyInterleaved.
func (m *MStep) ApplyInterleaved(z, r *vec.IMulti, impl *kernel.Impl) {
	m.fastInterleaved.ApplyMStepInterleaved(z, r, m.Alphas.Coeffs, impl)
}

// Name identifies the preconditioner, e.g. "3-step ssor-multicolor
// (least-squares)".
func (m *MStep) Name() string {
	return fmt.Sprintf("%d-step %s (%s)", m.Alphas.M(), m.Split.Name(), m.Alphas.Kind)
}

// Steps returns m.
func (m *MStep) Steps() int { return m.Alphas.M() }
