package precond

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fem"
	"repro/internal/model"
	"repro/internal/poly"
	"repro/internal/sparse"
	"repro/internal/splitting"
	"repro/internal/vec"
)

func TestIdentity(t *testing.T) {
	var id Identity
	r := []float64{1, 2, 3}
	z := make([]float64, 3)
	id.Apply(z, r)
	for i := range r {
		if z[i] != r[i] {
			t.Fatal("identity changed vector")
		}
	}
	if id.Steps() != 0 || id.Name() != "none" {
		t.Fatal("identity metadata wrong")
	}
}

func TestNewMStepRejectsEmpty(t *testing.T) {
	k := model.Laplacian1D(5)
	j, _ := splitting.NewJacobi(k)
	if _, err := NewMStep(j, poly.Alphas{}); err == nil {
		t.Fatal("empty alphas accepted")
	}
}

func TestMStepJacobiIsNeumannSeries(t *testing.T) {
	// m-step Jacobi with αᵢ=1 equals the truncated Neumann series
	// Σ_{i<m} (I−D⁻¹K)ⁱ D⁻¹ applied to r.
	rng := rand.New(rand.NewSource(1))
	k := model.RandomSPD(rng, 15, 3)
	j, _ := splitting.NewJacobi(k)
	m := 4
	p, err := NewMStep(j, poly.Ones(m))
	if err != nil {
		t.Fatal(err)
	}
	r := model.RandomVec(rng, 15)
	z := make([]float64, 15)
	p.Apply(z, r)

	// Explicit Neumann sum.
	d := k.Diag()
	dinvr := make([]float64, 15)
	for i := range dinvr {
		dinvr[i] = r[i] / d[i]
	}
	term := vec.Clone(dinvr)
	want := vec.Clone(dinvr)
	tmp := make([]float64, 15)
	for i := 1; i < m; i++ {
		// term ← (I − D⁻¹K)·term
		k.MulVecTo(tmp, term)
		for q := range term {
			term[q] -= tmp[q] / d[q]
		}
		vec.Axpy(1, term, want)
	}
	for i := range want {
		if diff := z[i] - want[i]; diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("Neumann mismatch at %d: %g vs %g", i, z[i], want[i])
		}
	}
}

func TestMStepUsesFastPath(t *testing.T) {
	// The multicolor splitting implements MStepApplier; fused and step-wise
	// application must agree (the splitting package proves equivalence, here
	// we check the preconditioner actually routes through it and matches a
	// generic splitting of the same matrix).
	plate, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := splitting.NewSixColorSSOR(plate.KColored, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	nat, err := splitting.NewNaturalSSOR(plate.KColored, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := poly.Ones(3)
	pm, _ := NewMStep(mc, a)
	pn, _ := NewMStep(nat, a)
	if pm.fast == nil {
		t.Fatal("multicolor m-step did not take the fused path")
	}
	if pn.fast != nil {
		t.Fatal("natural SSOR unexpectedly has a fused path")
	}
	r := plate.ColoredRHS()
	z1 := make([]float64, plate.N())
	z2 := make([]float64, plate.N())
	pm.Apply(z1, r)
	pn.Apply(z2, r)
	for i := range z1 {
		if d := z1[i] - z2[i]; d > 1e-10 || d < -1e-10 {
			t.Fatalf("fused multicolor deviates from generic SSOR at %d: %g", i, d)
		}
	}
}

func TestMStepName(t *testing.T) {
	k := model.Laplacian1D(6)
	j, _ := splitting.NewJacobi(k)
	p, _ := NewMStep(j, poly.Ones(2))
	name := p.Name()
	if !strings.Contains(name, "2-step") || !strings.Contains(name, "jacobi") {
		t.Fatalf("name = %q", name)
	}
	if p.Steps() != 2 {
		t.Fatalf("Steps = %d", p.Steps())
	}
}

func TestValidateAcceptsSSORMStep(t *testing.T) {
	plate, err := fem.NewPlate(5, 5, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := splitting.NewSixColorSSOR(plate.KColored, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for m := 1; m <= 4; m++ {
		p, _ := NewMStep(mc, poly.Ones(m))
		if err := Validate(p, plate.N(), rng, 6); err != nil {
			t.Fatalf("m=%d SSOR preconditioner rejected: %v", m, err)
		}
	}
}

func TestEvenMJacobiIndefiniteOnWideSpectrum(t *testing.T) {
	// K = I + 0.6·(J−I) (3×3, SPD, eigenvalues {2.2, 0.4, 0.4}) has
	// λ_max(D⁻¹K) = 2.2 > 2, so the unparametrized m=2 Neumann
	// preconditioner has q(2.2) = 2.2·(1−1.2²)... < 0: indefinite. The
	// offending eigenvector is (1,1,1).
	coo := sparseSym3(0.6)
	j, err := splitting.NewJacobi(coo)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewMStep(j, poly.Ones(2))
	u := []float64{1, 1, 1}
	z := make([]float64, 3)
	p2.Apply(z, u)
	if q := vec.Dot(z, u); q >= 0 {
		t.Fatalf("m=2 Neumann quadratic form = %g, expected negative", q)
	}
	// Odd m stays definite on this vector: q(2.2) = 1−(−1.2)³ > 0.
	p3, _ := NewMStep(j, poly.Ones(3))
	p3.Apply(z, u)
	if q := vec.Dot(z, u); q <= 0 {
		t.Fatalf("m=3 Neumann quadratic form = %g, expected positive", q)
	}
	// The polynomial-level predictor agrees.
	if poly.Ones(2).PositiveOn(0.4, 2.2) {
		t.Fatal("Ones(2) claimed positive on [0.4, 2.2]")
	}
	if !poly.Ones(3).PositiveOn(0.4, 2.2) {
		t.Fatal("Ones(3) claimed non-positive on [0.4, 2.2]")
	}
}

func TestValidateDetectsAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if err := Validate(asym{}, 4, rng, 8); err == nil {
		t.Fatal("asymmetric operator accepted")
	}
}

func TestValidateDetectsIndefiniteness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if err := Validate(negate{}, 4, rng, 8); err == nil {
		t.Fatal("negative definite operator accepted")
	}
}

// sparseSym3 builds the 3×3 matrix with unit diagonal and off-diagonal a.
func sparseSym3(a float64) *sparse.CSR {
	c := sparse.NewCOO(3, 3)
	for i := 0; i < 3; i++ {
		c.Add(i, i, 1)
		for j := 0; j < 3; j++ {
			if i != j {
				c.Add(i, j, a)
			}
		}
	}
	return c.ToCSR()
}

// asym is an intentionally non-symmetric "preconditioner" for failure
// injection.
type asym struct{}

func (asym) Apply(z, r []float64) {
	copy(z, r)
	if len(z) > 1 {
		z[0] += 0.5 * r[1] // one-sided coupling
	}
}
func (asym) Name() string { return "asym" }
func (asym) Steps() int   { return 1 }

// negate is symmetric but negative definite.
type negate struct{}

func (negate) Apply(z, r []float64) {
	for i := range r {
		z[i] = -r[i]
	}
}
func (negate) Name() string { return "negate" }
func (negate) Steps() int   { return 1 }
