package precond

import (
	"fmt"
	"math/rand"

	"repro/internal/vec"
)

// Validate probabilistically checks the §2 requirements on a preconditioner
// of dimension n: M⁻¹ must act as a symmetric operator ((M⁻¹u, v) = (u,
// M⁻¹v)) and be positive definite ((M⁻¹u, u) > 0) over `trials` random
// probes. It returns a descriptive error on the first violation.
//
// This catches the classic failure the paper's theory warns about: an
// unparametrized even-m Jacobi (Neumann series) preconditioner on a matrix
// whose Jacobi-preconditioned spectrum reaches 2 is singular/indefinite.
func Validate(p Preconditioner, n int, rng *rand.Rand, trials int) error {
	if trials < 1 {
		trials = 8
	}
	u := make([]float64, n)
	v := make([]float64, n)
	mu := make([]float64, n)
	mv := make([]float64, n)
	for t := 0; t < trials; t++ {
		for i := 0; i < n; i++ {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		p.Apply(mu, u)
		p.Apply(mv, v)
		lhs := vec.Dot(mu, v)
		rhs := vec.Dot(u, mv)
		scale := 1 + abs(lhs) + abs(rhs)
		if abs(lhs-rhs) > 1e-8*scale {
			return fmt.Errorf("precond: %s is not symmetric: (M⁻¹u,v)=%g but (u,M⁻¹v)=%g", p.Name(), lhs, rhs)
		}
		if q := vec.Dot(mu, u); q <= 0 {
			return fmt.Errorf("precond: %s is not positive definite: (M⁻¹u,u)=%g", p.Name(), q)
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
