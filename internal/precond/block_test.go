package precond

import (
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/model"
	"repro/internal/poly"
	"repro/internal/splitting"
	"repro/internal/vec"
)

// TestApplyBlockIdentity: the identity block path is a plain copy.
func TestApplyBlockIdentity(t *testing.T) {
	r := vec.MultiFromCols([][]float64{{1, 2}, {3, 4}})
	z := vec.NewMulti(2, 2)
	ApplyBlock(Identity{}, z, r)
	for i := range r.Data {
		if z.Data[i] != r.Data[i] {
			t.Fatal("identity block apply changed values")
		}
	}
}

// TestApplyBlockFallbackMatchesApply: a splitting without a block fast path
// (Jacobi) must fall back to the per-column Apply loop and agree exactly.
func TestApplyBlockFallbackMatchesApply(t *testing.T) {
	k := model.Laplacian1D(12)
	j, err := splitting.NewJacobi(k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewMStep(j, poly.Ones(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	r := vec.NewMulti(12, 4)
	for i := range r.Data {
		r.Data[i] = rng.NormFloat64()
	}
	z := vec.NewMulti(12, 4)
	ApplyBlock(p, z, r)
	for col := 0; col < 4; col++ {
		want := make([]float64, 12)
		p.Apply(want, r.Col(col))
		for i := range want {
			if z.Col(col)[i] != want[i] {
				t.Fatalf("fallback col %d row %d: %g != %g", col, i, z.Col(col)[i], want[i])
			}
		}
	}
}

// TestApplyBlockMulticolorFastPath: the multicolor SSOR fused block sweep,
// reached through the MStep preconditioner, must equal per-column Apply.
func TestApplyBlockMulticolorFastPath(t *testing.T) {
	plate, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := splitting.NewSixColorSSOR(plate.KColored, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewMStep(mc, poly.Ones(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.fastBlock == nil {
		t.Fatal("multicolor SSOR should provide the block fast path")
	}
	n := plate.N()
	rng := rand.New(rand.NewSource(6))
	r := vec.NewMulti(n, 5)
	for i := range r.Data {
		r.Data[i] = rng.NormFloat64()
	}
	z := vec.NewMulti(n, 5)
	ApplyBlock(p, z, r)
	for col := 0; col < 5; col++ {
		want := make([]float64, n)
		p.Apply(want, r.Col(col))
		for i := range want {
			if z.Col(col)[i] != want[i] {
				t.Fatalf("fast path col %d row %d: %g != %g", col, i, z.Col(col)[i], want[i])
			}
		}
	}
}
