package engine

import (
	"context"
	"strings"
	"testing"
	"time"
)

// spansByName indexes a trace's spans for assertion convenience; a name can
// appear more than once (tiles).
func spansByName(ti TraceInfo) map[string][]int {
	m := map[string][]int{}
	for i, sp := range ti.Spans {
		m[sp.Name] = append(m[sp.Name], i)
	}
	return m
}

// TestTraceTiledJobTimeline is the observability acceptance test: a solved
// batch job exposes its complete stage timeline — queue wait, assembly,
// preconditioner build phases, planning, per-tile solves, emit — with span
// durations that sum to within the measured job latency, plus a sampled
// convergence curve covering the batch's cases.
func TestTraceTiledJobTimeline(t *testing.T) {
	// Tile budget sized so the 20×20 plate (n=760) tiles the 20 cases.
	s := New(Config{Workers: 1, TileBudgetBytes: 8 * 760 * 48})
	defer s.Close()

	const cases = 20
	tr := make([]float64, cases)
	for i := range tr {
		tr[i] = float64(i+1) / 4
	}
	req := Request{
		Plate:  &PlateSpec{Rows: 20, Cols: 20, Tractions: tr},
		Solver: SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-8},
	}

	before := time.Now()
	v, err := s.Solve(context.Background(), req)
	elapsed := time.Since(before).Seconds()
	if err != nil {
		t.Fatal(err)
	}
	if v.State != JobDone || v.Result == nil || v.Result.Plan == nil {
		t.Fatalf("job did not complete: %+v", v)
	}

	ti, ok := s.Trace(v.ID)
	if !ok {
		t.Fatalf("no trace for finished job %s", v.ID)
	}
	if ti.JobID != v.ID || ti.State != JobDone {
		t.Fatalf("trace header = %s/%s, want %s/done", ti.JobID, ti.State, v.ID)
	}

	// Every pipeline stage appears, in pipeline order.
	byName := spansByName(ti)
	wantStages := []string{"queue", "assemble", "plan", "emit"}
	if req.Solver.M > 0 {
		wantStages = append(wantStages, "splitting_build", "spectral_estimate", "precond_build")
	}
	for _, name := range wantStages {
		if len(byName[name]) == 0 {
			t.Errorf("trace missing stage %q (have %v)", name, stageNames(ti))
		}
	}
	if got := len(byName["tile"]); got != len(v.Result.Plan.Tiles) {
		t.Errorf("trace has %d tile spans, plan has %d tiles", got, len(v.Result.Plan.Tiles))
	}
	if v.Result.Backend == "dia" && len(byName["dia_convert"]) == 0 {
		t.Error("DIA job traced no dia_convert span")
	}
	if ti.Spans[0].Name != "queue" {
		t.Errorf("first span = %q, want queue", ti.Spans[0].Name)
	}

	// Timeline invariants: start-ordered, closed, and worker-attributed.
	for i, sp := range ti.Spans {
		if sp.StartSeconds < 0 || sp.DurationSeconds < 0 {
			t.Errorf("span %q has negative timing: %+v", sp.Name, sp)
		}
		if i > 0 && sp.StartSeconds < ti.Spans[i-1].StartSeconds {
			t.Errorf("span %q starts before its predecessor", sp.Name)
		}
		if sp.Name != "queue" && sp.Worker < 0 {
			t.Errorf("span %q not attributed to a worker: %+v", sp.Name, sp)
		}
	}
	for _, i := range byName["tile"] {
		sp := ti.Spans[i]
		if sp.Iterations <= 0 {
			t.Errorf("tile span without iterations: %+v", sp)
		}
		if _, ok := sp.Attrs["tile"]; !ok {
			t.Errorf("tile span without tile attr: %+v", sp)
		}
	}

	// Spans are non-overlapping leaves, so their durations sum to at most
	// the job's total latency, which in turn sits inside the measured
	// wall-clock interval around Solve.
	var sum float64
	for _, sp := range ti.Spans {
		sum += sp.DurationSeconds
	}
	if sum > ti.TotalSeconds*(1+1e-9) {
		t.Errorf("span durations sum to %gs > job total %gs", sum, ti.TotalSeconds)
	}
	if ti.TotalSeconds > elapsed {
		t.Errorf("job total %gs exceeds measured wall time %gs", ti.TotalSeconds, elapsed)
	}

	// The plan span carries the planner's decision as attributes.
	planSp := ti.Spans[byName["plan"][0]]
	if planSp.Attrs["backend"] != v.Result.Backend {
		t.Errorf("plan span backend = %v, result backend = %s", planSp.Attrs["backend"], v.Result.Backend)
	}
	if _, ok := planSp.Attrs["probe"]; !ok {
		t.Error("plan span missing probe attributes")
	}

	// Convergence telemetry: samples present, case-indexed into the batch.
	if len(ti.Convergence) == 0 || ti.ConvergenceStride < 1 {
		t.Fatalf("no convergence samples (stride %d)", ti.ConvergenceStride)
	}
	for _, smp := range ti.Convergence {
		if smp.Case < 0 || smp.Case >= cases || smp.Iter < 1 {
			t.Fatalf("out-of-range convergence sample %+v", smp)
		}
	}

	// A finished trace replays: a later snapshot is identical.
	again, _ := s.Trace(v.ID)
	if again.TotalSeconds != ti.TotalSeconds || len(again.Spans) != len(ti.Spans) {
		t.Error("finished trace drifted between snapshots")
	}
}

func stageNames(ti TraceInfo) []string {
	names := make([]string, len(ti.Spans))
	for i, sp := range ti.Spans {
		names[i] = sp.Name
	}
	return names
}

// TestTraceCachedJob: a warm cache hit's trace records the checkout as a
// cache_wait span (hit=true) with no build stages, while the cold miss that
// populated the entry traced the build stages itself.
func TestTraceCachedJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	cold, err := s.Solve(context.Background(), plateReq(12, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Solve(context.Background(), plateReq(12, 12, 3))
	if err != nil {
		t.Fatal(err)
	}

	cti, _ := s.Trace(cold.ID)
	cb := spansByName(cti)
	if len(cb["cache_wait"]) != 1 || len(cb["assemble"]) != 1 {
		t.Fatalf("cold trace stages: %v", stageNames(cti))
	}
	wait := cti.Spans[cb["cache_wait"][0]]
	if wait.Attrs["hit"] != false || wait.Attrs["built"] != true {
		t.Fatalf("cold cache_wait attrs: %v", wait.Attrs)
	}

	wti, ok := s.Trace(warm.ID)
	if !ok {
		t.Fatalf("no trace for %s", warm.ID)
	}
	wb := spansByName(wti)
	if len(wb["cache_wait"]) != 1 {
		t.Fatalf("warm trace has no cache_wait span: %v", stageNames(wti))
	}
	if wti.Spans[wb["cache_wait"][0]].Attrs["hit"] != true {
		t.Fatalf("warm cache_wait attrs: %v", wti.Spans[wb["cache_wait"][0]].Attrs)
	}
	for _, stage := range []string{"assemble", "splitting_build", "spectral_estimate", "precond_build"} {
		if len(wb[stage]) != 0 {
			t.Errorf("cache hit re-traced build stage %q", stage)
		}
	}
}

// TestTraceCancelledJob: a cancelled job's trace stays retrievable and ends
// with a terminal cancelled span marking where the solve was cut off.
func TestTraceCancelledJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	job, err := s.Submit(slowReq())
	if err != nil {
		t.Fatal(err)
	}
	// Let it start, then cancel mid-solve.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if v, _ := s.Job(job.ID()); v.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !s.Cancel(job.ID()) {
		t.Fatal("cancel refused")
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job did not finish")
	}

	ti, ok := s.Trace(job.ID())
	if !ok {
		t.Fatal("cancelled job has no trace")
	}
	if ti.State != JobFailed {
		t.Fatalf("state = %s, want failed", ti.State)
	}
	last := ti.Spans[len(ti.Spans)-1]
	if last.Name != "cancelled" {
		t.Fatalf("terminal span = %q, want cancelled (stages %v)", last.Name, stageNames(ti))
	}
	if last.Attrs["reason"] == nil || last.Attrs["reason"] == "" {
		t.Fatalf("cancelled span missing reason: %v", last.Attrs)
	}
}

// TestStatsPerBackendLatency: forcing the two matvec backends populates
// their separate latency windows, and each quantile pair is ordered.
func TestStatsPerBackendLatency(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	for _, backend := range []string{"csr", "dia"} {
		req := plateReq(10, 10, 2)
		req.Solver.Backend = backend
		v, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if v.Result.Backend != backend {
			t.Fatalf("forced backend %q resolved to %q", backend, v.Result.Backend)
		}
	}

	st := s.Stats()
	if st.LatencyP50CSR <= 0 || st.LatencyP99CSR < st.LatencyP50CSR {
		t.Fatalf("csr quantiles p50=%g p99=%g", st.LatencyP50CSR, st.LatencyP99CSR)
	}
	if st.LatencyP50DIA <= 0 || st.LatencyP99DIA < st.LatencyP50DIA {
		t.Fatalf("dia quantiles p50=%g p99=%g", st.LatencyP50DIA, st.LatencyP99DIA)
	}
	if st.LatencyP50 <= 0 {
		t.Fatalf("overall p50 = %g", st.LatencyP50)
	}
}

// TestEngineMetricsExposition: after a hit/miss pair and solves on both
// backends, the rendered exposition carries the cache counters, per-backend
// solve counters, and the iteration/duration histograms the ISSUE names.
func TestEngineMetricsExposition(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	csrReq := plateReq(10, 10, 2)
	csrReq.Solver.Backend = "csr"
	if _, err := s.Solve(context.Background(), csrReq); err != nil {
		t.Fatal(err)
	}
	// Identical request again → a cache hit.
	if _, err := s.Solve(context.Background(), csrReq); err != nil {
		t.Fatal(err)
	}
	diaReq := plateReq(14, 10, 2)
	diaReq.Solver.Backend = "dia"
	if _, err := s.Solve(context.Background(), diaReq); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE repro_jobs_total counter",
		`repro_jobs_total{state="done"} 3`,
		"repro_cache_hits_total 1",
		"repro_cache_misses_total 2",
		`repro_solves_total{backend="csr"} 2`,
		`repro_solves_total{backend="dia"} 1`,
		"# TYPE repro_case_iterations histogram",
		"repro_case_iterations_count 3",
		`repro_job_duration_seconds_bucket{backend="csr",le="+Inf"} 2`,
		`repro_job_duration_seconds_bucket{backend="dia",le="+Inf"} 1`,
		"repro_queue_wait_seconds_count 3",
		"repro_workers 1",
		"repro_jobs_running 0",
		"repro_stream_subscribers 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
