package engine

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/plan"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vectorsim"
)

// cacheEntry is one fully-prepared problem: the assembled system, the
// estimated spectral interval (for parametrized coefficients), and a pool
// of ready preconditioners. The system and interval are immutable after
// build; preconditioners carry mutable sweep scratch (e.g. the
// Conrad–Wallach auxiliary vector), so concurrent jobs each check one out
// of the pool rather than sharing an instance.
type cacheEntry struct {
	key  string
	once sync.Once
	err  error

	sys   core.System
	plate *fem.Plate
	// cfg is the request's solver config with the estimated interval
	// pinned, so pooled preconditioner rebuilds never re-run the power
	// method.
	cfg      core.Config
	interval eigen.Interval
	alphas   poly.Alphas
	precond  string // display name

	// dia is the diagonal-storage conversion of sys.K, built at most once
	// per entry the first time a job resolves to the DIA backend and
	// shared (immutably) by every later DIA solve of this problem.
	diaOnce sync.Once
	dia     *sparse.DIA
	diaErr  error

	// decomps memoizes the plate's domain decompositions by subdomain
	// count. A Decomposition is immutable after construction (all per-solve
	// state lives in the solve call), so one instance serves every
	// decomposed solve of this problem at that processor count, including
	// concurrent ones.
	decompMu sync.Mutex
	decomps  map[int]*decomp.Decomposition

	// probeVal memoizes the planner's structure probe: the matrix is
	// immutable per entry, so the O(nnz) pattern scan runs once, not once
	// per request — and every re-plan of a warm request decides from the
	// identical probe (plan stability on cache hits).
	probeOnce sync.Once
	probeVal  plan.Probe

	// costVal memoizes the vectorsim cost analysis of the entry's system —
	// the paper's eq. (4.1) breakdown the self-tuning planner uses as its
	// prior for unmeasured step counts. Needs the multicolor group
	// boundaries; general systems without them memoize the error instead.
	costOnce sync.Once
	costVal  vectorsim.CostBreakdown
	costErr  error

	// alts holds per-step-count preconditioner pools for tuned plans whose
	// M differs from the request's: the splitting and pinned spectral
	// interval are shared with the main pool, so an alternate-M rebuild
	// never re-runs the power method.
	altMu sync.Mutex
	alts  map[int]*altPrecond

	pool sync.Pool // of precond.Preconditioner
}

// altPrecond is one alternate step count's preconditioner pool.
type altPrecond struct {
	pool   sync.Pool
	alphas poly.Alphas
	name   string
}

// build does the expensive setup exactly once per entry: plate assembly (or
// general-system conversion), splitting construction, interval estimation,
// and the first preconditioner. phase, when non-nil, brackets each stage
// ("assemble", then core's build phases) — the job that loses the cache
// race and ends up building records the stages on its own trace; planning
// probes pass nil.
func (e *cacheEntry) build(req *Request, phase func(name string) (end func())) {
	var end func()
	if phase != nil {
		end = phase("assemble")
	}
	sys, plate, err := req.assemble()
	if end != nil {
		end()
	}
	if err != nil {
		e.err = err
		return
	}
	cfg, err := req.coreConfig()
	if err != nil {
		e.err = err
		return
	}
	p, alphas, iv, err := core.BuildPreconditionerPhased(sys, cfg, phase)
	if err != nil {
		e.err = err
		return
	}
	e.sys, e.plate, e.interval, e.alphas, e.precond = sys, plate, iv, alphas, p.Name()
	if iv != (eigen.Interval{}) {
		// Pin the estimate: later preconditioner builds reuse it.
		cfg.Interval = &e.interval
	}
	e.cfg = cfg
	if pb := req.Prebuilt; pb != nil && pb.Probe != nil {
		// Seed the structure-probe memo from the caller's own memo: a
		// prebuilt problem's pattern is never rescanned, not even once.
		e.probeOnce.Do(func() { e.probeVal = *pb.Probe })
	}
	e.pool.Put(p)
}

// structureProbe returns the entry's memoized matrix structure scan, the
// planner's input for backend selection and tile sizing.
func (e *cacheEntry) structureProbe() *plan.Probe {
	e.probeOnce.Do(func() { e.probeVal = plan.NewProbe(e.sys.K) })
	return &e.probeVal
}

// getDIA returns the entry's diagonal-storage form of the system matrix,
// converting on first use. The conversion is cached alongside the CSR so
// repeated DIA-backend solves of one problem never re-convert.
func (e *cacheEntry) getDIA() (*sparse.DIA, error) {
	e.diaOnce.Do(func() { e.dia, e.diaErr = sparse.NewDIAFromCSR(e.sys.K) })
	return e.dia, e.diaErr
}

// getDecomp returns the entry's memoized p-way row-strip decomposition of
// its plate, partitioning on first use. Like the DIA conversion, it is
// cached alongside the CSR so repeated decomposed solves of one problem
// never re-partition the mesh.
func (e *cacheEntry) getDecomp(p int) (*decomp.Decomposition, error) {
	if e.plate == nil {
		return nil, errors.New("engine: decomposed backend needs a plate-backed problem (general systems carry no mesh to partition)")
	}
	e.decompMu.Lock()
	defer e.decompMu.Unlock()
	if d, ok := e.decomps[p]; ok {
		return d, nil
	}
	d, err := decomp.New(decomp.PlateProblem(e.plate), p, mesh.RowStrips)
	if err != nil {
		return nil, err
	}
	if e.decomps == nil {
		e.decomps = make(map[int]*decomp.Decomposition)
	}
	e.decomps[p] = d
	return d, nil
}

// checkout takes a preconditioner from the pool, rebuilding one when the
// pool is empty (or the GC emptied it). Rebuilds reuse the pinned spectral
// interval, so they never re-run the power method. A rebuild failure —
// which should be impossible after a successful first build — surfaces its
// real cause to the caller rather than an untyped nil.
func (e *cacheEntry) checkout() (precond.Preconditioner, error) {
	if p, ok := e.pool.Get().(precond.Preconditioner); ok && p != nil {
		return p, nil
	}
	np, _, _, err := core.BuildPreconditioner(e.sys, e.cfg)
	if err != nil {
		return nil, err
	}
	return np, nil
}

func (e *cacheEntry) release(p precond.Preconditioner) { e.pool.Put(p) }

// checkoutM takes a preconditioner built for m steps instead of the
// entry's configured count — how a tuned plan's M±1 candidates execute
// against a problem cached at another m. The first checkout of each
// alternate count builds it (reusing the pinned spectral interval and the
// entry's splitting configuration); later checkouts pool like the main
// path. The returned release puts the instance back.
func (e *cacheEntry) checkoutM(m int) (precond.Preconditioner, poly.Alphas, string, func(precond.Preconditioner), error) {
	if m == e.cfg.M {
		p, err := e.checkout()
		return p, e.alphas, e.precond, e.release, err
	}
	e.altMu.Lock()
	alt, ok := e.alts[m]
	e.altMu.Unlock()
	if ok {
		if p, pok := alt.pool.Get().(precond.Preconditioner); pok && p != nil {
			return p, alt.alphas, alt.name, alt.put, nil
		}
	}
	cfg := e.cfg
	cfg.M = m
	p, alphas, _, err := core.BuildPreconditioner(e.sys, cfg)
	if err != nil {
		return nil, poly.Alphas{}, "", nil, err
	}
	if alt == nil {
		alt = &altPrecond{alphas: alphas, name: p.Name()}
		e.altMu.Lock()
		if prev, ok := e.alts[m]; ok {
			alt = prev
		} else {
			if e.alts == nil {
				e.alts = make(map[int]*altPrecond)
			}
			e.alts[m] = alt
		}
		e.altMu.Unlock()
	}
	return p, alt.alphas, alt.name, alt.put, nil
}

func (a *altPrecond) put(p precond.Preconditioner) { a.pool.Put(p) }

// costModel returns the entry's memoized vectorsim analysis: the cost of
// one CG iteration (A) and one preconditioner step (B) on the model
// machine, the self-tuning planner's prior for unmeasured step counts.
func (e *cacheEntry) costModel() (vectorsim.CostBreakdown, error) {
	e.costOnce.Do(func() {
		if len(e.sys.GroupStart) < 2 {
			e.costErr = fmt.Errorf("%w: no multicolor group boundaries", vectorsim.ErrDegenerate)
			return
		}
		e.costVal, e.costErr = vectorsim.Analyze(vectorsim.Cyber203(), e.sys.K, e.sys.GroupStart, 0)
	})
	return e.costVal, e.costErr
}

// cacheShards caps the number of independently-locked cache segments. Keys
// hash to a shard, so concurrent batch traffic on distinct problems
// contends on distinct mutexes instead of serializing on one.
const cacheShards = 16

// minShardCapacity keeps shards from getting uselessly thin: small
// configured totals use fewer shards rather than thinner ones (a
// CacheSize below it degenerates to one shard — exactly the old
// single-LRU behavior).
const minShardCapacity = 4

// cache is a keyed LRU of prepared problems, sharded by key hash: each
// shard owns its own mutex and recency list, so the only cross-shard
// state is atomic counters. Capacity is a global bound, not a per-shard
// one — a shard holding many hot keys borrows capacity from idle shards,
// and eviction (from the inserting shard's LRU tail, an approximation of
// global LRU that needs no cross-shard lock) only happens once the whole
// cache is full, so any working set that fit the old single LRU still
// fits. Concurrent misses on the same key still share one build — the
// losers block on the entry's once.
type cache struct {
	shards []cacheShard
	max    int
	size   atomic.Int64

	hits, misses atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	lru     *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

// newCache builds a cache holding max entries in total over
// min(cacheShards, max/minShardCapacity) shards (at least one).
func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	nshards := max / minShardCapacity
	if nshards > cacheShards {
		nshards = cacheShards
	}
	if nshards < 1 {
		nshards = 1
	}
	c := &cache{shards: make([]cacheShard, nshards), max: max}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			lru:     list.New(),
			entries: make(map[string]*list.Element),
		}
	}
	return c
}

// shard picks the key's segment by inline FNV-1a (allocation-free — the
// stdlib hash escapes to the heap through its interface, and this runs on
// every cached request).
func (c *cache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

// get returns the entry for key, creating it on miss, and whether the entry
// already existed. The caller must run entry.once before using the fields.
func (c *cache) get(key string) (*cacheEntry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry), true
	}
	e := &cacheEntry{key: key}
	s.entries[key] = s.lru.PushFront(e)
	// Evict only when the cache as a whole is over capacity, and only
	// from this shard (never the entry just inserted). The total can
	// transiently exceed max by at most one entry per single-entry shard.
	if c.size.Add(1) > int64(c.max) && s.lru.Len() > 1 {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
		c.size.Add(-1)
	}
	c.misses.Add(1)
	return e, false
}

// peek returns the entry for key without creating one, touching the LRU
// order, or counting a hit/miss (read-only callers like request planning
// must not perturb the cache they are describing). An empty key — an
// uncacheable request — never matches.
func (c *cache) peek(key string) (*cacheEntry, bool) {
	if key == "" {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry), true
}

// drop removes e from its shard (used when its build fails, so the error
// is not cached forever). It compares identity: if the key has already
// been replaced by a newer — possibly healthy — entry, that entry stays.
func (c *cache) drop(e *cacheEntry) {
	s := c.shard(e.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[e.key]; ok && el.Value.(*cacheEntry) == e {
		s.lru.Remove(el)
		delete(s.entries, e.key)
		c.size.Add(-1)
	}
}

func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
