package engine

import (
	"io"
	"log/slog"

	"repro/internal/obs"
)

// Histogram bucket bounds. Durations span sub-millisecond cache hits to
// multi-second cold builds; iteration counts span the paper's observed
// range (tens for well-preconditioned plates) up to the divergence guard.
var (
	durationBuckets  = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	iterationBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}
	// throughputBuckets span realized rhs/s from multi-second scalar solves
	// to sub-millisecond warm batched ones.
	throughputBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
)

// registerMetrics builds the engine's instrument registry. Counters and
// gauges that already live in the engine's own bookkeeping are exposed as
// func-backed series read at scrape time — one source of truth, no double
// bookkeeping; only the histograms are dedicated instruments, observed from
// the job pipeline.
func (s *Engine) registerMetrics() {
	r := obs.NewRegistry()
	s.metrics = r

	counter := func(p *int64) func() float64 {
		return func() float64 {
			s.cmu.Lock()
			defer s.cmu.Unlock()
			return float64(*p)
		}
	}

	r.CounterFunc("repro_jobs_total", "Finished jobs by terminal state.",
		counter(&s.jobsDone), obs.Label{Key: "state", Value: "done"})
	r.CounterFunc("repro_jobs_total", "Finished jobs by terminal state.",
		counter(&s.jobsFailed), obs.Label{Key: "state", Value: "failed"})
	r.CounterFunc("repro_solves_total", "Jobs by the matvec backend they resolved to.",
		counter(&s.solvesCSR), obs.Label{Key: "backend", Value: "csr"})
	r.CounterFunc("repro_solves_total", "Jobs by the matvec backend they resolved to.",
		counter(&s.solvesDIA), obs.Label{Key: "backend", Value: "dia"})
	r.CounterFunc("repro_solves_total", "Jobs by the matvec backend they resolved to.",
		counter(&s.solvesDecomposed), obs.Label{Key: "backend", Value: "decomposed"})
	r.CounterFunc("repro_cg_iterations_total", "CG iterations summed over every solve (block iterations for tiles).",
		counter(&s.totalIters))
	r.CounterFunc("repro_tiles_executed_total", "Executed plan tiles (a scalar solve counts one).",
		counter(&s.tilesExecuted))
	r.CounterFunc("repro_plan_feedback_total", "Executed plans whose realized throughput fed the self-tuning planner.",
		counter(&s.planFeedback))

	r.CounterFunc("repro_cache_hits_total", "Problem cache hits.",
		func() float64 { return float64(s.cache.hits.Load()) })
	r.CounterFunc("repro_cache_misses_total", "Problem cache misses.",
		func() float64 { return float64(s.cache.misses.Load()) })

	r.GaugeFunc("repro_queue_depth", "Jobs waiting in the bounded queue.",
		func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("repro_jobs_running", "Jobs currently executing on the worker pool.",
		counter(&s.running))
	r.GaugeFunc("repro_stream_subscribers", "Open per-case result streams.",
		counter(&s.streamSubs))
	r.GaugeFunc("repro_cache_entries", "Resident problem cache entries.",
		func() float64 { return float64(s.cache.len()) })
	r.GaugeFunc("repro_workers", "Worker pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("repro_uptime_seconds", "Engine uptime.",
		func() float64 { return s.Stats().UptimeSeconds })

	s.hQueueWait = r.Histogram("repro_queue_wait_seconds",
		"Enqueue to dequeue wait per job.", durationBuckets)
	s.hJobDuration = map[string]*obs.Histogram{
		"csr": r.Histogram("repro_job_duration_seconds",
			"Enqueue to completion latency per job, by resolved backend.",
			durationBuckets, obs.Label{Key: "backend", Value: "csr"}),
		"dia": r.Histogram("repro_job_duration_seconds",
			"Enqueue to completion latency per job, by resolved backend.",
			durationBuckets, obs.Label{Key: "backend", Value: "dia"}),
		"decomposed": r.Histogram("repro_job_duration_seconds",
			"Enqueue to completion latency per job, by resolved backend.",
			durationBuckets, obs.Label{Key: "backend", Value: "decomposed"}),
	}
	s.hCaseIters = r.Histogram("repro_case_iterations",
		"CG iterations per right-hand side (each case of a batch counts once).",
		iterationBuckets)
	s.hPlanRHS = r.Histogram("repro_plan_rhs_per_second",
		"Realized right-hand sides per second of execute time, per tuner-observed job.",
		throughputBuckets)
}

// Metrics returns the engine's instrument registry (for callers composing
// their own exposition endpoint).
func (s *Engine) Metrics() *obs.Registry { return s.metrics }

// Logger returns the engine's structured logger (the configured one, or
// the discard logger), so the layers above log to the same destination.
func (s *Engine) Logger() *slog.Logger { return s.logger }

// WriteMetrics renders the registry in Prometheus text exposition format —
// the body of GET /metrics.
func (s *Engine) WriteMetrics(w io.Writer) error { return s.metrics.WriteProm(w) }

// tileObserver adapts one tile's block solve to the job-wide convergence
// log: the solver reports tile-local column indices, the log records the
// job's case numbering. It is a value (no pointer) so attaching it to
// cg.Options allocates at most once per tile, never per iteration.
type tileObserver struct {
	log   *obs.ConvergenceLog
	cases []int
}

func (t tileObserver) ObserveIteration(col, iter int, udiff, relres float64) {
	t.log.ObserveIteration(t.cases[col], iter, udiff, relres)
}

// TraceInfo is the payload of GET /v1/jobs/{id}/trace: the job's stage
// timeline plus its sampled convergence curve. Available while the job
// runs (spans still open report provisional durations) and replayable for
// as long as the job stays in the engine's finished-job history.
type TraceInfo struct {
	JobID string   `json:"job_id"`
	State JobState `json:"state"`
	// TotalSeconds is submit → completion (or → now while unfinished).
	TotalSeconds float64 `json:"total_seconds"`
	// Spans is the stage timeline in start order.
	Spans []obs.SpanView `json:"spans"`
	// ConvergenceStride reports the sampling stride of Convergence: 1 means
	// every iteration was kept; 2ᵏ means the log decimated k times to stay
	// in bounded memory.
	ConvergenceStride int `json:"convergence_stride,omitempty"`
	// Convergence is the sampled per-iteration curve (case, iter, udiff,
	// relres), interleaved across a batch's cases in observation order.
	Convergence []obs.Sample `json:"convergence,omitempty"`
}

// Trace snapshots a job's stage timeline and convergence samples by ID.
func (s *Engine) Trace(id string) (TraceInfo, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state JobState
	if ok {
		state = j.state
	}
	s.mu.Unlock()
	if !ok || j.trace == nil {
		return TraceInfo{}, false
	}
	tv := j.trace.View()
	ti := TraceInfo{
		JobID:        id,
		State:        state,
		TotalSeconds: tv.TotalSeconds,
		Spans:        tv.Spans,
	}
	if j.conv != nil {
		ti.Convergence = j.conv.Samples()
		ti.ConvergenceStride = j.conv.Stride()
	}
	return ti, true
}
