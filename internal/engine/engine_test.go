package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fem"
)

func plateReq(rows, cols, m int) Request {
	return Request{
		Plate:  &PlateSpec{Rows: rows, Cols: cols},
		Solver: SolverSpec{M: m, Coeffs: "least-squares", Tol: 1e-7},
	}
}

// laplace1D builds the general-system request for the n-point 1-D
// Laplacian with a unit load at the middle.
func laplace1D(n int, key string) Request {
	var i, j []int
	var v []float64
	add := func(a, b int, x float64) { i = append(i, a); j = append(j, b); v = append(v, x) }
	for k := 0; k < n; k++ {
		add(k, k, 2)
		if k > 0 {
			add(k, k-1, -1)
			add(k-1, k, -1)
		}
	}
	f := make([]float64, n)
	f[n/2] = 1
	return Request{
		System: &SystemSpec{N: n, I: i, J: j, V: v, F: f, Key: key},
		Solver: SolverSpec{M: 2, Splitting: "jacobi", RelResidualTol: 1e-10},
	}
}

func TestEnginePlateSolveMatchesLibrary(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	v, err := s.Solve(context.Background(), plateReq(10, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	if v.State != JobDone || v.Result == nil || !v.Result.Converged {
		t.Fatalf("job not done/converged: %+v", v)
	}

	sys, _, err := core.PlateSystem(10, 10, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Solve(sys, core.Config{M: 3, Coeffs: core.LeastSquaresCoeffs, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Result.U) != len(want.U) {
		t.Fatalf("solution length %d != %d", len(v.Result.U), len(want.U))
	}
	for i := range want.U {
		if math.Abs(v.Result.U[i]-want.U[i]) > 1e-9 {
			t.Fatalf("solution deviates at %d: %g vs %g", i, v.Result.U[i], want.U[i])
		}
	}
	if len(v.Result.Nodes) == 0 || len(v.Result.NodeU) != len(v.Result.Nodes) {
		t.Fatalf("plate result missing node displacements: %+v", v.Result)
	}
}

func TestEngineCacheReuse(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	first, err := s.Solve(context.Background(), plateReq(12, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first solve reported a cache hit")
	}
	second, err := s.Solve(context.Background(), plateReq(12, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second identical solve did not hit the cache")
	}
	if second.Result.Iterations != first.Result.Iterations {
		t.Fatalf("cached solve took %d iterations vs %d — interval reuse changed the method",
			second.Result.Iterations, first.Result.Iterations)
	}
	if second.Result.IntervalLo != first.Result.IntervalLo || second.Result.IntervalHi != first.Result.IntervalHi {
		t.Fatal("cached solve re-estimated the spectral interval")
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.CacheEntries)
	}

	// A different problem must not hit.
	third, err := s.Solve(context.Background(), plateReq(10, 12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("different plate reported a cache hit")
	}
}

func TestEngineGeneralSystemAndKeyedCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	// Unkeyed: solves but never caches.
	v, err := s.Solve(context.Background(), laplace1D(50, ""))
	if err != nil {
		t.Fatal(err)
	}
	if v.State != JobDone || !v.Result.Converged {
		t.Fatalf("general solve failed: %+v", v)
	}
	if s.Stats().CacheEntries != 0 {
		t.Fatal("unkeyed system was cached")
	}

	// Keyed: second submission reuses the assembled matrix.
	if _, err := s.Solve(context.Background(), laplace1D(50, "lap50")); err != nil {
		t.Fatal(err)
	}
	hit, err := s.Solve(context.Background(), laplace1D(50, "lap50"))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("keyed resubmission missed the cache")
	}
}

func TestEngineConcurrentSolves(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 1024})
	defer s.Close()

	const jobs = 32
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	views := make([]JobView, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mix of identical (cacheable) and distinct problems.
			var req Request
			switch i % 3 {
			case 0:
				req = plateReq(10, 10, 2)
			case 1:
				req = plateReq(8, 12, 2)
			default:
				req = laplace1D(200, "lap200")
			}
			views[i], errs[i] = s.Solve(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if views[i].State != JobDone || !views[i].Result.Converged {
			t.Fatalf("job %d not converged: %+v", i, views[i])
		}
	}
	st := s.Stats()
	if st.JobsDone != jobs {
		t.Fatalf("jobs done = %d, want %d", st.JobsDone, jobs)
	}
	if st.CacheMisses != 3 {
		t.Fatalf("cache misses = %d, want 3 (one per distinct problem)", st.CacheMisses)
	}
	if st.CacheHits != jobs-3 {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, jobs-3)
	}
}

// slowReq is a solve that reliably occupies a worker for hundreds of
// milliseconds — much longer than a request roundtrip even on one CPU — so
// queue-bound tests observe a busy worker: a tight residual target on a
// larger plate with plain CG.
func slowReq() Request {
	return Request{
		Plate:  &PlateSpec{Rows: 48, Cols: 48},
		Solver: SolverSpec{M: 0, RelResidualTol: 1e-13, MaxIter: 30000},
	}
}

func TestEngineQueueBounds(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// Occupy the worker, then fill the 1-deep queue.
	if _, err := s.Submit(slowReq()); err != nil {
		t.Fatal(err)
	}
	var sawFull bool
	for i := 0; i < 50 && !sawFull; i++ {
		_, err := s.Submit(slowReq())
		if err != nil && err != ErrQueueFull {
			t.Fatal(err)
		}
		sawFull = err == ErrQueueFull
	}
	if !sawFull {
		t.Fatal("bounded queue never rejected")
	}
}

func TestEngineValidationAndFailures(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	bad := []Request{
		{},                                    // neither plate nor system
		{Plate: &PlateSpec{Rows: 1, Cols: 5}}, // degenerate plate
		{Plate: &PlateSpec{Rows: 4, Cols: 4}, System: &SystemSpec{N: 2}},                                 // both
		{Plate: &PlateSpec{Rows: 4, Cols: 4}, Solver: SolverSpec{Splitting: "cholesky"}},                 // unknown splitting
		{Plate: &PlateSpec{Rows: 4, Cols: 4}, Solver: SolverSpec{M: 2, Coeffs: "quadrature"}},            // unknown coeffs
		{System: &SystemSpec{N: 3, I: []int{0}, J: []int{0, 1}, V: []float64{1}, F: make([]float64, 3)}}, // ragged triplets
		{System: &SystemSpec{N: 2, I: []int{5}, J: []int{0}, V: []float64{1}, F: make([]float64, 2)}},    // out of range
	}
	for i, req := range bad {
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("bad request %d accepted", i)
		}
	}

	// Resource caps and material validity are enforced at submission, so a
	// tiny request cannot commission a huge allocation or a doomed job.
	capped := []Request{
		{Plate: &PlateSpec{Rows: 30000, Cols: 30000}},
		{Plate: &PlateSpec{Rows: 4, Cols: 4, E: -1}},               // invalid material
		{Plate: &PlateSpec{Rows: 4, Cols: 4, E: 1, T: 1, Nu: 0.5}}, // ν at limit
		{System: &SystemSpec{N: 1 << 30}},
		{Plate: &PlateSpec{Rows: 4, Cols: 4}, Solver: SolverSpec{M: 1 << 20}},
	}
	for i, req := range capped {
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("oversized/invalid request %d accepted", i)
		}
	}

	// Asymmetric system passes Validate but fails at assembly → JobFailed,
	// and the failed build must not poison the cache.
	asym := Request{
		System: &SystemSpec{
			N: 2, I: []int{0, 0, 1}, J: []int{0, 1, 1}, V: []float64{1, 0.5, 1},
			F: []float64{1, 1}, Key: "asym",
		},
		Solver: SolverSpec{Splitting: "jacobi", Tol: 1e-8},
	}
	v, err := s.Solve(context.Background(), asym)
	if err == nil {
		t.Fatal("failed job returned a nil error from Solve")
	}
	if v.State != JobFailed || v.Error == "" {
		t.Fatalf("asymmetric system did not fail: %+v", v)
	}
	if s.Stats().CacheEntries != 0 {
		t.Fatal("failed build left a cache entry")
	}

	// Out-of-range omega is rejected up front, at submission.
	badOmega := plateReq(6, 6, 2)
	badOmega.Solver.Omega = 2.5
	if _, err := s.Submit(badOmega); err == nil {
		t.Fatal("ω = 2.5 accepted at submission")
	}
}

func TestEngineClose(t *testing.T) {
	s := New(Config{Workers: 2})
	jobs := make([]*Job, 0, 8)
	for i := 0; i < 8; i++ {
		j, err := s.Submit(plateReq(8, 8, 1))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	s.Close() // must drain the queue
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatal("Close returned with unfinished jobs")
		}
	}
	if _, err := s.Submit(plateReq(8, 8, 1)); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestEngineOmitSolution(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := plateReq(8, 8, 2)
	req.OmitSolution = true
	v, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v.Result.U != nil || v.Result.NodeU != nil {
		t.Fatal("omit_solution still returned vectors")
	}
	if !v.Result.Converged || v.Result.Iterations == 0 {
		t.Fatalf("stats missing: %+v", v.Result)
	}
}

func TestEngineJobLookup(t *testing.T) {
	s := New(Config{Workers: 1, HistoryLimit: 2})
	defer s.Close()
	var last string
	for i := 0; i < 5; i++ {
		v, err := s.Solve(context.Background(), plateReq(6, 6, 1))
		if err != nil {
			t.Fatal(err)
		}
		last = v.ID
	}
	if _, ok := s.Job(last); !ok {
		t.Fatal("most recent job evicted")
	}
	if _, ok := s.Job("j-000001"); ok {
		t.Fatal("history limit not enforced")
	}
	if _, ok := s.Job("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestEngineWorkerBudgetDefaults(t *testing.T) {
	for _, tc := range []struct{ workers, budget, wantBudgetMin int }{
		{1, 0, 1},
		{4, 0, 1},
		{2, 3, 3},
	} {
		cfg := Config{Workers: tc.workers, WorkerBudget: tc.budget}.withDefaults()
		if cfg.WorkerBudget < tc.wantBudgetMin {
			t.Fatalf("workers=%d budget=%d → %d", tc.workers, tc.budget, cfg.WorkerBudget)
		}
		if tc.budget == 0 && cfg.Workers*cfg.WorkerBudget > 2*max(cfg.Workers, maxprocs()) {
			t.Fatalf("default budget oversubscribes: %d×%d", cfg.Workers, cfg.WorkerBudget)
		}
	}
}

func maxprocs() int {
	cfg := Config{}.withDefaults()
	return cfg.Workers
}

// sameShardKeys returns n distinct keys that all hash to one cache shard,
// so a test can exercise eviction order inside a single LRU.
func sameShardKeys(t *testing.T, c *cache, n int) []string {
	t.Helper()
	want := c.shard("seed")
	keys := []string{"seed"}
	for i := 0; len(keys) < n && i < 10000; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == want {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("could not find %d colliding keys", n)
	}
	return keys
}

func TestCacheLRUEvictionSmall(t *testing.T) {
	// A capacity below minShardCapacity degenerates to one shard, so a
	// small cache keeps the exact single-LRU semantics it had before
	// sharding.
	c := newCache(2)
	if len(c.shards) != 1 {
		t.Fatalf("cache of 2 uses %d shards, want 1", len(c.shards))
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, existed := c.get(k); existed {
			t.Fatalf("fresh key %s existed", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, existed := c.get("a"); existed {
		t.Fatal("evicted key a still present")
	}
	// "c" was most recent before the re-miss on "a"; "b" must be gone.
	if _, existed := c.get("c"); !existed {
		t.Fatal("key c evicted out of LRU order")
	}
}

func TestCacheShardBorrowsGlobalCapacity(t *testing.T) {
	// Capacity is a global bound, not per shard: a hot shard may hold far
	// more than its even share as long as the cache total fits, and
	// eviction starts only once the whole cache is over capacity.
	c := newCache(8) // 2 shards
	if len(c.shards) != 2 {
		t.Fatalf("cache of 8 uses %d shards, want 2", len(c.shards))
	}
	keys := sameShardKeys(t, c, 9)
	for _, k := range keys[:8] {
		if _, existed := c.get(k); existed {
			t.Fatalf("fresh key %s existed", k)
		}
	}
	// All 8 colliding keys fit (4× the shard's even share), none evicted.
	for _, k := range keys[:8] {
		if _, existed := c.get(k); !existed {
			t.Fatalf("key %s evicted below global capacity", k)
		}
	}
	// The 9th pushes the cache over capacity: its shard's LRU tail goes.
	if _, existed := c.get(keys[8]); existed {
		t.Fatalf("fresh key %s existed", keys[8])
	}
	if c.len() != 8 {
		t.Fatalf("len = %d, want 8", c.len())
	}
	if _, existed := c.get(keys[0]); existed {
		t.Fatalf("oldest key %s survived past global capacity", keys[0])
	}
	// keys[2:] stay resident: the re-miss on keys[0] evicted keys[1].
	for _, k := range keys[2:] {
		if _, existed := c.get(k); !existed {
			t.Fatalf("key %s evicted out of LRU order", k)
		}
	}
}

func TestCacheShardingAggregateStats(t *testing.T) {
	const keys = 40
	// Capacity sized so no shard can overflow even if every key collided.
	c := newCache(cacheShards * keys)
	for i := 0; i < keys; i++ {
		if _, existed := c.get(fmt.Sprintf("key-%d", i)); existed {
			t.Fatalf("fresh key %d existed", i)
		}
	}
	for i := 0; i < keys; i++ {
		if _, existed := c.get(fmt.Sprintf("key-%d", i)); !existed {
			t.Fatalf("key %d missing on second pass (capacity 64 should hold 40)", i)
		}
	}
	if h, m := c.hits.Load(), c.misses.Load(); h != keys || m != keys {
		t.Fatalf("hits/misses = %d/%d, want %d/%d", h, m, keys, keys)
	}
	if c.len() != keys {
		t.Fatalf("len = %d, want %d", c.len(), keys)
	}
	if rate := float64(c.hits.Load()) / float64(c.hits.Load()+c.misses.Load()); rate != 0.5 {
		t.Fatalf("aggregate hit rate = %g, want 0.5", rate)
	}
	// Entries must be spread over more than one shard, or the sharding is
	// not actually splitting the lock.
	shards := map[*cacheShard]bool{}
	for i := 0; i < keys; i++ {
		shards[c.shard(fmt.Sprintf("key-%d", i))] = true
	}
	if len(shards) < 2 {
		t.Fatalf("all %d keys landed in one shard", keys)
	}
}

func TestStatsLatencyQuantiles(t *testing.T) {
	r := newLatencyRing(100)
	for i := 1; i <= 100; i++ {
		r.add(float64(i))
	}
	if p50 := r.quantile(0.50); math.Abs(p50-50) > 2 {
		t.Fatalf("p50 = %g", p50)
	}
	if p99 := r.quantile(0.99); math.Abs(p99-99) > 2 {
		t.Fatalf("p99 = %g", p99)
	}
	// Overwrite wraps: only the latest window counts.
	for i := 0; i < 100; i++ {
		r.add(1000)
	}
	if p50 := r.quantile(0.5); p50 != 1000 {
		t.Fatalf("post-wrap p50 = %g", p50)
	}
}

func TestCacheKeyDistinguishesSolverSettings(t *testing.T) {
	base := plateReq(10, 10, 3)
	variants := []Request{
		plateReq(10, 10, 4),
		plateReq(10, 11, 3),
		func() Request { r := plateReq(10, 10, 3); r.Solver.Coeffs = "chebyshev"; return r }(),
		func() Request { r := plateReq(10, 10, 3); r.Solver.Omega = 1.2; return r }(),
		func() Request { r := plateReq(10, 10, 3); r.Plate.E = 2; return r }(),
	}
	seen := map[string]bool{base.CacheKey(): true}
	for i, v := range variants {
		k := v.CacheKey()
		if seen[k] {
			t.Fatalf("variant %d collides: %s", i, k)
		}
		seen[k] = true
	}
	// Tolerance is a stopping criterion, not part of the prepared problem:
	// it must NOT split the cache.
	loose := plateReq(10, 10, 3)
	loose.Solver.Tol = 1e-3
	if loose.CacheKey() != base.CacheKey() {
		t.Fatal("tolerance changed the cache key")
	}
	// Keys are canonical: spelling out the defaults lands on the same
	// entry as the empty-string shorthand.
	explicit := plateReq(10, 10, 3)
	explicit.Solver.Splitting = "SSOR-Multicolor"
	explicit.Solver.Coeffs = "Least-Squares"
	explicit.Solver.Omega = 1
	if explicit.CacheKey() != base.CacheKey() {
		t.Fatalf("explicit defaults split the cache: %q vs %q", explicit.CacheKey(), base.CacheKey())
	}
	// Same for the material and traction defaults.
	explicitMat := plateReq(10, 10, 3)
	explicitMat.Plate = &PlateSpec{Rows: 10, Cols: 10, E: 1, Nu: 0.3, T: 1, Traction: 1}
	if explicitMat.CacheKey() != base.CacheKey() {
		t.Fatalf("explicit default material split the cache: %q vs %q", explicitMat.CacheKey(), base.CacheKey())
	}
	if k := (&Request{System: &SystemSpec{N: 2}}).CacheKey(); k != "" {
		t.Fatalf("unkeyed system got cache key %q", k)
	}
}

func TestEngineSolveContextCancel(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(ctx, plateReq(20, 20, 0)); err != context.Canceled {
		t.Fatalf("cancelled solve returned %v", err)
	}
}

func ExampleEngine() {
	s := New(Config{Workers: 2})
	defer s.Close()
	v, err := s.Solve(context.Background(), Request{
		Plate:  &PlateSpec{Rows: 10, Cols: 10},
		Solver: SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-7},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(v.State, v.Result.Converged)
	// Output: done true
}
