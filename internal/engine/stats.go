package engine

import (
	"math"
	"sort"
	"sync"
)

// latencyRing keeps the most recent solve latencies for on-demand quantile
// estimation: fixed memory, O(n log n) only when /v1/stats is asked.
type latencyRing struct {
	mu   sync.Mutex
	buf  []float64
	next int
	n    int
}

func newLatencyRing(size int) *latencyRing {
	if size < 16 {
		size = 16
	}
	return &latencyRing{buf: make([]float64, size)}
}

func (r *latencyRing) add(v float64) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantile returns the q-th (0..1) latency over the retained window, 0 when
// empty, using the ceil-based nearest-rank definition: the smallest sample
// at or above rank ⌈q·n⌉. Truncating the rank instead (int(q·(n−1)))
// under-reports tail quantiles on small windows — p99 of 50 samples would
// read index 48, which is the p96.
func (r *latencyRing) quantile(q float64) float64 {
	r.mu.Lock()
	sample := append([]float64(nil), r.buf[:r.n]...)
	r.mu.Unlock()
	if len(sample) == 0 {
		return 0
	}
	sort.Float64s(sample)
	idx := int(math.Ceil(q*float64(len(sample)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sample) {
		idx = len(sample) - 1
	}
	return sample[idx]
}

// Stats is the /v1/stats payload: scheduler, cache, and latency health.
type Stats struct {
	Workers      int `json:"workers"`
	WorkerBudget int `json:"worker_budget"`
	QueueDepth   int `json:"queue_depth"`
	QueueCap     int `json:"queue_cap"`
	Running      int `json:"running"`

	JobsDone   int64 `json:"jobs_done"`
	JobsFailed int64 `json:"jobs_failed"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	TotalIterations int64 `json:"total_iterations"`

	// SolvesCSR/SolvesDIA/SolvesDecomposed count solves by the matvec
	// backend they actually ran on (a batched job counts once): the
	// operational view of the automatic backend selection.
	SolvesCSR        int64 `json:"solves_csr"`
	SolvesDIA        int64 `json:"solves_dia"`
	SolvesDecomposed int64 `json:"solves_decomposed"`

	// TilesExecuted counts executed plan tiles (a scalar solve is one
	// tile; a batched job contributes one per planned column tile) — the
	// operational view of the batch-tiling policy.
	TilesExecuted int64 `json:"tiles_executed"`
	// PlanFeedback counts executed plans whose realized throughput was
	// folded back into the self-tuning planner's observation store.
	PlanFeedback int64 `json:"plan_feedback_total"`
	// StreamSubscribers is the current number of per-case result streams
	// (SSE or ?watch=1) attached to jobs.
	StreamSubscribers int64 `json:"stream_subscribers"`

	// LatencyP50/P99 are solve latencies (enqueue→finish) in seconds over
	// the recent-job window.
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`

	// LatencyP50CSR/…DIA split the latency quantiles by the matvec backend
	// the job resolved to (jobs that failed before planning count in
	// neither): the per-backend view the planner's auto-selection is judged
	// by. 0 until a job has finished on that backend.
	LatencyP50CSR        float64 `json:"latency_p50_csr_seconds"`
	LatencyP99CSR        float64 `json:"latency_p99_csr_seconds"`
	LatencyP50DIA        float64 `json:"latency_p50_dia_seconds"`
	LatencyP99DIA        float64 `json:"latency_p99_dia_seconds"`
	LatencyP50Decomposed float64 `json:"latency_p50_decomposed_seconds"`
	LatencyP99Decomposed float64 `json:"latency_p99_decomposed_seconds"`

	UptimeSeconds float64 `json:"uptime_seconds"`
}
