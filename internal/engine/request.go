// Package engine is the in-process heart of the solver: a bounded worker
// pool runs concurrent solves, a sharded problem/preconditioner cache
// amortizes assembly and spectral interval estimation across requests (the
// session-level analogue of the paper amortizing preconditioner
// construction over many cheap parallel steps), a planner turns every
// request into an explicit execution plan, and per-case completions fan
// out to subscribers as block columns retire. The HTTP daemon
// (internal/service) and the embeddable local solver (repro.NewLocal) are
// both thin adapters over this one engine, so in-process callers get the
// same amortization, streaming and cancellation the daemon serves.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/kernel"
	"repro/internal/plan"
	"repro/internal/sparse"
)

// Prebuilt is an already-assembled problem handed to the engine zero-copy:
// in-process callers (the repro package's local solver) skip the spec →
// assembly path entirely. The engine treats Sys as immutable.
type Prebuilt struct {
	// Sys is the assembled system. Sys.F is the default right-hand side
	// when Fs is empty.
	Sys core.System
	// Plate, when non-nil, carries the mesh so results can report per-node
	// displacements (and the solver defaults to the multicolor splitting).
	Plate *fem.Plate
	// Key, when non-empty, names the problem for the cache: repeated
	// requests with the same Key and solver settings reuse the estimated
	// spectral interval and pooled preconditioners. Empty disables caching.
	Key string
	// Fs, when non-empty, is the batch of right-hand sides solved against
	// Sys.K in one block job (Sys.F is ignored).
	Fs [][]float64
	// Probe, when non-nil, is the caller's memoized structure scan of
	// Sys.K; the engine plans from it instead of rescanning the pattern.
	Probe *plan.Probe
	// Config, when non-nil, is the full solver configuration, overriding
	// the request's SolverSpec. This is how in-process callers express
	// knobs the wire vocabulary cannot (a pinned spectral interval,
	// iteration history, estimation seed, explicit kernel fan-out).
	Config *core.Config
}

// PlateSpec asks for the paper's plane-stress plate problem: a rows×cols
// node unit square, left edge clamped, right edge loaded, assembled in the
// 6-color multicolor ordering.
type PlateSpec struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// E, Nu, T override the material (Young's modulus, Poisson ratio,
	// thickness). All-zero means the normalized default material.
	E  float64 `json:"e,omitempty"`
	Nu float64 `json:"nu,omitempty"`
	T  float64 `json:"t,omitempty"`
	// Traction is the right-edge load (default 1).
	Traction float64 `json:"traction,omitempty"`
	// Tractions is the batched form: one load case per entry, all solved
	// against the single assembled stiffness matrix in one block solve
	// (the classic many-load-cases-one-plate FEM workload). The plate's
	// load vector is linear in the traction, so each case's RHS is the
	// base RHS rescaled. When set, Traction only names the cache entry.
	Tractions []float64 `json:"tractions,omitempty"`
}

// SystemSpec is a general sparse SPD system in coordinate form. Duplicate
// (I[k], J[k]) entries are summed, as finite element assembly produces.
type SystemSpec struct {
	N int       `json:"n"`
	I []int     `json:"i"`
	J []int     `json:"j"`
	V []float64 `json:"v"`
	// F is the right-hand side; Fs is the batched form (give one or the
	// other). All right-hand sides in Fs are solved against the one matrix
	// in a single block solve sharing every matrix traversal.
	F  []float64   `json:"f,omitempty"`
	Fs [][]float64 `json:"fs,omitempty"`
	// Key, when non-empty, names this system for the preconditioner cache:
	// repeated submissions with the same Key and solver settings reuse the
	// assembled matrix and estimated spectral interval. Callers own key
	// uniqueness — reusing a key for a different matrix returns the cached
	// problem. Empty disables caching (general matrices are not
	// content-addressed; hashing every triplet would cost more than it
	// saves).
	Key string `json:"key,omitempty"`
}

// SolverSpec selects the m-step PCG variant by name, mirroring core.Config.
type SolverSpec struct {
	// M is the preconditioner step count; 0 runs plain CG.
	M int `json:"m"`
	// Splitting is "ssor-multicolor", "ssor-natural" or "jacobi". Empty
	// defaults to ssor-multicolor for plates and jacobi for general
	// systems.
	Splitting string `json:"splitting,omitempty"`
	// Coeffs is "ones", "least-squares", "chebyshev" or "weighted-ls"
	// (empty = ones).
	Coeffs string `json:"coeffs,omitempty"`
	// Omega is the SSOR relaxation parameter (0 = the paper's ω = 1).
	Omega float64 `json:"omega,omitempty"`
	// Tol is the paper's ‖u^{k+1}−u^k‖_∞ test; with RelResidualTol also
	// zero it defaults to 1e-6.
	Tol float64 `json:"tol,omitempty"`
	// RelResidualTol adds/substitutes a relative-residual test.
	RelResidualTol float64 `json:"rel_residual_tol,omitempty"`
	// MaxIter bounds iterations (0 = 10n).
	MaxIter int `json:"max_iter,omitempty"`
	// Backend selects the matvec storage for K: "csr", "dia", "decomposed",
	// or "auto" (empty = auto) — auto probes the matrix structure and picks
	// diagonal storage for banded-diagonal systems (the paper's CYBER
	// layout), CSR for scattered fill, and the domain-decomposed parallel
	// path for plate problems too large for one cache-resident matrix. The
	// decomposed backend needs the mesh, so forcing it on a general system
	// fails. The result reports the backend actually used.
	Backend string `json:"backend,omitempty"`
	// Subdomains pins the processor count of a decomposed solve (the mesh
	// is partitioned this many ways, each subdomain run by a dedicated
	// goroutine). 0 lets the planner pick from the session's worker budget;
	// ignored by the single-matrix backends.
	Subdomains int `json:"subdomains,omitempty"`
	// Kernel selects the kernel set the fused solver loops run through:
	// "auto" (or empty) uses the set CPU feature detection picked at
	// startup, "portable" forces the reference implementations. The plan
	// reports the set actually used.
	Kernel string `json:"kernel,omitempty"`
	// Tuning is the self-tuning planner's feedback policy: "adapt" (or
	// empty, deferring to the session default) records realized throughput
	// per executed plan and re-plans warm problems from the measurements,
	// "observe" records and reports the evidence but always runs the
	// static plan, "off" disables the loop (bit-for-bit static plans). Not
	// part of the problem cache key — it is an execution policy, like the
	// backend.
	Tuning string `json:"tuning,omitempty"`
}

// Request is one unit of work: exactly one of Plate, System, or Prebuilt,
// plus the solver selection.
type Request struct {
	Plate  *PlateSpec  `json:"plate,omitempty"`
	System *SystemSpec `json:"system,omitempty"`
	Solver SolverSpec  `json:"solver"`
	// OmitSolution drops the solution vector from the result (status and
	// convergence stats only) — for large systems polled over HTTP.
	OmitSolution bool `json:"omit_solution,omitempty"`
	// Prebuilt, when non-nil, is an already-assembled in-process problem;
	// never serialized (the wire vocabulary is Plate/System).
	Prebuilt *Prebuilt `json:"-"`
}

// isPlate reports whether the request's problem carries a plate mesh (which
// picks the multicolor-SSOR default splitting and node displacements).
func (req *Request) isPlate() bool {
	return req.Plate != nil || (req.Prebuilt != nil && req.Prebuilt.Plate != nil)
}

// coreConfig resolves the request's solver configuration: a Prebuilt's full
// Config when present, the named SolverSpec otherwise.
func (req *Request) coreConfig() (core.Config, error) {
	if req.Prebuilt != nil && req.Prebuilt.Config != nil {
		return *req.Prebuilt.Config, nil
	}
	return req.Solver.CoreConfig(req.isPlate())
}

// Size caps enforced at validation: the service is network-facing, so a
// tiny request must not be able to commission an enormous allocation. The
// caps are far above anything the solver handles in reasonable time.
const (
	// maxPlateNodes bounds rows×cols (≈ 8M unknowns).
	maxPlateNodes = 4 << 20
	// maxSystemN bounds a general system's dimension.
	maxSystemN = 16 << 20
	// maxSteps bounds the preconditioner step count m.
	maxSteps = 4096
	// maxBatchRHS bounds the right-hand sides per request (block scratch
	// scales with n×s).
	maxBatchRHS = 256
	// maxSubdomains bounds the pinned processor count of a decomposed solve
	// (each subdomain costs a goroutine plus link channels).
	maxSubdomains = 4096
)

// Validate checks request shape without doing any assembly.
func (req *Request) Validate() error {
	if sd := req.Solver.Subdomains; sd < 0 || sd > maxSubdomains {
		return fmt.Errorf("engine: subdomain count %d outside [0, %d]", sd, maxSubdomains)
	}
	if pb := req.Prebuilt; pb != nil {
		// Prebuilt problems come from in-process callers, not the network:
		// only structural integrity is checked here (no resource caps), and
		// a full Config override is validated by core at build time.
		if req.Plate != nil || req.System != nil {
			return fmt.Errorf("engine: prebuilt request must not also carry a plate or system spec")
		}
		if pb.Sys.K == nil {
			return fmt.Errorf("engine: prebuilt system has no matrix")
		}
		n := pb.Sys.K.Rows
		if pb.Sys.K.Cols != n {
			return fmt.Errorf("engine: prebuilt matrix is %d×%d, want square", n, pb.Sys.K.Cols)
		}
		if len(pb.Fs) == 0 && len(pb.Sys.F) != n {
			return fmt.Errorf("engine: prebuilt rhs length %d != n %d", len(pb.Sys.F), n)
		}
		for k, f := range pb.Fs {
			if len(f) != n {
				return fmt.Errorf("engine: prebuilt rhs %d length %d != n %d", k, len(f), n)
			}
		}
		if pb.Config != nil {
			if _, err := plan.ParseTuning(strings.ToLower(pb.Config.Tuning)); err != nil {
				return err
			}
			return nil
		}
		if _, _, err := req.Solver.kinds(req.isPlate()); err != nil {
			return err
		}
		if _, err := core.ParseBackend(strings.ToLower(req.Solver.Backend)); err != nil {
			return err
		}
		if _, err := plan.ParseTuning(strings.ToLower(req.Solver.Tuning)); err != nil {
			return err
		}
		return nil
	}
	if (req.Plate == nil) == (req.System == nil) {
		return fmt.Errorf("engine: request needs exactly one of plate or system")
	}
	if p := req.Plate; p != nil {
		if p.Rows < 2 || p.Cols < 2 {
			return fmt.Errorf("engine: plate needs rows, cols >= 2, got %d×%d", p.Rows, p.Cols)
		}
		if p.Rows > maxPlateNodes/p.Cols {
			return fmt.Errorf("engine: plate %d×%d exceeds the %d-node limit", p.Rows, p.Cols, maxPlateNodes)
		}
		// All-zero material selects the default; anything else must be a
		// valid material now, not a failed job later.
		if mat := (fem.Material{E: p.E, Nu: p.Nu, T: p.T}); mat != (fem.Material{}) {
			if err := mat.Validate(); err != nil {
				return err
			}
		}
		if len(p.Tractions) > maxBatchRHS {
			return fmt.Errorf("engine: %d plate load cases exceed the %d limit", len(p.Tractions), maxBatchRHS)
		}
	}
	if sy := req.System; sy != nil {
		if sy.N <= 0 {
			return fmt.Errorf("engine: system needs n > 0, got %d", sy.N)
		}
		if sy.N > maxSystemN {
			return fmt.Errorf("engine: system n = %d exceeds the %d limit", sy.N, maxSystemN)
		}
		if len(sy.I) != len(sy.J) || len(sy.J) != len(sy.V) {
			return fmt.Errorf("engine: triplet lengths differ: |i|=%d |j|=%d |v|=%d", len(sy.I), len(sy.J), len(sy.V))
		}
		switch {
		case len(sy.Fs) > 0:
			if len(sy.F) > 0 {
				return fmt.Errorf("engine: give f or fs, not both")
			}
			if len(sy.Fs) > maxBatchRHS {
				return fmt.Errorf("engine: %d right-hand sides exceed the %d limit", len(sy.Fs), maxBatchRHS)
			}
			for k, f := range sy.Fs {
				if len(f) != sy.N {
					return fmt.Errorf("engine: rhs %d length %d != n %d", k, len(f), sy.N)
				}
			}
		default:
			if len(sy.F) != sy.N {
				return fmt.Errorf("engine: rhs length %d != n %d", len(sy.F), sy.N)
			}
		}
		for k := range sy.I {
			if sy.I[k] < 0 || sy.I[k] >= sy.N || sy.J[k] < 0 || sy.J[k] >= sy.N {
				return fmt.Errorf("engine: triplet %d index (%d,%d) out of %d×%d", k, sy.I[k], sy.J[k], sy.N, sy.N)
			}
		}
	}
	if req.Solver.M < 0 {
		return fmt.Errorf("engine: negative step count m = %d", req.Solver.M)
	}
	if req.Solver.M > maxSteps {
		return fmt.Errorf("engine: step count m = %d exceeds the %d limit", req.Solver.M, maxSteps)
	}
	if o := req.Solver.Omega; o != 0 && (o <= 0 || o >= 2) {
		return fmt.Errorf("engine: relaxation parameter ω = %g outside (0, 2) (0 selects the default ω = 1)", o)
	}
	if _, _, err := req.Solver.kinds(req.Plate != nil); err != nil {
		return err
	}
	if _, err := core.ParseBackend(strings.ToLower(req.Solver.Backend)); err != nil {
		return err
	}
	if k := strings.ToLower(req.Solver.Kernel); !kernel.ValidName(k) {
		return fmt.Errorf("engine: unknown kernel policy %q (want auto or portable)", req.Solver.Kernel)
	}
	if _, err := plan.ParseTuning(strings.ToLower(req.Solver.Tuning)); err != nil {
		return err
	}
	return nil
}

// kinds resolves the splitting/coefficient names to core enums.
func (s SolverSpec) kinds(isPlate bool) (core.SplittingKind, core.CoeffKind, error) {
	var sk core.SplittingKind
	switch strings.ToLower(s.Splitting) {
	case "":
		if isPlate {
			sk = core.SSORMulticolor
		} else {
			sk = core.JacobiSplitting
		}
	case "ssor-multicolor":
		sk = core.SSORMulticolor
	case "ssor-natural":
		sk = core.SSORNatural
	case "jacobi":
		sk = core.JacobiSplitting
	default:
		return 0, 0, fmt.Errorf("engine: unknown splitting %q (want ssor-multicolor, ssor-natural or jacobi)", s.Splitting)
	}
	var ck core.CoeffKind
	switch strings.ToLower(s.Coeffs) {
	case "", "ones":
		ck = core.Unparametrized
	case "least-squares":
		ck = core.LeastSquaresCoeffs
	case "chebyshev":
		ck = core.ChebyshevCoeffs
	case "weighted-ls":
		ck = core.WeightedLSCoeffs
	default:
		return 0, 0, fmt.Errorf("engine: unknown coeffs %q (want ones, least-squares, chebyshev or weighted-ls)", s.Coeffs)
	}
	return sk, ck, nil
}

// backend resolves the spec's backend name to the core policy.
func (s SolverSpec) backend() (core.Backend, error) {
	return core.ParseBackend(strings.ToLower(s.Backend))
}

// CoreConfig translates the spec into a core.Config (Workers and Interval
// are filled in by the scheduler). Exported so the repro package can derive
// the config a spec names when building prebuilt requests.
func (s SolverSpec) CoreConfig(isPlate bool) (core.Config, error) {
	sk, ck, err := s.kinds(isPlate)
	if err != nil {
		return core.Config{}, err
	}
	b, err := s.backend()
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		M:              s.M,
		Splitting:      sk,
		Coeffs:         ck,
		Omega:          s.Omega,
		Tol:            s.Tol,
		RelResidualTol: s.RelResidualTol,
		MaxIter:        s.MaxIter,
		Backend:        b,
		Subdomains:     s.Subdomains,
		Kernel:         strings.ToLower(s.Kernel),
		Tuning:         strings.ToLower(s.Tuning),
	}, nil
}

// CacheKey names the problem+preconditioner this request needs, or "" when
// the request is uncacheable (a general system without a Key, or an
// unresolvable solver spec). Keys are canonical: spelled-out defaults
// ("ssor-multicolor", "ones", ω = 1) share an entry with the empty-string
// shorthand. The backend is deliberately not part of the key: an entry
// caches the CSR and its DIA conversion side by side, so requests
// differing only in backend share one assembled problem.
//
// Exported because the key doubles as the fleet router's routing key: a
// consistent-hash router computes it from the wire request alone — no
// assembly, no cache — so repeated solves of one problem always land on
// the node whose cache owns that problem's warm entry.
func (req *Request) CacheKey() string {
	var problem string
	switch {
	case req.Prebuilt != nil:
		pb := req.Prebuilt
		if pb.Key == "" {
			return ""
		}
		problem = "prebuilt/" + pb.Key
		if cfg := pb.Config; cfg != nil {
			// A full-config request keys on the resolved enums (plus the
			// estimation seed, which shapes the cached interval); Workers,
			// tolerances and History are execution knobs, not part of the
			// prepared problem.
			omega := cfg.Omega
			if omega == 0 {
				omega = 1
			}
			seed := cfg.Seed
			if seed == 0 {
				seed = 1
			}
			return fmt.Sprintf("%s|%s/m=%d/%s/omega=%g/seed=%d", problem, cfg.Splitting, cfg.M, cfg.Coeffs, omega, seed)
		}
	case req.Plate != nil:
		p := req.Plate
		// Mirror fem.NewPlate's defaulting, so spelling the defaults out
		// lands on the same entry as leaving them zero.
		mat := fem.Material{E: p.E, Nu: p.Nu, T: p.T}
		if mat == (fem.Material{}) {
			mat = fem.DefaultMaterial
		}
		traction := p.Traction
		if traction == 0 {
			traction = 1
		}
		problem = fmt.Sprintf("plate/%dx%d/E=%g,nu=%g,t=%g/q=%g", p.Rows, p.Cols, mat.E, mat.Nu, mat.T, traction)
	case req.System != nil && req.System.Key != "":
		problem = "sys/" + req.System.Key
	default:
		return ""
	}
	sk, ck, err := req.Solver.kinds(req.isPlate())
	if err != nil {
		return ""
	}
	omega := req.Solver.Omega
	if omega == 0 {
		omega = 1
	}
	return fmt.Sprintf("%s|%s/m=%d/%s/omega=%g", problem, sk, req.Solver.M, ck, omega)
}

// batchSize reports the number of right-hand sides the request solves.
func (req *Request) batchSize() int {
	if req.Prebuilt != nil && len(req.Prebuilt.Fs) > 0 {
		return len(req.Prebuilt.Fs)
	}
	if req.Plate != nil && len(req.Plate.Tractions) > 0 {
		return len(req.Plate.Tractions)
	}
	if req.System != nil && len(req.System.Fs) > 0 {
		return len(req.System.Fs)
	}
	return 1
}

// rhsCols resolves the request's right-hand sides against the (possibly
// cached) assembled system. For plates the load vector is linear in the
// traction, so batched load cases rescale the assembled base RHS; for
// general systems the request's own vectors are used even on a cache hit,
// so a keyed entry never pins the first submitter's RHS onto later
// requests. Every returned column is freshly allocated (never aliasing the
// cached system).
func (req *Request) rhsCols(sys core.System) ([][]float64, error) {
	n := sys.K.Rows
	check := func(f []float64, which string) error {
		if len(f) != n {
			return fmt.Errorf("engine: %s length %d != system size %d (cache key reused for a different matrix?)", which, len(f), n)
		}
		return nil
	}
	if pb := req.Prebuilt; pb != nil {
		if len(pb.Fs) == 0 {
			out := make([]float64, n)
			copy(out, sys.F)
			return [][]float64{out}, nil
		}
		cols := make([][]float64, len(pb.Fs))
		for k, f := range pb.Fs {
			if err := check(f, fmt.Sprintf("rhs %d", k)); err != nil {
				return nil, err
			}
			col := make([]float64, n)
			copy(col, f)
			cols[k] = col
		}
		return cols, nil
	}
	if p := req.Plate; p != nil {
		base := sys.F
		if len(p.Tractions) == 0 {
			out := make([]float64, n)
			copy(out, base)
			return [][]float64{out}, nil
		}
		baseTraction := p.Traction
		if baseTraction == 0 {
			baseTraction = 1
		}
		cols := make([][]float64, len(p.Tractions))
		for k, tr := range p.Tractions {
			scale := tr / baseTraction
			col := make([]float64, n)
			for i, v := range base {
				col[i] = scale * v
			}
			cols[k] = col
		}
		return cols, nil
	}
	sy := req.System
	if len(sy.Fs) > 0 {
		cols := make([][]float64, len(sy.Fs))
		for k, f := range sy.Fs {
			if err := check(f, fmt.Sprintf("rhs %d", k)); err != nil {
				return nil, err
			}
			col := make([]float64, n)
			copy(col, f)
			cols[k] = col
		}
		return cols, nil
	}
	if err := check(sy.F, "rhs"); err != nil {
		return nil, err
	}
	col := make([]float64, n)
	copy(col, sy.F)
	return [][]float64{col}, nil
}

// assemble builds the linear system for the request (the expensive step the
// cache exists to skip). For plates it returns the plate alongside the
// system.
func (req *Request) assemble() (core.System, *fem.Plate, error) {
	if pb := req.Prebuilt; pb != nil {
		// Zero-copy: the prebuilt system goes straight to the solver (and,
		// when keyed, into the cache) without reassembly.
		return pb.Sys, pb.Plate, nil
	}
	if req.Plate != nil {
		p := req.Plate
		opt := fem.Options{Mat: fem.Material{E: p.E, Nu: p.Nu, T: p.T}, Traction: p.Traction}
		return core.PlateSystem(p.Rows, p.Cols, opt)
	}
	sy := req.System
	coo := sparse.NewCOO(sy.N, sy.N)
	for k := range sy.I {
		coo.Add(sy.I[k], sy.J[k], sy.V[k])
	}
	k := coo.ToCSR()
	if !k.IsSymmetric(1e-12) {
		return core.System{}, nil, fmt.Errorf("engine: system matrix is not symmetric")
	}
	f := make([]float64, sy.N)
	copy(f, sy.F)
	return core.System{K: k, F: f}, nil, nil
}
