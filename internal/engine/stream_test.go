package engine

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestAbortUnblocksClose: Abort cancels the backlog so a daemon's
// post-deadline shutdown doesn't sit solving every queued job.
func TestAbortUnblocksClose(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	hard := Request{
		Plate:        &PlateSpec{Rows: 60, Cols: 60},
		Solver:       SolverSpec{M: 0, Tol: 1e-14},
		OmitSolution: true,
	}
	var jobs []*Job
	for i := 0; i < 6; i++ {
		job, err := s.Submit(hard)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	s.Abort()
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Close did not return after Abort")
	}
	st := s.Stats()
	if st.JobsFailed == 0 {
		t.Fatalf("no jobs failed after Abort: %+v", st)
	}
	for i, job := range jobs {
		v := s.ViewOf(job)
		if v.State != JobFailed && v.State != JobDone {
			t.Fatalf("job %d still %s after Close", i, v.State)
		}
	}
}

// TestPlanRequestLeavesCacheUntouched: planning an uncached keyed request
// must not create a cache entry or perturb hit/miss counters.
func TestPlanRequestLeavesCacheUntouched(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := plateReq(12, 12, 2)
	if _, err := s.PlanRequest(req); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheEntries != 0 || st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("planning touched the cache: %+v", st)
	}
	// After a real solve, planning again must reuse the entry's probe and
	// still agree with the executed plan.
	v, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.PlanRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*v.Result.Plan, info) {
		t.Fatalf("warm plan %+v != executed %+v", info, *v.Result.Plan)
	}
}

// TestScalarSolveStreamsItsCase: even a single-RHS job emits one case
// event, so streaming clients need no special path for s=1.
func TestScalarSolveStreamsItsCase(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	job, err := s.Submit(plateReq(10, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	replay, ch, stop := s.Watch(job)
	defer stop()
	if len(replay) != 1 || replay[0].Case != 0 || !replay[0].Result.Converged {
		t.Fatalf("replay = %+v, want one converged case 0", replay)
	}
	if _, open := <-ch; open {
		t.Fatal("finished job's subscription channel not closed")
	}
}

// TestWatchTracksSubscriberGauge: the StreamSubscribers gauge counts open
// watches and a stop function is idempotent.
func TestWatchTracksSubscriberGauge(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	job, err := s.Submit(plateReq(8, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	_, _, stop1 := s.Watch(job)
	_, _, stop2 := s.Watch(job)
	if got := s.Stats().StreamSubscribers; got != 2 {
		t.Fatalf("gauge = %d with two watches, want 2", got)
	}
	stop1()
	stop1() // idempotent
	stop2()
	if got := s.Stats().StreamSubscribers; got != 0 {
		t.Fatalf("gauge = %d after stops, want 0", got)
	}
}

func ExampleEngine_PlanRequest() {
	s := New(Config{Workers: 1, WorkerBudget: 1})
	defer s.Close()
	tr := make([]float64, 40)
	for i := range tr {
		tr[i] = 1
	}
	info, err := s.PlanRequest(Request{
		Plate:  &PlateSpec{Rows: 20, Cols: 20, Tractions: tr},
		Solver: SolverSpec{M: 3},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(info.Backend, len(info.Tiles), info.Workers, info.M)
	// Output: dia 2 1 3
}
