package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/plan"
)

// tuningReq is a keyed batch request with the tuning policy pinned: enough
// columns to tile, keyed so every solve shares one cache entry.
func tuningReq(key, tuning string) Request {
	req := laplaceBatch(60, 12, key)
	req.Solver.Tuning = tuning
	return req
}

// TestTuningOffStaysStatic pins the escape hatch: with tuning off the plan
// is the static planner's decision on every solve — byte-for-byte, with no
// evidence attached and nothing fed back — no matter how warm the problem.
func TestTuningOffStaysStatic(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := tuningReq("tuning-off", "off")
	var first *PlanInfo
	for i := 0; i < plan.DefaultMinObservations+3; i++ {
		v, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if v.Result.Plan == nil {
			t.Fatal("result missing plan")
		}
		if i == 0 {
			first = v.Result.Plan
			continue
		}
		if !reflect.DeepEqual(v.Result.Plan, first) {
			t.Fatalf("solve %d: off-mode plan drifted:\n got %+v\nwant %+v", i, v.Result.Plan, first)
		}
	}
	if first.Tuning != "off" || first.Source != "static" || len(first.Candidates) != 0 {
		t.Fatalf("off-mode plan carries tuning evidence: %+v", first)
	}
	// The offline plan matches the executed one exactly, warm or not.
	pi, err := s.PlanRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&pi, first) {
		t.Fatalf("offline off-mode plan differs:\n got %+v\nwant %+v", &pi, first)
	}
	if st := s.Stats(); st.PlanFeedback != 0 {
		t.Fatalf("off mode recorded %d feedback observations", st.PlanFeedback)
	}
}

// TestTuningFeedbackRecorded: every clean cached solve folds its realized
// throughput into the tuner — visible in the stats counter and as a
// feedback stage on the job trace.
func TestTuningFeedbackRecorded(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := tuningReq("tuning-fb", "observe")
	var last JobView
	const solves = 3
	for i := 0; i < solves; i++ {
		v, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		last = v
	}
	if st := s.Stats(); st.PlanFeedback != solves {
		t.Fatalf("plan_feedback_total = %d, want %d", st.PlanFeedback, solves)
	}
	ti, ok := s.Trace(last.ID)
	if !ok {
		t.Fatal("trace missing")
	}
	found := false
	for _, sp := range ti.Spans {
		if sp.Name == "feedback" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no feedback span on trace: %+v", ti.Spans)
	}
}

// TestTuningObserveEvidenceKeepsStatic: past the gate, observe mode attaches
// the candidate table to results and offline plans while still executing
// the static plan.
func TestTuningObserveEvidenceKeepsStatic(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := tuningReq("tuning-observe", "observe")
	var static *PlanInfo
	var warm *PlanInfo
	for i := 0; i < plan.DefaultMinObservations+2; i++ {
		v, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			static = v.Result.Plan
		}
		warm = v.Result.Plan
	}
	if warm.Tuning != "observe" || len(warm.Candidates) == 0 {
		t.Fatalf("warm observe-mode plan has no evidence: %+v", warm)
	}
	if warm.Source != "static" {
		t.Fatalf("observe mode source = %q, want static", warm.Source)
	}
	// Execution stayed on the static structure decision.
	if !reflect.DeepEqual(warm.Tiles, static.Tiles) || warm.M != static.M || warm.Workers != static.Workers {
		t.Fatalf("observe mode changed the executed plan:\n got %+v\nwant %+v", warm, static)
	}
	chosen := 0
	for _, c := range warm.Candidates {
		if c.Chosen {
			chosen++
		}
		if c.Observations > 0 && c.MeasuredRHSPerSec <= 0 {
			t.Fatalf("measured candidate without throughput: %+v", c)
		}
	}
	if chosen != 1 {
		t.Fatalf("%d chosen candidates, want exactly 1", chosen)
	}
	// The offline plan carries the same evidence through POST /v1/plan.
	pi, err := s.PlanRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(pi.Candidates) == 0 || pi.Tuning != "observe" {
		t.Fatalf("offline plan missing evidence: %+v", pi)
	}
}

// TestTuningAdaptExecutesTunedPlan: in adapt mode a warm problem's executed
// plan is the selector's winner, its decision source explains why, and an
// alternate step count (when chosen) still solves correctly against the
// entry's alternate-M preconditioner pool.
func TestTuningAdaptExecutesTunedPlan(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := tuningReq("tuning-adapt", "adapt")
	var last JobView
	for i := 0; i < plan.DefaultMinObservations+6; i++ {
		v, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Result.Converged {
			t.Fatalf("solve %d not converged under adaptation", i)
		}
		last = v
	}
	pl := last.Result.Plan
	if pl.Tuning != "adapt" || len(pl.Candidates) == 0 {
		t.Fatalf("warm adapt-mode plan has no evidence: %+v", pl)
	}
	if pl.Source != "static" && pl.Source != "measured" && pl.Source != "predicted" {
		t.Fatalf("unknown plan source %q", pl.Source)
	}
	var chosen *PlanCandidate
	for i := range pl.Candidates {
		if pl.Candidates[i].Chosen {
			chosen = &pl.Candidates[i]
		}
	}
	if chosen == nil {
		t.Fatalf("no chosen candidate: %+v", pl.Candidates)
	}
	// The executed plan is the chosen candidate.
	if chosen.M != pl.M || chosen.Workers != pl.Workers || chosen.Interleave != pl.Interleave {
		t.Fatalf("executed plan %+v is not the chosen candidate %+v", pl, chosen)
	}
	// The result's alphas must match the executed M, even when tuned away
	// from the request's m (the alternate preconditioner pool).
	if pl.M > 0 && last.Result.Alphas != nil && last.Result.Alphas.M() != pl.M {
		t.Fatalf("alphas for m=%d but plan executed m=%d", last.Result.Alphas.M(), pl.M)
	}
}

// TestTuningValidation: unknown policies are rejected at every boundary.
func TestTuningValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := tuningReq("tuning-bad", "aggressive")
	if _, err := s.Submit(req); err == nil {
		t.Fatal("unknown tuning policy accepted by Submit")
	}
	if _, err := s.PlanRequest(req); err == nil {
		t.Fatal("unknown tuning policy accepted by PlanRequest")
	}
	// Policy names are case-insensitive on the wire.
	ok := tuningReq("tuning-case", "OBSERVE")
	if _, err := s.Solve(context.Background(), ok); err != nil {
		t.Fatalf("case-insensitive policy rejected: %v", err)
	}
}

// TestTuningExcludedFromCacheKey: the policy is execution policy, not
// problem identity — flipping it must not build a second cache entry.
func TestTuningExcludedFromCacheKey(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	if _, err := s.Solve(context.Background(), tuningReq("tuning-key", "off")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Solve(context.Background(), tuningReq("tuning-key", "adapt"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.CacheHit {
		t.Fatal("changing tuning policy missed the cache")
	}
	if st := s.Stats(); st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.CacheEntries)
	}
}
