package engine

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/cg"
	"repro/internal/obs"
	"repro/internal/poly"
)

// JobState is the lifecycle of a submitted solve.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// PlanInfo is the resolved execution plan recorded on a job result: the
// decisions the planner made for this request (see internal/plan). The
// same request re-planned offline (Engine.PlanRequest or POST /v1/plan)
// yields the same PlanInfo.
type PlanInfo struct {
	// Backend is the resolved matvec storage ("csr", "dia" or
	// "decomposed").
	Backend string `json:"backend"`
	// Tiles partitions the batch's column indices into the groups executed
	// as sequential block solves.
	Tiles [][]int `json:"tiles"`
	// Workers is the kernel goroutine fan-out each tile ran with.
	Workers int `json:"workers"`
	// M is the preconditioner step count.
	M int `json:"m"`
	// Subdomains is the processor count of a decomposed plan: the mesh is
	// partitioned this many ways, each subdomain run by a dedicated
	// goroutine (0 for the single-matrix backends).
	Subdomains int `json:"subdomains,omitempty"`
	// Kernel names the kernel set the solve's fused loops ran through
	// ("portable", "avx2", "neon").
	Kernel string `json:"kernel,omitempty"`
	// Interleave reports that the tiles ran on the row-interleaved panel
	// layout.
	Interleave bool `json:"interleave,omitempty"`
	// Tuning is the resolved feedback policy the plan was made under
	// ("off", "observe" or "adapt").
	Tuning string `json:"tuning,omitempty"`
	// Source reports how the plan was chosen: "static" for the planner's
	// structure heuristic (cold problems, tuning off, or a measured
	// confirmation that the static plan wins), "measured" for a candidate
	// promoted on observed throughput, "predicted" for an unmeasured
	// candidate promoted by the cost-model prior and exploration bonus.
	Source string `json:"plan_source,omitempty"`
	// Candidates is the evidence trail of a tuned decision: every plan the
	// selector considered, with measured rhs/s where the signature has
	// executed before and the cost-model prediction where it has not.
	// Empty until the problem crosses the tuner's observation gate.
	Candidates []PlanCandidate `json:"candidates,omitempty"`
}

// PlanCandidate is one plan the self-tuning planner considered, with the
// evidence it was ranked by.
type PlanCandidate struct {
	// Backend, TileWidth, Workers, M, Interleave, Kernel summarize the
	// candidate plan (TileWidth is the widest tile; tiling is balanced).
	Backend    string `json:"backend"`
	TileWidth  int    `json:"tile_width"`
	Workers    int    `json:"workers"`
	M          int    `json:"m"`
	Interleave bool   `json:"interleave,omitempty"`
	Kernel     string `json:"kernel,omitempty"`
	// MeasuredRHSPerSec is the mean realized throughput of Observations
	// executed solves with this plan (0 when unmeasured).
	MeasuredRHSPerSec float64 `json:"measured_rhs_per_second,omitempty"`
	Observations      int     `json:"observations,omitempty"`
	// SecondsPerIteration is the mean execute time per block iteration —
	// the per-iteration cost the m in m-step trades against.
	SecondsPerIteration float64 `json:"seconds_per_iteration,omitempty"`
	// PredictedRHSPerSec is the cost-model prior for an unmeasured
	// candidate, anchored to the best measured plan (0 when measured).
	PredictedRHSPerSec float64 `json:"predicted_rhs_per_second,omitempty"`
	// Score is the exploration-adjusted value the selection ranked by.
	Score float64 `json:"score,omitempty"`
	// Chosen marks the candidate the decision picked.
	Chosen bool `json:"chosen,omitempty"`
}

// JobResult reports a finished solve.
type JobResult struct {
	// JobID is the id of the job that produced this result, the key for the
	// trace endpoint (GET /v1/jobs/{id}/trace) after the solve completes.
	JobID         string  `json:"job_id,omitempty"`
	Converged     bool    `json:"converged"`
	Iterations    int     `json:"iterations"`
	MatVecs       int     `json:"matvecs"`
	PrecondApps   int     `json:"precond_apps"`
	InnerProducts int     `json:"inner_products"`
	FinalUDiff    float64 `json:"final_udiff"`
	FinalRelRes   float64 `json:"final_relres"`
	// Precond names the preconditioner, e.g. "3-step ssor-multicolor
	// (least-squares)".
	Precond string `json:"precond"`
	// Backend is the matvec storage the solve ran on ("csr", "dia" or
	// "decomposed") — the resolved form of the request's "backend" field.
	Backend string `json:"backend,omitempty"`
	// Plan is the execution plan the job ran: backend, batch tiles, kernel
	// fan-out, and step count, as the planner resolved them.
	Plan *PlanInfo `json:"plan,omitempty"`
	// IntervalLo/Hi report the spectral interval used for parametrized
	// coefficients (0,0 when none was needed).
	IntervalLo float64 `json:"interval_lo,omitempty"`
	IntervalHi float64 `json:"interval_hi,omitempty"`
	// Alphas reports the m-step polynomial coefficients the preconditioner
	// ran with (nil when M == 0).
	Alphas *poly.Alphas `json:"alphas,omitempty"`
	// CGStats carries the full CG iteration report for single-RHS solves —
	// recurrence coefficients, optional histories — for in-process callers
	// (repro.Solve reconstructs its Result from it). Never serialized; HTTP
	// results carry the flat counters above instead.
	CGStats *cg.Stats `json:"-"`
	// U is the solution in the solver's ordering (multicolor for plates);
	// omitted when the request set OmitSolution.
	U []float64 `json:"u,omitempty"`
	// Nodes, NodeU, NodeV are the per-free-node displacements for plate
	// problems (solution mapped back out of the multicolor ordering).
	Nodes []int     `json:"nodes,omitempty"`
	NodeU []float64 `json:"node_u,omitempty"`
	NodeV []float64 `json:"node_v,omitempty"`

	// RHS is the number of right-hand sides solved; Cases holds the
	// per-RHS outcomes for batched requests (len(Cases) == RHS when > 1).
	// For batches the top-level counters describe the shared block solves:
	// Iterations is the block iteration count summed over the plan's
	// tiles, MatVecs the SpMM count (one per tile iteration), PrecondApps
	// the block sweeps.
	RHS   int          `json:"rhs,omitempty"`
	Cases []CaseResult `json:"cases,omitempty"`
}

// CaseResult reports one right-hand side of a batched solve.
type CaseResult struct {
	Converged   bool    `json:"converged"`
	Iterations  int     `json:"iterations"`
	FinalUDiff  float64 `json:"final_udiff"`
	FinalRelRes float64 `json:"final_relres"`
	// Error reports a per-case failure (breakdown or iteration limit);
	// empty for converged cases.
	Error string `json:"error,omitempty"`
	// U is the case's solution in the solver's ordering; omitted when the
	// request set OmitSolution.
	U []float64 `json:"u,omitempty"`
	// Nodes, NodeU, NodeV are the per-free-node displacements for plate
	// problems.
	Nodes []int     `json:"nodes,omitempty"`
	NodeU []float64 `json:"node_u,omitempty"`
	NodeV []float64 `json:"node_v,omitempty"`
	// CGStats carries the case's full CG iteration report for in-process
	// callers (repro.SolveBatch reconstructs its Results from it). Never
	// serialized.
	CGStats *cg.Stats `json:"-"`
}

// CaseEvent is one streamed per-case completion: case Case converged (or
// failed) while the rest of the job was still running. The terminal event
// of a stream instead carries the finished job in Done (with Case = -1);
// exactly one Done event ends every stream.
type CaseEvent struct {
	// Seq is the event's position in the job's delivery order, starting at
	// 1 and strictly increasing. It is the SSE event ID: a client that
	// reattaches with Last-Event-ID = Seq skips everything already
	// delivered. 0 on the terminal Done event.
	Seq    int         `json:"seq,omitempty"`
	Case   int         `json:"case"`
	Result *CaseResult `json:"result,omitempty"`
	Done   *JobView    `json:"done,omitempty"`
}

// Job is the engine’s record of one solve. The lifecycle fields are
// guarded by the owning Engine’s mutex; the streaming state (per-case
// table, subscribers) is guarded by the job's own mutex, because case
// completions arrive from the solve's hot loop and must not contend with
// every other job's bookkeeping.
type Job struct {
	id   string
	req  Request
	done chan struct{}

	// ctx is canceled to abort the solve (client disconnect on a
	// synchronous request, Engine.Cancel, or engine shutdown); the solve
	// loop polls it at iteration boundaries.
	ctx    context.Context
	cancel context.CancelFunc

	state      JobState
	cacheHit   bool
	result     *JobResult
	err        error
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time

	// trace, conv and queueSpan are the job's observability record: the
	// stage timeline, the per-iteration convergence sampler the solve's
	// Observer feeds, and the open "queue" span the dequeuing worker closes.
	// All three are created by Submit before the job becomes visible, so
	// they are safe to read without a lock for the job's whole life.
	trace     *obs.Trace
	conv      *obs.ConvergenceLog
	queueSpan *obs.Span

	// Streaming state.
	smu      sync.Mutex
	cases    []CaseResult // per-case results, filled as columns converge
	caseDone []bool
	caseSeq  []int // per-case delivery order (1-based), for SSE event IDs
	nDone    int
	subs     map[int]chan CaseEvent
	nextSub  int
	closed   bool // all case events delivered; subscriber channels closed
}

// JobView is an immutable snapshot of a job, shaped for JSON.
type JobView struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	CacheHit bool     `json:"cache_hit"`
	// CasesDone/CasesTotal report streaming progress: how many of the
	// job's right-hand sides have individually finished (0/0 until the
	// solve starts).
	CasesDone  int `json:"cases_done,omitempty"`
	CasesTotal int `json:"cases_total,omitempty"`
	// QueuedSeconds is enqueue→start (or →now while queued); RunSeconds is
	// start→finish (or →now while running).
	QueuedSeconds float64    `json:"queued_seconds"`
	RunSeconds    float64    `json:"run_seconds"`
	Error         string     `json:"error,omitempty"`
	Result        *JobResult `json:"result,omitempty"`
}

// view snapshots the job; the caller must hold the engine mutex.
func (j *Job) view(now time.Time) JobView {
	v := JobView{ID: j.id, State: j.state, CacheHit: j.cacheHit, Result: j.result}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	switch j.state {
	case JobQueued:
		v.QueuedSeconds = now.Sub(j.enqueuedAt).Seconds()
	case JobRunning:
		v.QueuedSeconds = j.startedAt.Sub(j.enqueuedAt).Seconds()
		v.RunSeconds = now.Sub(j.startedAt).Seconds()
	default:
		v.QueuedSeconds = j.startedAt.Sub(j.enqueuedAt).Seconds()
		v.RunSeconds = j.finishedAt.Sub(j.startedAt).Seconds()
	}
	j.smu.Lock()
	v.CasesDone, v.CasesTotal = j.nDone, len(j.cases)
	j.smu.Unlock()
	return v
}

// Done reports completion: the channel closes when the job reaches JobDone
// or JobFailed.
func (j *Job) Done() <-chan struct{} { return j.done }

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Err returns the job's failure cause (the original error value, so callers
// can unwrap per-column joins and context errors). Only valid after Done is
// closed: the fields are published before the channel close.
func (j *Job) Err() error { return j.err }

// Result returns the finished job's result (possibly partial on failure,
// nil when the job failed before executing). Only valid after Done is
// closed.
func (j *Job) Result() *JobResult { return j.result }

// Cancel aborts the job: queued jobs are skipped when dequeued, running
// solves stop at the next iteration boundary (reported as failed with the
// context's error). Canceling a finished job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// initCases sizes the per-case state table before execution starts.
func (j *Job) initCases(rhs int) {
	j.smu.Lock()
	j.cases = make([]CaseResult, rhs)
	j.caseDone = make([]bool, rhs)
	j.caseSeq = make([]int, rhs)
	j.smu.Unlock()
}

// caseFinished records case idx's final result and publishes it to every
// subscriber. Called from the solve loop (via the deflation hook), so it
// must not block: subscriber channels are buffered to hold the job's full
// case count, and anything beyond that (impossible by construction) is
// dropped rather than stalling the solver.
func (j *Job) caseFinished(idx int, cr CaseResult) {
	j.smu.Lock()
	defer j.smu.Unlock()
	if j.caseDone[idx] {
		return
	}
	j.caseDone[idx] = true
	j.cases[idx] = cr
	j.nDone++
	j.caseSeq[idx] = j.nDone
	ev := CaseEvent{Seq: j.nDone, Case: idx, Result: &j.cases[idx]}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// snapshotCases copies the per-case table into a result (after every tile
// has executed).
func (j *Job) snapshotCases() []CaseResult {
	j.smu.Lock()
	defer j.smu.Unlock()
	out := make([]CaseResult, len(j.cases))
	copy(out, j.cases)
	return out
}

// subscribe registers a streaming consumer: it returns the already-finished
// cases as replay events plus a channel carrying every later completion.
// The channel is closed once the job finishes and all events are delivered;
// a subscriber joining after that gets the full replay and an
// already-closed channel. Replay is ordered by delivery sequence (the order
// the cases originally finished in), so a whole stream — replay then live —
// carries strictly increasing Seq values.
func (j *Job) subscribe() (replay []CaseEvent, ch <-chan CaseEvent, id int) {
	j.smu.Lock()
	defer j.smu.Unlock()
	for idx := range j.cases {
		if j.caseDone[idx] {
			replay = append(replay, CaseEvent{Seq: j.caseSeq[idx], Case: idx, Result: &j.cases[idx]})
		}
	}
	sort.Slice(replay, func(a, b int) bool { return replay[a].Seq < replay[b].Seq })
	// Buffered to the largest number of events that can still arrive, so
	// the solver-side publish never blocks. Before the solve starts the
	// case table is empty, so size by the request's batch width instead.
	c := make(chan CaseEvent, max(j.req.batchSize(), len(j.cases))-len(replay)+1)
	if j.closed {
		close(c)
		return replay, c, -1
	}
	if j.subs == nil {
		j.subs = make(map[int]chan CaseEvent)
	}
	id = j.nextSub
	j.nextSub++
	j.subs[id] = c
	return replay, c, id
}

// unsubscribe drops a subscriber (no-op after closeStreams).
func (j *Job) unsubscribe(id int) {
	j.smu.Lock()
	defer j.smu.Unlock()
	if ch, ok := j.subs[id]; ok {
		delete(j.subs, id)
		close(ch)
	}
}

// closeStreams ends every subscription; stream handlers then emit their
// terminal event from the finished job view. Called exactly once, at job
// completion.
func (j *Job) closeStreams() {
	j.smu.Lock()
	defer j.smu.Unlock()
	j.closed = true
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
}
