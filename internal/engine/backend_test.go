package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// backendReq is plateReq with an explicit backend selection.
func backendReq(rows, cols int, backend string) Request {
	req := plateReq(rows, cols, 2)
	req.Solver.Backend = backend
	return req
}

func TestEngineBackendSelectionEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	// A banded multicolor plate, solved once per backend policy. All three
	// share one cache entry (the backend is not part of the key); the DIA
	// conversion rides in the entry next to the CSR.
	dia, err := s.Solve(context.Background(), backendReq(10, 10, "dia"))
	if err != nil {
		t.Fatal(err)
	}
	if dia.State != JobDone || !dia.Result.Converged || dia.Result.Backend != "dia" {
		t.Fatalf("dia solve: state=%s backend=%q converged=%v", dia.State, dia.Result.Backend, dia.Result.Converged)
	}
	csr, err := s.Solve(context.Background(), backendReq(10, 10, "csr"))
	if err != nil {
		t.Fatal(err)
	}
	if csr.Result.Backend != "csr" {
		t.Fatalf("csr solve reported backend %q", csr.Result.Backend)
	}
	if !csr.CacheHit {
		t.Fatal("csr-backend solve of the same plate missed the cache (backend leaked into the key)")
	}
	auto, err := s.Solve(context.Background(), backendReq(10, 10, "auto"))
	if err != nil {
		t.Fatal(err)
	}
	if auto.Result.Backend != "dia" {
		t.Fatalf("auto on the banded plate resolved to %q, want dia", auto.Result.Backend)
	}

	// Both backends solved the same problem: solutions agree to rounding.
	for i := range csr.Result.U {
		if diff := math.Abs(csr.Result.U[i] - dia.Result.U[i]); diff > 1e-8*(1+math.Abs(csr.Result.U[i])) {
			t.Fatalf("solutions deviate at %d: %g vs %g", i, csr.Result.U[i], dia.Result.U[i])
		}
	}

	st := s.Stats()
	if st.SolvesDIA != 2 || st.SolvesCSR != 1 {
		t.Fatalf("per-backend counts csr=%d dia=%d, want 1/2", st.SolvesCSR, st.SolvesDIA)
	}
}

func TestEngineAutoPicksCSROnScatteredSystem(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	// Random scattered fill: the occupied-diagonal count grows with n, so
	// auto must stay on row storage.
	rng := rand.New(rand.NewSource(5))
	n := 200
	var is, js []int
	var vs []float64
	rowAbs := make([]float64, n)
	for k := 0; k < 4*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.Float64()*2 - 1
		is = append(is, i, j)
		js = append(js, j, i)
		vs = append(vs, v, v)
		rowAbs[i] += math.Abs(v)
		rowAbs[j] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		is = append(is, i)
		js = append(js, i)
		vs = append(vs, rowAbs[i]+1)
	}
	f := make([]float64, n)
	f[0] = 1
	v, err := s.Solve(context.Background(), Request{
		System: &SystemSpec{N: n, I: is, J: js, V: vs, F: f},
		Solver: SolverSpec{M: 1, Splitting: "jacobi", RelResidualTol: 1e-8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Result.Backend != "csr" {
		t.Fatalf("auto on scattered fill resolved to %q, want csr", v.Result.Backend)
	}
	if st := s.Stats(); st.SolvesCSR != 1 || st.SolvesDIA != 0 {
		t.Fatalf("per-backend counts csr=%d dia=%d, want 1/0", st.SolvesCSR, st.SolvesDIA)
	}
}

func TestEngineUnknownBackendRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(backendReq(6, 6, "ellpack")); err == nil {
		t.Fatal("Submit accepted an unknown backend")
	}
}

func TestCacheEntrySharesDIAConversion(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	if _, err := s.Solve(context.Background(), backendReq(8, 8, "dia")); err != nil {
		t.Fatal(err)
	}
	req := backendReq(8, 8, "dia")
	key := req.CacheKey()
	entry, existed := s.cache.get(key)
	if !existed {
		t.Fatalf("no cache entry for %q", key)
	}
	first, err := entry.getDIA()
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("DIA conversion not cached in the entry")
	}
	if _, err := s.Solve(context.Background(), backendReq(8, 8, "dia")); err != nil {
		t.Fatal(err)
	}
	again, _ := entry.getDIA()
	if again != first {
		t.Fatal("repeated DIA solve re-converted instead of reusing the cached conversion")
	}
}
