package engine

import (
	"context"
	"math"
	"testing"
)

// decompReq is a plate request pinned to the decomposed backend.
func decompReq(rows, cols, m, p int) Request {
	return Request{
		Plate:  &PlateSpec{Rows: rows, Cols: cols},
		Solver: SolverSpec{M: m, Tol: 1e-7, Backend: "decomposed", Subdomains: p},
	}
}

// TestDecomposedBackendMatchesCSR is the ISSUE's acceptance check: the same
// request through BackendDecomposed at P = 4 produces the same displacements
// as the single-matrix CSR path, to tolerance.
func TestDecomposedBackendMatchesCSR(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	csr := Request{
		Plate:  &PlateSpec{Rows: 14, Cols: 14},
		Solver: SolverSpec{M: 2, Tol: 1e-7, Backend: "csr"},
	}
	want, err := s.Solve(context.Background(), csr)
	if err != nil {
		t.Fatal(err)
	}

	v, err := s.Solve(context.Background(), decompReq(14, 14, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	res := v.Result
	if res == nil || !res.Converged {
		t.Fatalf("decomposed job not converged: %+v", v)
	}
	if res.Backend != "decomposed" {
		t.Fatalf("backend = %q, want decomposed", res.Backend)
	}
	if res.Plan == nil || res.Plan.Subdomains != 4 {
		t.Fatalf("plan = %+v, want 4 subdomains", res.Plan)
	}
	var scale float64
	for _, x := range want.Result.U {
		if a := math.Abs(x); a > scale {
			scale = a
		}
	}
	for i := range want.Result.U {
		if d := math.Abs(res.U[i] - want.Result.U[i]); d > 1e-5*scale+1e-9 {
			t.Fatalf("solution deviates at %d by %g", i, d)
		}
	}
	if len(res.NodeU) != len(want.Result.NodeU) {
		t.Fatalf("node displacements missing: %d vs %d", len(res.NodeU), len(want.Result.NodeU))
	}

	// The trace carries the per-subdomain stage breakdown.
	ti, ok := s.Trace(res.JobID)
	if !ok {
		t.Fatalf("no trace for %s", res.JobID)
	}
	counts := map[string]int{}
	subSeen := map[string]map[int]bool{
		"halo_exchange": {}, "local_sweep": {}, "reduce": {},
	}
	for _, sp := range ti.Spans {
		counts[sp.Name]++
		if set, ok := subSeen[sp.Name]; ok {
			if r, ok := sp.Attrs["subdomain"].(int); ok {
				set[r] = true
			}
		}
	}
	if counts["decompose"] != 1 {
		t.Errorf("want one decompose span, got %d", counts["decompose"])
	}
	for _, name := range []string{"halo_exchange", "local_sweep", "reduce"} {
		if counts[name] != 4 {
			t.Errorf("%s spans = %d, want one per subdomain (4)", name, counts[name])
		}
		if len(subSeen[name]) != 4 {
			t.Errorf("%s spans cover %d distinct subdomains, want 4", name, len(subSeen[name]))
		}
	}

	// Operational counters attribute the job to the decomposed backend.
	st := s.Stats()
	if st.SolvesDecomposed != 1 {
		t.Errorf("solves_decomposed = %d, want 1", st.SolvesDecomposed)
	}
	if st.LatencyP99Decomposed <= 0 {
		t.Errorf("decomposed latency quantile not recorded")
	}
}

// TestDecomposedPlanEndpoint: PlanRequest reports the decomposed backend and
// subdomain count without solving, matching the plan the solve then runs.
func TestDecomposedPlanEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := decompReq(12, 12, 2, 3)
	pi, err := s.PlanRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if pi.Backend != "decomposed" || pi.Subdomains != 3 {
		t.Fatalf("plan = %+v, want decomposed/3", pi)
	}
	v, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := *v.Result.Plan; got.Backend != pi.Backend || got.Subdomains != pi.Subdomains {
		t.Fatalf("solve plan %+v != offline plan %+v", got, pi)
	}
}

// TestDecomposedBatch: batched load cases run sequentially over the one
// decomposition, each emitting its own case result.
func TestDecomposedBatch(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := Request{
		Plate:  &PlateSpec{Rows: 10, Cols: 10, Tractions: []float64{1, 2.5, -1}},
		Solver: SolverSpec{M: 1, Tol: 1e-7, Backend: "decomposed", Subdomains: 2},
	}
	v, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res := v.Result
	if !res.Converged || len(res.Cases) != 3 {
		t.Fatalf("batch result %+v", res)
	}
	// Load linearity: case k is case 0 scaled by its traction ratio (each
	// case converged independently to Tol, so agreement is to solver
	// tolerance, not machine precision).
	for i := range res.Cases[0].U {
		want := 2.5 * res.Cases[0].U[i]
		if d := math.Abs(res.Cases[1].U[i] - want); d > 1e-4*math.Abs(want)+1e-7 {
			t.Fatalf("case 1 not linear in traction at %d: %g vs %g", i, res.Cases[1].U[i], want)
		}
	}
}

// TestDecomposedRejectsGeneralSystems: the decomposed backend needs the
// mesh, so forcing it on a coordinate-form system fails cleanly.
func TestDecomposedRejectsGeneralSystems(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := laplace1D(64, "")
	req.Solver.Backend = "decomposed"
	if _, err := s.Solve(context.Background(), req); err == nil {
		t.Fatal("want failure for decomposed backend on a general system")
	}
}

// TestDecomposedRejectsIncompatibleSplitting: the subdomain sweep is the
// multicolor SSOR at ω = 1; forcing the backend with another splitting must
// fail rather than silently run the wrong preconditioner.
func TestDecomposedRejectsIncompatibleSplitting(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := Request{
		Plate:  &PlateSpec{Rows: 8, Cols: 8},
		Solver: SolverSpec{M: 2, Splitting: "jacobi", Tol: 1e-7, Backend: "decomposed", Subdomains: 2},
	}
	if _, err := s.Solve(context.Background(), req); err == nil {
		t.Fatal("want failure for decomposed backend with a jacobi splitting")
	}
}

// TestSubdomainsValidation: the subdomain pin is bounds-checked at submit.
func TestSubdomainsValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for _, bad := range []int{-1, maxSubdomains + 1} {
		req := plateReq(6, 6, 0)
		req.Solver.Subdomains = bad
		if _, err := s.Submit(req); err == nil {
			t.Errorf("subdomains = %d accepted", bad)
		}
	}
}
