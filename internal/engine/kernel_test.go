package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/kernel"
)

// TestEngineUnknownKernelRejected: the kernel policy is validated at the
// request boundary, before any work is queued.
func TestEngineUnknownKernelRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := laplaceBatch(20, 2, "")
	req.Solver.Kernel = "simd9000"
	if _, err := s.Solve(context.Background(), req); err == nil || !strings.Contains(err.Error(), "kernel policy") {
		t.Fatalf("want kernel-policy rejection, got %v", err)
	}
}

// TestEnginePlanReportsKernel: the job's recorded plan carries the kernel
// set and layout decision; a wide plate batch interleaves, and forcing the
// portable set round-trips into the plan. Case-insensitive like the rest of
// the spec fields.
func TestEnginePlanReportsKernel(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	req := Request{
		Plate:  &PlateSpec{Rows: 8, Cols: 8, Tractions: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		Solver: SolverSpec{M: 2, RelResidualTol: 1e-9, Kernel: "Portable"},
	}
	v, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v.Result == nil || v.Result.Plan == nil {
		t.Fatal("no plan recorded on the batch result")
	}
	if !v.Result.Plan.Interleave {
		t.Fatalf("8-wide plate batch did not interleave: %+v", v.Result.Plan)
	}
	if v.Result.Plan.Kernel != "portable" {
		t.Fatalf("plan kernel %q, want portable", v.Result.Plan.Kernel)
	}

	req.Solver.Kernel = ""
	v2, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Result.Plan.Kernel != kernel.Active().Name {
		t.Fatalf("auto plan kernel %q, want %q", v2.Result.Plan.Kernel, kernel.Active().Name)
	}
	// The kernel policy is an execution knob, not an identity: both solves
	// must have shared one cache entry.
	st := s.Stats()
	if st.CacheMisses != 1 || st.CacheHits < 1 {
		t.Fatalf("kernel policy split the cache: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
}
