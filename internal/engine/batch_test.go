package engine

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// laplaceBatch builds a keyed general-system batch request: the 1-D
// Laplacian with s distinct right-hand sides.
func laplaceBatch(n, s int, key string) Request {
	var i, j []int
	var v []float64
	add := func(a, b int, x float64) { i = append(i, a); j = append(j, b); v = append(v, x) }
	for k := 0; k < n; k++ {
		add(k, k, 2)
		if k > 0 {
			add(k, k-1, -1)
			add(k-1, k, -1)
		}
	}
	fs := make([][]float64, s)
	for c := range fs {
		fs[c] = make([]float64, n)
		fs[c][(c+1)*n/(s+1)] = float64(c + 1)
	}
	return Request{
		System: &SystemSpec{N: n, I: i, J: j, V: v, Fs: fs, Key: key},
		Solver: SolverSpec{M: 2, Splitting: "jacobi", RelResidualTol: 1e-10},
	}
}

// TestEngineBatchMatchesScalar: a batched system request must return one
// case per RHS, each matching the equivalent single-RHS solve.
func TestEngineBatchMatchesScalar(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	const n, cases = 40, 3
	req := laplaceBatch(n, cases, "")
	v, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != JobDone || v.Result == nil {
		t.Fatalf("batch job not done: %+v", v)
	}
	if v.Result.RHS != cases || len(v.Result.Cases) != cases {
		t.Fatalf("want %d cases, got rhs=%d cases=%d", cases, v.Result.RHS, len(v.Result.Cases))
	}
	if !v.Result.Converged {
		t.Fatal("batch not converged")
	}
	// One SpMM per outer iteration (MatVecs carries the SpMM count).
	if v.Result.MatVecs != v.Result.Iterations {
		t.Fatalf("MatVecs %d != Iterations %d for block job", v.Result.MatVecs, v.Result.Iterations)
	}
	for c := 0; c < cases; c++ {
		scalar := req
		sys := *req.System
		sys.F = req.System.Fs[c]
		sys.Fs = nil
		scalar.System = &sys
		sv, err := s.Solve(context.Background(), scalar)
		if err != nil {
			t.Fatal(err)
		}
		cr := v.Result.Cases[c]
		if !cr.Converged || cr.Error != "" {
			t.Fatalf("case %d not converged: %+v", c, cr)
		}
		if len(cr.U) != n {
			t.Fatalf("case %d solution length %d", c, len(cr.U))
		}
		for i := range cr.U {
			if math.Abs(cr.U[i]-sv.Result.U[i]) > 1e-10 {
				t.Fatalf("case %d deviates from scalar solve at %d: %g vs %g", c, i, cr.U[i], sv.Result.U[i])
			}
		}
	}
}

// TestEngineBatchPlateTractions: plate load cases scale the base RHS, and
// by linearity the displacements must scale accordingly.
func TestEngineBatchPlateTractions(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	req := Request{
		Plate:  &PlateSpec{Rows: 8, Cols: 8, Tractions: []float64{1, 2.5, -1}},
		Solver: SolverSpec{M: 2, Coeffs: "least-squares", RelResidualTol: 1e-11},
	}
	v, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v.Result.RHS != 3 || len(v.Result.Cases) != 3 {
		t.Fatalf("want 3 cases, got %+v", v.Result)
	}
	base := v.Result.Cases[0]
	if len(base.NodeU) == 0 || len(base.Nodes) != len(base.NodeU) {
		t.Fatalf("case missing node displacements: %+v", base)
	}
	for c, scale := range []float64{1, 2.5, -1} {
		cr := v.Result.Cases[c]
		if !cr.Converged {
			t.Fatalf("case %d not converged", c)
		}
		for i := range base.U {
			if math.Abs(cr.U[i]-scale*base.U[i]) > 1e-7*(1+math.Abs(base.U[i])) {
				t.Fatalf("case %d (traction scale %g) not linear at %d", c, scale, i)
			}
		}
	}

	// A second identical batch must hit the same cache entry.
	v2, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.CacheHit {
		t.Fatal("second batch missed the cache")
	}
}

// TestEngineBatchConcurrentSharedEntry: many concurrent batch jobs with
// one cache key must share a single build and all converge (run under
// -race in CI).
func TestEngineBatchConcurrentSharedEntry(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Close()

	const jobs = 12
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	views := make([]JobView, jobs)
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := laplaceBatch(60, 4, "shared-batch")
			views[g], errs[g] = s.Solve(context.Background(), req)
		}(g)
	}
	wg.Wait()
	for g := 0; g < jobs; g++ {
		if errs[g] != nil {
			t.Fatalf("job %d: %v", g, errs[g])
		}
		if !views[g].Result.Converged || len(views[g].Result.Cases) != 4 {
			t.Fatalf("job %d bad result: %+v", g, views[g].Result)
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Fatalf("want exactly one cache build, got %d misses", st.CacheMisses)
	}
}

// TestBatchValidation covers the batched-request shape checks.
func TestBatchValidation(t *testing.T) {
	base := laplaceBatch(10, 2, "")
	bad := base
	sys := *base.System
	sys.F = make([]float64, 10) // both f and fs
	bad.System = &sys
	if err := bad.Validate(); err == nil {
		t.Fatal("f+fs accepted")
	}
	sys = *base.System
	sys.Fs = [][]float64{{1, 2}} // wrong length
	bad.System = &sys
	if err := bad.Validate(); err == nil {
		t.Fatal("short rhs accepted")
	}
	sys = *base.System
	sys.Fs = make([][]float64, maxBatchRHS+1)
	for i := range sys.Fs {
		sys.Fs[i] = make([]float64, 10)
	}
	bad.System = &sys
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized batch accepted")
	}
	plate := Request{
		Plate:  &PlateSpec{Rows: 4, Cols: 4, Tractions: make([]float64, maxBatchRHS+1)},
		Solver: SolverSpec{M: 1},
	}
	if err := plate.Validate(); err == nil {
		t.Fatal("oversized plate batch accepted")
	}
}

// TestQuantileNearestRank pins the ceil-based nearest-rank definition:
// p99 of 50 samples is the maximum (rank ⌈0.99·50⌉ = 50), not index 48.
func TestQuantileNearestRank(t *testing.T) {
	r := newLatencyRing(64)
	for i := 1; i <= 50; i++ {
		r.add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.99, 50}, // ⌈49.5⌉ = 50 → last sample; truncation read 48 (the p96)
		{0.50, 25}, // ⌈25⌉ = 25
		{0.02, 1},  // ⌈1⌉ = 1 → first sample
		{0, 1},     // clamped to the first sample
		{1, 50},
	}
	for _, c := range cases {
		if got := r.quantile(c.q); got != c.want {
			t.Fatalf("quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	single := newLatencyRing(16)
	single.add(7)
	if got := single.quantile(0.99); got != 7 {
		t.Fatalf("single-sample p99 = %g", got)
	}
}

// TestCacheCheckoutPlumbsRebuildError: when a pooled rebuild fails, the
// job error must carry the underlying cause, not a generic message.
func TestCacheCheckoutPlumbsRebuildError(t *testing.T) {
	req := plateReq(6, 6, 2)
	e := &cacheEntry{key: req.CacheKey()}
	e.build(&req, nil)
	if e.err != nil {
		t.Fatal(e.err)
	}
	// Drain the pooled instance, then corrupt the pinned config so the
	// rebuild fails the way a real regression would.
	if p, err := e.checkout(); err != nil || p == nil {
		t.Fatalf("first checkout: %v", err)
	}
	e.cfg.Splitting = core.SplittingKind(99)
	_, err := e.checkout()
	if err == nil {
		t.Fatal("corrupted rebuild returned no error")
	}
	if !strings.Contains(err.Error(), "unknown splitting") {
		t.Fatalf("rebuild error lost its cause: %v", err)
	}
}

// TestBatchRHSBlockUsesRequestF: a keyed system request solved after
// another request built the cache entry must use its own right-hand side,
// not the entry creator's.
func TestBatchRHSBlockUsesRequestF(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	first := laplace1D(30, "rhs-own")
	if _, err := s.Solve(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	second := laplace1D(30, "rhs-own")
	sys := *second.System
	sys.F = make([]float64, 30)
	sys.F[3] = 10 // a different load than the entry creator's
	second.System = &sys
	v, err := s.Solve(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	if !v.CacheHit {
		t.Fatal("expected a cache hit")
	}
	// Solve the same system uncached and compare.
	third := second
	sys3 := *second.System
	sys3.Key = ""
	third.System = &sys3
	want, err := s.Solve(context.Background(), third)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Result.U {
		if math.Abs(v.Result.U[i]-want.Result.U[i]) > 1e-10 {
			t.Fatalf("cached-entry solve ignored the request RHS at %d: %g vs %g",
				i, v.Result.U[i], want.Result.U[i])
		}
	}
}
