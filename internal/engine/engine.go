package engine

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// ErrQueueFull reports a bounded-queue rejection; HTTP maps it to 503.
var ErrQueueFull = errors.New("engine: job queue full")

// ErrClosed reports submission to a closed engine.
var ErrClosed = errors.New("engine: closed")

// Config sizes the engine. Zero values pick sensible defaults.
type Config struct {
	// Workers is the number of concurrent solves (default GOMAXPROCS).
	Workers int
	// WorkerBudget is the goroutine fan-out each solve may use for its
	// SpMV/dot/axpy kernels. The default divides GOMAXPROCS by Workers
	// (min 1), so Workers × WorkerBudget never oversubscribes the machine.
	WorkerBudget int
	// TileBudgetBytes bounds the multivector working set of one batch
	// tile: the planner splits wide batches (s ≫ 8) into cache-sized
	// column tiles executed sequentially (0 = plan.DefaultBudgetBytes).
	TileBudgetBytes int
	// QueueDepth bounds the job queue (default 256); submissions beyond it
	// fail fast with ErrQueueFull.
	QueueDepth int
	// CacheSize bounds the problem/preconditioner cache entries
	// (default 64).
	CacheSize int
	// HistoryLimit bounds retained finished jobs (default 512); older
	// finished jobs are forgotten and their IDs return 404.
	HistoryLimit int
	// LatencyWindow sizes the latency sample for p50/p99 (default 1024).
	LatencyWindow int
	// NodeID, when non-empty, names this engine instance and prefixes every
	// job ID it mints ("n1-j-000042" instead of "j-000042"). Fleet members
	// set it (solverd -node-id) so job IDs are unique across the cluster and
	// a router can steer job lookups straight to the owning node by prefix.
	NodeID string
	// Tuning is the session default feedback policy for requests that do
	// not pin their own ("off", "observe" or "adapt"; empty means adapt):
	// whether the engine folds each executed plan's realized throughput
	// back into later plan decisions. See plan.TuningMode.
	Tuning string
	// Logger receives structured job-lifecycle logs (submitted, started,
	// finished, failed) with job ids attached. nil discards them — the
	// engine never logs to a default destination a library caller didn't
	// choose.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = max(1, runtime.GOMAXPROCS(0)/c.Workers)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 512
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	return c
}

// Engine runs solves on a bounded worker pool with a problem cache. Every
// job follows the plan → execute → emit pipeline: the planner (one shared
// instance of plan.Planner) resolves the request into an execution plan,
// the worker runs the plan's tiles, and per-case completions are emitted to
// the job's state table and stream subscribers as they happen.
type Engine struct {
	cfg      Config
	planner  plan.Planner
	queue    chan *Job
	cache    *cache
	lat      *latencyRing
	logger   *slog.Logger
	idPrefix string // NodeID + "-" when configured; "" otherwise

	// latByBackend splits the latency window by resolved matvec backend
	// (keys "csr", "dia" and "decomposed"), feeding the per-backend
	// quantiles in Stats.
	latByBackend map[string]*latencyRing

	// metrics is the engine's instrument registry (GET /metrics); the
	// histogram instruments below are registered once at construction and
	// observed from the hot path without further registry lookups.
	metrics      *obs.Registry
	hQueueWait   *obs.Histogram
	hJobDuration map[string]*obs.Histogram // by backend label
	hCaseIters   *obs.Histogram
	hPlanRHS     *obs.Histogram

	// tuner closes the plan → execute → measure loop: every cached solve's
	// realized rhs/s is folded into its per-problem observation store, and
	// warm problems re-plan from the measurements (policy per request via
	// SolverSpec.Tuning, session default via Config.Tuning).
	tuner *plan.Tuner

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // finished job IDs in completion order, for eviction
	closed   bool

	nextID atomic.Int64

	// cmu guards the service counters below as one unit, so a Stats
	// snapshot reads them in a single consistent view — a job can no longer
	// appear in jobs_done while its iterations are still missing from
	// total_iterations, which the old field-by-field atomics allowed.
	cmu              sync.Mutex
	running          int64
	jobsDone         int64
	jobsFailed       int64
	totalIters       int64
	solvesCSR        int64
	solvesDIA        int64
	solvesDecomposed int64
	tilesExecuted    int64
	planFeedback     int64 // executed plans whose throughput fed the tuner
	streamSubs       int64 // current streaming subscribers (gauge)

	started time.Time
	wg      sync.WaitGroup
}

// New starts an engine with cfg's worker pool. Call Close to drain and stop
// it.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Engine{
		cfg:     cfg,
		planner: plan.Planner{BudgetBytes: cfg.TileBudgetBytes},
		queue:   make(chan *Job, cfg.QueueDepth),
		cache:   newCache(cfg.CacheSize),
		lat:     newLatencyRing(cfg.LatencyWindow),
		logger:  logger,
		latByBackend: map[string]*latencyRing{
			"csr":        newLatencyRing(cfg.LatencyWindow),
			"dia":        newLatencyRing(cfg.LatencyWindow),
			"decomposed": newLatencyRing(cfg.LatencyWindow),
		},
		jobs:    make(map[string]*Job),
		tuner:   &plan.Tuner{},
		started: time.Now(),
	}
	if cfg.NodeID != "" {
		s.idPrefix = cfg.NodeID + "-"
	}
	s.registerMetrics()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Submit validates and enqueues a solve, returning its job handle without
// waiting. It fails fast with ErrQueueFull when the bounded queue is at
// capacity.
func (s *Engine) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := &Job{
		req:        req,
		done:       make(chan struct{}),
		ctx:        ctx,
		cancel:     cancel,
		state:      JobQueued,
		enqueuedAt: time.Now(),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	job.id = fmt.Sprintf("%sj-%06d", s.idPrefix, s.nextID.Add(1))
	// The observability record exists before the job is reachable from the
	// queue or the lookup map, so workers and trace readers never see a
	// partially-instrumented job.
	job.trace = obs.NewTrace(job.id)
	job.conv = obs.NewConvergenceLog(0)
	job.queueSpan = job.trace.Start("queue")
	select {
	case s.queue <- job:
		s.jobs[job.id] = job
		s.mu.Unlock()
		s.logger.Info("job submitted", "job", job.id, "rhs", req.batchSize())
		return job, nil
	default:
		s.mu.Unlock()
		cancel()
		s.logger.Warn("job rejected: queue full", "queue_cap", s.cfg.QueueDepth)
		return nil, ErrQueueFull
	}
}

// Solve submits req and waits for completion (or ctx cancellation — the
// solve itself keeps running; only the wait is abandoned). A job-level
// failure is returned as a non-nil error alongside the finished view,
// which still carries any partial result.
func (s *Engine) Solve(ctx context.Context, req Request) (JobView, error) {
	job, err := s.Submit(req)
	if err != nil {
		return JobView{}, err
	}
	select {
	case <-job.Done():
		v := s.ViewOf(job)
		if v.State == JobFailed {
			return v, fmt.Errorf("engine: job %s failed: %s", v.ID, v.Error)
		}
		return v, nil
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// Cancel aborts a job by ID: a queued job is skipped when dequeued, a
// running solve stops at its next iteration boundary and the job finishes
// as failed with the cancellation error. Reports whether the ID was known.
func (s *Engine) Cancel(id string) bool {
	job, ok := s.JobRef(id)
	if !ok {
		return false
	}
	job.Cancel()
	return true
}

// PlanRequest resolves the execution plan the service would run req with —
// backend, batch tiles, kernel fan-out, step count — without solving
// anything. When the request's problem is already cached its memoized
// structure probe answers immediately; otherwise the system is assembled
// just for the probe (never inserted into the cache, and no preconditioner
// or spectral interval is built — planning must stay far cheaper than
// solving). Either way a later solve of the same request reports an
// identical JobResult.Plan — including the self-tuning evidence: a warm
// problem past the observation gate explains its decision with every
// candidate's measured throughput and cost-model prior.
func (s *Engine) PlanRequest(req Request) (PlanInfo, error) {
	if err := req.Validate(); err != nil {
		return PlanInfo{}, err
	}
	cfg, err := req.coreConfig()
	if err != nil {
		return PlanInfo{}, err
	}
	// The peek never creates or touches an entry; an entry only exists if a
	// solve created it, in which case it is already built (or building —
	// the once blocks until that build publishes, exactly like a solve
	// joining the build race).
	var entry *cacheEntry
	if e, ok := s.cache.peek(req.CacheKey()); ok {
		e.once.Do(func() { e.build(&req, nil) })
		if e.err == nil {
			entry = e
		}
	}
	var probe *plan.Probe
	var plate *fem.Plate
	if pb := req.Prebuilt; pb != nil {
		plate = pb.Plate
		if pb.Probe != nil {
			probe = pb.Probe
		}
	}
	if probe == nil && entry != nil {
		probe = entry.structureProbe()
		plate = entry.plate
	}
	if probe == nil {
		sys, pl, err := req.assemble()
		if err != nil {
			return PlanInfo{}, err
		}
		p := plan.NewProbe(sys.K)
		probe = &p
		plate = pl
	}
	in := s.planInputs(cfg, probe, plate, req.batchSize())
	pl := s.plannerFor(cfg).Plan(in)
	mode := s.tuningFor(cfg)
	var dec plan.Decision
	if mode != plan.TuningOff && entry != nil {
		pl, dec = s.tuner.Decide(entry.key, s.plannerFor(cfg), in, pl, s.priorFor(entry), mode == plan.TuningAdapt)
	}
	return planInfo(pl, mode, dec), nil
}

// planInputs assembles the planner's inputs for one solve: the structure
// probe plus — for plate-backed problems whose configuration the
// decomposed path can honor — the mesh facts that enable the decomposed
// backend. PlanRequest and runJob share it, so an offline plan always
// matches the plan the solve runs.
func (s *Engine) planInputs(cfg core.Config, probe *plan.Probe, plate *fem.Plate, rhs int) plan.Inputs {
	in := plan.Inputs{
		Probe:   probe,
		Policy:  cfg.Backend,
		RHS:     rhs,
		M:       cfg.M,
		Workers: s.workersFor(cfg),
		Kernel:  cfg.Kernel,
	}
	if plate != nil && decompCompatible(cfg) {
		in.Decomp = &plan.DecompInputs{
			Rows:      plate.Grid.Rows,
			FreeNodes: len(plate.Free),
			Requested: cfg.Subdomains,
			MaxProcs:  s.workersFor(cfg),
		}
	}
	return in
}

// decompCompatible reports whether the decomposed path can run cfg's
// preconditioner: the per-subdomain sweep implements the 6-color
// multicolor SSOR splitting at the paper's ω = 1 (plain CG when M = 0), so
// other splittings and relaxation parameters stay on the single-matrix
// backends. A forced "decomposed" policy bypasses this gate and fails
// downstream with a descriptive error.
func decompCompatible(cfg core.Config) bool {
	if cfg.M == 0 {
		return true
	}
	return cfg.Splitting == core.SSORMulticolor && (cfg.Omega == 0 || cfg.Omega == 1)
}

// plannerFor returns the planner a resolved config runs under: the engine's
// shared planner, unless the (in-process, full-config) request pins its own
// tile budget.
func (s *Engine) plannerFor(cfg core.Config) plan.Planner {
	if cfg.TileBudgetBytes > 0 {
		return plan.Planner{BudgetBytes: cfg.TileBudgetBytes}
	}
	return s.planner
}

// workersFor resolves the kernel fan-out budget for a job: the engine's
// per-solve worker budget, unless the (in-process, full-config) request
// pins its own.
func (s *Engine) workersFor(cfg core.Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return s.cfg.WorkerBudget
}

// tuningFor resolves a solve's feedback policy: the request's knob, then
// the engine's session default, then adapt. Unknown names are rejected at
// Validate, so parsing cannot fail on the request path; a malformed
// programmatic engine default falls back to off (the static planner).
func (s *Engine) tuningFor(cfg core.Config) plan.TuningMode {
	name := cfg.Tuning
	if name == "" {
		name = s.cfg.Tuning
	}
	mode, err := plan.ParseTuning(strings.ToLower(name))
	if err != nil {
		return plan.TuningOff
	}
	return mode
}

// priorFor derives the tuner's cost-model prior from the entry's memoized
// vectorsim analysis. Eq. (4.1) prices one iteration at A + m·B while the
// iteration count of m-step PCG scales like 1/√(m+1), so a candidate step
// count's predicted throughput relative to the reference is t(ref)/t(cand)
// with t(m) = (A + m·B)/√(m+1). The model holds no opinion on non-M
// differences (ratio 1), and degenerate systems get no prior at all.
func (s *Engine) priorFor(entry *cacheEntry) plan.PriorFunc {
	cb, err := entry.costModel()
	if err != nil || cb.A <= 0 {
		return nil
	}
	t := func(m int) float64 {
		return (cb.A + float64(m)*cb.B) / math.Sqrt(float64(m)+1)
	}
	return func(ref, cand plan.Signature) float64 {
		if cand.M == ref.M {
			return 1
		}
		return t(ref.M) / t(cand.M)
	}
}

// planInfo shapes a resolved plan for job results and the HTTP API,
// including the tuning evidence: which policy governed the decision, how
// the plan was chosen, and every candidate considered with its measured
// and predicted throughput.
func planInfo(pl plan.Plan, mode plan.TuningMode, d plan.Decision) PlanInfo {
	info := PlanInfo{
		Backend:    pl.Backend.String(),
		Tiles:      pl.Tiles,
		Workers:    pl.Workers,
		M:          pl.M,
		Subdomains: pl.Subdomains,
		Kernel:     pl.Kernel,
		Interleave: pl.Interleave,
		Tuning:     mode.String(),
		Source:     d.Source,
	}
	if info.Source == "" {
		info.Source = "static"
	}
	if len(d.Candidates) > 0 {
		info.Candidates = make([]PlanCandidate, len(d.Candidates))
		for i, c := range d.Candidates {
			info.Candidates[i] = PlanCandidate{
				Backend:             c.Signature.Backend.String(),
				TileWidth:           c.Signature.TileWidth,
				Workers:             c.Signature.Workers,
				M:                   c.Signature.M,
				Interleave:          c.Signature.Interleave,
				Kernel:              c.Signature.Kernel,
				MeasuredRHSPerSec:   c.Measured,
				Observations:        c.Observations,
				SecondsPerIteration: c.IterSeconds,
				PredictedRHSPerSec:  c.Prior,
				Score:               c.Score,
				Chosen:              c.Chosen,
			}
		}
	}
	return info
}

// ViewOf snapshots a job the caller already holds — unlike Job(id) it
// cannot miss, even if the job has aged out of the lookup history.
func (s *Engine) ViewOf(job *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return job.view(time.Now())
}

// Job snapshots a job by ID.
func (s *Engine) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(time.Now()), true
}

// JobRef returns the live job record by ID (for streaming subscriptions
// and cancellation).
func (s *Engine) JobRef(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Watch subscribes to job's per-case completions: it returns the
// already-finished cases as replay events, a channel carrying every later
// completion (closed once the job finishes and all events are delivered),
// and a stop function that must be called when the consumer detaches. The
// engine's StreamSubscribers gauge counts the open watches. Watch is the
// single fan-out path shared by the HTTP stream handlers and the local
// solver's streaming API.
func (s *Engine) Watch(job *Job) (replay []CaseEvent, ch <-chan CaseEvent, stop func()) {
	replay, ch, id := job.subscribe()
	s.addStreamSubs(1)
	var once sync.Once
	stop = func() {
		once.Do(func() {
			if id >= 0 {
				job.unsubscribe(id)
			}
			s.addStreamSubs(-1)
		})
	}
	return replay, ch, stop
}

func (s *Engine) addStreamSubs(d int64) {
	s.cmu.Lock()
	s.streamSubs += d
	s.cmu.Unlock()
}

// Stats snapshots the service health counters. The job/solve/iteration
// counters are read under one lock, so the snapshot is internally
// consistent (e.g. total_iterations always accounts for every job counted
// in jobs_done).
func (s *Engine) Stats() Stats {
	hits, misses := s.cache.hits.Load(), s.cache.misses.Load()
	st := Stats{
		Workers:              s.cfg.Workers,
		WorkerBudget:         s.cfg.WorkerBudget,
		QueueDepth:           len(s.queue),
		QueueCap:             s.cfg.QueueDepth,
		CacheHits:            hits,
		CacheMisses:          misses,
		CacheEntries:         s.cache.len(),
		LatencyP50:           s.lat.quantile(0.50),
		LatencyP99:           s.lat.quantile(0.99),
		LatencyP50CSR:        s.latByBackend["csr"].quantile(0.50),
		LatencyP99CSR:        s.latByBackend["csr"].quantile(0.99),
		LatencyP50DIA:        s.latByBackend["dia"].quantile(0.50),
		LatencyP99DIA:        s.latByBackend["dia"].quantile(0.99),
		LatencyP50Decomposed: s.latByBackend["decomposed"].quantile(0.50),
		LatencyP99Decomposed: s.latByBackend["decomposed"].quantile(0.99),
		UptimeSeconds:        time.Since(s.started).Seconds(),
	}
	s.cmu.Lock()
	st.Running = int(s.running)
	st.JobsDone = s.jobsDone
	st.JobsFailed = s.jobsFailed
	st.TotalIterations = s.totalIters
	st.SolvesCSR = s.solvesCSR
	st.SolvesDIA = s.solvesDIA
	st.SolvesDecomposed = s.solvesDecomposed
	st.TilesExecuted = s.tilesExecuted
	st.PlanFeedback = s.planFeedback
	st.StreamSubscribers = s.streamSubs
	s.cmu.Unlock()
	if total := hits + misses; total > 0 {
		st.CacheHitRate = float64(hits) / float64(total)
	}
	return st
}

// NodeID reports the configured node identity ("" for standalone engines).
func (s *Engine) NodeID() string { return s.cfg.NodeID }

// Draining reports whether the engine has stopped accepting jobs (Close has
// been called). Load balancers and fleet routers read it through the
// readiness endpoint to take the node out of rotation before it disappears.
func (s *Engine) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Abort cancels every unfinished job — queued jobs are skipped when
// dequeued, running solves stop at their next iteration boundary. It is
// the hard-stop lever for daemons whose drain deadline expired: call it
// before Close so Close's queue drain terminates promptly instead of
// fully solving everything still queued. Finished jobs are unaffected.
func (s *Engine) Abort() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
}

// Close stops accepting jobs, drains the queue, and waits for in-flight
// solves to finish.
func (s *Engine) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// worker owns one reusable scalar CG workspace and one block workspace and
// processes jobs until the queue closes: the steady-state solve path
// allocates only the per-job solution vector(s). id names the worker in job
// traces and logs.
func (s *Engine) worker(id int) {
	defer s.wg.Done()
	ws := cg.NewWorkspace(0)
	bws := cg.NewBlockWorkspace(0, 0)
	for job := range s.queue {
		job.queueSpan.End()
		s.hQueueWait.Observe(time.Since(job.enqueuedAt).Seconds())
		if cerr := job.ctx.Err(); cerr != nil {
			// Canceled while queued: skip execution entirely. The trace
			// still ends with a terminal cancelled span, so a cancelled
			// job's timeline is replayable like any other.
			job.trace.Start("cancelled").SetWorker(id).SetAttr("reason", cerr.Error()).End()
			s.transition(job, JobRunning, nil, nil)
			s.transition(job, JobFailed, nil, fmt.Errorf("engine: job canceled while queued: %w", cerr))
			continue
		}
		s.runJob(job, ws, bws, id)
	}
}

func (s *Engine) transition(job *Job, state JobState, result *JobResult, err error) {
	now := time.Now()
	s.mu.Lock()
	job.state = state
	switch state {
	case JobRunning:
		job.startedAt = now
	case JobDone, JobFailed:
		if result != nil {
			result.JobID = job.id
		}
		job.finishedAt = now
		job.result = result
		job.err = err
		s.finished = append(s.finished, job.id)
		for len(s.finished) > s.cfg.HistoryLimit {
			delete(s.jobs, s.finished[0])
			s.finished = s.finished[1:]
		}
	}
	s.mu.Unlock()
	if state == JobDone || state == JobFailed {
		lat := now.Sub(job.enqueuedAt).Seconds()
		s.cmu.Lock()
		if state == JobDone {
			s.jobsDone++
		} else {
			s.jobsFailed++
		}
		s.cmu.Unlock()
		s.lat.add(lat)
		backend := ""
		if result != nil {
			backend = result.Backend
		}
		if ring, ok := s.latByBackend[backend]; ok {
			ring.add(lat)
			s.hJobDuration[backend].Observe(lat)
		}
		job.trace.Finish()
		if state == JobDone {
			s.logger.Info("job done", "job", job.id, "backend", backend,
				"latency_seconds", lat, "iterations", result.Iterations)
		} else {
			s.logger.Warn("job failed", "job", job.id, "latency_seconds", lat, "err", err)
		}
		job.cancel() // release the context's resources
		close(job.done)
		// End subscriptions last: by now the final result is published, so
		// stream handlers wake to a complete job view.
		job.closeStreams()
	}
}

// runJob is the plan → execute → emit pipeline for one job: resolve the
// problem (via the cache when the request is keyed), check out a
// preconditioner, let the planner turn the request's shape into an
// execution plan, then run the plan's tiles, emitting each case's result
// the moment its column retires. A batched request runs as one job against
// one cache entry and one preconditioner checkout; every block traversal
// is shared across the tile's columns.
func (s *Engine) runJob(job *Job, ws *cg.Workspace, bws *cg.BlockWorkspace, workerID int) {
	s.addRunning(1)
	defer s.addRunning(-1)
	s.transition(job, JobRunning, nil, nil)
	s.logger.Debug("job started", "job", job.id, "worker", workerID)

	// All stage spans are leaves — no span nests inside another — so the
	// trace's span durations sum to at most the job's wall time.
	phase := func(name string) func() {
		return job.trace.Start(name).SetWorker(workerID).End
	}

	cfg, err := job.req.coreConfig()
	if err != nil {
		s.transition(job, JobFailed, nil, err)
		return
	}

	var (
		sys    core.System
		plate  *fem.Plate
		pc     precond.Preconditioner
		iv     eigen.Interval
		alphas poly.Alphas
		name   string
		entry  *cacheEntry // non-nil on the cached path
	)
	if key := job.req.CacheKey(); key != "" {
		// existed=false only for the requester that created the entry; every
		// later requester (even one blocking on the first build in once.Do)
		// reuses the assembled system and estimated interval.
		var existed bool
		entry, existed = s.cache.get(key)
		// cache_wait covers entry acquisition and the preconditioner
		// checkout. If this job loses the build race, the build's stage
		// spans (assemble, splitting_build, …) land on this trace as their
		// own leaves: the first one closes cache_wait so the spans never
		// overlap, and a warm hit keeps cache_wait as the only span.
		waitSp := job.trace.Start("cache_wait").SetWorker(workerID).SetAttr("hit", existed)
		waitEnded := false
		endWait := func() {
			if !waitEnded {
				waitEnded = true
				waitSp.End()
			}
		}
		entry.once.Do(func() {
			waitSp.SetAttr("built", true)
			entry.build(&job.req, func(stage string) func() {
				endWait()
				return phase(stage)
			})
		})
		if entry.err != nil {
			endWait()
			s.cache.drop(entry)
			s.transition(job, JobFailed, nil, entry.err)
			return
		}
		s.mu.Lock()
		job.cacheHit = existed
		s.mu.Unlock()
		sys, plate, iv, alphas, name = entry.sys, entry.plate, entry.interval, entry.alphas, entry.precond
		var cerr error
		pc, cerr = entry.checkout()
		endWait()
		if cerr != nil {
			s.transition(job, JobFailed, nil, fmt.Errorf("engine: preconditioner rebuild failed for %s: %w", key, cerr))
			return
		}
		defer entry.release(pc)
	} else {
		end := phase("assemble")
		sys, plate, err = job.req.assemble()
		end()
		if err != nil {
			s.transition(job, JobFailed, nil, err)
			return
		}
		pc, alphas, iv, err = core.BuildPreconditionerPhased(sys, cfg, phase)
		if err != nil {
			s.transition(job, JobFailed, nil, err)
			return
		}
		name = pc.Name()
	}

	fs, ferr := job.req.rhsCols(sys)
	if ferr != nil {
		s.transition(job, JobFailed, nil, ferr)
		return
	}

	// Plan: the planner is the single place the request's shape — matrix
	// structure, batch width, budgets — becomes an execution decision. On
	// the cached path the structure probe is memoized in the entry (seeded
	// from the caller's own memo for prebuilt problems), so repeated solves
	// of a cached problem never rescan the pattern. The plan span carries
	// the full decision and its structural evidence as attributes.
	planSp := job.trace.Start("plan").SetWorker(workerID)
	var probe *plan.Probe
	switch {
	case entry != nil:
		probe = entry.structureProbe()
	case job.req.Prebuilt != nil && job.req.Prebuilt.Probe != nil:
		probe = job.req.Prebuilt.Probe
	default:
		p := plan.NewProbe(sys.K)
		probe = &p
	}
	in := s.planInputs(cfg, probe, plate, len(fs))
	pl := s.plannerFor(cfg).Plan(in)

	// Close the loop: past the observation gate a warm problem re-plans
	// from its measured throughput (adapt) or at least explains what the
	// measurements say (observe). A tuned step count checks out an
	// alternate-M preconditioner from the entry; if that build fails the
	// candidate is recorded as infeasible and the static M runs.
	mode := s.tuningFor(cfg)
	var tdec plan.Decision
	if mode != plan.TuningOff && entry != nil {
		static := pl
		tuned, d := s.tuner.Decide(entry.key, s.plannerFor(cfg), in, static, s.priorFor(entry), mode == plan.TuningAdapt)
		tdec = d
		if mode == plan.TuningAdapt {
			if tuned.M != static.M {
				p2, a2, n2, rel2, aerr := entry.checkoutM(tuned.M)
				if aerr != nil {
					s.tuner.Observe(entry.key, tuned.Signature(), plan.Observation{})
					tuned.M = static.M
				} else {
					// The original checkout's deferred release captured the
					// original pc; the alternate returns to its own pool.
					pc, alphas, name = p2, a2, n2
					defer rel2(p2)
				}
			}
			pl = tuned
		}
	}

	for k, v := range pl.Attrs() {
		planSp.SetAttr(k, v)
	}
	planSp.SetAttr("probe", probe.Attrs())
	planSp.SetAttr("tuning", mode.String())
	if tdec.Source != "" {
		planSp.SetAttr("plan_source", tdec.Source)
	}
	planSp.End()

	// A decomposed plan replaces the single-matrix operator with a P-way
	// mesh partition: resolve it (memoized on the cache entry for keyed
	// requests) before execution, so setup failures surface like any other
	// build error.
	var dec *decomp.Decomposition
	if pl.Backend == plan.BackendDecomposed {
		if plate == nil {
			s.transition(job, JobFailed, nil, errors.New("engine: decomposed backend needs a plate-backed problem (general systems carry no mesh to partition)"))
			return
		}
		if !decompCompatible(cfg) {
			s.transition(job, JobFailed, nil, errors.New("engine: decomposed backend implements the multicolor SSOR sweep at ω = 1; pick splitting ssor-multicolor (or m = 0) or a single-matrix backend"))
			return
		}
		decSp := job.trace.Start("decompose").SetWorker(workerID)
		var derr error
		if entry != nil {
			dec, derr = entry.getDecomp(pl.Subdomains)
		} else {
			dec, derr = decomp.New(decomp.PlateProblem(plate), pl.Subdomains, mesh.RowStrips)
		}
		if derr != nil {
			decSp.End()
			s.transition(job, JobFailed, nil, derr)
			return
		}
		decSp.SetAttr("subdomains", dec.P).
			SetAttr("strategy", "row-strips").
			SetAttr("halo_fraction", dec.HaloFraction()).
			End()
	}

	// Materialize the planned backend's operator (the DIA conversion is
	// cached next to the CSR on the cached path).
	var op sparse.Operator = sys.K
	if pl.Backend == core.BackendDIA {
		end := phase("dia_convert")
		var dia *sparse.DIA
		var derr error
		if entry != nil {
			dia, derr = entry.getDIA()
		} else {
			dia, derr = sparse.NewDIAFromCSR(sys.K)
		}
		end()
		if derr != nil {
			s.transition(job, JobFailed, nil, derr)
			return
		}
		op = dia
	}
	s.countSolve(pl.Backend)

	opts := cg.Options{
		Tol:            cfg.Tol,
		RelResidualTol: cfg.RelResidualTol,
		MaxIter:        cfg.MaxIter,
		History:        cfg.History,
		Workers:        pl.Workers,
		Ctx:            job.ctx,
		Interleave:     pl.Interleave,
		Kernel:         cfg.Kernel,
	}
	if opts.Tol <= 0 && opts.RelResidualTol <= 0 {
		opts.Tol = 1e-6
	}

	// Execute + emit.
	job.initCases(len(fs))
	var res *JobResult
	execStart := time.Now()
	switch {
	case dec != nil:
		res, err = s.runDecomposed(job, dec, plate, fs, cfg, alphas, opts, workerID)
	case len(fs) > 1:
		res, err = s.runTiles(job, op, plate, pc, fs, pl, opts, bws, workerID)
	default:
		res, err = s.runScalar(job, op, plate, pc, fs[0], opts, ws, workerID)
	}
	execSeconds := time.Since(execStart).Seconds()
	emitEnd := phase("emit")
	res.Precond = name
	res.Backend = pl.Backend.String()
	info := planInfo(pl, mode, tdec)
	res.Plan = &info
	res.IntervalLo, res.IntervalHi = iv.Lo, iv.Hi
	if alphas.M() > 0 {
		a := alphas
		res.Alphas = &a
	}
	emitEnd()

	// Feedback: fold the executed plan's realized throughput back into the
	// tuner's observation store. Only clean cached solves count — errors
	// and cancellations would poison the estimates, uncached problems have
	// no store to feed, and a decomposed plan's execution shape is owned by
	// the mesh partition, not the tuner.
	if mode != plan.TuningOff && err == nil && entry != nil && pl.Backend != plan.BackendDecomposed {
		rhsPerSec := 0.0
		if execSeconds > 0 {
			rhsPerSec = float64(len(fs)) / execSeconds
		}
		iterSec := execSeconds
		if res.Iterations > 0 {
			iterSec = execSeconds / float64(res.Iterations)
		}
		job.trace.Start("feedback").SetWorker(workerID).
			SetAttr("rhs_per_second", rhsPerSec).
			SetAttr("seconds_per_iteration", iterSec).
			End()
		s.tuner.Observe(entry.key, pl.Signature(), plan.Observation{RHSPerSec: rhsPerSec, IterSeconds: iterSec})
		s.cmu.Lock()
		s.planFeedback++
		s.cmu.Unlock()
		s.hPlanRHS.Observe(rhsPerSec)
	}
	if err != nil {
		if cerr := job.ctx.Err(); cerr != nil {
			// The trace of a cancelled job ends with a terminal marker span,
			// so a replayed timeline shows where the solve was cut off.
			job.trace.Start("cancelled").SetWorker(workerID).SetAttr("reason", cerr.Error()).End()
		}
		s.transition(job, JobFailed, res, err)
		return
	}
	s.transition(job, JobDone, res, nil)
}

// addRunning adjusts the running-jobs gauge.
func (s *Engine) addRunning(d int64) {
	s.cmu.Lock()
	s.running += d
	s.cmu.Unlock()
}

// countSolve attributes one job to the matvec backend it resolved to.
func (s *Engine) countSolve(b plan.Backend) {
	s.cmu.Lock()
	switch b {
	case plan.BackendDIA:
		s.solvesDIA++
	case plan.BackendDecomposed:
		s.solvesDecomposed++
	default:
		s.solvesCSR++
	}
	s.cmu.Unlock()
}

// countTile accounts one executed tile and its block iterations.
func (s *Engine) countTile(iters int) {
	s.cmu.Lock()
	s.tilesExecuted++
	s.totalIters += int64(iters)
	s.cmu.Unlock()
}

// runScalar is the single-RHS solve path (a one-column plan: one tile, one
// case event). op is the backend-resolved form of the system matrix.
func (s *Engine) runScalar(job *Job, op sparse.Operator, plate *fem.Plate, pc precond.Preconditioner, f []float64, opts cg.Options, ws *cg.Workspace, workerID int) (*JobResult, error) {
	n, _ := op.Dims()
	u := make([]float64, n)
	opts.Observer = job.conv
	sp := job.trace.Start("solve").SetWorker(workerID)
	st, err := cg.SolveInto(u, op, f, pc, opts, ws)
	sp.SetIterations(st.Iterations).SetAttr("converged", st.Converged).End()
	s.countTile(st.Iterations)
	s.hCaseIters.Observe(float64(st.Iterations))

	res := &JobResult{
		Converged:     st.Converged,
		Iterations:    st.Iterations,
		MatVecs:       st.MatVecs,
		PrecondApps:   st.PrecondApps,
		InnerProducts: st.InnerProducts,
		FinalUDiff:    st.FinalUDiff,
		FinalRelRes:   st.FinalRelRes,
		RHS:           1,
		CGStats:       &st,
	}
	if !job.req.OmitSolution {
		res.U = u
		res.Nodes, res.NodeU, res.NodeV = plateDisplacements(plate, u)
	}
	cr := CaseResult{
		Converged:   st.Converged,
		Iterations:  st.Iterations,
		FinalUDiff:  st.FinalUDiff,
		FinalRelRes: st.FinalRelRes,
		U:           res.U,
		Nodes:       res.Nodes,
		NodeU:       res.NodeU,
		NodeV:       res.NodeV,
		CGStats:     &st,
	}
	if err != nil {
		cr.Error = err.Error()
	}
	job.caseFinished(0, cr)
	return res, err
}

// runDecomposed is the domain-decomposed execute path: every case runs as
// one parallel solve over dec's subdomains — a goroutine per subdomain,
// border values moving over the link fabric, inner products combining up
// the reduction tree. Cases run sequentially because a single case already
// occupies all P subdomain goroutines; per-case completions stream exactly
// like the tiled path's.
func (s *Engine) runDecomposed(job *Job, dec *decomp.Decomposition, plate *fem.Plate, fs [][]float64, cfg core.Config, alphas poly.Alphas, opts cg.Options, workerID int) (*JobResult, error) {
	dopt := decomp.Options{
		M:              cfg.M,
		Tol:            opts.Tol,
		RelResidualTol: opts.RelResidualTol,
		MaxIter:        opts.MaxIter,
		Ctx:            job.ctx,
	}
	if cfg.M > 0 {
		dopt.Alphas = alphas.Coeffs
	}
	res := &JobResult{RHS: len(fs), Converged: true}
	var errs []error
	var canceled error
	for ci, f := range fs {
		if cerr := job.ctx.Err(); cerr != nil {
			job.caseFinished(ci, CaseResult{Error: cerr.Error()})
			res.Converged = false
			canceled = cerr
			continue
		}
		copt := dopt
		caseIdx := ci
		copt.OnIteration = func(iter int, udiff, relres float64) {
			job.conv.ObserveIteration(caseIdx, iter, udiff, relres)
		}
		start := time.Now()
		sp := job.trace.Start("solve").SetWorker(workerID).SetAttr("case", ci)
		u, st, err := dec.Solve(f, copt)
		sp.SetIterations(st.Iterations).SetAttr("converged", st.Converged).End()
		recordSubSpans(job.trace, ci, start, st.Subs)
		s.countTile(st.Iterations)
		s.hCaseIters.Observe(float64(st.Iterations))
		res.Iterations += st.Iterations
		res.MatVecs += st.MatVecs
		res.PrecondApps += st.PrecondApps
		res.InnerProducts += st.InnerProducts
		if !st.Converged {
			res.Converged = false
		}
		cgst := cg.Stats{
			Iterations:    st.Iterations,
			Converged:     st.Converged,
			FinalUDiff:    st.FinalUDiff,
			FinalRelRes:   st.FinalRelRes,
			InnerProducts: st.InnerProducts,
			PrecondApps:   st.PrecondApps,
			MatVecs:       st.MatVecs,
			TrueRelRes:    -1,
		}
		cr := CaseResult{
			Converged:   st.Converged,
			Iterations:  st.Iterations,
			FinalUDiff:  st.FinalUDiff,
			FinalRelRes: st.FinalRelRes,
			CGStats:     &cgst,
		}
		if err != nil {
			cr.Error = err.Error()
			errs = append(errs, fmt.Errorf("case %d: %w", ci, err))
		}
		if !job.req.OmitSolution {
			cr.U = u
			cr.Nodes, cr.NodeU, cr.NodeV = plateDisplacements(plate, u)
		}
		job.caseFinished(ci, cr)
		if len(fs) == 1 {
			res.FinalUDiff = st.FinalUDiff
			res.FinalRelRes = st.FinalRelRes
			res.CGStats = &cgst
			res.U = cr.U
			res.Nodes, res.NodeU, res.NodeV = cr.Nodes, cr.NodeU, cr.NodeV
		}
	}
	if canceled != nil {
		errs = append(errs, canceled)
	}
	if len(fs) > 1 {
		res.Cases = job.snapshotCases()
		for i := range res.Cases {
			res.FinalUDiff = max(res.FinalUDiff, res.Cases[i].FinalUDiff)
			res.FinalRelRes = max(res.FinalRelRes, res.Cases[i].FinalRelRes)
		}
	}
	return res, errors.Join(errs...)
}

// recordSubSpans attributes one decomposed case's per-subdomain time
// breakdown to the job trace: a halo_exchange, local_sweep and reduce span
// per rank, anchored at the case's start. These are the one deliberate
// exception to the trace's non-overlapping-leaves convention — the P
// subdomains ran concurrently, so their stage durations sum past the
// case's wall time by design.
func recordSubSpans(tr *obs.Trace, ci int, start time.Time, subs []decomp.SubStats) {
	dur := func(sec float64) time.Duration { return time.Duration(sec * float64(time.Second)) }
	for _, ss := range subs {
		tr.Record("halo_exchange", start, dur(ss.HaloSeconds)).SetAttr("subdomain", ss.Rank).SetAttr("case", ci)
		tr.Record("local_sweep", start, dur(ss.SweepSeconds)).SetAttr("subdomain", ss.Rank).SetAttr("case", ci)
		tr.Record("reduce", start, dur(ss.ReduceSeconds)).SetAttr("subdomain", ss.Rank).SetAttr("case", ci)
	}
}

// runTiles is the batched solve path: the plan's column tiles execute as
// sequential block solves sharing one workspace, and every column
// retirement — converged, broken down, or canceled — emits that case's
// result immediately via the deflation hook, so early-converging load
// cases are visible to stream subscribers while the slowest column is
// still iterating. op is the backend-resolved form of the system matrix.
func (s *Engine) runTiles(job *Job, op sparse.Operator, plate *fem.Plate, pc precond.Preconditioner, fs [][]float64, pl plan.Plan, opts cg.Options, bws *cg.BlockWorkspace, workerID int) (*JobResult, error) {
	n, _ := op.Dims()
	res := &JobResult{RHS: len(fs), Converged: true}
	var errs []error
	var canceled error
	for ti, tileCols := range pl.Tiles {
		if cerr := job.ctx.Err(); cerr != nil {
			// Canceled between tiles: the remaining cases fail without
			// running (their events still fire, so streams see every case);
			// the cancellation joins the job error once, not once per tile.
			for _, c := range tileCols {
				job.caseFinished(c, CaseResult{Error: cerr.Error()})
			}
			res.Converged = false
			canceled = cerr
			continue
		}
		cols := make([][]float64, len(tileCols))
		for i, c := range tileCols {
			cols[i] = fs[c]
		}
		u := vec.NewMulti(n, len(tileCols))
		topts := opts
		// The convergence observer sees tile-local column indices; remap
		// them to the job's case numbering so a multi-tile batch's curves
		// stay distinguishable.
		topts.Observer = tileObserver{log: job.conv, cases: tileCols}
		topts.OnColumnDone = func(col int, cs cg.ColumnStats) {
			s.hCaseIters.Observe(float64(cs.Stats.Iterations))
			colStats := cs.Stats
			cr := CaseResult{
				Converged:   cs.Stats.Converged,
				Iterations:  cs.Stats.Iterations,
				FinalUDiff:  cs.Stats.FinalUDiff,
				FinalRelRes: cs.Stats.FinalRelRes,
				CGStats:     &colStats,
			}
			if cs.Err != nil {
				cr.Error = cs.Err.Error()
			}
			if !job.req.OmitSolution {
				cr.U = append([]float64(nil), u.Col(col)...)
				cr.Nodes, cr.NodeU, cr.NodeV = plateDisplacements(plate, cr.U)
			}
			job.caseFinished(tileCols[col], cr)
		}
		sp := job.trace.Start("tile").SetWorker(workerID).
			SetAttr("tile", ti).
			SetAttr("case_first", tileCols[0]).
			SetAttr("case_last", tileCols[len(tileCols)-1])
		st, err := cg.SolveBlockInto(u, op, vec.MultiFromCols(cols), pc, topts, bws)
		sp.SetAttr("kernel", st.Kernel).SetAttr("interleaved", st.Interleaved)
		sp.SetIterations(st.Iterations).End()
		s.countTile(st.Iterations)
		res.Iterations += st.Iterations
		res.MatVecs += st.SpMMs
		res.PrecondApps += st.BlockPrecondApps
		res.InnerProducts += st.InnerProducts
		if !st.Converged {
			res.Converged = false
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("tile %d (cases %d–%d): %w", ti, tileCols[0], tileCols[len(tileCols)-1], err))
		}
	}
	if canceled != nil {
		errs = append(errs, canceled)
	}
	res.Cases = job.snapshotCases()
	for i := range res.Cases {
		res.FinalUDiff = max(res.FinalUDiff, res.Cases[i].FinalUDiff)
		res.FinalRelRes = max(res.FinalRelRes, res.Cases[i].FinalRelRes)
	}
	return res, errors.Join(errs...)
}

// plateDisplacements maps a colored-ordering solution back to per-node
// displacements; nil for non-plate problems.
func plateDisplacements(plate *fem.Plate, u []float64) (nodes []int, nu, nv []float64) {
	if plate == nil {
		return nil, nil, nil
	}
	natural := plate.UncolorSolution(u)
	nodes = plate.Free
	nu = make([]float64, len(plate.Free))
	nv = make([]float64, len(plate.Free))
	for k := range plate.Free {
		nu[k] = natural[2*k]
		nv[k] = natural[2*k+1]
	}
	return nodes, nu, nv
}
