// Package splitting implements the matrix splittings K = P − Q that
// generate the paper's m-step preconditioners (§2.1): the Jacobi splitting
// P = diag(K) (whose m-step preconditioner is the truncated Neumann series
// of Dubois, Greenbaum and Rodrigue), the natural-ordering SSOR splitting,
// and the 6-color multicolor SSOR splitting of §3 with the Conrad–Wallach
// auxiliary-vector trick (Algorithm 2).
//
// Every splitting exposes the parametrized stationary step
//
//	r̂ ← G·r̂ + α·P⁻¹·r,   G = P⁻¹Q = I − P⁻¹K,
//
// from which the m-step preconditioner application is
//
//	r̂⁽⁰⁾ = 0;  r̂⁽ˢ⁾ = G·r̂⁽ˢ⁻¹⁾ + α_{m−s}·P⁻¹·r,  s = 1..m,
//
// yielding r̂⁽ᵐ⁾ = (α₀I + α₁G + … + α_{m−1}G^{m−1})P⁻¹·r = M_m⁻¹·r.
package splitting

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// Splitting is a splitting K = P − Q exposing the parametrized stationary
// step. Implementations must be deterministic.
type Splitting interface {
	// N returns the system dimension.
	N() int
	// Name identifies the splitting in reports.
	Name() string
	// Step performs r̂ ← G·r̂ + α·P⁻¹·r in place. r is read-only and must
	// not alias r̂.
	Step(rhat, r []float64, alpha float64)
}

// MStepApplier is an optional fast path: splittings that can fuse the m
// parametrized steps (eliding provably dead solves, as Algorithm 2 does for
// the multicolor SSOR splitting) implement it. The result must equal m
// sequential Step calls starting from r̂ = 0.
type MStepApplier interface {
	// ApplyMStep computes r̂ = M_m⁻¹·r where m = len(alphas) and
	// alphas[i] = αᵢ.
	ApplyMStep(rhat, r []float64, alphas []float64)
}

// MStepBlockApplier is the multi-right-hand-side fast path: splittings
// that can run one fused m-step sweep over a whole column block implement
// it, so s right-hand sides cost one traversal of K's rows per half-sweep
// instead of s. Column j of the result must equal ApplyMStep on column j
// exactly (same arithmetic order), so block and single-vector solves agree
// bit for bit.
type MStepBlockApplier interface {
	// ApplyMStepBlock computes r̂_j = M_m⁻¹·r_j for every column j, with
	// m = len(alphas).
	ApplyMStepBlock(rhat, r *vec.Multi, alphas []float64)
}

// MStepInterleavedApplier is the row-interleaved-panel fast path: the fused
// block sweep over vec.IMulti panels, dispatched through internal/kernel.
// Column j of the result must equal ApplyMStep on column j exactly, the same
// contract as MStepBlockApplier.
type MStepInterleavedApplier interface {
	// CanApplyMStepInterleaved reports whether the interleaved sweep is
	// available for this splitting's configuration (the multicolor SSOR's
	// fused elisions need ω = 1). Callers decide their block layout from
	// this before building interleaved workspace.
	CanApplyMStepInterleaved() bool
	// ApplyMStepInterleaved computes r̂_j = M_m⁻¹·r_j for every live column
	// of the panels, with m = len(alphas); impl selects the kernel set (nil
	// means the startup-selected one). rhat and r must share one stride.
	ApplyMStepInterleaved(rhat, r *vec.IMulti, alphas []float64, impl *kernel.Impl)
}

// Jacobi is the splitting P = diag(K): the m-step preconditioner it
// generates is the truncated (parametrized) Neumann series for K⁻¹.
type Jacobi struct {
	K    *sparse.CSR
	dinv []float64
	work []float64
}

// NewJacobi builds the Jacobi splitting. It returns an error if any
// diagonal entry is not strictly positive (K must be SPD).
func NewJacobi(k *sparse.CSR) (*Jacobi, error) {
	if k.Rows != k.Cols {
		return nil, fmt.Errorf("splitting: Jacobi needs a square matrix, got %d×%d", k.Rows, k.Cols)
	}
	d := k.Diag()
	dinv := make([]float64, len(d))
	for i, di := range d {
		if di <= 0 {
			return nil, fmt.Errorf("splitting: Jacobi diagonal entry %d is %g (not positive)", i, di)
		}
		dinv[i] = 1 / di
	}
	return &Jacobi{K: k, dinv: dinv, work: make([]float64, k.Rows)}, nil
}

// N returns the system dimension.
func (j *Jacobi) N() int { return j.K.Rows }

// Name identifies the splitting.
func (j *Jacobi) Name() string { return "jacobi" }

// Step performs r̂ ← r̂ + D⁻¹(α·r − K·r̂).
func (j *Jacobi) Step(rhat, r []float64, alpha float64) {
	j.K.MulVecTo(j.work, rhat)
	for i := range rhat {
		rhat[i] += j.dinv[i] * (alpha*r[i] - j.work[i])
	}
}

// NaturalSSOR is the SSOR(ω) splitting in the matrix's stored (natural)
// ordering:
//
//	P_ω = 1/(ω(2−ω)) · (D − ωL) D⁻¹ (D − ωU),
//
// where K = D − L − U (eq. 2.1 of the paper; note L and U here carry the
// minus sign convention, i.e. they are the negated strict parts of K).
// With ω = 1 this is the plain SSOR splitting (D−L)D⁻¹(D−U) the paper uses.
type NaturalSSOR struct {
	K     *sparse.CSR
	d     []float64
	omega float64
}

// NewNaturalSSOR builds the natural-ordering SSOR splitting. ω must lie in
// (0, 2) for P to be positive definite; the diagonal must be positive.
func NewNaturalSSOR(k *sparse.CSR, omega float64) (*NaturalSSOR, error) {
	if k.Rows != k.Cols {
		return nil, fmt.Errorf("splitting: SSOR needs a square matrix, got %d×%d", k.Rows, k.Cols)
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("splitting: SSOR needs 0 < ω < 2, got %g", omega)
	}
	d := k.Diag()
	for i, di := range d {
		if di <= 0 {
			return nil, fmt.Errorf("splitting: SSOR diagonal entry %d is %g (not positive)", i, di)
		}
	}
	return &NaturalSSOR{K: k, d: d, omega: omega}, nil
}

// N returns the system dimension.
func (s *NaturalSSOR) N() int { return s.K.Rows }

// Name identifies the splitting.
func (s *NaturalSSOR) Name() string {
	if s.omega == 1 {
		return "ssor-natural"
	}
	return fmt.Sprintf("ssor-natural(ω=%g)", s.omega)
}

// Step performs one SSOR sweep (forward then backward SOR) with right-hand
// side α·r, the component form of r̂ ← G·r̂ + α·P_ω⁻¹·r.
func (s *NaturalSSOR) Step(rhat, r []float64, alpha float64) {
	k, w := s.K, s.omega
	n := k.Rows
	// Forward SOR sweep (ascending unknowns, in-place Gauss–Seidel style).
	for i := 0; i < n; i++ {
		var sum float64
		for p := k.RowPtr[i]; p < k.RowPtr[i+1]; p++ {
			j := k.ColIdx[p]
			if j != i {
				sum += k.Val[p] * rhat[j]
			}
		}
		gs := (alpha*r[i] - sum) / s.d[i]
		rhat[i] = (1-w)*rhat[i] + w*gs
	}
	// Backward SOR sweep.
	for i := n - 1; i >= 0; i-- {
		var sum float64
		for p := k.RowPtr[i]; p < k.RowPtr[i+1]; p++ {
			j := k.ColIdx[p]
			if j != i {
				sum += k.Val[p] * rhat[j]
			}
		}
		gs := (alpha*r[i] - sum) / s.d[i]
		rhat[i] = (1-w)*rhat[i] + w*gs
	}
}
