package splitting

import (
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vec"
)

// TestApplyMStepInterleavedMatchesPerColumn: the fused interleaved sweep
// must equal per-column ApplyMStep exactly, for both kernel sets, several m
// and panel widths.
func TestApplyMStepInterleavedMatchesPerColumn(t *testing.T) {
	s, _, _ := newSixColor(t, 7, 6)
	if !s.CanApplyMStepInterleaved() {
		t.Fatal("ω = 1 multicolor SSOR must offer the interleaved sweep")
	}
	n := s.N()
	rng := rand.New(rand.NewSource(21))
	for _, impl := range []*kernel.Impl{kernel.Portable(), kernel.Active()} {
		for _, m := range []int{1, 2, 4} {
			alphas := make([]float64, m)
			for i := range alphas {
				alphas[i] = 0.5 + rng.Float64()
			}
			for _, cols := range []int{1, 2, 5, 8} {
				r := vec.NewMulti(n, cols)
				for i := range r.Data {
					r.Data[i] = rng.NormFloat64()
				}
				ir := r.Interleaved()
				iz := vec.NewIMulti(n, cols)
				s.ApplyMStepInterleaved(iz, ir, alphas, impl)
				for j := 0; j < cols; j++ {
					want := make([]float64, n)
					s.ApplyMStep(want, r.Col(j), alphas)
					got := make([]float64, n)
					iz.ScatterCol(j, got)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s m=%d cols=%d col %d row %d: interleaved %g != per-column %g",
								impl.Name, m, cols, j, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestApplyMStepInterleavedRelaxedUnavailable: ω ≠ 1 has no fused
// interleaved sweep — the capability probe must say so, and the solvers fall
// back to the column-contiguous layout.
func TestApplyMStepInterleavedRelaxedUnavailable(t *testing.T) {
	k, start, _ := coloredPlate(t, 6, 6)
	s, err := NewMulticolorSSOR(k, start, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if s.CanApplyMStepInterleaved() {
		t.Fatal("ω = 1.3 must not offer the fused interleaved sweep")
	}
}

// TestApplyMStepInterleavedAllocFree guards the sweep hot path: after the
// first call warms the cache panel, fused interleaved sweeps never allocate.
func TestApplyMStepInterleavedAllocFree(t *testing.T) {
	s, _, _ := newSixColor(t, 7, 6)
	n := s.N()
	rng := rand.New(rand.NewSource(22))
	r := vec.NewMulti(n, 8)
	for i := range r.Data {
		r.Data[i] = rng.NormFloat64()
	}
	ir := r.Interleaved()
	iz := vec.NewIMulti(n, 8)
	alphas := []float64{1, 1, 1}
	s.ApplyMStepInterleaved(iz, ir, alphas, nil) // warm the cache panel
	if a := testing.AllocsPerRun(20, func() { s.ApplyMStepInterleaved(iz, ir, alphas, nil) }); a != 0 {
		t.Errorf("ApplyMStepInterleaved allocates %.1f per run", a)
	}
}
