package splitting

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// SixColorSSOR is the multicolor SSOR splitting of the paper's §3
// (Algorithm 2): the matrix is in the 6-color ordering of eq. (3.1), where
// each color group's diagonal block is a diagonal matrix, so a Gauss–Seidel
// sweep over unknowns in ascending order is exactly a sweep over the six
// colors — every color solve is an independent (vectorizable / fully
// parallel) diagonal solve.
//
// The m-step application uses the Conrad–Wallach auxiliary vector y to
// cache the one-sided block sums between half-sweeps, making the m-step
// SSOR preconditioner only as expensive per step as one multicolor SOR
// sweep, and elides the provably dead backward color-1 solves of the
// intermediate steps (the paper defers that solve to its final step (3)).
type SixColorSSOR struct {
	K     *sparse.CSR
	Start []int // group boundaries: group c spans [Start[c], Start[c+1])
	d     []float64
	y     []float64 // Conrad–Wallach cache, one value per unknown
	yb    []float64 // block-apply cache, one value per unknown per column
	omega float64
	ka    kernel.SweepArgs // reused matrix-side argument block for the fused sweeps
}

// NewSixColorSSOR builds the multicolor SSOR splitting (ω = 1, the paper's
// choice) from a matrix in multicolor ordering with group boundaries start
// (len = numGroups+1, start[0] = 0, start[end] = n). It verifies the
// multicolor decoupling: within a group, off-diagonal entries must be
// absent.
func NewSixColorSSOR(k *sparse.CSR, start []int) (*SixColorSSOR, error) {
	return NewMulticolorSSOR(k, start, 1)
}

// NewMulticolorSSOR builds the multicolor SSOR(ω) splitting. The group
// count is arbitrary (6 for the paper's plate; 2k for a k-coloring of a
// general mesh). ω must lie in (0, 2). Note the Conrad–Wallach elisions of
// Algorithm 2 are exact only at ω = 1; other ω values use strict sweeps.
func NewMulticolorSSOR(k *sparse.CSR, start []int, omega float64) (*SixColorSSOR, error) {
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("splitting: multicolor SSOR needs 0 < ω < 2, got %g", omega)
	}
	if k.Rows != k.Cols {
		return nil, fmt.Errorf("splitting: multicolor SSOR needs a square matrix, got %d×%d", k.Rows, k.Cols)
	}
	if len(start) < 2 || start[0] != 0 || start[len(start)-1] != k.Rows {
		return nil, fmt.Errorf("splitting: group boundaries %v do not cover [0,%d]", start, k.Rows)
	}
	for c := 1; c < len(start); c++ {
		if start[c] < start[c-1] {
			return nil, fmt.Errorf("splitting: group boundaries %v not nondecreasing", start)
		}
	}
	d := k.Diag()
	for i, di := range d {
		if di <= 0 {
			return nil, fmt.Errorf("splitting: multicolor SSOR diagonal entry %d is %g (not positive)", i, di)
		}
	}
	s := &SixColorSSOR{K: k, Start: append([]int{}, start...), d: d, y: make([]float64, k.Rows), omega: omega}
	if err := s.verifyDecoupled(); err != nil {
		return nil, err
	}
	return s, nil
}

// verifyDecoupled checks that every within-group entry is on the main
// diagonal — the property the multicolor ordering guarantees and the color
// sweeps rely on.
func (s *SixColorSSOR) verifyDecoupled() error {
	for c := 0; c+1 < len(s.Start); c++ {
		lo, hi := s.Start[c], s.Start[c+1]
		for i := lo; i < hi; i++ {
			for p := s.K.RowPtr[i]; p < s.K.RowPtr[i+1]; p++ {
				j := s.K.ColIdx[p]
				if j != i && j >= lo && j < hi {
					return fmt.Errorf("splitting: group %d not decoupled: entry (%d,%d) within group", c, i, j)
				}
			}
		}
	}
	return nil
}

// N returns the system dimension.
func (s *SixColorSSOR) N() int { return s.K.Rows }

// Name identifies the splitting.
func (s *SixColorSSOR) Name() string {
	if s.omega == 1 {
		return "ssor-multicolor"
	}
	return fmt.Sprintf("ssor-multicolor(ω=%g)", s.omega)
}

// numGroups returns the number of color groups.
func (s *SixColorSSOR) numGroups() int { return len(s.Start) - 1 }

// lowerSum returns −Σ_{j < Start[c]} K_{ij}·r̂_j for row i of group c, the
// forward-sweep block sum x of Algorithm 2.
func (s *SixColorSSOR) lowerSum(i, groupLo int, rhat []float64) float64 {
	var sum float64
	for p := s.K.RowPtr[i]; p < s.K.RowPtr[i+1]; p++ {
		j := s.K.ColIdx[p]
		if j >= groupLo {
			break // columns are sorted; rest are within-group or upper
		}
		sum += s.K.Val[p] * rhat[j]
	}
	return -sum
}

// upperSum returns −Σ_{j ≥ Start[c+1]} K_{ij}·r̂_j for row i of group c,
// the backward-sweep block sum.
func (s *SixColorSSOR) upperSum(i, groupHi int, rhat []float64) float64 {
	var sum float64
	for p := s.K.RowPtr[i+1] - 1; p >= s.K.RowPtr[i]; p-- {
		j := s.K.ColIdx[p]
		if j < groupHi {
			break
		}
		sum += s.K.Val[p] * rhat[j]
	}
	return -sum
}

// Step performs one strict SSOR(ω=1) sweep r̂ ← G·r̂ + α·P⁻¹·r from an
// arbitrary r̂: a forward color sweep (colors ascending) followed by a
// backward color sweep (descending). This is the reference implementation;
// ApplyMStep is the fused Conrad–Wallach path.
func (s *SixColorSSOR) Step(rhat, r []float64, alpha float64) {
	ng := s.numGroups()
	w := s.omega
	for c := 0; c < ng; c++ {
		lo, hi := s.Start[c], s.Start[c+1]
		for i := lo; i < hi; i++ {
			x := s.lowerSum(i, lo, rhat)
			u := s.upperSum(i, hi, rhat)
			rhat[i] = (1-w)*rhat[i] + w*(x+u+alpha*r[i])/s.d[i]
		}
	}
	for c := ng - 1; c >= 0; c-- {
		lo, hi := s.Start[c], s.Start[c+1]
		for i := lo; i < hi; i++ {
			x := s.lowerSum(i, lo, rhat)
			u := s.upperSum(i, hi, rhat)
			rhat[i] = (1-w)*rhat[i] + w*(x+u+alpha*r[i])/s.d[i]
		}
	}
}

// ApplyMStep computes r̂ = M_m⁻¹·r with m = len(alphas) fused steps
// (Algorithm 2 / Algorithm 3 of the paper):
//
//   - the Conrad–Wallach vector y caches the lower block sums from the
//     forward half-sweep for reuse in the backward half-sweep and the upper
//     sums from the backward half-sweep for the next forward half-sweep, so
//     each half-sweep touches only one triangle of K;
//   - the backward sweep skips the last color (its re-solve is identical to
//     the forward solve just performed);
//   - the backward color-1 solve is elided on steps 1..m−1 (its result is
//     provably dead: the next forward color-1 solve overwrites it without
//     reading it) and performed only on the final step — the paper's
//     trailing step (3) with coefficient α₀.
func (s *SixColorSSOR) ApplyMStep(rhat, r []float64, alphas []float64) {
	m := len(alphas)
	if m < 1 {
		panic("splitting: ApplyMStep needs at least one step")
	}
	if s.omega != 1 {
		// The dead-solve elisions rely on Gauss–Seidel idempotence, which
		// fails under relaxation; fall back to strict parametrized steps.
		for i := range rhat {
			rhat[i] = 0
		}
		for step := 1; step <= m; step++ {
			s.Step(rhat, r, alphas[m-step])
		}
		return
	}
	ng := s.numGroups()
	for i := range rhat {
		rhat[i] = 0
		s.y[i] = 0
	}
	for step := 1; step <= m; step++ {
		alpha := alphas[m-step]
		// Forward half-sweep: colors ascending. x = fresh lower sum,
		// y[i] = cached upper sum from the previous backward half-sweep.
		// The last color has an empty upper sum and no backward re-solve,
		// so its cache must remain 0 rather than hold the lower sum.
		for c := 0; c < ng; c++ {
			lo, hi := s.Start[c], s.Start[c+1]
			cache := c < ng-1
			for i := lo; i < hi; i++ {
				x := s.lowerSum(i, lo, rhat)
				rhat[i] = (x + s.y[i] + alpha*r[i]) / s.d[i]
				if cache {
					s.y[i] = x
				}
			}
		}
		// Backward half-sweep: colors descending, skipping the last color
		// (identical re-solve). x = fresh upper sum, y[i] = cached lower
		// sum from the forward half-sweep.
		for c := ng - 2; c >= 0; c-- {
			lo, hi := s.Start[c], s.Start[c+1]
			solve := c > 0 || step == m
			for i := lo; i < hi; i++ {
				x := s.upperSum(i, hi, rhat)
				if solve {
					rhat[i] = (x + s.y[i] + alpha*r[i]) / s.d[i]
				}
				s.y[i] = x
			}
		}
	}
}

// ApplyMStepBlock computes r̂_j = M_m⁻¹·r_j for every column of a
// multivector with one fused sweep structure: at each (step, color, row)
// the solve runs across all s columns while row i's index/value block is
// hot in cache, so a block application traverses K's rows once per
// half-sweep instead of once per half-sweep per right-hand side. Column j
// reproduces ApplyMStep on column j exactly (same per-column arithmetic
// order, including the Conrad–Wallach caching and dead-solve elisions).
//
// Like Apply/Step, this mutates per-splitting scratch and is not safe for
// concurrent use; the service's preconditioner pool hands each job its own
// instance.
func (s *SixColorSSOR) ApplyMStepBlock(rhat, r *vec.Multi, alphas []float64) {
	m := len(alphas)
	if m < 1 {
		panic("splitting: ApplyMStepBlock needs at least one step")
	}
	n, ns := s.K.Rows, rhat.S
	if rhat.N != n || r.N != n || r.S != ns {
		panic(fmt.Sprintf("splitting: ApplyMStepBlock dims: K %d×%d, r %d×%d, rhat %d×%d",
			n, n, r.N, r.S, rhat.N, rhat.S))
	}
	if s.omega != 1 || ns < 4 {
		// The fused elisions need ω = 1 (see ApplyMStep); and narrow
		// blocks lose more to the tile bookkeeping than the fused row
		// scans save, so they take the per-column sweeps.
		for j := 0; j < ns; j++ {
			s.ApplyMStep(rhat.Col(j), r.Col(j), alphas)
		}
		return
	}
	if cap(s.yb) < n*ns {
		s.yb = make([]float64, n*ns)
	}
	// The fused body lives in kernel.SweepCSRCols: row entries are scanned
	// once per column tile (not once per column), each K value/index pair
	// loading once and fanning out across the tile's per-column block sums.
	// Per-column arithmetic order still matches lowerSum/upperSum exactly
	// (−a−b ≡ −(a+b) in IEEE arithmetic, negation being exact).
	s.sweepArgs(alphas)
	kernel.SweepCSRCols(&s.ka, rhat.Data, r.Data, s.yb[:n*ns], n, ns)
}

// sweepArgs refreshes the reused kernel argument block for a fused sweep.
func (s *SixColorSSOR) sweepArgs(alphas []float64) {
	s.ka = kernel.SweepArgs{
		RowPtr: s.K.RowPtr,
		ColIdx: s.K.ColIdx,
		Val:    s.K.Val,
		Start:  s.Start,
		Diag:   s.d,
		Alphas: alphas,
	}
}

// CanApplyMStepInterleaved reports whether the fused interleaved sweep is
// available: the Conrad–Wallach elisions it builds on are exact only at
// ω = 1.
func (s *SixColorSSOR) CanApplyMStepInterleaved() bool { return s.omega == 1 }

// ApplyMStepInterleaved is ApplyMStepBlock over row-interleaved panels: the
// s per-column block sums of a gathered row read from adjacent memory, and
// impl selects the kernel set (nil means the startup-selected one). Column j
// reproduces ApplyMStep on column j exactly. Callers must check
// CanApplyMStepInterleaved first; rhat and r must share one stride.
func (s *SixColorSSOR) ApplyMStepInterleaved(rhat, r *vec.IMulti, alphas []float64, impl *kernel.Impl) {
	m := len(alphas)
	if m < 1 {
		panic("splitting: ApplyMStepInterleaved needs at least one step")
	}
	if !s.CanApplyMStepInterleaved() {
		panic("splitting: ApplyMStepInterleaved needs ω = 1 (check CanApplyMStepInterleaved)")
	}
	n := s.K.Rows
	if rhat.N != n || r.N != n || r.S != rhat.S || r.Stride != rhat.Stride {
		panic(fmt.Sprintf("splitting: ApplyMStepInterleaved dims: K %d×%d, r %d×%d/%d, rhat %d×%d/%d",
			n, n, r.N, r.S, r.Stride, rhat.N, rhat.S, rhat.Stride))
	}
	if impl == nil {
		impl = kernel.Active()
	}
	st := rhat.Stride
	if cap(s.yb) < n*st {
		s.yb = make([]float64, n*st)
	}
	s.sweepArgs(alphas)
	impl.SweepCSRI(&s.ka, rhat.Data, r.Data, s.yb[:n*st], st, n, rhat.S)
}

// GroupLengths returns the size of each color group — the vector lengths of
// the per-color diagonal solves, which the CYBER simulator charges time for.
func (s *SixColorSSOR) GroupLengths() []int {
	out := make([]int, s.numGroups())
	for c := range out {
		out[c] = s.Start[c+1] - s.Start[c]
	}
	return out
}
