package splitting

import (
	"testing"

	"repro/internal/vec"
)

func TestMulticolorOmegaValidation(t *testing.T) {
	_, k, _ := newSixColor(t, 4, 4)
	if _, err := NewMulticolorSSOR(k, []int{0, k.Rows}, 0); err == nil {
		t.Fatal("ω=0 accepted")
	}
	if _, err := NewMulticolorSSOR(k, []int{0, k.Rows}, 2); err == nil {
		t.Fatal("ω=2 accepted")
	}
}

func TestMulticolorOmegaNames(t *testing.T) {
	s, _, _ := newSixColor(t, 4, 4)
	if s.Name() != "ssor-multicolor" {
		t.Fatalf("ω=1 name %q", s.Name())
	}
	k, start, _ := coloredPlate(t, 4, 4)
	s2, err := NewMulticolorSSOR(k, start, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name() == s.Name() {
		t.Fatal("ω should appear in name")
	}
}

// ω≠1 multicolor SSOR must still converge as a stationary iteration and
// match the natural-ordering SSOR(ω) on the same permuted matrix.
func TestMulticolorOmegaMatchesNatural(t *testing.T) {
	k, start, rhs := coloredPlate(t, 6, 6)
	for _, w := range []float64{0.8, 1.4} {
		mc, err := NewMulticolorSSOR(k, start, w)
		if err != nil {
			t.Fatal(err)
		}
		nat, err := NewNaturalSSOR(k, w)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]float64, k.Rows)
		b := make([]float64, k.Rows)
		for i := range a {
			a[i] = float64(i%5) - 2
		}
		copy(b, a)
		mc.Step(a, rhs, 1)
		nat.Step(b, rhs, 1)
		if d := maxDiff(a, b); d > 1e-11 {
			t.Fatalf("ω=%g: multicolor deviates from natural by %g", w, d)
		}
	}
}

// With ω≠1 the fused elisions are disabled; ApplyMStep must equal strict
// steps exactly.
func TestMulticolorOmegaApplyMStepStrict(t *testing.T) {
	k, start, rhs := coloredPlate(t, 5, 5)
	mc, err := NewMulticolorSSOR(k, start, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	alphas := []float64{1.5, 0.5, 2}
	fused := make([]float64, k.Rows)
	mc.ApplyMStep(fused, rhs, alphas)
	naive := make([]float64, k.Rows)
	for s := 1; s <= 3; s++ {
		mc.Step(naive, rhs, alphas[3-s])
	}
	if d := maxDiff(fused, naive); d != 0 {
		t.Fatalf("ω≠1 ApplyMStep deviates from strict steps by %g", d)
	}
}

// The paper's §5 claim (via Adams 1983): for the multicolor ordering with
// few colors, ω = 1 is a good choice — the stationary SSOR error reduction
// at ω=1 is within a whisker of the best sampled ω.
func TestOmegaOneNearOptimalForMulticolor(t *testing.T) {
	k, start, rhs := coloredPlate(t, 8, 8)
	exact := denseSolve(t, k, rhs)
	errAfter := func(w float64, steps int) float64 {
		mc, err := NewMulticolorSSOR(k, start, w)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, k.Rows)
		for s := 0; s < steps; s++ {
			mc.Step(x, rhs, 1)
		}
		return maxDiff(x, exact) / vec.NormInf(exact)
	}
	e1 := errAfter(1.0, 40)
	best := e1
	for _, w := range []float64{0.6, 0.8, 1.2, 1.4, 1.6, 1.8} {
		if e := errAfter(w, 40); e < best {
			best = e
		}
	}
	// ω=1 within a factor ~3 of the best sampled ω (the paper's point is
	// that no delicate ω tuning is needed, unlike natural-ordering SOR).
	if e1 > 3*best {
		t.Fatalf("ω=1 error %g much worse than best sampled %g", e1, best)
	}
}
