package splitting

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// TestApplyMStepBlockMatchesPerColumn: the fused block sweep must equal
// per-column ApplyMStep exactly, for several m and column counts.
func TestApplyMStepBlockMatchesPerColumn(t *testing.T) {
	s, _, _ := newSixColor(t, 7, 6)
	n := s.N()
	rng := rand.New(rand.NewSource(3))
	for _, m := range []int{1, 2, 4} {
		alphas := make([]float64, m)
		for i := range alphas {
			alphas[i] = 0.5 + rng.Float64()
		}
		for _, cols := range []int{1, 2, 5} {
			r := vec.NewMulti(n, cols)
			for i := range r.Data {
				r.Data[i] = rng.NormFloat64()
			}
			block := vec.NewMulti(n, cols)
			s.ApplyMStepBlock(block, r, alphas)
			for j := 0; j < cols; j++ {
				want := make([]float64, n)
				s.ApplyMStep(want, r.Col(j), alphas)
				for i := range want {
					if block.Col(j)[i] != want[i] {
						t.Fatalf("m=%d cols=%d col %d row %d: block %g != per-column %g",
							m, cols, j, i, block.Col(j)[i], want[i])
					}
				}
			}
		}
	}
}

// TestApplyMStepBlockRelaxedFallback: ω ≠ 1 must take the strict per-column
// path and still agree with ApplyMStep.
func TestApplyMStepBlockRelaxedFallback(t *testing.T) {
	k, start, _ := coloredPlate(t, 6, 6)
	s, err := NewMulticolorSSOR(k, start, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	rng := rand.New(rand.NewSource(4))
	r := vec.NewMulti(n, 3)
	for i := range r.Data {
		r.Data[i] = rng.NormFloat64()
	}
	alphas := []float64{1, 1}
	block := vec.NewMulti(n, 3)
	s.ApplyMStepBlock(block, r, alphas)
	for j := 0; j < 3; j++ {
		want := make([]float64, n)
		s.ApplyMStep(want, r.Col(j), alphas)
		for i := range want {
			if block.Col(j)[i] != want[i] {
				t.Fatalf("ω=1.3 col %d row %d: %g != %g", j, i, block.Col(j)[i], want[i])
			}
		}
	}
}
