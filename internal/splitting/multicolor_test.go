package splitting

import (
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/model"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// coloredPlate returns the paper's 6-color plate system and its group
// boundaries.
func coloredPlate(t *testing.T, rows, cols int) (*sparse.CSR, []int, []float64) {
	t.Helper()
	p, err := fem.NewPlate(rows, cols, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p.KColored, p.Ordering.GroupStart[:], p.ColoredRHS()
}

func newSixColor(t *testing.T, rows, cols int) (*SixColorSSOR, *sparse.CSR, []float64) {
	t.Helper()
	k, start, rhs := coloredPlate(t, rows, cols)
	s, err := NewSixColorSSOR(k, start)
	if err != nil {
		t.Fatal(err)
	}
	return s, k, rhs
}

func TestSixColorRejectsCoupledGroups(t *testing.T) {
	// A tridiagonal matrix treated as one big group is not decoupled.
	k := model.Laplacian1D(5)
	if _, err := NewSixColorSSOR(k, []int{0, 5}); err == nil {
		t.Fatal("coupled group accepted")
	}
	// Each unknown its own group is trivially decoupled.
	if _, err := NewSixColorSSOR(k, []int{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatalf("pointwise groups rejected: %v", err)
	}
}

func TestSixColorBoundaryValidation(t *testing.T) {
	k := model.Laplacian1D(4)
	if _, err := NewSixColorSSOR(k, []int{0, 2}); err == nil {
		t.Fatal("short boundaries accepted")
	}
	if _, err := NewSixColorSSOR(k, []int{0, 3, 2, 4}); err == nil {
		t.Fatal("decreasing boundaries accepted")
	}
	rect := sparse.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, err := NewSixColorSSOR(rect.ToCSR(), []int{0, 2}); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

// The multicolor decoupling means a Gauss–Seidel sweep by ascending unknown
// equals a sweep by ascending color — so SixColorSSOR.Step must match
// NaturalSSOR(ω=1).Step on the same (permuted) matrix.
func TestSixColorStepMatchesNaturalSSOR(t *testing.T) {
	s, k, rhs := newSixColor(t, 6, 6)
	nat, err := NewNaturalSSOR(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	a := model.RandomVec(rng, k.Rows)
	b := vec.Clone(a)
	s.Step(a, rhs, 1.25)
	nat.Step(b, rhs, 1.25)
	if d := maxDiff(a, b); d > 1e-11 {
		t.Fatalf("multicolor step deviates from natural SSOR by %g", d)
	}
}

// The fused Conrad–Wallach m-step application must equal m strict steps
// from zero — the elided solves are provably dead.
func TestApplyMStepMatchesNaiveSteps(t *testing.T) {
	s, k, rhs := newSixColor(t, 6, 6)
	n := k.Rows
	for m := 1; m <= 6; m++ {
		alphas := make([]float64, m)
		for i := range alphas {
			alphas[i] = 1 + 0.3*float64(i) // distinct coefficients per step
		}
		fused := make([]float64, n)
		s.ApplyMStep(fused, rhs, alphas)

		naive := make([]float64, n)
		for step := 1; step <= m; step++ {
			s.Step(naive, rhs, alphas[m-step])
		}
		if d := maxDiff(fused, naive); d > 1e-11 {
			t.Fatalf("m=%d: fused vs naive differ by %g", m, d)
		}
	}
}

func TestApplyMStepPanicsOnEmpty(t *testing.T) {
	s, k, rhs := newSixColor(t, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.ApplyMStep(make([]float64, k.Rows), rhs, nil)
}

// The m-step preconditioner must define a symmetric operator in the
// Euclidean inner product: (M⁻¹u, v) = (u, M⁻¹v). This is the paper's
// §2 requirement (P symmetric ⇒ M symmetric).
func TestApplyMStepSymmetricOperator(t *testing.T) {
	s, k, _ := newSixColor(t, 6, 6)
	rng := rand.New(rand.NewSource(13))
	n := k.Rows
	for _, m := range []int{1, 2, 3, 4} {
		alphas := make([]float64, m)
		for i := range alphas {
			alphas[i] = 1 - 0.2*float64(i)
		}
		u := model.RandomVec(rng, n)
		v := model.RandomVec(rng, n)
		mu := make([]float64, n)
		mv := make([]float64, n)
		s.ApplyMStep(mu, u, alphas)
		s.ApplyMStep(mv, v, alphas)
		lhs := vec.Dot(mu, v)
		rhs := vec.Dot(u, mv)
		if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("m=%d: M⁻¹ not symmetric: %g vs %g", m, lhs, rhs)
		}
	}
}

// The m-step stationary iteration (αᵢ=1) converges to K⁻¹r as m grows.
func TestApplyMStepConvergesToSolve(t *testing.T) {
	s, k, rhs := newSixColor(t, 5, 5)
	exact := denseSolve(t, k, rhs)
	var first, prev float64 = -1, -1
	for _, m := range []int{1, 4, 16, 64, 256} {
		alphas := make([]float64, m)
		for i := range alphas {
			alphas[i] = 1
		}
		got := make([]float64, k.Rows)
		s.ApplyMStep(got, rhs, alphas)
		d := maxDiff(got, exact)
		if prev >= 0 && d > prev {
			t.Fatalf("m=%d: error %g worse than smaller m (%g)", m, d, prev)
		}
		if first < 0 {
			first = d
		}
		prev = d
	}
	// ρ(G_SSOR) ≈ 0.95 on this mesh, so demand two orders of magnitude
	// over 256 steps rather than an absolute threshold.
	if prev > first*1e-2 {
		t.Fatalf("m=256 SSOR error %g did not drop below 1%% of m=1 error %g", prev, first)
	}
}

func TestGroupLengths(t *testing.T) {
	s, k, _ := newSixColor(t, 6, 6)
	lens := s.GroupLengths()
	total := 0
	for _, l := range lens {
		total += l
	}
	if total != k.Rows {
		t.Fatalf("group lengths sum %d, want %d", total, k.Rows)
	}
	if len(lens) != 6 {
		t.Fatalf("expected 6 groups, got %d", len(lens))
	}
	// u and v groups of each color have equal lengths.
	for c := 0; c < 3; c++ {
		if lens[2*c] != lens[2*c+1] {
			t.Fatalf("color %d u/v group sizes differ: %v", c, lens)
		}
	}
}

func TestSixColorName(t *testing.T) {
	s, _, _ := newSixColor(t, 4, 4)
	if s.Name() != "ssor-multicolor" {
		t.Fatalf("name = %s", s.Name())
	}
}
