package splitting

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/model"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// denseSolve solves K x = b exactly via dense LU (test sizes only).
func denseSolve(t *testing.T, k *sparse.CSR, b []float64) []float64 {
	t.Helper()
	n := k.Rows
	d := la.NewMatrix(n, n)
	for i, row := range k.Dense() {
		copy(d.Data[i*n:(i+1)*n], row)
	}
	x, err := la.Solve(d, b)
	if err != nil {
		t.Fatalf("dense solve: %v", err)
	}
	return x
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestJacobiStepMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := model.RandomSPD(rng, 20, 3)
	j, err := NewJacobi(k)
	if err != nil {
		t.Fatal(err)
	}
	rhat := model.RandomVec(rng, 20)
	r := model.RandomVec(rng, 20)
	want := vec.Clone(rhat)
	// Explicit: r̂ + D⁻¹(αr − K r̂)
	kr := k.MulVec(rhat)
	d := k.Diag()
	alpha := 1.7
	for i := range want {
		want[i] += (alpha*r[i] - kr[i]) / d[i]
	}
	j.Step(rhat, r, alpha)
	if maxDiff(rhat, want) > 1e-12 {
		t.Fatalf("Jacobi step mismatch: %g", maxDiff(rhat, want))
	}
}

// Property: the exact solution K⁻¹(α·r) is a fixed point of Step with that α.
func TestStepFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := model.RandomSPD(rng, 15, 3)
	r := model.RandomVec(rng, 15)
	exact := denseSolve(t, k, r)

	j, _ := NewJacobi(k)
	s, _ := NewNaturalSSOR(k, 1)
	for _, sp := range []Splitting{j, s} {
		rhat := vec.Clone(exact)
		sp.Step(rhat, r, 1)
		if d := maxDiff(rhat, exact); d > 1e-10 {
			t.Fatalf("%s: fixed point moved by %g", sp.Name(), d)
		}
	}
}

// The stationary iteration with α=1 must converge to K⁻¹r for SSOR on SPD
// matrices (and for Jacobi on this strongly diagonally dominant family).
func TestStationaryIterationConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := model.RandomSPD(rng, 25, 3)
	r := model.RandomVec(rng, 25)
	exact := denseSolve(t, k, r)

	j, _ := NewJacobi(k)
	s, _ := NewNaturalSSOR(k, 1)
	sOmega, _ := NewNaturalSSOR(k, 1.3)
	for _, sp := range []Splitting{j, s, sOmega} {
		rhat := make([]float64, 25)
		for it := 0; it < 400; it++ {
			sp.Step(rhat, r, 1)
		}
		if d := maxDiff(rhat, exact); d > 1e-8 {
			t.Fatalf("%s: stationary iteration residual %g after 400 steps", sp.Name(), d)
		}
	}
}

// Step must be affine: Step(r̂, r, α) = G·r̂ + α·P⁻¹·r. Check linearity in α
// by comparing α-scaled zero-start steps.
func TestStepLinearInAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := model.RandomSPD(rng, 12, 3)
	r := model.RandomVec(rng, 12)
	s, _ := NewNaturalSSOR(k, 1)

	a := make([]float64, 12)
	s.Step(a, r, 2.5) // from zero: 2.5·P⁻¹r

	b := make([]float64, 12)
	s.Step(b, r, 1) // from zero: P⁻¹r
	vec.Scale(2.5, b)
	if d := maxDiff(a, b); d > 1e-12 {
		t.Fatalf("step not linear in α: %g", d)
	}
}

func TestSSORPSymmetricImpliesSymmetricPinv(t *testing.T) {
	// P⁻¹ applied via zero-start Step must be a symmetric operator:
	// (P⁻¹u, v) = (u, P⁻¹v).
	rng := rand.New(rand.NewSource(5))
	k := model.RandomSPD(rng, 18, 3)
	s, _ := NewNaturalSSOR(k, 1)
	u := model.RandomVec(rng, 18)
	v := model.RandomVec(rng, 18)
	pu := make([]float64, 18)
	pv := make([]float64, 18)
	s.Step(pu, u, 1)
	s.Step(pv, v, 1)
	lhs := vec.Dot(pu, v)
	rhs := vec.Dot(u, pv)
	if math.Abs(lhs-rhs) > 1e-10*(1+math.Abs(lhs)) {
		t.Fatalf("P⁻¹ not symmetric: %g vs %g", lhs, rhs)
	}
}

func TestConstructorErrors(t *testing.T) {
	rect := sparse.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, err := NewJacobi(rect.ToCSR()); err == nil {
		t.Fatal("Jacobi accepted rectangular matrix")
	}
	if _, err := NewNaturalSSOR(rect.ToCSR(), 1); err == nil {
		t.Fatal("SSOR accepted rectangular matrix")
	}

	neg := sparse.NewCOO(2, 2)
	neg.Add(0, 0, -1)
	neg.Add(1, 1, 1)
	if _, err := NewJacobi(neg.ToCSR()); err == nil {
		t.Fatal("Jacobi accepted non-positive diagonal")
	}
	if _, err := NewNaturalSSOR(neg.ToCSR(), 1); err == nil {
		t.Fatal("SSOR accepted non-positive diagonal")
	}

	ok := model.Laplacian1D(4)
	if _, err := NewNaturalSSOR(ok, 0); err == nil {
		t.Fatal("SSOR accepted ω=0")
	}
	if _, err := NewNaturalSSOR(ok, 2); err == nil {
		t.Fatal("SSOR accepted ω=2")
	}
}

func TestNames(t *testing.T) {
	k := model.Laplacian1D(4)
	j, _ := NewJacobi(k)
	if j.Name() != "jacobi" {
		t.Fatal("jacobi name")
	}
	s1, _ := NewNaturalSSOR(k, 1)
	if s1.Name() != "ssor-natural" {
		t.Fatal("ssor name")
	}
	s2, _ := NewNaturalSSOR(k, 1.5)
	if s2.Name() == s1.Name() {
		t.Fatal("ω should appear in name")
	}
}
