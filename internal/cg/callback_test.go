package cg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
)

func TestOnIterationObservesEveryStep(t *testing.T) {
	k := model.Laplacian1D(30)
	f := make([]float64, 30)
	f[10] = 1
	var calls int
	var lastUdiff float64
	_, st, err := Solve(k, f, nil, Options{
		Tol: 1e-10,
		OnIteration: func(iter int, udiff, relres float64) bool {
			calls++
			if iter != calls {
				t.Fatalf("iteration numbering: got %d at call %d", iter, calls)
			}
			lastUdiff = udiff
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The callback is skipped on the converging iteration (the solve has
	// already returned), so calls == Iterations − 1.
	if calls != st.Iterations-1 {
		t.Fatalf("callback calls %d, iterations %d", calls, st.Iterations)
	}
	if lastUdiff <= 0 {
		t.Fatal("udiff not reported")
	}
}

func TestOnIterationEarlyStop(t *testing.T) {
	k := model.Poisson2D(12, 12)
	f := make([]float64, 144)
	f[70] = 1
	u, st, err := Solve(k, f, nil, Options{
		Tol: 1e-14,
		OnIteration: func(iter int, udiff, relres float64) bool {
			return iter < 5
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stopped || st.Converged {
		t.Fatalf("expected stopped-not-converged, got %+v", st)
	}
	if st.Iterations != 5 {
		t.Fatalf("stopped after %d iterations, want 5", st.Iterations)
	}
	if u == nil {
		t.Fatal("partial iterate not returned")
	}
}

func TestVerifyResidualMatchesRecurrence(t *testing.T) {
	k := model.Poisson2D(15, 15)
	f := model.RandomVec(rand.New(rand.NewSource(9)), 225)
	_, st, err := Solve(k, f, nil, Options{RelResidualTol: 1e-10, VerifyResidual: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.TrueRelRes < 0 {
		t.Fatal("true residual not computed")
	}
	// Recurrence and true residual agree at convergence.
	if math.Abs(st.TrueRelRes-st.FinalRelRes) > 1e-8 {
		t.Fatalf("true %g vs recurrence %g", st.TrueRelRes, st.FinalRelRes)
	}
}

func TestVerifyResidualDefaultOff(t *testing.T) {
	k := model.Laplacian1D(8)
	f := make([]float64, 8)
	f[0] = 1
	_, st, err := Solve(k, f, nil, Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if st.TrueRelRes != -1 {
		t.Fatalf("TrueRelRes = %v without VerifyResidual", st.TrueRelRes)
	}
}
