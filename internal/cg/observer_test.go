package cg

import (
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/splitting"
	"repro/internal/vec"
)

// countObserver records iteration telemetry into preallocated fields — the
// shape of a production tap with no buffer growth in the hot path.
type countObserver struct {
	calls    int
	lastIter [8]int
	lastVal  [8]float64
}

func (o *countObserver) ObserveIteration(col, iter int, udiff, relres float64) {
	o.calls++
	o.lastIter[col] = iter
	if relres > 0 {
		o.lastVal[col] = relres
	} else {
		o.lastVal[col] = udiff
	}
}

// TestSolveIntoObserverPerIteration: the observer fires exactly once per
// iteration with column 0 and a 1-based, strictly increasing iteration
// number, and attaching it does not change the solve.
func TestSolveIntoObserverPerIteration(t *testing.T) {
	k := model.Poisson2D(12, 12)
	f := make([]float64, k.Rows)
	for i := range f {
		f[i] = 1
	}
	j, err := splitting.NewJacobi(k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := precond.NewMStep(j, poly.Ones(3))
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, k.Rows)
	opt := Options{RelResidualTol: 1e-8, MaxIter: 2000}
	plain, err := SolveInto(u, k, f, p, opt, nil)
	if err != nil {
		t.Fatal(err)
	}

	var o countObserver
	opt.Observer = &o
	clear(u)
	st, err := SolveInto(u, k, f, p, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.calls != st.Iterations {
		t.Fatalf("observer fired %d times over %d iterations", o.calls, st.Iterations)
	}
	if o.lastIter[0] != st.Iterations {
		t.Fatalf("last observed iter = %d, want %d", o.lastIter[0], st.Iterations)
	}
	if st.Iterations != plain.Iterations {
		t.Fatalf("observer changed the solve: %d vs %d iterations", st.Iterations, plain.Iterations)
	}
}

// TestSolveIntoObserverZeroAllocations is the telemetry acceptance guard:
// wiring a per-iteration observer — including the engine's real
// ConvergenceLog — onto a warm scalar solve adds zero allocations.
func TestSolveIntoObserverZeroAllocations(t *testing.T) {
	k := model.Poisson2D(12, 12)
	f := make([]float64, k.Rows)
	for i := range f {
		f[i] = 1
	}
	j, err := splitting.NewJacobi(k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := precond.NewMStep(j, poly.Ones(3))
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, k.Rows)
	ws := NewWorkspace(k.Rows)

	for _, tc := range []struct {
		name string
		obs  Observer
	}{
		{"countObserver", &countObserver{}},
		{"ConvergenceLog", obs.NewConvergenceLog(64)},
	} {
		opt := Options{RelResidualTol: 1e-8, MaxIter: 2000, Observer: tc.obs}
		if _, err := SolveInto(u, k, f, p, opt, ws); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := SolveInto(u, k, f, p, opt, ws); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: observed solve allocated %g times per run, want 0", tc.name, allocs)
		}
	}
}

// TestSolveBlockObserver: the block solver reports block-local column
// indices with per-column iteration streams, and stays allocation-free in
// the steady state with an observer attached.
func TestSolveBlockObserver(t *testing.T) {
	k, f, p := blockFixture(t, 4)
	var o countObserver
	opt := Options{Tol: 1e-9, MaxIter: 5000, Observer: &o}
	ws := NewBlockWorkspace(k.Rows, 4)
	u := vec.NewMulti(k.Rows, 4)
	st, err := SolveBlockInto(u, k, f, p, opt, ws)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for c := 0; c < 4; c++ {
		if o.lastIter[c] != st.Cols[c].Iterations {
			t.Errorf("column %d observed through iter %d, stats say %d", c, o.lastIter[c], st.Cols[c].Iterations)
		}
		total += st.Cols[c].Iterations
	}
	if o.calls != total {
		t.Fatalf("observer fired %d times over %d column-iterations", o.calls, total)
	}

	allocs := testing.AllocsPerRun(3, func() {
		if _, err := SolveBlockInto(u, k, f, p, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("observed block solve allocated %.1f times per run, want 0", allocs)
	}
}
