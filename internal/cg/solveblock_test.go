package cg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/splitting"
	"repro/internal/vec"
)

func blockFixture(t *testing.T, s int) (*sparse.CSR, *vec.Multi, precond.Preconditioner) {
	t.Helper()
	k := model.Poisson2D(15, 15)
	rng := rand.New(rand.NewSource(11))
	f := vec.NewMulti(k.Rows, s)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	j, err := splitting.NewJacobi(k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := precond.NewMStep(j, poly.Ones(3))
	if err != nil {
		t.Fatal(err)
	}
	return k, f, p
}

// TestSolveBlockMatchesSolveInto: every column of a block solve must agree
// with an independent scalar solve of the same column within 1e-10 (they
// are in fact designed to match exactly; the tolerance is the acceptance
// criterion's bound).
func TestSolveBlockMatchesSolveInto(t *testing.T) {
	const s = 6
	k, f, p := blockFixture(t, s)
	opt := Options{Tol: 1e-9, MaxIter: 5000}

	u, st, err := SolveBlock(k, f, p, opt)
	if err != nil {
		t.Fatalf("block solve: %v", err)
	}
	if !st.Converged || st.RHS != s {
		t.Fatalf("block stats: converged=%v rhs=%d", st.Converged, st.RHS)
	}
	for j := 0; j < s; j++ {
		want := make([]float64, k.Rows)
		wst, err := SolveInto(want, k, f.Col(j), p, opt, nil)
		if err != nil {
			t.Fatalf("scalar solve col %d: %v", j, err)
		}
		var maxd float64
		for i := range want {
			if d := math.Abs(u.Col(j)[i] - want[i]); d > maxd {
				maxd = d
			}
		}
		if maxd > 1e-10 {
			t.Fatalf("col %d differs from SolveInto by %g (> 1e-10)", j, maxd)
		}
		if st.Cols[j].Iterations != wst.Iterations {
			t.Fatalf("col %d iterations %d != scalar %d", j, st.Cols[j].Iterations, wst.Iterations)
		}
		if !st.Cols[j].Converged {
			t.Fatalf("col %d not converged", j)
		}
	}
}

// TestSolveBlockOneSpMMPerIteration: the acceptance criterion — Stats
// counts exactly one SpMM per outer iteration, regardless of batch width.
func TestSolveBlockOneSpMMPerIteration(t *testing.T) {
	k, f, p := blockFixture(t, 8)
	st, err := solveBlockFresh(k, f, p, Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpMMs != st.Iterations {
		t.Fatalf("SpMMs = %d, Iterations = %d: want exactly one SpMM per iteration", st.SpMMs, st.Iterations)
	}
	if st.Iterations == 0 {
		t.Fatal("expected at least one iteration")
	}
	// The block preconditioner is applied once before the loop and once per
	// non-final iteration (converged columns skip the trailing apply).
	if st.BlockPrecondApps > st.Iterations+1 {
		t.Fatalf("BlockPrecondApps = %d > iterations+1 = %d", st.BlockPrecondApps, st.Iterations+1)
	}
}

func solveBlockFresh(k *sparse.CSR, f *vec.Multi, p precond.Preconditioner, opt Options) (BlockStats, error) {
	u := vec.NewMulti(k.Rows, f.S)
	return SolveBlockInto(u, k, f, p, opt, nil)
}

// TestSolveBlockDeflation: a zero column converges on the spot; an easy
// column (the solution one step away is not achievable here, so instead use
// wildly different tolerances via scaling) deflates earlier than a hard
// one, and per-column iteration counts reflect it.
func TestSolveBlockDeflation(t *testing.T) {
	k := model.Poisson2D(12, 12)
	n := k.Rows
	f := vec.NewMulti(n, 3)
	// Column 0: zero RHS — converged at iteration 0.
	// Column 1: a smooth RHS.
	// Column 2: a rough RHS (slower to converge for CG without precond).
	for i := 0; i < n; i++ {
		f.Col(1)[i] = 1
		f.Col(2)[i] = float64((i%7)-3) * math.Pow(-1, float64(i%2))
	}
	u := vec.NewMulti(n, 3)
	st, err := SolveBlockInto(u, k, f, nil, Options{RelResidualTol: 1e-10, MaxIter: 5000}, nil)
	if err != nil {
		t.Fatalf("block solve: %v", err)
	}
	if !st.Converged {
		t.Fatal("expected full convergence")
	}
	if st.Cols[0].Iterations != 0 || !st.Cols[0].Converged {
		t.Fatalf("zero column should converge instantly, got %d iterations", st.Cols[0].Iterations)
	}
	for i := 0; i < n; i++ {
		if u.Col(0)[i] != 0 {
			t.Fatalf("zero column solution nonzero at %d", i)
		}
	}
	if st.Cols[1].Iterations > st.Iterations || st.Cols[2].Iterations > st.Iterations {
		t.Fatal("per-column iterations exceed outer iterations")
	}
	if st.Iterations != max(st.Cols[1].Iterations, st.Cols[2].Iterations) {
		t.Fatalf("outer iterations %d != max per-column (%d, %d)",
			st.Iterations, st.Cols[1].Iterations, st.Cols[2].Iterations)
	}
	// Deflation must not corrupt the surviving columns: check residuals.
	for j := 1; j < 3; j++ {
		r := make([]float64, n)
		k.MulVecTo(r, u.Col(j))
		vec.Sub(r, f.Col(j), r)
		if rel := vec.Norm2(r) / vec.Norm2(f.Col(j)); rel > 1e-9 {
			t.Fatalf("col %d true residual %g after deflation", j, rel)
		}
	}
}

// TestSolveBlockMaxIter: columns still active at the iteration limit report
// ErrMaxIterations, per column and joined.
func TestSolveBlockMaxIter(t *testing.T) {
	k, f, p := blockFixture(t, 3)
	u := vec.NewMulti(k.Rows, 3)
	st, err := SolveBlockInto(u, k, f, p, Options{Tol: 1e-12, MaxIter: 2}, nil)
	if err == nil {
		t.Fatal("expected iteration-limit error")
	}
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("want ErrMaxIterations, got %v", err)
	}
	if st.Converged {
		t.Fatal("stats claim convergence at MaxIter=2")
	}
	for j := 0; j < 3; j++ {
		if !errors.Is(st.ColErrs[j], ErrMaxIterations) {
			t.Fatalf("col %d error = %v", j, st.ColErrs[j])
		}
	}
}

// TestSolveBlockBreakdownColumnIsolated: an indefinite system breaks down,
// but per-column errors identify it without aborting the whole batch
// machinery (all columns here share the bad matrix, so all report it).
func TestSolveBlockBreakdownIndefinite(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1) // indefinite
	k := c.ToCSR()
	f := vec.MultiFromCols([][]float64{{1, 1}, {2, -1}})
	u := vec.NewMulti(2, 2)
	st, err := SolveBlockInto(u, k, f, nil, Options{Tol: 1e-10}, nil)
	if err == nil {
		t.Fatal("expected breakdown error")
	}
	if !errors.Is(err, ErrBreakdownMatrix) {
		t.Fatalf("want ErrBreakdownMatrix, got %v", err)
	}
	found := false
	for j := range st.ColErrs {
		if errors.Is(st.ColErrs[j], ErrBreakdownMatrix) {
			found = true
		}
	}
	if !found {
		t.Fatal("no per-column breakdown recorded")
	}
}

// TestSolveBlockInputValidation covers the argument checks.
func TestSolveBlockInputValidation(t *testing.T) {
	k := model.Laplacian1D(4)
	f := vec.NewMulti(4, 2)
	u := vec.NewMulti(4, 2)
	if _, err := SolveBlockInto(u, k, vec.NewMulti(3, 2), nil, Options{Tol: 1e-8}, nil); err == nil {
		t.Fatal("rhs row mismatch accepted")
	}
	if _, err := SolveBlockInto(vec.NewMulti(4, 1), k, f, nil, Options{Tol: 1e-8}, nil); err == nil {
		t.Fatal("iterate shape mismatch accepted")
	}
	if _, err := SolveBlockInto(u, k, f, nil, Options{}, nil); err == nil {
		t.Fatal("no stopping test accepted")
	}
	if _, err := SolveBlockInto(u, k, f, nil, Options{Tol: 1e-8, X0: make([]float64, 4)}, nil); err == nil {
		t.Fatal("X0 accepted by block solve")
	}
	if _, err := SolveBlockInto(u, k, vec.NewMulti(4, 0), nil, Options{Tol: 1e-8}, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestSolveBlockWorkspaceReuseAndParallel: a warm workspace must be
// reusable across shapes, and the parallel kernels must reproduce the
// serial solution.
func TestSolveBlockWorkspaceReuseAndParallel(t *testing.T) {
	k, f, p := blockFixture(t, 4)
	opt := Options{Tol: 1e-9, MaxIter: 5000}
	ws := NewBlockWorkspace(0, 0)

	u1 := vec.NewMulti(k.Rows, 4)
	if _, err := SolveBlockInto(u1, k, f, p, opt, ws); err != nil {
		t.Fatal(err)
	}
	// Same workspace, different (smaller) shape.
	k2 := model.Laplacian1D(30)
	f2 := vec.NewMulti(30, 2)
	f2.Col(0)[15] = 1
	f2.Col(1)[3] = -2
	u2 := vec.NewMulti(30, 2)
	if _, err := SolveBlockInto(u2, k2, f2, nil, Options{Tol: 1e-10}, ws); err != nil {
		t.Fatal(err)
	}
	// Re-solve the first problem on the warm workspace: identical result.
	u3 := vec.NewMulti(k.Rows, 4)
	if _, err := SolveBlockInto(u3, k, f, p, opt, ws); err != nil {
		t.Fatal(err)
	}
	for i := range u1.Data {
		if u1.Data[i] != u3.Data[i] {
			t.Fatalf("workspace reuse changed the solution at %d", i)
		}
	}
	// Parallel kernels: same solution within roundoff (dot products are
	// chunk-ordered, so tiny reassociation differences are possible only
	// above the parallel threshold; this system is below it, so exact).
	opt.Workers = 4
	u4 := vec.NewMulti(k.Rows, 4)
	if _, err := SolveBlockInto(u4, k, f, p, opt, ws); err != nil {
		t.Fatal(err)
	}
	for i := range u1.Data {
		if math.Abs(u1.Data[i]-u4.Data[i]) > 1e-10 {
			t.Fatalf("parallel solve differs at %d: %g vs %g", i, u1.Data[i], u4.Data[i])
		}
	}
}

// TestSolveBlockSteadyStateAllocFree: with a warm workspace, serial
// kernels, and a preheated batch shape, a block solve must not allocate.
func TestSolveBlockSteadyStateAllocFree(t *testing.T) {
	k, f, p := blockFixture(t, 4)
	opt := Options{Tol: 1e-9, MaxIter: 5000}
	ws := NewBlockWorkspace(k.Rows, 4)
	u := vec.NewMulti(k.Rows, 4)
	if _, err := SolveBlockInto(u, k, f, p, opt, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := SolveBlockInto(u, k, f, p, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state block solve allocated %.1f times per run", allocs)
	}
}
