package cg

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/kernel"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/splitting"
	"repro/internal/vec"
)

// interleavedFixture builds a plate system whose preconditioner supports the
// fused interleaved sweep (6-color SSOR at ω = 1), plus an s-column block of
// random right-hand sides.
func interleavedFixture(t *testing.T, s, m int) (*sparse.CSR, *vec.Multi, precond.Preconditioner) {
	t.Helper()
	plate, err := fem.NewPlate(7, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := plate.KColored
	mc, err := splitting.NewSixColorSSOR(k, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	var p precond.Preconditioner = precond.Identity{}
	if m > 0 {
		p, err = precond.NewMStep(mc, poly.Ones(m))
		if err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(31))
	f := vec.NewMulti(k.Rows, s)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return k, f, p
}

// runBoth solves the same block twice — column-contiguous and interleaved —
// and returns both iterates and stats.
func runBoth(t *testing.T, k sparse.Operator, f *vec.Multi, p precond.Preconditioner, opt Options) (ucol, uint *vec.Multi, stCol, stInt BlockStats) {
	t.Helper()
	n, _ := k.Dims()
	ucol, uint = vec.NewMulti(n, f.S), vec.NewMulti(n, f.S)
	optCol, optInt := opt, opt
	optCol.Interleave = false
	optInt.Interleave = true
	var err error
	stCol, err = SolveBlockInto(ucol, k, f, p, optCol, NewBlockWorkspace(n, f.S))
	if err != nil {
		t.Fatalf("column path: %v", err)
	}
	stInt, err = SolveBlockInto(uint, k, f, p, optInt, NewBlockWorkspace(n, f.S))
	if err != nil {
		t.Fatalf("interleaved path: %v", err)
	}
	return ucol, uint, stCol, stInt
}

// TestInterleavedMatchesColumnBitwise is the central parity test: the
// interleaved panel path must reproduce the column-contiguous block solve
// bit for bit — iterates, iteration counts, per-column stats.
func TestInterleavedMatchesColumnBitwise(t *testing.T) {
	for _, m := range []int{0, 3} {
		for _, s := range []int{4, 8} {
			k, f, p := interleavedFixture(t, s, m)
			ucol, uint, stCol, stInt := runBoth(t, k, f, p, Options{Tol: 1e-9, MaxIter: 5000})
			if stInt.Interleaved != true || stCol.Interleaved != false {
				t.Fatalf("m=%d s=%d: Interleaved flags %v/%v", m, s, stCol.Interleaved, stInt.Interleaved)
			}
			if stInt.Kernel == "" {
				t.Fatalf("m=%d s=%d: interleaved stats carry no kernel name", m, s)
			}
			if stCol.Iterations != stInt.Iterations || stCol.SpMMs != stInt.SpMMs ||
				stCol.InnerProducts != stInt.InnerProducts || stCol.BlockPrecondApps != stInt.BlockPrecondApps {
				t.Fatalf("m=%d s=%d: counters differ: %+v vs %+v", m, s, stCol, stInt)
			}
			for i := range ucol.Data {
				if ucol.Data[i] != uint.Data[i] {
					t.Fatalf("m=%d s=%d: iterate flat %d differs: %g vs %g", m, s, i, ucol.Data[i], uint.Data[i])
				}
			}
			for j := 0; j < s; j++ {
				c, ic := stCol.Cols[j], stInt.Cols[j]
				if c.Iterations != ic.Iterations || c.Converged != ic.Converged ||
					c.FinalUDiff != ic.FinalUDiff || c.FinalRelRes != ic.FinalRelRes ||
					c.InnerProducts != ic.InnerProducts || c.PrecondApps != ic.PrecondApps || c.MatVecs != ic.MatVecs {
					t.Fatalf("m=%d s=%d col %d stats differ: %+v vs %+v", m, s, j, c, ic)
				}
			}
		}
	}
}

// TestInterleavedParallelMatchesColumn: the fan-out path uses the same row
// chunking on both layouts, so parity holds at workers > 1 too.
func TestInterleavedParallelMatchesColumn(t *testing.T) {
	k, f, p := interleavedFixture(t, 8, 2)
	ucol, uint, _, _ := runBoth(t, k, f, p, Options{Tol: 1e-9, MaxIter: 5000, Workers: 4})
	for i := range ucol.Data {
		if ucol.Data[i] != uint.Data[i] {
			t.Fatalf("workers=4: iterate flat %d differs", i)
		}
	}
}

// TestInterleavedDeflationParity staggers per-column convergence (wildly
// different column scales plus one zero column) and checks the deflation
// machinery — swaps, scatters, hook order — preserves parity.
func TestInterleavedDeflationParity(t *testing.T) {
	k, f, p := interleavedFixture(t, 6, 3)
	scale := []float64{1, 1e-8, 1e4, 0, 1, 1e-4}
	for j := 0; j < f.S; j++ {
		col := f.Col(j)
		for i := range col {
			col[i] *= scale[j]
		}
	}
	var orderCol, orderInt []int
	n, _ := k.Dims()
	ucol, uint := vec.NewMulti(n, f.S), vec.NewMulti(n, f.S)
	optCol := Options{Tol: 1e-9, MaxIter: 5000,
		OnColumnDone: func(col int, cs ColumnStats) { orderCol = append(orderCol, col) }}
	optInt := optCol
	optInt.Interleave = true
	optInt.OnColumnDone = func(col int, cs ColumnStats) {
		orderInt = append(orderInt, col)
		// the column's slice of the iterate block must be final here
		if got := uint.Col(col); len(got) != n {
			t.Errorf("col %d: bad iterate slice", col)
		}
	}
	stCol, err := SolveBlockInto(ucol, k, f, p, optCol, NewBlockWorkspace(n, f.S))
	if err != nil {
		t.Fatal(err)
	}
	stInt, err := SolveBlockInto(uint, k, f, p, optInt, NewBlockWorkspace(n, f.S))
	if err != nil {
		t.Fatal(err)
	}
	if !stInt.Interleaved {
		t.Fatal("interleaved path did not engage")
	}
	if len(orderCol) != f.S || len(orderInt) != f.S {
		t.Fatalf("hook counts %d/%d != %d", len(orderCol), len(orderInt), f.S)
	}
	for i := range orderCol {
		if orderCol[i] != orderInt[i] {
			t.Fatalf("deflation order differs: %v vs %v", orderCol, orderInt)
		}
	}
	for i := range ucol.Data {
		if ucol.Data[i] != uint.Data[i] {
			t.Fatalf("iterate flat %d differs", i)
		}
	}
	if !stCol.Cols[3].Converged || stCol.Cols[3].Iterations != 0 || stInt.Cols[3].Iterations != 0 {
		t.Fatalf("zero column did not deflate instantly: %+v vs %+v", stCol.Cols[3], stInt.Cols[3])
	}
}

// TestInterleavedMaxIterParity: columns that run out of iterations surface
// ErrMaxIterations identically on both layouts.
func TestInterleavedMaxIterParity(t *testing.T) {
	k, f, p := interleavedFixture(t, 4, 1)
	n, _ := k.Dims()
	opt := Options{Tol: 1e-14, MaxIter: 3}
	ucol := vec.NewMulti(n, f.S)
	_, errCol := SolveBlockInto(ucol, k, f, p, opt, NewBlockWorkspace(n, f.S))
	opt.Interleave = true
	uint := vec.NewMulti(n, f.S)
	stInt, errInt := SolveBlockInto(uint, k, f, p, opt, NewBlockWorkspace(n, f.S))
	if !errors.Is(errCol, ErrMaxIterations) || !errors.Is(errInt, ErrMaxIterations) {
		t.Fatalf("errors: %v vs %v", errCol, errInt)
	}
	if !stInt.Interleaved {
		t.Fatal("interleaved path did not engage")
	}
	for i := range ucol.Data {
		if ucol.Data[i] != uint.Data[i] {
			t.Fatalf("partial iterate flat %d differs", i)
		}
	}
}

// TestInterleavedBreakdownParity: an indefinite system breaks down at the
// same iteration with the same error on both layouts.
func TestInterleavedBreakdownParity(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1) // indefinite
	k := c.ToCSR()
	f := vec.NewMulti(2, 4)
	for i := range f.Data {
		f.Data[i] = float64(i + 1)
	}
	opt := Options{Tol: 1e-10, MaxIter: 50, Interleave: true}
	u := vec.NewMulti(2, 4)
	st, err := SolveBlockInto(u, k, f, precond.Identity{}, opt, NewBlockWorkspace(2, 4))
	if !st.Interleaved {
		t.Fatal("interleaved path did not engage")
	}
	if !errors.Is(err, ErrBreakdownMatrix) {
		t.Fatalf("want matrix breakdown, got %v", err)
	}
}

// TestInterleavedFallback: a preconditioner without the fused interleaved
// sweep (Jacobi m-step) keeps the column-contiguous path even when
// Options.Interleave is set — and the solve still succeeds.
func TestInterleavedFallback(t *testing.T) {
	k, f, p := blockFixture(t, 4) // Jacobi m-step: no interleaved sweep
	if precond.CanApplyInterleaved(p) {
		t.Fatal("Jacobi m-step unexpectedly serves interleaved panels")
	}
	n := k.Rows
	u := vec.NewMulti(n, f.S)
	st, err := SolveBlockInto(u, k, f, p, Options{Tol: 1e-8, MaxIter: 5000, Interleave: true}, NewBlockWorkspace(n, f.S))
	if err != nil {
		t.Fatal(err)
	}
	if st.Interleaved {
		t.Fatal("fell through to the interleaved path without preconditioner support")
	}
	if !st.Converged {
		t.Fatal("fallback solve did not converge")
	}
}

// TestInterleavedKernelPortable: forcing the portable set produces the same
// bits and reports the set by name.
func TestInterleavedKernelPortable(t *testing.T) {
	k, f, p := interleavedFixture(t, 8, 2)
	n, _ := k.Dims()
	opt := Options{Tol: 1e-9, MaxIter: 5000, Interleave: true}
	uAuto := vec.NewMulti(n, f.S)
	stAuto, err := SolveBlockInto(uAuto, k, f, p, opt, NewBlockWorkspace(n, f.S))
	if err != nil {
		t.Fatal(err)
	}
	opt.Kernel = "portable"
	uPort := vec.NewMulti(n, f.S)
	stPort, err := SolveBlockInto(uPort, k, f, p, opt, NewBlockWorkspace(n, f.S))
	if err != nil {
		t.Fatal(err)
	}
	if stPort.Kernel != "portable" {
		t.Fatalf("portable solve reports kernel %q", stPort.Kernel)
	}
	if stAuto.Kernel != kernel.Active().Name {
		t.Fatalf("auto solve reports kernel %q, active is %q", stAuto.Kernel, kernel.Active().Name)
	}
	if stAuto.Iterations != stPort.Iterations {
		t.Fatalf("iteration counts differ across kernel sets: %d vs %d", stAuto.Iterations, stPort.Iterations)
	}
	for i := range uAuto.Data {
		if uAuto.Data[i] != uPort.Data[i] {
			t.Fatalf("kernel sets disagree at flat %d", i)
		}
	}
}

// TestInterleavedSteadyStateAllocFree: after a warm-up solve on the same
// workspace, the interleaved path allocates nothing per solve (the panels
// are lazily allocated once and reused).
func TestInterleavedSteadyStateAllocFree(t *testing.T) {
	k, f, p := interleavedFixture(t, 8, 2)
	n, _ := k.Dims()
	u := vec.NewMulti(n, f.S)
	ws := NewBlockWorkspace(n, f.S)
	opt := Options{Tol: 1e-9, MaxIter: 5000, Interleave: true}
	if _, err := SolveBlockInto(u, k, f, p, opt, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := SolveBlockInto(u, k, f, p, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state interleaved solve allocates %.1f per run", allocs)
	}
}
