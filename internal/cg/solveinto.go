package cg

import (
	"fmt"
	"math"

	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// Workspace holds every scratch vector a solve needs, so repeated solves of
// same-sized systems (the solver service's steady state) allocate nothing.
// A Workspace is not safe for concurrent use; give each worker its own.
type Workspace struct {
	r    []float64 // residual
	rhat []float64 // M⁻¹ r
	p    []float64 // search direction
	kp   []float64 // K p
	tmp  []float64 // VerifyResidual scratch

	// alphas and betas back Stats.CGAlphas/CGBetas; their capacity is
	// retained across solves so the recurrence recording stops allocating
	// once it has grown to the iteration count a problem needs.
	alphas, betas []float64
}

// NewWorkspace returns a workspace sized for n-dimensional systems. It grows
// automatically if later used for a larger system.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

// ensure sizes every buffer to length n, reallocating only on growth.
func (w *Workspace) ensure(n int) {
	if cap(w.r) < n {
		w.r = make([]float64, n)
		w.rhat = make([]float64, n)
		w.p = make([]float64, n)
		w.kp = make([]float64, n)
		w.tmp = make([]float64, n)
	}
	w.r = w.r[:n]
	w.rhat = w.rhat[:n]
	w.p = w.p[:n]
	w.kp = w.kp[:n]
	w.tmp = w.tmp[:n]
}

// SolveInto runs preconditioned CG on K·u = f with preconditioner M,
// writing the iterate into u (len n; any prior content is overwritten, or
// replaced by opt.X0 when set). ws provides the scratch memory and may be
// nil, in which case a fresh workspace is allocated.
//
// With History off, a warm workspace, and Workers ≤ 1, a solve performs no
// heap allocation — the returned Stats.CGAlphas/CGBetas alias the
// workspace, so copy them before the workspace's next solve if they must
// survive it. Workers > 1 fans the SpMV/dot/axpy kernels out over that many
// goroutines (goroutine startup does allocate).
func SolveInto(u []float64, k sparse.Operator, f []float64, m precond.Preconditioner, opt Options, ws *Workspace) (Stats, error) {
	n, cols := k.Dims()
	if cols != n {
		return Stats{}, fmt.Errorf("cg: matrix must be square, got %d×%d", n, cols)
	}
	if len(f) != n {
		return Stats{}, fmt.Errorf("cg: rhs length %d != n %d", len(f), n)
	}
	if len(u) != n {
		return Stats{}, fmt.Errorf("cg: iterate length %d != n %d", len(u), n)
	}
	if opt.Tol <= 0 && opt.RelResidualTol <= 0 {
		return Stats{}, fmt.Errorf("cg: no stopping test enabled (Tol and RelResidualTol both unset)")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	if m == nil {
		m = precond.Identity{}
	}
	if ws == nil {
		ws = NewWorkspace(n)
	}
	ws.ensure(n)
	// The Par kernels fall back to their serial forms for w <= 1 (and for
	// short vectors), so one normalized budget serves every call site.
	w := opt.Workers
	if w < 1 {
		w = 1
	}

	var st Stats
	st.TrueRelRes = -1
	st.CGAlphas = ws.alphas[:0]
	st.CGBetas = ws.betas[:0]
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return Stats{}, fmt.Errorf("cg: x0 length %d != n %d", len(opt.X0), n)
		}
		copy(u, opt.X0)
	} else {
		vec.Zero(u)
	}

	r, rhat, p, kp := ws.r, ws.rhat, ws.p, ws.kp

	// r⁰ = f − K u⁰
	k.ParMulVecTo(kp, u, w)
	st.MatVecs++
	vec.Sub(r, f, kp)
	// M r̂⁰ = r⁰ ; p⁰ = r̂⁰
	m.Apply(rhat, r)
	st.PrecondApps++
	copy(p, rhat)

	normF := vec.Norm2(f)
	if normF == 0 {
		normF = 1 // homogeneous system: absolute residual test
	}

	rho := vec.ParDot(rhat, r, w)
	st.InnerProducts++

	var reterr error
	switch {
	case rho < 0:
		reterr = ErrBreakdownPrecond
	case rho == 0: // zero residual: initial guess solves the system
		st.Converged = true
	default:
		reterr = ErrMaxIterations // cleared by any successful exit below
	loop:
		for iter := 0; iter < opt.MaxIter; iter++ {
			if opt.Ctx != nil {
				if cerr := opt.Ctx.Err(); cerr != nil {
					reterr = cerr
					break loop
				}
			}
			k.ParMulVecTo(kp, p, w)
			st.MatVecs++
			pkp := vec.ParDot(p, kp, w)
			st.InnerProducts++
			if pkp <= 0 {
				reterr = ErrBreakdownMatrix
				break loop
			}
			alpha := rho / pkp
			st.CGAlphas = append(st.CGAlphas, alpha)

			// u^{k+1} = u^k + α p ; the paper's test quantity is
			// ‖u^{k+1}−u^k‖_∞ = |α|·‖p‖_∞.
			vec.ParAxpy(alpha, p, u, w)
			st.Iterations++
			udiff := math.Abs(alpha) * vec.NormInf(p)
			st.FinalUDiff = udiff

			// r^{k+1} = r^k − α K p
			vec.ParAxpy(-alpha, kp, r, w)
			relres := vec.Norm2(r) / normF
			st.FinalRelRes = relres
			if opt.History {
				st.UDiffHistory = append(st.UDiffHistory, udiff)
				st.ResidualHistory = append(st.ResidualHistory, relres)
			}
			if opt.Observer != nil {
				opt.Observer.ObserveIteration(0, st.Iterations, udiff, relres)
			}
			if (opt.Tol > 0 && udiff < opt.Tol) || (opt.RelResidualTol > 0 && relres < opt.RelResidualTol) {
				st.Converged = true
				reterr = nil
				break loop
			}
			if opt.OnIteration != nil && !opt.OnIteration(st.Iterations, udiff, relres) {
				st.Stopped = true
				reterr = nil
				break loop
			}

			// M r̂^{k+1} = r^{k+1}
			m.Apply(rhat, r)
			st.PrecondApps++
			rhoNext := vec.ParDot(rhat, r, w)
			st.InnerProducts++
			if rhoNext < 0 {
				reterr = ErrBreakdownPrecond
				break loop
			}
			if rhoNext == 0 {
				// (M⁻¹r, r) = 0 with SPD M means r = 0: exact convergence.
				st.Converged = true
				reterr = nil
				break loop
			}
			beta := rhoNext / rho
			st.CGBetas = append(st.CGBetas, beta)
			rho = rhoNext

			// p^{k+1} = r̂^{k+1} + β p^k
			vec.Xpay(rhat, beta, p)
		}
	}

	// Retain grown recurrence capacity for the workspace's next solve.
	ws.alphas = st.CGAlphas
	ws.betas = st.CGBetas

	if opt.VerifyResidual {
		k.ParMulVecTo(ws.tmp, u, w)
		st.MatVecs++
		vec.Sub(ws.tmp, f, ws.tmp)
		st.TrueRelRes = vec.Norm2(ws.tmp) / normF
	}
	return st, reterr
}
