package cg

import (
	"context"
	"errors"
	"testing"

	"repro/internal/vec"
)

// TestOnColumnDoneFiresOncePerColumn: every column of a block solve fires
// the hook exactly once, with its original RHS index, its final stats, and
// a final (safe-to-read) iterate column.
func TestOnColumnDoneFiresOncePerColumn(t *testing.T) {
	const s = 6
	k, f, p := blockFixture(t, s)
	u := vec.NewMulti(k.Rows, s)

	fired := make(map[int]ColumnStats)
	order := []int{}
	opt := Options{Tol: 1e-9, MaxIter: 5000}
	opt.OnColumnDone = func(col int, cs ColumnStats) {
		if _, dup := fired[col]; dup {
			t.Errorf("column %d fired twice", col)
		}
		fired[col] = cs
		order = append(order, col)
	}
	st, err := SolveBlockInto(u, k, f, p, opt, nil)
	if err != nil {
		t.Fatalf("block solve: %v", err)
	}
	if len(fired) != s {
		t.Fatalf("hook fired for %d columns, want %d", len(fired), s)
	}
	for j := 0; j < s; j++ {
		cs, ok := fired[j]
		if !ok {
			t.Fatalf("column %d never fired", j)
		}
		if !cs.Stats.Converged || cs.Err != nil {
			t.Errorf("column %d: converged=%v err=%v", j, cs.Stats.Converged, cs.Err)
		}
		// The hook's snapshot must match the end-of-solve report.
		if cs.Stats.Iterations != st.Cols[j].Iterations {
			t.Errorf("column %d: hook iterations %d != final %d", j, cs.Stats.Iterations, st.Cols[j].Iterations)
		}
	}
	// Columns deflate in convergence order, which is generally not RHS
	// order; the last entry must still be the slowest column.
	slow := order[len(order)-1]
	for j := 0; j < s; j++ {
		if st.Cols[j].Iterations > st.Cols[slow].Iterations {
			t.Errorf("column %d (%d iters) outlasted last-fired column %d (%d iters)",
				j, st.Cols[j].Iterations, slow, st.Cols[slow].Iterations)
		}
	}
}

// TestOnColumnDoneEarlySurfacing: an easy column's hook must fire at an
// iteration count strictly below the hard column's total — the property
// the service's streaming relies on.
func TestOnColumnDoneEarlySurfacing(t *testing.T) {
	const s = 4
	k, f, p := blockFixture(t, s)
	// Column 0 keeps its random (hard) RHS; the rest become tiny multiples
	// of it, which converge almost immediately under the absolute tol.
	for j := 1; j < s; j++ {
		for i := 0; i < f.N; i++ {
			f.Col(j)[i] = 1e-9 * f.Col(0)[i]
		}
	}
	u := vec.NewMulti(k.Rows, s)
	var firstCol, firstIters = -1, 0
	hardIters := 0
	opt := Options{Tol: 1e-8, MaxIter: 5000}
	opt.OnColumnDone = func(col int, cs ColumnStats) {
		if firstCol < 0 {
			firstCol, firstIters = col, cs.Stats.Iterations
		}
		if col == 0 {
			hardIters = cs.Stats.Iterations
		}
	}
	if _, err := SolveBlockInto(u, k, f, p, opt, nil); err != nil {
		t.Fatalf("block solve: %v", err)
	}
	if firstCol == 0 {
		t.Fatalf("hard column fired first (in %d iterations)", firstIters)
	}
	if firstIters >= hardIters {
		t.Fatalf("first column surfaced at iteration %d, not before the hard column's %d", firstIters, hardIters)
	}
}

// TestBlockSolveCtxCancel: a canceled context stops the block solve at the
// next iteration boundary; unfinished columns report the context error
// (and still fire the hook).
func TestBlockSolveCtxCancel(t *testing.T) {
	const s = 3
	k, f, p := blockFixture(t, s)
	u := vec.NewMulti(k.Rows, s)
	ctx, cancel := context.WithCancel(context.Background())

	fired := 0
	opt := Options{Tol: 1e-12, MaxIter: 5000, Ctx: ctx}
	opt.OnColumnDone = func(col int, cs ColumnStats) {
		fired++
		if !errors.Is(cs.Err, context.Canceled) {
			t.Errorf("column %d: err = %v, want context.Canceled", col, cs.Err)
		}
	}
	cancel() // cancel before the first iteration: nothing converges
	st, err := SolveBlockInto(u, k, f, p, opt, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Converged {
		t.Fatal("canceled solve reported converged")
	}
	if fired != s {
		t.Fatalf("hook fired %d times, want %d (every column must surface)", fired, s)
	}
	for j := 0; j < s; j++ {
		if !errors.Is(st.ColErrs[j], context.Canceled) {
			t.Errorf("ColErrs[%d] = %v, want context.Canceled", j, st.ColErrs[j])
		}
	}
}

// TestSolveIntoCtxCancel: the scalar path honors Options.Ctx the same way.
func TestSolveIntoCtxCancel(t *testing.T) {
	k, f, p := blockFixture(t, 1)
	u := make([]float64, k.Rows)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := SolveInto(u, k, f.Col(0), p, Options{Tol: 1e-12, MaxIter: 5000, Ctx: ctx}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Converged {
		t.Fatal("canceled solve reported converged")
	}
	// An uncanceled context must not perturb the solve.
	st2, err := SolveInto(u, k, f.Col(0), p, Options{Tol: 1e-9, MaxIter: 5000, Ctx: context.Background()}, nil)
	if err != nil || !st2.Converged {
		t.Fatalf("background-ctx solve: converged=%v err=%v", st2.Converged, err)
	}
}
