package cg

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sparse"
)

// The solvers consume any sparse.Operator: a DIA-backed solve must agree
// with the CSR-backed solve of the same system (to rounding — the two
// storages traverse the matrix in different orders).
func TestSolveAcceptsDIAOperator(t *testing.T) {
	k := model.Laplacian1D(40)
	d := sparse.MustDIAFromCSR(k)
	f := make([]float64, 40)
	f[13] = 1
	uCSR, stCSR, err := Solve(k, f, nil, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	uDIA, stDIA, err := Solve(d, f, nil, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !stCSR.Converged || !stDIA.Converged {
		t.Fatalf("converged csr=%v dia=%v", stCSR.Converged, stDIA.Converged)
	}
	for i := range uCSR {
		if math.Abs(uCSR[i]-uDIA[i]) > 1e-9*(1+math.Abs(uCSR[i])) {
			t.Fatalf("solutions deviate at %d: %g vs %g", i, uCSR[i], uDIA[i])
		}
	}
}
