package cg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// The row-interleaved block solve path. SolveBlockInto delegates here when
// Options.Interleave is set and both the operator and the preconditioner
// can serve vec.IMulti panels. The recurrence is the same lockstep block
// PCG as the column-contiguous path, but the working block lives in
// interleaved form for the whole solve: the right-hand sides are converted
// once at entry (the tile-boundary conversion of the planner-tiled
// executor), every fused kernel reads panel rows as contiguous cache lines,
// and each column converts back to column-contiguous form exactly once —
// the moment it leaves the active set. Because every kernel preserves
// per-column arithmetic order, column j's iterates are bit-identical to the
// column-contiguous path (and to a scalar SolveInto on column j).

// ensureInterleaved sizes the interleaved panels for an n×s solve,
// reallocating only on growth; the panels are allocated lazily so
// column-contiguous workspaces never pay for them.
func (w *BlockWorkspace) ensureInterleaved(n, s int) {
	if w.ri == nil || w.ri.N < n || w.ri.Stride < s {
		nn, ss := n, s
		if w.ri != nil {
			nn = max(nn, w.ri.N)
			ss = max(ss, w.ri.Stride)
		}
		w.ri = vec.NewIMulti(nn, ss)
		w.rhati = vec.NewIMulti(nn, ss)
		w.pi = vec.NewIMulti(nn, ss)
		w.kpi = vec.NewIMulti(nn, ss)
		w.ui = vec.NewIMulti(nn, ss)
	}
	if cap(w.pinf) < s {
		w.pinf = make([]float64, s)
		w.rnorm = make([]float64, s)
	}
	w.pinf, w.rnorm = w.pinf[:s], w.rnorm[:s]
}

// blockI points the interleaved working views at an n-row, s-live-column
// panel at the front of each scratch buffer. The allocation stride may
// exceed s (after workspace growth); rows stay stride-wide with the first
// s entries live.
func (w *BlockWorkspace) blockI(n, s int) {
	st := w.ri.Stride
	view := func(m *vec.IMulti) vec.IMulti {
		return vec.IMulti{N: n, S: s, Stride: st, Data: m.Data[:n*st]}
	}
	w.riv, w.rhativ, w.piv, w.kpiv, w.uiv = view(w.ri), view(w.rhati), view(w.pi), view(w.kpi), view(w.ui)
}

// setActiveI re-points the interleaved views at the first act columns; the
// stride (and backing data) never moves, deflation only narrows the live
// prefix of each row.
func (w *BlockWorkspace) setActiveI(act int) {
	w.riv.S, w.rhativ.S, w.piv.S, w.kpiv.S, w.uiv.S = act, act, act, act, act
}

// solveBlockInterleaved is the panel-layout body of SolveBlockInto; inputs
// are already validated and ws.ensure has run. See SolveBlockInto for the
// recurrence and the deflation/callback contract — every observable
// (iterates, statistics, hook order) matches the column-contiguous path.
func solveBlockInterleaved(u *vec.Multi, k sparse.InterleavedOperator, f *vec.Multi, m precond.Preconditioner, opt Options, ws *BlockWorkspace) (BlockStats, error) {
	n := f.N
	s := f.S
	impl := kernel.Select(opt.Kernel)
	ws.ensureInterleaved(n, s)
	ws.blockI(n, s)
	w := opt.Workers
	if w < 1 {
		w = 1
	}

	st := BlockStats{RHS: s, Cols: ws.cols, ColErrs: ws.errs, Interleaved: true, Kernel: impl.Name}
	for j := range ws.cols {
		ws.cols[j] = Stats{TrueRelRes: -1}
		ws.errs[j] = nil
		ws.perm[j] = j
	}

	// u⁰ = 0, r⁰ = f: the one interleave of the whole solve.
	u.Zero()
	ws.uiv.Zero()
	ws.riv.InterleaveFrom(f, impl)
	for j := 0; j < s; j++ {
		nf := vec.Norm2(f.Col(j))
		if nf == 0 {
			nf = 1 // homogeneous column: absolute residual test
		}
		ws.normF[j] = nf
	}

	act := s
	// deflate retires the column in the given active slot. The column's
	// panel slice of the iterate is final here, so it scatters back to
	// column-contiguous form exactly once — before the swap moves it and
	// before OnColumnDone lets the caller read u.Col(j).
	deflate := func(slot int) {
		j := ws.perm[slot]
		ws.uiv.ScatterCol(slot, u.Col(j))
		defer func() {
			if opt.OnColumnDone != nil {
				opt.OnColumnDone(j, ColumnStats{Stats: ws.cols[j], Err: ws.errs[j]})
			}
		}()
		last := act - 1
		if slot != last {
			ws.riv.SwapCols(slot, last)
			ws.rhativ.SwapCols(slot, last)
			ws.piv.SwapCols(slot, last)
			ws.kpiv.SwapCols(slot, last)
			ws.uiv.SwapCols(slot, last)
			ws.rho[slot], ws.rho[last] = ws.rho[last], ws.rho[slot]
			ws.pkp[slot], ws.pkp[last] = ws.pkp[last], ws.pkp[slot]
			ws.alpha[slot], ws.alpha[last] = ws.alpha[last], ws.alpha[slot]
			ws.beta[slot], ws.beta[last] = ws.beta[last], ws.beta[slot]
			ws.normF[slot], ws.normF[last] = ws.normF[last], ws.normF[slot]
			ws.perm[slot], ws.perm[last] = ws.perm[last], ws.perm[slot]
		}
		act--
		ws.setActiveI(act)
	}

	// M r̂⁰ = r⁰ ; p⁰ = r̂⁰ ; ρ⁰_j = (r̂_j, r_j).
	precond.ApplyInterleaved(m, &ws.rhativ, &ws.riv, impl)
	st.BlockPrecondApps++
	copy(ws.piv.Data, ws.rhativ.Data)
	vec.ParIMultiDot(&ws.rhativ, &ws.riv, w, ws.rho[:act], impl)
	st.InnerProducts += act
	for j := 0; j < s; j++ {
		ws.cols[j].PrecondApps++
		ws.cols[j].InnerProducts++
	}
	for slot := act - 1; slot >= 0; slot-- {
		j := ws.perm[slot]
		switch {
		case ws.rho[slot] < 0:
			ws.errs[j] = ErrBreakdownPrecond
			deflate(slot)
		case ws.rho[slot] == 0: // zero residual: the zero iterate solves column j
			ws.cols[j].Converged = true
			deflate(slot)
		}
	}

	var stopErr error
	for act > 0 && st.Iterations < opt.MaxIter {
		if opt.Ctx != nil {
			if cerr := opt.Ctx.Err(); cerr != nil {
				stopErr = cerr
				break
			}
		}
		st.Iterations++

		// One SpMM feeds every active column: KP = K·P.
		k.ParMulMatITo(&ws.kpiv, &ws.piv, w, impl)
		st.SpMMs++
		vec.ParIMultiDot(&ws.piv, &ws.kpiv, w, ws.pkp[:act], impl)
		st.InnerProducts += act
		for slot := 0; slot < act; slot++ {
			c := &ws.cols[ws.perm[slot]]
			c.MatVecs++
			c.InnerProducts++
		}
		// Matrix breakdowns deflate before the iterate update, exactly
		// where SolveInto stops.
		for slot := act - 1; slot >= 0; slot-- {
			if ws.pkp[slot] <= 0 {
				ws.errs[ws.perm[slot]] = ErrBreakdownMatrix
				deflate(slot)
			}
		}
		if act == 0 {
			break
		}

		for slot := 0; slot < act; slot++ {
			ws.alpha[slot] = ws.rho[slot] / ws.pkp[slot]
		}
		// U += α∘P across the whole panel; the paper's test quantity
		// ‖u^{k+1}−u^k‖_∞ is |α_j|·‖p_j‖_∞ per column.
		vec.ParIMultiAxpy(ws.alpha[:act], &ws.piv, &ws.uiv, w, impl)
		vec.IMultiNormInf(&ws.piv, ws.pinf[:act], impl)
		for slot := 0; slot < act; slot++ {
			c := &ws.cols[ws.perm[slot]]
			c.Iterations++
			c.FinalUDiff = math.Abs(ws.alpha[slot]) * ws.pinf[slot]
		}
		// r_j −= α_j K p_j, fused across the panel.
		for slot := 0; slot < act; slot++ {
			ws.beta[slot] = -ws.alpha[slot] // beta doubles as −α scratch here
		}
		vec.ParIMultiAxpy(ws.beta[:act], &ws.kpiv, &ws.riv, w, impl)
		vec.IMultiNorm2(&ws.riv, ws.rnorm[:act], impl)
		for slot := 0; slot < act; slot++ {
			j := ws.perm[slot]
			c := &ws.cols[j]
			c.FinalRelRes = ws.rnorm[slot] / ws.normF[slot]
			if opt.Observer != nil {
				opt.Observer.ObserveIteration(j, c.Iterations, c.FinalUDiff, c.FinalRelRes)
			}
		}
		// Per-column stopping tests; converged columns deflate out.
		for slot := act - 1; slot >= 0; slot-- {
			c := &ws.cols[ws.perm[slot]]
			if (opt.Tol > 0 && c.FinalUDiff < opt.Tol) || (opt.RelResidualTol > 0 && c.FinalRelRes < opt.RelResidualTol) {
				c.Converged = true
				deflate(slot)
			}
		}
		if act == 0 {
			break
		}

		// One block application serves every surviving column: M r̂_j = r_j.
		precond.ApplyInterleaved(m, &ws.rhativ, &ws.riv, impl)
		st.BlockPrecondApps++
		vec.ParIMultiDot(&ws.rhativ, &ws.riv, w, ws.pkp[:act], impl) // pkp doubles as ρ' scratch
		st.InnerProducts += act
		for slot := 0; slot < act; slot++ {
			c := &ws.cols[ws.perm[slot]]
			c.PrecondApps++
			c.InnerProducts++
		}
		for slot := act - 1; slot >= 0; slot-- {
			j := ws.perm[slot]
			switch {
			case ws.pkp[slot] < 0:
				ws.errs[j] = ErrBreakdownPrecond
				deflate(slot)
			case ws.pkp[slot] == 0:
				// (M⁻¹r, r) = 0 with SPD M means r = 0: exact convergence.
				ws.cols[j].Converged = true
				deflate(slot)
			}
		}
		if act == 0 {
			break
		}

		for slot := 0; slot < act; slot++ {
			ws.beta[slot] = ws.pkp[slot] / ws.rho[slot]
			ws.rho[slot] = ws.pkp[slot]
		}
		// p_j = r̂_j + β_j p_j, fused across the panel.
		vec.ParIMultiXpay(&ws.rhativ, ws.beta[:act], &ws.piv, w, impl)
	}

	// Columns still active at exit ran out of iterations — or the context
	// was canceled; scatter their final iterates and surface them through
	// the hook exactly like deflated ones.
	exitErr := ErrMaxIterations
	if stopErr != nil {
		exitErr = stopErr
	}
	for slot := 0; slot < act; slot++ {
		j := ws.perm[slot]
		ws.uiv.ScatterCol(slot, u.Col(j))
		ws.errs[j] = exitErr
		if opt.OnColumnDone != nil {
			opt.OnColumnDone(j, ColumnStats{Stats: ws.cols[j], Err: exitErr})
		}
	}
	st.Converged = true
	for j := range ws.cols {
		if !ws.cols[j].Converged {
			st.Converged = false
			break
		}
	}
	var errs []error
	for j, e := range ws.errs {
		if e != nil {
			errs = append(errs, fmt.Errorf("cg: rhs %d: %w", j, e))
		}
	}
	return st, errors.Join(errs...)
}
