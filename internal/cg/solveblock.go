package cg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// BlockStats reports a block (multi-right-hand-side) solve: the shared
// per-iteration work — exactly one SpMM and one block preconditioner
// application per outer iteration — plus per-column recurrence statistics.
type BlockStats struct {
	// RHS is the number of right-hand sides s.
	RHS int
	// Iterations is the number of outer block iterations (the maximum over
	// columns, since converged columns deflate out of later iterations).
	Iterations int
	// SpMMs counts matrix–multivector products: exactly one per outer
	// iteration, shared by every active column.
	SpMMs int
	// BlockPrecondApps counts block preconditioner applications (one
	// m-step sweep serving all active columns).
	BlockPrecondApps int
	// InnerProducts counts per-column inner-product evaluations, the
	// paper's bottleneck metric, summed over columns.
	InnerProducts int
	// Converged reports that every column converged.
	Converged bool
	// Interleaved reports that the solve ran on the row-interleaved panel
	// layout (Options.Interleave honored by both operator and
	// preconditioner).
	Interleaved bool
	// Kernel names the kernel set the solve's fused loops ran through
	// ("portable", "avx2", "neon").
	Kernel string
	// Cols holds per-column statistics indexed by right-hand-side:
	// Iterations is the count while the column was active, FinalUDiff /
	// FinalRelRes are its last stopping-test values. Cols aliases the
	// workspace; copy entries that must survive the next solve.
	Cols []Stats
	// ColErrs holds the per-column failure (breakdown or iteration-limit),
	// indexed like Cols; nil entries converged (or stopped cleanly).
	ColErrs []error
}

// ColumnStats is the payload of Options.OnColumnDone: a snapshot of one
// column's final statistics, taken the moment the column leaves the active
// set (it does not alias the workspace, unlike BlockStats.Cols).
type ColumnStats struct {
	// Stats is the column's final per-column recurrence report.
	Stats Stats
	// Err is the column's failure — breakdown, iteration limit, or the
	// context's error on cancellation; nil when the column converged.
	Err error
}

// BlockWorkspace holds the scratch for SolveBlockInto, so repeated block
// solves of same-shaped batches (the solver service's steady state)
// allocate nothing. Not safe for concurrent use; give each worker its own.
type BlockWorkspace struct {
	r, rhat, p, kp *vec.Multi

	// Active-prefix views, re-pointed (not reallocated) as converged
	// columns deflate; kernels receive these so the steady state stays
	// allocation-free.
	rv, rhatv, pv, kpv vec.Multi

	// Interleaved panels and views for the panel-layout path (see
	// solveblocki.go), allocated lazily on the first interleaved solve; ui
	// holds the iterate in panel form, pinf/rnorm the fused per-column
	// norm results.
	ri, rhati, pi, kpi, ui      *vec.IMulti
	riv, rhativ, piv, kpiv, uiv vec.IMulti
	pinf, rnorm                 []float64

	// Per-slot scalars (slot = position in the active prefix).
	rho, pkp, alpha, beta, normF []float64
	// perm maps slot -> original right-hand-side index.
	perm []int

	cols []Stats
	errs []error
}

// NewBlockWorkspace returns a workspace sized for n-dimensional systems
// with s right-hand sides. It grows automatically when later used for a
// larger system or batch.
func NewBlockWorkspace(n, s int) *BlockWorkspace {
	w := &BlockWorkspace{}
	w.ensure(n, s)
	return w
}

// ensure sizes every buffer for an n×s solve, reallocating only on growth.
func (w *BlockWorkspace) ensure(n, s int) {
	if w.r == nil || w.r.N < n || w.r.S < s {
		// Grow to the larger of the current and requested shapes so a big
		// batch on a small system does not shrink capacity for either axis.
		nn, ss := n, s
		if w.r != nil {
			nn = max(nn, w.r.N)
			ss = max(ss, w.r.S)
		}
		w.r = vec.NewMulti(nn, ss)
		w.rhat = vec.NewMulti(nn, ss)
		w.p = vec.NewMulti(nn, ss)
		w.kp = vec.NewMulti(nn, ss)
	}
	if cap(w.rho) < s {
		w.rho = make([]float64, s)
		w.pkp = make([]float64, s)
		w.alpha = make([]float64, s)
		w.beta = make([]float64, s)
		w.normF = make([]float64, s)
		w.perm = make([]int, s)
	}
	w.rho, w.pkp, w.alpha, w.beta, w.normF = w.rho[:s], w.pkp[:s], w.alpha[:s], w.beta[:s], w.normF[:s]
	w.perm = w.perm[:s]
	if cap(w.cols) < s {
		w.cols = make([]Stats, s)
		w.errs = make([]error, s)
	}
	w.cols, w.errs = w.cols[:s], w.errs[:s]
}

// block points the working views at an n-row, s-column reinterpretation of
// each scratch Multi's front. The backing buffers may have grown larger
// than n×s; the views pack the s columns contiguously at stride n.
func (w *BlockWorkspace) block(n, s int) {
	view := func(m *vec.Multi) vec.Multi {
		return vec.Multi{N: n, S: s, Data: m.Data[:n*s]}
	}
	w.rv, w.rhatv, w.pv, w.kpv = view(w.r), view(w.rhat), view(w.p), view(w.kp)
}

// setActive re-points the working views at the first act columns.
func (w *BlockWorkspace) setActive(n, act int) {
	w.rv.S, w.rhatv.S, w.pv.S, w.kpv.S = act, act, act, act
	w.rv.Data = w.rv.Data[:n*act]
	w.rhatv.Data = w.rhatv.Data[:n*act]
	w.pv.Data = w.pv.Data[:n*act]
	w.kpv.Data = w.kpv.Data[:n*act]
}

// SolveBlock runs block PCG on K·U = F for a batch of right-hand sides,
// allocating its own result and scratch. Allocation-sensitive callers use
// SolveBlockInto with a reused workspace.
func SolveBlock(k sparse.Operator, f *vec.Multi, m precond.Preconditioner, opt Options) (*vec.Multi, BlockStats, error) {
	rows, _ := k.Dims()
	u := vec.NewMulti(rows, f.S)
	st, err := SolveBlockInto(u, k, f, m, opt, nil)
	return u, st, err
}

// SolveBlockInto runs preconditioned CG on s systems K·u_j = f_j sharing
// one matrix and one preconditioner: s independent scalar CG recurrences
// advance in lockstep, but every iteration performs exactly one
// matrix–multivector product (Stats.SpMMs) and one block preconditioner
// application — the per-iteration memory traffic over K is amortized over
// all s right-hand sides, the multi-RHS form of the paper's
// long-vector-operation argument. Each column runs the paper's stopping
// tests independently; converged (or broken-down) columns are deflated —
// swapped out of the active prefix — so later iterations do no work for
// them. Column j's iterates match a scalar SolveInto on (K, f_j) exactly,
// because every fused kernel preserves per-column arithmetic order.
//
// u receives the solutions (always starting from the zero iterate;
// opt.X0 is rejected). opt.History, opt.OnIteration and
// opt.VerifyResidual are scalar-solve options and are ignored here;
// opt.Ctx, opt.OnColumnDone and opt.Observer are honored — cancellation
// stops at the next iteration boundary, each column's retirement fires the
// hook while the rest of the block keeps iterating, and the observer
// samples every active column once per block iteration. With a
// warm workspace and Workers ≤ 1 the steady state performs no heap
// allocation; the returned BlockStats.Cols/ColErrs alias the workspace, so
// copy them before its next solve if they must survive it.
//
// The returned error is nil only when every column converged; otherwise it
// joins the per-column failures (also available in BlockStats.ColErrs).
func SolveBlockInto(u *vec.Multi, k sparse.Operator, f *vec.Multi, m precond.Preconditioner, opt Options, ws *BlockWorkspace) (BlockStats, error) {
	n, cols := k.Dims()
	s := f.S
	if cols != n {
		return BlockStats{}, fmt.Errorf("cg: matrix must be square, got %d×%d", n, cols)
	}
	if f.N != n {
		return BlockStats{}, fmt.Errorf("cg: rhs block is %d×%d, want %d rows", f.N, f.S, n)
	}
	if u.N != n || u.S != s {
		return BlockStats{}, fmt.Errorf("cg: iterate block is %d×%d, want %d×%d", u.N, u.S, n, s)
	}
	if s < 1 {
		return BlockStats{}, fmt.Errorf("cg: block solve needs at least one right-hand side")
	}
	if opt.X0 != nil {
		return BlockStats{}, fmt.Errorf("cg: block solve starts from the zero iterate (X0 unsupported)")
	}
	if opt.Tol <= 0 && opt.RelResidualTol <= 0 {
		return BlockStats{}, fmt.Errorf("cg: no stopping test enabled (Tol and RelResidualTol both unset)")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	if m == nil {
		m = precond.Identity{}
	}
	if ws == nil {
		ws = NewBlockWorkspace(n, s)
	}
	ws.ensure(n, s)
	if opt.Interleave {
		if ik, ok := k.(sparse.InterleavedOperator); ok && precond.CanApplyInterleaved(m) {
			return solveBlockInterleaved(u, ik, f, m, opt, ws)
		}
	}
	ws.block(n, s)
	w := opt.Workers
	if w < 1 {
		w = 1
	}

	st := BlockStats{RHS: s, Cols: ws.cols, ColErrs: ws.errs, Kernel: kernel.Active().Name}
	for j := range ws.cols {
		ws.cols[j] = Stats{TrueRelRes: -1}
		ws.errs[j] = nil
		ws.perm[j] = j
	}

	// u⁰ = 0, so r⁰ = f with no initial product; every SpMM below is one of
	// the per-iteration products the acceptance criterion counts.
	u.Zero()
	ws.rv.CopyFrom(f)
	for j := 0; j < s; j++ {
		nf := vec.Norm2(f.Col(j))
		if nf == 0 {
			nf = 1 // homogeneous column: absolute residual test
		}
		ws.normF[j] = nf
	}

	act := s
	// deflate retires the column in the given active slot: its per-column
	// bookkeeping is already final, so swap it (and every per-slot scalar
	// the remaining iterations still read) past the active prefix, then
	// surface it through OnColumnDone — the column's slice of u is final
	// here, long before the slowest column finishes.
	deflate := func(slot int) {
		j := ws.perm[slot]
		defer func() {
			if opt.OnColumnDone != nil {
				opt.OnColumnDone(j, ColumnStats{Stats: ws.cols[j], Err: ws.errs[j]})
			}
		}()
		last := act - 1
		if slot != last {
			ws.rv.SwapCols(slot, last)
			ws.rhatv.SwapCols(slot, last)
			ws.pv.SwapCols(slot, last)
			ws.kpv.SwapCols(slot, last)
			ws.rho[slot], ws.rho[last] = ws.rho[last], ws.rho[slot]
			ws.pkp[slot], ws.pkp[last] = ws.pkp[last], ws.pkp[slot]
			ws.alpha[slot], ws.alpha[last] = ws.alpha[last], ws.alpha[slot]
			ws.beta[slot], ws.beta[last] = ws.beta[last], ws.beta[slot]
			ws.normF[slot], ws.normF[last] = ws.normF[last], ws.normF[slot]
			ws.perm[slot], ws.perm[last] = ws.perm[last], ws.perm[slot]
		}
		act--
		ws.setActive(n, act)
	}

	// M r̂⁰ = r⁰ ; p⁰ = r̂⁰ ; ρ⁰_j = (r̂_j, r_j).
	precond.ApplyBlock(m, &ws.rhatv, &ws.rv)
	st.BlockPrecondApps++
	ws.pv.CopyFrom(&ws.rhatv)
	vec.ParMultiDot(&ws.rhatv, &ws.rv, w, ws.rho[:act])
	st.InnerProducts += act
	for j := 0; j < s; j++ {
		ws.cols[j].PrecondApps++
		ws.cols[j].InnerProducts++
	}
	for slot := act - 1; slot >= 0; slot-- {
		j := ws.perm[slot]
		switch {
		case ws.rho[slot] < 0:
			ws.errs[j] = ErrBreakdownPrecond
			deflate(slot)
		case ws.rho[slot] == 0: // zero residual: the zero iterate solves column j
			ws.cols[j].Converged = true
			deflate(slot)
		}
	}

	var stopErr error
	for act > 0 && st.Iterations < opt.MaxIter {
		if opt.Ctx != nil {
			if cerr := opt.Ctx.Err(); cerr != nil {
				stopErr = cerr
				break
			}
		}
		st.Iterations++

		// One SpMM feeds every active column: KP = K·P.
		k.ParMulMatTo(&ws.kpv, &ws.pv, w)
		st.SpMMs++
		vec.ParMultiDot(&ws.pv, &ws.kpv, w, ws.pkp[:act])
		st.InnerProducts += act
		for slot := 0; slot < act; slot++ {
			c := &ws.cols[ws.perm[slot]]
			c.MatVecs++
			c.InnerProducts++
		}
		// Matrix breakdowns deflate before the iterate update, exactly
		// where SolveInto stops.
		for slot := act - 1; slot >= 0; slot-- {
			if ws.pkp[slot] <= 0 {
				ws.errs[ws.perm[slot]] = ErrBreakdownMatrix
				deflate(slot)
			}
		}
		if act == 0 {
			break
		}

		for slot := 0; slot < act; slot++ {
			ws.alpha[slot] = ws.rho[slot] / ws.pkp[slot]
		}
		// u_j += α_j p_j ; the paper's test quantity ‖u^{k+1}−u^k‖_∞ is
		// |α_j|·‖p_j‖_∞ per column.
		for slot := 0; slot < act; slot++ {
			j := ws.perm[slot]
			vec.ParAxpy(ws.alpha[slot], ws.pv.Col(slot), u.Col(j), w)
			c := &ws.cols[j]
			c.Iterations++
			c.FinalUDiff = math.Abs(ws.alpha[slot]) * vec.NormInf(ws.pv.Col(slot))
		}
		// r_j −= α_j K p_j, fused across the block.
		for slot := 0; slot < act; slot++ {
			ws.beta[slot] = -ws.alpha[slot] // beta doubles as −α scratch here
		}
		vec.ParMultiAxpy(ws.beta[:act], &ws.kpv, &ws.rv, w)
		for slot := 0; slot < act; slot++ {
			j := ws.perm[slot]
			c := &ws.cols[j]
			c.FinalRelRes = vec.Norm2(ws.rv.Col(slot)) / ws.normF[slot]
			if opt.Observer != nil {
				opt.Observer.ObserveIteration(j, c.Iterations, c.FinalUDiff, c.FinalRelRes)
			}
		}
		// Per-column stopping tests; converged columns deflate out.
		for slot := act - 1; slot >= 0; slot-- {
			c := &ws.cols[ws.perm[slot]]
			if (opt.Tol > 0 && c.FinalUDiff < opt.Tol) || (opt.RelResidualTol > 0 && c.FinalRelRes < opt.RelResidualTol) {
				c.Converged = true
				deflate(slot)
			}
		}
		if act == 0 {
			break
		}

		// One block application serves every surviving column:
		// M r̂_j = r_j.
		precond.ApplyBlock(m, &ws.rhatv, &ws.rv)
		st.BlockPrecondApps++
		vec.ParMultiDot(&ws.rhatv, &ws.rv, w, ws.pkp[:act]) // pkp doubles as ρ' scratch
		st.InnerProducts += act
		for slot := 0; slot < act; slot++ {
			c := &ws.cols[ws.perm[slot]]
			c.PrecondApps++
			c.InnerProducts++
		}
		for slot := act - 1; slot >= 0; slot-- {
			j := ws.perm[slot]
			switch {
			case ws.pkp[slot] < 0:
				ws.errs[j] = ErrBreakdownPrecond
				deflate(slot)
			case ws.pkp[slot] == 0:
				// (M⁻¹r, r) = 0 with SPD M means r = 0: exact convergence.
				ws.cols[j].Converged = true
				deflate(slot)
			}
		}
		if act == 0 {
			break
		}

		for slot := 0; slot < act; slot++ {
			ws.beta[slot] = ws.pkp[slot] / ws.rho[slot]
			ws.rho[slot] = ws.pkp[slot]
		}
		// p_j = r̂_j + β_j p_j, fused across the block.
		vec.ParMultiXpay(&ws.rhatv, ws.beta[:act], &ws.pv, w)
	}

	// Columns still active at exit ran out of iterations — or the context
	// was canceled; either way they surface through the hook exactly like
	// deflated ones, so every column fires OnColumnDone once per solve.
	exitErr := ErrMaxIterations
	if stopErr != nil {
		exitErr = stopErr
	}
	for slot := 0; slot < act; slot++ {
		j := ws.perm[slot]
		ws.errs[j] = exitErr
		if opt.OnColumnDone != nil {
			opt.OnColumnDone(j, ColumnStats{Stats: ws.cols[j], Err: exitErr})
		}
	}
	st.Converged = true
	for j := range ws.cols {
		if !ws.cols[j].Converged {
			st.Converged = false
			break
		}
	}
	var errs []error
	for j, e := range ws.errs {
		if e != nil {
			errs = append(errs, fmt.Errorf("cg: rhs %d: %w", j, e))
		}
	}
	return st, errors.Join(errs...)
}
