package cg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fem"
	"repro/internal/la"
	"repro/internal/model"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/splitting"
	"repro/internal/vec"
)

func residualInf(k *sparse.CSR, u, f []float64) float64 {
	r := k.MulVec(u)
	vec.Sub(r, f, r)
	return vec.NormInf(r)
}

func TestCGSolvesSmallSystem(t *testing.T) {
	k := model.Laplacian1D(10)
	f := make([]float64, 10)
	f[4] = 1
	u, st, err := Solve(k, f, nil, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("not converged")
	}
	if res := residualInf(k, u, f); res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestCGExactInAtMostNSteps(t *testing.T) {
	// In exact arithmetic CG terminates within n iterations; in floating
	// point on a tiny well-conditioned system it does too.
	k := model.Laplacian1D(8)
	f := model.RandomVec(rand.New(rand.NewSource(1)), 8)
	_, st, err := Solve(k, f, nil, Options{RelResidualTol: 1e-12, MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations > 8+1 {
		t.Fatalf("CG took %d iterations on an 8×8 system", st.Iterations)
	}
}

// Property: PCG solves random SPD systems to the requested residual with
// every preconditioner.
func TestPCGSolvesRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		k := model.RandomSPD(rng, n, 3)
		want := model.RandomVec(rng, n)
		b := k.MulVec(want)

		j, err := splitting.NewJacobi(k)
		if err != nil {
			return false
		}
		s, err := splitting.NewNaturalSSOR(k, 1)
		if err != nil {
			return false
		}
		pj, _ := precond.NewMStep(j, poly.Ones(1))
		ps, _ := precond.NewMStep(s, poly.Ones(2))
		for _, m := range []precond.Preconditioner{precond.Identity{}, pj, ps} {
			u, st, err := Solve(k, b, m, Options{RelResidualTol: 1e-10, MaxIter: 20 * n})
			if err != nil || !st.Converged {
				return false
			}
			for i := range want {
				if math.Abs(u[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPCGIterationCountsDropWithPreconditioning(t *testing.T) {
	// The paper's core premise: m-step SSOR PCG needs far fewer iterations
	// than CG, and iterations decrease as m grows.
	plate, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := plate.KColored
	f := plate.ColoredRHS()
	mc, err := splitting.NewSixColorSSOR(k, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	iters := func(m int) int {
		var p precond.Preconditioner = precond.Identity{}
		if m > 0 {
			p, _ = precond.NewMStep(mc, poly.Ones(m))
		}
		_, st, err := Solve(k, f, p, Options{Tol: 1e-8, MaxIter: 4000})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		return st.Iterations
	}
	n0, n1, n3 := iters(0), iters(1), iters(3)
	if n1 >= n0 {
		t.Fatalf("1-step SSOR PCG (%d iters) not better than CG (%d)", n1, n0)
	}
	if n3 >= n1 {
		t.Fatalf("3-step (%d iters) not better than 1-step (%d)", n3, n1)
	}
}

func TestPCGAllPreconditionersAgreeOnSolution(t *testing.T) {
	plate, err := fem.NewPlate(5, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := plate.KColored
	f := plate.ColoredRHS()
	mc, _ := splitting.NewSixColorSSOR(k, plate.Ordering.GroupStart[:])
	ref, _, err := Solve(k, f, nil, Options{RelResidualTol: 1e-12, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for m := 1; m <= 4; m++ {
		p, _ := precond.NewMStep(mc, poly.Ones(m))
		u, _, err := Solve(k, f, p, Options{RelResidualTol: 1e-12, MaxIter: 5000})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range u {
			if math.Abs(u[i]-ref[i]) > 1e-7*(1+math.Abs(ref[i])) {
				t.Fatalf("m=%d solution deviates at %d: %g vs %g", m, i, u[i], ref[i])
			}
		}
	}
}

func TestUDiffStoppingMatchesPaperDefinition(t *testing.T) {
	// FinalUDiff must equal ‖u^{k+1}−u^k‖_∞ of the last step: run twice
	// with MaxIter k and k+1 and compare.
	k := model.Laplacian1D(20)
	f := model.RandomVec(rand.New(rand.NewSource(2)), 20)
	u1, _, _ := Solve(k, f, nil, Options{Tol: 1e-30, MaxIter: 5})
	u2, st2, _ := Solve(k, f, nil, Options{Tol: 1e-30, MaxIter: 6})
	if math.Abs(vec.MaxAbsDiff(u2, u1)-st2.FinalUDiff) > 1e-12 {
		t.Fatalf("FinalUDiff %g != actual diff %g", st2.FinalUDiff, vec.MaxAbsDiff(u2, u1))
	}
}

func TestZeroRHSConvergesImmediately(t *testing.T) {
	k := model.Laplacian1D(5)
	u, st, err := Solve(k, make([]float64, 5), nil, Options{Tol: 1e-10})
	if err != nil || !st.Converged {
		t.Fatalf("zero rhs: err=%v converged=%v", err, st.Converged)
	}
	if st.Iterations != 0 {
		t.Fatalf("zero rhs took %d iterations", st.Iterations)
	}
	if vec.NormInf(u) != 0 {
		t.Fatal("zero rhs gave nonzero solution")
	}
}

func TestInitialGuessRespected(t *testing.T) {
	k := model.Laplacian1D(12)
	want := model.RandomVec(rand.New(rand.NewSource(3)), 12)
	f := k.MulVec(want)
	u, st, err := Solve(k, f, nil, Options{RelResidualTol: 1e-12, X0: want})
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 0 {
		t.Fatalf("exact initial guess still took %d iterations", st.Iterations)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatal("initial guess modified")
		}
	}
}

func TestMaxIterationsError(t *testing.T) {
	k := model.Poisson2D(10, 10)
	f := make([]float64, 100)
	f[0] = 1
	_, st, err := Solve(k, f, nil, Options{Tol: 1e-14, MaxIter: 3})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("expected ErrMaxIterations, got %v", err)
	}
	if st.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", st.Iterations)
	}
}

func TestIndefiniteMatrixDetected(t *testing.T) {
	// diag(1, -1) is indefinite: CG must report breakdown.
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	_, _, err := Solve(c.ToCSR(), []float64{0, 1}, nil, Options{Tol: 1e-10})
	if !errors.Is(err, ErrBreakdownMatrix) {
		t.Fatalf("expected ErrBreakdownMatrix, got %v", err)
	}
}

func TestIndefinitePreconditionerDetected(t *testing.T) {
	k := model.Laplacian1D(6)
	f := []float64{1, 0, 0, 0, 0, 0}
	_, _, err := Solve(k, f, negDefinite{}, Options{Tol: 1e-10})
	if !errors.Is(err, ErrBreakdownPrecond) {
		t.Fatalf("expected ErrBreakdownPrecond, got %v", err)
	}
}

func TestOptionValidation(t *testing.T) {
	k := model.Laplacian1D(4)
	f := make([]float64, 4)
	if _, _, err := Solve(k, f, nil, Options{}); err == nil {
		t.Fatal("no stopping test accepted")
	}
	if _, _, err := Solve(k, f[:2], nil, Options{Tol: 1e-8}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
	if _, _, err := Solve(k, f, nil, Options{Tol: 1e-8, X0: f[:1]}); err == nil {
		t.Fatal("wrong x0 length accepted")
	}
	rect := sparse.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, _, err := Solve(rect.ToCSR(), f[:2], nil, Options{Tol: 1e-8}); err == nil {
		t.Fatal("rectangular matrix accepted")
	}
}

func TestHistoryRecorded(t *testing.T) {
	k := model.Laplacian1D(15)
	f := make([]float64, 15)
	f[7] = 1
	_, st, err := Solve(k, f, nil, Options{Tol: 1e-10, History: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.UDiffHistory) != st.Iterations || len(st.ResidualHistory) != st.Iterations {
		t.Fatalf("history lengths %d/%d vs %d iterations",
			len(st.UDiffHistory), len(st.ResidualHistory), st.Iterations)
	}
	// Last history entries match the finals.
	if st.UDiffHistory[st.Iterations-1] != st.FinalUDiff {
		t.Fatal("UDiff history inconsistent")
	}
}

func TestInnerProductCountMatchesAlgorithm1(t *testing.T) {
	// Algorithm 1 costs two inner products per iteration (α and β) plus
	// one at setup; the final iteration skips β.
	k := model.Laplacian1D(20)
	f := make([]float64, 20)
	f[3] = 1
	_, st, err := Solve(k, f, nil, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 2*st.Iterations
	if st.Converged {
		want-- // β not computed on the converging iteration
	}
	if st.InnerProducts != want {
		t.Fatalf("inner products = %d, want %d (iters %d)", st.InnerProducts, want, st.Iterations)
	}
}

func TestLanczosTridiagonalEstimatesSpectrum(t *testing.T) {
	// For the 1-D Laplacian the spectrum is known; after enough CG steps
	// the Lanczos tridiagonal's Rayleigh range must sit inside (0, 4).
	n := 40
	k := model.Laplacian1D(n)
	f := model.RandomVec(rand.New(rand.NewSource(5)), n)
	_, st, err := Solve(k, f, nil, Options{RelResidualTol: 1e-12, MaxIter: 10 * n})
	if err != nil {
		t.Fatal(err)
	}
	diag, off := LanczosTridiagonal(st)
	if len(diag) == 0 || len(off) != len(diag)-1 {
		t.Fatalf("tridiagonal sizes: %d diag, %d offdiag", len(diag), len(off))
	}
	// The diagonal entries are Rayleigh-quotient-like and must be strictly
	// positive for an SPD operator; the trace lies within n·(0, 4).
	var trace float64
	for i, d := range diag {
		if d <= 0 {
			t.Fatalf("Lanczos diagonal %d = %g not positive", i, d)
		}
		trace += d
	}
	if trace <= 0 || trace >= 4*float64(len(diag)) {
		t.Fatalf("Lanczos trace %g outside (0, %d)", trace, 4*len(diag))
	}
	// Full eigenvalue validation (Sturm bisection) lives in internal/eigen.
}

func TestLanczosEmptyStats(t *testing.T) {
	d, o := LanczosTridiagonal(Stats{})
	if d != nil || o != nil {
		t.Fatal("empty stats should give nil tridiagonal")
	}
}

// negDefinite is a negative definite preconditioner for failure injection.
type negDefinite struct{}

func (negDefinite) Apply(z, r []float64) {
	for i := range r {
		z[i] = -r[i]
	}
}
func (negDefinite) Name() string { return "neg" }
func (negDefinite) Steps() int   { return 1 }

var _ = la.NewMatrix // reserved for future dense cross-checks
