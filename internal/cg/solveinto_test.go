package cg

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/splitting"
)

func TestSolveIntoMatchesSolve(t *testing.T) {
	k := model.Poisson2D(20, 20)
	f := make([]float64, k.Rows)
	for i := range f {
		f[i] = float64(i%5) - 2
	}
	j, err := splitting.NewJacobi(k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := precond.NewMStep(j, poly.Ones(2))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{RelResidualTol: 1e-10, MaxIter: 5000}

	want, wantSt, err := Solve(k, f, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, k.Rows)
	ws := NewWorkspace(k.Rows)
	st, err := SolveInto(u, k, f, p, opt, ws)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations != wantSt.Iterations || st.Converged != wantSt.Converged {
		t.Fatalf("stats differ: %d/%v vs %d/%v", st.Iterations, st.Converged, wantSt.Iterations, wantSt.Converged)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("iterate differs at %d: %g vs %g", i, u[i], want[i])
		}
	}

	// The workspace must be reusable immediately, including for a different
	// size.
	k2 := model.Laplacian1D(50)
	f2 := make([]float64, 50)
	f2[25] = 1
	u2 := make([]float64, 50)
	if _, err := SolveInto(u2, k2, f2, nil, Options{Tol: 1e-10}, ws); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveInto(u, k, f, p, opt, ws); err != nil {
		t.Fatal(err)
	}
}

func TestSolveIntoNilWorkspaceAndDirtyIterate(t *testing.T) {
	k := model.Laplacian1D(30)
	f := make([]float64, 30)
	f[10] = 1
	u := make([]float64, 30)
	for i := range u {
		u[i] = 1e9 // must be overwritten, not used as an initial guess
	}
	st, err := SolveInto(u, k, f, nil, Options{Tol: 1e-12}, nil)
	if err != nil || !st.Converged {
		t.Fatalf("err=%v converged=%v", err, st.Converged)
	}
	if res := residualInf(k, u, f); res > 1e-8 {
		t.Fatalf("residual %g", res)
	}
}

func TestSolveIntoValidatesIterateLength(t *testing.T) {
	k := model.Laplacian1D(10)
	f := make([]float64, 10)
	if _, err := SolveInto(make([]float64, 9), k, f, nil, Options{Tol: 1e-8}, nil); err == nil {
		t.Fatal("short iterate accepted")
	}
}

// TestSolveIntoZeroAllocations is the service's steady-state contract: with
// a warm workspace, serial kernels, and no history, a solve touches the
// heap zero times.
func TestSolveIntoZeroAllocations(t *testing.T) {
	k := model.Poisson2D(12, 12)
	f := make([]float64, k.Rows)
	for i := range f {
		f[i] = 1
	}
	j, err := splitting.NewJacobi(k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := precond.NewMStep(j, poly.Ones(3))
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, k.Rows)
	ws := NewWorkspace(k.Rows)
	opt := Options{RelResidualTol: 1e-8, MaxIter: 2000}
	// Warm the workspace (grows the recurrence-coefficient capacity).
	if _, err := SolveInto(u, k, f, p, opt, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveInto(u, k, f, p, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SolveInto allocated %g times per solve, want 0", allocs)
	}

	// VerifyResidual must stay allocation-free too (it uses the workspace).
	opt.VerifyResidual = true
	if _, err := SolveInto(u, k, f, p, opt, ws); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveInto(u, k, f, p, opt, ws); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("VerifyResidual solve allocated %g times, want 0", allocs)
	}
}

// TestSolveParallelWorkersMatchSerial exercises the Workers > 1 kernel path
// on a system above the parallel fan-out threshold and checks it reaches
// the same solution (chunked reductions reorder floating point, so exact
// equality is not expected).
func TestSolveParallelWorkersMatchSerial(t *testing.T) {
	k := model.Poisson2D(70, 70) // n = 4900 > the 4096 parallel threshold
	f := make([]float64, k.Rows)
	for i := range f {
		f[i] = math.Sin(float64(i))
	}
	opt := Options{RelResidualTol: 1e-10, MaxIter: 2000}
	serial, stSerial, err := Solve(k, f, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	optPar := opt
	optPar.Workers = 3
	par, stPar, err := Solve(k, f, nil, optPar)
	if err != nil {
		t.Fatal(err)
	}
	if !stSerial.Converged || !stPar.Converged {
		t.Fatalf("converged: serial=%v parallel=%v", stSerial.Converged, stPar.Converged)
	}
	var maxDiff float64
	for i := range serial {
		maxDiff = math.Max(maxDiff, math.Abs(serial[i]-par[i]))
	}
	if maxDiff > 1e-7 {
		t.Fatalf("parallel solution deviates by %g", maxDiff)
	}
}

// TestStatsAliasWorkspace pins the documented contract: SolveInto's
// Stats.CGAlphas alias the workspace, so the next solve on that workspace
// reuses the same backing memory.
func TestStatsAliasWorkspace(t *testing.T) {
	k := model.Laplacian1D(40)
	f := make([]float64, 40)
	f[7] = 1
	u := make([]float64, 40)
	ws := NewWorkspace(40)
	st1, err := SolveInto(u, k, f, nil, Options{Tol: 1e-10}, ws)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := SolveInto(u, k, f, nil, Options{Tol: 1e-10}, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(st1.CGAlphas) == 0 || len(st2.CGAlphas) == 0 {
		t.Fatal("no recurrence coefficients recorded")
	}
	if &st1.CGAlphas[0] != &st2.CGAlphas[0] {
		t.Fatal("workspace did not reuse the recurrence-coefficient memory")
	}
}
