// Package cg implements the preconditioned conjugate gradient method,
// Algorithm 1 of the paper, for sparse symmetric positive definite systems.
// The default stopping test is the paper's ‖u^{k+1} − u^k‖_∞ < ε; a
// relative-residual test is available as an alternative or supplement.
package cg

import (
	"context"
	"errors"
	"math"

	"repro/internal/precond"
	"repro/internal/sparse"
)

// ErrBreakdownMatrix signals (p, Kp) ≤ 0: the system matrix is not positive
// definite on the Krylov space.
var ErrBreakdownMatrix = errors.New("cg: breakdown — system matrix not positive definite")

// ErrBreakdownPrecond signals (r̂, r) ≤ 0 away from convergence: the
// preconditioner is indefinite (the paper's §2 positivity requirement on
// the eigenvalues of M_m⁻¹K is violated).
var ErrBreakdownPrecond = errors.New("cg: breakdown — preconditioner not positive definite")

// ErrMaxIterations signals the iteration limit was hit before either
// stopping test fired.
var ErrMaxIterations = errors.New("cg: maximum iterations reached without convergence")

// Options configure a solve.
type Options struct {
	// Tol is ε in the paper's test ‖u^{k+1}−u^k‖_∞ < ε. Set ≤ 0 to disable.
	Tol float64
	// RelResidualTol stops when ‖r‖₂/‖f‖₂ drops below it. Set ≤ 0 to
	// disable. At least one of the two tests must be enabled.
	RelResidualTol float64
	// MaxIter bounds the iteration count (default 10·n).
	MaxIter int
	// X0 is the initial guess (default zero).
	X0 []float64
	// History records the per-iteration ‖u diff‖_∞ and ‖r‖₂ when true.
	History bool
	// OnIteration, when non-nil, is invoked after every iteration with the
	// 1-based iteration number, ‖u^{k+1}−u^k‖_∞ and ‖r‖₂/‖f‖₂. Returning
	// false stops the solve (reported as not converged, no error).
	OnIteration func(iter int, udiff, relres float64) bool
	// VerifyResidual recomputes the true residual ‖f − K·u‖₂/‖f‖₂ at exit
	// and stores it in Stats.TrueRelRes (one extra matrix–vector product);
	// it guards against recurrence drift on long runs.
	VerifyResidual bool
	// Workers caps the goroutine fan-out of the SpMV/dot/axpy kernels.
	// ≤ 1 keeps every kernel serial (the default). The solver service sets
	// this to a per-job budget so p concurrent jobs × w workers never
	// oversubscribe GOMAXPROCS.
	Workers int
	// Ctx, when non-nil, is polled once per iteration: after it is
	// canceled the solve stops at the next iteration boundary and reports
	// the context's error (the partial iterate is still returned). This is
	// how the solver service propagates a disconnected client into a
	// long-running solve instead of leaking it.
	Ctx context.Context
	// OnColumnDone, when non-nil, is invoked by block solves the moment a
	// column leaves the active set — converged, broken down, canceled, or
	// out of iterations — with the column's original right-hand-side index
	// and its final statistics. It fires from the solving goroutine while
	// the remaining columns keep iterating, so early-converging columns
	// surface before the block finishes; the column's slice of the iterate
	// block is final and safe to read inside the callback. Every column
	// fires exactly once per solve. Scalar solves ignore it.
	OnColumnDone func(col int, stats ColumnStats)
	// Observer, when non-nil, receives one convergence sample per iteration
	// — per active column for block solves — from the solve hot loop. It is
	// the telemetry tap convergence curves are captured through; unlike
	// OnIteration it cannot stop the solve, and implementations must not
	// allocate or block (the steady-state solve path stays allocation-free
	// with an Observer attached — see the AllocsPerRun guards).
	Observer Observer
	// Interleave requests the row-interleaved panel layout for block
	// solves: the block is converted once at entry, iterated on with the
	// fused interleaved kernels, and converted back as columns finish. It
	// is honored only when both the operator and the preconditioner can
	// serve interleaved panels (sparse.InterleavedOperator and
	// precond.InterleavedApplier); otherwise the column-contiguous path
	// runs and BlockStats.Interleaved reports false. Column iterates are
	// bit-identical either way. Scalar solves ignore it.
	Interleave bool
	// Kernel selects the kernel set for the interleaved block path: "" or
	// "auto" for the startup-selected set, "portable" for the reference
	// set (kernel.Select). The column-contiguous path always uses the
	// startup-selected set.
	Kernel string
}

// Observer receives per-iteration convergence telemetry. col is the
// right-hand-side index (0 for scalar solves), iter the 1-based iteration
// count for that column, udiff the paper's stopping quantity
// ‖u^{k+1}−u^k‖_∞ and relres the relative residual ‖r‖₂/‖f‖₂.
// obs.ConvergenceLog is the standard implementation; the interface lives
// here so the solver kernels depend on nothing above them.
type Observer interface {
	ObserveIteration(col, iter int, udiff, relres float64)
}

// Stats reports what a solve did.
type Stats struct {
	Iterations    int
	Converged     bool
	FinalUDiff    float64 // last ‖u^{k+1}−u^k‖_∞
	FinalRelRes   float64 // last ‖r‖₂/‖f‖₂
	InnerProducts int     // number of (·,·) evaluations, the paper's bottleneck metric
	PrecondApps   int
	MatVecs       int

	// CGAlphas and CGBetas are the recurrence coefficients; the Lanczos
	// tridiagonal matrix assembled from them drives the eigenvalue
	// estimates in internal/eigen.
	CGAlphas, CGBetas []float64

	// UDiffHistory and ResidualHistory are filled when Options.History.
	UDiffHistory    []float64
	ResidualHistory []float64

	// TrueRelRes is the recomputed ‖f − K·u‖₂/‖f‖₂ when
	// Options.VerifyResidual is set (−1 otherwise).
	TrueRelRes float64
	// Stopped reports that Options.OnIteration requested an early stop.
	Stopped bool
}

// Solve runs preconditioned CG on K·u = f with preconditioner M. K is any
// sparse.Operator backend (CSR, DIA, …); the solver only ever applies it.
// It returns the iterate, statistics, and an error for breakdowns or
// hitting MaxIter (the partial result is still returned). Each call
// allocates its scratch; allocation-sensitive callers use SolveInto with a
// reused Workspace.
func Solve(k sparse.Operator, f []float64, m precond.Preconditioner, opt Options) ([]float64, Stats, error) {
	rows, _ := k.Dims()
	u := make([]float64, rows)
	st, err := SolveInto(u, k, f, m, opt, nil)
	return u, st, err
}

// LanczosTridiagonal reconstructs the Lanczos tridiagonal matrix T from the
// CG coefficients: T has diagonal d_k = 1/α_k + β_{k−1}/α_{k−1} (β_{−1}=0)
// and off-diagonal e_k = √β_k / α_k. Its eigenvalues approximate the
// extreme eigenvalues of M⁻¹K, giving the condition numbers reported by
// the experiments.
func LanczosTridiagonal(st Stats) (diag, offdiag []float64) {
	na := len(st.CGAlphas)
	if na == 0 {
		return nil, nil
	}
	diag = make([]float64, na)
	offdiag = make([]float64, 0, na-1)
	for k := 0; k < na; k++ {
		diag[k] = 1 / st.CGAlphas[k]
		if k > 0 {
			diag[k] += st.CGBetas[k-1] / st.CGAlphas[k-1]
		}
		if k < len(st.CGBetas) && k+1 < na {
			offdiag = append(offdiag, math.Sqrt(st.CGBetas[k])/st.CGAlphas[k])
		}
	}
	return diag, offdiag
}
