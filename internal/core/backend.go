package core

import (
	"errors"

	"repro/internal/plan"
	"repro/internal/sparse"
)

// Backend selects the matrix storage the CG matvec path runs on. The type
// (and its auto-selection heuristics) live in internal/plan, where the
// planner consumes the structure probes; the alias keeps core's public
// surface unchanged.
type Backend = plan.Backend

const (
	// BackendAuto (the zero value) probes the matrix structure and picks
	// the backend itself; see ChooseBackend.
	BackendAuto = plan.BackendAuto
	// BackendCSR forces compressed-sparse-row storage.
	BackendCSR = plan.BackendCSR
	// BackendDIA forces diagonal (Madsen–Rodrigue–Karush) storage, the
	// paper's CYBER 203/205 layout. Requires a square matrix.
	BackendDIA = plan.BackendDIA
	// BackendDecomposed runs the domain-decomposed parallel path (the
	// Finite Element Machine executed for real). It needs the mesh behind
	// the matrix, so only the engine's plate-backed jobs can run it;
	// core.Solve on a bare system rejects it.
	BackendDecomposed = plan.BackendDecomposed
)

// ParseBackend resolves a backend name ("", "auto", "csr", "dia",
// "decomposed"); the empty string means Auto.
func ParseBackend(name string) (Backend, error) { return plan.ParseBackend(name) }

// ChooseBackend resolves a backend policy against a concrete matrix: CSR
// and DIA pass through, and Auto probes the structure (see plan.Probe) and
// picks DIA exactly when diagonal storage is in the banded regime it wins
// in. Callers that re-resolve the same matrix should keep a plan.Probe
// instead of rescanning.
func ChooseBackend(k *sparse.CSR, policy Backend) Backend {
	if policy != BackendAuto {
		return policy
	}
	return plan.NewProbe(k).Choose(policy)
}

// operatorFor materializes the operator a resolved backend names. The DIA
// conversion is performed here (callers that solve the same matrix
// repeatedly — the service cache — convert once and keep the result).
func operatorFor(k *sparse.CSR, backend Backend) (sparse.Operator, Backend, error) {
	switch backend {
	case BackendDIA:
		d, err := sparse.NewDIAFromCSR(k)
		if err != nil {
			return nil, BackendDIA, err
		}
		return d, BackendDIA, nil
	case BackendDecomposed:
		// The decomposed backend is not a storage format for a single
		// operator — it needs the mesh to partition. The engine routes
		// plate-backed jobs to it before reaching here.
		return nil, BackendDecomposed, errors.New("core: decomposed backend requires a mesh-backed problem (plate); solve it through the engine")
	default:
		return k, BackendCSR, nil
	}
}
