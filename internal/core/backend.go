package core

import (
	"fmt"

	"repro/internal/sparse"
)

// Backend selects the matrix storage the CG matvec path runs on. The
// preconditioner always keeps the CSR form (the SSOR sweeps need row
// structure); the backend only decides how K itself is applied.
type Backend int

const (
	// BackendAuto (the zero value) probes the matrix structure and picks
	// the backend itself; see ChooseBackend.
	BackendAuto Backend = iota
	// BackendCSR forces compressed-sparse-row storage.
	BackendCSR
	// BackendDIA forces diagonal (Madsen–Rodrigue–Karush) storage, the
	// paper's CYBER 203/205 layout. Requires a square matrix.
	BackendDIA
)

func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendCSR:
		return "csr"
	case BackendDIA:
		return "dia"
	}
	return "?"
}

// ParseBackend resolves a backend name ("", "auto", "csr", "dia"); the
// empty string means Auto.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "auto":
		return BackendAuto, nil
	case "csr":
		return BackendCSR, nil
	case "dia":
		return BackendDIA, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (want auto, csr or dia)", name)
}

// Auto-selection thresholds. Diagonal storage performs numDiags·n
// multiply-adds where CSR performs NNZ, so its padding overhead is the
// reciprocal of the DIA fill ratio NNZ/(numDiags·n); in exchange every
// operand is a long contiguous diagonal — the regular access pattern the
// paper's CYBER layout is built on. DIA pays off when the matrix occupies
// a bounded, size-independent family of diagonals (banded multicolor
// systems, eq. 3.2 of the paper: the 6-color plate stays at ~47 diagonals
// at every size, simple 5-point stencils at 5), and loses badly on
// scattered fill, where the diagonal count grows with n and the fill
// ratio collapses.
const (
	// autoMaxDiags bounds the stored-diagonal count Auto accepts: above
	// it, even a moderate fill ratio means streaming many mostly-padding
	// vectors.
	autoMaxDiags = 128
	// autoMinFill is the lowest DIA fill ratio Auto accepts — at most
	// 1/autoMinFill padded flops per CSR flop. The colored plate sits
	// near 0.25, dense-diagonal stencils near 1, scattered fill near 0.
	autoMinFill = 1.0 / 6
)

// ChooseBackend resolves a backend policy against a concrete matrix: CSR
// and DIA pass through (DIA only if convertible), and Auto picks DIA
// exactly when the structure probes say diagonal storage is the banded
// regime it wins in — few distinct diagonals and a bounded padding
// overhead — and CSR otherwise.
func ChooseBackend(k *sparse.CSR, policy Backend) Backend {
	switch policy {
	case BackendCSR, BackendDIA:
		return policy
	}
	if k.Rows != k.Cols || k.NNZ() == 0 {
		return BackendCSR
	}
	// Every row's entries sit on distinct diagonals, so MaxRowNNZ lower-
	// bounds the diagonal count — a cheap early out before the full scan.
	if k.MaxRowNNZ() > autoMaxDiags {
		return BackendCSR
	}
	nd, _ := k.DiagStats()
	if nd == 0 || nd > autoMaxDiags {
		return BackendCSR
	}
	// The quantity CSR.DIAFillRatio reports, computed from the DiagStats
	// scan above rather than by calling the helper (which would rescan).
	fill := float64(k.NNZ()) / (float64(nd) * float64(k.Rows))
	if fill < autoMinFill {
		return BackendCSR
	}
	return BackendDIA
}

// operatorFor materializes the operator the resolved backend names. The
// DIA conversion is performed here (callers that solve the same matrix
// repeatedly — the service cache — convert once and keep the result).
func operatorFor(k *sparse.CSR, policy Backend) (sparse.Operator, Backend, error) {
	switch ChooseBackend(k, policy) {
	case BackendDIA:
		d, err := sparse.NewDIAFromCSR(k)
		if err != nil {
			return nil, BackendDIA, err
		}
		return d, BackendDIA, nil
	default:
		return k, BackendCSR, nil
	}
}
