package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/sparse"
)

// randBandedMulticolor builds a random SPD system with the paper's eq. (3.2)
// structure: groups contiguous blocks of size sz, stores couplings only on
// diagonal offsets with |d| >= sz (so every within-group entry is on the
// main diagonal — the multicolor decoupling the SSOR sweeps need), and
// makes the matrix symmetric and strictly diagonally dominant.
func randBandedMulticolor(rng *rand.Rand, groups, sz int) System {
	n := groups * sz
	// A handful of banded offsets, all at least one group wide.
	offsets := []int{sz, sz + 1, 2 * sz}
	coo := sparse.NewCOO(n, n)
	rowAbs := make([]float64, n)
	for _, d := range offsets {
		for i := 0; i+d < n; i++ {
			if rng.Float64() < 0.2 {
				continue // random gaps: diagonals are not fully dense
			}
			v := rng.Float64()*2 - 1
			coo.Add(i, i+d, v)
			coo.Add(i+d, i, v)
			rowAbs[i] += math.Abs(v)
			rowAbs[i+d] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, rowAbs[i]+1)
	}
	start := make([]int, groups+1)
	for g := range start {
		start[g] = g * sz
	}
	f := make([]float64, n)
	for i := range f {
		f[i] = rng.Float64()*2 - 1
	}
	return System{K: coo.ToCSR(), F: f, GroupStart: start}
}

// randScattered builds a random SPD matrix with scattered fill: entry
// positions are uniform, so the occupied-diagonal count grows with n and
// diagonal storage would be nearly all padding.
func randScattered(rng *rand.Rand, n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n)
	rowAbs := make([]float64, n)
	for k := 0; k < 6*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := rng.Float64()*2 - 1
		coo.Add(i, j, v)
		coo.Add(j, i, v)
		rowAbs[i] += math.Abs(v)
		rowAbs[j] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, rowAbs[i]+1)
	}
	return coo.ToCSR()
}

func TestChooseBackendAuto(t *testing.T) {
	sys, _ := plateSystem(t, 12, 12)
	if got := ChooseBackend(sys.K, BackendAuto); got != BackendDIA {
		t.Fatalf("Auto on banded multicolor plate chose %s, want dia", got)
	}
	if got := ChooseBackend(model.Poisson2D(30, 30), BackendAuto); got != BackendDIA {
		t.Fatalf("Auto on 5-point Poisson stencil chose %s, want dia", got)
	}
	rng := rand.New(rand.NewSource(3))
	if got := ChooseBackend(randScattered(rng, 400), BackendAuto); got != BackendCSR {
		t.Fatalf("Auto on scattered fill chose %s, want csr", got)
	}
	mc := randBandedMulticolor(rng, 6, 40)
	if got := ChooseBackend(mc.K, BackendAuto); got != BackendDIA {
		t.Fatalf("Auto on random banded multicolor system chose %s, want dia", got)
	}
	// Forced policies pass through untouched, even against the structure.
	if got := ChooseBackend(sys.K, BackendCSR); got != BackendCSR {
		t.Fatalf("forced csr resolved to %s", got)
	}
	if got := ChooseBackend(randScattered(rng, 100), BackendDIA); got != BackendDIA {
		t.Fatalf("forced dia resolved to %s", got)
	}
	// Auto never picks DIA for a non-square matrix (unconvertible).
	rect := sparse.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if got := ChooseBackend(rect.ToCSR(), BackendAuto); got != BackendCSR {
		t.Fatalf("Auto on a non-square matrix chose %s, want csr", got)
	}
}

func TestParseBackend(t *testing.T) {
	for name, want := range map[string]Backend{
		"": BackendAuto, "auto": BackendAuto, "csr": BackendCSR, "dia": BackendDIA,
	} {
		got, err := ParseBackend(name)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBackend("ellpack"); err == nil {
		t.Fatal("ParseBackend accepted an unknown backend")
	}
}

// backendsAgree solves sys once per forced backend and checks both
// converge to the same solution. The two backends traverse the matrix in
// different orders (rows vs diagonals), so iterates differ by rounding —
// ulps per iteration — and the comparison is a tight relative tolerance,
// not bitwise equality.
func backendsAgree(t *testing.T, sys System, cfg Config, label string) {
	t.Helper()
	cfg.Tol = 1e-10
	cfg.MaxIter = 20000
	cfg.Backend = BackendCSR
	csr, err := Solve(sys, cfg)
	if err != nil {
		t.Fatalf("%s: csr solve: %v", label, err)
	}
	cfg.Backend = BackendDIA
	dia, err := Solve(sys, cfg)
	if err != nil {
		t.Fatalf("%s: dia solve: %v", label, err)
	}
	if csr.Backend != "csr" || dia.Backend != "dia" {
		t.Fatalf("%s: backends reported %q/%q", label, csr.Backend, dia.Backend)
	}
	if !csr.Stats.Converged || !dia.Stats.Converged {
		t.Fatalf("%s: converged csr=%v dia=%v", label, csr.Stats.Converged, dia.Stats.Converged)
	}
	if d := csr.Stats.Iterations - dia.Stats.Iterations; d < -2 || d > 2 {
		t.Fatalf("%s: iteration counts diverged: csr %d vs dia %d",
			label, csr.Stats.Iterations, dia.Stats.Iterations)
	}
	for i := range csr.U {
		if diff := math.Abs(csr.U[i] - dia.U[i]); diff > 1e-8*(1+math.Abs(csr.U[i])) {
			t.Fatalf("%s: solutions deviate at %d: %g vs %g", label, i, csr.U[i], dia.U[i])
		}
	}
}

func TestBackendsAgreeOnPlate(t *testing.T) {
	sys, _ := plateSystem(t, 10, 10)
	backendsAgree(t, sys, Config{M: 3, Splitting: SSORMulticolor, Coeffs: LeastSquaresCoeffs}, "plate m=3 ls")
	backendsAgree(t, sys, Config{M: 0}, "plate plain cg")
}

func TestBackendsAgreeOnRandomBandedMulticolor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		groups := 3 + rng.Intn(4)
		sz := 10 + rng.Intn(30)
		sys := randBandedMulticolor(rng, groups, sz)
		label := fmt.Sprintf("trial %d (%d groups × %d)", trial, groups, sz)
		backendsAgree(t, sys, Config{M: 2, Splitting: SSORMulticolor}, label)
	}
}

func TestBatchBackendsAgree(t *testing.T) {
	sys, _ := plateSystem(t, 8, 8)
	fs := make([][]float64, 4)
	for j := range fs {
		fs[j] = make([]float64, len(sys.F))
		for i, v := range sys.F {
			fs[j][i] = float64(j+1) * v
		}
	}
	cfg := Config{M: 2, Splitting: SSORMulticolor, Tol: 1e-10, MaxIter: 20000}
	cfg.Backend = BackendCSR
	csr, err := SolveBatch(sys, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = BackendDIA
	dia, err := SolveBatch(sys, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range csr {
		if csr[j].Backend != "csr" || dia[j].Backend != "dia" {
			t.Fatalf("rhs %d: backends reported %q/%q", j, csr[j].Backend, dia[j].Backend)
		}
		for i := range csr[j].U {
			if diff := math.Abs(csr[j].U[i] - dia[j].U[i]); diff > 1e-8*(1+math.Abs(csr[j].U[i])) {
				t.Fatalf("rhs %d: solutions deviate at %d", j, i)
			}
		}
	}
}

func TestSolveReportsAutoBackend(t *testing.T) {
	sys, _ := plateSystem(t, 8, 8)
	res, err := Solve(sys, Config{M: 2, Tol: 1e-8, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "dia" {
		t.Fatalf("auto-resolved backend = %q, want dia on the banded plate", res.Backend)
	}
}

func TestSolveDIAOnFEMDomain(t *testing.T) {
	// A non-plate multicolor FEM problem (an irregular L-shaped domain)
	// exercises the same backend path end to end.
	dom, err := fem.NewDomainProblem(mesh.LShapedDomain(mesh.NewGrid(9, 9)), mesh.LeftEdgeClamped, fem.Material{})
	if err != nil {
		t.Fatal(err)
	}
	sys := System{K: dom.KColored, F: dom.ColoredRHS(), GroupStart: dom.GroupStart}
	backendsAgree(t, sys, Config{M: 2, Splitting: SSORMulticolor}, "L-domain")
}
