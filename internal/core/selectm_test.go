package core

import "testing"

func TestSelectMGrowsWithAOverB(t *testing.T) {
	// The paper's mechanism: cheap preconditioner steps (large A/B) justify
	// deeper preconditioning.
	sys, _ := plateSystem(t, 12, 12)
	cfg := Config{Coeffs: LeastSquaresCoeffs, Tol: 1e-7, MaxIter: 10000}
	cheap, err := SelectM(sys, cfg, 8.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	costly, err := SelectM(sys, cfg, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.M < costly.M {
		t.Fatalf("cheap steps chose m=%d < costly m=%d", cheap.M, costly.M)
	}
	if cheap.M < 2 {
		t.Fatalf("A/B=8 should justify m >= 2, chose %d", cheap.M)
	}
}

func TestSelectMStopsAtMaxM(t *testing.T) {
	sys, _ := plateSystem(t, 10, 10)
	cfg := Config{Coeffs: LeastSquaresCoeffs, Tol: 1e-7, MaxIter: 10000}
	sel, err := SelectM(sys, cfg, 100.0, 3) // absurdly cheap steps
	if err != nil {
		t.Fatal(err)
	}
	if sel.M != 3 {
		t.Fatalf("expected cap at maxM=3, chose %d", sel.M)
	}
	if len(sel.Iterations) != 3 {
		t.Fatalf("probed %d values, want 3", len(sel.Iterations))
	}
}

func TestSelectMIterationsRecorded(t *testing.T) {
	sys, _ := plateSystem(t, 10, 10)
	sel, err := SelectM(sys, Config{Coeffs: LeastSquaresCoeffs, Tol: 1e-7, MaxIter: 10000}, 2.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for m := 1; m <= sel.M; m++ {
		n, ok := sel.Iterations[m]
		if !ok {
			t.Fatalf("missing probe for m=%d", m)
		}
		if n >= prev {
			t.Fatalf("iterations not decreasing along the accepted path at m=%d", m)
		}
		prev = n
	}
}

func TestSelectMValidation(t *testing.T) {
	sys, _ := plateSystem(t, 6, 6)
	if _, err := SelectM(sys, Config{Tol: 1e-6}, 0, 4); err == nil {
		t.Fatal("A/B=0 accepted")
	}
	if _, err := SelectM(sys, Config{Tol: 1e-6}, 1, 0); err == nil {
		t.Fatal("maxM=0 accepted")
	}
}
