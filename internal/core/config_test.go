package core

import (
	"strings"
	"testing"

	"repro/internal/fem"
)

// TestBuildSplittingRejectsBadOmega pins the ω guard: anything outside
// (0, 2) — for every splitting kind, since SSOR diverges there — fails
// fast with a clear message instead of silently producing an indefinite
// preconditioner. ω = 0 means "unset" and keeps the paper's default of 1.
func TestBuildSplittingRejectsBadOmega(t *testing.T) {
	sys, _, err := PlateSystem(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SplittingKind{SSORMulticolor, SSORNatural, JacobiSplitting} {
		for _, omega := range []float64{-1, -0.5, 2, 2.5, 100} {
			_, err := BuildSplitting(sys, Config{Splitting: kind, Omega: omega})
			if err == nil {
				t.Fatalf("%s with ω = %g accepted", kind, omega)
			}
			if !strings.Contains(err.Error(), "(0, 2)") {
				t.Fatalf("ω error not descriptive: %v", err)
			}
		}
		for _, omega := range []float64{0, 1, 0.5, 1.9} {
			if _, err := BuildSplitting(sys, Config{Splitting: kind, Omega: omega}); err != nil {
				t.Fatalf("%s with ω = %g rejected: %v", kind, omega, err)
			}
		}
	}

	// Solve surfaces the same rejection end to end.
	if _, err := Solve(sys, Config{M: 2, Omega: 3}); err == nil {
		t.Fatal("Solve accepted ω = 3")
	}
}

// TestSolveWorkersMatchesSerial checks the Workers knob changes only the
// execution strategy, not the method: iteration counts agree and solutions
// coincide to rounding.
func TestSolveWorkersMatchesSerial(t *testing.T) {
	sys, _, err := PlateSystem(10, 10, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Solve(sys, Config{M: 2, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(sys, Config{M: 2, Tol: 1e-8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Stats.Converged || !par.Stats.Converged {
		t.Fatal("not converged")
	}
	// n < the parallel threshold here, so the kernels fall back to serial
	// and the runs must be bitwise identical — the knob is safe by default.
	if serial.Stats.Iterations != par.Stats.Iterations {
		t.Fatalf("iterations %d vs %d", serial.Stats.Iterations, par.Stats.Iterations)
	}
	for i := range serial.U {
		if serial.U[i] != par.U[i] {
			t.Fatalf("solution differs at %d", i)
		}
	}
}
