package core

import (
	"fmt"
)

// MSelection reports the automatic step-count choice driven by the paper's
// inequality (4.2).
type MSelection struct {
	// M is the chosen step count.
	M int
	// Iterations[m] records N_m for each probed m (index 1..).
	Iterations map[int]int
	// AOverB is the cost ratio the decision used.
	AOverB float64
}

// SelectM chooses the number of preconditioner steps by the paper's §4
// rule: starting from m = 1, take m+1 steps instead of m whenever
//
//	N_{m+1}/N_m < (A/B + m)/(A/B + m + 1),
//
// where A is the machine cost of one outer CG iteration and B the cost of
// one preconditioner step (callers obtain A/B from their machine model —
// e.g. vectorsim's CostBreakdown — or from wall-clock calibration).
// Probing stops at the first non-beneficial step or at maxM. The supplied
// cfg selects splitting/coefficients; its M field is ignored.
func SelectM(sys System, cfg Config, aOverB float64, maxM int) (MSelection, error) {
	if aOverB <= 0 {
		return MSelection{}, fmt.Errorf("core: SelectM needs a positive A/B ratio, got %g", aOverB)
	}
	if maxM < 1 {
		return MSelection{}, fmt.Errorf("core: SelectM needs maxM >= 1, got %d", maxM)
	}
	sel := MSelection{M: 1, Iterations: map[int]int{}, AOverB: aOverB}
	iters := func(m int) (int, error) {
		c := cfg
		c.M = m
		if m == 1 {
			// m=1 parametrization is a scalar multiple — run unparametrized.
			c.Coeffs = Unparametrized
		}
		res, err := Solve(sys, c)
		if err != nil {
			return 0, fmt.Errorf("core: SelectM probe m=%d: %w", m, err)
		}
		return res.Stats.Iterations, nil
	}
	nm, err := iters(1)
	if err != nil {
		return MSelection{}, err
	}
	sel.Iterations[1] = nm
	for m := 1; m < maxM; m++ {
		next, err := iters(m + 1)
		if err != nil {
			return MSelection{}, err
		}
		sel.Iterations[m+1] = next
		ratio := float64(next) / float64(nm)
		threshold := (aOverB + float64(m)) / (aOverB + float64(m) + 1)
		if ratio >= threshold {
			return sel, nil
		}
		sel.M = m + 1
		nm = next
	}
	return sel, nil
}
