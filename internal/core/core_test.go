package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/model"
	"repro/internal/vec"
)

func plateSystem(t *testing.T, rows, cols int) (System, *fem.Plate) {
	t.Helper()
	sys, plate, err := PlateSystem(rows, cols, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, plate
}

func TestSolvePlainCG(t *testing.T) {
	sys, _ := plateSystem(t, 6, 6)
	res, err := Solve(sys, Config{M: 0, Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("CG did not converge")
	}
	if res.Precond != "none" {
		t.Fatalf("precond = %q", res.Precond)
	}
}

func TestSolveAllVariantsAgree(t *testing.T) {
	sys, _ := plateSystem(t, 6, 6)
	ref, err := Solve(sys, Config{M: 0, RelResidualTol: 1e-12, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{M: 1, Splitting: SSORMulticolor},
		{M: 3, Splitting: SSORMulticolor},
		{M: 3, Splitting: SSORMulticolor, Coeffs: LeastSquaresCoeffs},
		{M: 3, Splitting: SSORMulticolor, Coeffs: ChebyshevCoeffs},
		{M: 2, Splitting: SSORNatural},
		{M: 1, Splitting: JacobiSplitting},
		{M: 3, Splitting: JacobiSplitting, Coeffs: ChebyshevCoeffs},
	}
	for _, cfg := range cfgs {
		cfg.RelResidualTol = 1e-12
		cfg.MaxIter = 10000
		res, err := Solve(sys, cfg)
		if err != nil {
			t.Fatalf("%v/%v m=%d: %v", cfg.Splitting, cfg.Coeffs, cfg.M, err)
		}
		for i := range res.U {
			if math.Abs(res.U[i]-ref.U[i]) > 1e-6*(1+math.Abs(ref.U[i])) {
				t.Fatalf("%v/%v m=%d: solution deviates at %d", cfg.Splitting, cfg.Coeffs, cfg.M, i)
			}
		}
	}
}

func TestParametrizedBeatsUnparametrized(t *testing.T) {
	// Paper observation (1) of Table 2: the parametrized preconditioner
	// takes fewer iterations than the unparametrized one at the same m.
	sys, _ := plateSystem(t, 10, 10)
	for _, m := range []int{3, 4, 5} {
		plain, err := Solve(sys, Config{M: m, Tol: 1e-8, MaxIter: 5000})
		if err != nil {
			t.Fatal(err)
		}
		param, err := Solve(sys, Config{M: m, Coeffs: LeastSquaresCoeffs, Tol: 1e-8, MaxIter: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if param.Stats.Iterations > plain.Stats.Iterations {
			t.Fatalf("m=%d: parametrized %d iters > unparametrized %d",
				m, param.Stats.Iterations, plain.Stats.Iterations)
		}
	}
}

func TestIterationsDecreaseWithM(t *testing.T) {
	sys, _ := plateSystem(t, 10, 10)
	prev := 1 << 30
	for _, m := range []int{0, 1, 2, 4, 6} {
		res, err := Solve(sys, Config{M: m, Coeffs: LeastSquaresCoeffs, Tol: 1e-8, MaxIter: 5000})
		if m == 0 {
			res, err = Solve(sys, Config{M: 0, Tol: 1e-8, MaxIter: 5000})
		}
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if res.Stats.Iterations >= prev {
			t.Fatalf("m=%d: %d iterations did not improve on %d", m, res.Stats.Iterations, prev)
		}
		prev = res.Stats.Iterations
	}
}

func TestSolutionPhysicallySensible(t *testing.T) {
	// A plate pulled rightward from a clamped left edge stretches: every
	// u-displacement is nonnegative and grows toward the loaded edge.
	sys, plate := plateSystem(t, 6, 6)
	res, err := Solve(sys, Config{M: 2, Coeffs: LeastSquaresCoeffs, RelResidualTol: 1e-12, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	u := plate.UncolorSolution(res.U)
	for k, id := range plate.Free {
		if u[2*k] < -1e-9 {
			t.Fatalf("node %d pulled left: u = %g", id, u[2*k])
		}
	}
	// Mean u on the right edge exceeds mean u on the leftmost free column.
	meanAt := func(col int) float64 {
		var s float64
		var c int
		for k, id := range plate.Free {
			_, j := plate.Grid.NodeRC(id)
			if j == col {
				s += u[2*k]
				c++
			}
		}
		return s / float64(c)
	}
	if meanAt(plate.Grid.Cols-1) <= meanAt(1) {
		t.Fatal("displacement does not grow toward the loaded edge")
	}
}

func TestBuildPreconditionerErrors(t *testing.T) {
	sys, _ := plateSystem(t, 4, 4)
	noGroups := System{K: sys.K, F: sys.F}
	if _, _, _, err := BuildPreconditioner(noGroups, Config{M: 1, Splitting: SSORMulticolor}); err == nil {
		t.Fatal("multicolor without groups accepted")
	}
	if _, _, _, err := BuildPreconditioner(sys, Config{M: -1}); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, _, _, err := BuildPreconditioner(sys, Config{M: 1, Splitting: SplittingKind(99)}); err == nil {
		t.Fatal("unknown splitting accepted")
	}
	if _, _, _, err := BuildPreconditioner(sys, Config{M: 1, Coeffs: CoeffKind(99)}); err == nil {
		t.Fatal("unknown coefficient kind accepted")
	}
	bad := eigen.Interval{Lo: 1, Hi: 0.5}
	if _, _, _, err := BuildPreconditioner(sys, Config{M: 2, Coeffs: LeastSquaresCoeffs, Interval: &bad}); err == nil {
		t.Fatal("invalid interval accepted")
	}
}

func TestSolveMalformedSystem(t *testing.T) {
	if _, err := Solve(System{}, Config{M: 0, Tol: 1e-6}); err == nil {
		t.Fatal("nil system accepted")
	}
	k := model.Laplacian1D(4)
	if _, err := Solve(System{K: k, F: make([]float64, 3)}, Config{M: 0, Tol: 1e-6}); err == nil {
		t.Fatal("mismatched rhs accepted")
	}
}

func TestGeneralMatrixViaJacobiAndNaturalSSOR(t *testing.T) {
	// core must serve matrices that are not plate systems.
	k := model.Poisson2D(12, 12)
	f := make([]float64, k.Rows)
	f[50] = 1
	sys := System{K: k, F: f}
	for _, cfg := range []Config{
		{M: 1, Splitting: JacobiSplitting},
		{M: 2, Splitting: SSORNatural, Omega: 1.2},
		{M: 3, Splitting: JacobiSplitting, Coeffs: ChebyshevCoeffs},
	} {
		cfg.RelResidualTol = 1e-10
		cfg.MaxIter = 5000
		res, err := Solve(sys, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		r := k.MulVec(res.U)
		vec.Sub(r, f, r)
		if vec.NormInf(r) > 1e-7 {
			t.Fatalf("%+v: residual %g", cfg, vec.NormInf(r))
		}
	}
}

func TestKindStrings(t *testing.T) {
	if SSORMulticolor.String() != "ssor-multicolor" || JacobiSplitting.String() != "jacobi" {
		t.Fatal("splitting names")
	}
	if SplittingKind(9).String() != "?" || CoeffKind(9).String() != "?" {
		t.Fatal("unknown kind names")
	}
	if LeastSquaresCoeffs.String() != "least-squares" || ChebyshevCoeffs.String() != "chebyshev" || Unparametrized.String() != "ones" {
		t.Fatal("coefficient names")
	}
}

func TestSolveReportsPrecondName(t *testing.T) {
	sys, _ := plateSystem(t, 5, 5)
	res, err := Solve(sys, Config{M: 2, Coeffs: LeastSquaresCoeffs, Tol: 1e-7, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Precond, "2-step") || !strings.Contains(res.Precond, "least-squares") {
		t.Fatalf("precond name %q", res.Precond)
	}
	if res.Alphas.M() != 2 {
		t.Fatalf("alphas m = %d", res.Alphas.M())
	}
	if res.Interval.Lo <= 0 {
		t.Fatal("interval not reported")
	}
}

func TestWeightedLSCoeffsSolve(t *testing.T) {
	sys, _ := plateSystem(t, 10, 10)
	res, err := Solve(sys, Config{M: 3, Coeffs: WeightedLSCoeffs, Tol: 1e-7, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("weighted LS did not converge")
	}
	plain, err := Solve(sys, Config{M: 3, Tol: 1e-7, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations > plain.Stats.Iterations {
		t.Fatalf("weighted LS (%d iters) worse than unparametrized (%d)",
			res.Stats.Iterations, plain.Stats.Iterations)
	}
	if WeightedLSCoeffs.String() != "least-squares(w=λ)" {
		t.Fatalf("name %q", WeightedLSCoeffs.String())
	}
}

// Convergence theory: PCG iterations to fixed relative residual are
// bounded by ~ ½·√κ·ln(2/ε). Verify the measured counts respect it for
// several preconditioners on the plate problem.
func TestIterationsRespectSqrtKappaBound(t *testing.T) {
	sys, _ := plateSystem(t, 12, 12)
	eps := 1e-8
	for _, m := range []int{0, 1, 3} {
		res, err := Solve(sys, Config{M: m, RelResidualTol: eps, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		_, _, kappa, err := eigen.CondFromCGStats(res.Stats)
		if err != nil {
			t.Fatal(err)
		}
		// Energy-norm theory with slack for the residual-norm test.
		bound := math.Sqrt(kappa)*math.Log(2/eps)/2 + 10
		if float64(res.Stats.Iterations) > bound {
			t.Fatalf("m=%d: %d iterations exceed √κ bound %.0f (κ=%.0f)",
				m, res.Stats.Iterations, bound, kappa)
		}
	}
}
