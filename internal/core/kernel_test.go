package core

import (
	"strings"
	"testing"

	"repro/internal/kernel"
)

func batchRHS(sys System, s int) [][]float64 {
	fs := make([][]float64, s)
	for j := range fs {
		fs[j] = make([]float64, len(sys.F))
		for i, v := range sys.F {
			fs[j][i] = float64(j+1) * v
		}
	}
	return fs
}

// TestSolveRejectsUnknownKernel: both entry points validate the kernel
// policy before doing any work.
func TestSolveRejectsUnknownKernel(t *testing.T) {
	sys, _ := plateSystem(t, 6, 6)
	cfg := Config{M: 2, Splitting: SSORMulticolor, Kernel: "fast"}
	if _, err := Solve(sys, cfg); err == nil || !strings.Contains(err.Error(), "kernel policy") {
		t.Fatalf("Solve: want kernel-policy error, got %v", err)
	}
	if _, err := SolveBatch(sys, batchRHS(sys, 2), cfg); err == nil || !strings.Contains(err.Error(), "kernel policy") {
		t.Fatalf("SolveBatch: want kernel-policy error, got %v", err)
	}
}

// TestSolveBatchReportsInterleaved: a wide batch over the multicolor SSOR
// preconditioner runs the row-interleaved panel layout and says so, while a
// scalar solve stays columnar and reports the startup kernel set.
func TestSolveBatchReportsInterleaved(t *testing.T) {
	sys, _ := plateSystem(t, 8, 8)
	cfg := Config{M: 2, Splitting: SSORMulticolor, Tol: 1e-8, MaxIter: 10000}
	out, err := SolveBatch(sys, batchRHS(sys, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range out {
		if !r.Interleaved {
			t.Fatalf("rhs %d: wide batch did not interleave", j)
		}
		if r.Kernel != kernel.Active().Name {
			t.Fatalf("rhs %d: kernel %q, want %q", j, r.Kernel, kernel.Active().Name)
		}
	}
	res, err := Solve(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interleaved {
		t.Fatal("scalar solve claims the interleaved layout")
	}
	if res.Kernel != kernel.Active().Name {
		t.Fatalf("scalar solve kernel %q, want %q", res.Kernel, kernel.Active().Name)
	}
}

// TestSolveBatchPortableMatchesAuto: forcing the portable kernel set changes
// nothing observable — iterates bit-identical, iteration counts equal — and
// the results carry the set's name.
func TestSolveBatchPortableMatchesAuto(t *testing.T) {
	sys, _ := plateSystem(t, 8, 8)
	fs := batchRHS(sys, 8)
	cfg := Config{M: 2, Splitting: SSORMulticolor, Tol: 1e-10, MaxIter: 20000}
	auto, err := SolveBatch(sys, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Kernel = "portable"
	port, err := SolveBatch(sys, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range auto {
		if port[j].Kernel != "portable" {
			t.Fatalf("rhs %d: portable solve reports kernel %q", j, port[j].Kernel)
		}
		if auto[j].Stats.Iterations != port[j].Stats.Iterations {
			t.Fatalf("rhs %d: iterations differ across kernel sets: %d vs %d",
				j, auto[j].Stats.Iterations, port[j].Stats.Iterations)
		}
		for i := range auto[j].U {
			if auto[j].U[i] != port[j].U[i] {
				t.Fatalf("rhs %d: iterates differ at %d across kernel sets", j, i)
			}
		}
	}
}
