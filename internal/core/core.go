// Package core composes the paper's pieces — a splitting, polynomial
// coefficients, and preconditioned conjugate gradient — into the m-step
// PCG solver that is the paper's contribution. It owns the policy decisions
// (which splitting, which coefficient criterion, which spectral interval)
// and delegates the mechanics to internal/splitting, internal/poly,
// internal/precond, internal/cg and internal/eigen.
package core

import (
	"errors"
	"fmt"

	"repro/internal/cg"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/kernel"
	"repro/internal/plan"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/splitting"
	"repro/internal/vec"
)

// SplittingKind selects the stationary method generating the
// preconditioner.
type SplittingKind int

const (
	// SSORMulticolor is the paper's method: the 6-color SSOR splitting
	// with fused Conrad–Wallach sweeps. Requires GroupStart on the system.
	SSORMulticolor SplittingKind = iota
	// SSORNatural is SSOR(ω) in the stored ordering.
	SSORNatural
	// JacobiSplitting yields the truncated Neumann-series preconditioner.
	JacobiSplitting
)

func (s SplittingKind) String() string {
	switch s {
	case SSORMulticolor:
		return "ssor-multicolor"
	case SSORNatural:
		return "ssor-natural"
	case JacobiSplitting:
		return "jacobi"
	}
	return "?"
}

// CoeffKind selects the parametrization of §2.2.
type CoeffKind int

const (
	// Unparametrized uses αᵢ = 1: plain m steps of the stationary method.
	Unparametrized CoeffKind = iota
	// LeastSquaresCoeffs uses the continuous least-squares fit the paper's
	// Table 1 reports.
	LeastSquaresCoeffs
	// ChebyshevCoeffs uses the min-max (Chebyshev) criterion.
	ChebyshevCoeffs
	// WeightedLSCoeffs uses least squares with weight w(λ) = λ
	// (Johnson–Micchelli–Paul's μ = 1 weight: energy-norm emphasis).
	WeightedLSCoeffs
)

func (c CoeffKind) String() string {
	switch c {
	case Unparametrized:
		return "ones"
	case LeastSquaresCoeffs:
		return "least-squares"
	case ChebyshevCoeffs:
		return "chebyshev"
	case WeightedLSCoeffs:
		return "least-squares(w=λ)"
	}
	return "?"
}

// System is a symmetric positive definite linear system K·u = F.
// GroupStart carries the multicolor group boundaries when K is in a
// multicolor ordering (required by SSORMulticolor, ignored otherwise).
type System struct {
	K          *sparse.CSR
	F          []float64
	GroupStart []int
}

// Config selects the solver variant.
type Config struct {
	// M is the number of preconditioner steps; 0 runs plain CG.
	M int
	// Splitting picks the stationary method (default SSORMulticolor).
	Splitting SplittingKind
	// Coeffs picks the parametrization (default Unparametrized).
	Coeffs CoeffKind
	// Omega is the SSORNatural relaxation parameter; the paper uses 1 and
	// notes multicolor SSOR with few colors wants ω = 1 (Adams 1983).
	Omega float64
	// Interval optionally pins [λ₁, λₙ] for parametrized coefficients;
	// when nil it is estimated by the power method on P⁻¹K.
	Interval *eigen.Interval
	// Tol is the paper's ‖u^{k+1}−u^k‖_∞ test (default 1e-6 when both
	// tolerances are unset).
	Tol float64
	// RelResidualTol optionally adds/substitutes a relative residual test.
	RelResidualTol float64
	// MaxIter bounds iterations (default 10n).
	MaxIter int
	// History records per-iteration convergence data.
	History bool
	// Seed drives the deterministic interval estimation (default 1).
	Seed int64
	// Workers caps the goroutine fan-out of the CG kernels (≤ 1 serial);
	// see cg.Options.Workers.
	Workers int
	// Backend selects the matvec storage for K (the preconditioner always
	// works from the CSR form). The zero value is BackendAuto: probe the
	// structure and pick DIA for banded-diagonal systems, CSR otherwise.
	Backend Backend
	// Kernel selects the kernel set the fused solver loops run through:
	// "" or "auto" uses the set CPU feature detection picked at startup,
	// "portable" forces the reference implementations (the same override
	// REPRO_KERNEL=portable applies process-wide). Any other value is
	// rejected. Column iterates are bit-identical across kernel sets.
	Kernel string
	// TileBudgetBytes bounds the multivector working set of one batch tile
	// in SolveBatch: wide batches are split by the planner into cache-sized
	// column tiles executed sequentially (0 = plan.DefaultBudgetBytes).
	TileBudgetBytes int
	// Subdomains pins the processor count of a decomposed solve (0 = the
	// planner picks from the worker budget and mesh shape). Only
	// meaningful for mesh-backed problems routed through the engine.
	Subdomains int
	// Tuning is the self-tuning planner's feedback policy: "" or "adapt"
	// lets warm engine sessions re-plan from measured throughput,
	// "observe" records evidence without adapting, "off" pins the static
	// plan bit-for-bit. Any other value is rejected. The one-shot Solve /
	// SolveBatch paths have no observation store, so the knob only gates
	// validation there; the engine is where it takes effect. Deliberately
	// excluded from the engine's problem cache key — it is an execution
	// policy, not part of the prepared problem.
	Tuning string
}

// planner returns the execution planner the config's budgets select.
func (c Config) planner() plan.Planner {
	return plan.Planner{BudgetBytes: c.TileBudgetBytes}
}

// Result reports a solve.
type Result struct {
	U        []float64
	Stats    cg.Stats
	Precond  string
	Alphas   poly.Alphas    // zero-value when M == 0
	Interval eigen.Interval // zero-value when no estimate was needed
	// Backend is the matvec storage the solve actually ran on ("csr" or
	// "dia") — the resolved form of Config.Backend.
	Backend string
	// Kernel is the kernel set the solve's fused loops ran through
	// ("portable", "avx2", "neon") — the resolved form of Config.Kernel.
	Kernel string
	// Interleaved reports that a batch solve ran its tiles on the
	// row-interleaved panel layout (always false for scalar solves).
	Interleaved bool
}

// BuildSplitting constructs the configured splitting for a system.
// Omega = 0 means "unset" and defaults to the paper's ω = 1; any other
// value outside (0, 2) is rejected here, for every splitting kind, because
// SSOR with such an ω is not a convergent splitting and the resulting
// preconditioner silently diverges.
func BuildSplitting(sys System, cfg Config) (splitting.Splitting, error) {
	omega := cfg.Omega
	if omega == 0 {
		omega = 1
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("core: relaxation parameter ω = %g outside (0, 2) — SSOR would diverge (set Omega to 0 for the default ω = 1)", cfg.Omega)
	}
	switch cfg.Splitting {
	case SSORMulticolor:
		if sys.GroupStart == nil {
			return nil, fmt.Errorf("core: multicolor SSOR needs GroupStart (a multicolor-ordered system)")
		}
		return splitting.NewMulticolorSSOR(sys.K, sys.GroupStart, omega)
	case SSORNatural:
		return splitting.NewNaturalSSOR(sys.K, omega)
	case JacobiSplitting:
		return splitting.NewJacobi(sys.K)
	default:
		return nil, fmt.Errorf("core: unknown splitting kind %d", cfg.Splitting)
	}
}

// IntervalFor returns the spectral interval the configuration's
// parametrized coefficients run on: the pinned cfg.Interval when set, a
// power-method estimate on the splitting otherwise. It is the expensive
// half of coefficient construction, split out so instrumented callers can
// time spectral estimation as its own stage.
func IntervalFor(sp splitting.Splitting, cfg Config) (eigen.Interval, error) {
	if cfg.Interval != nil {
		return *cfg.Interval, nil
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return eigen.EstimateInterval(sp, 0.02, seed)
}

// BuildCoefficients computes the α for the configured criterion, estimating
// the spectral interval when necessary.
func BuildCoefficients(sp splitting.Splitting, cfg Config) (poly.Alphas, eigen.Interval, error) {
	if cfg.M < 1 {
		return poly.Alphas{}, eigen.Interval{}, fmt.Errorf("core: coefficients need M >= 1, got %d", cfg.M)
	}
	if cfg.Coeffs == Unparametrized {
		return poly.Ones(cfg.M), eigen.Interval{}, nil
	}
	iv, err := IntervalFor(sp, cfg)
	if err != nil {
		return poly.Alphas{}, eigen.Interval{}, err
	}
	if err := iv.Validate(); err != nil {
		return poly.Alphas{}, iv, err
	}
	var a poly.Alphas
	switch cfg.Coeffs {
	case LeastSquaresCoeffs:
		a, err = poly.LeastSquares(cfg.M, iv.Lo, iv.Hi)
	case ChebyshevCoeffs:
		a, err = poly.ChebyshevMinMax(cfg.M, iv.Lo, iv.Hi)
	case WeightedLSCoeffs:
		a, err = poly.LeastSquaresWeighted(cfg.M, iv.Lo, iv.Hi, poly.Poly{0, 1})
	default:
		err = fmt.Errorf("core: unknown coefficient kind %d", cfg.Coeffs)
	}
	if err != nil {
		return poly.Alphas{}, iv, err
	}
	if !a.PositiveOn(iv.Lo, iv.Hi) {
		return a, iv, fmt.Errorf("core: %s coefficients for m=%d are not positive on [%g, %g] — preconditioner would be indefinite",
			cfg.Coeffs, cfg.M, iv.Lo, iv.Hi)
	}
	return a, iv, nil
}

// BuildPreconditioner assembles the configured preconditioner.
func BuildPreconditioner(sys System, cfg Config) (precond.Preconditioner, poly.Alphas, eigen.Interval, error) {
	return BuildPreconditionerPhased(sys, cfg, nil)
}

// BuildPreconditionerPhased is BuildPreconditioner with stage timing
// hooks: phase(name) is called as each construction stage begins —
// "splitting_build", "spectral_estimate" (only when an interval must be
// estimated), "precond_build" — and the returned func as it ends. A nil
// phase skips all instrumentation; the engine passes its span tracer so a
// job's trace shows where preconditioner setup time went.
func BuildPreconditionerPhased(sys System, cfg Config, phase func(name string) (end func())) (precond.Preconditioner, poly.Alphas, eigen.Interval, error) {
	if phase == nil {
		phase = func(string) func() { return func() {} }
	}
	if cfg.M == 0 {
		return precond.Identity{}, poly.Alphas{}, eigen.Interval{}, nil
	}
	if cfg.M < 0 {
		return nil, poly.Alphas{}, eigen.Interval{}, fmt.Errorf("core: negative step count %d", cfg.M)
	}
	end := phase("splitting_build")
	sp, err := BuildSplitting(sys, cfg)
	end()
	if err != nil {
		return nil, poly.Alphas{}, eigen.Interval{}, err
	}
	// Pin the interval before BuildCoefficients so spectral estimation —
	// the dominant setup cost for parametrized coefficients — times as its
	// own stage (BuildCoefficients then finds it pre-resolved).
	if cfg.Coeffs != Unparametrized && cfg.Interval == nil {
		end = phase("spectral_estimate")
		iv, err := IntervalFor(sp, cfg)
		end()
		if err != nil {
			return nil, poly.Alphas{}, eigen.Interval{}, err
		}
		cfg.Interval = &iv
	}
	end = phase("precond_build")
	defer end()
	a, iv, err := BuildCoefficients(sp, cfg)
	if err != nil {
		return nil, a, iv, err
	}
	p, err := precond.NewMStep(sp, a)
	if err != nil {
		return nil, a, iv, err
	}
	return p, a, iv, nil
}

// Solve runs the configured m-step PCG on the system. The execution shape
// — matvec backend and kernel fan-out — comes from the planner, the same
// decision path the solver service uses.
func Solve(sys System, cfg Config) (Result, error) {
	if sys.K == nil || len(sys.F) != sys.K.Rows {
		return Result{}, fmt.Errorf("core: malformed system (K nil or |F|=%d != n)", len(sys.F))
	}
	if !kernel.ValidName(cfg.Kernel) {
		return Result{}, fmt.Errorf("core: unknown kernel policy %q (want auto or portable)", cfg.Kernel)
	}
	if _, err := plan.ParseTuning(cfg.Tuning); err != nil {
		return Result{}, err
	}
	p, a, iv, err := BuildPreconditioner(sys, cfg)
	if err != nil {
		return Result{}, err
	}
	pl := cfg.planner().Plan(plan.Inputs{
		K: sys.K, Policy: cfg.Backend, RHS: 1, M: cfg.M, Workers: cfg.Workers, Kernel: cfg.Kernel,
	})
	op, backend, err := operatorFor(sys.K, pl.Backend)
	if err != nil {
		return Result{}, err
	}
	if cfg.Tol <= 0 && cfg.RelResidualTol <= 0 {
		cfg.Tol = 1e-6
	}
	u, st, err := cg.Solve(op, sys.F, p, cg.Options{
		Tol:            cfg.Tol,
		RelResidualTol: cfg.RelResidualTol,
		MaxIter:        cfg.MaxIter,
		History:        cfg.History,
		Workers:        pl.Workers,
	})
	res := Result{U: u, Stats: st, Precond: p.Name(), Alphas: a, Interval: iv, Backend: backend.String(), Kernel: pl.Kernel}
	return res, err
}

// SolveBatch runs the configured m-step PCG on s right-hand sides sharing
// one matrix: the splitting, coefficients and spectral-interval estimate
// are built once, and each iteration of the block solve performs a single
// matrix–multivector product and a single block preconditioner sweep for
// the whole batch (see cg.SolveBlockInto). Result j corresponds to fs[j]
// and matches a scalar Solve on (sys, fs[j]) to machine precision.
//
// The returned error is nil only when every column converged; partial
// results are still returned alongside a joined per-column error.
func SolveBatch(sys System, fs [][]float64, cfg Config) ([]Result, error) {
	if sys.K == nil {
		return nil, fmt.Errorf("core: malformed system (K nil)")
	}
	if len(fs) == 0 {
		return nil, fmt.Errorf("core: batch solve needs at least one right-hand side")
	}
	n := sys.K.Rows
	for j, f := range fs {
		if len(f) != n {
			return nil, fmt.Errorf("core: rhs %d length %d != n %d", j, len(f), n)
		}
	}
	if !kernel.ValidName(cfg.Kernel) {
		return nil, fmt.Errorf("core: unknown kernel policy %q (want auto or portable)", cfg.Kernel)
	}
	if _, err := plan.ParseTuning(cfg.Tuning); err != nil {
		return nil, err
	}
	p, a, iv, err := BuildPreconditioner(sys, cfg)
	if err != nil {
		return nil, err
	}
	pl := cfg.planner().Plan(plan.Inputs{
		K: sys.K, Policy: cfg.Backend, RHS: len(fs), M: cfg.M, Workers: cfg.Workers, Kernel: cfg.Kernel,
	})
	op, backend, err := operatorFor(sys.K, pl.Backend)
	if err != nil {
		return nil, err
	}
	if cfg.Tol <= 0 && cfg.RelResidualTol <= 0 {
		cfg.Tol = 1e-6
	}
	opt := cg.Options{
		Tol:            cfg.Tol,
		RelResidualTol: cfg.RelResidualTol,
		MaxIter:        cfg.MaxIter,
		Workers:        pl.Workers,
		Interleave:     pl.Interleave,
		Kernel:         cfg.Kernel,
	}
	// Execute the plan's column tiles sequentially, reusing one workspace:
	// each tile's multivector working set stays inside the planner's cache
	// budget, and per-column arithmetic is tile-invariant (the fused block
	// kernels preserve per-column order), so results match the untiled
	// solve exactly.
	out := make([]Result, len(fs))
	var errs []error
	bws := cg.NewBlockWorkspace(n, len(pl.Tiles[0]))
	for _, tileCols := range pl.Tiles {
		cols := make([][]float64, len(tileCols))
		for i, c := range tileCols {
			cols[i] = fs[c]
		}
		u := vec.NewMulti(n, len(tileCols))
		bst, berr := cg.SolveBlockInto(u, op, vec.MultiFromCols(cols), p, opt, bws)
		if berr != nil {
			errs = append(errs, berr)
		}
		for i, c := range tileCols {
			out[c] = Result{
				U:           vec.Clone(u.Col(i)),
				Stats:       bst.Cols[i],
				Precond:     p.Name(),
				Alphas:      a,
				Interval:    iv,
				Backend:     backend.String(),
				Kernel:      bst.Kernel,
				Interleaved: bst.Interleaved,
			}
		}
	}
	return out, errors.Join(errs...)
}

// PlateSystem builds the paper's plane-stress test problem in the 6-color
// ordering, returning the system together with the plate for callers that
// need the mesh (partitioners, renderers, solution un-permutation).
func PlateSystem(rows, cols int, opt fem.Options) (System, *fem.Plate, error) {
	plate, err := fem.NewPlate(rows, cols, opt)
	if err != nil {
		return System{}, nil, err
	}
	return System{
		K:          plate.KColored,
		F:          plate.ColoredRHS(),
		GroupStart: plate.Ordering.GroupStart[:],
	}, plate, nil
}
