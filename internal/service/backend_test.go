package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHTTPUnknownBackendRejected: the validation failure must be a 400,
// not a panic or 500.
func TestHTTPUnknownBackendRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := backendReq(6, 6, "ellpack")

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: req})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend status %d: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("error body %q (%v)", body, err)
	}
}

func TestHTTPBackendFieldRoundTrip(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: backendReq(8, 8, "dia")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != JobDone || v.Result == nil || v.Result.Backend != "dia" || !v.Result.Converged {
		t.Fatalf("dia solve over HTTP: %+v", v)
	}

	var st Stats
	if code := getJSON(t, srv, "/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.SolvesDIA != 1 {
		t.Fatalf("stats solves_dia = %d, want 1", st.SolvesDIA)
	}
}
