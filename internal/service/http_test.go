package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHTTPSolveSyncAndStats(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := solveHTTPRequest{SolveRequest: plateReq(10, 10, 3)}
	resp, body := postJSON(t, srv, "/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != JobDone || v.Result == nil || !v.Result.Converged {
		t.Fatalf("sync solve: %+v", v)
	}

	// Second identical solve: the HTTP-visible proof of cache reuse.
	resp, body = postJSON(t, srv, "/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.CacheHit {
		t.Fatalf("second solve not a cache hit: %+v", v)
	}

	var st Stats
	if code := getJSON(t, srv, "/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.JobsDone != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LatencyP50 <= 0 {
		t.Fatalf("latency p50 = %g", st.LatencyP50)
	}
}

func TestHTTPAsyncJobPolling(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := solveHTTPRequest{SolveRequest: plateReq(16, 16, 2), Async: true}
	resp, body := postJSON(t, srv, "/v1/solve", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatalf("no job id: %s", body)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, srv, "/v1/jobs/"+v.ID, &v); code != http.StatusOK {
			t.Fatalf("poll status %d", code)
		}
		if v.State == JobDone || v.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.State != JobDone || !v.Result.Converged {
		t.Fatalf("async job: %+v", v)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Unknown job.
	var e errorResponse
	if code := getJSON(t, srv, "/v1/jobs/j-999999", &e); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d", code)
	}

	// Malformed body.
	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}

	// Unknown field (typo'd spec) is rejected rather than ignored.
	resp, body := postJSON(t, srv, "/v1/solve", map[string]any{"plat": map[string]int{"rows": 4, "cols": 4}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d: %s", resp.StatusCode, body)
	}

	// Invalid request shape.
	resp, body = postJSON(t, srv, "/v1/solve", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request status %d: %s", resp.StatusCode, body)
	}

	// Wrong method.
	if code := getJSON(t, srv, "/v1/solve", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve status %d", code)
	}
}

func TestHTTPQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var saw503 bool
	for i := 0; i < 50 && !saw503; i++ {
		resp, _ := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: slowReq(), Async: true})
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !saw503 {
		t.Fatal("bounded queue never returned 503 over HTTP")
	}
}

func ExampleService_Handler() {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := []byte(`{"plate":{"rows":8,"cols":8},"solver":{"m":2,"coeffs":"least-squares"}}`)
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		panic(err)
	}
	fmt.Println(resp.StatusCode, v.State, v.Result.Converged)
	// Output: 200 done true
}
