package service

import (
	"encoding/json"
	"testing"
)

func plateReq(rows, cols, m int) SolveRequest {
	return SolveRequest{
		Plate:  &PlateSpec{Rows: rows, Cols: cols},
		Solver: SolverSpec{M: m, Coeffs: "least-squares", Tol: 1e-7},
	}
}

// slowReq is a solve that reliably occupies a worker for hundreds of
// milliseconds — much longer than a request roundtrip even on one CPU — so
// queue-bound tests observe a busy worker: a tight residual target on a
// larger plate with plain CG.
func slowReq() SolveRequest {
	return SolveRequest{
		Plate:  &PlateSpec{Rows: 48, Cols: 48},
		Solver: SolverSpec{M: 0, RelResidualTol: 1e-13, MaxIter: 30000},
	}
}

// backendReq is plateReq with an explicit backend selection.
func backendReq(rows, cols int, backend string) SolveRequest {
	req := plateReq(rows, cols, 2)
	req.Solver.Backend = backend
	return req
}

func mustUnmarshal(t *testing.T, b []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
}
