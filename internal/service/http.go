package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
)

// maxBodyBytes bounds a /v1/solve body (64 MiB: a ~1M-triplet COO system).
const maxBodyBytes = 64 << 20

// solveHTTPRequest is the POST /v1/solve body: a SolveRequest plus
// transport options.
type solveHTTPRequest struct {
	SolveRequest
	// Async returns 202 + the job ID immediately; poll /v1/jobs/{id} or
	// stream it with Accept: text/event-stream. The default waits for the
	// solve and returns the finished job — and cancels the solve if the
	// client disconnects first (nobody else knows the job ID yet).
	Async bool `json:"async,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/solve     submit a solve (async or waiting)
//	POST   /v1/plan      resolve a request's execution plan without solving
//	GET    /v1/jobs/{id} job status/result; with Accept: text/event-stream
//	                     (or ?watch=1) streams per-case results as they
//	                     converge, ending with the finished job
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET    /v1/stats     queue, cache, tiling and latency statistics
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// decodeBody reads exactly one JSON value into dst, rejecting oversized
// bodies and trailing garbage. A non-nil return has already written the
// error response.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error()})
			return err
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return err
	}
	// A body must be exactly one JSON value: a second Decode must report
	// EOF, otherwise trailing bytes ({"plate":...}garbage) were silently
	// ignored and the request is malformed.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: trailing data after JSON value"})
		return errors.New("trailing data")
	}
	return nil
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveHTTPRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	job, err := s.Submit(req.SolveRequest)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, s.ViewOf(job))
		return
	}
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, s.ViewOf(job))
	case <-r.Context().Done():
		// The client is gone and it is the only party that ever learned
		// this job's ID, so nobody can collect the result: propagate the
		// disconnect into the solve loop instead of leaking a running job.
		job.Cancel()
	}
}

func (s *Service) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	info, err := s.PlanRequest(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// wantsStream reports whether the job request asked for per-case streaming:
// SSE via the Accept header, or chunked JSON lines via ?watch=1.
func wantsStream(r *http.Request) (stream, sse bool) {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		return true, true
	}
	if r.URL.Query().Get("watch") == "1" {
		return true, false
	}
	return false, false
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if stream, sse := wantsStream(r); stream {
		job, ok := s.JobRef(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
			return
		}
		s.streamJob(w, r, job, sse)
		return
	}
	v, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.JobRef(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, s.ViewOf(job))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
