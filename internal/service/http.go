package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxBodyBytes bounds a /v1/solve body (64 MiB: a ~1M-triplet COO system).
const maxBodyBytes = 64 << 20

// solveHTTPRequest is the POST /v1/solve body: a SolveRequest plus
// transport options.
type solveHTTPRequest struct {
	SolveRequest
	// Async returns 202 + the job ID immediately; poll /v1/jobs/{id}.
	// The default waits for the solve and returns the finished job.
	Async bool `json:"async,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/solve     submit a solve (async or waiting)
//	GET  /v1/jobs/{id} job status/result
//	GET  /v1/stats     queue, cache and latency statistics
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveHTTPRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	// A body must be exactly one JSON value: a second Decode must report
	// EOF, otherwise trailing bytes ({"plate":...}garbage) were silently
	// ignored and the request is malformed.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: trailing data after JSON value"})
		return
	}
	job, err := s.Submit(req.SolveRequest)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, s.viewOf(job))
		return
	}
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, s.viewOf(job))
	case <-r.Context().Done():
		// Client went away; the solve continues and stays pollable.
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
