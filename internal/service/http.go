package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// maxBodyBytes bounds a /v1/solve body (64 MiB: a ~1M-triplet COO system).
const maxBodyBytes = 64 << 20

// solveHTTPRequest is the POST /v1/solve body: a SolveRequest plus
// transport options.
type solveHTTPRequest struct {
	SolveRequest
	// Async returns 202 + the job ID immediately; poll /v1/jobs/{id} or
	// stream it with Accept: text/event-stream. The default waits for the
	// solve and returns the finished job — and cancels the solve if the
	// client disconnects first (nobody else knows the job ID yet).
	Async bool `json:"async,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/solve           submit a solve (async or waiting)
//	POST   /v1/plan            resolve a request's execution plan without solving
//	GET    /v1/jobs/{id}       job status/result; with Accept: text/event-stream
//	                           (or ?watch=1) streams per-case results as they
//	                           converge, ending with the finished job
//	GET    /v1/jobs/{id}/trace stage timeline + sampled convergence curve
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/stats           queue, cache, tiling and latency statistics
//	GET    /v1/healthz         readiness: 200 while serving, 503 once draining
//	GET    /metrics            Prometheus text exposition
//
// Every request is logged to the engine's structured logger with a
// generated request id, echoed back in the X-Request-Id header.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logRequests(mux)
}

// Health is the GET /v1/healthz payload: the few facts a load balancer or
// fleet router needs to decide whether to keep sending work here. The
// response status carries the verdict — 200 while serving, 503 once the
// node is draining — so checkers need not parse the body at all.
type Health struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// Node is the engine's configured node identity ("" standalone).
	Node string `json:"node,omitempty"`
	// QueueDepth/QueueCap describe submission headroom right now.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Running is the number of jobs currently executing.
	Running int `json:"running"`
	// Draining reports that Close has been called: the node finishes what
	// it has but accepts nothing new.
	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	h := Health{
		Status:        "ok",
		Node:          s.NodeID(),
		QueueDepth:    st.QueueDepth,
		QueueCap:      st.QueueCap,
		Running:       st.Running,
		Draining:      s.Draining(),
		UptimeSeconds: st.UptimeSeconds,
	}
	code := http.StatusOK
	if h.Draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// nextRequestID numbers requests process-wide for log correlation.
var nextRequestID atomic.Int64

// logRequests wraps the API in request-scoped structured logging: each
// request gets an id (generated, or taken from an incoming X-Request-Id so
// callers can thread their own correlation ids), which is echoed in the
// response headers and attached to the access log line.
func (s *Service) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = fmt.Sprintf("r-%06d", nextRequestID.Add(1))
		}
		w.Header().Set("X-Request-Id", reqID)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.Logger().Info("http request",
			"request", reqID, "method", r.Method, "path", r.URL.Path,
			"status", status, "duration_seconds", time.Since(start).Seconds())
	})
}

// statusWriter captures the response status for the access log. It keeps
// the Flusher contract the SSE/ndjson stream handlers depend on.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// decodeBody reads exactly one JSON value into dst, rejecting oversized
// bodies and trailing garbage. A non-nil return has already written the
// error response.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: err.Error()})
			return err
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return err
	}
	// A body must be exactly one JSON value: a second Decode must report
	// EOF, otherwise trailing bytes ({"plate":...}garbage) were silently
	// ignored and the request is malformed.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: trailing data after JSON value"})
		return errors.New("trailing data")
	}
	return nil
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveHTTPRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	job, err := s.Submit(req.SolveRequest)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, s.ViewOf(job))
		return
	}
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, s.ViewOf(job))
	case <-r.Context().Done():
		// The client is gone and it is the only party that ever learned
		// this job's ID, so nobody can collect the result: propagate the
		// disconnect into the solve loop instead of leaking a running job.
		job.Cancel()
	}
}

func (s *Service) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if decodeBody(w, r, &req) != nil {
		return
	}
	info, err := s.PlanRequest(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// wantsStream reports whether the job request asked for per-case streaming:
// SSE via the Accept header, or chunked JSON lines via ?watch=1.
func wantsStream(r *http.Request) (stream, sse bool) {
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		return true, true
	}
	if r.URL.Query().Get("watch") == "1" {
		return true, false
	}
	return false, false
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if stream, sse := wantsStream(r); stream {
		job, ok := s.JobRef(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
			return
		}
		s.streamJob(w, r, job, sse)
		return
	}
	v, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.JobRef(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, s.ViewOf(job))
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleTrace serves a job's stage timeline and sampled convergence curve.
// It works on running jobs (open spans report provisional durations) and
// replays unchanged for finished ones, for as long as the job is retained
// in history.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ti, ok := s.Trace(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, ti)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}
