package service

import (
	"time"
)

// JobState is the lifecycle of a submitted solve.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobResult reports a finished solve.
type JobResult struct {
	Converged     bool    `json:"converged"`
	Iterations    int     `json:"iterations"`
	MatVecs       int     `json:"matvecs"`
	PrecondApps   int     `json:"precond_apps"`
	InnerProducts int     `json:"inner_products"`
	FinalUDiff    float64 `json:"final_udiff"`
	FinalRelRes   float64 `json:"final_relres"`
	// Precond names the preconditioner, e.g. "3-step ssor-multicolor
	// (least-squares)".
	Precond string `json:"precond"`
	// Backend is the matvec storage the solve ran on ("csr" or "dia") —
	// the resolved form of the request's "backend" field.
	Backend string `json:"backend,omitempty"`
	// IntervalLo/Hi report the spectral interval used for parametrized
	// coefficients (0,0 when none was needed).
	IntervalLo float64 `json:"interval_lo,omitempty"`
	IntervalHi float64 `json:"interval_hi,omitempty"`
	// U is the solution in the solver's ordering (multicolor for plates);
	// omitted when the request set OmitSolution.
	U []float64 `json:"u,omitempty"`
	// Nodes, NodeU, NodeV are the per-free-node displacements for plate
	// problems (solution mapped back out of the multicolor ordering).
	Nodes []int     `json:"nodes,omitempty"`
	NodeU []float64 `json:"node_u,omitempty"`
	NodeV []float64 `json:"node_v,omitempty"`

	// RHS is the number of right-hand sides solved; Cases holds the
	// per-RHS outcomes for batched requests (len(Cases) == RHS when > 1).
	// For batches the top-level counters describe the shared block solve:
	// Iterations is the outer block iteration count, MatVecs the SpMM
	// count (one per iteration), PrecondApps the block sweeps.
	RHS   int          `json:"rhs,omitempty"`
	Cases []CaseResult `json:"cases,omitempty"`
}

// CaseResult reports one right-hand side of a batched solve.
type CaseResult struct {
	Converged   bool    `json:"converged"`
	Iterations  int     `json:"iterations"`
	FinalUDiff  float64 `json:"final_udiff"`
	FinalRelRes float64 `json:"final_relres"`
	// Error reports a per-case failure (breakdown or iteration limit);
	// empty for converged cases.
	Error string `json:"error,omitempty"`
	// U is the case's solution in the solver's ordering; omitted when the
	// request set OmitSolution.
	U []float64 `json:"u,omitempty"`
	// Nodes, NodeU, NodeV are the per-free-node displacements for plate
	// problems.
	Nodes []int     `json:"nodes,omitempty"`
	NodeU []float64 `json:"node_u,omitempty"`
	NodeV []float64 `json:"node_v,omitempty"`
}

// Job is the service's record of one solve. All mutable fields are guarded
// by the owning Service's mutex; callers see immutable JobView snapshots.
type Job struct {
	id   string
	req  SolveRequest
	done chan struct{}

	state      JobState
	cacheHit   bool
	result     *JobResult
	err        error
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
}

// JobView is an immutable snapshot of a job, shaped for JSON.
type JobView struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	CacheHit bool     `json:"cache_hit"`
	// QueuedSeconds is enqueue→start (or →now while queued); RunSeconds is
	// start→finish (or →now while running).
	QueuedSeconds float64    `json:"queued_seconds"`
	RunSeconds    float64    `json:"run_seconds"`
	Error         string     `json:"error,omitempty"`
	Result        *JobResult `json:"result,omitempty"`
}

// view snapshots the job; the caller must hold the service mutex.
func (j *Job) view(now time.Time) JobView {
	v := JobView{ID: j.id, State: j.state, CacheHit: j.cacheHit, Result: j.result}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	switch j.state {
	case JobQueued:
		v.QueuedSeconds = now.Sub(j.enqueuedAt).Seconds()
	case JobRunning:
		v.QueuedSeconds = j.startedAt.Sub(j.enqueuedAt).Seconds()
		v.RunSeconds = now.Sub(j.startedAt).Seconds()
	default:
		v.QueuedSeconds = j.startedAt.Sub(j.enqueuedAt).Seconds()
		v.RunSeconds = j.finishedAt.Sub(j.startedAt).Seconds()
	}
	return v
}

// Done reports completion: the channel closes when the job reaches JobDone
// or JobFailed.
func (j *Job) Done() <-chan struct{} { return j.done }

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }
