package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// streamJob streams job's per-case results to one HTTP client as the
// columns converge, then emits a terminal event carrying the finished job
// view. Two wire formats share the mechanics:
//
//   - SSE (Accept: text/event-stream): "event: case" frames carrying
//     {"case":i,"result":{...}}, closed by one "event: done" frame with
//     the JobView.
//   - chunked JSON lines (?watch=1): one {"case":i,"result":{...}} object
//     per line, closed by {"done":{JobView}}.
//
// A subscriber joining late replays the already-finished cases first, so
// the stream always delivers every case exactly once regardless of when
// the client attached. A disconnected client just detaches (an async job
// may have other watchers or pollers); the synchronous solve handler and
// DELETE /v1/jobs/{id} are the cancellation paths.
func (s *Service) streamJob(w http.ResponseWriter, r *http.Request, job *Job, sse bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorResponse{Error: "streaming unsupported by this connection"})
		return
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	replay, ch, stop := s.Watch(job)
	defer stop()

	emitCase := func(ev CaseEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: case\ndata: %s\n\n", data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	emitDone := func(v JobView) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
		} else {
			fmt.Fprintf(w, "{\"done\":%s}\n", data)
		}
		flusher.Flush()
	}

	for _, ev := range replay {
		if !emitCase(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// The job finished and every case event has been
				// delivered; close with the final view.
				emitDone(s.ViewOf(job))
				return
			}
			if !emitCase(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
