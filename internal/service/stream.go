package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// streamJob streams job's per-case results to one HTTP client as the
// columns converge, then emits a terminal event carrying the finished job
// view. Two wire formats share the mechanics:
//
//   - SSE (Accept: text/event-stream): "event: case" frames carrying
//     {"seq":n,"case":i,"result":{...}}, closed by one "event: done" frame
//     with the JobView. Every case frame carries an "id:" line with the
//     event's per-job delivery sequence (1, 2, 3, …).
//   - chunked JSON lines (?watch=1): one {"seq":n,"case":i,"result":{...}}
//     object per line, closed by {"done":{JobView}}.
//
// A subscriber joining late replays the already-finished cases first, so
// the stream always delivers every case exactly once regardless of when
// the client attached. A reattaching subscriber that presents the standard
// Last-Event-ID header (the highest "id:" it saw) skips the cases already
// delivered on its previous connection instead of replaying everything.
// A disconnected client just detaches (an async job may have other
// watchers or pollers); the synchronous solve handler and
// DELETE /v1/jobs/{id} are the cancellation paths.
func (s *Service) streamJob(w http.ResponseWriter, r *http.Request, job *Job, sse bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorResponse{Error: "streaming unsupported by this connection"})
		return
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// A reattaching client presents the last event ID it received; events
	// at or below it were already delivered on the previous connection.
	lastSeen := 0
	if v, err := strconv.Atoi(r.Header.Get("Last-Event-ID")); err == nil && v > 0 {
		lastSeen = v
	}

	replay, ch, stop := s.Watch(job)
	defer stop()

	maxSeq := lastSeen
	emitCase := func(ev CaseEvent) bool {
		if ev.Seq <= lastSeen {
			return true // already delivered before the reattach
		}
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "id: %d\nevent: case\ndata: %s\n\n", ev.Seq, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	emitDone := func(v JobView) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "id: %d\nevent: done\ndata: %s\n\n", maxSeq+1, data)
		} else {
			fmt.Fprintf(w, "{\"done\":%s}\n", data)
		}
		flusher.Flush()
	}

	for _, ev := range replay {
		if !emitCase(ev) {
			return
		}
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// The job finished and every case event has been
				// delivered; close with the final view.
				emitDone(s.ViewOf(job))
				return
			}
			if !emitCase(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
