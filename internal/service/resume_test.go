package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestHealthzReadiness: the readiness endpoint answers 200/ok while the
// node serves and flips to 503/draining once Close is called — the signal
// the fleet router's health checker keys off.
func TestHealthzReadiness(t *testing.T) {
	s := New(Config{Workers: 1, NodeID: "n1"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var h Health
	if code := getJSON(t, srv, "/v1/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz while serving: status %d", code)
	}
	if h.Status != "ok" || h.Draining || h.Node != "n1" {
		t.Fatalf("healthz payload %+v, want ok/not-draining/node n1", h)
	}
	if h.QueueCap <= 0 || h.UptimeSeconds < 0 {
		t.Fatalf("healthz payload %+v missing capacity/uptime facts", h)
	}

	s.Close()
	h = Health{}
	if code := getJSON(t, srv, "/v1/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: status %d, want 503", code)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("healthz payload after Close %+v, want draining", h)
	}
}

// idEvent is one SSE frame with its id line, for resume assertions.
type idEvent struct {
	id   int
	name string
	data []byte
}

// readSSEWithIDs parses frames including their "id:" lines until the
// stream closes.
func readSSEWithIDs(t *testing.T, r *bufio.Reader) []idEvent {
	t.Helper()
	var out []idEvent
	ev := idEvent{id: -1}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && ev.name != "":
			out = append(out, ev)
			if ev.name == "done" {
				return out
			}
			ev = idEvent{id: -1}
		}
	}
}

// TestStreamResumeSkipsDelivered: attaching to a finished batch with
// Last-Event-ID replays only the events after it — sequence numbers are
// monotone per job, so the reattaching client never sees a duplicate and
// the done frame's id continues the sequence.
func TestStreamResumeSkipsDelivered(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Five fast cases: every seq 1..5 exists by the time we attach.
	req := SolveRequest{
		Plate:        &PlateSpec{Rows: 8, Cols: 8, Tractions: []float64{1, 1, 1, 1, 1}},
		Solver:       SolverSpec{M: 2, Tol: 1e-7},
		OmitSolution: true,
	}
	resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: req, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var accepted JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v JobView
		getJSON(t, srv, "/v1/jobs/"+accepted.ID, &v)
		if v.State == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	const lastSeen = 2
	hreq, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+accepted.ID, nil)
	hreq.Header.Set("Accept", "text/event-stream")
	hreq.Header.Set("Last-Event-ID", strconv.Itoa(lastSeen))
	sresp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	events := readSSEWithIDs(t, bufio.NewReader(sresp.Body))

	if len(events) != 4 {
		t.Fatalf("resumed stream delivered %d frames, want 3 cases + done: %+v", len(events), events)
	}
	for i, want := range []int{3, 4, 5} {
		ev := events[i]
		if ev.name != "case" || ev.id != want {
			t.Fatalf("frame %d = %s id %d, want case id %d", i, ev.name, ev.id, want)
		}
		var ce CaseEvent
		if err := json.Unmarshal(ev.data, &ce); err != nil {
			t.Fatal(err)
		}
		if ce.Seq != want {
			t.Fatalf("frame %d carries seq %d, want %d (id and seq must agree)", i, ce.Seq, want)
		}
	}
	last := events[3]
	if last.name != "done" || last.id != 6 {
		t.Fatalf("terminal frame = %s id %d, want done id 6", last.name, last.id)
	}
	var v JobView
	if err := json.Unmarshal(last.data, &v); err != nil {
		t.Fatal(err)
	}
	if v.State != JobDone {
		t.Fatalf("done frame carries state %s", v.State)
	}
}
