package service

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPBatchSolve drives the batch API end to end over HTTP.
func TestHTTPBatchSolve(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := map[string]any{
		"plate":  map[string]any{"rows": 6, "cols": 6, "tractions": []float64{1, 2}},
		"solver": map[string]any{"m": 2, "tol": 1e-7},
	}
	resp, body := postJSON(t, srv, "/v1/solve", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var view JobView
	mustUnmarshal(t, body, &view)
	if view.State != JobDone || view.Result == nil {
		t.Fatalf("batch over HTTP: %+v", view)
	}
	if view.Result.RHS != 2 || len(view.Result.Cases) != 2 {
		t.Fatalf("want 2 cases over HTTP, got %+v", view.Result)
	}
	for c, cr := range view.Result.Cases {
		if !cr.Converged || len(cr.U) == 0 {
			t.Fatalf("case %d: %+v", c, cr)
		}
	}
}

// TestHTTPRejectsTrailingData: a body with trailing bytes after the JSON
// value must be a 400, not silently accepted.
func TestHTTPRejectsTrailingData(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"plate":{"rows":4,"cols":4},"solver":{"m":1}}garbage`
	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("trailing garbage accepted with status %d", resp.StatusCode)
	}
	// A second complete JSON value is also trailing data.
	body = `{"plate":{"rows":4,"cols":4},"solver":{"m":1}}{"again":true}`
	resp2, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 400 {
		t.Fatalf("second JSON value accepted with status %d", resp2.StatusCode)
	}
	// A clean body still works.
	resp3, body3 := postJSON(t, srv, "/v1/solve", map[string]any{
		"plate":  map[string]any{"rows": 4, "cols": 4},
		"solver": map[string]any{"m": 1},
	})
	if resp3.StatusCode != 200 {
		t.Fatalf("clean body rejected: %d %s", resp3.StatusCode, body3)
	}
}

// TestHTTPPrebuiltFieldNeverSerialized: the in-process Prebuilt payload is
// not part of the wire vocabulary — marshaling a request must not leak it,
// and the server's strict decoder must reject a "prebuilt" key.
func TestHTTPPrebuiltFieldNeverSerialized(t *testing.T) {
	b, err := json.Marshal(SolveRequest{Plate: &PlateSpec{Rows: 4, Cols: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "prebuilt") {
		t.Fatalf("prebuilt leaked into the wire form: %s", b)
	}

	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"plate":{"rows":4,"cols":4},"solver":{"m":1},"prebuilt":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("wire 'prebuilt' key accepted with status %d", resp.StatusCode)
	}
}
