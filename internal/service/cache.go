package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/precond"
)

// cacheEntry is one fully-prepared problem: the assembled system, the
// estimated spectral interval (for parametrized coefficients), and a pool
// of ready preconditioners. The system and interval are immutable after
// build; preconditioners carry mutable sweep scratch (e.g. the
// Conrad–Wallach auxiliary vector), so concurrent jobs each check one out
// of the pool rather than sharing an instance.
type cacheEntry struct {
	key  string
	once sync.Once
	err  error

	sys   core.System
	plate *fem.Plate
	// cfg is the request's solver config with the estimated interval
	// pinned, so pooled preconditioner rebuilds never re-run the power
	// method.
	cfg      core.Config
	interval eigen.Interval
	precond  string // display name

	pool sync.Pool // of precond.Preconditioner
}

// build does the expensive setup exactly once per entry: plate assembly (or
// general-system conversion), splitting construction, interval estimation,
// and the first preconditioner.
func (e *cacheEntry) build(req *SolveRequest) {
	sys, plate, err := req.assemble()
	if err != nil {
		e.err = err
		return
	}
	cfg, err := req.Solver.config(req.Plate != nil)
	if err != nil {
		e.err = err
		return
	}
	p, _, iv, err := core.BuildPreconditioner(sys, cfg)
	if err != nil {
		e.err = err
		return
	}
	e.sys, e.plate, e.interval, e.precond = sys, plate, iv, p.Name()
	if iv != (eigen.Interval{}) {
		// Pin the estimate: later preconditioner builds reuse it.
		cfg.Interval = &e.interval
	}
	e.cfg = cfg
	e.pool.Put(p)
}

// checkout takes a preconditioner from the pool, rebuilding one when the
// pool is empty (or the GC emptied it). Rebuilds reuse the pinned spectral
// interval, so they never re-run the power method. A rebuild failure —
// which should be impossible after a successful first build — surfaces its
// real cause to the caller rather than an untyped nil.
func (e *cacheEntry) checkout() (precond.Preconditioner, error) {
	if p, ok := e.pool.Get().(precond.Preconditioner); ok && p != nil {
		return p, nil
	}
	np, _, _, err := core.BuildPreconditioner(e.sys, e.cfg)
	if err != nil {
		return nil, err
	}
	return np, nil
}

func (e *cacheEntry) release(p precond.Preconditioner) { e.pool.Put(p) }

// cache is a keyed LRU of prepared problems. Concurrent misses on the same
// key share one build (the losers block on the entry's once).
type cache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses atomic.Int64
}

func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{max: max, lru: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the entry for key, creating it on miss, and whether the entry
// already existed. The caller must run entry.once before using the fields.
func (c *cache) get(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry), true
	}
	e := &cacheEntry{key: key}
	c.entries[key] = c.lru.PushFront(e)
	if c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.misses.Add(1)
	return e, false
}

// drop removes e from the cache (used when its build fails, so the error
// is not cached forever). It compares identity: if the key has already
// been replaced by a newer — possibly healthy — entry, that entry stays.
func (c *cache) drop(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok && el.Value.(*cacheEntry) == e {
		c.lru.Remove(el)
		delete(c.entries, e.key)
	}
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
