// Package service is the HTTP face of the solver engine: it turns the
// m-step PCG library into a resident daemon by exposing submission, job
// status, per-case result streams and operational statistics over an
// HTTP/JSON API. All solving mechanics — the bounded worker pool, the
// sharded problem/preconditioner cache, the execution planner, tile
// execution and the column-done fan-out — live in internal/engine; the
// service is a thin adapter that maps requests, streams and errors onto
// the wire. The same engine backs the embeddable repro.NewLocal solver,
// so HTTP and in-process callers are served by one implementation.
package service

import "repro/internal/engine"

// Re-exported engine vocabulary: the service's request/response types are
// exactly the engine's (the HTTP layer adds only transport concerns).
type (
	// Config sizes the engine's worker pool, queue, and cache.
	Config = engine.Config
	// SolveRequest is one unit of work (a plate or a general system, plus
	// solver settings).
	SolveRequest = engine.Request
	// PlateSpec requests the paper's plane-stress plate problem.
	PlateSpec = engine.PlateSpec
	// SystemSpec requests a general sparse SPD solve in coordinate form.
	SystemSpec = engine.SystemSpec
	// SolverSpec selects the m-step PCG variant by name.
	SolverSpec = engine.SolverSpec
	// Job is a live job handle.
	Job = engine.Job
	// JobState is the lifecycle of a submitted solve.
	JobState = engine.JobState
	// JobView is an immutable snapshot of a submitted job.
	JobView = engine.JobView
	// JobResult reports a finished solve.
	JobResult = engine.JobResult
	// CaseResult reports one right-hand side of a batched solve.
	CaseResult = engine.CaseResult
	// CaseEvent is one streamed per-case completion.
	CaseEvent = engine.CaseEvent
	// PlanInfo is the execution plan the planner resolved for a request.
	PlanInfo = engine.PlanInfo
	// Stats is the service health report.
	Stats = engine.Stats
	// TraceInfo is a job's stage timeline and convergence samples
	// (GET /v1/jobs/{id}/trace).
	TraceInfo = engine.TraceInfo
)

// Job lifecycle states.
const (
	JobQueued  = engine.JobQueued
	JobRunning = engine.JobRunning
	JobDone    = engine.JobDone
	JobFailed  = engine.JobFailed
)

// Queue errors, re-exported for HTTP status mapping and callers.
var (
	ErrQueueFull = engine.ErrQueueFull
	ErrClosed    = engine.ErrClosed
)

// Service serves an engine over HTTP. The embedded engine's methods
// (Submit, Solve, PlanRequest, Job, Cancel, Stats, Abort, Close) are the
// in-process API; Handler returns the /v1 HTTP API over the same engine.
type Service struct {
	*engine.Engine
}

// New starts a solver service with cfg's worker pool. Call Close to drain
// queued jobs and stop the workers.
func New(cfg Config) *Service {
	return &Service{Engine: engine.New(cfg)}
}
