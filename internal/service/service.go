package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/vec"
)

// ErrQueueFull reports a bounded-queue rejection; HTTP maps it to 503.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed reports submission to a closed service.
var ErrClosed = errors.New("service: closed")

// Config sizes the service. Zero values pick sensible defaults.
type Config struct {
	// Workers is the number of concurrent solves (default GOMAXPROCS).
	Workers int
	// WorkerBudget is the goroutine fan-out each solve may use for its
	// SpMV/dot/axpy kernels. The default divides GOMAXPROCS by Workers
	// (min 1), so Workers × WorkerBudget never oversubscribes the machine.
	WorkerBudget int
	// QueueDepth bounds the job queue (default 256); submissions beyond it
	// fail fast with ErrQueueFull.
	QueueDepth int
	// CacheSize bounds the problem/preconditioner cache entries
	// (default 64).
	CacheSize int
	// HistoryLimit bounds retained finished jobs (default 512); older
	// finished jobs are forgotten and their IDs return 404.
	HistoryLimit int
	// LatencyWindow sizes the latency sample for p50/p99 (default 1024).
	LatencyWindow int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = max(1, runtime.GOMAXPROCS(0)/c.Workers)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.HistoryLimit <= 0 {
		c.HistoryLimit = 512
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	return c
}

// Service runs solves on a bounded worker pool with a problem cache.
type Service struct {
	cfg   Config
	queue chan *Job
	cache *cache
	lat   *latencyRing

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // finished job IDs in completion order, for eviction
	closed   bool

	nextID     atomic.Int64
	running    atomic.Int64
	jobsDone   atomic.Int64
	jobsFailed atomic.Int64
	totalIters atomic.Int64
	solvesCSR  atomic.Int64
	solvesDIA  atomic.Int64

	started time.Time
	wg      sync.WaitGroup
}

// New starts a service with cfg's worker pool. Call Close to drain and stop
// it.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		cache:   newCache(cfg.CacheSize),
		lat:     newLatencyRing(cfg.LatencyWindow),
		jobs:    make(map[string]*Job),
		started: time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a solve, returning its job handle without
// waiting. It fails fast with ErrQueueFull when the bounded queue is at
// capacity.
func (s *Service) Submit(req SolveRequest) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	job := &Job{
		req:        req,
		done:       make(chan struct{}),
		state:      JobQueued,
		enqueuedAt: time.Now(),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	job.id = fmt.Sprintf("j-%06d", s.nextID.Add(1))
	select {
	case s.queue <- job:
		s.jobs[job.id] = job
		s.mu.Unlock()
		return job, nil
	default:
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Solve submits req and waits for completion (or ctx cancellation — the
// solve itself keeps running; only the wait is abandoned). A job-level
// failure is returned as a non-nil error alongside the finished view,
// which still carries any partial result.
func (s *Service) Solve(ctx context.Context, req SolveRequest) (JobView, error) {
	job, err := s.Submit(req)
	if err != nil {
		return JobView{}, err
	}
	select {
	case <-job.Done():
		v := s.viewOf(job)
		if v.State == JobFailed {
			return v, fmt.Errorf("service: job %s failed: %s", v.ID, v.Error)
		}
		return v, nil
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// viewOf snapshots a job the caller already holds — unlike Job(id) it
// cannot miss, even if the job has aged out of the lookup history.
func (s *Service) viewOf(job *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return job.view(time.Now())
}

// Job snapshots a job by ID.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(time.Now()), true
}

// Stats snapshots the service health counters.
func (s *Service) Stats() Stats {
	hits, misses := s.cache.hits.Load(), s.cache.misses.Load()
	st := Stats{
		Workers:         s.cfg.Workers,
		WorkerBudget:    s.cfg.WorkerBudget,
		QueueDepth:      len(s.queue),
		QueueCap:        s.cfg.QueueDepth,
		Running:         int(s.running.Load()),
		JobsDone:        s.jobsDone.Load(),
		JobsFailed:      s.jobsFailed.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEntries:    s.cache.len(),
		TotalIterations: s.totalIters.Load(),
		SolvesCSR:       s.solvesCSR.Load(),
		SolvesDIA:       s.solvesDIA.Load(),
		LatencyP50:      s.lat.quantile(0.50),
		LatencyP99:      s.lat.quantile(0.99),
		UptimeSeconds:   time.Since(s.started).Seconds(),
	}
	if total := hits + misses; total > 0 {
		st.CacheHitRate = float64(hits) / float64(total)
	}
	return st
}

// Close stops accepting jobs, drains the queue, and waits for in-flight
// solves to finish.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// worker owns one reusable scalar CG workspace and one block workspace and
// processes jobs until the queue closes: the steady-state solve path
// allocates only the per-job solution vector(s).
func (s *Service) worker() {
	defer s.wg.Done()
	ws := cg.NewWorkspace(0)
	bws := cg.NewBlockWorkspace(0, 0)
	for job := range s.queue {
		s.runJob(job, ws, bws)
	}
}

func (s *Service) transition(job *Job, state JobState, result *JobResult, err error) {
	now := time.Now()
	s.mu.Lock()
	job.state = state
	switch state {
	case JobRunning:
		job.startedAt = now
	case JobDone, JobFailed:
		job.finishedAt = now
		job.result = result
		job.err = err
		s.finished = append(s.finished, job.id)
		for len(s.finished) > s.cfg.HistoryLimit {
			delete(s.jobs, s.finished[0])
			s.finished = s.finished[1:]
		}
	}
	s.mu.Unlock()
	if state == JobDone || state == JobFailed {
		if state == JobDone {
			s.jobsDone.Add(1)
		} else {
			s.jobsFailed.Add(1)
		}
		s.lat.add(now.Sub(job.enqueuedAt).Seconds())
		close(job.done)
	}
}

// runJob resolves the problem (via the cache when the request is keyed),
// checks out a preconditioner, and solves into fresh solution vector(s)
// using the worker's scratch workspaces. A batched request (multiple
// right-hand sides) runs as one job against one cache entry and one
// preconditioner checkout: the block solve shares every matrix traversal
// across the batch and reports per-RHS results.
func (s *Service) runJob(job *Job, ws *cg.Workspace, bws *cg.BlockWorkspace) {
	s.running.Add(1)
	defer s.running.Add(-1)
	s.transition(job, JobRunning, nil, nil)

	var (
		sys   core.System
		plate *fem.Plate
		pc    precond.Preconditioner
		iv    eigen.Interval
		name  string
		entry *cacheEntry // non-nil on the cached path
	)
	if key := job.req.cacheKey(); key != "" {
		// existed=false only for the requester that created the entry; every
		// later requester (even one blocking on the first build in once.Do)
		// reuses the assembled system and estimated interval.
		var existed bool
		entry, existed = s.cache.get(key)
		entry.once.Do(func() { entry.build(&job.req) })
		if entry.err != nil {
			s.cache.drop(entry)
			s.transition(job, JobFailed, nil, entry.err)
			return
		}
		s.mu.Lock()
		job.cacheHit = existed
		s.mu.Unlock()
		sys, plate, iv, name = entry.sys, entry.plate, entry.interval, entry.precond
		var cerr error
		pc, cerr = entry.checkout()
		if cerr != nil {
			s.transition(job, JobFailed, nil, fmt.Errorf("service: preconditioner rebuild failed for %s: %w", key, cerr))
			return
		}
		defer entry.release(pc)
	} else {
		var err error
		sys, plate, err = job.req.assemble()
		if err != nil {
			s.transition(job, JobFailed, nil, err)
			return
		}
		cfg, err := job.req.Solver.config(job.req.Plate != nil)
		if err != nil {
			s.transition(job, JobFailed, nil, err)
			return
		}
		pc, _, iv, err = core.BuildPreconditioner(sys, cfg)
		if err != nil {
			s.transition(job, JobFailed, nil, err)
			return
		}
		name = pc.Name()
	}

	// Resolve the matvec backend against the assembled matrix: the policy
	// comes from the request ("auto" probes the structure). On the cached
	// path both the probe decision and the DIA conversion live in the
	// entry, so repeated solves of a cached problem neither rescan nor
	// re-convert.
	policy, err := job.req.Solver.backend()
	if err != nil {
		s.transition(job, JobFailed, nil, err)
		return
	}
	var backend core.Backend
	if entry != nil {
		backend = entry.resolveBackend(policy)
	} else {
		backend = core.ChooseBackend(sys.K, policy)
	}
	var op sparse.Operator = sys.K
	if backend == core.BackendDIA {
		var dia *sparse.DIA
		var derr error
		if entry != nil {
			dia, derr = entry.getDIA()
		} else {
			dia, derr = sparse.NewDIAFromCSR(sys.K)
		}
		if derr != nil {
			s.transition(job, JobFailed, nil, derr)
			return
		}
		op = dia
	}

	spec := job.req.Solver
	opts := cg.Options{
		Tol:            spec.Tol,
		RelResidualTol: spec.RelResidualTol,
		MaxIter:        spec.MaxIter,
		Workers:        s.cfg.WorkerBudget,
	}
	if opts.Tol <= 0 && opts.RelResidualTol <= 0 {
		opts.Tol = 1e-6
	}
	fs, ferr := job.req.rhsCols(sys)
	if ferr != nil {
		s.transition(job, JobFailed, nil, ferr)
		return
	}

	if backend == core.BackendDIA {
		s.solvesDIA.Add(1)
	} else {
		s.solvesCSR.Add(1)
	}
	var res *JobResult
	if job.req.batchSize() > 1 {
		res, err = s.runBlock(job, op, plate, pc, fs, opts, bws)
	} else {
		res, err = s.runScalar(job, op, plate, pc, fs[0], opts, ws)
	}
	res.Precond = name
	res.Backend = backend.String()
	res.IntervalLo, res.IntervalHi = iv.Lo, iv.Hi
	if err != nil {
		s.transition(job, JobFailed, res, err)
		return
	}
	s.transition(job, JobDone, res, nil)
}

// runScalar is the single-RHS solve path. op is the backend-resolved form
// of the system matrix.
func (s *Service) runScalar(job *Job, op sparse.Operator, plate *fem.Plate, pc precond.Preconditioner, f []float64, opts cg.Options, ws *cg.Workspace) (*JobResult, error) {
	n, _ := op.Dims()
	u := make([]float64, n)
	st, err := cg.SolveInto(u, op, f, pc, opts, ws)
	s.totalIters.Add(int64(st.Iterations))

	res := &JobResult{
		Converged:     st.Converged,
		Iterations:    st.Iterations,
		MatVecs:       st.MatVecs,
		PrecondApps:   st.PrecondApps,
		InnerProducts: st.InnerProducts,
		FinalUDiff:    st.FinalUDiff,
		FinalRelRes:   st.FinalRelRes,
		RHS:           1,
	}
	if !job.req.OmitSolution {
		res.U = u
		res.Nodes, res.NodeU, res.NodeV = plateDisplacements(plate, u)
	}
	return res, err
}

// runBlock is the batched solve path: one block CG run for all right-hand
// sides, per-RHS results split out afterwards. op is the backend-resolved
// form of the system matrix.
func (s *Service) runBlock(job *Job, op sparse.Operator, plate *fem.Plate, pc precond.Preconditioner, fs [][]float64, opts cg.Options, bws *cg.BlockWorkspace) (*JobResult, error) {
	n, _ := op.Dims()
	u := vec.NewMulti(n, len(fs))
	st, err := cg.SolveBlockInto(u, op, vec.MultiFromCols(fs), pc, opts, bws)
	s.totalIters.Add(int64(st.Iterations))

	res := &JobResult{
		Converged:     st.Converged,
		Iterations:    st.Iterations,
		MatVecs:       st.SpMMs,
		PrecondApps:   st.BlockPrecondApps,
		InnerProducts: st.InnerProducts,
		RHS:           st.RHS,
		Cases:         make([]CaseResult, st.RHS),
	}
	for j := range res.Cases {
		c := &res.Cases[j]
		cs := st.Cols[j]
		c.Converged = cs.Converged
		c.Iterations = cs.Iterations
		c.FinalUDiff = cs.FinalUDiff
		c.FinalRelRes = cs.FinalRelRes
		if st.ColErrs[j] != nil {
			c.Error = st.ColErrs[j].Error()
		}
		res.FinalUDiff = max(res.FinalUDiff, cs.FinalUDiff)
		res.FinalRelRes = max(res.FinalRelRes, cs.FinalRelRes)
		if !job.req.OmitSolution {
			c.U = append([]float64(nil), u.Col(j)...)
			c.Nodes, c.NodeU, c.NodeV = plateDisplacements(plate, c.U)
		}
	}
	return res, err
}

// plateDisplacements maps a colored-ordering solution back to per-node
// displacements; nil for non-plate problems.
func plateDisplacements(plate *fem.Plate, u []float64) (nodes []int, nu, nv []float64) {
	if plate == nil {
		return nil, nil, nil
	}
	natural := plate.UncolorSolution(u)
	nodes = plate.Free
	nu = make([]float64, len(plate.Free))
	nv = make([]float64, len(plate.Free))
	for k := range plate.Free {
		nu[k] = natural[2*k]
		nv[k] = natural[2*k+1]
	}
	return nodes, nu, nv
}
