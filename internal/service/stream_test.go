package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// hardEasyBatch is the streaming fixture: one hard load case (full
// traction) plus several near-zero ones that converge almost immediately
// under the absolute ‖u^{k+1}−u^k‖_∞ tolerance — so per-case results must
// surface long before the hard column finishes.
func hardEasyBatch(easy int) SolveRequest {
	tr := make([]float64, 1+easy)
	tr[0] = 1
	for i := 1; i < len(tr); i++ {
		tr[i] = 1e-9
	}
	return SolveRequest{
		Plate:        &PlateSpec{Rows: 40, Cols: 40, Tractions: tr},
		Solver:       SolverSpec{M: 0, Tol: 1e-9},
		OmitSolution: true,
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data []byte
}

// readSSE parses events off an SSE stream until the stream closes.
func readSSE(t *testing.T, r *bufio.Reader, events chan<- sseEvent) {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			close(events)
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && ev.name != "":
			events <- ev
			ev = sseEvent{}
		}
	}
}

// TestSSEStreamsEarlyCases is the end-to-end acceptance test: a batched
// solve with one slow and N fast load cases must deliver at least one
// per-case result over SSE before the job completes, and the finished
// job's recorded plan must match the planner's offline decision for the
// same request.
func TestSSEStreamsEarlyCases(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const easy = 5
	req := hardEasyBatch(easy)
	resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: req, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var accepted JobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	hreq, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+accepted.ID, nil)
	hreq.Header.Set("Accept", "text/event-stream")
	sresp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	events := make(chan sseEvent, 64)
	go readSSE(t, bufio.NewReader(sresp.Body), events)

	var caseEvents []CaseEvent
	var done *JobView
	sawCaseBeforeDone := false
	deadline := time.After(60 * time.Second)
	for done == nil {
		select {
		case ev, open := <-events:
			if !open {
				t.Fatal("stream closed without a done event")
			}
			switch ev.name {
			case "case":
				var ce CaseEvent
				if err := json.Unmarshal(ev.data, &ce); err != nil {
					t.Fatalf("bad case event %s: %v", ev.data, err)
				}
				caseEvents = append(caseEvents, ce)
			case "done":
				var v JobView
				if err := json.Unmarshal(ev.data, &v); err != nil {
					t.Fatalf("bad done event %s: %v", ev.data, err)
				}
				done = &v
				sawCaseBeforeDone = len(caseEvents) > 0
			}
		case <-deadline:
			t.Fatalf("no done event after 60s (got %d case events)", len(caseEvents))
		}
	}

	if !sawCaseBeforeDone {
		t.Fatal("no per-case result arrived before the job completed")
	}
	if len(caseEvents) != 1+easy {
		t.Fatalf("streamed %d case events, want %d", len(caseEvents), 1+easy)
	}
	// The first streamed case must be one of the easy columns, surfaced in
	// fewer iterations than the hard column took in total.
	first := caseEvents[0]
	if first.Case == 0 {
		t.Fatalf("hard case streamed first")
	}
	hard := done.Result.Cases[0]
	if !hard.Converged {
		t.Fatalf("hard case did not converge: %+v", hard)
	}
	if first.Result.Iterations >= hard.Iterations {
		t.Fatalf("first streamed case took %d iterations, not fewer than the hard case's %d",
			first.Result.Iterations, hard.Iterations)
	}
	if done.State != JobDone || done.CasesDone != 1+easy {
		t.Fatalf("done view: state=%s cases_done=%d", done.State, done.CasesDone)
	}

	// Acceptance: the job's recorded plan equals the planner's offline
	// decision for the same request.
	if done.Result.Plan == nil {
		t.Fatal("JobResult.Plan missing")
	}
	offline, err := s.PlanRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*done.Result.Plan, offline) {
		t.Fatalf("executed plan %+v != offline plan %+v", *done.Result.Plan, offline)
	}

	st := s.Stats()
	if st.TilesExecuted == 0 {
		t.Fatal("stats: no tiles recorded")
	}
}

// TestWatchChunkedJSONFallback: ?watch=1 streams the same events as JSON
// lines for clients without SSE plumbing, including the full replay when
// the watcher attaches after completion.
func TestWatchChunkedJSONFallback(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := hardEasyBatch(3)
	resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: req})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	// The job is already finished: the watch stream must replay all four
	// cases and then the terminal view.
	wresp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + v.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if ct := wresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	sc := bufio.NewScanner(wresp.Body)
	var cases, dones int
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad watch line %s: %v", line, err)
		}
		if _, ok := probe["done"]; ok {
			dones++
			continue
		}
		cases++
	}
	if cases != 4 || dones != 1 {
		t.Fatalf("watch replay: %d case lines + %d done lines, want 4 + 1", cases, dones)
	}
}

// TestPlanEndpointAndTiling: POST /v1/plan reports the tiling a wide batch
// will run with, and the executed job both matches it and solves every
// case correctly across tile boundaries.
func TestPlanEndpointAndTiling(t *testing.T) {
	// A tile budget sized so the 20×20 plate (n=760) tiles at width 8.
	s := New(Config{Workers: 1, TileBudgetBytes: 8 * 760 * 48})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const cases = 20
	tr := make([]float64, cases)
	for i := range tr {
		tr[i] = float64(i+1) / 4
	}
	req := SolveRequest{
		Plate:  &PlateSpec{Rows: 20, Cols: 20, Tractions: tr},
		Solver: SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-8},
	}

	resp, body := postJSON(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", resp.StatusCode, body)
	}
	var info PlanInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Tiles) < 2 {
		t.Fatalf("expected a multi-tile plan for s=%d, got tiles %v", cases, info.Tiles)
	}
	covered := 0
	for _, tile := range info.Tiles {
		covered += len(tile)
	}
	if covered != cases {
		t.Fatalf("plan tiles cover %d of %d cases", covered, cases)
	}

	resp, body = postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: req})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Result == nil || v.Result.Plan == nil {
		t.Fatal("result missing plan")
	}
	if !reflect.DeepEqual(*v.Result.Plan, info) {
		t.Fatalf("executed plan %+v != /v1/plan %+v", *v.Result.Plan, info)
	}
	if len(v.Result.Cases) != cases {
		t.Fatalf("%d case results, want %d", len(v.Result.Cases), cases)
	}
	// Tractions scale the one plate RHS linearly, so every case's solution
	// is the first case's scaled; converging across tile boundaries must
	// not perturb that.
	base := v.Result.Cases[0]
	if !base.Converged {
		t.Fatal("case 0 did not converge")
	}
	for j, c := range v.Result.Cases {
		if !c.Converged {
			t.Fatalf("case %d did not converge: %+v", j, c)
		}
		scale := tr[j] / tr[0]
		for i := range c.U {
			want := scale * base.U[i]
			if diff := c.U[i] - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("case %d: u[%d] = %g, want %g (scaled case 0)", j, i, c.U[i], want)
			}
		}
	}
	if got := s.Stats().TilesExecuted; got != int64(len(info.Tiles)) {
		t.Fatalf("stats tiles_executed = %d, want %d", got, len(info.Tiles))
	}
}

// TestCancelHTTP: DELETE /v1/jobs/{id} aborts a running job; the job
// finishes as failed with a cancellation error instead of running to
// completion.
func TestCancelHTTP(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// A hard job: plain CG, tight tolerance, big plate.
	req := SolveRequest{
		Plate:  &PlateSpec{Rows: 60, Cols: 60},
		Solver: SolverSpec{M: 0, Tol: 1e-14},
	}
	resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: req, Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}

	dreq, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+v.ID, nil)
	dresp, err := srv.Client().Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		view, ok := s.Job(v.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if view.State == JobDone {
			t.Fatal("canceled job completed successfully")
		}
		if view.State == JobFailed {
			if !strings.Contains(view.Error, "canceled") {
				t.Fatalf("failed with %q, want a cancellation error", view.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after cancel", view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSyncDisconnectCancelsJob: a synchronous /v1/solve whose client
// disconnects mid-solve must not leak the running job — the request
// context propagates into the solve loop and the job fails as canceled.
func TestSyncDisconnectCancelsJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := SolveRequest{
		Plate:  &PlateSpec{Rows: 60, Cols: 60},
		Solver: SolverSpec{M: 0, Tol: 1e-14},
	}
	b, err := json.Marshal(solveHTTPRequest{SolveRequest: req})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	hreq, _ := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/solve", bytes.NewReader(b))
	hreq.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := srv.Client().Do(hreq)
		errc <- err
	}()

	// Wait until the solve is actually running, then drop the client.
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("expected the canceled request to error")
	}

	// The running job must terminate promptly as failed, not run to
	// completion or leak.
	deadline = time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.JobsFailed >= 1 && st.Running == 0 {
			break
		}
		if st.JobsDone >= 1 {
			t.Fatal("disconnected sync job ran to completion")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job leaked: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
