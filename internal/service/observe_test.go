package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpoint: GET /metrics serves the engine registry in
// Prometheus text exposition format with the counters the ISSUE names, and
// every response carries a request id.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: plateReq(10, 10, 2)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("metrics content type %q", ct)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("response missing X-Request-Id")
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE repro_jobs_total counter",
		`repro_jobs_total{state="done"} 1`,
		"repro_cache_misses_total 1",
		"# TYPE repro_case_iterations histogram",
		"repro_case_iterations_count 1",
		"# TYPE repro_queue_depth gauge",
		"repro_stream_subscribers 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// An incoming request id is honored, not replaced.
	req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
	req.Header.Set("X-Request-Id", "caller-7")
	resp2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "caller-7" {
		t.Fatalf("request id not echoed: %q", got)
	}
}

// TestTraceEndpointHTTP: a finished job's stage timeline is served at
// GET /v1/jobs/{id}/trace, replays identically on a second fetch, and an
// unknown id is a 404.
func TestTraceEndpointHTTP(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: plateReq(12, 12, 3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	mustUnmarshal(t, body, &v)

	get := func() TraceInfo {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + v.ID + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace status %d", resp.StatusCode)
		}
		var ti TraceInfo
		if err := json.NewDecoder(resp.Body).Decode(&ti); err != nil {
			t.Fatal(err)
		}
		return ti
	}
	ti := get()
	if ti.JobID != v.ID || ti.State != JobDone {
		t.Fatalf("trace header %s/%s, want %s/done", ti.JobID, ti.State, v.ID)
	}
	if len(ti.Spans) == 0 || ti.Spans[0].Name != "queue" {
		t.Fatalf("trace spans: %+v", ti.Spans)
	}
	var sum float64
	for _, sp := range ti.Spans {
		sum += sp.DurationSeconds
	}
	if sum > ti.TotalSeconds*(1+1e-9) {
		t.Fatalf("span durations sum to %gs > total %gs", sum, ti.TotalSeconds)
	}
	if len(ti.Convergence) == 0 {
		t.Fatal("trace has no convergence samples")
	}

	// Replay: the timeline of a finished job is stable across fetches.
	again := get()
	if again.TotalSeconds != ti.TotalSeconds || len(again.Spans) != len(ti.Spans) {
		t.Fatal("finished trace drifted between fetches")
	}

	nf, err := srv.Client().Get(srv.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", nf.StatusCode)
	}
}

// TestStreamSubscribersDecrementOnDisconnect: the stream_subscribers gauge
// rises when an SSE watcher attaches and falls back when the client drops
// the connection mid-job — the handler must notice the severed peer, not
// hold the subscription until the job ends.
func TestStreamSubscribersDecrementOnDisconnect(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := postJSON(t, srv, "/v1/solve", solveHTTPRequest{SolveRequest: slowReq(), Async: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var v JobView
	mustUnmarshal(t, body, &v)
	// Whatever happens below, don't leave the slow job running.
	defer s.Cancel(v.ID)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hreq, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/jobs/"+v.ID, nil)
	hreq.Header.Set("Accept", "text/event-stream")
	sresp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (stats %+v)", what, s.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("subscriber to attach", func() bool { return s.Stats().StreamSubscribers == 1 })

	// Drop the client. The gauge must fall while the job is still live.
	cancel()
	waitFor("subscriber to detach", func() bool { return s.Stats().StreamSubscribers == 0 })
	if view, ok := s.Job(v.ID); !ok || view.State == JobDone {
		t.Fatalf("job state %+v — disconnect test raced job completion; make slowReq slower", view)
	}
}
