package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines — mixed
// registration (same names, so instruments are shared) and updates — while
// a reader renders the exposition. Run under -race this is the memory-model
// guarantee for the whole package.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 8
		perG       = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test_ops_total", "ops")
			ga := r.Gauge("test_temp", "temp")
			h := r.Histogram("test_lat_seconds", "lat", []float64{0.1, 1, 10})
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i%20) / 2)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WriteProm(&sb); err != nil {
						t.Errorf("WriteProm: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("test_ops_total", "ops").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("test_temp", "temp").Value(); got != goroutines*perG {
		t.Errorf("gauge = %g, want %d", got, goroutines*perG)
	}
	h := r.Histogram("test_lat_seconds", "lat", []float64{0.1, 1, 10})
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucket semantics: a
// sample exactly on an upper bound lands in that bucket, just above it
// spills to the next, and everything past the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "bounds", []float64{1, 2, 5})

	cases := []struct {
		v      float64
		bucket int // index into the 4 buckets (last = +Inf)
	}{
		{0.5, 0},
		{1, 0},                    // exactly on the bound: inclusive
		{math.Nextafter(1, 2), 1}, // just above: next bucket
		{2, 1},
		{4.999, 2},
		{5, 2},
		{5.001, 3}, // +Inf overflow
		{1e9, 3},
	}
	want := [4]int64{}
	for _, c := range cases {
		h.Observe(c.v)
		want[c.bucket]++
	}
	for i := range h.buckets {
		if got := h.buckets[i].Load(); got != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum float64
	for _, c := range cases {
		sum += c.v
	}
	if h.Sum() != sum {
		t.Errorf("sum = %g, want %g", h.Sum(), sum)
	}
}

// TestHistogramRejectsBadBuckets: non-ascending bounds are a programming
// error and must fail loudly at registration, not corrupt exposition later.
func TestHistogramRejectsBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "x", []float64{1, 1})
}

// TestCounterIgnoresNegative: counters are monotone by contract.
func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

// TestWritePromGolden locks the exposition byte for byte: family ordering
// (sorted by name), HELP/TYPE lines, label rendering and escaping,
// cumulative histogram buckets with _sum/_count, and func-backed series.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("zz_jobs_total", "Finished jobs.", Label{Key: "state", Value: "done"}).Add(3)
	r.LabeledCounter("zz_jobs_total", "Finished jobs.", Label{Key: "state", Value: "failed"}).Add(1)
	r.Gauge("aa_queue_depth", "Jobs waiting.").Set(2)
	r.GaugeFunc("mm_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	r.LabeledGauge("esc_gauge", `Help with \ and newline
end.`, Label{Key: "path", Value: `a"b\c`}).Set(1)
	// Exactly-representable binary fractions, so the rendered _sum is
	// byte-stable.
	h := r.Histogram("hh_latency_seconds", "Latency.", []float64{0.25, 0.5})
	h.Observe(0.125)
	h.Observe(0.25) // on the bound: counts in le="0.25"
	h.Observe(0.375)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_queue_depth Jobs waiting.
# TYPE aa_queue_depth gauge
aa_queue_depth 2
# HELP esc_gauge Help with \\ and newline\nend.
# TYPE esc_gauge gauge
esc_gauge{path="a\"b\\c"} 1
# HELP hh_latency_seconds Latency.
# TYPE hh_latency_seconds histogram
hh_latency_seconds_bucket{le="0.25"} 2
hh_latency_seconds_bucket{le="0.5"} 3
hh_latency_seconds_bucket{le="+Inf"} 4
hh_latency_seconds_sum 9.75
hh_latency_seconds_count 4
# HELP mm_uptime_seconds Uptime.
# TYPE mm_uptime_seconds gauge
mm_uptime_seconds 1.5
# HELP zz_jobs_total Finished jobs.
# TYPE zz_jobs_total counter
zz_jobs_total{state="done"} 3
zz_jobs_total{state="failed"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistryTypeConflictPanics: one name, two types is a wiring bug.
func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}
