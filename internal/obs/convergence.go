package obs

import "sync"

// Sample is one per-iteration convergence observation: right-hand side
// Case was at iteration Iter with the paper's stopping quantity UDiff
// (‖u^{k+1}−u^k‖_∞) and relative residual RelRes (‖r‖₂/‖f‖₂).
type Sample struct {
	Case   int     `json:"case"`
	Iter   int     `json:"iter"`
	UDiff  float64 `json:"udiff"`
	RelRes float64 `json:"relres"`
}

// ConvergenceLog records per-iteration convergence samples in bounded
// memory with no steady-state allocation: the sample buffer is allocated
// once at construction, and when it fills the log decimates in place —
// keeping only samples whose iteration is a multiple of a doubled stride —
// so a run of any length fits the buffer while preserving the overall
// curve shape (early iterations thin out first; the per-case terminal
// values live in the job result regardless).
//
// It implements the solver's per-iteration observer contract
// (cg.Options.Observer): ObserveIteration is called from the solve hot
// loop and must not allocate, which it doesn't — one uncontended mutex and
// an in-capacity append.
type ConvergenceLog struct {
	mu      sync.Mutex
	samples []Sample
	stride  int
}

// DefaultConvergenceSamples is the per-job sample capacity used when the
// caller doesn't size the log.
const DefaultConvergenceSamples = 1024

// NewConvergenceLog returns a log holding at most capacity samples
// (minimum 16; 0 picks DefaultConvergenceSamples). All memory is allocated
// here.
func NewConvergenceLog(capacity int) *ConvergenceLog {
	if capacity <= 0 {
		capacity = DefaultConvergenceSamples
	}
	if capacity < 16 {
		capacity = 16
	}
	return &ConvergenceLog{samples: make([]Sample, 0, capacity), stride: 1}
}

// ObserveIteration records one sample (dropping iterations off the current
// stride). Safe for concurrent use with Samples; zero allocations.
func (l *ConvergenceLog) ObserveIteration(col, iter int, udiff, relres float64) {
	l.mu.Lock()
	if iter%l.stride != 0 {
		l.mu.Unlock()
		return
	}
	for len(l.samples) == cap(l.samples) {
		l.decimate()
	}
	if iter%l.stride != 0 {
		l.mu.Unlock()
		return
	}
	l.samples = append(l.samples, Sample{Case: col, Iter: iter, UDiff: udiff, RelRes: relres})
	l.mu.Unlock()
}

// decimate doubles the stride and compacts the buffer in place, keeping
// only samples on the new stride; if that drops nothing (a caller feeding
// non-consecutive iterations), it falls back to keeping every other sample
// by position so the buffer always shrinks. Caller holds the mutex.
func (l *ConvergenceLog) decimate() {
	l.stride *= 2
	kept := l.samples[:0]
	for _, s := range l.samples {
		if s.Iter%l.stride == 0 {
			kept = append(kept, s)
		}
	}
	if len(kept) == len(l.samples) {
		kept = l.samples[:0]
		for i := 0; i < cap(l.samples); i += 2 {
			kept = append(kept, l.samples[i])
		}
	}
	l.samples = kept
}

// Stride reports the current sampling stride (1 until the first
// decimation).
func (l *ConvergenceLog) Stride() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stride
}

// Samples returns a copy of the recorded curve, in observation order
// (per-case samples interleave as the block solve advances columns in
// lockstep).
func (l *ConvergenceLog) Samples() []Sample {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Sample, len(l.samples))
	copy(out, l.samples)
	return out
}
