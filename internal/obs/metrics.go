// Package obs is the solver's observation substrate: a dependency-free
// metrics registry with Prometheus text exposition, a lightweight span
// tracer recording per-job stage timelines, and a bounded per-iteration
// convergence sampler. The paper's whole method is instrumented measurement
// of an iterative machine — m-step cost models validated against observed
// sweep counts — and this package is what lets the running engine observe
// itself the same way: every counter is an atomic, every histogram a fixed
// bucket array, and the steady-state solve path records without allocating.
//
// The package depends only on the standard library and is imported from
// below (cg defines the Observer interface itself, so the solver kernels
// never see obs); internal/engine wires the three pieces together and
// internal/service exposes them over HTTP.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes the exposition families.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name/value pair attached to a series. Labeled constructors
// take ordered slices rather than maps so exposition is deterministic.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; fine for low-rate gauges).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (upper bounds,
// inclusive, ascending; an implicit +Inf bucket catches the rest). All
// updates are atomic — Observe never locks and never allocates.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable; a binary search would not pay for itself.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// series is one exposition line: a concrete instrument or a func-backed
// read-through (queue depth, uptime — values that already live elsewhere
// and must not be double-bookkept).
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups the series sharing one metric name.
type family struct {
	name, help string
	typ        MetricType
	bounds     []float64 // histogram families only

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Construction (the Counter/Gauge/Histogram calls)
// locks; the returned instruments are lock-free. A Registry is safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family, enforcing that
// every registration of a name agrees on type and buckets. Conflicting
// re-registration is a programming error and panics.
func (r *Registry) family(name, help string, typ MetricType, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, byKey: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	return f
}

// labelKey canonicalizes a label set for series identity.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// add registers s under its label key, or returns the existing series with
// the same labels (so repeated registration hands back one instrument).
func (f *family) add(s *series) *series {
	key := labelKey(s.labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.byKey[key]; ok {
		return old
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, help)
}

// LabeledCounter registers (or returns) the counter series with the given
// labels.
func (r *Registry) LabeledCounter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, TypeCounter, nil)
	s := f.add(&series{labels: labels, c: &Counter{}})
	return s.c
}

// CounterFunc registers a func-backed counter series: fn is read at
// exposition time and must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, TypeCounter, nil)
	f.add(&series{labels: labels, fn: fn})
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.LabeledGauge(name, help)
}

// LabeledGauge registers (or returns) the gauge series with the given
// labels.
func (r *Registry) LabeledGauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, TypeGauge, nil)
	s := f.add(&series{labels: labels, g: &Gauge{}})
	return s.g
}

// GaugeFunc registers a func-backed gauge series, read at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, TypeGauge, nil)
	f.add(&series{labels: labels, fn: fn})
}

// Histogram registers (or returns) a histogram with the given bucket upper
// bounds (ascending; +Inf is implicit). Re-registrations share the first
// registration's buckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, bounds))
		}
	}
	f := r.family(name, help, TypeHistogram, bounds)
	h := &Histogram{bounds: f.bounds, buckets: make([]atomic.Int64, len(f.bounds)+1)}
	s := f.add(&series{labels: labels, h: h})
	return s.h
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// renderLabels formats {k="v",...}, with extra appended after the series
// labels (the histogram "le" bound).
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return formatFloat(v)
}

// formatFloat prints integers without an exponent and everything else with
// %g precision.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteProm renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series in registration order,
// histograms as cumulative _bucket/_sum/_count lines.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		f.mu.Lock()
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		f.mu.Unlock()
		for _, s := range ss {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.h != nil:
		cum := int64(0)
		for i, bound := range s.h.bounds {
			cum += s.h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, Label{"le", formatValue(bound)}), cum); err != nil {
				return err
			}
		}
		cum += s.h.buckets[len(s.h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, Label{"le", "+Inf"}), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatValue(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), s.h.Count())
		return err
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(s.fn()))
		return err
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(s.g.Value()))
		return err
	}
	return nil
}
