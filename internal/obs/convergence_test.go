package obs

import (
	"testing"
)

// TestConvergenceLogRecordsAll: under capacity, every sample is kept at
// stride 1 in observation order.
func TestConvergenceLogRecordsAll(t *testing.T) {
	l := NewConvergenceLog(64)
	for i := 1; i <= 10; i++ {
		l.ObserveIteration(0, i, 1.0/float64(i), 0.5/float64(i))
	}
	s := l.Samples()
	if len(s) != 10 {
		t.Fatalf("samples = %d, want 10", len(s))
	}
	if l.Stride() != 1 {
		t.Fatalf("stride = %d, want 1", l.Stride())
	}
	for i, smp := range s {
		if smp.Iter != i+1 || smp.Case != 0 {
			t.Fatalf("sample[%d] = %+v", i, smp)
		}
	}
}

// TestConvergenceLogDecimates: a run longer than capacity doubles the
// stride and stays within the fixed buffer while keeping the curve's span —
// first iterations thin out, the tail keeps arriving.
func TestConvergenceLogDecimates(t *testing.T) {
	l := NewConvergenceLog(16)
	const iters = 200
	for i := 1; i <= iters; i++ {
		l.ObserveIteration(0, i, 0, 0)
	}
	s := l.Samples()
	if len(s) > 16 {
		t.Fatalf("log exceeded capacity: %d", len(s))
	}
	stride := l.Stride()
	if stride < 2 {
		t.Fatalf("stride = %d, expected decimation", stride)
	}
	for _, smp := range s {
		if smp.Iter%stride != 0 {
			t.Fatalf("sample iter %d off stride %d", smp.Iter, stride)
		}
	}
	// The tail of the run survived decimation.
	last := s[len(s)-1]
	if last.Iter < iters-stride {
		t.Fatalf("last kept iter %d too far from %d (stride %d)", last.Iter, iters, stride)
	}
}

// TestConvergenceLogMultiCase: block solves interleave cases; each case's
// samples keep their own iteration sequence.
func TestConvergenceLogMultiCase(t *testing.T) {
	l := NewConvergenceLog(256)
	for iter := 1; iter <= 20; iter++ {
		for c := 0; c < 4; c++ {
			l.ObserveIteration(c, iter, 0, 0)
		}
	}
	perCase := map[int][]int{}
	for _, smp := range l.Samples() {
		perCase[smp.Case] = append(perCase[smp.Case], smp.Iter)
	}
	if len(perCase) != 4 {
		t.Fatalf("cases = %d, want 4", len(perCase))
	}
	for c, iters := range perCase {
		if len(iters) != 20 {
			t.Fatalf("case %d samples = %d, want 20", c, len(iters))
		}
		for i, it := range iters {
			if it != i+1 {
				t.Fatalf("case %d iteration order broken: %v", c, iters)
			}
		}
	}
}

// TestObserveIterationZeroAlloc is the telemetry-tap contract: the solve
// hot loop calls ObserveIteration every iteration, so it must never
// allocate — including when the buffer is full and decimation compacts in
// place.
func TestObserveIterationZeroAlloc(t *testing.T) {
	l := NewConvergenceLog(32)
	iter := 0
	allocs := testing.AllocsPerRun(5000, func() {
		iter++
		l.ObserveIteration(0, iter, 1e-3, 1e-4)
	})
	if allocs != 0 {
		t.Fatalf("ObserveIteration allocates %g per call, want 0", allocs)
	}
}
