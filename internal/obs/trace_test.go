package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTraceTimeline: spans snapshot in start order with non-negative
// offsets and durations, worker ids and attributes intact, and the whole
// view is stable after Finish (a finished trace replays forever).
func TestTraceTimeline(t *testing.T) {
	tr := NewTrace("j-000001")
	if tr.ID() != "j-000001" {
		t.Fatalf("id = %q", tr.ID())
	}

	q := tr.Start("queue")
	q.End()
	s1 := tr.Start("assemble").SetWorker(2)
	s1.End()
	s2 := tr.Start("tile").SetWorker(2).SetIterations(37).SetAttr("tile", 0)
	s2.End()
	tr.Finish()

	v1 := tr.View()
	if len(v1.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(v1.Spans))
	}
	names := []string{"queue", "assemble", "tile"}
	for i, sp := range v1.Spans {
		if sp.Name != names[i] {
			t.Errorf("span[%d] = %q, want %q", i, sp.Name, names[i])
		}
		if sp.StartSeconds < 0 || sp.DurationSeconds < 0 {
			t.Errorf("span %q has negative timing: %+v", sp.Name, sp)
		}
		if i > 0 && sp.StartSeconds < v1.Spans[i-1].StartSeconds {
			t.Errorf("span %q starts before its predecessor", sp.Name)
		}
	}
	if v1.Spans[0].Worker != -1 {
		t.Errorf("queue span worker = %d, want -1 (outside the pool)", v1.Spans[0].Worker)
	}
	if v1.Spans[2].Worker != 2 || v1.Spans[2].Iterations != 37 {
		t.Errorf("tile span lost worker/iterations: %+v", v1.Spans[2])
	}
	if v1.Spans[2].Attrs["tile"] != 0 {
		t.Errorf("tile span attrs = %v", v1.Spans[2].Attrs)
	}

	// Replay: a finished trace's view does not drift with the clock.
	time.Sleep(5 * time.Millisecond)
	v2 := tr.View()
	if v1.TotalSeconds != v2.TotalSeconds {
		t.Errorf("finished trace total drifted: %g != %g", v1.TotalSeconds, v2.TotalSeconds)
	}
	if v1.Spans[2].DurationSeconds != v2.Spans[2].DurationSeconds {
		t.Error("finished span duration drifted between views")
	}
}

// TestTraceOpenSpanProvisional: snapshotting a running trace reports open
// spans with "now" as the provisional end, and the durations grow between
// snapshots.
func TestTraceOpenSpanProvisional(t *testing.T) {
	tr := NewTrace("j")
	tr.Start("solve")
	v1 := tr.View()
	time.Sleep(2 * time.Millisecond)
	v2 := tr.View()
	if v2.Spans[0].DurationSeconds <= v1.Spans[0].DurationSeconds {
		t.Errorf("open span did not grow: %g then %g",
			v1.Spans[0].DurationSeconds, v2.Spans[0].DurationSeconds)
	}
	if v2.TotalSeconds <= v1.TotalSeconds {
		t.Error("running trace total did not grow")
	}
}

// TestTraceConcurrent: concurrent span recording and snapshotting is the
// trace endpoint's steady state (workers write, HTTP readers view). Run
// with -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("j")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("stage").SetWorker(g).SetIterations(i)
				sp.SetAttr("i", i)
				sp.End()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = tr.View()
		}
	}()
	wg.Wait()
	tr.Finish()
	if got := len(tr.View().Spans); got != 800 {
		t.Fatalf("spans = %d, want 800", got)
	}
}

// TestSpanEndIdempotent: End twice keeps the first timestamp.
func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace("j")
	sp := tr.Start("s")
	sp.End()
	d1 := tr.View().Spans[0].DurationSeconds
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if d2 := tr.View().Spans[0].DurationSeconds; d2 != d1 {
		t.Fatalf("second End moved the duration: %g != %g", d2, d1)
	}
}
