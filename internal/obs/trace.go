package obs

import (
	"sort"
	"sync"
	"time"
)

// Trace is one job's stage timeline: an append-only sequence of named
// spans (queue wait, cache checkout, assembly, spectral estimation,
// per-tile solves, …) with wall time, worker id and per-span attributes.
// Spans are recorded live from the worker and snapshot at any time from
// other goroutines (the trace endpoint serves running jobs too); a
// finished trace is replayable forever — like the case-event stream, it
// outlives the job's completion.
type Trace struct {
	mu    sync.Mutex
	id    string
	start time.Time
	ended time.Time // zero while the job is still running
	spans []*Span
}

// Span is one stage of a trace. Mutate only through its methods; every
// field is guarded by the owning trace's mutex so concurrent snapshots see
// consistent state.
type Span struct {
	tr         *Trace
	name       string
	start, end time.Time
	worker     int
	iterations int
	attrs      map[string]any
}

// NewTrace starts a trace identified by id (the job id), with its clock
// zero at now.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace's identifier.
func (t *Trace) ID() string { return t.id }

// Start opens a new span. The returned span must be closed with End (or
// EndWith); an unclosed span snapshots with the current time as its
// provisional end.
func (t *Trace) Start(name string) *Span {
	s := &Span{tr: t, name: name, start: time.Now(), worker: -1}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Record appends an already-measured, closed span: a stage whose timing
// was observed outside the trace's live Start/End bracketing (e.g. the
// per-subdomain halo/sweep/reduce breakdown a decomposed solve measures on
// its own ranks and attributes to the trace afterwards). Unlike live
// spans, recorded spans may overlap one another — concurrent stages sum
// past wall time by design.
func (t *Trace) Record(name string, start time.Time, d time.Duration) *Span {
	s := &Span{tr: t, name: name, start: start, end: start.Add(d), worker: -1}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Finish marks the whole trace complete (sets the total duration's end
// point). Idempotent.
func (t *Trace) Finish() {
	t.mu.Lock()
	if t.ended.IsZero() {
		t.ended = time.Now()
	}
	t.mu.Unlock()
}

// End closes the span at the current time.
func (s *Span) End() {
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// SetWorker records the worker goroutine that ran the stage.
func (s *Span) SetWorker(w int) *Span {
	s.tr.mu.Lock()
	s.worker = w
	s.tr.mu.Unlock()
	return s
}

// SetIterations records the stage's iteration count (CG iterations for
// solve spans).
func (s *Span) SetIterations(n int) *Span {
	s.tr.mu.Lock()
	s.iterations = n
	s.tr.mu.Unlock()
	return s
}

// SetAttr attaches one key/value attribute (strings, ints, floats, bools —
// anything encoding/json renders).
func (s *Span) SetAttr(key string, value any) *Span {
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.tr.mu.Unlock()
	return s
}

// SpanView is the JSON snapshot of one span. Times are offsets from the
// trace start, in seconds, so a timeline renders without clock context.
type SpanView struct {
	Name string `json:"name"`
	// StartSeconds is the span's offset from the trace start.
	StartSeconds float64 `json:"start_seconds"`
	// DurationSeconds is the span's wall time (up to "now" for a span still
	// open when the snapshot was taken).
	DurationSeconds float64 `json:"duration_seconds"`
	// Worker is the worker goroutine id that ran the stage (-1 when the
	// stage ran outside the worker pool, e.g. the queue wait).
	Worker int `json:"worker"`
	// Iterations is the stage's iteration count (solve spans), 0 otherwise.
	Iterations int `json:"iterations,omitempty"`
	// Attrs carries stage-specific attributes (the planner's decision, tile
	// case ranges, cache hit/miss).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceView is the JSON snapshot of a trace: the spans in start order.
type TraceView struct {
	ID string `json:"id"`
	// TotalSeconds is trace start → Finish (or → now while running).
	TotalSeconds float64    `json:"total_seconds"`
	Spans        []SpanView `json:"spans"`
}

// View snapshots the trace. Safe to call at any time, from any goroutine,
// any number of times.
func (t *Trace) View() TraceView {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.ended
	if end.IsZero() {
		end = now
	}
	v := TraceView{
		ID:           t.id,
		TotalSeconds: end.Sub(t.start).Seconds(),
		Spans:        make([]SpanView, 0, len(t.spans)),
	}
	for _, s := range t.spans {
		send := s.end
		if send.IsZero() {
			send = now
		}
		sv := SpanView{
			Name:            s.name,
			StartSeconds:    s.start.Sub(t.start).Seconds(),
			DurationSeconds: send.Sub(s.start).Seconds(),
			Worker:          s.worker,
			Iterations:      s.iterations,
		}
		if len(s.attrs) > 0 {
			sv.Attrs = make(map[string]any, len(s.attrs))
			for k, val := range s.attrs {
				sv.Attrs[k] = val
			}
		}
		v.Spans = append(v.Spans, sv)
	}
	// Spans are appended in Start order, which is already chronological for
	// a single worker; sort defensively so concurrent stages (queue span
	// started by the submitter) still render as a timeline.
	sort.SliceStable(v.Spans, func(i, j int) bool {
		return v.Spans[i].StartSeconds < v.Spans[j].StartSeconds
	})
	return v
}
