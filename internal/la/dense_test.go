package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v, want 7", m.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Fatal("Clone aliases data")
	}
}

func TestFromRowsAndT(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	mt := m.T()
	if mt.Rows != 2 || mt.Cols != 3 {
		t.Fatalf("T dims %d×%d", mt.Rows, mt.Cols)
	}
	if mt.At(1, 2) != 6 || mt.At(0, 1) != 3 {
		t.Fatalf("T values wrong: %+v", mt)
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %+v, want %+v", c, want)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	s := FromRows([][]float64{{2, 1}, {1, 2}})
	if !s.IsSymmetric(1e-14) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	a := FromRows([][]float64{{2, 1}, {0, 2}})
	if a.IsSymmetric(1e-14) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(1e-14) {
		t.Fatal("non-square matrix reported symmetric")
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{
		{4, 2, 2},
		{2, 5, 3},
		{2, 3, 6},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Check L Lᵀ = A.
	llt := l.Mul(l.T())
	for i := range a.Data {
		if math.Abs(llt.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatalf("LLᵀ != A: %v vs %v", llt.Data, a.Data)
		}
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestSolveSPD(t *testing.T) {
	a := FromRows([][]float64{
		{4, 2, 2},
		{2, 5, 3},
		{2, 3, 6},
	})
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("SolveSPD x = %v, want %v", x, want)
		}
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{0, 2, 1}, // zero pivot forces a row swap
		{1, 1, 1},
		{2, 1, 3},
	})
	want := []float64{3, -1, 2}
	b := a.MulVec(want)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("Solve x = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDet(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-14 {
		t.Fatalf("Det = %v, want 6", f.Det())
	}
	// Row-swap sign.
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	f2, err := FactorLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f2.Det()+1) > 1e-14 {
		t.Fatalf("Det = %v, want -1", f2.Det())
	}
}

// Property: LU solve recovers random solutions of random well-conditioned
// systems (diagonally dominant).
func TestLUSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Add(i, i, rowSum+1) // diagonal dominance
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve matches LU solve on random SPD matrices AᵀA + I.
func TestCholeskyMatchesLUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		g := NewMatrix(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := g.T().Mul(g)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err1 := SolveSPD(a, b)
		x2, err2 := Solve(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range b {
			if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
