// Package la provides the small dense linear algebra needed by the rest of
// the library: element stiffness matrices (6×6), polynomial-coefficient
// normal equations (m×m with m ≤ ~12), and Gram matrices for validation.
// Everything is row-major and sized for "small"; sparse systems live in
// internal/sparse.
package la

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("la: negative dimension %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("la: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// MulVec returns m · x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("la: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns m · b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("la: Mul dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out
}

// IsSymmetric reports whether |m - mᵀ| is elementwise below tol relative to
// the largest entry magnitude.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	var maxAbs float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return true
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol*maxAbs {
				return false
			}
		}
	}
	return true
}

// ErrNotSPD is returned by Cholesky when a non-positive pivot appears.
var ErrNotSPD = errors.New("la: matrix is not symmetric positive definite")

// ErrSingular is returned by the LU solver when a pivot underflows.
var ErrSingular = errors.New("la: matrix is singular to working precision")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ.
// A must be square and is read as symmetric (only the lower triangle is
// accessed). Returns ErrNotSPD on a non-positive pivot.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("la: Cholesky needs square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrNotSPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// CholeskySolve solves A x = b given the Cholesky factor L of A.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("la: CholeskySolve dimension mismatch")
	}
	// Forward: L y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A x = b for symmetric positive definite A.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a square matrix with partial
// pivoting. Returns ErrSingular if a pivot column is entirely (near) zero.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("la: LU needs square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[k*n+j], lu.Data[p*n+j] = lu.Data[p*n+j], lu.Data[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivVal
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A x = b using the factorization.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("la: LU.Solve dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// L y = Pb (unit lower)
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s
	}
	// U x = y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A x = b for general square A via LU with partial pivoting.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
