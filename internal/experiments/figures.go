package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fem"
	"repro/internal/mesh"
)

// Figure1 renders the colored plate of Figure 1: the node colors of a
// rows×cols grid, top row printed first (the paper draws y upward).
func Figure1(rows, cols int) string {
	g := mesh.NewGrid(rows, cols)
	var b strings.Builder
	b.WriteString("Figure 1: plate (triangular elements), R/B/G node coloring\n")
	for i := rows - 1; i >= 0; i-- {
		for j := 0; j < cols; j++ {
			fmt.Fprintf(&b, "%s ", g.ColorOf(i, j))
		}
		b.WriteString("\n")
	}
	b.WriteString("(every triangle of the SW-NE split has three distinct colors)\n")
	return b.String()
}

// Figure2 renders the grid-point stencil actually present in the assembled
// stiffness matrix — the paper's Figure 2 (7 nodes, ≤14 couplings).
func Figure2() (string, error) {
	plate, err := fem.NewPlate(8, 9, fem.Options{})
	if err != nil {
		return "", err
	}
	st := plate.StencilOffsets()
	nodes := map[[2]int]bool{}
	for k := range st {
		nodes[[2]int{k[0], k[1]}] = true
	}
	var b strings.Builder
	b.WriteString("Figure 2: grid point stencil of the assembled plane-stress operator\n")
	for di := 1; di >= -1; di-- {
		for dj := -1; dj <= 1; dj++ {
			switch {
			case di == 0 && dj == 0:
				b.WriteString("  (u,v)* ")
			case nodes[[2]int{di, dj}]:
				b.WriteString("  (u,v)  ")
			default:
				b.WriteString("    .    ")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%d coupled node offsets, max %d nonzeros per equation (paper: at most 14)\n",
		len(nodes), plate.K.MaxRowNNZ())
	return b.String(), nil
}

// FigureAssignment renders a node-to-processor assignment (Figures 3 and
// 5): the owning processor digit per node, "-" for constrained nodes.
func FigureAssignment(title string, g mesh.Grid, constrained mesh.Constraint, p int, strat mesh.Strategy) (string, error) {
	pt, err := mesh.NewPartition(g, constrained, p, strat)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d processors, %s)\n", title, p, strat)
	for i := g.Rows - 1; i >= 0; i-- {
		for j := 0; j < g.Cols; j++ {
			id := g.NodeID(i, j)
			if pt.Owner[id] < 0 {
				b.WriteString("- ")
			} else {
				fmt.Fprintf(&b, "%d ", pt.Owner[id])
			}
		}
		b.WriteString("\n")
	}
	bal := pt.ColorBalance()
	for q := 0; q < p; q++ {
		fmt.Fprintf(&b, "proc %d: %d nodes (R=%d B=%d G=%d), neighbors %v\n",
			q, len(pt.Nodes[q]), bal[q][mesh.Red], bal[q][mesh.Black], bal[q][mesh.Green],
			pt.NeighborProcs(q))
	}
	return b.String(), nil
}

// Figure4 renders the local links a processor uses (6 of the 8
// nearest-neighbor links, matching the stencil's six neighbor directions).
func Figure4() string {
	var b strings.Builder
	b.WriteString("Figure 4: FEM local links used by processor P\n")
	b.WriteString("  NW?   N     NE\n")
	b.WriteString("     \\  |  /\n")
	b.WriteString("  W  -  P  -  E\n")
	b.WriteString("     /  |  \\\n")
	b.WriteString("  SW    S    SE?\n")
	b.WriteString("used: E, W, N, S, NE, SW — the six stencil directions\n")
	b.WriteString("unused: NW, SE (no coupling across the anti-diagonal)\n")
	return b.String()
}

// UsedLinkDirections returns the set of neighbor-processor direction
// vectors a blocks-partitioned machine would use; for the SW–NE split it is
// exactly the six stencil directions (Figure 4's claim, derived from data).
func UsedLinkDirections(g mesh.Grid) []string {
	dirs := map[[2]int]string{
		{0, 1}: "E", {0, -1}: "W", {1, 0}: "N", {-1, 0}: "S",
		{1, 1}: "NE", {-1, -1}: "SW", {1, -1}: "NW", {-1, 1}: "SE",
	}
	used := map[string]bool{}
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			for _, nb := range g.Neighbors(i, j) {
				ni, nj := g.NodeRC(nb)
				di, dj := sign(ni-i), sign(nj-j)
				if name, ok := dirs[[2]int{di, dj}]; ok {
					used[name] = true
				}
			}
		}
	}
	out := make([]string, 0, len(used))
	for d := range used {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// AllFigures renders the complete figure set for the paper's test
// problems.
func AllFigures() (string, error) {
	var b strings.Builder
	b.WriteString(Figure1(6, 6))
	b.WriteString("\n")
	f2, err := Figure2()
	if err != nil {
		return "", err
	}
	b.WriteString(f2)
	b.WriteString("\n")
	g := mesh.NewGrid(6, 6)
	for _, spec := range []struct {
		title string
		p     int
		strat mesh.Strategy
	}{
		{"Figure 3a/5: two-processor assignment", 2, mesh.RowStrips},
		{"Figure 5: five-processor assignment", 5, mesh.ColStrips},
		{"Figure 3b: three-processor assignment", 3, mesh.RowStrips},
	} {
		s, err := FigureAssignment(spec.title, g, mesh.LeftEdgeClamped, spec.p, spec.strat)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
		b.WriteString("\n")
	}
	b.WriteString(Figure4())
	fmt.Fprintf(&b, "stencil directions measured from the mesh: %v\n", UsedLinkDirections(g))
	return b.String(), nil
}
