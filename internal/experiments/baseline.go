package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/splitting"
	"repro/internal/stationary"
)

// BaselineRow compares one solver on the plate problem. Sweeps counts one
// application of the underlying stationary operator, so PCG rows report
// iterations × m (plus the CG overhead column separately).
type BaselineRow struct {
	Method     string
	Iterations int // outer iterations (CG) or sweeps (stationary)
	Sweeps     int // total stationary-operator applications
	Converged  bool
}

// BaselineResult compares the paper's PCG method against the pure
// stationary methods it is built from — the acceleration CG provides on
// top of SSOR is the reason the method exists.
type BaselineResult struct {
	Rows      int
	Cols      int
	Equations int
	Table     []BaselineRow
}

// BaselineStudy solves the rows×cols plate with pure SSOR iteration, pure
// multicolor SOR iteration, plain CG, and the m-step SSOR PCG method.
func BaselineStudy(rows, cols int, tol float64) (BaselineResult, error) {
	plate, err := fem.NewPlate(rows, cols, fem.Options{})
	if err != nil {
		return BaselineResult{}, err
	}
	kc := plate.KColored
	rhs := plate.ColoredRHS()
	start := plate.Ordering.GroupStart[:]
	out := BaselineResult{Rows: rows, Cols: cols, Equations: plate.N()}

	// Pure multicolor SSOR stationary iteration.
	mc, err := splitting.NewSixColorSSOR(kc, start)
	if err != nil {
		return BaselineResult{}, err
	}
	_, st1, err := stationary.Solve(mc, rhs, stationary.Options{Tol: tol, MaxIter: 200000})
	if err != nil {
		return BaselineResult{}, fmt.Errorf("ssor stationary: %w", err)
	}
	out.Table = append(out.Table, BaselineRow{
		Method: "SSOR stationary", Iterations: st1.Sweeps, Sweeps: st1.Sweeps, Converged: st1.Converged,
	})

	// Pure multicolor SOR (forward sweeps only).
	sor, err := stationary.NewMulticolorSOR(kc, 1, start)
	if err != nil {
		return BaselineResult{}, err
	}
	_, st2, err := stationary.Solve(sor, rhs, stationary.Options{Tol: tol, MaxIter: 400000})
	if err != nil {
		return BaselineResult{}, fmt.Errorf("sor stationary: %w", err)
	}
	out.Table = append(out.Table, BaselineRow{
		Method: "multicolor SOR stationary", Iterations: st2.Sweeps, Sweeps: st2.Sweeps, Converged: st2.Converged,
	})

	// CG and m-step PCG.
	sys := core.System{K: kc, F: rhs, GroupStart: start}
	runPCG := func(m int, coeffs core.CoeffKind, label string) error {
		res, err := core.Solve(sys, core.Config{M: m, Coeffs: coeffs, Tol: tol, MaxIter: 100000})
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		out.Table = append(out.Table, BaselineRow{
			Method:     label,
			Iterations: res.Stats.Iterations,
			Sweeps:     res.Stats.Iterations * max(m, 1),
			Converged:  res.Stats.Converged,
		})
		return nil
	}
	if err := runPCG(0, core.Unparametrized, "CG"); err != nil {
		return BaselineResult{}, err
	}
	if err := runPCG(1, core.Unparametrized, "1-step SSOR PCG"); err != nil {
		return BaselineResult{}, err
	}
	if err := runPCG(4, core.LeastSquaresCoeffs, "4-step SSOR PCG (LS)"); err != nil {
		return BaselineResult{}, err
	}
	return out, nil
}

// Render formats the comparison.
func (b BaselineResult) Render() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Baselines, %d×%d plate (%d equations): CG acceleration vs pure stationary iteration\n",
		b.Rows, b.Cols, b.Equations)
	fmt.Fprintf(&s, "%-28s %12s %16s\n", "method", "iterations", "stationary work")
	for _, r := range b.Table {
		fmt.Fprintf(&s, "%-28s %12d %16d\n", r.Method, r.Iterations, r.Sweeps)
	}
	s.WriteString("the m-step PCG method does the work of a few dozen SSOR sweeps where the\n")
	s.WriteString("pure stationary methods need thousands — CG acceleration is the point.\n")
	return s.String()
}

// Used by cg import pruning guards.
var _ = cg.Options{}
