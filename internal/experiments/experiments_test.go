package experiments

import (
	"strings"
	"testing"

	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/vectorsim"
)

func TestTable1ShapeAndPositivity(t *testing.T) {
	res, err := Table1(12, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (m=2..4)", len(res.Rows))
	}
	for _, r := range res.Rows {
		if len(r.Ours) != r.M {
			t.Fatalf("m=%d has %d coefficients", r.M, len(r.Ours))
		}
		if !r.Positivity {
			t.Fatalf("m=%d least-squares coefficients not positive on interval", r.M)
		}
		if r.CondBound <= 1 {
			t.Fatalf("m=%d κ bound %g must exceed 1", r.M, r.CondBound)
		}
	}
	// Condition bound improves with m.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].CondBound >= res.Rows[i-1].CondBound {
			t.Fatalf("κ bound not improving: %v", res.Rows)
		}
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Fatal("render missing title")
	}
}

// smallTable2 runs a reduced sweep (small sizes, few specs) for testing.
func smallTable2(t *testing.T) Table2Result {
	t.Helper()
	specs := []MSpec{{0, false}, {1, false}, {2, false}, {2, true}, {3, true}, {4, true}, {5, true}, {6, true}}
	res, err := Table2(vectorsim.Cyber203(), []int{10, 24}, specs, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTable2Observation1ParametrizedBetter(t *testing.T) {
	res := smallTable2(t)
	for _, col := range res.Columns {
		byLabel := map[string]Table2Cell{}
		for _, c := range col.Cells {
			byLabel[c.Spec.Label()] = c
		}
		plain, param := byLabel["2"], byLabel["2P"]
		if param.Iterations > plain.Iterations {
			t.Fatalf("a=%d: 2P iterations %d > 2 iterations %d", col.A, param.Iterations, plain.Iterations)
		}
		if param.Seconds > plain.Seconds {
			t.Fatalf("a=%d: 2P time %g > 2 time %g", col.A, param.Seconds, plain.Seconds)
		}
	}
}

func TestTable2Observation2OptimalMGrowsWithSize(t *testing.T) {
	res := smallTable2(t)
	if len(res.Columns) < 2 {
		t.Fatal("need two sizes")
	}
	small := res.Columns[0].OptimalM()
	large := res.Columns[len(res.Columns)-1].OptimalM()
	if large.M < small.M {
		t.Fatalf("optimal m shrank with size: a=%d→%s, a=%d→%s",
			res.Columns[0].A, small.Label(), res.Columns[len(res.Columns)-1].A, large.Label())
	}
}

func TestTable2IterationsDropWithM(t *testing.T) {
	res := smallTable2(t)
	for _, col := range res.Columns {
		if col.Cells[0].Spec.M != 0 {
			t.Fatal("first row should be m=0")
		}
		cgIters := col.Cells[0].Iterations
		for _, c := range col.Cells[1:] {
			if c.Iterations >= cgIters {
				t.Fatalf("a=%d %s: %d iterations not below CG's %d",
					col.A, c.Spec.Label(), c.Iterations, cgIters)
			}
		}
	}
}

func TestTable2Render(t *testing.T) {
	res := smallTable2(t)
	out := res.Render()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "optimal m") {
		t.Fatalf("render incomplete:\n%s", out)
	}
}

func TestInequality42Consistency(t *testing.T) {
	res := smallTable2(t)
	cols := Inequality42(res)
	if len(cols) != len(res.Columns) {
		t.Fatalf("columns %d vs %d", len(cols), len(res.Columns))
	}
	for _, c := range cols {
		if c.AOverB <= 0 {
			t.Fatalf("a=%d: nonpositive A/B", c.A)
		}
		for _, r := range c.Rows {
			if r.Threshold <= 0 || r.Threshold >= 1 {
				t.Fatalf("threshold %g out of (0,1)", r.Threshold)
			}
			if r.Beneficial != (r.Ratio < r.Threshold) {
				t.Fatal("verdict inconsistent with inequality")
			}
		}
	}
	if !strings.Contains(RenderInequality(cols), "Inequality (4.2)") {
		t.Fatal("render missing title")
	}
}

func TestTable3PaperShape(t *testing.T) {
	specs := []MSpec{{0, false}, {1, false}, {2, false}, {2, true}, {3, true}}
	res, err := Table3(6, 6, []int{1, 2, 5}, specs, 1e-6, femachine.DefaultTimeModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Equations != 60 {
		t.Fatalf("equations = %d, want 60", res.Equations)
	}
	for _, r := range res.TableRows {
		s2, s5 := r.Speedups[2], r.Speedups[5]
		if s2 <= 1 || s2 > 2 || s5 <= s2 || s5 > 5 {
			t.Fatalf("%s: speedups %v implausible", r.Spec.Label(), r.Speedups)
		}
	}
	// Observation: CG's speedup tops the preconditioned rows.
	if res.TableRows[0].Spec.M != 0 {
		t.Fatal("first row should be CG")
	}
	cgS2 := res.TableRows[0].Speedups[2]
	for _, r := range res.TableRows[1:] {
		if r.Speedups[2] > cgS2+1e-9 {
			t.Fatalf("%s speedup %g above CG's %g", r.Spec.Label(), r.Speedups[2], cgS2)
		}
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Fatal("render missing title")
	}
}

func TestConditionStudyM2Bound(t *testing.T) {
	specs := []MSpec{{1, false}, {2, false}, {3, false}, {2, true}, {3, true}}
	res, err := ConditionStudy(8, 8, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.KappaCG <= 1 {
		t.Fatalf("κ(K) = %g", res.KappaCG)
	}
	for _, r := range res.Table {
		if r.Kappa <= 0 {
			t.Fatalf("%s: κ = %g", r.Spec.Label(), r.Kappa)
		}
		// §2.1: unparametrized improvement over m=1 is at most m²
		// (allow 10% estimator slack).
		if !r.Spec.Param && r.RatioVsM1 > float64(r.Spec.M*r.Spec.M)*1.1 {
			t.Fatalf("%s: improvement %g exceeds m²=%d", r.Spec.Label(), r.RatioVsM1, r.Spec.M*r.Spec.M)
		}
	}
	if !strings.Contains(res.Render(), "Condition numbers") {
		t.Fatal("render missing title")
	}
}

func TestOverheadStudyObservation3(t *testing.T) {
	res, err := OverheadStudy(6, 6, []int{1, 2, 5}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Find the P=2, m=3 row: preconditioner comm must dominate reductions.
	found := false
	for _, r := range res.Table {
		if r.P == 2 && r.Spec.M == 3 {
			found = true
			if r.PrecondCommTime <= r.ReduceWaitTime {
				t.Fatalf("precond comm %g not above reduce wait %g", r.PrecondCommTime, r.ReduceWaitTime)
			}
		}
	}
	if !found {
		t.Fatal("P=2 m=3 row missing")
	}
	if res.TreeTime >= res.RingTime {
		t.Fatalf("sum/max circuit (%g) not faster than ring (%g)", res.TreeTime, res.RingTime)
	}
	if !strings.Contains(res.Render(), "overhead") {
		t.Fatal("render missing title")
	}
}

func TestFigures(t *testing.T) {
	out, err := AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 4", "five-processor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figures missing %q", want)
		}
	}
	// Figure 1 first line of the 6×6 grid: row 5 colors (i+j)%3.
	if !strings.Contains(out, "G R B G R B") {
		t.Fatalf("figure 1 coloring unexpected:\n%s", Figure1(6, 6))
	}
}

func TestUsedLinkDirections(t *testing.T) {
	dirs := UsedLinkDirections(mesh.NewGrid(6, 6))
	want := []string{"E", "N", "NE", "S", "SW", "W"}
	if len(dirs) != len(want) {
		t.Fatalf("directions %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("directions %v, want %v", dirs, want)
		}
	}
}

func TestMSpecLabels(t *testing.T) {
	if (MSpec{0, false}).Label() != "0" || (MSpec{3, false}).Label() != "3" || (MSpec{4, true}).Label() != "4P" {
		t.Fatal("labels wrong")
	}
	if len(PaperTable2Specs()) != 13 {
		t.Fatalf("paper table 2 has %d specs", len(PaperTable2Specs()))
	}
	if len(PaperTable3Specs()) != 10 {
		t.Fatalf("paper table 3 has %d specs", len(PaperTable3Specs()))
	}
}
