package experiments

import (
	"strings"
	"testing"
)

func TestIrregularStudyConverges(t *testing.T) {
	res, err := IrregularStudy(9, []MSpec{{M: 0}, {M: 1}, {M: 3, Param: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 shapes × 3 specs", len(res.Rows))
	}
	// Per shape: preconditioning reduces iterations monotonically across
	// the spec list.
	byShape := map[string][]IrregularRow{}
	for _, r := range res.Rows {
		byShape[r.Shape] = append(byShape[r.Shape], r)
		if r.NumColors < 3 || r.NumColors > 6 {
			t.Fatalf("%s: implausible color count %d", r.Shape, r.NumColors)
		}
	}
	for shape, rows := range byShape {
		for i := 1; i < len(rows); i++ {
			if rows[i].Iterations >= rows[i-1].Iterations {
				t.Fatalf("%s: %s (%d iters) not below %s (%d)", shape,
					rows[i].Spec.Label(), rows[i].Iterations,
					rows[i-1].Spec.Label(), rows[i-1].Iterations)
			}
		}
	}
	if !strings.Contains(res.Render(), "Irregular regions") {
		t.Fatal("render missing title")
	}
}

func TestBaselineStudyPCGWinsOnWork(t *testing.T) {
	res, err := BaselineStudy(10, 10, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]BaselineRow{}
	for _, r := range res.Table {
		byMethod[r.Method] = r
		if !r.Converged {
			t.Fatalf("%s did not converge", r.Method)
		}
	}
	ssor := byMethod["SSOR stationary"]
	pcg := byMethod["4-step SSOR PCG (LS)"]
	cgRow := byMethod["CG"]
	if pcg.Sweeps*10 > ssor.Sweeps {
		t.Fatalf("PCG stationary work %d not an order below pure SSOR %d", pcg.Sweeps, ssor.Sweeps)
	}
	if pcg.Iterations >= cgRow.Iterations {
		t.Fatalf("PCG iterations %d not below CG %d", pcg.Iterations, cgRow.Iterations)
	}
	if !strings.Contains(res.Render(), "Baselines") {
		t.Fatal("render missing title")
	}
}
