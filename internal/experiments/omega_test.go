package experiments

import (
	"strings"
	"testing"
)

func TestOmegaStudyOmegaOneGood(t *testing.T) {
	res, err := OmegaStudy(10, 10, 1, []float64{0.8, 1.0, 1.2, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table) != 4 {
		t.Fatalf("rows = %d", len(res.Table))
	}
	// §5 claim: ω = 1 within 25% of the best sampled ω for the multicolor
	// splitting (no delicate tuning required).
	_, best := res.BestOmega()
	at1 := res.IterationsAt(1)
	if at1 == 0 {
		t.Fatal("ω=1 not sampled")
	}
	if float64(at1) > 1.25*float64(best) {
		t.Fatalf("ω=1 iterations %d more than 25%% above best %d", at1, best)
	}
	if !strings.Contains(res.Render(), "Relaxation parameter") {
		t.Fatal("render missing title")
	}
}

func TestCompareMachines205Faster(t *testing.T) {
	specs := []MSpec{{M: 0}, {M: 2}, {M: 4, Param: true}}
	mc, err := CompareMachines(12, specs, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if mc.T205[i] >= mc.T203[i] {
			t.Fatalf("%s: 205 (%g) not faster than 203 (%g)", specs[i].Label(), mc.T205[i], mc.T203[i])
		}
		ratio := mc.T203[i] / mc.T205[i]
		// Stream rate doubles; the ratio sits near 2.
		if ratio < 1.5 || ratio > 2.5 {
			t.Fatalf("%s: speed ratio %g implausible", specs[i].Label(), ratio)
		}
	}
	if !strings.Contains(mc.Render(), "CYBER 203 vs 205") {
		t.Fatal("render missing title")
	}
}
