package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fem"
	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/poly"
)

// ScalingRow is one weak-scaling measurement: the per-processor workload is
// held fixed while the machine grows.
type ScalingRow struct {
	P          int
	Rows, Cols int
	Equations  int
	M          int
	Iterations int
	SimTime    float64
	// Efficiency is T(1 proc, same problem)/(P·T(P procs)).
	Efficiency float64
	// PrecondCommShare is preconditioner communication as a fraction of
	// aggregate busy time.
	PrecondCommShare float64
}

// ScalingResult is the paper's §4 closing discussion, measured: keeping
// nodes per processor fixed while adding processors, the preconditioner's
// communication overhead persists, and the relative cost of a
// preconditioner step (B/A) falls as the machine grows — pushing the
// optimal m upward.
type ScalingResult struct {
	NodesPerProc int
	Table        []ScalingRow
}

// ScalingStudy runs a weak-scaling sweep: for each P = k², a plate with
// blockRows×blockRows free nodes per processor, solved with m = 0 and
// m = 3.
func ScalingStudy(blockRows int, ks []int, tol float64) (ScalingResult, error) {
	out := ScalingResult{NodesPerProc: blockRows * blockRows}
	for _, k := range ks {
		rows := blockRows * k
		cols := rows + 1 // one constrained column
		plate, err := fem.NewPlate(rows, cols, fem.Options{})
		if err != nil {
			return ScalingResult{}, err
		}
		p := k * k
		for _, m := range []int{0, 3} {
			run := func(procs int) (femachine.Result, error) {
				strat := mesh.Blocks
				if procs == 1 {
					strat = mesh.RowStrips
				}
				cfg := femachine.Config{
					P: procs, Strategy: strat, M: m,
					Tol: tol, MaxIter: 200000, Time: femachine.DefaultTimeModel(),
				}
				if m > 0 {
					cfg.Alphas = poly.Ones(m).Coeffs
				}
				mach, err := femachine.New(plate, cfg)
				if err != nil {
					return femachine.Result{}, err
				}
				return mach.Run()
			}
			serial, err := run(1)
			if err != nil {
				return ScalingResult{}, fmt.Errorf("P=1 rows=%d m=%d: %w", rows, m, err)
			}
			res := serial
			if p > 1 {
				res, err = run(p)
				if err != nil {
					return ScalingResult{}, fmt.Errorf("P=%d rows=%d m=%d: %w", p, rows, m, err)
				}
			}
			busy := res.ComputeTime + res.PrecondCommTime + res.HaloCommTime + res.ReduceWaitTime
			share := 0.0
			if busy > 0 {
				share = res.PrecondCommTime / busy
			}
			out.Table = append(out.Table, ScalingRow{
				P: p, Rows: rows, Cols: cols, Equations: plate.N(), M: m,
				Iterations:       res.Iterations,
				SimTime:          res.SimTime,
				Efficiency:       serial.SimTime / (float64(p) * res.SimTime),
				PrecondCommShare: share,
			})
		}
	}
	return out, nil
}

// Render formats the study.
func (s ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Weak scaling, %d free nodes per processor (§4 closing discussion)\n", s.NodesPerProc)
	fmt.Fprintf(&b, "%4s %6s %6s %3s %7s %10s %11s %13s\n",
		"P", "grid", "eqs", "m", "iters", "time(s)", "efficiency", "precondComm%")
	for _, r := range s.Table {
		fmt.Fprintf(&b, "%4d %3dx%-3d %6d %3d %7d %10.4f %11.2f %12.1f%%\n",
			r.P, r.Rows, r.Cols, r.Equations, r.M, r.Iterations, r.SimTime,
			r.Efficiency, 100*r.PrecondCommShare)
	}
	b.WriteString("with fixed per-processor load, the preconditioner's communication share\n")
	b.WriteString("persists as P grows — the overhead CG itself avoids (paper §4, obs. 3).\n")
	return b.String()
}
