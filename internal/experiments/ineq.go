package experiments

import (
	"fmt"
	"strings"
)

// IneqRow evaluates the paper's inequality (4.2) for one step count m in
// one Table 2 column: taking m+1 steps beats m when
//
//	N_{m+1}/N_m < (A/B + m)/(A/B + m + 1).
type IneqRow struct {
	M          int
	Ratio      float64 // N_{m+1} / N_m (left side)
	Threshold  float64 // (A/B + m)/(A/B + m + 1) (right side)
	Beneficial bool
}

// IneqColumn is the analysis for one problem size.
type IneqColumn struct {
	A      int
	AOverB float64
	Rows   []IneqRow
}

// Inequality42 applies the analysis to parametrized rows of a Table 2
// result, using the measured A and B from the cost model.
func Inequality42(t2 Table2Result) []IneqColumn {
	var out []IneqColumn
	for _, col := range t2.Columns {
		// Collect the parametrized cells ordered by m (plus m=1, which is
		// unparametrized by definition).
		iters := map[int]int{}
		for _, c := range col.Cells {
			if c.Spec.Param || c.Spec.M <= 1 {
				iters[c.Spec.M] = c.Iterations
			}
		}
		aOverB := 1 / col.BOverA
		ic := IneqColumn{A: col.A, AOverB: aOverB}
		for m := 1; ; m++ {
			nm, ok1 := iters[m]
			nm1, ok2 := iters[m+1]
			if !ok1 || !ok2 {
				break
			}
			ratio := float64(nm1) / float64(nm)
			thr := (aOverB + float64(m)) / (aOverB + float64(m) + 1)
			ic.Rows = append(ic.Rows, IneqRow{M: m, Ratio: ratio, Threshold: thr, Beneficial: ratio < thr})
		}
		out = append(out, ic)
	}
	return out
}

// RenderInequality formats the analysis.
func RenderInequality(cols []IneqColumn) string {
	var b strings.Builder
	b.WriteString("Inequality (4.2): m+1 preconditioner steps beat m when N_{m+1}/N_m < (A/B+m)/(A/B+m+1)\n")
	for _, c := range cols {
		fmt.Fprintf(&b, "a=%d (A/B measured = %.2f):\n", c.A, c.AOverB)
		for _, r := range c.Rows {
			verdict := "stop"
			if r.Beneficial {
				verdict = "take m+1"
			}
			fmt.Fprintf(&b, "  m=%-2d  N_{m+1}/N_m = %.3f  threshold = %.3f  → %s\n",
				r.M, r.Ratio, r.Threshold, verdict)
		}
	}
	return b.String()
}
