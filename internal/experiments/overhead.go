package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fem"
	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/poly"
)

// OverheadRow decomposes one Finite Element Machine run's parallel
// overhead (§4 observation (3)).
type OverheadRow struct {
	Spec            MSpec
	P               int
	SimTime         float64
	ComputeTime     float64
	PrecondCommTime float64
	HaloCommTime    float64
	ReduceWaitTime  float64
}

// OverheadResult is the §4 observation-(3) study plus the sum/max-circuit
// ablation (tree vs software ring).
type OverheadResult struct {
	Rows, Cols int
	Table      []OverheadRow
	TreeTime   float64 // P=5 CG with the sum/max circuit
	RingTime   float64 // same with the O(P) software reduction
}

// OverheadStudy measures where machine time goes for CG and m-step PCG.
func OverheadStudy(rows, cols int, procs []int, tol float64) (OverheadResult, error) {
	plate, err := fem.NewPlate(rows, cols, fem.Options{})
	if err != nil {
		return OverheadResult{}, err
	}
	out := OverheadResult{Rows: rows, Cols: cols}
	run := func(p, m int, tm femachine.TimeModel) (femachine.Result, error) {
		strat := mesh.RowStrips
		if p > rows/2 {
			strat = mesh.ColStrips
		}
		cfg := femachine.Config{P: p, Strategy: strat, M: m, Tol: tol, MaxIter: 100000, Time: tm}
		if m > 0 {
			cfg.Alphas = poly.Ones(m).Coeffs
		}
		mach, err := femachine.New(plate, cfg)
		if err != nil {
			return femachine.Result{}, err
		}
		return mach.Run()
	}
	for _, p := range procs {
		for _, m := range []int{0, 3} {
			res, err := run(p, m, femachine.DefaultTimeModel())
			if err != nil {
				return OverheadResult{}, err
			}
			out.Table = append(out.Table, OverheadRow{
				Spec: MSpec{M: m}, P: p,
				SimTime:         res.SimTime,
				ComputeTime:     res.ComputeTime,
				PrecondCommTime: res.PrecondCommTime,
				HaloCommTime:    res.HaloCommTime,
				ReduceWaitTime:  res.ReduceWaitTime,
			})
		}
	}
	// Sum/max circuit ablation at the largest processor count.
	p := procs[len(procs)-1]
	tree, err := run(p, 0, femachine.DefaultTimeModel())
	if err != nil {
		return OverheadResult{}, err
	}
	ringModel := femachine.DefaultTimeModel()
	ringModel.SoftwareReduce = true
	ring, err := run(p, 0, ringModel)
	if err != nil {
		return OverheadResult{}, err
	}
	out.TreeTime, out.RingTime = tree.SimTime, ring.SimTime
	return out, nil
}

// Render formats the study.
func (o OverheadResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FEM overhead breakdown, %d×%d plate (aggregate processor-seconds)\n", o.Rows, o.Cols)
	fmt.Fprintf(&b, "%-4s %3s %10s %10s %12s %10s %12s\n",
		"m", "P", "wall", "compute", "precondComm", "haloComm", "reduceWait")
	for _, r := range o.Table {
		fmt.Fprintf(&b, "%-4s %3d %10.4f %10.4f %12.4f %10.4f %12.4f\n",
			r.Spec.Label(), r.P, r.SimTime, r.ComputeTime, r.PrecondCommTime, r.HaloCommTime, r.ReduceWaitTime)
	}
	fmt.Fprintf(&b, "sum/max circuit ablation (P=%d, CG): tree %.4fs vs software ring %.4fs (×%.2f)\n",
		5, o.TreeTime, o.RingTime, o.RingTime/o.TreeTime)
	b.WriteString("observation (3): with preconditioning the border exchanges dominate the\n")
	b.WriteString("overhead, not the inner-product reductions.\n")
	return b.String()
}
