// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (parametrized coefficients), Table 2 (CYBER 203
// iterations and timings), Table 3 (Finite Element Machine iterations,
// timings, speedups), the inequality (4.2) optimal-m analysis, the §2.1
// condition-number study, the §4 observation-(3) overhead breakdown, and
// ASCII renderings of Figures 1–5. Each driver returns structured rows
// plus a formatted table so the cmd/experiments binary, the benchmarks and
// EXPERIMENTS.md all share one source of truth.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/poly"
)

// Table1Row compares our computed least-squares coefficients with the
// paper's printed Table 1 values for one m.
type Table1Row struct {
	M          int
	Ours       []float64
	Paper      []float64 // nil when the paper does not list this m
	CondBound  float64   // κ bound max q / min q over the interval
	Positivity bool
}

// Table1Result is the full Table 1 reproduction.
type Table1Result struct {
	Interval eigen.Interval
	Rows     []Table1Row
}

// Table1 computes the least-squares α for the m-step SSOR preconditioner
// over the spectral interval of the reference plate (rows×cols), for
// m = 2..maxM.
func Table1(rows, cols, maxM int) (Table1Result, error) {
	sys, _, err := core.PlateSystem(rows, cols, fem.Options{})
	if err != nil {
		return Table1Result{}, err
	}
	sp, err := core.BuildSplitting(sys, core.Config{Splitting: core.SSORMulticolor})
	if err != nil {
		return Table1Result{}, err
	}
	iv, err := eigen.EstimateInterval(sp, 0.02, 1)
	if err != nil {
		return Table1Result{}, err
	}
	paper := poly.PaperTable1()
	out := Table1Result{Interval: iv}
	for m := 2; m <= maxM; m++ {
		a, err := poly.LeastSquares(m, iv.Lo, iv.Hi)
		if err != nil {
			return Table1Result{}, err
		}
		out.Rows = append(out.Rows, Table1Row{
			M:          m,
			Ours:       a.Coeffs,
			Paper:      paper[m],
			CondBound:  a.ConditionBound(iv.Lo, iv.Hi),
			Positivity: a.PositiveOn(iv.Lo, iv.Hi),
		})
	}
	return out, nil
}

// Render formats the table.
func (t Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: least-squares α for the m-step SSOR PCG method\n")
	fmt.Fprintf(&b, "spectral interval of P⁻¹K: [%.4f, %.4f]\n", t.Interval.Lo, t.Interval.Hi)
	fmt.Fprintf(&b, "%-3s  %-44s  %-30s  %10s\n", "m", "ours (α₀..α_{m-1})", "paper (as printed)", "κ bound")
	for _, r := range t.Rows {
		ours := make([]string, len(r.Ours))
		for i, v := range r.Ours {
			ours[i] = fmt.Sprintf("%.3f", v)
		}
		paper := "-"
		if r.Paper != nil {
			ps := make([]string, len(r.Paper))
			for i, v := range r.Paper {
				ps[i] = fmt.Sprintf("%.2f", v)
			}
			paper = strings.Join(ps, ", ")
		}
		fmt.Fprintf(&b, "%-3d  %-44s  %-30s  %10.3f\n", r.M, strings.Join(ours, ", "), paper, r.CondBound)
	}
	b.WriteString("note: the paper optimized over its own (unstated) spectral interval;\n")
	b.WriteString("shapes agree (α₀ ≈ 1, growing alternating tail) while magnitudes differ.\n")
	return b.String()
}
