package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/poly"
)

// Table3Row is one preconditioner row: iterations (identical across
// processor counts), per-P simulated seconds and speedups.
type Table3Row struct {
	Spec       MSpec
	Iterations int
	Seconds    map[int]float64 // processor count -> simulated time
	Speedups   map[int]float64 // processor count -> T1/TP
}

// Table3Result is the full Table 3 reproduction.
type Table3Result struct {
	Rows      int
	Cols      int
	Equations int
	Tol       float64
	Procs     []int
	TableRows []Table3Row
}

// PaperTable3Specs is the row list of the paper's Table 3:
// m = 0, 1, 2, 2P, 3, 3P, 4, 4P, 5P, 6P.
func PaperTable3Specs() []MSpec {
	return []MSpec{
		{0, false}, {1, false}, {2, false}, {2, true},
		{3, false}, {3, true}, {4, false}, {4, true},
		{5, true}, {6, true},
	}
}

// Table3 reruns the paper's Finite Element Machine experiment: the
// rows×cols plate solved on each processor count with the m-step SSOR PCG
// method. Row strips are used for P ≤ rows/2 and column strips otherwise,
// matching Figure 5's assignments for the 6×6 plate (2 procs: halves;
// 5 procs: one free column each).
func Table3(rows, cols int, procs []int, specs []MSpec, tol float64, tm femachine.TimeModel) (Table3Result, error) {
	plate, err := fem.NewPlate(rows, cols, fem.Options{})
	if err != nil {
		return Table3Result{}, err
	}
	sys := core.System{K: plate.KColored, F: plate.ColoredRHS(), GroupStart: plate.Ordering.GroupStart[:]}
	sp, err := core.BuildSplitting(sys, core.Config{Splitting: core.SSORMulticolor})
	if err != nil {
		return Table3Result{}, err
	}
	iv, err := eigen.EstimateInterval(sp, 0.02, 1)
	if err != nil {
		return Table3Result{}, err
	}

	out := Table3Result{Rows: rows, Cols: cols, Equations: plate.N(), Tol: tol, Procs: procs}
	for _, s := range specs {
		var alphas []float64
		if s.M > 0 {
			if s.Param {
				a, err := poly.LeastSquares(s.M, iv.Lo, iv.Hi)
				if err != nil {
					return Table3Result{}, err
				}
				alphas = a.Coeffs
			} else {
				alphas = poly.Ones(s.M).Coeffs
			}
		}
		row := Table3Row{Spec: s, Seconds: map[int]float64{}, Speedups: map[int]float64{}}
		for _, p := range procs {
			strat := mesh.RowStrips
			if p > rows/2 {
				strat = mesh.ColStrips
			}
			cfg := femachine.Config{
				P: p, Strategy: strat, M: s.M, Alphas: alphas,
				Tol: tol, MaxIter: 100000, Time: tm,
			}
			mach, err := femachine.New(plate, cfg)
			if err != nil {
				return Table3Result{}, fmt.Errorf("%s P=%d: %w", s.Label(), p, err)
			}
			res, err := mach.Run()
			if err != nil {
				return Table3Result{}, fmt.Errorf("%s P=%d: %w", s.Label(), p, err)
			}
			row.Iterations = res.Iterations
			row.Seconds[p] = res.SimTime
		}
		if t1, ok := row.Seconds[1]; ok {
			for _, p := range procs {
				row.Speedups[p] = t1 / row.Seconds[p]
			}
		}
		out.TableRows = append(out.TableRows, row)
	}
	return out, nil
}

// Render formats the table in the paper's layout.
func (t Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Finite Element Machine, %d equations (%d×%d plate), tol=%g\n",
		t.Equations, t.Rows, t.Cols, t.Tol)
	fmt.Fprintf(&b, "%-4s %6s", "m", "I")
	for _, p := range t.Procs {
		fmt.Fprintf(&b, " | %10s", fmt.Sprintf("T(P=%d)", p))
		if p != 1 {
			fmt.Fprintf(&b, " %7s", "speedup")
		}
	}
	b.WriteString("\n")
	for _, r := range t.TableRows {
		fmt.Fprintf(&b, "%-4s %6d", r.Spec.Label(), r.Iterations)
		for _, p := range t.Procs {
			fmt.Fprintf(&b, " | %10.4f", r.Seconds[p])
			if p != 1 {
				fmt.Fprintf(&b, " %7.2f", r.Speedups[p])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
