package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
)

// CondRow is one measurement of the §2.1 claim: the condition number of
// the m-step-preconditioned operator.
type CondRow struct {
	Spec       MSpec
	Kappa      float64
	Iterations int
	// RatioVsM1 is κ(M₁)/κ(M_m): the paper proves this improvement is at
	// most m² for the unparametrized SSOR preconditioner.
	RatioVsM1 float64
}

// CondResult is the condition-number study.
type CondResult struct {
	Rows    int
	Cols    int
	KappaCG float64 // κ(K) itself (m = 0)
	Table   []CondRow
}

// ConditionStudy measures κ(M_m⁻¹K) for each spec via the Lanczos
// tridiagonal of converged PCG runs.
func ConditionStudy(rows, cols int, specs []MSpec) (CondResult, error) {
	sys, _, err := core.PlateSystem(rows, cols, fem.Options{})
	if err != nil {
		return CondResult{}, err
	}
	out := CondResult{Rows: rows, Cols: cols}
	kappaOf := func(cfg core.Config) (float64, cg.Stats, error) {
		cfg.RelResidualTol = 1e-12
		cfg.MaxIter = 100000
		res, err := core.Solve(sys, cfg)
		if err != nil {
			return 0, res.Stats, err
		}
		_, _, kappa, err := eigen.CondFromCGStats(res.Stats)
		return kappa, res.Stats, err
	}
	var err2 error
	out.KappaCG, _, err2 = kappaOf(core.Config{M: 0})
	if err2 != nil {
		return CondResult{}, err2
	}
	var kappaM1 float64
	for _, s := range specs {
		if s.M == 0 {
			continue
		}
		cfg := core.Config{M: s.M}
		if s.Param {
			cfg.Coeffs = core.LeastSquaresCoeffs
		}
		kappa, st, err := kappaOf(cfg)
		if err != nil {
			return CondResult{}, fmt.Errorf("%s: %w", s.Label(), err)
		}
		if s.M == 1 {
			kappaM1 = kappa
		}
		row := CondRow{Spec: s, Kappa: kappa, Iterations: st.Iterations}
		if kappaM1 > 0 {
			row.RatioVsM1 = kappaM1 / kappa
		}
		out.Table = append(out.Table, row)
	}
	return out, nil
}

// Render formats the study.
func (c CondResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Condition numbers, %d×%d plate (Lanczos estimates from converged PCG runs)\n", c.Rows, c.Cols)
	fmt.Fprintf(&b, "κ(K) = %.1f (plain CG)\n", c.KappaCG)
	fmt.Fprintf(&b, "%-4s %12s %8s %14s %10s\n", "m", "κ(M_m⁻¹K)", "iters", "κ(M₁)/κ(M_m)", "m² bound")
	for _, r := range c.Table {
		bound := "-"
		if !r.Spec.Param {
			bound = fmt.Sprintf("%d", r.Spec.M*r.Spec.M)
		}
		fmt.Fprintf(&b, "%-4s %12.2f %8d %14.2f %10s\n",
			r.Spec.Label(), r.Kappa, r.Iterations, r.RatioVsM1, bound)
	}
	b.WriteString("§2.1: unparametrized improvement κ(M₁)/κ(M_m) is bounded by m²;\n")
	b.WriteString("parametrized rows (P) may exceed it — that is the point of §2.2.\n")
	return b.String()
}
