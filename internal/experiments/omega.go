package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fem"
	"repro/internal/vectorsim"
)

// OmegaRow is one relaxation-parameter measurement.
type OmegaRow struct {
	Omega      float64
	Multicolor int // PCG iterations, multicolor SSOR(ω) splitting
	Natural    int // PCG iterations, natural-ordering SSOR(ω) splitting
}

// OmegaResult is the §5 claim measured: "This method does not face the
// usual difficulty in choosing the optimal relaxation parameter ω …
// since for this ordering and few colors ω = 1 is a good choice."
type OmegaResult struct {
	Rows, Cols int
	M          int
	Table      []OmegaRow
}

// OmegaStudy sweeps ω for the m-step SSOR PCG method under both orderings.
// The multicolor column runs on the 6-color-ordered system; the natural
// column runs on the untouched row-by-row ordering — on the colored matrix
// the two sweeps coincide, so the natural ordering must use the original
// system to be a real comparison.
func OmegaStudy(rows, cols, m int, omegas []float64) (OmegaResult, error) {
	coloredSys, plate, err := core.PlateSystem(rows, cols, fem.Options{})
	if err != nil {
		return OmegaResult{}, err
	}
	naturalSys := core.System{K: plate.K, F: plate.F}
	out := OmegaResult{Rows: rows, Cols: cols, M: m}
	for _, w := range omegas {
		row := OmegaRow{Omega: w}
		mc, err := core.Solve(coloredSys, core.Config{
			M: m, Splitting: core.SSORMulticolor, Omega: w, Tol: 1e-7, MaxIter: 100000,
		})
		if err != nil {
			return OmegaResult{}, fmt.Errorf("ω=%g multicolor: %w", w, err)
		}
		row.Multicolor = mc.Stats.Iterations
		nat, err := core.Solve(naturalSys, core.Config{
			M: m, Splitting: core.SSORNatural, Omega: w, Tol: 1e-7, MaxIter: 100000,
		})
		if err != nil {
			return OmegaResult{}, fmt.Errorf("ω=%g natural: %w", w, err)
		}
		row.Natural = nat.Stats.Iterations
		out.Table = append(out.Table, row)
	}
	return out, nil
}

// BestOmega returns the ω with the fewest multicolor iterations.
func (o OmegaResult) BestOmega() (omega float64, iters int) {
	iters = 1 << 30
	for _, r := range o.Table {
		if r.Multicolor < iters {
			omega, iters = r.Omega, r.Multicolor
		}
	}
	return omega, iters
}

// IterationsAt returns the multicolor iteration count at the given ω
// (0 when the ω was not sampled).
func (o OmegaResult) IterationsAt(omega float64) int {
	for _, r := range o.Table {
		if r.Omega == omega {
			return r.Multicolor
		}
	}
	return 0
}

// Render formats the study.
func (o OmegaResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Relaxation parameter study (§5): %d-step SSOR PCG on the %d×%d plate\n", o.M, o.Rows, o.Cols)
	fmt.Fprintf(&b, "%-6s %12s %12s\n", "ω", "multicolor", "natural")
	for _, r := range o.Table {
		fmt.Fprintf(&b, "%-6.2f %12d %12d\n", r.Omega, r.Multicolor, r.Natural)
	}
	best, _ := o.BestOmega()
	fmt.Fprintf(&b, "best multicolor ω sampled: %.2f; ω = 1 iterations: %d\n", best, o.IterationsAt(1))
	b.WriteString("the multicolor row is flat near ω = 1 — no SOR-style ω tuning needed.\n")
	return b.String()
}

// MachineComparison compares CYBER 203 and 205 on one Table 2 column.
type MachineComparison struct {
	A     int
	Specs []MSpec
	T203  []float64
	T205  []float64
	Iters []int
}

// CompareMachines runs the same sweep on both machine models; iteration
// counts are machine-independent, times scale with the stream rate.
func CompareMachines(a int, specs []MSpec, tol float64) (MachineComparison, error) {
	out := MachineComparison{A: a, Specs: specs}
	iv, err := plateInterval(a, a)
	if err != nil {
		return MachineComparison{}, err
	}
	for _, s := range specs {
		r203, err := vectorsim.SimulatePlateWithInterval(vectorsim.Cyber203(), a, a, s.M, s.Param, tol, &iv)
		if err != nil {
			return MachineComparison{}, err
		}
		r205, err := vectorsim.SimulatePlateWithInterval(vectorsim.Cyber205(), a, a, s.M, s.Param, tol, &iv)
		if err != nil {
			return MachineComparison{}, err
		}
		if r203.Iterations != r205.Iterations {
			return MachineComparison{}, fmt.Errorf("iteration counts differ across machines: %d vs %d",
				r203.Iterations, r205.Iterations)
		}
		out.T203 = append(out.T203, r203.Seconds)
		out.T205 = append(out.T205, r205.Seconds)
		out.Iters = append(out.Iters, r203.Iterations)
	}
	return out, nil
}

// Render formats the comparison.
func (mc MachineComparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CYBER 203 vs 205, a=%d plate (identical iterations; times scale with stream rate)\n", mc.A)
	fmt.Fprintf(&b, "%-4s %8s %10s %10s %8s\n", "m", "iters", "T203(s)", "T205(s)", "ratio")
	for i, s := range mc.Specs {
		fmt.Fprintf(&b, "%-4s %8d %10.4f %10.4f %8.2f\n",
			s.Label(), mc.Iters[i], mc.T203[i], mc.T205[i], mc.T203[i]/mc.T205[i])
	}
	return b.String()
}
