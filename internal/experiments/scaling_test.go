package experiments

import (
	"strings"
	"testing"
)

func TestScalingStudyWeakScaling(t *testing.T) {
	res, err := ScalingStudy(4, []int{1, 2, 3}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Table))
	}
	for _, r := range res.Table {
		if r.P == 1 {
			if r.Efficiency != 1 {
				t.Fatalf("P=1 efficiency %v", r.Efficiency)
			}
			continue
		}
		if r.Efficiency <= 0 || r.Efficiency > 1.01 {
			t.Fatalf("P=%d m=%d efficiency %v out of range", r.P, r.M, r.Efficiency)
		}
		if r.M > 0 && r.PrecondCommShare <= 0 {
			t.Fatalf("P=%d m=%d: no preconditioner comm recorded", r.P, r.M)
		}
	}
	if !strings.Contains(res.Render(), "Weak scaling") {
		t.Fatal("render missing title")
	}
}
