package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/vectorsim"
)

// plateInterval estimates the SSOR spectral interval of one plate size.
func plateInterval(rows, cols int) (eigen.Interval, error) {
	sys, _, err := core.PlateSystem(rows, cols, fem.Options{})
	if err != nil {
		return eigen.Interval{}, err
	}
	sp, err := core.BuildSplitting(sys, core.Config{Splitting: core.SSORMulticolor})
	if err != nil {
		return eigen.Interval{}, err
	}
	return eigen.EstimateInterval(sp, 0.02, 1)
}

// MSpec is one preconditioner row of Table 2: a step count and whether the
// parametrized (least-squares) coefficients are used.
type MSpec struct {
	M     int
	Param bool
}

// Label renders the paper's row labels ("0", "2", "4P", ...).
func (s MSpec) Label() string {
	if s.M == 0 {
		return "0"
	}
	if s.Param {
		return fmt.Sprintf("%dP", s.M)
	}
	return fmt.Sprintf("%d", s.M)
}

// PaperTable2Specs is the row list of the paper's Table 2:
// m = 0, 1, 2, 2P, 3, 3P, 4P..10P.
func PaperTable2Specs() []MSpec {
	specs := []MSpec{{0, false}, {1, false}, {2, false}, {2, true}, {3, false}, {3, true}}
	for m := 4; m <= 10; m++ {
		specs = append(specs, MSpec{m, true})
	}
	return specs
}

// Table2Cell is one (size, spec) measurement.
type Table2Cell struct {
	Spec       MSpec
	Iterations int
	Seconds    float64
}

// Table2Column is one problem size: the paper's a (rows of nodes on a unit
// square plate, so cols = rows) and per-color vector length v.
type Table2Column struct {
	A, VectorLen int
	Cells        []Table2Cell
	BOverA       float64 // measured B/A for the inequality (4.2) analysis
}

// Table2Result is the full Table 2 reproduction.
type Table2Result struct {
	Machine string
	Tol     float64
	Columns []Table2Column
}

// Table2 reruns the paper's Table 2 sweep on the simulated CYBER.
// sizes are the paper's a values (each giving an a×a-node unit square
// plate); specs the preconditioner rows. The spectral interval of each
// size's splitting is estimated once and shared across the column's
// parametrized rows.
func Table2(model vectorsim.Model, sizes []int, specs []MSpec, tol float64) (Table2Result, error) {
	out := Table2Result{Machine: model.Name, Tol: tol}
	for _, a := range sizes {
		col := Table2Column{A: a}
		iv, err := plateInterval(a, a)
		if err != nil {
			return Table2Result{}, fmt.Errorf("a=%d interval: %w", a, err)
		}
		for _, s := range specs {
			run, err := vectorsim.SimulatePlateWithInterval(model, a, a, s.M, s.Param, tol, &iv)
			if err != nil {
				return Table2Result{}, fmt.Errorf("a=%d %s: %w", a, s.Label(), err)
			}
			col.VectorLen = run.VectorLen
			col.BOverA = run.Cost.B / run.Cost.A
			col.Cells = append(col.Cells, Table2Cell{Spec: s, Iterations: run.Iterations, Seconds: run.Seconds})
		}
		out.Columns = append(out.Columns, col)
	}
	return out, nil
}

// OptimalM returns the spec with the smallest simulated time in a column.
func (c Table2Column) OptimalM() MSpec {
	best := c.Cells[0].Spec
	bt := c.Cells[0].Seconds
	for _, cell := range c.Cells[1:] {
		if cell.Seconds < bt {
			best, bt = cell.Spec, cell.Seconds
		}
	}
	return best
}

// Render formats the table in the paper's layout: one column pair
// (iterations I, time T) per problem size.
func (t Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: %s iterations and timings, m-step SSOR PCG (tol=%g)\n", t.Machine, t.Tol)
	fmt.Fprintf(&b, "%-4s", "m")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " | %13s", fmt.Sprintf("a=%d v=%d", c.A, c.VectorLen))
	}
	fmt.Fprintf(&b, "\n%-4s", "")
	for range t.Columns {
		fmt.Fprintf(&b, " | %5s %7s", "I", "T(s)")
	}
	b.WriteString("\n")
	if len(t.Columns) > 0 {
		for i := range t.Columns[0].Cells {
			fmt.Fprintf(&b, "%-4s", t.Columns[0].Cells[i].Spec.Label())
			for _, c := range t.Columns {
				fmt.Fprintf(&b, " | %5d %7.3f", c.Cells[i].Iterations, c.Cells[i].Seconds)
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("optimal m per size:")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "  a=%d→%s", c.A, c.OptimalM().Label())
	}
	b.WriteString("\n")
	return b.String()
}
