package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cg"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/mesh"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/splitting"
)

// IrregularRow is one solve of an irregular-region problem.
type IrregularRow struct {
	Shape      string
	NumColors  int
	Equations  int
	Spec       MSpec
	Iterations int
}

// IrregularResult is the §5 future-work study: the m-step multicolor SSOR
// PCG method applied to non-rectangular regions, with the coloring found
// by the greedy graph colorer.
type IrregularResult struct {
	Rows []IrregularRow
}

// IrregularStudy solves an L-shaped plate and a plate with a hole for a
// sweep of preconditioners.
func IrregularStudy(size int, specs []MSpec) (IrregularResult, error) {
	shapes := []struct {
		name string
		dom  mesh.Domain
	}{
		{"L-shape", mesh.LShapedDomain(mesh.NewGrid(size, size))},
		{"hole", mesh.DomainWithHole(mesh.NewGrid(size, size), 0.4)},
	}
	var out IrregularResult
	for _, sh := range shapes {
		p, err := fem.NewDomainProblem(sh.dom, mesh.LeftEdgeClamped, fem.Material{})
		if err != nil {
			return IrregularResult{}, fmt.Errorf("%s: %w", sh.name, err)
		}
		kc := p.KColored
		rhs := p.ColoredRHS()
		mc, err := splitting.NewSixColorSSOR(kc, p.GroupStart)
		if err != nil {
			return IrregularResult{}, fmt.Errorf("%s: %w", sh.name, err)
		}
		var iv eigen.Interval
		needIv := false
		for _, s := range specs {
			if s.Param {
				needIv = true
			}
		}
		if needIv {
			iv, err = eigen.EstimateInterval(mc, 0.02, 1)
			if err != nil {
				return IrregularResult{}, fmt.Errorf("%s interval: %w", sh.name, err)
			}
		}
		for _, s := range specs {
			var p2 precond.Preconditioner = precond.Identity{}
			if s.M > 0 {
				a := poly.Ones(s.M)
				if s.Param {
					a, err = poly.LeastSquares(s.M, iv.Lo, iv.Hi)
					if err != nil {
						return IrregularResult{}, err
					}
				}
				p2, err = precond.NewMStep(mc, a)
				if err != nil {
					return IrregularResult{}, err
				}
			}
			_, st, err := cg.Solve(kc, rhs, p2, cg.Options{Tol: 1e-6, MaxIter: 100000})
			if err != nil {
				return IrregularResult{}, fmt.Errorf("%s %s: %w", sh.name, s.Label(), err)
			}
			out.Rows = append(out.Rows, IrregularRow{
				Shape:      sh.name,
				NumColors:  p.NumColors,
				Equations:  p.N(),
				Spec:       s,
				Iterations: st.Iterations,
			})
		}
	}
	return out, nil
}

// Render formats the study.
func (r IrregularResult) Render() string {
	var b strings.Builder
	b.WriteString("Irregular regions (§5 future work): greedy-colored multicolor SSOR PCG\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %-4s %10s\n", "shape", "colors", "eqs", "m", "iterations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %8d %8d %-4s %10d\n",
			row.Shape, row.NumColors, row.Equations, row.Spec.Label(), row.Iterations)
	}
	b.WriteString("the greedy colorer finds a small valid coloring; the m-step method\n")
	b.WriteString("then applies to the irregular region exactly as to the rectangle.\n")
	return b.String()
}
