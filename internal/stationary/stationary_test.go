package stationary

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fem"
	"repro/internal/model"
	"repro/internal/splitting"
	"repro/internal/vec"
)

func residualInf(kMul func([]float64) []float64, x, f []float64) float64 {
	r := kMul(x)
	vec.Sub(r, f, r)
	return vec.NormInf(r)
}

func TestJacobiSolverConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := model.RandomSPD(rng, 30, 3) // strongly diagonally dominant
	f := model.RandomVec(rng, 30)
	j, _ := splitting.NewJacobi(k)
	x, st, err := Solve(j, f, Options{Tol: 1e-12, MaxIter: 5000})
	if err != nil || !st.Converged {
		t.Fatalf("err=%v converged=%v", err, st.Converged)
	}
	if res := residualInf(k.MulVec, x, f); res > 1e-9 {
		t.Fatalf("residual %g", res)
	}
}

func TestSSORSolverOnPlate(t *testing.T) {
	plate, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := splitting.NewSixColorSSOR(plate.KColored, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	f := plate.ColoredRHS()
	x, st, err := Solve(mc, f, Options{Tol: 1e-10, MaxIter: 100000, History: true})
	if err != nil || !st.Converged {
		t.Fatalf("err=%v converged=%v", err, st.Converged)
	}
	if res := residualInf(plate.KColored.MulVec, x, f); res > 1e-7 {
		t.Fatalf("residual %g", res)
	}
	if len(st.History) != st.Sweeps {
		t.Fatal("history length")
	}
	// ‖Δx‖∞ decreases asymptotically (geometric convergence).
	h := st.History
	if h[len(h)-1] >= h[len(h)/2] {
		t.Fatal("no asymptotic decrease")
	}
}

func TestSolveOptionValidation(t *testing.T) {
	k := model.Laplacian1D(5)
	j, _ := splitting.NewJacobi(k)
	f := make([]float64, 5)
	if _, _, err := Solve(j, f[:3], Options{Tol: 1e-8}); err == nil {
		t.Fatal("short rhs accepted")
	}
	if _, _, err := Solve(j, f, Options{}); err == nil {
		t.Fatal("zero tol accepted")
	}
	if _, _, err := Solve(j, f, Options{Tol: 1e-8, X0: f[:2]}); err == nil {
		t.Fatal("short x0 accepted")
	}
}

func TestSolveMaxIterations(t *testing.T) {
	k := model.Poisson2D(8, 8)
	j, _ := splitting.NewJacobi(k)
	f := make([]float64, 64)
	f[0] = 1
	_, st, err := Solve(j, f, Options{Tol: 1e-14, MaxIter: 3})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("expected ErrMaxIterations, got %v", err)
	}
	if st.Sweeps != 3 {
		t.Fatalf("sweeps = %d", st.Sweeps)
	}
}

func TestSolveRespectsX0(t *testing.T) {
	k := model.Laplacian1D(10)
	ssor, _ := splitting.NewNaturalSSOR(k, 1)
	want := model.RandomVec(rand.New(rand.NewSource(2)), 10)
	f := k.MulVec(want)
	x, st, err := Solve(ssor, f, Options{Tol: 1e-12, X0: want, MaxIter: 10})
	if err != nil || !st.Converged || st.Sweeps != 1 {
		t.Fatalf("exact x0: err=%v sweeps=%d", err, st.Sweeps)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatal("x0 solution drifted")
		}
	}
}

func TestSORSolvesPoisson(t *testing.T) {
	k := model.Poisson2D(10, 10)
	f := make([]float64, 100)
	f[55] = 1
	for _, w := range []float64{1.0, 1.5} {
		s, err := NewSOR(k, w)
		if err != nil {
			t.Fatal(err)
		}
		x, st, err := Solve(s, f, Options{Tol: 1e-12, MaxIter: 20000})
		if err != nil || !st.Converged {
			t.Fatalf("ω=%g: err=%v", w, err)
		}
		if res := residualInf(k.MulVec, x, f); res > 1e-9 {
			t.Fatalf("ω=%g: residual %g", w, res)
		}
	}
}

func TestOptimalOmegaBeatsGaussSeidel(t *testing.T) {
	// Classic SOR theory: for the Poisson problem, ω* ≈ 2/(1+sin(πh))
	// converges in far fewer sweeps than ω=1.
	n := 15
	k := model.Poisson2D(n, n)
	f := make([]float64, n*n)
	f[n*n/2] = 1
	h := 1.0 / float64(n+1)
	wOpt := 2 / (1 + math.Sin(math.Pi*h))
	sweeps := func(w float64) int {
		s, err := NewSOR(k, w)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := Solve(s, f, Options{Tol: 1e-10, MaxIter: 100000})
		if err != nil {
			t.Fatal(err)
		}
		return st.Sweeps
	}
	gs, opt := sweeps(1), sweeps(wOpt)
	if opt >= gs {
		t.Fatalf("ω*=%.3f (%d sweeps) not better than Gauss–Seidel (%d)", wOpt, opt, gs)
	}
}

func TestMulticolorSORMatchesNaturalOnColoredMatrix(t *testing.T) {
	// On a multicolor-ordered matrix, the color sweep IS the natural
	// ascending sweep (decoupled groups), so the two must agree exactly.
	plate, err := fem.NewPlate(5, 5, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kc := plate.KColored
	f := plate.ColoredRHS()
	nat, _ := NewSOR(kc, 1.2)
	mc, err := NewMulticolorSOR(kc, 1.2, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, kc.Rows)
	b := make([]float64, kc.Rows)
	for i := range a {
		a[i] = float64(i % 3)
	}
	copy(b, a)
	nat.Step(a, f, 1)
	mc.Step(b, f, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweeps differ at %d", i)
		}
	}
	if mc.GroupStart() == nil || nat.GroupStart() != nil {
		t.Fatal("GroupStart exposure wrong")
	}
}

func TestSORConstructorErrors(t *testing.T) {
	k := model.Laplacian1D(4)
	if _, err := NewSOR(k, 0); err == nil {
		t.Fatal("ω=0 accepted")
	}
	if _, err := NewSOR(k, 2); err == nil {
		t.Fatal("ω=2 accepted")
	}
	if _, err := NewMulticolorSOR(k, 1, []int{0, 2}); err == nil {
		t.Fatal("bad boundaries accepted")
	}
}

func TestSORNames(t *testing.T) {
	k := model.Laplacian1D(4)
	s1, _ := NewSOR(k, 1)
	if s1.Name() != "sor" {
		t.Fatalf("name %q", s1.Name())
	}
	s2, _ := NewSOR(k, 1.5)
	if s2.Name() == "sor" {
		t.Fatal("ω missing from name")
	}
	mc, _ := NewMulticolorSOR(k, 1, []int{0, 1, 2, 3, 4})
	if mc.Name() != "sor-multicolor" {
		t.Fatalf("name %q", mc.Name())
	}
}

// SOR as a Splitting: PCG must reject it (not symmetric) — failure
// injection through the validation layer.
func TestSORNotSymmetricAsPreconditioner(t *testing.T) {
	k := model.Poisson2D(6, 6)
	s, _ := NewSOR(k, 1)
	var _ splitting.Splitting = s // it satisfies the interface...
	// ...but its P⁻¹ is not symmetric:
	u := model.RandomVec(rand.New(rand.NewSource(3)), 36)
	v := model.RandomVec(rand.New(rand.NewSource(4)), 36)
	pu := make([]float64, 36)
	pv := make([]float64, 36)
	s.Step(pu, u, 1)
	s.Step(pv, v, 1)
	if math.Abs(vec.Dot(pu, v)-vec.Dot(u, pv)) < 1e-12 {
		t.Fatal("SOR unexpectedly symmetric — test matrix too special")
	}
}
