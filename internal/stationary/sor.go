package stationary

import (
	"fmt"

	"repro/internal/sparse"
)

// SOR is the successive-overrelaxation splitting: one forward sweep per
// Step. It is not symmetric (the SSOR splittings in internal/splitting are
// the symmetric variants usable as CG preconditioners); it exists here as
// a standalone stationary solver and as the multicolor SOR building block
// of Adams & Ortega (1982): with group boundaries supplied, the unknowns
// sweep color by color, each color solve being fully parallel.
type SOR struct {
	K     *sparse.CSR
	d     []float64
	omega float64
	start []int // nil = natural ordering (pointwise sweep)
}

// NewSOR builds a natural-ordering SOR sweep.
func NewSOR(k *sparse.CSR, omega float64) (*SOR, error) {
	return newSOR(k, omega, nil)
}

// NewMulticolorSOR builds the multicolor SOR sweep of Adams & Ortega: the
// matrix must be in multicolor ordering with the given group boundaries
// (each group's diagonal block diagonal).
func NewMulticolorSOR(k *sparse.CSR, omega float64, start []int) (*SOR, error) {
	if len(start) < 2 || start[0] != 0 || start[len(start)-1] != k.Rows {
		return nil, fmt.Errorf("stationary: group boundaries %v do not cover [0,%d]", start, k.Rows)
	}
	return newSOR(k, omega, start)
}

func newSOR(k *sparse.CSR, omega float64, start []int) (*SOR, error) {
	if k.Rows != k.Cols {
		return nil, fmt.Errorf("stationary: SOR needs a square matrix, got %d×%d", k.Rows, k.Cols)
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("stationary: SOR needs 0 < ω < 2, got %g", omega)
	}
	d := k.Diag()
	for i, di := range d {
		if di <= 0 {
			return nil, fmt.Errorf("stationary: SOR diagonal entry %d is %g (not positive)", i, di)
		}
	}
	return &SOR{K: k, d: d, omega: omega, start: start}, nil
}

// N returns the system dimension.
func (s *SOR) N() int { return s.K.Rows }

// Name identifies the sweep.
func (s *SOR) Name() string {
	kind := "sor"
	if s.start != nil {
		kind = "sor-multicolor"
	}
	if s.omega == 1 {
		return kind
	}
	return fmt.Sprintf("%s(ω=%g)", kind, s.omega)
}

// Step performs one forward SOR sweep: x ← G_ω·x + ω·(D−ωL)⁻¹·(α·f).
// With a multicolor ordering this is exactly one color-by-color sweep.
func (s *SOR) Step(x, f []float64, alpha float64) {
	k, w := s.K, s.omega
	for i := 0; i < k.Rows; i++ {
		var sum float64
		for p := k.RowPtr[i]; p < k.RowPtr[i+1]; p++ {
			j := k.ColIdx[p]
			if j != i {
				sum += k.Val[p] * x[j]
			}
		}
		gs := (alpha*f[i] - sum) / s.d[i]
		x[i] = (1-w)*x[i] + w*gs
	}
}

// GroupStart exposes the color boundaries (nil for natural ordering).
func (s *SOR) GroupStart() []int { return s.start }
