// Package stationary provides full stationary iterative solvers — Jacobi,
// SOR, SSOR and the multicolor SOR of Adams & Ortega (1982) — as the
// baselines the paper's PCG method is measured against, and as standalone
// solvers in their own right. The m-step preconditioner is literally m
// steps of one of these methods; this package runs them to convergence.
package stationary

import (
	"errors"
	"fmt"

	"repro/internal/splitting"
	"repro/internal/vec"
)

// ErrMaxIterations reports a run that hit its iteration cap before the
// stopping test fired.
var ErrMaxIterations = errors.New("stationary: maximum iterations reached without convergence")

// Options configure a stationary solve.
type Options struct {
	// Tol is the ‖x^{k+1}−x^k‖_∞ stopping threshold (the paper's test).
	Tol float64
	// MaxIter bounds the sweep count (default 100·n).
	MaxIter int
	// X0 is the initial guess (default zero).
	X0 []float64
	// History records per-sweep ‖Δx‖_∞ when true.
	History bool
}

// Stats reports a stationary solve.
type Stats struct {
	Sweeps     int
	Converged  bool
	FinalXDiff float64
	History    []float64
}

// Solve iterates x ← G·x + P⁻¹·f using the given splitting until the
// successive-iterate test passes. For SPD systems with a convergent
// splitting (SSOR always; Jacobi when 2D−K is SPD) this converges to
// K⁻¹·f.
func Solve(sp splitting.Splitting, f []float64, opt Options) ([]float64, Stats, error) {
	n := sp.N()
	if len(f) != n {
		return nil, Stats{}, fmt.Errorf("stationary: rhs length %d != n %d", len(f), n)
	}
	if opt.Tol <= 0 {
		return nil, Stats{}, fmt.Errorf("stationary: Tol must be positive")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100 * n
	}
	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return nil, Stats{}, fmt.Errorf("stationary: x0 length %d != n %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}
	prev := make([]float64, n)
	var st Stats
	for st.Sweeps = 0; st.Sweeps < opt.MaxIter; {
		copy(prev, x)
		sp.Step(x, f, 1)
		st.Sweeps++
		st.FinalXDiff = vec.MaxAbsDiff(x, prev)
		if opt.History {
			st.History = append(st.History, st.FinalXDiff)
		}
		if st.FinalXDiff < opt.Tol {
			st.Converged = true
			return x, st, nil
		}
	}
	return x, st, ErrMaxIterations
}
