package mesh

import "testing"

func TestBlockFactor(t *testing.T) {
	cases := []struct {
		p, maxR, maxC, pr, pc int
		ok                    bool
	}{
		{4, 10, 10, 2, 2, true},
		{6, 10, 10, 2, 3, true}, // near-square preferred over 1×6
		{5, 10, 10, 1, 5, true}, // prime: strip fallback (or 5×1)
		{9, 2, 10, 1, 9, true},  // rows capped
		{12, 3, 3, 0, 0, false}, // impossible
	}
	for _, c := range cases {
		pr, pc, ok := blockFactor(c.p, c.maxR, c.maxC)
		if ok != c.ok {
			t.Fatalf("blockFactor(%d,%d,%d) ok=%v want %v", c.p, c.maxR, c.maxC, ok, c.ok)
		}
		if !ok {
			continue
		}
		if pr*pc != c.p || pr > c.maxR || pc > c.maxC {
			t.Fatalf("blockFactor(%d,%d,%d) = %d×%d invalid", c.p, c.maxR, c.maxC, pr, pc)
		}
		if min(pr, pc) < min(c.pr, c.pc) {
			t.Fatalf("blockFactor(%d,%d,%d) = %d×%d less square than %d×%d",
				c.p, c.maxR, c.maxC, pr, pc, c.pr, c.pc)
		}
	}
}

func TestBlocksPartitionCoversAndBalances(t *testing.T) {
	// 12 rows × 12 free columns, 4 processors: 2×2 blocks of 6×6 nodes,
	// color-balanced (each 6×6 block has 12 of each color).
	g := NewGrid(12, 13)
	pt, err := NewPartition(g, LeftEdgeClamped, 4, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for q := 0; q < 4; q++ {
		if len(pt.Nodes[q]) != 36 {
			t.Fatalf("proc %d owns %d nodes, want 36", q, len(pt.Nodes[q]))
		}
		total += len(pt.Nodes[q])
	}
	if total != 144 {
		t.Fatalf("covered %d nodes", total)
	}
	if !pt.IsColorBalanced() {
		t.Fatalf("blocks not color balanced: %v", pt.ColorBalance())
	}
}

func TestBlocksNeighborsAreLocal(t *testing.T) {
	// In a 3×3 block tiling, a processor talks only to the ≤8 processors
	// of adjacent blocks (the machine's local-links assumption).
	g := NewGrid(9, 10)
	pt, err := NewPartition(g, LeftEdgeClamped, 9, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 9; p++ {
		pr, pc := p/3, p%3
		for _, q := range pt.NeighborProcs(p) {
			qr, qc := q/3, q%3
			dr, dc := qr-pr, qc-pc
			if dr < -1 || dr > 1 || dc < -1 || dc > 1 {
				t.Fatalf("proc %d (%d,%d) talks to non-adjacent %d (%d,%d)", p, pr, pc, q, qr, qc)
			}
		}
	}
}

func TestBlocksImpossibleRejected(t *testing.T) {
	g := NewGrid(3, 4) // 3 rows, 3 free columns
	if _, err := NewPartition(g, LeftEdgeClamped, 12, Blocks); err == nil {
		t.Fatal("12 blocks on 3×3 accepted")
	}
}

func TestBlocksOnFEMachine(t *testing.T) {
	// Blocks must produce valid partitions that the strategy consumers
	// (femachine) can use: check halo/border consistency.
	g := NewGrid(8, 9)
	pt, err := NewPartition(g, LeftEdgeClamped, 4, Blocks)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		for _, q := range pt.NeighborProcs(p) {
			if len(pt.BorderNodes(p, q)) == 0 {
				t.Fatalf("empty border %d->%d", p, q)
			}
		}
	}
}
