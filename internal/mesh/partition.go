package mesh

import (
	"fmt"
	"sort"
)

// Partition assigns the free nodes of a grid to P processors, mirroring the
// Finite Element Machine assignments of Figures 3 and 5: each processor
// receives a rectangle of nodes, and for the paper's configurations every
// processor holds an equal number of Red, Black and Green unconstrained
// nodes.
type Partition struct {
	Grid Grid
	P    int
	// Owner[nodeID] is the owning processor, or -1 for constrained nodes.
	Owner []int
	// Nodes[p] lists the natural ids owned by processor p, natural order.
	Nodes [][]int
}

// Strategy selects how the free columns/rows are divided among processors.
type Strategy int

const (
	// RowStrips divides the grid into P horizontal bands of rows
	// (Figure 5's two-processor assignment: top half / bottom half).
	RowStrips Strategy = iota
	// ColStrips divides the free columns into P vertical strips
	// (Figure 5's five-processor assignment: one free column each).
	ColStrips
	// Blocks tiles the grid with a near-square pr×pc processor array
	// (Figure 3's rectangular assignments). P must factor as pr·pc with
	// pr ≤ rows and pc ≤ free columns; the factorization closest to
	// square is chosen.
	Blocks
)

func (s Strategy) String() string {
	switch s {
	case RowStrips:
		return "row-strips"
	case ColStrips:
		return "col-strips"
	case Blocks:
		return "blocks"
	}
	return "?"
}

// blockFactor picks the factorization p = pr·pc closest to square with
// pr ≤ maxR and pc ≤ maxC; ok is false when none exists.
func blockFactor(p, maxR, maxC int) (pr, pc int, ok bool) {
	best := -1
	for r := 1; r <= p; r++ {
		if p%r != 0 {
			continue
		}
		c := p / r
		if r > maxR || c > maxC {
			continue
		}
		score := min(r, c) // prefer near-square
		if score > best {
			best, pr, pc = score, r, c
		}
	}
	return pr, pc, best >= 0
}

// NewPartition divides the free nodes among P processors using the given
// strategy. It returns an error when the strategy cannot give every
// processor at least one node.
func NewPartition(g Grid, constrained Constraint, p int, strat Strategy) (*Partition, error) {
	if p < 1 {
		return nil, fmt.Errorf("mesh: partition needs P >= 1, got %d", p)
	}
	free := g.FreeNodes(constrained)
	if len(free) < p {
		return nil, fmt.Errorf("mesh: %d free nodes cannot feed %d processors", len(free), p)
	}
	part := &Partition{Grid: g, P: p, Owner: make([]int, g.NumNodes()), Nodes: make([][]int, p)}
	for i := range part.Owner {
		part.Owner[i] = -1
	}
	switch strat {
	case RowStrips:
		// Band rows: processor q owns rows [q*Rows/P, (q+1)*Rows/P).
		if g.Rows < p {
			return nil, fmt.Errorf("mesh: %d rows cannot form %d row strips", g.Rows, p)
		}
		for _, id := range free {
			i, _ := g.NodeRC(id)
			q := i * p / g.Rows
			part.Owner[id] = q
		}
	case ColStrips:
		// Strip the *free* columns: build the sorted list of columns that
		// contain at least one free node and divide it evenly.
		colSet := map[int]bool{}
		for _, id := range free {
			_, j := g.NodeRC(id)
			colSet[j] = true
		}
		cols := make([]int, 0, len(colSet))
		for j := range colSet {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		if len(cols) < p {
			return nil, fmt.Errorf("mesh: %d free columns cannot form %d column strips", len(cols), p)
		}
		colOwner := map[int]int{}
		for k, j := range cols {
			colOwner[j] = k * p / len(cols)
		}
		for _, id := range free {
			_, j := g.NodeRC(id)
			part.Owner[id] = colOwner[j]
		}
	case Blocks:
		// Tile rows × free columns with a near-square processor array.
		colSet := map[int]bool{}
		for _, id := range free {
			_, j := g.NodeRC(id)
			colSet[j] = true
		}
		cols := make([]int, 0, len(colSet))
		for j := range colSet {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		pr, pc, ok := blockFactor(p, g.Rows, len(cols))
		if !ok {
			return nil, fmt.Errorf("mesh: cannot tile %d rows × %d free columns with %d blocks", g.Rows, len(cols), p)
		}
		colBlock := map[int]int{}
		for k, j := range cols {
			colBlock[j] = k * pc / len(cols)
		}
		for _, id := range free {
			i, j := g.NodeRC(id)
			part.Owner[id] = (i*pr/g.Rows)*pc + colBlock[j]
		}
	default:
		return nil, fmt.Errorf("mesh: unknown partition strategy %d", strat)
	}
	for _, id := range free {
		q := part.Owner[id]
		part.Nodes[q] = append(part.Nodes[q], id)
	}
	for q := 0; q < p; q++ {
		if len(part.Nodes[q]) == 0 {
			return nil, fmt.Errorf("mesh: processor %d received no nodes", q)
		}
	}
	return part, nil
}

// NeighborProcs returns, for processor p, the sorted set of other
// processors owning at least one stencil neighbor of p's nodes — the
// processors p must exchange border data with on the Finite Element
// Machine's local links.
func (pt *Partition) NeighborProcs(p int) []int {
	seen := map[int]bool{}
	for _, id := range pt.Nodes[p] {
		i, j := pt.Grid.NodeRC(id)
		for _, nb := range pt.Grid.Neighbors(i, j) {
			q := pt.Owner[nb]
			if q >= 0 && q != p {
				seen[q] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// BorderNodes returns the nodes owned by p that some node of q depends on
// (i.e. the values p must send to q each exchange), in natural order.
func (pt *Partition) BorderNodes(p, q int) []int {
	seen := map[int]bool{}
	for _, id := range pt.Nodes[q] {
		i, j := pt.Grid.NodeRC(id)
		for _, nb := range pt.Grid.Neighbors(i, j) {
			if pt.Owner[nb] == p {
				seen[nb] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// HaloNodes returns the nodes NOT owned by p whose values p needs (the
// receive side of the exchange), in natural order.
func (pt *Partition) HaloNodes(p int) []int {
	seen := map[int]bool{}
	for _, id := range pt.Nodes[p] {
		i, j := pt.Grid.NodeRC(id)
		for _, nb := range pt.Grid.Neighbors(i, j) {
			if q := pt.Owner[nb]; q >= 0 && q != p {
				seen[nb] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ColorBalance returns per-processor color counts; the paper's assignments
// give every processor identical counts, which Table 3's ideal-speedup
// argument relies on.
func (pt *Partition) ColorBalance() [][NumColors]int {
	out := make([][NumColors]int, pt.P)
	for q := 0; q < pt.P; q++ {
		out[q] = pt.Grid.ColorCounts(pt.Nodes[q])
	}
	return out
}

// IsColorBalanced reports whether every processor owns the same number of
// nodes of every color.
func (pt *Partition) IsColorBalanced() bool {
	bal := pt.ColorBalance()
	for q := 1; q < pt.P; q++ {
		if bal[q] != bal[0] {
			return false
		}
	}
	return true
}
