package mesh

import (
	"fmt"

	"repro/internal/sparse"
)

// GeneralOrdering is the multicolor unknown ordering for an arbitrary node
// coloring with k colors: 2k unknown groups (color × displacement
// component), generalizing the 6-color ordering of the rectangular plate.
type GeneralOrdering struct {
	NumColors  int
	Perm       sparse.Perm // perm[new] = old reduced-dof index
	GroupStart []int       // len 2*NumColors+1
	NodeOfNew  []int
	CompOfNew  []int
}

// NewGeneralOrdering orders the unknowns of the free nodes (each carrying
// components 0 and 1) by (color, component) groups, preserving free-list
// order within a group. colorOf maps a free-list position to its node
// color in [0, numColors).
func NewGeneralOrdering(numFree int, colorOf func(freeIdx int) int, numColors int) (*GeneralOrdering, error) {
	if numColors < 1 {
		return nil, fmt.Errorf("mesh: general ordering needs >= 1 color, got %d", numColors)
	}
	o := &GeneralOrdering{
		NumColors:  numColors,
		Perm:       make(sparse.Perm, 0, 2*numFree),
		GroupStart: make([]int, 2*numColors+1),
		NodeOfNew:  make([]int, 0, 2*numFree),
		CompOfNew:  make([]int, 0, 2*numFree),
	}
	for g := 0; g < 2*numColors; g++ {
		o.GroupStart[g] = len(o.Perm)
		color := g / 2
		comp := g % 2
		for k := 0; k < numFree; k++ {
			c := colorOf(k)
			if c < 0 || c >= numColors {
				return nil, fmt.Errorf("mesh: free node %d has color %d outside [0,%d)", k, c, numColors)
			}
			if c != color {
				continue
			}
			o.Perm = append(o.Perm, 2*k+comp)
			o.NodeOfNew = append(o.NodeOfNew, k)
			o.CompOfNew = append(o.CompOfNew, comp)
		}
	}
	o.GroupStart[2*numColors] = len(o.Perm)
	if len(o.Perm) != 2*numFree {
		return nil, fmt.Errorf("mesh: ordering covered %d of %d unknowns", len(o.Perm), 2*numFree)
	}
	return o, nil
}
