package mesh

import (
	"testing"
	"testing/quick"
)

func TestFreeNodesLeftEdge(t *testing.T) {
	g := NewGrid(6, 6)
	free := g.FreeNodes(LeftEdgeClamped)
	if len(free) != 30 { // the paper's 60-equation problem: 30 free nodes
		t.Fatalf("free nodes = %d, want 30", len(free))
	}
	for _, id := range free {
		_, j := g.NodeRC(id)
		if j == 0 {
			t.Fatalf("constrained node %d in free list", id)
		}
	}
}

func TestFreeNodesNoConstraint(t *testing.T) {
	g := NewGrid(3, 4)
	if got := len(g.FreeNodes(NoConstraint)); got != 12 {
		t.Fatalf("free nodes = %d, want 12", got)
	}
}

func TestGroupOf(t *testing.T) {
	if GroupOf(Red, 0) != 0 || GroupOf(Red, 1) != 1 {
		t.Fatal("Red groups wrong")
	}
	if GroupOf(Green, 1) != 5 {
		t.Fatal("Green v group wrong")
	}
	if GroupOf(Black, 0).String() != "Bu" {
		t.Fatalf("group name = %s", GroupOf(Black, 0))
	}
}

func TestGroupOfPanicsOnBadComp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GroupOf(Red, 2)
}

func TestMulticolorOrderingIsPermutation(t *testing.T) {
	f := func(r, c uint8) bool {
		g := NewGrid(2+int(r)%10, 2+int(c)%10)
		free := g.FreeNodes(LeftEdgeClamped)
		o := g.NewMulticolorOrdering(free)
		return o.Perm.Valid() && len(o.Perm) == 2*len(free)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulticolorOrderingGroupsSorted(t *testing.T) {
	g := NewGrid(6, 6)
	free := g.FreeNodes(LeftEdgeClamped)
	o := g.NewMulticolorOrdering(free)
	// Group boundaries are nondecreasing and cover everything.
	if o.GroupStart[0] != 0 || o.GroupStart[NumGroups] != len(o.Perm) {
		t.Fatalf("group bounds %v", o.GroupStart)
	}
	for grp := UnknownGroup(0); grp < NumGroups; grp++ {
		lo, hi := o.GroupStart[grp], o.GroupStart[grp+1]
		for k := lo; k < hi; k++ {
			node := o.NodeOfNew[k]
			comp := o.CompOfNew[k]
			wantGroup := GroupOf(g.ColorOfID(node), comp)
			if wantGroup != grp {
				t.Fatalf("unknown %d in group %v but should be %v", k, grp, wantGroup)
			}
		}
	}
}

func TestMulticolorOrderingGroupSizesEqualUV(t *testing.T) {
	// u and v groups of the same color must have identical sizes.
	g := NewGrid(7, 9)
	o := g.NewMulticolorOrdering(g.FreeNodes(LeftEdgeClamped))
	for c := 0; c < NumColors; c++ {
		u := o.GroupSize(UnknownGroup(2 * c))
		v := o.GroupSize(UnknownGroup(2*c + 1))
		if u != v {
			t.Fatalf("color %d: u group %d != v group %d", c, u, v)
		}
	}
}

func TestGroupOfNew(t *testing.T) {
	g := NewGrid(4, 4)
	o := g.NewMulticolorOrdering(g.FreeNodes(NoConstraint))
	for k := 0; k < len(o.Perm); k++ {
		grp := o.GroupOfNew(k)
		if k < o.GroupStart[grp] || k >= o.GroupStart[grp+1] {
			t.Fatalf("GroupOfNew(%d) = %v outside its bounds", k, grp)
		}
	}
}

func TestOrderingPermMapsComponentsConsistently(t *testing.T) {
	// perm[new] = 2k+comp where k is the free-list position of the node.
	g := NewGrid(5, 5)
	free := g.FreeNodes(LeftEdgeClamped)
	pos := map[int]int{}
	for k, id := range free {
		pos[id] = k
	}
	o := g.NewMulticolorOrdering(free)
	for newIdx, old := range o.Perm {
		node := o.NodeOfNew[newIdx]
		comp := o.CompOfNew[newIdx]
		if old != 2*pos[node]+comp {
			t.Fatalf("perm[%d] = %d, want %d", newIdx, old, 2*pos[node]+comp)
		}
	}
}
