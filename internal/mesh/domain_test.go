package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullDomainMatchesGrid(t *testing.T) {
	g := NewGrid(5, 6)
	d := FullDomain(g)
	if d.NumActiveCells() != 4*5 {
		t.Fatalf("active cells = %d", d.NumActiveCells())
	}
	if len(d.Triangles()) != len(g.Triangles()) {
		t.Fatal("full domain triangle count differs from grid")
	}
	if len(d.ActiveNodes()) != g.NumNodes() {
		t.Fatal("full domain should touch all nodes")
	}
}

func TestLShapedDomain(t *testing.T) {
	g := NewGrid(7, 7)
	d := LShapedDomain(g)
	if d.NumActiveCells() >= 36 || d.NumActiveCells() == 0 {
		t.Fatalf("L-shape cells = %d", d.NumActiveCells())
	}
	// Upper-right quadrant cells inactive.
	if d.CellActive(5, 5) {
		t.Fatal("upper-right cell active")
	}
	if !d.CellActive(0, 0) || !d.CellActive(5, 0) || !d.CellActive(0, 5) {
		t.Fatal("arm cells inactive")
	}
	// The NE corner node of the grid is untouched.
	nodes := d.ActiveNodes()
	for _, id := range nodes {
		if id == g.NodeID(6, 6) {
			t.Fatal("NE corner node should be inactive")
		}
	}
}

func TestDomainWithHole(t *testing.T) {
	g := NewGrid(9, 9)
	d := DomainWithHole(g, 0.5)
	if d.NumActiveCells() >= 64 {
		t.Fatal("hole removed nothing")
	}
	if d.CellActive(4, 4) {
		t.Fatal("center cell should be in the hole")
	}
}

func TestCellActiveOutOfRange(t *testing.T) {
	d := FullDomain(NewGrid(3, 3))
	if d.CellActive(-1, 0) || d.CellActive(0, 5) {
		t.Fatal("out-of-range cells reported active")
	}
}

func TestNewDomainEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDomain(NewGrid(3, 3), func(ci, cj int) bool { return false })
}

func TestAdjacencySymmetricAndMatchesTriangles(t *testing.T) {
	d := LShapedDomain(NewGrid(6, 6))
	nodes, adj := d.Adjacency()
	if len(nodes) != len(adj) {
		t.Fatal("lengths differ")
	}
	for v, nbs := range adj {
		for _, u := range nbs {
			found := false
			for _, w := range adj[u] {
				if w == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d-%d", v, u)
			}
		}
	}
}

func TestGreedyColoringValidOnDomains(t *testing.T) {
	f := func(r, c uint8, shape uint8) bool {
		g := NewGrid(3+int(r)%8, 3+int(c)%8)
		var d Domain
		switch shape % 3 {
		case 0:
			d = FullDomain(g)
		case 1:
			d = LShapedDomain(g)
		default:
			d = DomainWithHole(g, 0.4)
		}
		_, adj := d.Adjacency()
		colors, nc := GreedyColoring(adj)
		if VerifyGraphColoring(adj, colors) != nil {
			return false
		}
		// Triangulated planar graphs need >= 3 and greedy stays small.
		return nc >= 3 && nc <= 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyColoringTrivialGraphs(t *testing.T) {
	// No edges: one color.
	colors, nc := GreedyColoring(make([][]int, 4))
	if nc != 1 {
		t.Fatalf("edgeless graph used %d colors", nc)
	}
	for _, c := range colors {
		if c != 0 {
			t.Fatal("edgeless graph should be monochrome")
		}
	}
	// Path graph: two colors.
	_, nc = GreedyColoring([][]int{{1}, {0, 2}, {1}})
	if nc != 2 {
		t.Fatalf("path used %d colors", nc)
	}
}

func TestVerifyGraphColoringDetectsConflict(t *testing.T) {
	adj := [][]int{{1}, {0}}
	if err := VerifyGraphColoring(adj, []int{0, 0}); err == nil {
		t.Fatal("conflict not detected")
	}
	if err := VerifyGraphColoring(adj, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralOrderingIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numFree := 1 + rng.Intn(40)
		numColors := 1 + rng.Intn(5)
		cols := make([]int, numFree)
		for i := range cols {
			cols[i] = rng.Intn(numColors)
		}
		o, err := NewGeneralOrdering(numFree, func(k int) int { return cols[k] }, numColors)
		if err != nil {
			return false
		}
		if !o.Perm.Valid() || len(o.Perm) != 2*numFree {
			return false
		}
		// Group boundaries consistent with colors.
		for g := 0; g < 2*numColors; g++ {
			for k := o.GroupStart[g]; k < o.GroupStart[g+1]; k++ {
				if cols[o.NodeOfNew[k]] != g/2 || o.CompOfNew[k] != g%2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralOrderingErrors(t *testing.T) {
	if _, err := NewGeneralOrdering(3, func(int) int { return 0 }, 0); err == nil {
		t.Fatal("zero colors accepted")
	}
	if _, err := NewGeneralOrdering(3, func(int) int { return 7 }, 2); err == nil {
		t.Fatal("out-of-range color accepted")
	}
}

func TestGeneralOrderingMatchesSixColorOnFullGrid(t *testing.T) {
	// On the full rectangular plate, the general ordering with the
	// structured coloring must reproduce the specialized 6-color ordering.
	g := NewGrid(5, 5)
	free := g.FreeNodes(LeftEdgeClamped)
	spec := g.NewMulticolorOrdering(free)
	gen, err := NewGeneralOrdering(len(free), func(k int) int {
		return int(g.ColorOfID(free[k]))
	}, NumColors)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Perm) != len(spec.Perm) {
		t.Fatal("sizes differ")
	}
	for i := range gen.Perm {
		if gen.Perm[i] != spec.Perm[i] {
			t.Fatalf("perm differs at %d: %d vs %d", i, gen.Perm[i], spec.Perm[i])
		}
	}
	for g2 := 0; g2 <= 2*NumColors; g2++ {
		if gen.GroupStart[g2] != spec.GroupStart[g2] {
			t.Fatal("group boundaries differ")
		}
	}
}
