package mesh

import (
	"fmt"

	"repro/internal/sparse"
)

// Constraint reports whether node (i, j) is constrained (removed from the
// unknown set). The paper's test problem clamps one edge of the plate.
type Constraint func(i, j int) bool

// LeftEdgeClamped is the paper's default constraint: the j = 0 column of
// nodes is fixed.
func LeftEdgeClamped(i, j int) bool { return j == 0 }

// NoConstraint leaves every node free (useful for tests).
func NoConstraint(i, j int) bool { return false }

// FreeNodes returns the natural ids of unconstrained nodes in natural
// order, which defines the reduced system's node numbering: free node k has
// displacement unknowns 2k (u) and 2k+1 (v).
func (g Grid) FreeNodes(constrained Constraint) []int {
	out := make([]int, 0, g.NumNodes())
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			if !constrained(i, j) {
				out = append(out, g.NodeID(i, j))
			}
		}
	}
	return out
}

// UnknownGroup identifies one of the six unknown colors of eq. (3.1):
// group = 2*color + component, with component 0 = u, 1 = v. Groups are
// ordered Red(u), Red(v), Black(u), Black(v), Green(u), Green(v), matching
// the paper's numbering "by these six colors from bottom to top, left to
// right".
type UnknownGroup int

// NumGroups is the number of unknown colors (6 = 3 node colors × 2
// displacement components).
const NumGroups = 2 * NumColors

// GroupOf returns the unknown group of component comp (0 = u, 1 = v) at a
// node of the given color.
func GroupOf(c Color, comp int) UnknownGroup {
	if comp != 0 && comp != 1 {
		panic(fmt.Sprintf("mesh: component %d not in {0,1}", comp))
	}
	return UnknownGroup(2*int(c) + comp)
}

func (u UnknownGroup) String() string {
	comp := "u"
	if u%2 == 1 {
		comp = "v"
	}
	return Color(u/2).String() + comp
}

// MulticolorOrdering carries the 6-color permutation of the reduced system
// and the block partition it induces.
type MulticolorOrdering struct {
	Perm       sparse.Perm // perm[new] = old reduced-dof index
	GroupStart [NumGroups + 1]int
	// NodeOfNew[k] is the natural node id of new-ordered unknown k;
	// CompOfNew[k] is its displacement component (0=u, 1=v).
	NodeOfNew []int
	CompOfNew []int
}

// GroupSize returns the number of unknowns in group g.
func (o *MulticolorOrdering) GroupSize(g UnknownGroup) int {
	return o.GroupStart[g+1] - o.GroupStart[g]
}

// GroupOfNew returns the group of new-ordered unknown k.
func (o *MulticolorOrdering) GroupOfNew(k int) UnknownGroup {
	for g := UnknownGroup(0); g < NumGroups; g++ {
		if k < o.GroupStart[g+1] {
			return g
		}
	}
	panic(fmt.Sprintf("mesh: unknown index %d outside ordering of size %d", k, len(o.Perm)))
}

// NewMulticolorOrdering builds the 6-color ordering of the reduced system
// defined by the given free-node list. Within each group, unknowns keep
// their natural bottom-to-top, left-to-right node order.
func (g Grid) NewMulticolorOrdering(free []int) *MulticolorOrdering {
	n := 2 * len(free)
	o := &MulticolorOrdering{
		Perm:      make(sparse.Perm, 0, n),
		NodeOfNew: make([]int, 0, n),
		CompOfNew: make([]int, 0, n),
	}
	for grp := UnknownGroup(0); grp < NumGroups; grp++ {
		o.GroupStart[grp] = len(o.Perm)
		color := Color(grp / 2)
		comp := int(grp % 2)
		for k, id := range free {
			if g.ColorOfID(id) != color {
				continue
			}
			o.Perm = append(o.Perm, 2*k+comp) // reduced natural dof index
			o.NodeOfNew = append(o.NodeOfNew, id)
			o.CompOfNew = append(o.CompOfNew, comp)
		}
	}
	o.GroupStart[NumGroups] = len(o.Perm)
	return o
}
