package mesh

import "testing"

// paperGrid is the 6×6-node, 60-equation Finite Element Machine test
// problem (left edge clamped: 30 free nodes).
func paperGrid() Grid { return NewGrid(6, 6) }

func TestPartitionTwoProcRowStrips(t *testing.T) {
	pt, err := NewPartition(paperGrid(), LeftEdgeClamped, 2, RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Nodes[0]) != 15 || len(pt.Nodes[1]) != 15 {
		t.Fatalf("node split %d/%d, want 15/15", len(pt.Nodes[0]), len(pt.Nodes[1]))
	}
	if !pt.IsColorBalanced() {
		t.Fatalf("two-processor assignment not color balanced: %v", pt.ColorBalance())
	}
	// Paper: each processor has 5 R, 5 B, 5 G.
	bal := pt.ColorBalance()
	if bal[0][Red] != 5 || bal[0][Black] != 5 || bal[0][Green] != 5 {
		t.Fatalf("color counts %v, want 5 each", bal[0])
	}
}

func TestPartitionFiveProcColStrips(t *testing.T) {
	pt, err := NewPartition(paperGrid(), LeftEdgeClamped, 5, ColStrips)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 5; q++ {
		if len(pt.Nodes[q]) != 6 {
			t.Fatalf("proc %d owns %d nodes, want 6", q, len(pt.Nodes[q]))
		}
	}
	if !pt.IsColorBalanced() {
		t.Fatalf("five-processor assignment not color balanced: %v", pt.ColorBalance())
	}
	// Paper: each processor has 2 R, 2 B, 2 G.
	bal := pt.ColorBalance()
	if bal[0][Red] != 2 || bal[0][Black] != 2 || bal[0][Green] != 2 {
		t.Fatalf("color counts %v, want 2 each", bal[0])
	}
}

func TestPartitionSingleProc(t *testing.T) {
	pt, err := NewPartition(paperGrid(), LeftEdgeClamped, 1, RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Nodes[0]) != 30 {
		t.Fatalf("single proc owns %d nodes", len(pt.Nodes[0]))
	}
	if len(pt.NeighborProcs(0)) != 0 {
		t.Fatal("single proc should have no neighbors")
	}
	if len(pt.HaloNodes(0)) != 0 {
		t.Fatal("single proc should need no halo")
	}
}

func TestPartitionCoversExactlyFreeNodes(t *testing.T) {
	g := NewGrid(8, 9)
	pt, err := NewPartition(g, LeftEdgeClamped, 4, RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for q := 0; q < pt.P; q++ {
		total += len(pt.Nodes[q])
		for _, id := range pt.Nodes[q] {
			if pt.Owner[id] != q {
				t.Fatalf("node %d owner mismatch", id)
			}
		}
	}
	if total != len(g.FreeNodes(LeftEdgeClamped)) {
		t.Fatalf("partition covers %d nodes, want %d", total, len(g.FreeNodes(LeftEdgeClamped)))
	}
	for _, id := range g.FreeNodes(NoConstraint) {
		_, j := g.NodeRC(id)
		if j == 0 && pt.Owner[id] != -1 {
			t.Fatalf("constrained node %d has owner", id)
		}
	}
}

func TestNeighborAndBorderConsistency(t *testing.T) {
	pt, err := NewPartition(paperGrid(), LeftEdgeClamped, 5, ColStrips)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < pt.P; p++ {
		for _, q := range pt.NeighborProcs(p) {
			// If q is a neighbor of p, p must send q at least one node...
			if len(pt.BorderNodes(p, q)) == 0 {
				t.Fatalf("proc %d neighbor %d has empty border", p, q)
			}
			// ...and the relation is symmetric.
			found := false
			for _, r := range pt.NeighborProcs(q) {
				if r == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", p, q)
			}
		}
	}
}

func TestHaloIsUnionOfIncomingBorders(t *testing.T) {
	pt, err := NewPartition(paperGrid(), LeftEdgeClamped, 2, RowStrips)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < pt.P; p++ {
		halo := map[int]bool{}
		for _, id := range pt.HaloNodes(p) {
			halo[id] = true
		}
		union := map[int]bool{}
		for _, q := range pt.NeighborProcs(p) {
			for _, id := range pt.BorderNodes(q, p) {
				union[id] = true
			}
		}
		if len(halo) != len(union) {
			t.Fatalf("proc %d: halo %d nodes, union of borders %d", p, len(halo), len(union))
		}
		for id := range halo {
			if !union[id] {
				t.Fatalf("proc %d: halo node %d not in any border", p, id)
			}
		}
	}
}

func TestColStripNonAdjacentProcsDontTalk(t *testing.T) {
	// In 1-column strips, the stencil reaches one column away, so each
	// processor talks to adjacent strips only (the paper's Figure 5
	// observation that processors 1 and 4 share no triangle).
	pt, err := NewPartition(paperGrid(), LeftEdgeClamped, 5, ColStrips)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 5; p++ {
		for _, q := range pt.NeighborProcs(p) {
			if q != p-1 && q != p+1 {
				t.Fatalf("proc %d talks to non-adjacent proc %d", p, q)
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	g := paperGrid()
	if _, err := NewPartition(g, LeftEdgeClamped, 0, RowStrips); err == nil {
		t.Fatal("P=0 accepted")
	}
	if _, err := NewPartition(g, LeftEdgeClamped, 7, RowStrips); err == nil {
		t.Fatal("7 row strips of 6 rows accepted")
	}
	if _, err := NewPartition(g, LeftEdgeClamped, 6, ColStrips); err == nil {
		t.Fatal("6 col strips of 5 free columns accepted")
	}
	if _, err := NewPartition(g, LeftEdgeClamped, 2, Strategy(99)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := NewPartition(g, LeftEdgeClamped, 31, ColStrips); err == nil {
		t.Fatal("more processors than nodes accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if RowStrips.String() != "row-strips" || ColStrips.String() != "col-strips" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(42).String() != "?" {
		t.Fatal("unknown strategy name")
	}
}
