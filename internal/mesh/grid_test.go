package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeIDRoundTrip(t *testing.T) {
	g := NewGrid(4, 7)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			id := g.NodeID(i, j)
			ri, rj := g.NodeRC(id)
			if ri != i || rj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", i, j, id, ri, rj)
			}
		}
	}
}

func TestNodeIDBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(3, 3).NodeID(3, 0)
}

func TestNewGridTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(1, 5)
}

func TestTriangleCount(t *testing.T) {
	g := NewGrid(3, 4)
	if got, want := len(g.Triangles()), 2*2*3; got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
}

func TestColoringValidOnRandomGrids(t *testing.T) {
	f := func(r, c uint8) bool {
		rows := 2 + int(r)%20
		cols := 2 + int(c)%20
		g := NewGrid(rows, cols)
		return g.VerifyColoring() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColorOfPattern(t *testing.T) {
	g := NewGrid(3, 3)
	// (0,0)=R, (0,1)=B, (0,2)=G; next row shifts by one.
	if g.ColorOf(0, 0) != Red || g.ColorOf(0, 1) != Black || g.ColorOf(0, 2) != Green {
		t.Fatal("row coloring wrong")
	}
	if g.ColorOf(1, 0) != Black || g.ColorOf(2, 0) != Green {
		t.Fatal("column coloring wrong")
	}
}

func TestNeighborsInterior(t *testing.T) {
	g := NewGrid(5, 5)
	nb := g.Neighbors(2, 2)
	if len(nb) != 6 {
		t.Fatalf("interior node should have 6 neighbors, got %d", len(nb))
	}
	// All neighbors differ in color from the center.
	cc := g.ColorOf(2, 2)
	for _, id := range nb {
		if g.ColorOfID(id) == cc {
			t.Fatalf("neighbor %d shares color %v with center", id, cc)
		}
	}
}

func TestNeighborsCorner(t *testing.T) {
	g := NewGrid(5, 5)
	// SW corner (0,0) has E, N, NE.
	if got := len(g.Neighbors(0, 0)); got != 3 {
		t.Fatalf("SW corner neighbors = %d, want 3", got)
	}
	// NW corner (Rows-1, 0) has E and S only (no NE/SW in grid, no W/N).
	if got := len(g.Neighbors(4, 0)); got != 2 {
		t.Fatalf("NW corner neighbors = %d, want 2", got)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	g := NewGrid(6, 7)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			id := g.NodeID(i, j)
			for _, nb := range g.Neighbors(i, j) {
				ni, nj := g.NodeRC(nb)
				found := false
				for _, back := range g.Neighbors(ni, nj) {
					if back == id {
						found = true
					}
				}
				if !found {
					t.Fatalf("stencil not symmetric: %d -> %d", id, nb)
				}
			}
		}
	}
}

func TestNeighborsMatchTriangles(t *testing.T) {
	// Two nodes are stencil neighbors iff they share a triangle.
	g := NewGrid(5, 6)
	shares := map[[2]int]bool{}
	for _, tr := range g.Triangles() {
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				if a != b {
					shares[[2]int{tr[a], tr[b]}] = true
				}
			}
		}
	}
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			id := g.NodeID(i, j)
			nbs := map[int]bool{}
			for _, nb := range g.Neighbors(i, j) {
				nbs[nb] = true
				if !shares[[2]int{id, nb}] {
					t.Fatalf("stencil neighbor %d-%d share no triangle", id, nb)
				}
			}
			for pair := range shares {
				if pair[0] == id && !nbs[pair[1]] {
					t.Fatalf("triangle neighbor %d-%d missing from stencil", id, pair[1])
				}
			}
		}
	}
}

func TestXYCorners(t *testing.T) {
	g := NewGrid(3, 5)
	if x, y := g.XY(0, 0); x != 0 || y != 0 {
		t.Fatalf("XY(0,0) = (%v,%v)", x, y)
	}
	if x, y := g.XY(2, 4); x != 1 || y != 1 {
		t.Fatalf("XY(max) = (%v,%v)", x, y)
	}
}

func TestColorCountsBalancedGrid(t *testing.T) {
	// A 3×3 block of columns has exactly equal colors per row set.
	g := NewGrid(3, 3)
	all := make([]int, 0, 9)
	for id := 0; id < 9; id++ {
		all = append(all, id)
	}
	counts := g.ColorCounts(all)
	if counts[Red] != 3 || counts[Black] != 3 || counts[Green] != 3 {
		t.Fatalf("ColorCounts = %v", counts)
	}
}

func TestColorString(t *testing.T) {
	if Red.String() != "R" || Black.String() != "B" || Green.String() != "G" {
		t.Fatal("color names wrong")
	}
	if Color(9).String() != "?" {
		t.Fatal("unknown color should print ?")
	}
}

var _ = rand.Int // keep rand import if quick seeds change
