// Package mesh models the paper's test domain: a rectangular plate
// discretized with linear triangular elements, its Red/Black/Green node
// coloring (Figure 1), the resulting 6-color unknown ordering that decouples
// the plane-stress system into the block form of eq. (3.1), and the
// node-to-processor partitionings used on the Finite Element Machine
// (Figures 3 and 5).
package mesh

import "fmt"

// Color is a node color in the 3-coloring of the triangulated grid.
type Color int

// The three node colors of Figure 1. A node at row i, column j has color
// (i+j) mod 3, which gives every triangle three distinct colors.
const (
	Red Color = iota
	Black
	Green
)

func (c Color) String() string {
	switch c {
	case Red:
		return "R"
	case Black:
		return "B"
	case Green:
		return "G"
	}
	return "?"
}

// NumColors is the number of node colors; with the two displacement
// components u and v per node the system has 2*NumColors = 6 unknown colors.
const NumColors = 3

// Grid is an a×(b+1)-node rectangular plate: Rows rows of nodes and Cols
// columns of nodes. Following the paper, the leftmost column (j = 0) is the
// constrained edge by default, so Cols = b+1 where b is the paper's "number
// of columns of unconstrained nodes".
type Grid struct {
	Rows, Cols int
}

// NewGrid returns a grid with the given node counts; it panics if either
// dimension is less than 2 (no elements would exist).
func NewGrid(rows, cols int) Grid {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("mesh: grid needs at least 2×2 nodes, got %d×%d", rows, cols))
	}
	return Grid{Rows: rows, Cols: cols}
}

// NumNodes returns the total node count Rows*Cols.
func (g Grid) NumNodes() int { return g.Rows * g.Cols }

// NodeID maps (row, col) to the natural node index, bottom-to-top,
// left-to-right within a row.
func (g Grid) NodeID(i, j int) int {
	if i < 0 || i >= g.Rows || j < 0 || j >= g.Cols {
		panic(fmt.Sprintf("mesh: node (%d,%d) outside %d×%d grid", i, j, g.Rows, g.Cols))
	}
	return i*g.Cols + j
}

// NodeRC inverts NodeID.
func (g Grid) NodeRC(id int) (i, j int) {
	return id / g.Cols, id % g.Cols
}

// ColorOf returns the color of node (i, j).
func (g Grid) ColorOf(i, j int) Color { return Color((i + j) % NumColors) }

// ColorOfID returns the color of a node given its natural index.
func (g Grid) ColorOfID(id int) Color {
	i, j := g.NodeRC(id)
	return g.ColorOf(i, j)
}

// XY returns the coordinates of node (i, j) on the unit square: column j
// gives x, row i gives y.
func (g Grid) XY(i, j int) (x, y float64) {
	return float64(j) / float64(g.Cols-1), float64(i) / float64(g.Rows-1)
}

// Triangle is a triangular element given by its three node ids in
// counterclockwise order.
type Triangle [3]int

// Triangles enumerates the two triangles per grid cell. Each cell
// (i, j)→(i+1, j+1) is split along the SW–NE diagonal:
//
//	lower: (i,j) (i,j+1) (i+1,j+1)
//	upper: (i,j) (i+1,j+1) (i+1,j)
//
// This split yields the paper's Figure 2 stencil: every interior node
// couples to its E, W, N, S, NE and SW neighbors (6 neighbors, so 7 nodes
// × 2 components = 14 potential nonzeros per equation).
func (g Grid) Triangles() []Triangle {
	tris := make([]Triangle, 0, 2*(g.Rows-1)*(g.Cols-1))
	for i := 0; i < g.Rows-1; i++ {
		for j := 0; j < g.Cols-1; j++ {
			sw := g.NodeID(i, j)
			se := g.NodeID(i, j+1)
			ne := g.NodeID(i+1, j+1)
			nw := g.NodeID(i+1, j)
			tris = append(tris, Triangle{sw, se, ne}, Triangle{sw, ne, nw})
		}
	}
	return tris
}

// stencilOffsets lists the (di, dj) of the 6 neighbors in the Figure 2
// stencil.
var stencilOffsets = [6][2]int{
	{0, 1}, {0, -1}, {1, 0}, {-1, 0}, {1, 1}, {-1, -1},
}

// Neighbors returns the natural ids of the in-grid stencil neighbors of
// node (i, j), in a fixed deterministic order.
func (g Grid) Neighbors(i, j int) []int {
	out := make([]int, 0, 6)
	for _, d := range stencilOffsets {
		ni, nj := i+d[0], j+d[1]
		if ni >= 0 && ni < g.Rows && nj >= 0 && nj < g.Cols {
			out = append(out, g.NodeID(ni, nj))
		}
	}
	return out
}

// VerifyColoring checks that every triangle has three distinct node colors
// — the decoupling property the multicolor ordering relies on. It returns
// an error naming the first offending triangle.
func (g Grid) VerifyColoring() error {
	for _, tr := range g.Triangles() {
		c0 := g.ColorOfID(tr[0])
		c1 := g.ColorOfID(tr[1])
		c2 := g.ColorOfID(tr[2])
		if c0 == c1 || c0 == c2 || c1 == c2 {
			return fmt.Errorf("mesh: triangle %v has colors %v/%v/%v", tr, c0, c1, c2)
		}
	}
	return nil
}

// ColorCounts returns how many nodes of each color appear among the given
// node ids.
func (g Grid) ColorCounts(nodes []int) [NumColors]int {
	var out [NumColors]int
	for _, id := range nodes {
		out[g.ColorOfID(id)]++
	}
	return out
}
