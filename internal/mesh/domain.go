package mesh

import (
	"fmt"
	"sort"
)

// Domain is an irregular region: a subset of the grid's cells. The paper's
// §5 notes that applying the method to irregular regions "remains a
// problem" because the grid must be colored; this type plus GreedyColoring
// and NewGeneralOrdering implement that extension.
type Domain struct {
	Grid   Grid
	active []bool // per cell, index ci*(Cols-1)+cj
}

// NewDomain builds a domain from a cell predicate. It panics if no cell is
// active (programming error).
func NewDomain(g Grid, activeCell func(ci, cj int) bool) Domain {
	d := Domain{Grid: g, active: make([]bool, (g.Rows-1)*(g.Cols-1))}
	any := false
	for ci := 0; ci < g.Rows-1; ci++ {
		for cj := 0; cj < g.Cols-1; cj++ {
			if activeCell(ci, cj) {
				d.active[ci*(g.Cols-1)+cj] = true
				any = true
			}
		}
	}
	if !any {
		panic("mesh: domain has no active cells")
	}
	return d
}

// FullDomain activates every cell (the paper's rectangular plate).
func FullDomain(g Grid) Domain {
	return NewDomain(g, func(ci, cj int) bool { return true })
}

// LShapedDomain removes the upper-right quadrant of cells.
func LShapedDomain(g Grid) Domain {
	return NewDomain(g, func(ci, cj int) bool {
		return ci < (g.Rows-1)/2 || cj < (g.Cols-1)/2
	})
}

// DomainWithHole removes a centered block of cells.
func DomainWithHole(g Grid, holeFrac float64) Domain {
	cr, cc := g.Rows-1, g.Cols-1
	hr := int(float64(cr) * holeFrac / 2)
	hc := int(float64(cc) * holeFrac / 2)
	return NewDomain(g, func(ci, cj int) bool {
		inHoleRows := ci >= cr/2-hr && ci < cr/2+hr
		inHoleCols := cj >= cc/2-hc && cj < cc/2+hc
		return !(inHoleRows && inHoleCols)
	})
}

// CellActive reports whether cell (ci, cj) is in the domain.
func (d Domain) CellActive(ci, cj int) bool {
	if ci < 0 || ci >= d.Grid.Rows-1 || cj < 0 || cj >= d.Grid.Cols-1 {
		return false
	}
	return d.active[ci*(d.Grid.Cols-1)+cj]
}

// NumActiveCells returns the active cell count.
func (d Domain) NumActiveCells() int {
	n := 0
	for _, a := range d.active {
		if a {
			n++
		}
	}
	return n
}

// Triangles returns the two triangles of every active cell.
func (d Domain) Triangles() []Triangle {
	g := d.Grid
	var out []Triangle
	for ci := 0; ci < g.Rows-1; ci++ {
		for cj := 0; cj < g.Cols-1; cj++ {
			if !d.CellActive(ci, cj) {
				continue
			}
			sw := g.NodeID(ci, cj)
			se := g.NodeID(ci, cj+1)
			ne := g.NodeID(ci+1, cj+1)
			nw := g.NodeID(ci+1, cj)
			out = append(out, Triangle{sw, se, ne}, Triangle{sw, ne, nw})
		}
	}
	return out
}

// ActiveNodes returns the natural ids of nodes touched by at least one
// active cell, ascending.
func (d Domain) ActiveNodes() []int {
	seen := map[int]bool{}
	for _, tr := range d.Triangles() {
		for _, id := range tr {
			seen[id] = true
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Adjacency returns, for each active node (indexed by its position in
// ActiveNodes), the positions of the nodes it shares a triangle with.
func (d Domain) Adjacency() (nodes []int, adj [][]int) {
	nodes = d.ActiveNodes()
	pos := make(map[int]int, len(nodes))
	for k, id := range nodes {
		pos[id] = k
	}
	set := make([]map[int]bool, len(nodes))
	for i := range set {
		set[i] = map[int]bool{}
	}
	for _, tr := range d.Triangles() {
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				if a != b {
					set[pos[tr[a]]][pos[tr[b]]] = true
				}
			}
		}
	}
	adj = make([][]int, len(nodes))
	for i, s := range set {
		for j := range s {
			adj[i] = append(adj[i], j)
		}
		sort.Ints(adj[i])
	}
	return nodes, adj
}

// GreedyColoring colors a graph (adjacency lists over 0..n−1) with the
// smallest-available-color heuristic in index order. It returns the
// per-node colors and the number of colors used. For the triangulated
// domains here it typically finds the optimal 3 or 4 colors.
func GreedyColoring(adj [][]int) (colors []int, numColors int) {
	n := len(adj)
	colors = make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	taken := make([]bool, n+1)
	for v := 0; v < n; v++ {
		for _, u := range adj[v] {
			if c := colors[u]; c >= 0 {
				taken[c] = true
			}
		}
		c := 0
		for taken[c] {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
		for _, u := range adj[v] {
			if cc := colors[u]; cc >= 0 {
				taken[cc] = false
			}
		}
	}
	return colors, numColors
}

// VerifyGraphColoring checks that no adjacent pair shares a color.
func VerifyGraphColoring(adj [][]int, colors []int) error {
	for v, nbs := range adj {
		for _, u := range nbs {
			if colors[v] == colors[u] {
				return fmt.Errorf("mesh: adjacent nodes %d and %d share color %d", v, u, colors[v])
			}
		}
	}
	return nil
}
