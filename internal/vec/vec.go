// Package vec provides the dense float64 vector kernels used throughout the
// m-step PCG library: dot products, axpy-style updates, and norms, in both
// serial and chunked-parallel form.
//
// These are the operations the paper's machines implement in hardware — the
// CYBER 203/205 as vector pipeline instructions, the Finite Element Machine
// as per-processor scalar loops — so everything above this package expresses
// its arithmetic in terms of vec calls.
package vec

import (
	"fmt"
	"math"

	"repro/internal/kernel"
)

// Dot returns the inner product (x, y) = xᵀy, through the startup-selected
// kernel set (both sets accumulate in index order, so the result is
// set-independent).
// It panics if the lengths differ; a length mismatch is a programming error,
// not a runtime condition, everywhere in this library.
func Dot(x, y []float64) float64 {
	checkLen("Dot", len(x), len(y))
	return kernel.Active().Dot(x, y)
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	checkLen("Axpy", len(x), len(y))
	kernel.Active().Axpy(a, x, y)
}

// AxpyTo computes dst = y + a*x without touching x or y.
// dst may alias x or y.
func AxpyTo(dst []float64, a float64, x, y []float64) {
	checkLen("AxpyTo", len(x), len(y))
	checkLen("AxpyTo dst", len(dst), len(y))
	for i := range dst {
		dst[i] = y[i] + a*x[i]
	}
}

// Xpay computes y = x + a*y in place (note: scales y, then adds x).
// This is the CG direction update p = r̂ + β p.
func Xpay(x []float64, a float64, y []float64) {
	checkLen("Xpay", len(x), len(y))
	kernel.Active().Xpay(x, a, y)
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Copy copies src into dst.
func Copy(dst, src []float64) {
	checkLen("Copy", len(dst), len(src))
	copy(dst, src)
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to a.
func Fill(a float64, x []float64) {
	for i := range x {
		x[i] = a
	}
}

// Add computes dst = x + y elementwise.
func Add(dst, x, y []float64) {
	checkLen("Add", len(x), len(y))
	checkLen("Add dst", len(dst), len(x))
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Sub computes dst = x - y elementwise.
func Sub(dst, x, y []float64) {
	checkLen("Sub", len(x), len(y))
	checkLen("Sub dst", len(dst), len(x))
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// MulElem computes dst = x .* y elementwise.
func MulElem(dst, x, y []float64) {
	checkLen("MulElem", len(x), len(y))
	checkLen("MulElem dst", len(dst), len(x))
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

// DivElem computes dst = x ./ y elementwise.
func DivElem(dst, x, y []float64) {
	checkLen("DivElem", len(x), len(y))
	checkLen("DivElem dst", len(dst), len(x))
	for i := range dst {
		dst[i] = x[i] / y[i]
	}
}

// Norm2 returns the Euclidean norm ‖x‖₂, guarding against overflow for
// large components by scaling.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, xi := range x {
		if xi == 0 {
			continue
		}
		a := math.Abs(xi)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns max_i |x_i|.
func NormInf(x []float64) float64 {
	var m float64
	for _, xi := range x {
		if a := math.Abs(xi); a > m {
			m = a
		}
	}
	return m
}

// MaxAbsDiff returns ‖x - y‖_∞, the paper's convergence-test quantity
// |u^{k+1} - u^k|_∞ without forming the difference vector.
func MaxAbsDiff(x, y []float64) float64 {
	checkLen("MaxAbsDiff", len(x), len(y))
	var m float64
	for i, xi := range x {
		if d := math.Abs(xi - y[i]); d > m {
			m = d
		}
	}
	return m
}

// Clone returns a fresh copy of x.
func Clone(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// AllFinite reports whether every element of x is finite (no NaN/Inf).
func AllFinite(x []float64) bool {
	for _, xi := range x {
		if math.IsNaN(xi) || math.IsInf(xi, 0) {
			return false
		}
	}
	return true
}

func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("vec: %s length mismatch: %d vs %d", op, a, b))
	}
}
