package vec

import (
	"runtime"
	"sync"
)

// minParallelLen is the vector length below which the parallel kernels fall
// back to the serial ones; goroutine fan-out is pure overhead for short
// vectors, the same observation the paper makes about CYBER vector startup.
const minParallelLen = 4096

// Workers returns the worker count used by the parallel kernels when the
// caller passes workers <= 0.
func Workers(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// chunks partitions [0, n) into at most w nearly equal ranges.
func chunks(n, w int) [][2]int {
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// ParDot computes Dot(x, y) using up to `workers` goroutines.
// Partial sums are combined in chunk-index order, so the result is
// deterministic for a fixed worker count.
func ParDot(x, y []float64, workers int) float64 {
	checkLen("ParDot", len(x), len(y))
	n := len(x)
	w := Workers(workers)
	if n < minParallelLen || w <= 1 {
		return Dot(x, y)
	}
	cs := chunks(n, w)
	partial := make([]float64, len(cs))
	var wg sync.WaitGroup
	for ci, c := range cs {
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += x[i] * y[i]
			}
			partial[ci] = s
		}(ci, c[0], c[1])
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// ParAxpy computes y += a*x using up to `workers` goroutines.
func ParAxpy(a float64, x, y []float64, workers int) {
	checkLen("ParAxpy", len(x), len(y))
	n := len(x)
	w := Workers(workers)
	if n < minParallelLen || w <= 1 {
		Axpy(a, x, y)
		return
	}
	var wg sync.WaitGroup
	for _, c := range chunks(n, w) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				y[i] += a * x[i]
			}
		}(c[0], c[1])
	}
	wg.Wait()
}

// ParRange runs fn over [0, n) split into contiguous chunks across up to
// `workers` goroutines. It is the generic building block for the parallel
// SpMV kernels in internal/sparse.
func ParRange(n, workers int, fn func(lo, hi int)) {
	w := Workers(workers)
	if n < minParallelLen || w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for _, c := range chunks(n, w) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(c[0], c[1])
	}
	wg.Wait()
}
