package vec

import (
	"math"
	"math/rand"
	"testing"
)

func randMulti(rng *rand.Rand, n, s int) *Multi {
	m := NewMulti(n, s)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMultiColsShareStorage(t *testing.T) {
	m := NewMulti(4, 3)
	m.Col(1)[2] = 7
	if m.Data[1*4+2] != 7 {
		t.Fatalf("Col(1) does not alias backing storage")
	}
	cols := m.Cols()
	cols[2][0] = 3
	if m.Col(2)[0] != 3 {
		t.Fatalf("Cols() does not alias backing storage")
	}
}

func TestMultiFromCols(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	m := MultiFromCols([][]float64{a, b})
	if m.N != 3 || m.S != 2 {
		t.Fatalf("shape %d×%d, want 3×2", m.N, m.S)
	}
	a[0] = 99 // copies, not views
	if m.Col(0)[0] != 1 {
		t.Fatalf("MultiFromCols must copy")
	}
}

func TestMultiPrefixAndSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMulti(rng, 5, 4)
	col1 := Clone(m.Col(1))
	col3 := Clone(m.Col(3))
	m.SwapCols(1, 3)
	for i := range col1 {
		if m.Col(3)[i] != col1[i] || m.Col(1)[i] != col3[i] {
			t.Fatalf("SwapCols mismatch at %d", i)
		}
	}
	p := m.Prefix(2)
	if p.S != 2 || p.N != 5 {
		t.Fatalf("Prefix shape %d×%d", p.N, p.S)
	}
	p.Col(1)[0] = 42
	if m.Col(1)[0] != 42 {
		t.Fatalf("Prefix must share storage")
	}
}

// TestMultiKernelsMatchScalar checks every fused kernel against its
// single-vector counterpart applied per column, serially and in parallel.
func TestMultiKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 7, 5000} { // 5000 crosses minParallelLen
		for _, s := range []int{1, 3, 8} {
			x := randMulti(rng, n, s)
			y := randMulti(rng, n, s)
			alphas := make([]float64, s)
			for j := range alphas {
				alphas[j] = rng.NormFloat64()
			}

			want := make([]float64, s)
			for j := 0; j < s; j++ {
				want[j] = Dot(x.Col(j), y.Col(j))
			}
			got := make([]float64, s)
			MultiDot(x, y, got)
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("MultiDot n=%d s=%d col %d: %g != %g", n, s, j, got[j], want[j])
				}
			}
			ParMultiDot(x, y, 4, got)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-12*(1+math.Abs(want[j])) {
					t.Fatalf("ParMultiDot n=%d s=%d col %d: %g != %g", n, s, j, got[j], want[j])
				}
			}

			// MultiAxpy vs per-column Axpy.
			y1, y2 := y.Clone(), y.Clone()
			MultiAxpy(alphas, x, y1)
			for j := 0; j < s; j++ {
				Axpy(alphas[j], x.Col(j), y2.Col(j))
			}
			for i := range y1.Data {
				if y1.Data[i] != y2.Data[i] {
					t.Fatalf("MultiAxpy n=%d s=%d elem %d", n, s, i)
				}
			}
			y3 := y.Clone()
			ParMultiAxpy(alphas, x, y3, 4)
			for i := range y3.Data {
				if y3.Data[i] != y2.Data[i] {
					t.Fatalf("ParMultiAxpy n=%d s=%d elem %d", n, s, i)
				}
			}

			// MultiXpay vs per-column Xpay.
			y1, y2 = y.Clone(), y.Clone()
			MultiXpay(x, alphas, y1)
			for j := 0; j < s; j++ {
				Xpay(x.Col(j), alphas[j], y2.Col(j))
			}
			for i := range y1.Data {
				if y1.Data[i] != y2.Data[i] {
					t.Fatalf("MultiXpay n=%d s=%d elem %d", n, s, i)
				}
			}
			y3 = y.Clone()
			ParMultiXpay(x, alphas, y3, 4)
			for i := range y3.Data {
				if y3.Data[i] != y2.Data[i] {
					t.Fatalf("ParMultiXpay n=%d s=%d elem %d", n, s, i)
				}
			}

			MultiNorm2(x, got)
			MultiNormInf(x, want) // reuse buffers
			for j := 0; j < s; j++ {
				if got[j] != Norm2(x.Col(j)) {
					t.Fatalf("MultiNorm2 col %d", j)
				}
				if want[j] != NormInf(x.Col(j)) {
					t.Fatalf("MultiNormInf col %d", j)
				}
			}
		}
	}
}

func TestMultiMaxAbsDiff(t *testing.T) {
	x := MultiFromCols([][]float64{{1, 2}, {3, 4}})
	y := MultiFromCols([][]float64{{1, 2.5}, {3, 4}})
	if d := MultiMaxAbsDiff(x, y); d != 0.5 {
		t.Fatalf("MultiMaxAbsDiff = %g, want 0.5", d)
	}
}

func TestMultiShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected shape-mismatch panic")
		}
	}()
	MultiDot(NewMulti(3, 2), NewMulti(3, 3), make([]float64, 2))
}
