package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy: y = %v, want %v", y, want)
		}
	}
}

func TestAxpyTo(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	dst := make([]float64, 3)
	AxpyTo(dst, -1, x, y)
	want := []float64{9, 18, 27}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AxpyTo: dst = %v, want %v", dst, want)
		}
	}
	// x and y untouched
	if x[0] != 1 || y[0] != 10 {
		t.Fatal("AxpyTo modified inputs")
	}
}

func TestAxpyToAliasing(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	AxpyTo(y, 2, x, y) // y = y + 2x
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AxpyTo aliased: y = %v, want %v", y, want)
		}
	}
}

func TestXpay(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Xpay(x, 0.5, y) // y = x + 0.5 y
	want := []float64{6, 12, 18}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Xpay: y = %v, want %v", y, want)
		}
	}
}

func TestScaleZeroFillCopy(t *testing.T) {
	x := []float64{1, 2, 3}
	Scale(3, x)
	if x[2] != 9 {
		t.Fatalf("Scale: %v", x)
	}
	Zero(x)
	if x[0] != 0 || x[1] != 0 || x[2] != 0 {
		t.Fatalf("Zero: %v", x)
	}
	Fill(7, x)
	if x[0] != 7 || x[2] != 7 {
		t.Fatalf("Fill: %v", x)
	}
	y := make([]float64, 3)
	Copy(y, x)
	if y[1] != 7 {
		t.Fatalf("Copy: %v", y)
	}
}

func TestAddSubMulDivElem(t *testing.T) {
	x := []float64{2, 4, 8}
	y := []float64{1, 2, 4}
	dst := make([]float64, 3)
	Add(dst, x, y)
	if dst[0] != 3 || dst[2] != 12 {
		t.Fatalf("Add: %v", dst)
	}
	Sub(dst, x, y)
	if dst[0] != 1 || dst[2] != 4 {
		t.Fatalf("Sub: %v", dst)
	}
	MulElem(dst, x, y)
	if dst[1] != 8 {
		t.Fatalf("MulElem: %v", dst)
	}
	DivElem(dst, x, y)
	if dst[2] != 2 {
		t.Fatalf("DivElem: %v", dst)
	}
}

func TestNorm2(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); !almostEq(got, 5, 1e-15) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	big := math.MaxFloat64 / 2
	x := []float64{big, big}
	got := Norm2(x)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if !almostEq(got, want, 1e-14) {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{-7, 3, 5}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if got := NormInf(nil); got != 0 {
		t.Fatalf("NormInf(nil) = %v, want 0", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	x := []float64{1, 5, 3}
	y := []float64{1, 2, 4}
	if got := MaxAbsDiff(x, y); got != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", got)
	}
}

func TestClone(t *testing.T) {
	x := []float64{1, 2}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("Clone did not copy")
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

// Property: Dot is symmetric and bilinear.
func TestDotPropertySymmetricBilinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x, y, z := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		a := rng.NormFloat64()
		// symmetry
		if !almostEq(Dot(x, y), Dot(y, x), 1e-12) {
			return false
		}
		// linearity in first arg: (a x + z, y) = a (x,y) + (z,y)
		ax := Clone(z)
		Axpy(a, x, ax)
		lhs := Dot(ax, y)
		rhs := a*Dot(x, y) + Dot(z, y)
		return almostEq(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxAbsDiff(x, y) == NormInf(x - y).
func TestMaxAbsDiffMatchesNormInf(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		x, y := randVec(rng, n), randVec(rng, n)
		d := make([]float64, n)
		Sub(d, x, y)
		return MaxAbsDiff(x, y) == NormInf(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
