package vec

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
)

// IMulti is a row-interleaved multivector: the panel form of Multi, storing
// the S column values of each row adjacent so element (i, j) lives at
// Data[i*Stride+j]. One gathered CSR row index feeds all S columns from a
// single cache line (S = 8 float64s is exactly one 64-byte line), which is
// what the fused SpMM and sweep kernels in internal/kernel want; the price
// is that per-column views are strided, so the planner-tiled executor
// converts between the two layouts at tile boundaries and each is used where
// it wins.
//
// Stride is fixed at allocation; S may shrink below it as the block CG
// solver deflates converged columns past the active prefix (the interleaved
// analogue of Multi.Prefix), leaving rows Stride wide with only the first S
// entries live.
type IMulti struct {
	N, S, Stride int
	Data         []float64 // len N*Stride, element (i,j) at i*Stride+j
}

// NewIMulti returns a zeroed n×s interleaved panel with Stride = s.
func NewIMulti(n, s int) *IMulti {
	if n < 0 || s < 0 {
		panic(fmt.Sprintf("vec: NewIMulti dims %d×%d", n, s))
	}
	return &IMulti{N: n, S: s, Stride: s, Data: make([]float64, n*s)}
}

// Row returns the live entries of row i as a slice sharing the backing
// storage.
func (m *IMulti) Row(i int) []float64 {
	return m.Data[i*m.Stride : i*m.Stride+m.S]
}

// Prefix returns a view with the first s columns live, sharing the backing
// storage and keeping the allocation stride.
func (m *IMulti) Prefix(s int) *IMulti {
	if s < 0 || s > m.S {
		panic(fmt.Sprintf("vec: IMulti.Prefix %d of %d columns", s, m.S))
	}
	return &IMulti{N: m.N, S: s, Stride: m.Stride, Data: m.Data}
}

// SwapCols exchanges columns i and j element by element (a strided walk —
// the deflation swap on the interleaved form).
func (m *IMulti) SwapCols(i, j int) {
	if i == j {
		return
	}
	for base := 0; base < m.N*m.Stride; base += m.Stride {
		m.Data[base+i], m.Data[base+j] = m.Data[base+j], m.Data[base+i]
	}
}

// ScatterCol copies column j into the dense vector dst.
func (m *IMulti) ScatterCol(j int, dst []float64) {
	checkLen("IMulti.ScatterCol", len(dst), m.N)
	for i := range dst {
		dst[i] = m.Data[i*m.Stride+j]
	}
}

// GatherCol copies the dense vector src into column j.
func (m *IMulti) GatherCol(j int, src []float64) {
	checkLen("IMulti.GatherCol", len(src), m.N)
	for i, v := range src {
		m.Data[i*m.Stride+j] = v
	}
}

// Zero sets every element (live or not) to 0.
func (m *IMulti) Zero() { Zero(m.Data) }

// Interleaved returns a freshly allocated interleaved copy of m.
func (m *Multi) Interleaved() *IMulti {
	im := NewIMulti(m.N, m.S)
	im.InterleaveFrom(m, nil)
	return im
}

// InterleaveFrom fills m from the column-contiguous src — the tile-boundary
// conversion into panel form. impl selects the kernel set (nil means the
// startup-selected one). The shapes must match; allocation-free.
func (m *IMulti) InterleaveFrom(src *Multi, impl *kernel.Impl) {
	m.checkShapeMulti("InterleaveFrom", src)
	resolveImpl(impl).Interleave(m.Data, m.Stride, src.Data, m.N, m.S)
}

// DeinterleaveInto converts m back to the column-contiguous dst — the
// tile-boundary conversion out of panel form. Allocation-free.
func (m *IMulti) DeinterleaveInto(dst *Multi, impl *kernel.Impl) {
	m.checkShapeMulti("DeinterleaveInto", dst)
	resolveImpl(impl).Deinterleave(dst.Data, m.N, m.S, m.Data, m.Stride)
}

func (m *IMulti) checkShapeMulti(op string, o *Multi) {
	if m.N != o.N || m.S != o.S {
		panic(fmt.Sprintf("vec: %s shape mismatch: %d×%d vs %d×%d", op, m.N, m.S, o.N, o.S))
	}
}

func (m *IMulti) checkShape(op string, o *IMulti) {
	if m.N != o.N || m.S != o.S || m.Stride != o.Stride {
		panic(fmt.Sprintf("vec: %s shape mismatch: %d×%d/%d vs %d×%d/%d",
			op, m.N, m.S, m.Stride, o.N, o.S, o.Stride))
	}
}

// resolveImpl maps the nil kernel policy to the startup-selected set.
func resolveImpl(impl *kernel.Impl) *kernel.Impl {
	if impl == nil {
		return kernel.Active()
	}
	return impl
}

// IMultiDot computes dst[j] = (x_j, y_j) for every live column in one fused
// pass over the panels. Per-column summation order matches Dot exactly, so
// the interleaved block CG recurrence reproduces the column-contiguous one
// bit for bit.
func IMultiDot(x, y *IMulti, dst []float64, impl *kernel.Impl) {
	x.checkShape("IMultiDot", y)
	checkScalars("IMultiDot", len(dst), x.S)
	resolveImpl(impl).DotI(x.Data, y.Data, x.Stride, x.N, x.S, dst)
}

// IMultiAxpy computes y_j += alphas[j] * x_j for every live column.
func IMultiAxpy(alphas []float64, x, y *IMulti, impl *kernel.Impl) {
	x.checkShape("IMultiAxpy", y)
	checkScalars("IMultiAxpy", len(alphas), x.S)
	resolveImpl(impl).AxpyI(alphas, x.Data, y.Data, x.Stride, x.N, x.S)
}

// IMultiXpay computes y_j = x_j + betas[j] * y_j for every live column.
func IMultiXpay(x *IMulti, betas []float64, y *IMulti, impl *kernel.Impl) {
	x.checkShape("IMultiXpay", y)
	checkScalars("IMultiXpay", len(betas), x.S)
	resolveImpl(impl).XpayI(x.Data, betas, y.Data, x.Stride, x.N, x.S)
}

// IMultiNorm2 computes dst[j] = ‖x_j‖₂ for every live column, with the same
// overflow-guarded recurrence as Norm2.
func IMultiNorm2(x *IMulti, dst []float64, impl *kernel.Impl) {
	checkScalars("IMultiNorm2", len(dst), x.S)
	resolveImpl(impl).Norm2I(x.Data, x.Stride, x.N, x.S, dst)
}

// IMultiNormInf computes dst[j] = ‖x_j‖_∞ for every live column.
func IMultiNormInf(x *IMulti, dst []float64, impl *kernel.Impl) {
	checkScalars("IMultiNormInf", len(dst), x.S)
	resolveImpl(impl).NormInfI(x.Data, x.Stride, x.N, x.S, dst)
}

// ParIMultiDot is IMultiDot with the row range fanned out over up to
// `workers` goroutines. It uses the same row chunking as ParDot and combines
// per-chunk partial sums in chunk-index order, so for a fixed worker count
// it is bit-identical to ParMultiDot on the column-contiguous form.
func ParIMultiDot(x, y *IMulti, workers int, dst []float64, impl *kernel.Impl) {
	x.checkShape("ParIMultiDot", y)
	checkScalars("ParIMultiDot", len(dst), x.S)
	k := resolveImpl(impl)
	w := Workers(workers)
	if x.N < minParallelLen || w <= 1 {
		k.DotI(x.Data, y.Data, x.Stride, x.N, x.S, dst)
		return
	}
	s, st := x.S, x.Stride
	cs := chunks(x.N, w)
	partial := make([]float64, len(cs)*s)
	var wg sync.WaitGroup
	for ci, c := range cs {
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			k.DotI(x.Data[lo*st:], y.Data[lo*st:], st, hi-lo, s, partial[ci*s:(ci+1)*s])
		}(ci, c[0], c[1])
	}
	wg.Wait()
	for j := 0; j < s; j++ {
		dst[j] = 0
	}
	for ci := range cs {
		for j := 0; j < s; j++ {
			dst[j] += partial[ci*s+j]
		}
	}
}

// ParIMultiAxpy is IMultiAxpy fanned out over row chunks; elementwise, so
// the result is identical for any worker count.
func ParIMultiAxpy(alphas []float64, x, y *IMulti, workers int, impl *kernel.Impl) {
	x.checkShape("ParIMultiAxpy", y)
	checkScalars("ParIMultiAxpy", len(alphas), x.S)
	k := resolveImpl(impl)
	s, st := x.S, x.Stride
	if x.N < minParallelLen || Workers(workers) <= 1 {
		k.AxpyI(alphas, x.Data, y.Data, st, x.N, s)
		return
	}
	ParRange(x.N, workers, func(lo, hi int) {
		k.AxpyI(alphas, x.Data[lo*st:], y.Data[lo*st:], st, hi-lo, s)
	})
}

// ParIMultiXpay is IMultiXpay fanned out over row chunks.
func ParIMultiXpay(x *IMulti, betas []float64, y *IMulti, workers int, impl *kernel.Impl) {
	x.checkShape("ParIMultiXpay", y)
	checkScalars("ParIMultiXpay", len(betas), x.S)
	k := resolveImpl(impl)
	s, st := x.S, x.Stride
	if x.N < minParallelLen || Workers(workers) <= 1 {
		k.XpayI(x.Data, betas, y.Data, st, x.N, s)
		return
	}
	ParRange(x.N, workers, func(lo, hi int) {
		k.XpayI(x.Data[lo*st:], betas, y.Data[lo*st:], st, hi-lo, s)
	})
}
