package vec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
)

// kernelSets runs a check under both the portable and the startup-selected
// kernel sets.
func kernelSets(t *testing.T, f func(t *testing.T, impl *kernel.Impl)) {
	t.Helper()
	for _, im := range []*kernel.Impl{kernel.Portable(), kernel.Active()} {
		t.Run(im.Name, func(t *testing.T) { f(t, im) })
	}
}

func TestIMultiRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kernelSets(t, func(t *testing.T, impl *kernel.Impl) {
		for _, n := range []int{1, 7, 64, 65} {
			for _, s := range []int{1, 3, 8, 16} {
				src := randMulti(rng, n, s)
				im := src.Interleaved()
				for i := 0; i < n; i++ {
					for j := 0; j < s; j++ {
						if im.Data[i*im.Stride+j] != src.Col(j)[i] {
							t.Fatalf("n=%d s=%d: (%d,%d) interleave mismatch", n, s, i, j)
						}
					}
				}
				back := NewMulti(n, s)
				im.DeinterleaveInto(back, impl)
				for i := range back.Data {
					if back.Data[i] != src.Data[i] {
						t.Fatalf("n=%d s=%d: round-trip flat %d mismatch", n, s, i)
					}
				}
			}
		}
	})
}

func TestIMultiSwapScatterGather(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := randMulti(rng, 17, 5)
	im := src.Interleaved()
	im.SwapCols(1, 3)
	col := make([]float64, 17)
	im.ScatterCol(1, col)
	for i, v := range col {
		if v != src.Col(3)[i] {
			t.Fatalf("SwapCols/ScatterCol: row %d got %v want %v", i, v, src.Col(3)[i])
		}
	}
	im.GatherCol(4, src.Col(0))
	im.ScatterCol(4, col)
	for i, v := range col {
		if v != src.Col(0)[i] {
			t.Fatalf("GatherCol: row %d got %v want %v", i, v, src.Col(0)[i])
		}
	}
	p := im.Prefix(2)
	if p.S != 2 || p.Stride != 5 || p.N != 17 {
		t.Fatalf("Prefix shape %d×%d/%d", p.N, p.S, p.Stride)
	}
}

// TestIMultiKernelsMatchColumns pins the bit-parity contract: every fused
// interleaved operation equals its per-column scalar counterpart exactly.
func TestIMultiKernelsMatchColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kernelSets(t, func(t *testing.T, impl *kernel.Impl) {
		for _, n := range []int{1, 9, 64, 65} {
			for _, s := range []int{1, 3, 8} {
				x, y := randMulti(rng, n, s), randMulti(rng, n, s)
				ix, iy := x.Interleaved(), y.Interleaved()
				as := make([]float64, s)
				for j := range as {
					as[j] = rng.NormFloat64()
				}

				dst := make([]float64, s)
				IMultiDot(ix, iy, dst, impl)
				for j := 0; j < s; j++ {
					if want := Dot(x.Col(j), y.Col(j)); dst[j] != want {
						t.Fatalf("IMultiDot n=%d s=%d col %d: got %v want %v", n, s, j, dst[j], want)
					}
				}

				IMultiNorm2(ix, dst, impl)
				for j := 0; j < s; j++ {
					if want := Norm2(x.Col(j)); dst[j] != want {
						t.Fatalf("IMultiNorm2 n=%d s=%d col %d: got %v want %v", n, s, j, dst[j], want)
					}
				}
				IMultiNormInf(ix, dst, impl)
				for j := 0; j < s; j++ {
					if want := NormInf(x.Col(j)); dst[j] != want {
						t.Fatalf("IMultiNormInf n=%d s=%d col %d: got %v want %v", n, s, j, dst[j], want)
					}
				}

				IMultiAxpy(as, ix, iy, impl)
				for j := 0; j < s; j++ {
					want := Clone(y.Col(j))
					Axpy(as[j], x.Col(j), want)
					col := make([]float64, n)
					iy.ScatterCol(j, col)
					for i := range col {
						if col[i] != want[i] {
							t.Fatalf("IMultiAxpy n=%d s=%d col %d row %d", n, s, j, i)
						}
					}
				}

				iy.InterleaveFrom(y, impl)
				IMultiXpay(ix, as, iy, impl)
				for j := 0; j < s; j++ {
					want := Clone(y.Col(j))
					Xpay(x.Col(j), as[j], want)
					col := make([]float64, n)
					iy.ScatterCol(j, col)
					for i := range col {
						if col[i] != want[i] {
							t.Fatalf("IMultiXpay n=%d s=%d col %d row %d", n, s, j, i)
						}
					}
				}
			}
		}
	})
}

// TestParIMultiDotMatchesParDot pins the parallel parity: the fused parallel
// panel dot uses ParDot's row chunking and combines partials in chunk order,
// so it equals ParDot on the gathered columns bit for bit — above and below
// the serial-fallback threshold.
func TestParIMultiDotMatchesParDot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{100, minParallelLen + 37} {
		for _, w := range []int{1, 3, 4} {
			x, y := randMulti(rng, n, 8), randMulti(rng, n, 8)
			ix, iy := x.Interleaved(), y.Interleaved()
			dst := make([]float64, 8)
			ParIMultiDot(ix, iy, w, dst, nil)
			for j := 0; j < 8; j++ {
				if want := ParDot(x.Col(j), y.Col(j), w); dst[j] != want {
					t.Fatalf("n=%d w=%d col %d: got %v want %v", n, w, j, dst[j], want)
				}
			}
			ParIMultiAxpy(dst, ix, iy, w, nil)
			ParIMultiXpay(ix, dst, iy, w, nil)
		}
	}
}

// TestIMultiConversionAllocFree guards the tile-boundary conversions: once
// the panel exists, moving a block in and out of interleaved form never
// allocates.
func TestIMultiConversionAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randMulti(rng, 256, 8)
	im := NewIMulti(256, 8)
	if a := testing.AllocsPerRun(20, func() { im.InterleaveFrom(src, nil) }); a != 0 {
		t.Errorf("InterleaveFrom allocates %.1f per run", a)
	}
	if a := testing.AllocsPerRun(20, func() { im.DeinterleaveInto(src, nil) }); a != 0 {
		t.Errorf("DeinterleaveInto allocates %.1f per run", a)
	}
	col := make([]float64, 256)
	if a := testing.AllocsPerRun(20, func() { im.ScatterCol(3, col) }); a != 0 {
		t.Errorf("ScatterCol allocates %.1f per run", a)
	}
	if a := testing.AllocsPerRun(20, func() { im.SwapCols(2, 6) }); a != 0 {
		t.Errorf("SwapCols allocates %.1f per run", a)
	}
}

func TestIMultiShapeChecks(t *testing.T) {
	x := NewIMulti(4, 2)
	y := NewIMulti(4, 3)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on shape mismatch", name)
			}
		}()
		f()
	}
	mustPanic("IMultiDot", func() { IMultiDot(x, y, make([]float64, 2), nil) })
	mustPanic("InterleaveFrom", func() { x.InterleaveFrom(NewMulti(4, 3), nil) })
	mustPanic("scalars", func() { IMultiNorm2(x, make([]float64, 1), nil) })
	if math.IsNaN(0) {
		t.Fatal("unreachable")
	}
}
