package vec

import (
	"fmt"
	"math"

	"repro/internal/kernel"
)

// Multi is a column-block multivector: S dense vectors of length N stored
// in one backing slice, column j occupying Data[j*N : (j+1)*N]. It is the
// multi-right-hand-side analogue of []float64 — the paper's long-vector
// argument (§3.1: amortize per-operation startup over longer operands)
// extends from matrix–vector to matrix–multivector work, and the
// column-contiguous layout keeps every per-column view a zero-copy slice
// so single-vector kernels and preconditioner sweeps apply unchanged.
type Multi struct {
	N, S int
	Data []float64
}

// NewMulti returns a zeroed n×s multivector.
func NewMulti(n, s int) *Multi {
	if n < 0 || s < 0 {
		panic(fmt.Sprintf("vec: NewMulti dims %d×%d", n, s))
	}
	return &Multi{N: n, S: s, Data: make([]float64, n*s)}
}

// MultiFromCols returns a multivector holding a copy of each column.
// All columns must share one length.
func MultiFromCols(cols [][]float64) *Multi {
	if len(cols) == 0 {
		return &Multi{}
	}
	n := len(cols[0])
	m := NewMulti(n, len(cols))
	for j, c := range cols {
		checkLen("MultiFromCols", len(c), n)
		copy(m.Col(j), c)
	}
	return m
}

// Col returns column j as a slice sharing the backing storage.
func (m *Multi) Col(j int) []float64 {
	return m.Data[j*m.N : (j+1)*m.N]
}

// Cols returns every column as a shared-storage slice.
func (m *Multi) Cols() [][]float64 {
	out := make([][]float64, m.S)
	for j := range out {
		out[j] = m.Col(j)
	}
	return out
}

// Prefix returns a view of the first s columns sharing the backing storage.
// The block CG solver deflates converged columns by swapping them past the
// active prefix and shrinking it, so every kernel call touches only live
// columns.
func (m *Multi) Prefix(s int) *Multi {
	if s < 0 || s > m.S {
		panic(fmt.Sprintf("vec: Prefix %d of %d columns", s, m.S))
	}
	return &Multi{N: m.N, S: s, Data: m.Data[:s*m.N]}
}

// SwapCols exchanges columns i and j element by element.
func (m *Multi) SwapCols(i, j int) {
	if i == j {
		return
	}
	ci, cj := m.Col(i), m.Col(j)
	for k := range ci {
		ci[k], cj[k] = cj[k], ci[k]
	}
}

// Zero sets every element to 0.
func (m *Multi) Zero() { Zero(m.Data) }

// CopyFrom copies src into m; the shapes must match.
func (m *Multi) CopyFrom(src *Multi) {
	m.checkShape("CopyFrom", src)
	copy(m.Data, src.Data)
}

// Clone returns a deep copy.
func (m *Multi) Clone() *Multi {
	return &Multi{N: m.N, S: m.S, Data: Clone(m.Data)}
}

func (m *Multi) checkShape(op string, o *Multi) {
	if m.N != o.N || m.S != o.S {
		panic(fmt.Sprintf("vec: %s shape mismatch: %d×%d vs %d×%d", op, m.N, m.S, o.N, o.S))
	}
}

func checkScalars(op string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("vec: %s needs %d per-column scalars, got %d", op, want, got))
	}
}

// MultiDot computes dst[j] = (x_j, y_j) for every column in one fused call.
// Per-column summation order matches Dot exactly, so a block CG recurrence
// built on MultiDot reproduces the single-vector recurrence bit for bit.
func MultiDot(x, y *Multi, dst []float64) {
	x.checkShape("MultiDot", y)
	checkScalars("MultiDot", len(dst), x.S)
	kernel.MultiDotCols(x.Data, y.Data, x.N, x.S, dst)
}

// MultiAxpy computes y_j += alphas[j] * x_j for every column.
func MultiAxpy(alphas []float64, x, y *Multi) {
	x.checkShape("MultiAxpy", y)
	checkScalars("MultiAxpy", len(alphas), x.S)
	for j := 0; j < x.S; j++ {
		Axpy(alphas[j], x.Col(j), y.Col(j))
	}
}

// MultiXpay computes y_j = x_j + betas[j] * y_j for every column — the
// block CG direction update p_j = r̂_j + β_j p_j.
func MultiXpay(x *Multi, betas []float64, y *Multi) {
	x.checkShape("MultiXpay", y)
	checkScalars("MultiXpay", len(betas), x.S)
	for j := 0; j < x.S; j++ {
		Xpay(x.Col(j), betas[j], y.Col(j))
	}
}

// MultiNorm2 computes dst[j] = ‖x_j‖₂ for every column.
func MultiNorm2(x *Multi, dst []float64) {
	checkScalars("MultiNorm2", len(dst), x.S)
	for j := 0; j < x.S; j++ {
		dst[j] = Norm2(x.Col(j))
	}
}

// MultiNormInf computes dst[j] = ‖x_j‖_∞ for every column.
func MultiNormInf(x *Multi, dst []float64) {
	checkScalars("MultiNormInf", len(dst), x.S)
	for j := 0; j < x.S; j++ {
		dst[j] = NormInf(x.Col(j))
	}
}

// ParMultiDot is MultiDot with each column's row range fanned out over up
// to `workers` goroutines via ParRange. Chunk partial sums combine in
// chunk-index order, so the result is deterministic for a fixed worker
// count; workers <= 1 takes the serial allocation-free path.
func ParMultiDot(x, y *Multi, workers int, dst []float64) {
	x.checkShape("ParMultiDot", y)
	checkScalars("ParMultiDot", len(dst), x.S)
	w := Workers(workers)
	if x.N < minParallelLen || w <= 1 {
		MultiDot(x, y, dst)
		return
	}
	for j := 0; j < x.S; j++ {
		dst[j] = ParDot(x.Col(j), y.Col(j), workers)
	}
}

// ParMultiAxpy is MultiAxpy fanned out over row chunks: each goroutine
// updates its row range of every column, so the per-column arithmetic
// order is unchanged.
func ParMultiAxpy(alphas []float64, x, y *Multi, workers int) {
	x.checkShape("ParMultiAxpy", y)
	checkScalars("ParMultiAxpy", len(alphas), x.S)
	w := Workers(workers)
	if x.N < minParallelLen || w <= 1 {
		MultiAxpy(alphas, x, y)
		return
	}
	n := x.N
	ParRange(n, workers, func(lo, hi int) {
		for j := 0; j < x.S; j++ {
			a, xc, yc := alphas[j], x.Col(j), y.Col(j)
			for i := lo; i < hi; i++ {
				yc[i] += a * xc[i]
			}
		}
	})
}

// ParMultiXpay is MultiXpay fanned out over row chunks.
func ParMultiXpay(x *Multi, betas []float64, y *Multi, workers int) {
	x.checkShape("ParMultiXpay", y)
	checkScalars("ParMultiXpay", len(betas), x.S)
	w := Workers(workers)
	if x.N < minParallelLen || w <= 1 {
		MultiXpay(x, betas, y)
		return
	}
	n := x.N
	ParRange(n, workers, func(lo, hi int) {
		for j := 0; j < x.S; j++ {
			b, xc, yc := betas[j], x.Col(j), y.Col(j)
			for i := lo; i < hi; i++ {
				yc[i] = xc[i] + b*yc[i]
			}
		}
	})
}

// MultiMaxAbsDiff returns max_j ‖x_j − y_j‖_∞, the block form of the
// paper's convergence-test quantity.
func MultiMaxAbsDiff(x, y *Multi) float64 {
	x.checkShape("MultiMaxAbsDiff", y)
	var m float64
	for i, xi := range x.Data {
		if d := math.Abs(xi - y.Data[i]); d > m {
			m = d
		}
	}
	return m
}
