package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParDotMatchesSerialSmall(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 6, 7, 8}
	if got, want := ParDot(x, y, 4), Dot(x, y); got != want {
		t.Fatalf("ParDot = %v, want %v", got, want)
	}
}

func TestParDotMatchesSerialLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 3 * minParallelLen
	x, y := randVec(rng, n), randVec(rng, n)
	got := ParDot(x, y, 8)
	want := Dot(x, y)
	if !almostEq(got, want, 1e-10) {
		t.Fatalf("ParDot = %v, want %v", got, want)
	}
}

func TestParDotDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 2*minParallelLen + 37
	x, y := randVec(rng, n), randVec(rng, n)
	first := ParDot(x, y, 7)
	for i := 0; i < 10; i++ {
		if got := ParDot(x, y, 7); got != first {
			t.Fatalf("ParDot nondeterministic: run %d got %v, first %v", i, got, first)
		}
	}
}

func TestParAxpyMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2 * minParallelLen
	x := randVec(rng, n)
	y1 := randVec(rng, n)
	y2 := Clone(y1)
	Axpy(1.5, x, y1)
	ParAxpy(1.5, x, y2, 6)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("ParAxpy differs at %d: %v vs %v", i, y2[i], y1[i])
		}
	}
}

func TestParRangeCoversAll(t *testing.T) {
	n := 3*minParallelLen + 11
	seen := make([]int32, n)
	ParRange(n, 5, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestParRangeSmallFallsBack(t *testing.T) {
	called := 0
	ParRange(10, 8, func(lo, hi int) {
		called++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected single full chunk, got [%d,%d)", lo, hi)
		}
	})
	if called != 1 {
		t.Fatalf("expected exactly one chunk, got %d", called)
	}
}

func TestChunksPartition(t *testing.T) {
	f := func(n, w uint8) bool {
		nn, ww := int(n), int(w)
		if ww == 0 {
			ww = 1
		}
		cs := chunks(nn, ww)
		prev := 0
		for _, c := range cs {
			if c[0] != prev || c[1] <= c[0] {
				return false
			}
			prev = c[1]
		}
		return prev == nn || (nn == 0 && len(cs) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 {
		t.Fatal("default worker count must be >= 1")
	}
}

func BenchmarkDotSerial(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := randVec(rng, 1<<16), randVec(rng, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkDotParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := randVec(rng, 1<<16), randVec(rng, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ParDot(x, y, 0)
	}
}
