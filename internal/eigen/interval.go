package eigen

import (
	"fmt"

	"repro/internal/splitting"
)

// Interval is an estimated spectral interval [Lo, Hi] for P⁻¹K, padded for
// safety so the true spectrum is (with high confidence) contained.
type Interval struct {
	Lo, Hi float64
}

// Validate reports whether the interval is usable for coefficient
// optimization.
func (iv Interval) Validate() error {
	if !(iv.Lo > 0) || !(iv.Hi > iv.Lo) {
		return fmt.Errorf("eigen: spectral interval [%g, %g] invalid (need 0 < lo < hi)", iv.Lo, iv.Hi)
	}
	return nil
}

// EstimateInterval estimates [λ₁, λₙ] ⊇ spec(P⁻¹K) for a splitting using
// the power method on P⁻¹K itself (applied via a zero-r̂ Step composed with
// G: P⁻¹K·x = x − G·x). The returned interval is padded by `pad`
// relative (e.g. 0.05) outward on both ends, clamped below at a small
// positive floor.
//
// For the SSOR(ω=1) splitting on an SPD matrix the spectrum lies in (0, 1],
// so the padded Hi is additionally capped at 1 there by the caller if
// desired; this function stays splitting-agnostic.
func EstimateInterval(sp splitting.Splitting, pad float64, seed int64) (Interval, error) {
	n := sp.N()
	if n == 0 {
		return Interval{}, fmt.Errorf("eigen: empty system")
	}
	if pad < 0 {
		return Interval{}, fmt.Errorf("eigen: negative pad %g", pad)
	}
	zero := make([]float64, n)
	// P⁻¹K·x = x − G·x; G·x is Step(x, 0, ·) from r̂ = x.
	apply := func(dst, x []float64) {
		copy(dst, x)
		sp.Step(dst, zero, 1) // dst ← G·dst
		for i := range dst {
			dst[i] = x[i] - dst[i]
		}
	}
	lo, hi := ExtremeBySpectralFold(apply, n, seed)
	if hi <= 0 {
		return Interval{}, fmt.Errorf("eigen: estimated λmax(P⁻¹K) = %g not positive — K or P not SPD?", hi)
	}
	iv := Interval{Lo: lo * (1 - pad), Hi: hi * (1 + pad)}
	floor := 1e-8 * iv.Hi
	if iv.Lo < floor {
		iv.Lo = floor
	}
	return iv, iv.Validate()
}
