package eigen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Lanczos runs `steps` iterations of the Lanczos process on a symmetric
// operator and returns the extreme Ritz values (estimates of λmin, λmax).
// Full reorthogonalization is used — the subspaces here are small (tens of
// vectors), so the O(steps²·n) cost is irrelevant and the Ritz values stay
// trustworthy.
//
// Compared with the power method, Lanczos converges to both ends of the
// spectrum simultaneously and much faster on clustered spectra, so
// EstimateIntervalLanczos needs ~30 operator applications where the
// spectral-fold power method needs thousands.
func Lanczos(apply Op, n, steps int, seed int64) (lo, hi float64, err error) {
	if n < 1 {
		return 0, 0, fmt.Errorf("eigen: empty system")
	}
	if steps < 1 {
		steps = 1
	}
	if steps > n {
		steps = n
	}
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	nrm := vec.Norm2(v)
	if nrm == 0 {
		return 0, 0, fmt.Errorf("eigen: degenerate start vector")
	}
	vec.Scale(1/nrm, v)

	basis := make([][]float64, 0, steps)
	var alpha, beta []float64
	w := make([]float64, n)
	for k := 0; k < steps; k++ {
		basis = append(basis, vec.Clone(v))
		apply(w, v)
		a := vec.Dot(v, w)
		alpha = append(alpha, a)
		// w ← w − a·v − β·v_{k−1}, then full reorthogonalization.
		vec.Axpy(-a, v, w)
		if k > 0 {
			vec.Axpy(-beta[k-1], basis[k-1], w)
		}
		for _, b := range basis {
			vec.Axpy(-vec.Dot(b, w), b, w)
		}
		bNorm := vec.Norm2(w)
		if k == steps-1 || bNorm < 1e-13*(1+math.Abs(a)) {
			// Invariant subspace found (or budget exhausted): the Ritz
			// values of the current tridiagonal are the answer.
			break
		}
		beta = append(beta, bNorm)
		copy(v, w)
		vec.Scale(1/bNorm, v)
	}
	return TridiagExtremes(alpha, beta[:len(alpha)-1])
}

// EstimateIntervalLanczos estimates [λ₁, λₙ] ⊇ spec(P⁻¹K) using `steps`
// Lanczos iterations on P⁻¹K (symmetric in the P inner product; with the
// SPD splittings here the Euclidean Lanczos process still delivers
// accurate extreme Ritz values, which the pad absorbs). The result is
// padded outward like EstimateInterval.
func EstimateIntervalLanczos(sp interface {
	N() int
	Step(rhat, r []float64, alpha float64)
}, steps int, pad float64, seed int64) (Interval, error) {
	n := sp.N()
	if n == 0 {
		return Interval{}, fmt.Errorf("eigen: empty system")
	}
	if pad < 0 {
		return Interval{}, fmt.Errorf("eigen: negative pad %g", pad)
	}
	zero := make([]float64, n)
	apply := func(dst, x []float64) {
		copy(dst, x)
		sp.Step(dst, zero, 1)
		for i := range dst {
			dst[i] = x[i] - dst[i]
		}
	}
	lo, hi, err := Lanczos(apply, n, steps, seed)
	if err != nil {
		return Interval{}, err
	}
	if hi <= 0 {
		return Interval{}, fmt.Errorf("eigen: estimated λmax(P⁻¹K) = %g not positive — K or P not SPD?", hi)
	}
	iv := Interval{Lo: lo * (1 - pad), Hi: hi * (1 + pad)}
	floor := 1e-8 * iv.Hi
	if iv.Lo < floor {
		iv.Lo = floor
	}
	return iv, iv.Validate()
}
