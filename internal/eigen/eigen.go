// Package eigen estimates the spectral quantities the paper's method
// needs: the interval [λ₁, λₙ] containing the eigenvalues of P⁻¹K (the
// domain on which the parametrized coefficients are optimized, §2.2) and
// the condition number κ(M_m⁻¹K) whose decrease with m is the paper's §2.1
// claim.
//
// Two estimators are provided: a deterministic-seeded power method on
// arbitrary symmetric-similar operators, and Sturm-sequence bisection on
// the Lanczos tridiagonal matrix recovered from CG coefficients (the
// standard "condition estimate for free" from a CG run).
package eigen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cg"
	"repro/internal/vec"
)

// Op applies a linear operator: dst = A·x. dst and x never alias.
type Op func(dst, x []float64)

// PowerMethod estimates the dominant eigenvalue (largest |λ|) of an
// operator whose eigenvalues are real (symmetric or similar-to-symmetric,
// which covers P⁻¹K and G = I − P⁻¹K). It returns the Rayleigh-quotient
// estimate and the iterations used. The start vector is seeded
// deterministically.
func PowerMethod(apply Op, n, maxIter int, tol float64, seed int64) (float64, int) {
	if maxIter <= 0 {
		maxIter = 200
	}
	if tol <= 0 {
		tol = 1e-10
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	lambda := 0.0
	for it := 1; it <= maxIter; it++ {
		norm := vec.Norm2(x)
		if norm == 0 {
			return 0, it
		}
		vec.Scale(1/norm, x)
		apply(y, x)
		next := vec.Dot(x, y) // Rayleigh quotient
		copy(x, y)
		if math.Abs(next-lambda) <= tol*(1+math.Abs(next)) {
			return next, it
		}
		lambda = next
	}
	return lambda, maxIter
}

// ExtremeBySpectralFold estimates both the largest and smallest eigenvalues
// of an SPD-similar operator: λmax by the power method directly, λmin by
// the power method on (λmax·I − A) (spectral fold). Both estimates are
// Rayleigh quotients, hence slightly interior; callers widening to a safe
// interval should pad.
func ExtremeBySpectralFold(apply Op, n int, seed int64) (lambdaMin, lambdaMax float64) {
	lambdaMax, _ = PowerMethod(apply, n, 3000, 1e-14, seed)
	shift := lambdaMax * (1 + 1e-8)
	folded := func(dst, x []float64) {
		apply(dst, x)
		for i := range dst {
			dst[i] = shift*x[i] - dst[i]
		}
	}
	mu, _ := PowerMethod(folded, n, 6000, 1e-14, seed+1)
	lambdaMin = shift - mu
	return lambdaMin, lambdaMax
}

// SturmCount returns the number of eigenvalues of the symmetric tridiagonal
// matrix (diag, offdiag) that are strictly less than x.
func SturmCount(diag, offdiag []float64, x float64) int {
	count := 0
	q := 1.0
	for i := range diag {
		var e2 float64
		if i > 0 {
			e2 = offdiag[i-1] * offdiag[i-1]
		}
		if q == 0 {
			// Standard guard: treat a vanishing pivot as a tiny value.
			q = 1e-300
		}
		q = diag[i] - x - e2/q
		if q < 0 {
			count++
		}
	}
	return count
}

// TridiagExtremes returns the smallest and largest eigenvalues of a
// symmetric tridiagonal matrix by Sturm bisection, to absolute tolerance
// tol (default 1e-12 of the Gershgorin width).
func TridiagExtremes(diag, offdiag []float64) (lo, hi float64, err error) {
	n := len(diag)
	if n == 0 {
		return 0, 0, fmt.Errorf("eigen: empty tridiagonal")
	}
	if len(offdiag) != n-1 {
		return 0, 0, fmt.Errorf("eigen: offdiag length %d, want %d", len(offdiag), n-1)
	}
	// Gershgorin bounds.
	glo, ghi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(offdiag[i-1])
		}
		if i < n-1 {
			r += math.Abs(offdiag[i])
		}
		glo = math.Min(glo, diag[i]-r)
		ghi = math.Max(ghi, diag[i]+r)
	}
	tol := 1e-13 * (1 + ghi - glo)
	bisect := func(target int) float64 {
		a, b := glo, ghi
		for b-a > tol {
			mid := (a + b) / 2
			if SturmCount(diag, offdiag, mid) >= target {
				b = mid
			} else {
				a = mid
			}
		}
		return (a + b) / 2
	}
	lo = bisect(1) // smallest eigenvalue: first x with count >= 1
	hi = bisect(n) // largest: first x with count >= n
	return lo, hi, nil
}

// CondFromCGStats estimates (λmin, λmax, κ) of the preconditioned operator
// M⁻¹K from a finished CG run via its Lanczos tridiagonal. The estimate
// sharpens as the run takes more iterations; for well-converged runs it is
// accurate to several digits.
func CondFromCGStats(st cg.Stats) (lambdaMin, lambdaMax, kappa float64, err error) {
	diag, off := cg.LanczosTridiagonal(st)
	if len(diag) == 0 {
		return 0, 0, 0, fmt.Errorf("eigen: CG run recorded no coefficients")
	}
	lo, hi, err := TridiagExtremes(diag, off)
	if err != nil {
		return 0, 0, 0, err
	}
	if lo <= 0 {
		return lo, hi, math.Inf(1), nil
	}
	return lo, hi, hi / lo, nil
}
