package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cg"
	"repro/internal/fem"
	"repro/internal/model"
	"repro/internal/poly"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/splitting"
)

func csrOp(k *sparse.CSR) Op {
	return func(dst, x []float64) { k.MulVecTo(dst, x) }
}

// lap1DEigs returns the exact extreme eigenvalues of Laplacian1D(n).
func lap1DEigs(n int) (lo, hi float64) {
	lo = 2 - 2*math.Cos(math.Pi/float64(n+1))
	hi = 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	return
}

func TestPowerMethodLaplacian(t *testing.T) {
	n := 30
	k := model.Laplacian1D(n)
	_, wantHi := lap1DEigs(n)
	got, _ := PowerMethod(csrOp(k), n, 5000, 1e-13, 1)
	if math.Abs(got-wantHi) > 1e-6 {
		t.Fatalf("λmax = %v, want %v", got, wantHi)
	}
}

func TestPowerMethodZeroOperator(t *testing.T) {
	zero := func(dst, x []float64) {
		for i := range dst {
			dst[i] = 0
		}
	}
	got, _ := PowerMethod(zero, 5, 50, 1e-10, 2)
	if got != 0 {
		t.Fatalf("zero operator λ = %v", got)
	}
}

func TestExtremeBySpectralFold(t *testing.T) {
	n := 25
	k := model.Laplacian1D(n)
	wantLo, wantHi := lap1DEigs(n)
	lo, hi := ExtremeBySpectralFold(csrOp(k), n, 3)
	if math.Abs(hi-wantHi) > 1e-4 {
		t.Fatalf("λmax = %v, want %v", hi, wantHi)
	}
	if math.Abs(lo-wantLo) > 1e-4 {
		t.Fatalf("λmin = %v, want %v", lo, wantLo)
	}
}

func TestSturmCountKnown(t *testing.T) {
	// diag(1, 2, 3) with zero offdiagonal: eigenvalues 1, 2, 3.
	d := []float64{1, 2, 3}
	e := []float64{0, 0}
	cases := []struct {
		x    float64
		want int
	}{
		{0.5, 0}, {1.5, 1}, {2.5, 2}, {3.5, 3},
	}
	for _, c := range cases {
		if got := SturmCount(d, e, c.x); got != c.want {
			t.Fatalf("SturmCount(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestTridiagExtremesLaplacian(t *testing.T) {
	n := 50
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	wantLo, wantHi := lap1DEigs(n)
	lo, hi, err := TridiagExtremes(d, e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-wantLo) > 1e-10 || math.Abs(hi-wantHi) > 1e-10 {
		t.Fatalf("extremes (%v, %v), want (%v, %v)", lo, hi, wantLo, wantHi)
	}
}

func TestTridiagExtremesErrors(t *testing.T) {
	if _, _, err := TridiagExtremes(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, err := TridiagExtremes([]float64{1, 2}, []float64{}); err == nil {
		t.Fatal("mismatched offdiag accepted")
	}
}

// Property: Sturm count is monotone nondecreasing in x and totals n.
func TestSturmCountMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 3
		}
		for i := range e {
			e[i] = rng.NormFloat64()
		}
		prev := 0
		for x := -20.0; x <= 20; x += 0.5 {
			c := SturmCount(d, e, x)
			if c < prev || c > n {
				return false
			}
			prev = c
		}
		return prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCondFromCGStatsLaplacian(t *testing.T) {
	n := 60
	k := model.Laplacian1D(n)
	f := model.RandomVec(rand.New(rand.NewSource(7)), n)
	_, st, err := cg.Solve(k, f, nil, cg.Options{RelResidualTol: 1e-13, MaxIter: 20 * n})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, kappa, err := CondFromCGStats(st)
	if err != nil {
		t.Fatal(err)
	}
	wantLo, wantHi := lap1DEigs(n)
	wantKappa := wantHi / wantLo
	if math.Abs(hi-wantHi) > 1e-3*wantHi {
		t.Fatalf("λmax = %v, want %v", hi, wantHi)
	}
	if math.Abs(lo-wantLo) > 1e-2*wantLo {
		t.Fatalf("λmin = %v, want %v", lo, wantLo)
	}
	if math.Abs(kappa-wantKappa) > 0.05*wantKappa {
		t.Fatalf("κ = %v, want %v", kappa, wantKappa)
	}
}

func TestCondFromCGStatsEmpty(t *testing.T) {
	if _, _, _, err := CondFromCGStats(cg.Stats{}); err == nil {
		t.Fatal("empty stats accepted")
	}
}

func TestEstimateIntervalSSORInUnitRange(t *testing.T) {
	// SSOR(ω=1) on SPD: spec(P⁻¹K) ⊆ (0, 1].
	plate, err := fem.NewPlate(6, 6, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := splitting.NewSixColorSSOR(plate.KColored, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	iv, err := EstimateInterval(mc, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo <= 0 || iv.Hi > 1.1 {
		t.Fatalf("SSOR interval [%g, %g] outside expectations", iv.Lo, iv.Hi)
	}
	if iv.Lo >= iv.Hi {
		t.Fatalf("degenerate interval [%g, %g]", iv.Lo, iv.Hi)
	}
}

func TestEstimateIntervalJacobiLaplacian(t *testing.T) {
	// Jacobi on 1-D Laplacian: spec(D⁻¹K) = (2−2cos θ)/2 ∈ (0, 2).
	n := 40
	k := model.Laplacian1D(n)
	j, _ := splitting.NewJacobi(k)
	iv, err := EstimateInterval(j, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	wantLo, wantHi := lap1DEigs(n)
	wantLo /= 2
	wantHi /= 2
	if math.Abs(iv.Hi-wantHi) > 1e-4 {
		t.Fatalf("Hi = %v, want %v", iv.Hi, wantHi)
	}
	if math.Abs(iv.Lo-wantLo) > 1e-4 {
		t.Fatalf("Lo = %v, want %v", iv.Lo, wantLo)
	}
}

func TestEstimateIntervalErrors(t *testing.T) {
	k := model.Laplacian1D(5)
	j, _ := splitting.NewJacobi(k)
	if _, err := EstimateInterval(j, -0.1, 1); err == nil {
		t.Fatal("negative pad accepted")
	}
}

// The §2.1 claim, measured: κ(M_m⁻¹K) decreases as m grows (parametrized),
// with the condition-number estimate coming from actual PCG runs.
func TestConditionDecreasesWithM(t *testing.T) {
	plate, err := fem.NewPlate(8, 8, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kc := plate.KColored
	rhs := plate.ColoredRHS()
	mc, err := splitting.NewSixColorSSOR(kc, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	iv, err := EstimateInterval(mc, 0.02, 17)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4} {
		a, err := poly.LeastSquares(m, iv.Lo, iv.Hi)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := precond.NewMStep(mc, a)
		_, st, err := cg.Solve(kc, rhs, p, cg.Options{RelResidualTol: 1e-12, MaxIter: 2000})
		if err != nil {
			t.Fatal(err)
		}
		_, _, kappa, err := CondFromCGStats(st)
		if err != nil {
			t.Fatal(err)
		}
		if kappa >= prev {
			t.Fatalf("m=%d: κ=%g did not improve on %g", m, kappa, prev)
		}
		prev = kappa
	}
}
